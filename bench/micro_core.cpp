// Microbenchmarks of COYOTE's core machinery: optimizer iteration
// throughput, lie synthesis, split apportionment, fluid-simulator steps.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/dag_builder.hpp"
#include "core/splitting_optimizer.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "lp/stats.hpp"
#include "routing/ecmp.hpp"
#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "sim/fluid.hpp"
#include "tm/traffic_matrix.hpp"
#include "tm/uncertainty.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

void BM_SplittingOptimizerIterations(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  routing::PerformanceEvaluator eval(g, dags);
  tm::PoolOptions popt;
  popt.source_hotspots = false;
  popt.random_corners = 2;
  eval.addPool(
      tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt));
  const auto init = routing::RoutingConfig::uniform(g, dags);
  core::SplittingOptions opt;
  opt.iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimizeSplitting(g, eval, init, opt));
  }
  state.SetItemsProcessed(state.iterations() * opt.iterations);
}
BENCHMARK(BM_SplittingOptimizerIterations)->Arg(50)->Arg(200);

// PERF evaluation hot path: ratioFor scans the whole pool, one propagation
// per matrix, distributed over the thread pool. The series sweeps the
// thread count over a >= 64-matrix pool; acceptance is >= 2x at 4 threads
// with bit-identical results (cross-checked against the 1-thread run).
void BM_RatioForThreadScaling(benchmark::State& state) {
  // Shared across thread-count args: building the pool solves one
  // normalization LP per matrix and dominates setup time.
  static const Graph g = topo::makeZoo("Geant");
  static const auto dags = core::augmentedDagsShared(g);
  static routing::PerformanceEvaluator* eval = [] {
    auto* e = new routing::PerformanceEvaluator(g, dags);
    tm::PoolOptions popt;
    popt.random_corners = 48;
    popt.pair_hotspots = 24;
    popt.seed = 11;
    e->addPool(
        tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt));
    return e;
  }();
  static const auto cfg = routing::RoutingConfig::uniform(g, dags);
  static const double serial_ratio = [] {
    eval->setThreads(1);
    return eval->ratioFor(cfg);
  }();

  eval->setThreads(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const double r = eval->ratioFor(cfg);
    if (r != serial_ratio) {
      state.SkipWithError("parallel ratio differs from serial ratio");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * eval->size());
  state.SetLabel("pool=" + std::to_string(eval->size()) + " matrices");
}
BENCHMARK(BM_RatioForThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_AddPoolThreadScaling(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  tm::PoolOptions popt;
  popt.random_corners = 24;
  popt.seed = 5;
  const auto pool =
      tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt);
  for (auto _ : state) {
    routing::PerformanceEvaluator eval(g, dags);
    eval.setThreads(static_cast<unsigned>(state.range(0)));
    eval.addPool(pool);
    benchmark::DoNotOptimize(eval.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(BM_AddPoolThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// OPTU normalization of a GEANT-sized corner pool: Arg(0) solves every
// matrix cold (a fresh engine per matrix, the pre-warm-start behavior),
// Arg(1) runs the engine's warm-start chains. The warm path is cross-checked
// against the cold objectives (equal within LP tolerance) before timing;
// pivots/solve lands in the counters.
void BM_SimplexOptu(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  tm::PoolOptions popt;
  popt.random_corners = 16;
  popt.pair_hotspots = 8;
  popt.seed = 17;
  const auto pool =
      tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt);
  const bool warm = state.range(0) != 0;
  util::ThreadPool tp(1);  // time the solver, not the fan-out

  static std::vector<double> cold_ref;
  if (!warm) {
    cold_ref.clear();
    for (const auto& d : pool) {
      routing::OptuEngine engine(g, dags);
      cold_ref.push_back(engine.utilization(d));
    }
  } else if (!cold_ref.empty()) {
    routing::OptuEngine engine(g, dags);
    const std::vector<double> got = engine.utilizationBatch(pool, tp);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (std::abs(got[i] - cold_ref[i]) > 1e-7 * (1.0 + cold_ref[i])) {
        state.SkipWithError("warm OPTU objective differs from cold");
        return;
      }
    }
  }

  const lp::StatsSnapshot before = lp::statsSnapshot();
  for (auto _ : state) {
    if (warm) {
      routing::OptuEngine engine(g, dags);
      benchmark::DoNotOptimize(engine.utilizationBatch(pool, tp));
    } else {
      for (const auto& d : pool) {
        routing::OptuEngine engine(g, dags);
        benchmark::DoNotOptimize(engine.utilization(d));
      }
    }
  }
  const lp::StatsSnapshot delta = lp::statsSnapshot() - before;
  if (delta.solves > 0) {
    state.counters["pivots_per_solve"] =
        static_cast<double>(delta.iterations) /
        static_cast<double>(delta.solves);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool.size()));
  state.SetLabel(warm ? "warm-chained" : "cold");
}
BENCHMARK(BM_SimplexOptu)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The per-edge worst-case slave LPs on GEANT: Arg(0) is one cold solve per
// edge (fresh session each, the pre-warm-start behavior), Arg(1) the
// oracle's warm-start chains, cross-checked edge-by-edge against cold.
void BM_SimplexSlaveWarmStart(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const auto ecmp = routing::ecmpConfig(g, dags);
  const bool warm = state.range(0) != 0;

  static std::vector<double> cold_ref;
  if (!warm) {
    cold_ref.clear();
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      cold_ref.push_back(
          routing::findWorstCaseDemandForEdge(g, ecmp, e).ratio);
    }
  } else if (!cold_ref.empty()) {
    // Validate the warm-chained scan itself: its winning ratio must match
    // the maximum of the independent cold per-edge solves.
    routing::WorstCaseOracle oracle(g, dags, nullptr);
    const double warm_best = oracle.find(ecmp).ratio;
    double cold_best = 0.0;
    for (const double r : cold_ref) cold_best = std::max(cold_best, r);
    if (std::abs(warm_best - cold_best) > 1e-7 * (1.0 + cold_best)) {
      state.SkipWithError("warm slave-LP objective differs from cold");
      return;
    }
  }

  const lp::StatsSnapshot before = lp::statsSnapshot();
  routing::WorstCaseOracle oracle(g, dags, nullptr);
  for (auto _ : state) {
    if (warm) {
      benchmark::DoNotOptimize(oracle.find(ecmp));
    } else {
      double worst = 0.0;
      for (EdgeId e = 0; e < g.numEdges(); ++e) {
        worst = std::max(
            worst, routing::findWorstCaseDemandForEdge(g, ecmp, e).ratio);
      }
      benchmark::DoNotOptimize(worst);
    }
  }
  const lp::StatsSnapshot delta = lp::statsSnapshot() - before;
  if (delta.solves > 0) {
    state.counters["pivots_per_solve"] =
        static_cast<double>(delta.iterations) /
        static_cast<double>(delta.solves);
  }
  state.SetItemsProcessed(state.iterations() * g.numEdges());
  state.SetLabel(warm ? "warm-chained" : "cold");
}
BENCHMARK(BM_SimplexSlaveWarmStart)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_LieSynthesisAllDests(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  for (auto _ : state) {
    int fake_nodes = 0;
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      fake_nodes += fib::synthesizeLies(g, cfg, t, t, 8).fake_nodes;
    }
    benchmark::DoNotOptimize(fake_nodes);
  }
}
BENCHMARK(BM_LieSynthesisAllDests);

void BM_ApportionSplits(benchmark::State& state) {
  const std::vector<double> ratios = {0.3817, 0.2511, 0.1903, 0.1102, 0.0667};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fib::apportionSplits(ratios, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ApportionSplits)->Arg(4)->Arg(11)->Arg(32);

void BM_OspfSpfGeant(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  fib::OspfModel model(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) model.advertisePrefix(t, t);
  for (auto _ : state) {
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      benchmark::DoNotOptimize(model.computeFibs(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * g.numNodes());
}
BENCHMARK(BM_OspfSpfGeant);

void BM_FluidSimulation(benchmark::State& state) {
  const Graph g = topo::prototypeTriangle();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId t = *g.findNode("t");
  sim::FluidNetwork net(g);
  for (const sim::PrefixId p : {0, 1}) {
    net.setPrefixOwner(p, t);
    net.setForwarding(p, s1, {{*g.findEdge(s1, t), 0.5},
                              {*g.findEdge(s1, s2), 0.5}});
    net.setForwarding(p, s2, {{*g.findEdge(s2, t), 1.0}});
  }
  net.addFlow({s1, 0, 1.5, 0.0, 45.0});
  net.addFlow({s2, 1, 1.5, 0.0, 45.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.run(45.0, 0.1));
  }
}
BENCHMARK(BM_FluidSimulation);

}  // namespace

BENCHMARK_MAIN();
