// Microbenchmarks of COYOTE's core machinery: optimizer iteration
// throughput, lie synthesis, split apportionment, fluid-simulator steps.
#include <benchmark/benchmark.h>

#include "core/dag_builder.hpp"
#include "core/splitting_optimizer.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "routing/evaluator.hpp"
#include "sim/fluid.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

void BM_SplittingOptimizerIterations(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  routing::PerformanceEvaluator eval(g, dags);
  tm::PoolOptions popt;
  popt.source_hotspots = false;
  popt.random_corners = 2;
  eval.addPool(
      tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt));
  const auto init = routing::RoutingConfig::uniform(g, dags);
  core::SplittingOptions opt;
  opt.iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimizeSplitting(g, eval, init, opt));
  }
  state.SetItemsProcessed(state.iterations() * opt.iterations);
}
BENCHMARK(BM_SplittingOptimizerIterations)->Arg(50)->Arg(200);

// PERF evaluation hot path: ratioFor scans the whole pool, one propagation
// per matrix, distributed over the thread pool. The series sweeps the
// thread count over a >= 64-matrix pool; acceptance is >= 2x at 4 threads
// with bit-identical results (cross-checked against the 1-thread run).
void BM_RatioForThreadScaling(benchmark::State& state) {
  // Shared across thread-count args: building the pool solves one
  // normalization LP per matrix and dominates setup time.
  static const Graph g = topo::makeZoo("Geant");
  static const auto dags = core::augmentedDagsShared(g);
  static routing::PerformanceEvaluator* eval = [] {
    auto* e = new routing::PerformanceEvaluator(g, dags);
    tm::PoolOptions popt;
    popt.random_corners = 48;
    popt.pair_hotspots = 24;
    popt.seed = 11;
    e->addPool(
        tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt));
    return e;
  }();
  static const auto cfg = routing::RoutingConfig::uniform(g, dags);
  static const double serial_ratio = [] {
    eval->setThreads(1);
    return eval->ratioFor(cfg);
  }();

  eval->setThreads(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const double r = eval->ratioFor(cfg);
    if (r != serial_ratio) {
      state.SkipWithError("parallel ratio differs from serial ratio");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * eval->size());
  state.SetLabel("pool=" + std::to_string(eval->size()) + " matrices");
}
BENCHMARK(BM_RatioForThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_AddPoolThreadScaling(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  tm::PoolOptions popt;
  popt.random_corners = 24;
  popt.seed = 5;
  const auto pool =
      tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt);
  for (auto _ : state) {
    routing::PerformanceEvaluator eval(g, dags);
    eval.setThreads(static_cast<unsigned>(state.range(0)));
    eval.addPool(pool);
    benchmark::DoNotOptimize(eval.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool.size()));
}
BENCHMARK(BM_AddPoolThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_LieSynthesisAllDests(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  for (auto _ : state) {
    int fake_nodes = 0;
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      fake_nodes += fib::synthesizeLies(g, cfg, t, t, 8).fake_nodes;
    }
    benchmark::DoNotOptimize(fake_nodes);
  }
}
BENCHMARK(BM_LieSynthesisAllDests);

void BM_ApportionSplits(benchmark::State& state) {
  const std::vector<double> ratios = {0.3817, 0.2511, 0.1903, 0.1102, 0.0667};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fib::apportionSplits(ratios, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ApportionSplits)->Arg(4)->Arg(11)->Arg(32);

void BM_OspfSpfGeant(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  fib::OspfModel model(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) model.advertisePrefix(t, t);
  for (auto _ : state) {
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      benchmark::DoNotOptimize(model.computeFibs(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * g.numNodes());
}
BENCHMARK(BM_OspfSpfGeant);

void BM_FluidSimulation(benchmark::State& state) {
  const Graph g = topo::prototypeTriangle();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId t = *g.findNode("t");
  sim::FluidNetwork net(g);
  for (const sim::PrefixId p : {0, 1}) {
    net.setPrefixOwner(p, t);
    net.setForwarding(p, s1, {{*g.findEdge(s1, t), 0.5},
                              {*g.findEdge(s1, s2), 0.5}});
    net.setForwarding(p, s2, {{*g.findEdge(s2, t), 1.0}});
  }
  net.addFlow({s1, 0, 1.5, 0.0, 45.0});
  net.addFlow({s2, 1, 1.5, 0.0, 45.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.run(45.0, 0.1));
  }
}
BENCHMARK(BM_FluidSimulation);

}  // namespace

BENCHMARK_MAIN();
