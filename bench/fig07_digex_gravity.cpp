// Fig. 7: Digex, gravity base model -- same four schemes as Fig. 6. Digex is
// sparse and hub-heavy, which is where ECMP's equal splitting hurts most.
#include "common.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const Graph g = topo::makeZoo("Digex");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);

  bench::SweepOptions opt;
  opt.exact_oracle = bench::envFlag("COYOTE_EXACT");
  const bool full = bench::envFlag("COYOTE_FULL");

  bench::printSchemeHeader("Digex", "gravity");
  const double t0 = bench::nowSeconds();
  const bench::NetworkSweep sweep(g, dags, base, opt);
  for (const double margin : bench::marginGrid(3.0, full)) {
    bench::printSchemeRow(sweep.run(margin));
    std::fflush(stdout);
  }
  std::printf("# elapsed: %.1fs (COYOTE_FULL=%d)\n",
              bench::nowSeconds() - t0, full ? 1 : 0);
  return 0;
}
