// Fig. 7: Digex, gravity base model -- same four schemes as Fig. 6 on a sparse, hub-heavy network.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments fig07`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("fig07"); }
