// Fig. 12: the prototype experiment. The mininet testbed is replaced by the
// fluid emulator (see DESIGN.md §3): triangle topology with 1 Mbps links,
// two IP prefixes t1/t2 behind node t, three 15-second UDP scenarios
//   (s1->t1, s2->t2) = (0,2), (1,1), (2,0)  Mbps,
// under the three TE schemes of Sec. VII. COYOTE assigns a different
// forwarding DAG to each prefix -- realizable only with lies -- and drops
// (almost) nothing; any single-DAG scheme loses 25-50% somewhere.
#include <cstdio>

#include "common.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "sim/fluid.hpp"

namespace {

using namespace coyote;

struct Schedule {
  NodeId s1, s2;
  void install(sim::FluidNetwork& net) const {
    net.addFlow({s2, 1, 2.0, 0.0, 15.0});   // scenario 1: (0, 2)
    net.addFlow({s1, 0, 1.0, 15.0, 30.0});  // scenario 2: (1, 1)
    net.addFlow({s2, 1, 1.0, 15.0, 30.0});
    net.addFlow({s1, 0, 2.0, 30.0, 45.0});  // scenario 3: (2, 0)
  }
};

void report(const char* scheme, const std::vector<sim::StepStats>& stats) {
  std::printf("%-8s drop%%/s:", scheme);
  for (const auto& s : stats) std::printf(" %3.0f", 100.0 * s.dropRate());
  double sent = 0.0, del = 0.0;
  for (const auto& s : stats) {
    sent += s.sent;
    del += s.delivered;
  }
  std::printf("  | total sent %.0f Mb, dropped %.0f%%\n", sent,
              100.0 * (1.0 - del / sent));
}

}  // namespace

int main() {
  const Graph g = topo::prototypeTriangle();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId t = *g.findNode("t");
  const EdgeId s1t = *g.findEdge(s1, t);
  const EdgeId s2t = *g.findEdge(s2, t);
  const EdgeId s1s2 = *g.findEdge(s1, s2);
  const EdgeId s2s1 = *g.findEdge(s2, s1);
  const Schedule sched{s1, s2};

  std::printf("# Fig. 12: 1 Mbps links; 3 x 15 s scenarios "
              "(0,2) -> (1,1) -> (2,0) Mbps; 1 s bins\n");

  {  // TE1: both sources route directly (single shared DAG).
    sim::FluidNetwork net(g);
    for (const sim::PrefixId p : {0, 1}) {
      net.setPrefixOwner(p, t);
      net.setForwarding(p, s1, {{s1t, 1.0}});
      net.setForwarding(p, s2, {{s2t, 1.0}});
    }
    sched.install(net);
    report("TE1", net.run(45.0, 1.0));
  }
  {  // TE2: s1 splits via s2; s2 direct (still one DAG for both prefixes).
    sim::FluidNetwork net(g);
    for (const sim::PrefixId p : {0, 1}) {
      net.setPrefixOwner(p, t);
      net.setForwarding(p, s1, {{s1t, 0.5}, {s1s2, 0.5}});
      net.setForwarding(p, s2, {{s2t, 1.0}});
    }
    sched.install(net);
    report("TE2", net.run(45.0, 1.0));
  }
  {  // COYOTE: per-prefix DAGs (t1 split at s1, t2 split at s2).
    sim::FluidNetwork net(g);
    net.setPrefixOwner(0, t);
    net.setPrefixOwner(1, t);
    net.setForwarding(0, s1, {{s1t, 0.5}, {s1s2, 0.5}});
    net.setForwarding(0, s2, {{s2t, 1.0}});
    net.setForwarding(1, s2, {{s2t, 0.5}, {s2s1, 0.5}});
    net.setForwarding(1, s1, {{s1t, 1.0}});
    sched.install(net);
    report("COYOTE", net.run(45.0, 1.0));
  }

  // The COYOTE forwarding above is exactly what the lie-synthesis layer
  // realizes on unmodified OSPF/ECMP routers: verify it.
  {
    fib::OspfModel model(g);
    model.advertisePrefix(0, t);
    model.advertisePrefix(1, t);
    // Build the two per-prefix routing configs over their DAGs.
    const auto mkDags = [&](bool split_at_s1) {
      DagSet ds;
      for (NodeId d = 0; d < g.numNodes(); ++d) {
        std::vector<EdgeId> edges;
        if (d == t) {
          edges = split_at_s1 ? std::vector<EdgeId>{s1t, s2t, s1s2}
                              : std::vector<EdgeId>{s1t, s2t, s2s1};
        }
        ds.emplace_back(g, d, std::move(edges));
      }
      return std::make_shared<const DagSet>(std::move(ds));
    };
    auto cfg1 = routing::RoutingConfig(g, mkDags(true));
    cfg1.setRatio(t, s1t, 0.5);
    cfg1.setRatio(t, s1s2, 0.5);
    cfg1.setRatio(t, s2t, 1.0);
    auto cfg2 = routing::RoutingConfig(g, mkDags(false));
    cfg2.setRatio(t, s2t, 0.5);
    cfg2.setRatio(t, s2s1, 0.5);
    cfg2.setRatio(t, s1t, 1.0);
    const fib::LiePlan plan1 = fib::synthesizeLies(g, cfg1, t, 0, 4);
    const fib::LiePlan plan2 = fib::synthesizeLies(g, cfg2, t, 1, 4);
    fib::applyPlan(model, plan1);
    fib::applyPlan(model, plan2);
    const bool ok = fib::verifyRealization(model, cfg1, t, 0, 4) &&
                    fib::verifyRealization(model, cfg2, t, 1, 4) &&
                    model.forwardingIsLoopFree(0) &&
                    model.forwardingIsLoopFree(1);
    std::printf("# OSPF lies realizing COYOTE's per-prefix DAGs: %d fake "
                "nodes, verified: %s\n",
                model.fakeNodeCount(), ok ? "yes" : "NO");
    return ok ? 0 : 1;
  }
}
