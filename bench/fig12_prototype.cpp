// Fig. 12: fluid-emulator replay of the mininet prototype plus the OSPF lie-synthesis realization check.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments fig12`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("fig12"); }
