// Ablation: DAG augmentation on/off (Sec. V-B Step II) at margin 2.5, shared evaluation pool.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments ablation-dag-aug`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("ablation-dag-aug"); }
