// Ablation: DAG augmentation on/off (Sec. V-B Step II).
//
// COYOTE optimized over plain shortest-path DAGs vs. augmented DAGs, on the
// same margin-2.5 evaluation pool normalized within the *augmented* DAGs so
// both variants are compared against the same optimum. Augmentation adds
// path diversity, so it should never hurt and typically helps.
#include "common.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const bool full = bench::envFlag("COYOTE_FULL");
  const std::vector<std::string> names =
      full ? topo::tableOneNames()
           : std::vector<std::string>{"Abilene", "NSF", "Geant", "Germany"};

  std::printf("# COYOTE-pk ratio, margin 2.5: shortest-path DAGs vs "
              "augmented DAGs\n");
  std::printf("%-14s %-10s %-10s %-10s\n", "network", "SP-DAGs", "augmented",
              "ECMP");
  const double t0 = bench::nowSeconds();

  for (const auto& name : names) {
    const Graph g = topo::makeZoo(name);
    const auto aug = core::augmentedDagsShared(g);
    const auto sp =
        std::make_shared<const DagSet>(routing::shortestPathDags(g));
    const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
    const tm::DemandBounds box = tm::marginBounds(base, 2.5);

    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.max_hotspots = 10;
    popt.random_corners = 4;

    core::CoyoteOptions copt;
    copt.splitting.iterations = 250;

    // Shared evaluation pool (normalized within the augmented DAGs).
    routing::PerformanceEvaluator eval(g, aug);
    eval.addPool(tm::cornerPool(box, popt));

    // COYOTE over shortest-path DAGs only.
    routing::PerformanceEvaluator sp_pool(g, sp);
    sp_pool.addPool(tm::cornerPool(box, popt));
    const auto sp_cfg = core::optimizeAgainstPool(g, sp_pool, &box, copt);

    // COYOTE over augmented DAGs.
    routing::PerformanceEvaluator aug_pool(g, aug);
    aug_pool.addPool(tm::cornerPool(box, popt));
    const auto aug_cfg = core::optimizeAgainstPool(g, aug_pool, &box, copt);

    // Evaluate all on the shared pool. The SP-DAG config is valid over the
    // augmented DAGs too (SP edges are a subset).
    routing::RoutingConfig sp_on_aug(g, aug);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      for (const EdgeId e : (*sp)[t].edges()) {
        sp_on_aug.setRatio(t, e, sp_cfg.routing.ratio(t, e));
      }
    }
    sp_on_aug.normalize(g);

    std::printf("%-14s %-10.2f %-10.2f %-10.2f\n", name.c_str(),
                eval.ratioFor(sp_on_aug), eval.ratioFor(aug_cfg.routing),
                eval.ratioFor(routing::ecmpConfig(g, aug)));
    std::fflush(stdout);
  }
  std::printf("# elapsed: %.1fs\n", bench::nowSeconds() - t0);
  return 0;
}
