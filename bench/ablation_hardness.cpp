// Sec. IV constructions, numerically: BIPARTITION gadgets and the Omega(|V|) path instance.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments ablation-hardness`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("ablation-hardness"); }
