// Sec. IV constructions, numerically:
//  * BIPARTITION gadgets (Theorem 1): positive instances reach the 4/3
//    guarantee of Lemma 2; negative instances stay strictly above it for
//    every gadget orientation (Lemma 3).
//  * The Omega(|V|) gap (Theorem 4): the optimal oblivious ratio of the
//    path instance grows linearly with n.
#include "common.hpp"
#include "core/splitting_optimizer.hpp"
#include "hardness/gadgets.hpp"
#include "routing/propagation.hpp"

int main() {
  using namespace coyote;
  const double t0 = bench::nowSeconds();

  std::printf("# BIPARTITION reduction (Theorem 1 / Lemmas 2-3)\n");
  std::printf("%-16s %-12s %-22s\n", "integer set", "positive?",
              "best oblivious ratio");
  struct Case {
    std::vector<double> w;
    bool positive;
  };
  const std::vector<Case> cases = {
      {{1, 1}, true},        {{1, 1, 2}, true}, {{2, 3, 5}, true},
      {{1, 3}, false},       {{1, 1, 3}, false}, {{2, 3, 6}, false},
  };
  for (const auto& c : cases) {
    const hardness::BipartitionInstance inst =
        hardness::makeBipartitionInstance(c.w);
    const auto [d1, d2] = hardness::extremeDemands(inst);
    double best = std::numeric_limits<double>::infinity();
    const int k = static_cast<int>(c.w.size());
    for (int mask = 0; mask < (1 << k); ++mask) {
      std::vector<bool> orient(k);
      for (int i = 0; i < k; ++i) orient[i] = (mask >> i) & 1;
      const auto dags = hardness::bipartitionDags(inst, orient);
      routing::PerformanceEvaluator eval(
          inst.graph, dags, {}, routing::Normalization::kUnrestricted);
      eval.addMatrix(d1);
      eval.addMatrix(d2);
      core::SplittingOptions sopt;
      sopt.iterations = 600;
      const auto cfg = core::optimizeSplitting(
          inst.graph, eval,
          routing::RoutingConfig::uniform(inst.graph, dags), sopt);
      best = std::min(best, eval.ratioFor(cfg));
    }
    std::string wstr;
    for (const double wi : c.w) wstr += std::to_string(static_cast<int>(wi)) + " ";
    std::printf("%-16s %-12s %.4f  (4/3 = 1.3333)\n", wstr.c_str(),
                c.positive ? "yes" : "no", best);
    std::fflush(stdout);
  }

  std::printf("\n# Omega(|V|) gap (Theorem 4): path instance\n");
  std::printf("%-6s %-24s\n", "n", "oblivious ratio (= n)");
  for (const int n : {2, 4, 8, 16, 32}) {
    const hardness::PathInstance inst = hardness::makePathInstance(n);
    const auto direct = hardness::allDirectRouting(inst);
    double worst = 0.0;
    for (const auto& d : hardness::pathDemands(inst)) {
      const double mxlu =
          routing::maxLinkUtilization(inst.graph, direct, d);
      const double optu =
          routing::optimalUtilizationUnrestricted(inst.graph, d);
      worst = std::max(worst, mxlu / optu);
    }
    std::printf("%-6d %.2f\n", n, worst);
    std::fflush(stdout);
  }
  std::printf("# elapsed: %.1fs\n", bench::nowSeconds() - t0);
  return 0;
}
