// Shared harness code for the figure/table benches.
//
// Every bench reproduces one table or figure of the paper: it prints the
// same rows/series the paper reports, normalized -- like the paper's
// figures -- by the demands-aware optimum *within the same augmented DAGs*.
// Evaluation is over a finite pool of corner/hotspot matrices of the
// uncertainty box (see tm::cornerPool); the same pool drives COYOTE's
// optimizer, and the exact slave-LP oracle can be enabled on small networks
// with COYOTE_EXACT=1. Shapes (who wins, by what factor, where crossovers
// fall), not absolute values, are the reproduction target; see
// EXPERIMENTS.md.
//
// Environment knobs (all benches):
//   COYOTE_FULL=1     full parameter sweeps (all margins / all networks)
//   COYOTE_EXACT=1    add exact slave-LP cutting planes (small networks)
//   COYOTE_THREADS=N  size of the shared util::ThreadPool driving pool
//                     normalization, PERF evaluation and the optimizer's
//                     forward pass (default: hardware threads; results
//                     are bit-identical for every N)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "tm/uncertainty.hpp"
#include "topo/zoo.hpp"

namespace coyote::bench {

inline bool envFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// One row of the Fig. 6-9 / Table I comparison.
struct SchemeRow {
  double margin = 1.0;
  double ecmp = 0.0;        ///< traditional TE with ECMP
  double base = 0.0;        ///< demands-aware optimum for the base matrix
  double oblivious = 0.0;   ///< COYOTE, no demand knowledge
  double partial = 0.0;     ///< COYOTE, optimized for the uncertainty box
};

struct SweepOptions {
  /// Corner-pool shape for the per-margin evaluation/optimization pool.
  tm::PoolOptions pool;
  core::CoyoteOptions coyote;
  bool exact_oracle = false;  ///< add slave-LP cutting planes (small nets)
  /// Evaluate the four schemes with the exact slave-LP adversary over the
  /// whole box (one LP per edge per scheme) instead of the corner pool.
  /// This is what exposes how quickly the base-optimal routing degrades
  /// under uncertainty; affordable up to ~15-node networks.
  bool exact_eval = false;

  SweepOptions() {
    pool.random_corners = 6;
    pool.source_hotspots = false;  // halves the per-margin LP count
    pool.max_hotspots = 12;        // caps LP count on the larger networks
    pool.seed = 1;
    coyote.splitting.iterations = 300;
  }
};

/// Margin-sweep harness for one network. The margin-independent schemes
/// (ECMP, the base-matrix optimum, COYOTE-oblivious) are computed once and
/// re-evaluated under every margin's pool; COYOTE-partial-knowledge is
/// re-optimized per margin.
class NetworkSweep {
 public:
  NetworkSweep(const Graph& g, std::shared_ptr<const DagSet> dags,
               const tm::TrafficMatrix& base_tm, SweepOptions opt)
      : g_(g),
        dags_(std::move(dags)),
        base_tm_(base_tm),
        opt_(std::move(opt)),
        ecmp_(routing::ecmpConfig(g, dags_)),
        base_routing_(
            routing::optimalRoutingForDemand(g, dags_, base_tm, opt_.coyote.lp)
                .routing),
        oblivious_([&] {
          core::CoyoteOptions copt = opt_.coyote;
          copt.oracle_rounds = opt_.exact_oracle ? 2 : 0;
          return core::coyoteOblivious(g, dags_, copt).routing;
        }()) {}

  [[nodiscard]] SchemeRow run(double margin) const {
    SchemeRow row;
    row.margin = margin;
    const tm::DemandBounds box = tm::marginBounds(base_tm_, margin);
    routing::PerformanceEvaluator pool(g_, dags_, opt_.coyote.lp);
    pool.addPool(tm::cornerPool(box, opt_.pool));

    core::CoyoteOptions copt = opt_.coyote;
    copt.oracle_rounds = opt_.exact_oracle ? 2 : 0;
    const core::CoyoteResult pk = core::optimizeAgainstPool(g_, pool, &box, copt);

    if (opt_.exact_eval) {
      const auto exact = [&](const routing::RoutingConfig& cfg) {
        return routing::findWorstCaseDemand(g_, cfg, &box, opt_.coyote.lp)
            .ratio;
      };
      row.ecmp = exact(ecmp_);
      row.base = exact(base_routing_);
      row.oblivious = exact(oblivious_);
      row.partial = exact(pk.routing);
    } else {
      row.ecmp = pool.ratioFor(ecmp_);
      row.base = pool.ratioFor(base_routing_);
      row.oblivious = pool.ratioFor(oblivious_);
      row.partial = pool.ratioFor(pk.routing);
    }
    return row;
  }

  [[nodiscard]] const routing::RoutingConfig& ecmpRouting() const {
    return ecmp_;
  }
  [[nodiscard]] const routing::RoutingConfig& obliviousRouting() const {
    return oblivious_;
  }

 private:
  const Graph& g_;
  std::shared_ptr<const DagSet> dags_;
  const tm::TrafficMatrix& base_tm_;
  SweepOptions opt_;
  routing::RoutingConfig ecmp_;
  routing::RoutingConfig base_routing_;
  routing::RoutingConfig oblivious_;
};

/// Margins used by the sweeps: the paper uses 1..3 (figures) and 1..5
/// (Table I) in 0.5 steps; the quick default thins them out.
inline std::vector<double> marginGrid(double max_margin, bool full) {
  std::vector<double> out;
  for (double m = 1.0; m <= max_margin + 1e-9; m += full ? 0.5 : 1.0) {
    out.push_back(m);
  }
  return out;
}

inline void printSchemeHeader(const char* network, const char* model) {
  std::printf("# %s, %s base matrix\n", network, model);
  std::printf("# ratios are worst-case link utilization relative to the\n");
  std::printf("# demands-aware optimum within the same augmented DAGs\n");
  std::printf("%-8s %-8s %-8s %-12s %-12s\n", "margin", "ECMP", "Base",
              "COYOTE-obl", "COYOTE-pk");
}

inline void printSchemeRow(const SchemeRow& r) {
  std::printf("%-8.1f %-8.2f %-8.2f %-12.2f %-12.2f\n", r.margin, r.ecmp,
              r.base, r.oblivious, r.partial);
}

}  // namespace coyote::bench
