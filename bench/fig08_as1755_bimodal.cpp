// Fig. 8: AS1755, bimodal base model -- the gravity-experiment trends persist under elephant/mice demands.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments fig08`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("fig08"); }
