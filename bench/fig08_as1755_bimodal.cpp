// Fig. 8: AS1755, bimodal base model -- the same trends as the gravity
// experiments hold when the base demands are elephant/mice structured.
#include "common.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const Graph g = topo::makeZoo("AS1755");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::bimodalMatrix(g, {}, /*seed=*/23, 1.0);

  bench::SweepOptions opt;
  opt.exact_oracle = bench::envFlag("COYOTE_EXACT");
  const bool full = bench::envFlag("COYOTE_FULL");

  bench::printSchemeHeader("AS1755", "bimodal");
  const double t0 = bench::nowSeconds();
  const bench::NetworkSweep sweep(g, dags, base, opt);
  for (const double margin : bench::marginGrid(3.0, full)) {
    bench::printSchemeRow(sweep.run(margin));
    std::fflush(stdout);
  }
  std::printf("# elapsed: %.1fs (COYOTE_FULL=%d)\n",
              bench::nowSeconds() - t0, full ? 1 : 0);
  return 0;
}
