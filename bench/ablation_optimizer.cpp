// Ablation: the two inner splitting optimizers (Sec. V-C / Appendix C) --
// GP condensation (the paper's approach) vs. exponentiated-gradient mirror
// descent -- as a function of the iteration budget, on the running example
// (closed-form optimum sqrt(5)-1 ~ 1.236) and on Abilene.
#include <cmath>

#include "common.hpp"
#include "core/splitting_optimizer.hpp"
#include "tm/traffic_matrix.hpp"

namespace {

using namespace coyote;

double runOnce(const Graph& g, const routing::PerformanceEvaluator& eval,
               core::SplitMethod method, int iterations) {
  core::SplittingOptions opt;
  opt.method = method;
  opt.iterations = iterations;
  const auto cfg = core::optimizeSplitting(
      g, eval, routing::RoutingConfig::uniform(g, eval.dagsPtr()), opt);
  return eval.ratioFor(cfg);
}

}  // namespace

int main() {
  std::printf("# inner-optimizer ablation: pool ratio vs iterations\n");
  std::printf("%-16s %-8s %-14s %-14s\n", "instance", "iters", "GP-condens.",
              "mirror-desc.");
  const double t0 = bench::nowSeconds();

  {  // Running example: optimum is sqrt(5)-1 ~ 1.2361.
    const Graph g = topo::runningExample();
    const auto dags = core::augmentedDagsShared(g);
    routing::PerformanceEvaluator eval(g, dags);
    tm::TrafficMatrix d1(g.numNodes()), d2(g.numNodes());
    d1.set(*g.findNode("s1"), *g.findNode("t"), 2.0);
    d2.set(*g.findNode("s2"), *g.findNode("t"), 2.0);
    eval.addMatrix(d1);
    eval.addMatrix(d2);
    for (const int iters : {50, 200, 800, 2000}) {
      std::printf("%-16s %-8d %-14.4f %-14.4f\n", "running-example", iters,
                  runOnce(g, eval, core::SplitMethod::kGpCondensation, iters),
                  runOnce(g, eval, core::SplitMethod::kMirrorDescent, iters));
    }
    std::printf("%-16s %-8s %-14.4f (closed form)\n", "running-example",
                "optimal", std::sqrt(5.0) - 1.0);
  }
  {  // Abilene, margin-2 corner pool.
    const Graph g = topo::makeZoo("Abilene");
    const auto dags = core::augmentedDagsShared(g);
    routing::PerformanceEvaluator eval(g, dags);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.random_corners = 4;
    eval.addPool(
        tm::cornerPool(tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt));
    for (const int iters : {50, 200, 800}) {
      std::printf("%-16s %-8d %-14.4f %-14.4f\n", "abilene-m2", iters,
                  runOnce(g, eval, core::SplitMethod::kGpCondensation, iters),
                  runOnce(g, eval, core::SplitMethod::kMirrorDescent, iters));
    }
  }
  std::printf("# elapsed: %.1fs\n", bench::nowSeconds() - t0);
  return 0;
}
