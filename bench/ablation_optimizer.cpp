// Ablation: the two inner splitting optimizers (Sec. V-C / Appendix C) vs. iteration budget.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments ablation-optimizer`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("ablation-optimizer"); }
