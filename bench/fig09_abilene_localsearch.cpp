// Fig. 9: Abilene with per-margin local-search weight tuning (Appendix A), exact within-box worst case.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments fig09`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("fig09"); }
