// Fig. 9: Abilene with the local-search DAG-construction heuristic
// (Appendix A), bimodal base model, margins 1..5. For each margin the
// heuristic re-tunes the ECMP link weights for that uncertainty box; both
// ECMP and COYOTE then run over the augmented DAGs those weights induce,
// normalized by the demands-aware optimum within the same DAGs. The paper
// reports ECMP on average ~80% further from the optimum than COYOTE.
#include "common.hpp"
#include "core/local_search.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const Graph base_graph = topo::makeZoo("Abilene");
  const tm::TrafficMatrix base = tm::bimodalMatrix(base_graph, {}, 31, 1.0);

  const bool full = bench::envFlag("COYOTE_FULL");
  std::printf("# Abilene, bimodal base matrix, local-search weights\n");
  std::printf("%-8s %-8s %-12s %-8s %-10s\n", "margin", "ECMP", "COYOTE-pk",
              "moves", "ECMP/pk");
  const double t0 = bench::nowSeconds();

  double gap_sum = 0.0;
  int rows = 0;
  for (const double margin :
       bench::marginGrid(5.0, /*full=*/full)) {
    const tm::DemandBounds box = tm::marginBounds(base, margin);

    core::LocalSearchOptions ls;
    ls.max_rounds = 3;
    ls.max_moves_per_round = full ? 24 : 12;
    const core::LocalSearchResult found =
        core::localSearchWeights(base_graph, box, ls);

    Graph g = base_graph;
    for (EdgeId e = 0; e < g.numEdges(); ++e) g.setWeight(e, found.weights[e]);
    const auto dags = core::augmentedDagsShared(g);

    routing::PerformanceEvaluator pool(g, dags);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.random_corners = 6;
    pool.addPool(tm::cornerPool(box, popt));

    core::CoyoteOptions copt;
    copt.splitting.iterations = 300;
    copt.oracle_rounds = 2;  // Abilene-scale: exact cutting planes are cheap
    const core::CoyoteResult pk_res =
        core::optimizeAgainstPool(g, pool, &box, copt);
    // Exact within-box worst case for both schemes (one slave LP per edge).
    const double ecmp = routing::findWorstCaseDemand(
                            g, routing::ecmpConfig(g, dags), &box)
                            .ratio;
    const double pk =
        routing::findWorstCaseDemand(g, pk_res.routing, &box).ratio;

    std::printf("%-8.1f %-8.2f %-12.2f %-8d %-10.2f\n", margin, ecmp, pk,
                found.accepted_moves, ecmp / pk);
    std::fflush(stdout);
    // Distance-from-optimum comparison; margin 1 rows are excluded (both
    // schemes sit at the optimum and the quotient degenerates).
    if (pk > 1.02) {
      gap_sum += (ecmp - 1.0) / (pk - 1.0);
      ++rows;
    }
  }
  if (rows > 0) {
    std::printf(
        "# ECMP's average distance-from-optimum is %.0f%% of COYOTE's "
        "(paper: ~180%%)\n",
        100.0 * gap_sum / rows);
  }
  std::printf("# elapsed: %.1fs\n", bench::nowSeconds() - t0);
  return 0;
}
