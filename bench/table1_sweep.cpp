// Table I: every backbone of the corpus x uncertainty margins x four schemes, gravity base model.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments table1`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("table1"); }
