// Table I: the full sweep -- every backbone of the corpus x uncertainty
// margins x {ECMP, Base-TM-opt, COYOTE-oblivious, COYOTE-partial-knowledge},
// gravity base model, reverse-capacity weights, normalized by the
// demands-aware optimum within the same augmented DAGs.
//
// Quick mode sweeps margins {1,3,5}; COYOTE_FULL=1 sweeps 1..5 in 0.5 steps
// like the paper.
#include "common.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const bool full = bench::envFlag("COYOTE_FULL");
  const double t0 = bench::nowSeconds();

  std::vector<double> margins;
  if (full) {
    margins = bench::marginGrid(5.0, true);
  } else {
    margins = {1.0, 3.0, 5.0};
  }

  std::printf("# Table I: gravity base model, margins");
  for (const double m : margins) std::printf(" %.1f", m);
  std::printf("\n# networks with <= 14 nodes use the exact slave-LP "
              "adversary ('+'); larger ones the corner pool\n");
  std::printf("%-14s %-8s %-8s %-8s %-12s %-12s\n", "network", "margin",
              "ECMP", "Base", "COYOTE-obl", "COYOTE-pk");

  for (const auto& name : topo::tableOneNames()) {
    const Graph g = topo::makeZoo(name);
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);

    bench::SweepOptions opt;
    opt.pool.max_hotspots = 10;
    opt.coyote.oblivious_pool.random_sparse = 8;
    opt.coyote.splitting.iterations = 250;
    // Exact worst-case evaluation (and exact cutting planes for COYOTE-pk)
    // where the per-edge slave LPs are affordable.
    opt.exact_eval = g.numNodes() <= 14 || bench::envFlag("COYOTE_EXACT");
    opt.exact_oracle = opt.exact_eval;

    const bench::NetworkSweep sweep(g, dags, base, opt);
    const std::string label = name + (opt.exact_eval ? "+" : "");
    for (const double margin : margins) {
      const bench::SchemeRow r = sweep.run(margin);
      std::printf("%-14s %-8.1f %-8.2f %-8.2f %-12.2f %-12.2f\n",
                  label.c_str(), r.margin, r.ecmp, r.base, r.oblivious,
                  r.partial);
      std::fflush(stdout);
    }
  }
  std::printf("# elapsed: %.1fs (COYOTE_FULL=%d)\n",
              bench::nowSeconds() - t0, full ? 1 : 0);
  return 0;
}
