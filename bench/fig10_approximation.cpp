// Fig. 10: approximating COYOTE's ideal splitting ratios with ECMP over virtual next-hops (AS1755, gravity).
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments fig10`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("fig10"); }
