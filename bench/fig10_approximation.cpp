// Fig. 10: approximating COYOTE's ideal splitting ratios with ECMP over
// virtual next-hops (AS1755, gravity). With only 3 additional virtual links
// per interface COYOTE already realizes most of its advantage over ECMP;
// with ~10 it closely approximates the ideal (infinitely divisible) ratios.
#include "common.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const Graph g = topo::makeZoo("AS1755");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const bool full = bench::envFlag("COYOTE_FULL");

  std::printf("# AS1755, gravity base matrix: ECMP vs quantized COYOTE\n");
  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s\n", "margin", "ECMP",
              "COYOTE-3NH", "COYOTE-5NH", "COYOTE-10NH", "COYOTE-ideal");
  const double t0 = bench::nowSeconds();

  for (const double margin : bench::marginGrid(3.0, full)) {
    const tm::DemandBounds box = tm::marginBounds(base, margin);
    routing::PerformanceEvaluator pool(g, dags);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.max_hotspots = 12;
    popt.random_corners = 6;
    pool.addPool(tm::cornerPool(box, popt));

    const double ecmp = pool.ratioFor(routing::ecmpConfig(g, dags));
    core::CoyoteOptions copt;
    copt.splitting.iterations = 300;
    const core::CoyoteResult ideal =
        core::optimizeAgainstPool(g, pool, &box, copt);

    // k virtual links per interface allow multiplicity k+1 per next-hop.
    const double r3 =
        pool.ratioFor(fib::quantizeConfig(g, ideal.routing, 3 + 1));
    const double r5 =
        pool.ratioFor(fib::quantizeConfig(g, ideal.routing, 5 + 1));
    const double r10 =
        pool.ratioFor(fib::quantizeConfig(g, ideal.routing, 10 + 1));
    std::printf("%-8.1f %-8.2f %-12.2f %-12.2f %-12.2f %-12.2f\n", margin,
                ecmp, r3, r5, r10, ideal.pool_ratio);
    std::fflush(stdout);
  }
  std::printf("# elapsed: %.1fs\n", bench::nowSeconds() - t0);
  return 0;
}
