// Microbenchmarks of the graph substrate: Dijkstra, DAG construction and
// augmentation, flow propagation.
#include <benchmark/benchmark.h>

#include "core/dag_builder.hpp"
#include "graph/dijkstra.hpp"
#include "routing/propagation.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

void BM_DijkstraBackbone(benchmark::State& state) {
  const Graph g = topo::randomBackbone(static_cast<int>(state.range(0)), 3.0, 1);
  for (auto _ : state) {
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      benchmark::DoNotOptimize(shortestPathsTo(g, t));
    }
  }
  state.SetItemsProcessed(state.iterations() * g.numNodes());
}
BENCHMARK(BM_DijkstraBackbone)->Arg(16)->Arg(32)->Arg(64);

void BM_AugmentedDags(benchmark::State& state) {
  const Graph g = topo::randomBackbone(static_cast<int>(state.range(0)), 3.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::augmentedDags(g));
  }
}
BENCHMARK(BM_AugmentedDags)->Arg(16)->Arg(32);

void BM_FlowPropagationGeant(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::computeLoads(g, cfg, d));
  }
}
BENCHMARK(BM_FlowPropagationGeant);

void BM_MaxUtilizationZoo(benchmark::State& state) {
  const auto names = topo::zooNames();
  const Graph g = topo::makeZoo(names[static_cast<std::size_t>(state.range(0))]);
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::maxLinkUtilization(g, cfg, d));
  }
  state.SetLabel(names[static_cast<std::size_t>(state.range(0))]);
}
BENCHMARK(BM_MaxUtilizationZoo)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
