// Microbenchmarks of the graph substrate: Dijkstra, DAG construction and
// augmentation, flow propagation.
#include <benchmark/benchmark.h>

#include "core/dag_builder.hpp"
#include "graph/dijkstra.hpp"
#include "routing/propagation.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

void BM_DijkstraBackbone(benchmark::State& state) {
  const Graph g = topo::randomBackbone(static_cast<int>(state.range(0)), 3.0, 1);
  for (auto _ : state) {
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      benchmark::DoNotOptimize(shortestPathsTo(g, t));
    }
  }
  state.SetItemsProcessed(state.iterations() * g.numNodes());
}
BENCHMARK(BM_DijkstraBackbone)->Arg(16)->Arg(32)->Arg(64);

void BM_AugmentedDags(benchmark::State& state) {
  const Graph g = topo::randomBackbone(static_cast<int>(state.range(0)), 3.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::augmentedDags(g));
  }
}
BENCHMARK(BM_AugmentedDags)->Arg(16)->Arg(32);

void BM_FlowPropagationGeant(benchmark::State& state) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::computeLoads(g, cfg, d));
  }
}
BENCHMARK(BM_FlowPropagationGeant);

// The CSR adjacency payoff, measured the way the hot loops actually visit
// adjacency: Dijkstra and the DAG builder pop nodes in priority order, not
// id order, so per visit the layout pays its random-access cost -- one
// L1-resident offsets load for CSR vs a header load plus a pointer chase
// into construction-scattered heap blocks for the historical
// vector-of-vectors layout. A deterministic Fisher-Yates shuffle stands in
// for the priority order; both variants visit the identical sequence. The
// scan sums edge ids only, so the Edge payload loads both layouts share
// stay out of the measurement. The acceptance bar for the CSR refactor is
// >= 1.3x on the WAN-scale rung (side 300; the side-100 graph fits in L2,
// where the layouts are expected to tie).
std::vector<NodeId> shuffledVisitOrder(const Graph& g) {
  std::vector<NodeId> order(g.numNodes());
  for (NodeId v = 0; v < g.numNodes(); ++v) order[v] = v;
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (int i = g.numNodes() - 1; i > 0; --i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(order[i], order[s % static_cast<std::uint64_t>(i + 1)]);
  }
  return order;
}

void BM_CsrNeighborScan(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Graph g = topo::torus2d(side, side);
  const std::vector<NodeId> order = shuffledVisitOrder(g);
  // Fetched once, like the hot kernels do (Graph::outOffsets docs).
  const std::vector<std::int32_t>& off = g.outOffsets();
  const std::vector<EdgeId>& ids = g.outIds();
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const NodeId v : order) {
      for (std::int32_t i = off[v]; i < off[v + 1]; ++i) acc += ids[i];
    }
    benchmark::DoNotOptimize(acc);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_CsrNeighborScan)->Arg(100)->Arg(300);

void BM_VectorNeighborScan(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Graph g = topo::torus2d(side, side);
  const std::vector<NodeId> order = shuffledVisitOrder(g);
  // The pre-CSR layout and accessor: one heap vector per node, filled in
  // edge insertion order (identical iteration order to the CSR spans),
  // fetched through the same checkNode()-style bounds check the old
  // Graph::outEdges performed. Out- and in-adjacency grow interleaved,
  // exactly as the old addEdge grew them -- that interleaving is what
  // scatters the per-node buffers across the heap in real construction.
  std::vector<std::vector<EdgeId>> out(g.numNodes());
  std::vector<std::vector<EdgeId>> in(g.numNodes());
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    out[g.edge(e).src].push_back(e);
    in[g.edge(e).dst].push_back(e);
  }
  const int n = g.numNodes();
  const auto legacyOut = [&](NodeId v) -> const std::vector<EdgeId>& {
    if (v < 0 || v >= n) throw std::invalid_argument("node id out of range");
    return out[v];
  };
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const NodeId v : order) {
      for (const EdgeId e : legacyOut(v)) acc += e;
    }
    benchmark::DoNotOptimize(acc);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_VectorNeighborScan)->Arg(100)->Arg(300);

void BM_FatTreeBuild(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g = topo::fatTree(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(g.outEdges(0).size());  // forces the CSR build
  }
}
BENCHMARK(BM_FatTreeBuild)->Arg(8)->Arg(16);

void BM_MaxUtilizationZoo(benchmark::State& state) {
  const auto names = topo::zooNames();
  const Graph g = topo::makeZoo(names[static_cast<std::size_t>(state.range(0))]);
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::maxLinkUtilization(g, cfg, d));
  }
  state.SetLabel(names[static_cast<std::size_t>(state.range(0))]);
}
BENCHMARK(BM_MaxUtilizationZoo)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
