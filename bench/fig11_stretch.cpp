// Fig. 11: average path stretch of COYOTE (oblivious and partial-knowledge,
// margin 2.5) relative to OSPF/ECMP paths, in hops. The paper reports
// stretch typically within 10%; BBNPlanet can dip below 1 because ECMP
// follows weighted shortest paths, which need not be hop-shortest.
#include <algorithm>

#include "common.hpp"
#include "routing/stretch.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const bool full = bench::envFlag("COYOTE_FULL");
  std::vector<std::string> names;
  if (full) {
    names = topo::zooNames();
    names.erase(
        std::remove(names.begin(), names.end(), std::string("Gambia")),
        names.end());  // tree: no diversity, stretch trivially 1
  } else {
    names = {"Abilene", "NSF",  "Germany",    "Geant",
             "AS1755",  "GRNet", "BBNPlanet", "Digex"};
  }

  std::printf("# average path stretch vs ECMP, margin 2.5\n");
  std::printf("%-14s %-16s %-18s\n", "network", "COYOTE-obl", "COYOTE-pk");
  const double t0 = bench::nowSeconds();

  for (const auto& name : names) {
    const Graph g = topo::makeZoo(name);
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
    const tm::DemandBounds box = tm::marginBounds(base, 2.5);

    const routing::RoutingConfig ecmp = routing::ecmpConfig(g, dags);

    core::CoyoteOptions copt;
    copt.splitting.iterations = 250;
    tm::ObliviousPoolOptions obl_pool;
    obl_pool.random_sparse = 8;
    copt.oblivious_pool = obl_pool;
    copt.corner_pool.source_hotspots = false;
    copt.corner_pool.max_hotspots = 12;
    copt.corner_pool.random_corners = 4;

    const core::CoyoteResult obl = core::coyoteOblivious(g, dags, copt);
    const core::CoyoteResult pk = core::coyoteWithBounds(g, dags, box, copt);

    std::printf("%-14s %-16.3f %-18.3f\n", name.c_str(),
                routing::averageStretch(g, obl.routing, ecmp),
                routing::averageStretch(g, pk.routing, ecmp));
    std::fflush(stdout);
  }
  std::printf("# elapsed: %.1fs (COYOTE_FULL=%d)\n",
              bench::nowSeconds() - t0, full ? 1 : 0);
  return 0;
}
