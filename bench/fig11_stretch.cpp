// Fig. 11: average path stretch of COYOTE relative to OSPF/ECMP paths, margin 2.5.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments fig11`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("fig11"); }
