// Microbenchmarks of the LP substrate: the simplex solver on the LP
// families the pipeline actually solves (OPTU normalization, base-optimal
// routing, worst-case slave LP).
#include <benchmark/benchmark.h>

#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

void BM_OptuDagRestricted(benchmark::State& state) {
  const auto names = topo::zooNames();
  const Graph g = topo::makeZoo(names[static_cast<std::size_t>(state.range(0))]);
  const DagSet dags = core::augmentedDags(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimalUtilization(g, dags, d));
  }
  state.SetLabel(names[static_cast<std::size_t>(state.range(0))] + " n=" +
                 std::to_string(g.numNodes()));
}
BENCHMARK(BM_OptuDagRestricted)->Arg(3)->Arg(14)->Arg(10)->Arg(9);
// indices into zooNames(): Abilene, NSF, Germany, Geant

void BM_OptuUnrestricted(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimalUtilizationUnrestricted(g, d));
  }
}
BENCHMARK(BM_OptuUnrestricted);

void BM_BaseOptimalRouting(benchmark::State& state) {
  const Graph g = topo::makeZoo("NSF");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimalRoutingForDemand(g, dags, d));
  }
}
BENCHMARK(BM_BaseOptimalRouting);

void BM_SlaveLpSingleEdge(benchmark::State& state) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const auto ecmp = routing::ecmpConfig(g, dags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::findWorstCaseDemandForEdge(g, ecmp, 0));
  }
}
BENCHMARK(BM_SlaveLpSingleEdge);

void BM_SlaveLpAllEdgesAbilene(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const auto ecmp = routing::ecmpConfig(g, dags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::findWorstCaseDemand(g, ecmp));
  }
}
BENCHMARK(BM_SlaveLpAllEdgesAbilene)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
