// Microbenchmarks of the LP substrate: the simplex solver on the LP
// families the pipeline actually solves (OPTU normalization, base-optimal
// routing, worst-case slave LP).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

void BM_OptuDagRestricted(benchmark::State& state) {
  const auto names = topo::zooNames();
  const Graph g = topo::makeZoo(names[static_cast<std::size_t>(state.range(0))]);
  const DagSet dags = core::augmentedDags(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimalUtilization(g, dags, d));
  }
  state.SetLabel(names[static_cast<std::size_t>(state.range(0))] + " n=" +
                 std::to_string(g.numNodes()));
}
BENCHMARK(BM_OptuDagRestricted)->Arg(3)->Arg(14)->Arg(10)->Arg(9);
// indices into zooNames(): Abilene, NSF, Germany, Geant

void BM_OptuUnrestricted(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimalUtilizationUnrestricted(g, d));
  }
}
BENCHMARK(BM_OptuUnrestricted);

void BM_BaseOptimalRouting(benchmark::State& state) {
  const Graph g = topo::makeZoo("NSF");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimalRoutingForDemand(g, dags, d));
  }
}
BENCHMARK(BM_BaseOptimalRouting);

void BM_SlaveLpSingleEdge(benchmark::State& state) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const auto ecmp = routing::ecmpConfig(g, dags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::findWorstCaseDemandForEdge(g, ecmp, 0));
  }
}
BENCHMARK(BM_SlaveLpSingleEdge);

void BM_SlaveLpAllEdgesAbilene(benchmark::State& state) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const auto ecmp = routing::ecmpConfig(g, dags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::findWorstCaseDemand(g, ecmp));
  }
}
BENCHMARK(BM_SlaveLpAllEdgesAbilene)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_OptuDecompVsMonolithic(benchmark::State& state) {
  // Fresh-template cold OPTU on GEANT: arg 1 runs the block-angular
  // pre-solve + crossover before the monolithic simplex, arg 0 the
  // plain cold phase-1 path (COYOTE_LP_DECOMP=0). Answers are
  // cross-checked against each other through a shared reference.
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  const double reference = routing::optimalUtilization(g, *dags, d);
  setenv("COYOTE_LP_DECOMP", state.range(0) != 0 ? "1" : "0", 1);
  for (auto _ : state) {
    routing::OptuEngine engine(g, dags);
    const double u = engine.utilization(d);
    if (std::abs(u - reference) > 1e-9 * (1.0 + reference)) {
      state.SkipWithError("decomposed answer diverged from monolithic");
      break;
    }
    benchmark::DoNotOptimize(u);
  }
  unsetenv("COYOTE_LP_DECOMP");
  state.SetLabel(state.range(0) != 0 ? "decomposed" : "monolithic");
}
BENCHMARK(BM_OptuDecompVsMonolithic)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_DualVsPrimalWarmChain(benchmark::State& state) {
  // Warm bound-mutation chain on GEANT (the failure-sweep shape): one
  // resident engine re-solves the same demand while single edges fail
  // and restore, each toggle a bounds mutation that leaves the retained
  // basis dual-feasible but primal-infeasible. Arg 1 lets the dual
  // simplex repair it; arg 0 forces the composite primal phase 1
  // (COYOTE_LP_DUAL=0). Every answer is cross-checked cold.
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  std::vector<std::vector<EdgeId>> chain;
  std::vector<double> reference;
  {
    // Keep only survivable single-edge failures (bridges disconnect
    // demand and the OPTU LP rightly reports infeasible).
    routing::OptuEngine ref_engine(g, dags);
    const double intact = ref_engine.utilization(d);
    for (EdgeId e = 0; e < g.numEdges() && chain.size() < 16; ++e) {
      try {
        ref_engine.setFailedEdges({e});
        const double u = ref_engine.utilization(d);
        chain.push_back({e});
        reference.push_back(u);
        chain.push_back({});  // restore before the next failure
        reference.push_back(intact);
      } catch (const std::exception&) {
        ref_engine.setFailedEdges({});
      }
    }
  }
  setenv("COYOTE_LP_DUAL", state.range(0) != 0 ? "1" : "0", 1);
  routing::OptuEngine engine(g, dags);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t k = i++ % chain.size();
    engine.setFailedEdges(chain[k]);
    const double u = engine.utilization(d);
    if (std::abs(u - reference[k]) > 1e-7 * (1.0 + reference[k])) {
      state.SkipWithError("warm-chain answer diverged from reference");
      break;
    }
    benchmark::DoNotOptimize(u);
  }
  unsetenv("COYOTE_LP_DUAL");
  state.SetLabel(state.range(0) != 0 ? "dual" : "primal-only");
}
BENCHMARK(BM_DualVsPrimalWarmChain)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
