// Fig. 6: Geant, gravity base model -- performance ratio vs. uncertainty
// margin for ECMP, Base-TM-opt, COYOTE-oblivious and COYOTE-partial-
// knowledge, over augmented shortest-path DAGs (reverse-capacity weights).
#include "common.hpp"
#include "tm/traffic_matrix.hpp"

int main() {
  using namespace coyote;
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);

  bench::SweepOptions opt;
  opt.exact_oracle = bench::envFlag("COYOTE_EXACT");
  const bool full = bench::envFlag("COYOTE_FULL");

  bench::printSchemeHeader("Geant", "gravity");
  const double t0 = bench::nowSeconds();
  const bench::NetworkSweep sweep(g, dags, base, opt);
  for (const double margin : bench::marginGrid(3.0, full)) {
    bench::printSchemeRow(sweep.run(margin));
    std::fflush(stdout);
  }
  std::printf("# elapsed: %.1fs (COYOTE_FULL=%d)\n",
              bench::nowSeconds() - t0, full ? 1 : 0);
  return 0;
}
