// Fig. 6: Geant, gravity base model -- performance ratio vs. uncertainty margin for the four schemes of Sec. VI.
// Thin shim over the scenario registry: identical rows to running
// `coyote_experiments fig06`; see src/exp/scenario.cpp for the spec.
#include "exp/runner.hpp"

int main() { return coyote::exp::runScenarioShim("fig06"); }
