// Online TE daemon over the serve::TeService event loop (src/serve/).
//
// Two modes over the same line-delimited util::json protocol (documented
// in src/serve/service.hpp):
//
//   coyote_serve --topo Geant                 stdin/stdout daemon: one
//                                             request line in, one
//                                             response line out
//   coyote_serve --topo Geant --replay t.txt  batch replay: every line of
//                                             the file, responses to
//                                             stdout in input order
//                                             (bit-identical for any
//                                             COYOTE_THREADS)
//
// Plus trace generation (the replay inputs CI and the tests use):
//
//   coyote_serve --topo Geant --generate 500 --seed 1   seeded mixed trace
//   coyote_serve --topo Geant --flap-trace 40           link-flap trace
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "scheme/registry.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"

namespace {

using namespace coyote;

int usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [options]\n"
               "\n"
               "Network / service options:\n"
               "  --topo <name>      'running-example' (default) or a "
               "Topology Zoo name\n"
               "                     (e.g. Geant, Abilene, Digex)\n"
               "  --demand <model>   gravity (default) | bimodal | uniform\n"
               "  --demand-seed <n>  bimodal demand seed (default 23)\n"
               "  --schemes <a,b,c>  resident scheme keys (default: the "
               "paper's four)\n"
               "  --margin <x>       initial uncertainty margin (default "
               "2.0)\n"
               "  --threads <n>      private thread-pool size; 0 (default) "
               "uses the\n"
               "                     process pool (COYOTE_THREADS)\n"
               "\n"
               "Modes (default: stdin/stdout daemon):\n"
               "  --replay <file>    replay a trace file, one response line "
               "per event\n"
               "  --generate <n>     emit an n-event seeded trace to stdout "
               "and exit\n"
               "  --seed <s>         trace seed for --generate (default 1)\n"
               "  --flap-trace <n>   emit an n-flap link up/down trace and "
               "exit\n",
               argv0);
  return code;
}

exp::TopologySpec topoSpec(const std::string& name) {
  if (name == "running-example") {
    exp::TopologySpec spec;
    spec.kind = exp::TopologySpec::Kind::kRunningExample;
    return spec;
  }
  return exp::TopologySpec::zoo(name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo = "running-example";
  exp::DemandSpec demand;
  std::string schemes_csv;
  double margin = 2.0;
  unsigned threads = 0;
  std::string replay_file;
  int generate = -1;
  std::uint64_t seed = 1;
  int flap_trace = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", arg.c_str());
        std::exit(usage(argv[0], 2));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--topo") {
      topo = next();
    } else if (arg == "--demand") {
      const std::string model = next();
      if (model == "gravity") {
        demand.model = exp::DemandSpec::Model::kGravity;
      } else if (model == "bimodal") {
        demand.model = exp::DemandSpec::Model::kBimodal;
      } else if (model == "uniform") {
        demand.model = exp::DemandSpec::Model::kUniform;
      } else {
        std::fprintf(stderr, "unknown demand model: %s\n", model.c_str());
        return 2;
      }
    } else if (arg == "--demand-seed") {
      demand.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--schemes") {
      schemes_csv = next();
    } else if (arg == "--margin") {
      margin = std::atof(next());
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--replay") {
      replay_file = next();
    } else if (arg == "--generate") {
      generate = std::atoi(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--flap-trace") {
      flap_trace = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0], 2);
    }
  }

  try {
    const Graph g = topoSpec(topo).build();
    const tm::TrafficMatrix base = demand.build(g);

    if (generate >= 0) {
      serve::TraceOptions opt;
      opt.events = generate;
      opt.seed = seed;
      for (const std::string& line : serve::generateTrace(g, base, opt)) {
        std::printf("%s\n", line.c_str());
      }
      return 0;
    }
    if (flap_trace >= 0) {
      for (const std::string& line : serve::linkFlapTrace(g, flap_trace)) {
        std::printf("%s\n", line.c_str());
      }
      return 0;
    }

    serve::ServeOptions opt;
    opt.margin = margin;
    opt.threads = threads;
    opt.schemes = te::SchemeRegistry::builtin().parseList(schemes_csv);

    serve::TeService service(g, base, opt);

    if (!replay_file.empty()) {
      std::ifstream in(replay_file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", replay_file.c_str());
        return 2;
      }
      std::vector<std::string> lines;
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
      }
      for (const std::string& resp : service.handleScript(lines)) {
        std::printf("%s\n", resp.c_str());
      }
      return 0;
    }

    // Interactive daemon: one request line in, one response line out, until
    // EOF. Responses flush per line so a piped client never stalls.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::printf("%s\n", service.handleLine(line).c_str());
      std::fflush(stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coyote_serve: %s\n", e.what());
    return 1;
  }
}
