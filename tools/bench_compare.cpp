// Perf-regression gate: diffs two directories of BENCH_<scenario>.json
// files (see exp/compare.hpp) and exits non-zero on median wall-time
// regressions beyond the threshold or on result drift. CI's bench-smoke
// job runs this against the committed bench/baselines/ snapshot.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/compare.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(
      out,
      "usage: %s <baseline-dir> <candidate-dir> [options]\n"
      "\n"
      "  --threshold <frac>   allowed relative median-seconds growth before\n"
      "                       a scenario counts as regressed (default 0.25;\n"
      "                       1.0 allows a 2x slowdown)\n"
      "  --ratio-tol <frac>   relative tolerance for numeric row fields\n"
      "                       (default 1e-9; rows are deterministic, so any\n"
      "                       larger difference is result drift)\n"
      "  --min-seconds <s>    timing floor: regressions are measured against\n"
      "                       max(baseline median, this), so sub-millisecond\n"
      "                       scenarios don't fail on scheduler noise\n"
      "                       (default 0.01)\n"
      "  --allow-missing      don't fail when a baseline scenario has no\n"
      "                       candidate file\n"
      "\n"
      "exit status: 0 = pass, 1 = regression/drift found, 2 = usage error\n",
      argv0);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coyote;

  exp::CompareOptions opt;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", arg.c_str());
        std::exit(usage(argv[0], 2));
      }
      return argv[++i];
    };
    const auto nextDouble = [&]() {
      const char* s = next();
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0') {
        std::fprintf(stderr, "%s: not a number: %s\n", arg.c_str(), s);
        std::exit(2);
      }
      return v;
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--threshold") {
      opt.max_regression = nextDouble();
    } else if (arg == "--ratio-tol") {
      opt.ratio_tolerance = nextDouble();
    } else if (arg == "--min-seconds") {
      opt.min_gate_seconds = nextDouble();
    } else if (arg == "--allow-missing") {
      opt.require_all = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0], 2);
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.size() != 2) return usage(argv[0], 2);
  if (opt.max_regression < 0.0 || opt.ratio_tolerance < 0.0 ||
      opt.min_gate_seconds < 0.0) {
    std::fprintf(stderr, "thresholds must be >= 0\n");
    return 2;
  }

  const exp::CompareReport report =
      exp::compareBenchDirs(dirs[0], dirs[1], opt);
  std::fputs(report.text().c_str(), stdout);
  return report.pass() ? 0 : 1;
}
