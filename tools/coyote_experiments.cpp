// Unified experiment CLI over the scenario registry: list/filter/run any
// of the paper's figure/table scenarios plus the extension grid, with
// machine-readable BENCH_<scenario>.json output for the CI perf gate
// (bench_compare). See EXPERIMENTS.md.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "scheme/registry.hpp"
#include "util/env.hpp"

namespace {

using namespace coyote;

int usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [options] [scenario-id ...]\n"
               "\n"
               "Selection (at least one of):\n"
               "  <scenario-id>      run this scenario (exact id)\n"
               "  --filter <pat>     add scenarios whose id or tags contain "
               "<pat>\n"
               "  --kind <name>      add every scenario of this kind "
               "(schemes, table,\n"
               "                     failure, serve, scaling, ...; exact "
               "name)\n"
               "  --all              add every registered scenario\n"
               "  --list             list the selection (default: all) and "
               "exit\n"
               "\n"
               "Run options:\n"
               "  --json-dir <dir>   write one BENCH_<id>.json per scenario\n"
               "  --repeat <n>       timed repetitions per scenario "
               "(default 1)\n"
               "  --warmup <n>       untimed repetitions first (default 0)\n"
               "  --schemes <a,b,c>  scheme keys the schemes/table/failure "
               "kinds sweep\n"
               "                     (default: the paper's four; unknown "
               "keys are an error)\n"
               "  --list-schemes     list the registered TE schemes and "
               "exit\n"
               "  --quick | --full   thinned vs full margin grids/corpora\n"
               "                     (default quick; COYOTE_FULL=1 implies "
               "--full)\n"
               "  --exact            exact slave-LP oracle/evaluation "
               "(COYOTE_EXACT)\n"
               "  --quiet            suppress the per-row text output\n",
               argv0);
  return code;
}

void listScenarios(const std::vector<const exp::Scenario*>& scenarios) {
  std::printf("%-26s %-16s %-18s %s\n", "id", "kind", "tags", "description");
  for (const exp::Scenario* s : scenarios) {
    std::string tags;
    for (const std::string& t : s->tags) {
      if (!tags.empty()) tags += ",";
      tags += t;
    }
    std::printf("%-26s %-16s %-18s %s\n", s->id.c_str(),
                exp::kindName(s->kind), tags.c_str(),
                s->description.c_str());
  }
  std::printf("# %zu scenario(s)\n", scenarios.size());
}

void listSchemes() {
  const te::SchemeRegistry& reg = te::SchemeRegistry::builtin();
  std::printf("%-16s %-13s %-8s %-12s %s\n", "key", "display", "margin",
              "on-failure", "description");
  for (const te::Scheme* s : reg.all()) {
    bool is_default = false;
    for (const te::Scheme* d : reg.defaults()) is_default |= d == s;
    std::printf("%-16s %-13s %-8s %-12s %s%s\n", s->key(), s->display(),
                s->marginDependent() ? "per" : "once",
                te::reactionName(s->reaction()), s->describe(),
                is_default ? " [default]" : "");
  }
  std::printf("# %zu scheme(s); default sweep: the paper's four\n",
              reg.all().size());
}

}  // namespace

int main(int argc, char** argv) {
  const exp::ScenarioRegistry& registry = exp::ScenarioRegistry::global();

  exp::RunOptions opt;
  opt.full = util::envFlag("COYOTE_FULL");
  opt.exact = util::envFlag("COYOTE_EXACT");
  bool list = false;
  bool all = false;
  std::vector<std::string> filters;
  std::vector<std::string> kinds;
  std::vector<std::string> ids;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", arg.c_str());
        std::exit(usage(argv[0], 2));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--list") {
      list = true;
    } else if (arg == "--list-schemes") {
      listSchemes();
      return 0;
    } else if (arg == "--schemes") {
      const std::string csv = next();
      // Reject a blank selection up front: parseList("") falls back to
      // the defaults, which would silently sweep the paper's four when
      // the caller's $SELECTION variable was accidentally empty.
      if (csv.find_first_not_of(", ") == std::string::npos) {
        std::fprintf(stderr, "--schemes: empty scheme list\n");
        return 2;
      }
      try {
        // Validate now -- an unknown or repeated key is a hard error
        // naming the key, not a silently empty or defaulted sweep. A
        // second --schemes flag replaces the first (last one wins), so
        // the accumulated list stays duplicate-free too.
        opt.schemes.clear();
        for (const te::Scheme* s :
             te::SchemeRegistry::builtin().parseList(csv)) {
          opt.schemes.emplace_back(s->key());
        }
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--schemes: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--filter") {
      filters.emplace_back(next());
    } else if (arg == "--kind") {
      kinds.emplace_back(next());
    } else if (arg == "--json-dir") {
      opt.json_dir = next();
    } else if (arg == "--repeat") {
      opt.repeat = std::atoi(next());
      if (opt.repeat < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 2;
      }
    } else if (arg == "--warmup") {
      opt.warmup = std::atoi(next());
      if (opt.warmup < 0) {
        std::fprintf(stderr, "--warmup must be >= 0\n");
        return 2;
      }
    } else if (arg == "--quick") {
      opt.full = false;
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--exact") {
      opt.exact = true;
    } else if (arg == "--quiet") {
      opt.print = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0], 2);
    } else {
      ids.push_back(arg);
    }
  }

  // Build the selection, de-duplicated, in registry order.
  std::vector<const exp::Scenario*> selection;
  const auto select = [&](const exp::Scenario* s) {
    for (const exp::Scenario* have : selection) {
      if (have == s) return;
    }
    selection.push_back(s);
  };
  for (const std::string& id : ids) {
    const exp::Scenario* s = registry.find(id);
    if (s == nullptr) {
      std::fprintf(stderr,
                   "unknown scenario: %s (try --list)\n", id.c_str());
      return 2;
    }
    select(s);
  }
  for (const std::string& pattern : filters) {
    const auto matched = registry.match(pattern);
    if (matched.empty()) {
      std::fprintf(stderr, "--filter %s matched nothing\n", pattern.c_str());
      return 2;
    }
    for (const exp::Scenario* s : matched) select(s);
  }
  for (const std::string& kind : kinds) {
    // Exact kind-name match (unlike --filter's substring semantics):
    // "schemes" must not silently sweep in unrelated tags.
    bool matched_any = false;
    for (const exp::Scenario& s : registry.all()) {
      if (kind == exp::kindName(s.kind)) {
        select(&s);
        matched_any = true;
      }
    }
    if (!matched_any) {
      std::fprintf(stderr, "--kind %s matched nothing (try --list)\n",
                   kind.c_str());
      return 2;
    }
  }
  if (all) {
    for (const exp::Scenario& s : registry.all()) select(&s);
  }

  if (list) {
    listScenarios(selection.empty()
                      ? registry.match("")  // default: list everything
                      : selection);
    return 0;
  }
  if (selection.empty()) {
    std::fprintf(stderr, "nothing selected\n");
    return usage(argv[0], 2);
  }

  const exp::ExperimentRunner runner(opt);
  const int failures = runner.runAll(selection);
  if (failures > 0) {
    std::fprintf(stderr, "%d scenario(s) failed\n", failures);
    return 1;
  }
  return 0;
}
