// WAN traffic engineering under demand uncertainty.
//
// The scenario from the paper's introduction: an operator runs a backbone
// (here: Geant), has only a rough estimate of the traffic matrix (a gravity
// model), and traffic may drift anywhere within a multiplicative margin of
// it. The example compares what the operator gets from
//   * traditional OSPF/ECMP,
//   * the demands-aware optimum for the estimate ("Base"), which is what a
//     classical TE pipeline would install, and
//   * COYOTE's robust splitting ratios,
// as the drift margin grows.
//
// Build & run:   ./build/examples/wan_te [network] [max_margin]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace coyote;
  const std::string network = argc > 1 ? argv[1] : "Geant";
  const double max_margin = argc > 2 ? std::atof(argv[2]) : 3.0;

  const Graph g = topo::makeZoo(network);
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix estimate = tm::gravityMatrix(g, 1.0);
  std::printf("%s: %d routers, %d links; gravity estimate, drift margins up "
              "to %.1fx\n\n",
              network.c_str(), g.numNodes(), g.numEdges() / 2, max_margin);

  // Configurations that do not depend on the margin.
  const routing::RoutingConfig ecmp = routing::ecmpConfig(g, dags);
  const routing::RoutingConfig base =
      routing::optimalRoutingForDemand(g, dags, estimate).routing;

  std::printf("%-8s %-10s %-10s %-12s\n", "margin", "ECMP", "Base-opt",
              "COYOTE-pk");
  for (double margin = 1.0; margin <= max_margin + 1e-9; margin += 1.0) {
    const tm::DemandBounds box = tm::marginBounds(estimate, margin);
    routing::PerformanceEvaluator eval(g, dags);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.max_hotspots = 12;
    popt.random_corners = 4;
    eval.addPool(tm::cornerPool(box, popt));

    core::CoyoteOptions copt;
    copt.splitting.iterations = 250;
    const core::CoyoteResult coyote =
        core::optimizeAgainstPool(g, eval, &box, copt);

    std::printf("%-8.1f %-10.2f %-10.2f %-12.2f\n", margin,
                eval.ratioFor(ecmp), eval.ratioFor(base), coyote.pool_ratio);
    std::fflush(stdout);
  }
  std::printf(
      "\nReading: 1.00 = as good as the demands-aware optimum for the\n"
      "worst drift in the margin; ECMP and Base degrade with uncertainty,\n"
      "COYOTE stays close to optimal (Sec. VI-B of the paper).\n");
  return 0;
}
