// Inspecting the "lies": what COYOTE actually injects into OSPF.
//
// Optimizes splitting ratios for one destination of Abilene, synthesizes
// the fake advertisements that realize them on unmodified routers
// (Sec. V-D), prints each lie in a human-readable form, and verifies the
// router model installs exactly the intended next-hop multisets.
//
// Build & run:   ./build/examples/fibbing_lies [virtual-links-per-interface]

#include <cstdio>
#include <cstdlib>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace coyote;
  const int virtual_links = argc > 1 ? std::atoi(argv[1]) : 3;
  const int max_multiplicity = virtual_links + 1;

  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);

  core::CoyoteOptions copt;
  copt.splitting.iterations = 300;
  const core::CoyoteResult res = core::coyoteWithBounds(g, dags, box, copt);
  std::printf("COYOTE on Abilene (margin 2.0): pool ratio %.3f\n\n",
              res.pool_ratio);

  fib::OspfModel model(g);
  int total_fake = 0;
  int total_routers = 0;
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    model.advertisePrefix(t, t);
    const fib::LiePlan plan =
        fib::synthesizeLies(g, res.routing, t, t, max_multiplicity);
    fib::applyPlan(model, plan);
    total_fake += plan.fake_nodes;
    total_routers += plan.routers_lied_to;
    if (!fib::verifyRealization(model, res.routing, t, t, max_multiplicity)) {
      std::printf("verification FAILED for destination %s\n",
                  g.nodeName(t).c_str());
      return 1;
    }
  }

  // Show the lies for one destination in detail.
  const NodeId dest = *g.findNode("NewYork");
  const fib::LiePlan plan =
      fib::synthesizeLies(g, res.routing, dest, dest, max_multiplicity);
  std::printf("Lies for prefix %s (%d fake nodes):\n",
              g.nodeName(dest).c_str(), plan.fake_nodes);
  for (const auto& lie : plan.lies) {
    std::printf(
        "  at %-12s advertise %s via %-12s x%d at cost %.1f  (real dist "
        "%.1f)\n",
        g.nodeName(lie.router).c_str(), g.nodeName(dest).c_str(),
        g.nodeName(lie.via).c_str(), lie.count, lie.cost,
        shortestPathsTo(g, dest).dist[lie.router]);
  }

  std::printf(
      "\nNetwork-wide: %d fake nodes across %d (router,prefix) entries with "
      "%d virtual links/interface.\n",
      total_fake, total_routers, virtual_links);
  std::printf("All %d per-prefix FIBs verified loop-free and exact.\n",
              g.numNodes());
  return 0;
}
