// Precomputing failover configurations.
//
// Sec. VI-A: "routing configurations for failure scenarios (e.g., every
// single link/node failure) can be precomputed" -- COYOTE is static, so the
// operator computes one robust configuration per failure case offline and
// swaps the corresponding lies in when the failure is detected.
//
// This example walks every single-link failure of the NSF backbone,
// recomputes COYOTE for the degraded topology, and reports how the
// worst-case ratio (margin 2.0 around a gravity estimate) moves -- plus how
// plain ECMP would fare on the same degraded topology.
//
// Build & run:   ./build/examples/failover

#include <cstdio>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

/// Rebuilds the graph without one bidirectional link.
Graph withoutLink(const Graph& g, EdgeId link) {
  Graph out;
  for (NodeId v = 0; v < g.numNodes(); ++v) out.addNode(g.nodeName(v));
  const EdgeId rev = g.edge(link).reverse;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    if (e == link || e == rev) continue;
    if (ed.reverse != kInvalidEdge && ed.reverse < e) continue;
    out.addLink(ed.src, ed.dst, ed.capacity, ed.weight);
  }
  return out;
}

}  // namespace

int main() {
  const Graph g = topo::makeZoo("NSF");
  std::printf("NSF backbone: precomputing COYOTE for every single-link "
              "failure (margin 2.0)\n\n");
  std::printf("%-28s %-10s %-12s\n", "failed link", "ECMP", "COYOTE-pk");

  const auto runCase = [](const Graph& net, const char* label) {
    if (!net.stronglyConnected()) {
      std::printf("%-28s (network partitioned; skipped)\n", label);
      return;
    }
    const auto dags = core::augmentedDagsShared(net);
    const tm::TrafficMatrix base = tm::gravityMatrix(net, 1.0);
    const tm::DemandBounds box = tm::marginBounds(base, 2.0);
    routing::PerformanceEvaluator eval(net, dags);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.random_corners = 2;
    eval.addPool(tm::cornerPool(box, popt));
    core::CoyoteOptions copt;
    copt.splitting.iterations = 200;
    const core::CoyoteResult res =
        core::optimizeAgainstPool(net, eval, &box, copt);
    std::printf("%-28s %-10.2f %-12.2f\n", label,
                eval.ratioFor(routing::ecmpConfig(net, dags)),
                res.pool_ratio);
    std::fflush(stdout);
  };

  runCase(g, "(no failure)");
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    if (ed.reverse != kInvalidEdge && ed.reverse < e) continue;
    const std::string label =
        g.nodeName(ed.src) + "-" + g.nodeName(ed.dst);
    runCase(withoutLink(g, e), label.c_str());
  }
  std::printf("\nEach row is an offline-precomputed configuration; swapping\n"
              "them in on failure needs only a new set of lies, no router\n"
              "reconfiguration (Sec. VI-A).\n");
  return 0;
}
