// Quickstart: run the whole COYOTE pipeline on the paper's running example
// (Fig. 1) and print what each stage produces.
//
//   1. Build the topology (or load one with topo::parseTopology).
//   2. Construct augmented per-destination DAGs.
//   3. Optimize oblivious splitting ratios.
//   4. Translate the ratios into OSPF lies and verify them against the
//      router model.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "routing/ecmp.hpp"
#include "routing/worst_case.hpp"
#include "topo/zoo.hpp"

int main() {
  using namespace coyote;

  // ---- 1. Topology: s1, s2, v, t with unit capacities (Fig. 1a).
  const Graph g = topo::runningExample();
  std::printf("Topology: %d nodes, %d directed edges\n", g.numNodes(),
              g.numEdges());

  // ---- 2. Augmented DAGs (Sec. V-B).
  const auto dags = core::augmentedDagsShared(g);
  const NodeId t = *g.findNode("t");
  std::printf("Augmented DAG toward t has %zu edges:\n",
              (*dags)[t].edges().size());
  for (const EdgeId e : (*dags)[t].edges()) {
    std::printf("  %s -> %s\n", g.nodeName(g.edge(e).src).c_str(),
                g.nodeName(g.edge(e).dst).c_str());
  }

  // ---- 3. Oblivious splitting optimization (Sec. V-C).
  core::CoyoteOptions opt;
  opt.oracle_rounds = 2;  // exact slave-LP cutting planes: tiny network
  const core::CoyoteResult res = core::coyoteOblivious(g, dags, opt);
  std::printf("\nCOYOTE oblivious performance ratio (pool): %.4f\n",
              res.pool_ratio);
  std::printf("Optimized splitting ratios toward t:\n");
  for (const EdgeId e : (*dags)[t].edges()) {
    if (res.routing.ratio(t, e) <= 0.0) continue;
    std::printf("  phi(%s -> %s) = %.4f\n",
                g.nodeName(g.edge(e).src).c_str(),
                g.nodeName(g.edge(e).dst).c_str(), res.routing.ratio(t, e));
  }

  // For reference: the *exact* oblivious ratio (worst case over all demand
  // matrices, one slave LP per edge) of COYOTE vs. ECMP on the same DAGs.
  const auto ecmp = routing::ecmpConfig(g, dags);
  const double ecmp_exact = routing::findWorstCaseDemand(g, ecmp).ratio;
  const double coyote_exact =
      routing::findWorstCaseDemand(g, res.routing).ratio;
  std::printf("Exact oblivious ratio, ECMP:   %.4f\n", ecmp_exact);
  std::printf("Exact oblivious ratio, COYOTE: %.4f\n", coyote_exact);

  // ---- 4. Lies: translate to OSPF (Sec. V-D) and verify.
  fib::OspfModel ospf(g);
  const fib::PrefixId prefix = 0;
  ospf.advertisePrefix(prefix, t);
  const fib::LiePlan plan =
      fib::synthesizeLies(g, res.routing, t, prefix, /*max_multiplicity=*/8);
  fib::applyPlan(ospf, plan);
  std::printf("\nLies toward t: %d fake nodes across %d routers\n",
              plan.fake_nodes, plan.routers_lied_to);
  const bool ok = fib::verifyRealization(ospf, res.routing, t, prefix, 8);
  std::printf("OSPF model realizes the configuration: %s\n",
              ok ? "yes" : "NO (bug!)");
  std::printf("Forwarding is loop-free: %s\n",
              ospf.forwardingIsLoopFree(prefix) ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
