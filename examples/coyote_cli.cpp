// coyote_cli -- command-line front end to the library.
//
//   coyote_cli topo     <network>                         topology summary
//   coyote_cli optimize <network> [margin] [--oblivious]  splitting ratios
//   coyote_cli lies     <network> [margin] [budget]       OSPF lie plan
//   coyote_cli eval     <network> [margin]                scheme comparison
//
// <network> is either `zoo:<Name>` (see `coyote_cli topo zoo:list`) or a
// path to a topology file in the plain-text format of topo/parser.hpp.
//
// Examples:
//   ./build/examples/coyote_cli topo zoo:Abilene
//   ./build/examples/coyote_cli optimize zoo:Geant 2.0
//   ./build/examples/coyote_cli lies my-backbone.topo 2.5 3
//   ./build/examples/coyote_cli eval zoo:NSF 3.0

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "exp/sweep.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/parser.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace coyote;

int usage() {
  std::fprintf(stderr,
               "usage: coyote_cli topo|optimize|lies|eval <network> [args]\n"
               "       <network> = zoo:<Name> | <file.topo>   "
               "(zoo:list shows the corpus)\n");
  return 2;
}

Graph loadNetwork(const std::string& spec) {
  if (spec.rfind("zoo:", 0) == 0) {
    return topo::makeZoo(spec.substr(4));
  }
  std::ifstream in(spec);
  if (!in) throw std::invalid_argument("cannot open topology file: " + spec);
  return topo::parseTopology(in);
}

int cmdTopo(const std::string& spec) {
  if (spec == "zoo:list") {
    for (const auto& name : topo::zooNames()) std::printf("%s\n", name.c_str());
    return 0;
  }
  const Graph g = loadNetwork(spec);
  std::printf("nodes: %d   directed edges: %d   strongly connected: %s\n",
              g.numNodes(), g.numEdges(),
              g.stronglyConnected() ? "yes" : "no");
  double cap_min = 1e300, cap_max = 0.0;
  for (const Edge& e : g.edges()) {
    cap_min = std::min(cap_min, e.capacity);
    cap_max = std::max(cap_max, e.capacity);
  }
  std::printf("capacities: [%g, %g]\n", cap_min, cap_max);
  const auto dags = core::augmentedDags(g);
  std::size_t dag_edges = 0;
  for (const auto& d : dags) dag_edges += d.edges().size();
  std::printf("augmented DAG edges (all destinations): %zu\n", dag_edges);
  return 0;
}

struct Pipeline {
  Graph g;
  std::shared_ptr<const DagSet> dags;
  tm::TrafficMatrix base;
  double margin;

  Pipeline(const std::string& spec, double margin_in)
      : g(loadNetwork(spec)),
        dags(core::augmentedDagsShared(g)),
        base(tm::gravityMatrix(g, 1.0)),
        margin(margin_in) {}

  core::CoyoteOptions options() const {
    core::CoyoteOptions opt;
    opt.splitting.iterations = 300;
    opt.corner_pool.source_hotspots = false;
    opt.corner_pool.max_hotspots = 12;
    return opt;
  }
};

int cmdOptimize(const std::string& spec, double margin, bool oblivious) {
  Pipeline p(spec, margin);
  const core::CoyoteResult res =
      oblivious ? core::coyoteOblivious(p.g, p.dags, p.options())
                : core::coyoteWithBounds(p.g, p.dags,
                                         tm::marginBounds(p.base, margin),
                                         p.options());
  if (oblivious) {
    std::printf("# COYOTE oblivious, ratio on optimization pool: %.3f\n",
                res.pool_ratio);
  } else {
    std::printf("# COYOTE margin %.2f, ratio on optimization pool: %.3f\n",
                margin, res.pool_ratio);
  }
  std::printf("# non-trivial splitting entries (destination node edge ratio):\n");
  for (NodeId t = 0; t < p.g.numNodes(); ++t) {
    for (const EdgeId e : (*p.dags)[t].edges()) {
      const double r = res.routing.ratio(t, e);
      if (r <= 0.0 || r >= 1.0 - 1e-9) continue;  // trivial 0/1 entries
      std::printf("split %s %s->%s %.4f\n", p.g.nodeName(t).c_str(),
                  p.g.nodeName(p.g.edge(e).src).c_str(),
                  p.g.nodeName(p.g.edge(e).dst).c_str(), r);
    }
  }
  return 0;
}

int cmdLies(const std::string& spec, double margin, int virtual_links) {
  Pipeline p(spec, margin);
  const int budget = virtual_links + 1;
  const core::CoyoteResult res = core::coyoteWithBounds(
      p.g, p.dags, tm::marginBounds(p.base, margin), p.options());

  fib::OspfModel model(p.g);
  int fake = 0, routers = 0;
  bool all_ok = true;
  for (NodeId t = 0; t < p.g.numNodes(); ++t) {
    model.advertisePrefix(t, t);
    const fib::LiePlan plan =
        fib::synthesizeLies(p.g, res.routing, t, t, budget);
    fib::applyPlan(model, plan);
    fake += plan.fake_nodes;
    routers += plan.routers_lied_to;
    const bool ok = fib::verifyRealization(model, res.routing, t, t, budget);
    all_ok = all_ok && ok && model.forwardingIsLoopFree(t);
    for (const auto& lie : plan.lies) {
      std::printf("lie at=%s prefix=%s via=%s x%d cost=%.2f\n",
                  p.g.nodeName(lie.router).c_str(),
                  p.g.nodeName(t).c_str(), p.g.nodeName(lie.via).c_str(),
                  lie.count, lie.cost);
    }
  }
  std::printf("# total: %d fake nodes across %d (router,prefix) entries; "
              "verified: %s\n",
              fake, routers, all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}

int cmdEval(const std::string& spec, double margin) {
  Pipeline p(spec, margin);
  // The same scheme margin sweep the experiment harness runs
  // (exp::NetworkSweep over every registered te::Scheme);
  // coyote_experiments sweeps whole margin grids.
  exp::SweepOptions opt;
  opt.coyote = p.options();
  const exp::NetworkSweep sweep(p.g, p.dags, p.base, opt,
                                te::SchemeRegistry::builtin().all());
  const exp::SchemeRow row = sweep.run(margin);
  std::printf("margin %.2f", margin);
  for (std::size_t i = 0; i < sweep.schemes().size(); ++i) {
    std::printf("  %s %.3f", sweep.schemes()[i]->display(), row.ratio[i]);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string spec = argv[2];
  try {
    if (cmd == "topo") return cmdTopo(spec);
    const double margin = argc > 3 ? std::atof(argv[3]) : 2.0;
    if (cmd == "optimize") {
      const bool oblivious =
          (argc > 3 && std::strcmp(argv[3], "--oblivious") == 0) ||
          (argc > 4 && std::strcmp(argv[4], "--oblivious") == 0);
      return cmdOptimize(spec, margin, oblivious);
    }
    if (cmd == "lies") {
      const int virtual_links = argc > 4 ? std::atoi(argv[4]) : 3;
      return cmdLies(spec, margin, virtual_links);
    }
    if (cmd == "eval") return cmdEval(spec, margin);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
