// Operator "uncertainty bounds" (Sec. III): for every pair (s,t) the actual
// demand may be anywhere in [dmin(s,t), dmax(s,t)]. The paper's experiments
// use multiplicative margins around a base matrix: [d/x, d*x].
//
// This header also builds the finite demand-matrix pools COYOTE optimizes
// and is evaluated against: the corners of the uncertainty box (which are
// the only candidates for worst-case behaviour of the *linear* load
// functions once splitting ratios are fixed) plus structured single-hotspot
// matrices, and -- for the fully oblivious case -- destination-concentrated
// and sparse random matrices standing in for "all possible demands".
#pragma once

#include <cstdint>
#include <vector>

#include "tm/traffic_matrix.hpp"

namespace coyote::tm {

/// Box of admissible demand matrices: lo.at(s,t) <= d(s,t) <= hi.at(s,t).
struct DemandBounds {
  TrafficMatrix lo;
  TrafficMatrix hi;

  DemandBounds(TrafficMatrix lo_in, TrafficMatrix hi_in);

  [[nodiscard]] int numNodes() const { return lo.numNodes(); }
  [[nodiscard]] bool contains(const TrafficMatrix& d, double tol = 1e-9) const;
};

/// The paper's margin-x box around `base`: [base/x, base*x] entrywise.
/// margin >= 1.
[[nodiscard]] DemandBounds marginBounds(const TrafficMatrix& base,
                                        double margin);

struct PoolOptions {
  /// Structured corners: per-destination hotspot (column at hi, rest at lo)
  /// and per-source hotspot (row at hi, rest at lo).
  bool destination_hotspots = true;
  bool source_hotspots = true;
  /// Number of random hi/lo corner matrices.
  int random_corners = 8;
  /// Single-pair spikes: the top-k (by upper bound) pairs get a matrix with
  /// just that pair at hi and everything else at lo. These corners have the
  /// largest relative imbalance in the box and are the classic adversaries
  /// for routings overfitted to the base matrix (the paper's "Base" line).
  int pair_hotspots = 8;
  /// Cap on hotspot corners per kind (0 = one per node). When capped, the
  /// nodes with the largest aggregate upper-bound demand are kept --
  /// controls the number of normalization LPs on large networks.
  int max_hotspots = 0;
  std::uint64_t seed = 1;
};

/// Finite pool of candidate worst-case matrices inside the box: the all-hi
/// corner, hotspot corners and random corners. All entries are corner values
/// (lo or hi); interior matrices are dominated for the max-utilization
/// objective, so corners suffice as a search pool.
[[nodiscard]] std::vector<TrafficMatrix> cornerPool(const DemandBounds& box,
                                                    const PoolOptions& opt = {});

struct ObliviousPoolOptions {
  /// Per-destination matrices: every source sends 1 unit to t.
  bool destination_concentrated = true;
  /// Per-source matrices: s sends 1 unit to every destination.
  bool source_concentrated = true;
  /// The uniform all-pairs matrix.
  bool uniform = true;
  /// Number of random sparse matrices (few active pairs).
  int random_sparse = 12;
  int sparse_active_pairs = 3;
  std::uint64_t seed = 7;
};

/// Pool standing in for "all possible demand matrices" (the oblivious case):
/// destination-concentrated matrices plus sparse random matrices, which are
/// the classical worst cases for static routing. Entries are >= 0 with no
/// upper bound semantics; callers normalize by OPTU.
[[nodiscard]] std::vector<TrafficMatrix> obliviousPool(
    int num_nodes, const ObliviousPoolOptions& opt = {});

}  // namespace coyote::tm
