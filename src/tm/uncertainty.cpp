#include "tm/uncertainty.hpp"

#include <algorithm>
#include <random>
#include <utility>

namespace coyote::tm {

DemandBounds::DemandBounds(TrafficMatrix lo_in, TrafficMatrix hi_in)
    : lo(std::move(lo_in)), hi(std::move(hi_in)) {
  require(lo.numNodes() == hi.numNodes(), "bounds size mismatch");
  const int n = lo.numNodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      require(lo.at(s, t) <= hi.at(s, t) + 1e-12,
              "lower bound above upper bound");
    }
  }
}

bool DemandBounds::contains(const TrafficMatrix& d, double tol) const {
  if (d.numNodes() != numNodes()) return false;
  const int n = numNodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      if (d.at(s, t) < lo.at(s, t) - tol || d.at(s, t) > hi.at(s, t) + tol) {
        return false;
      }
    }
  }
  return true;
}

DemandBounds marginBounds(const TrafficMatrix& base, double margin) {
  require(margin >= 1.0, "margin must be >= 1");
  TrafficMatrix lo = base;
  TrafficMatrix hi = base;
  lo.scale(1.0 / margin);
  hi.scale(margin);
  return DemandBounds(std::move(lo), std::move(hi));
}

std::vector<TrafficMatrix> cornerPool(const DemandBounds& box,
                                      const PoolOptions& opt) {
  const int n = box.numNodes();
  std::vector<TrafficMatrix> pool;

  pool.push_back(box.hi);  // the all-hi corner

  // Hotspot nodes, optionally capped to the heaviest ones.
  const auto hotspotNodes = [&](bool by_destination) {
    std::vector<std::pair<double, NodeId>> weight(n);
    for (NodeId v = 0; v < n; ++v) {
      double w = 0.0;
      for (NodeId o = 0; o < n; ++o) {
        if (o == v) continue;
        w += by_destination ? box.hi.at(o, v) : box.hi.at(v, o);
      }
      weight[v] = {w, v};
    }
    std::sort(weight.begin(), weight.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<NodeId> nodes;
    const int limit = (opt.max_hotspots > 0 && opt.max_hotspots < n)
                          ? opt.max_hotspots
                          : n;
    for (int i = 0; i < limit; ++i) {
      if (weight[i].first > 0.0) nodes.push_back(weight[i].second);
    }
    std::sort(nodes.begin(), nodes.end());  // deterministic order
    return nodes;
  };

  if (opt.destination_hotspots) {
    for (const NodeId t : hotspotNodes(/*by_destination=*/true)) {
      TrafficMatrix d = box.lo;
      for (NodeId s = 0; s < n; ++s) {
        if (s != t) d.set(s, t, box.hi.at(s, t));
      }
      pool.push_back(std::move(d));
    }
  }
  if (opt.source_hotspots) {
    for (const NodeId s : hotspotNodes(/*by_destination=*/false)) {
      TrafficMatrix d = box.lo;
      for (NodeId t = 0; t < n; ++t) {
        if (s != t) d.set(s, t, box.hi.at(s, t));
      }
      pool.push_back(std::move(d));
    }
  }
  if (opt.pair_hotspots > 0) {
    std::vector<std::pair<double, std::pair<NodeId, NodeId>>> pairs;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s != t && box.hi.at(s, t) > 0.0) {
          pairs.push_back({box.hi.at(s, t), {s, t}});
        }
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const int limit = std::min<int>(opt.pair_hotspots,
                                    static_cast<int>(pairs.size()));
    for (int k = 0; k < limit; ++k) {
      TrafficMatrix d = box.lo;
      d.set(pairs[k].second.first, pairs[k].second.second, pairs[k].first);
      pool.push_back(std::move(d));
    }
  }

  std::mt19937_64 rng(opt.seed);
  std::bernoulli_distribution coin(0.5);
  for (int k = 0; k < opt.random_corners; ++k) {
    TrafficMatrix d(n);
    bool any = false;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        const double v = coin(rng) ? box.hi.at(s, t) : box.lo.at(s, t);
        if (v > 0.0) any = true;
        d.set(s, t, v);
      }
    }
    if (any) pool.push_back(std::move(d));
  }
  return pool;
}

std::vector<TrafficMatrix> obliviousPool(int num_nodes,
                                         const ObliviousPoolOptions& opt) {
  require(num_nodes >= 2, "need >= 2 nodes");
  std::vector<TrafficMatrix> pool;
  if (opt.destination_concentrated) {
    for (NodeId t = 0; t < num_nodes; ++t) {
      TrafficMatrix d(num_nodes);
      for (NodeId s = 0; s < num_nodes; ++s) {
        if (s != t) d.set(s, t, 1.0);
      }
      pool.push_back(std::move(d));
    }
  }
  if (opt.source_concentrated) {
    for (NodeId s = 0; s < num_nodes; ++s) {
      TrafficMatrix d(num_nodes);
      for (NodeId t = 0; t < num_nodes; ++t) {
        if (s != t) d.set(s, t, 1.0);
      }
      pool.push_back(std::move(d));
    }
  }
  if (opt.uniform) {
    TrafficMatrix d(num_nodes);
    for (NodeId s = 0; s < num_nodes; ++s) {
      for (NodeId t = 0; t < num_nodes; ++t) {
        if (s != t) d.set(s, t, 1.0);
      }
    }
    pool.push_back(std::move(d));
  }
  std::mt19937_64 rng(opt.seed);
  std::uniform_int_distribution<int> pick(0, num_nodes - 1);
  for (int k = 0; k < opt.random_sparse; ++k) {
    TrafficMatrix d(num_nodes);
    int placed = 0;
    int guard = 100 * opt.sparse_active_pairs;
    while (placed < opt.sparse_active_pairs && guard-- > 0) {
      const NodeId s = pick(rng);
      const NodeId t = pick(rng);
      if (s == t || d.at(s, t) > 0.0) continue;
      d.set(s, t, 1.0);
      ++placed;
    }
    if (placed > 0) pool.push_back(std::move(d));
  }
  return pool;
}

}  // namespace coyote::tm
