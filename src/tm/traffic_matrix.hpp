// Traffic (demand) matrices and the base-demand models of Sec. VI-B.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace coyote::tm {

/// Dense |V| x |V| demand matrix; diagonal is always zero.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(int num_nodes)
      : n_(num_nodes), d_(static_cast<std::size_t>(num_nodes) * num_nodes, 0.0) {
    require(num_nodes >= 0, "negative node count");
  }

  [[nodiscard]] int numNodes() const { return n_; }

  [[nodiscard]] double at(NodeId s, NodeId t) const { return d_[idx(s, t)]; }

  void set(NodeId s, NodeId t, double v) {
    require(v >= 0.0, "negative demand");
    require(s != t, "diagonal demand must stay zero");
    d_[idx(s, t)] = v;
  }

  void scale(double f) {
    require(f >= 0.0, "negative scale");
    for (double& v : d_) v *= f;
  }

  [[nodiscard]] double total() const {
    double s = 0.0;
    for (const double v : d_) s += v;
    return s;
  }

  [[nodiscard]] double maxEntry() const {
    double m = 0.0;
    for (const double v : d_) m = std::max(m, v);
    return m;
  }

  /// (s,t) pairs with positive demand.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> nonZeroPairs() const;

  friend bool operator==(const TrafficMatrix& a, const TrafficMatrix& b) {
    return a.n_ == b.n_ && a.d_ == b.d_;
  }

 private:
  [[nodiscard]] std::size_t idx(NodeId s, NodeId t) const {
    require(s >= 0 && s < n_ && t >= 0 && t < n_, "demand index out of range");
    return static_cast<std::size_t>(s) * n_ + t;
  }
  int n_;
  std::vector<double> d_;
};

/// Gravity model [22]: d(s,t) proportional to outCapacity(s)*outCapacity(t),
/// normalized so the matrix total equals `total`.
[[nodiscard]] TrafficMatrix gravityMatrix(const Graph& g, double total = 1.0);

/// Shaping knobs for the structured-topology gravity matrices (the scaling
/// scenarios, src/exp/). Defaults reproduce gravityMatrix(g, total)
/// bit-identically.
struct GravityOptions {
  /// Keep only the k heaviest demands per source (0 = dense). Ties break
  /// deterministically toward the lower destination id. The surviving
  /// entries are renormalized so the matrix total still equals `total` --
  /// 1000-node rungs would otherwise drown in near-zero demands.
  int top_k = 0;
  /// Restrict endpoints to nodes whose name starts with this prefix
  /// (empty = all nodes). Models host-aggregated demands on fat-trees:
  /// only "edge" switches terminate traffic, mass-weighted as before.
  std::string endpoint_prefix;
};

/// Gravity model with sparsification/endpoint options; see GravityOptions.
[[nodiscard]] TrafficMatrix gravityMatrix(const Graph& g, double total,
                                          const GravityOptions& opt);

struct BimodalParams {
  double large_fraction = 0.2;  ///< fraction of pairs in the "elephant" mode
  double small_mean = 1.0;
  double small_stddev = 0.25;
  double large_mean = 10.0;
  double large_stddev = 2.5;
};

/// Bimodal model [23]: a small fraction of router pairs exchange large
/// (Gaussian) flows, the rest exchange small flows. Values truncated at 0.
/// Deterministic in (g, params, seed); normalized so the total equals
/// `total`.
[[nodiscard]] TrafficMatrix bimodalMatrix(const Graph& g,
                                          const BimodalParams& params,
                                          std::uint64_t seed,
                                          double total = 1.0);

/// Uniform model: every ordered pair exchanges the same demand; the matrix
/// total equals `total`.
[[nodiscard]] TrafficMatrix uniformMatrix(const Graph& g, double total = 1.0);

}  // namespace coyote::tm
