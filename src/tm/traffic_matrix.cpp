#include "tm/traffic_matrix.hpp"

#include <algorithm>
#include <random>

namespace coyote::tm {

std::vector<std::pair<NodeId, NodeId>> TrafficMatrix::nonZeroPairs() const {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId t = 0; t < n_; ++t) {
      if (s != t && at(s, t) > 0.0) pairs.emplace_back(s, t);
    }
  }
  return pairs;
}

TrafficMatrix gravityMatrix(const Graph& g, double total) {
  require(total >= 0.0, "negative total");
  const int n = g.numNodes();
  TrafficMatrix tm(n);
  std::vector<double> mass(n);
  for (NodeId v = 0; v < n; ++v) mass[v] = g.outCapacity(v);
  double sum = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      sum += mass[s] * mass[t];
    }
  }
  if (sum <= 0.0) return tm;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      tm.set(s, t, total * mass[s] * mass[t] / sum);
    }
  }
  return tm;
}

TrafficMatrix gravityMatrix(const Graph& g, double total,
                            const GravityOptions& opt) {
  require(total >= 0.0, "negative total");
  require(opt.top_k >= 0, "negative top_k");
  if (opt.top_k == 0 && opt.endpoint_prefix.empty()) {
    // The shaping knobs are off: take the exact historical code path so
    // existing matrices stay bit-identical.
    return gravityMatrix(g, total);
  }
  const int n = g.numNodes();
  TrafficMatrix tm(n);
  std::vector<double> mass(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (opt.endpoint_prefix.empty() ||
        g.nodeName(v).rfind(opt.endpoint_prefix, 0) == 0) {
      mass[v] = g.outCapacity(v);
    }
  }
  // Per-source sparsification before normalization: keep the top_k
  // heaviest destinations (ties toward the lower id -- partial_sort's
  // comparator makes the order total, so the selection is deterministic).
  std::vector<NodeId> dests;
  double sum = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    if (mass[s] <= 0.0) continue;
    dests.clear();
    for (NodeId t = 0; t < n; ++t) {
      if (t != s && mass[t] > 0.0) dests.push_back(t);
    }
    if (opt.top_k > 0 && static_cast<int>(dests.size()) > opt.top_k) {
      std::partial_sort(dests.begin(), dests.begin() + opt.top_k, dests.end(),
                        [&](NodeId a, NodeId b) {
                          if (mass[a] != mass[b]) return mass[a] > mass[b];
                          return a < b;
                        });
      dests.resize(static_cast<std::size_t>(opt.top_k));
    }
    for (const NodeId t : dests) {
      const double v = mass[s] * mass[t];
      tm.set(s, t, v);
      sum += v;
    }
  }
  if (sum > 0.0) tm.scale(total / sum);
  return tm;
}

TrafficMatrix bimodalMatrix(const Graph& g, const BimodalParams& params,
                            std::uint64_t seed, double total) {
  require(params.large_fraction >= 0.0 && params.large_fraction <= 1.0,
          "large_fraction out of [0,1]");
  require(total >= 0.0, "negative total");
  const int n = g.numNodes();
  TrafficMatrix tm(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::normal_distribution<double> small(params.small_mean,
                                         params.small_stddev);
  std::normal_distribution<double> large(params.large_mean,
                                         params.large_stddev);
  double sum = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const bool is_large = u01(rng) < params.large_fraction;
      const double v = std::max(0.0, is_large ? large(rng) : small(rng));
      tm.set(s, t, v);
      sum += v;
    }
  }
  if (sum > 0.0) tm.scale(total / sum);
  return tm;
}

TrafficMatrix uniformMatrix(const Graph& g, double total) {
  require(total >= 0.0, "negative total");
  const int n = g.numNodes();
  TrafficMatrix tm(n);
  if (n < 2) return tm;
  const double per_pair = total / (static_cast<double>(n) * (n - 1));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) tm.set(s, t, per_pair);
    }
  }
  return tm;
}

}  // namespace coyote::tm
