// Flow-level (fluid) network emulator -- the stand-in for the paper's
// mininet/iperf3 prototype testbed (Sec. VII, Fig. 12).
//
// Constant-bit-rate flows are routed by per-prefix splitting tables; every
// link delivers at most its capacity and drops the excess proportionally
// across the traffic traversing it. Because different prefixes share links,
// the drop factors are computed by a fixed-point iteration (converges
// geometrically for DAG routing). The emulator reports sent/delivered
// traffic per time step, from which packet-drop-rate curves like Fig. 12b
// are produced.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace coyote::sim {

using PrefixId = std::int32_t;

/// A constant-rate flow from `src` toward `prefix` during [start, end).
struct Flow {
  NodeId src = kInvalidNode;
  PrefixId prefix = -1;
  double rate = 0.0;  ///< traffic units per second
  double start = 0.0;
  double end = 0.0;
};

/// Per-step accounting.
struct StepStats {
  double time = 0.0;       ///< start of the step
  double sent = 0.0;       ///< traffic offered during the step
  double delivered = 0.0;  ///< traffic that reached its prefix owner

  [[nodiscard]] double dropRate() const {
    return sent > 0.0 ? 1.0 - delivered / sent : 0.0;
  }
};

class FluidNetwork {
 public:
  explicit FluidNetwork(const Graph& g);

  /// Declares the router that terminates traffic for `prefix`.
  void setPrefixOwner(PrefixId prefix, NodeId owner);

  /// Installs the forwarding entry of `node` for `prefix`: traffic is split
  /// over `splits` (fractions must sum to ~1; edges must leave `node`).
  void setForwarding(PrefixId prefix, NodeId node,
                     std::vector<std::pair<EdgeId, double>> splits);

  void addFlow(const Flow& flow);

  /// Runs the emulation for `duration` seconds in steps of `dt`.
  /// Forwarding must be loop-free per prefix (checked; throws otherwise).
  [[nodiscard]] std::vector<StepStats> run(double duration, double dt) const;

  [[nodiscard]] const Graph& graph() const { return g_; }

 private:
  struct PrefixState {
    NodeId owner = kInvalidNode;
    // splits[node] = list of (edge, fraction).
    std::vector<std::vector<std::pair<EdgeId, double>>> splits;
  };

  const Graph& g_;
  std::vector<PrefixId> prefix_ids_;
  std::vector<PrefixState> prefixes_;
  std::vector<Flow> flows_;

  [[nodiscard]] int prefixSlot(PrefixId p) const;
  int ensurePrefix(PrefixId p);
};

}  // namespace coyote::sim
