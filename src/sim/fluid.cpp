#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>

namespace coyote::sim {

FluidNetwork::FluidNetwork(const Graph& g) : g_(g) {}

int FluidNetwork::prefixSlot(PrefixId p) const {
  for (std::size_t i = 0; i < prefix_ids_.size(); ++i) {
    if (prefix_ids_[i] == p) return static_cast<int>(i);
  }
  return -1;
}

int FluidNetwork::ensurePrefix(PrefixId p) {
  const int slot = prefixSlot(p);
  if (slot >= 0) return slot;
  prefix_ids_.push_back(p);
  PrefixState st;
  st.splits.assign(g_.numNodes(), {});
  prefixes_.push_back(std::move(st));
  return static_cast<int>(prefix_ids_.size()) - 1;
}

void FluidNetwork::setPrefixOwner(PrefixId prefix, NodeId owner) {
  require(owner >= 0 && owner < g_.numNodes(), "owner out of range");
  prefixes_[ensurePrefix(prefix)].owner = owner;
}

void FluidNetwork::setForwarding(PrefixId prefix, NodeId node,
                                 std::vector<std::pair<EdgeId, double>> splits) {
  require(node >= 0 && node < g_.numNodes(), "node out of range");
  double sum = 0.0;
  for (const auto& [e, f] : splits) {
    require(e >= 0 && e < g_.numEdges(), "edge out of range");
    require(g_.edge(e).src == node, "forwarding edge must leave the node");
    require(f >= 0.0, "negative split fraction");
    sum += f;
  }
  require(splits.empty() || std::abs(sum - 1.0) <= 1e-6,
          "split fractions must sum to 1");
  prefixes_[ensurePrefix(prefix)].splits[node] = std::move(splits);
}

void FluidNetwork::addFlow(const Flow& flow) {
  require(flow.src >= 0 && flow.src < g_.numNodes(), "flow src out of range");
  require(flow.rate >= 0.0, "negative flow rate");
  require(flow.end >= flow.start, "flow ends before it starts");
  require(prefixSlot(flow.prefix) >= 0, "flow toward unknown prefix");
  flows_.push_back(flow);
}

std::vector<StepStats> FluidNetwork::run(double duration, double dt) const {
  require(duration > 0.0 && dt > 0.0, "bad duration/step");

  // Topological order per prefix over its positive-split edges (throws on a
  // forwarding loop).
  std::vector<std::vector<NodeId>> topo(prefixes_.size());
  for (std::size_t pi = 0; pi < prefixes_.size(); ++pi) {
    const auto& st = prefixes_[pi];
    require(st.owner != kInvalidNode, "prefix without an owner");
    std::vector<int> indeg(g_.numNodes(), 0);
    for (NodeId u = 0; u < g_.numNodes(); ++u) {
      for (const auto& [e, f] : st.splits[u]) {
        if (f > 0.0) ++indeg[g_.edge(e).dst];
      }
    }
    std::vector<NodeId> queue;
    for (NodeId v = 0; v < g_.numNodes(); ++v) {
      if (indeg[v] == 0) queue.push_back(v);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (const auto& [e, f] : st.splits[u]) {
        if (f > 0.0 && --indeg[g_.edge(e).dst] == 0) {
          queue.push_back(g_.edge(e).dst);
        }
      }
    }
    require(static_cast<int>(queue.size()) == g_.numNodes(),
            "forwarding loop for a prefix");
    topo[pi] = std::move(queue);
  }

  std::vector<StepStats> stats;
  const int steps = static_cast<int>(std::ceil(duration / dt - 1e-9));
  std::vector<double> factor(g_.numEdges(), 1.0);  // delivered fraction
  std::vector<double> arrivals(g_.numEdges(), 0.0);
  std::vector<double> inflow(g_.numNodes(), 0.0);

  for (int s = 0; s < steps; ++s) {
    StepStats st;
    st.time = s * dt;

    // Injections active during this step.
    std::vector<std::vector<double>> inject(prefixes_.size(),
                                            std::vector<double>(g_.numNodes(), 0.0));
    for (const Flow& f : flows_) {
      const double overlap =
          std::max(0.0, std::min(f.end, st.time + dt) - std::max(f.start, st.time));
      if (overlap <= 0.0) continue;
      const double rate = f.rate * overlap / dt;
      inject[prefixSlot(f.prefix)][f.src] += rate;
      st.sent += rate * dt;
    }

    // Fixed point on link drop factors (links couple the prefixes).
    std::fill(factor.begin(), factor.end(), 1.0);
    double delivered_rate = 0.0;
    for (int round = 0; round < 60; ++round) {
      std::fill(arrivals.begin(), arrivals.end(), 0.0);
      delivered_rate = 0.0;
      for (std::size_t pi = 0; pi < prefixes_.size(); ++pi) {
        const auto& pre = prefixes_[pi];
        std::copy(inject[pi].begin(), inject[pi].end(), inflow.begin());
        for (const NodeId u : topo[pi]) {
          if (u == pre.owner) continue;
          for (const auto& [e, frac] : pre.splits[u]) {
            const double offered = inflow[u] * frac;
            arrivals[e] += offered;
            inflow[g_.edge(e).dst] += offered * factor[e];
          }
        }
        delivered_rate += inflow[pre.owner];
      }
      double worst_adjust = 0.0;
      for (EdgeId e = 0; e < g_.numEdges(); ++e) {
        const double want =
            arrivals[e] > g_.edge(e).capacity ? g_.edge(e).capacity / arrivals[e] : 1.0;
        worst_adjust = std::max(worst_adjust, std::abs(want - factor[e]));
        factor[e] = want;
      }
      if (worst_adjust < 1e-12) break;
    }
    st.delivered = delivered_rate * dt;
    stats.push_back(st);
  }
  return stats;
}

}  // namespace coyote::sim
