// splitmix64: the repo-wide portable PRNG. Standard-library distributions
// (and std::shuffle's use of them) are not reproducible across standard
// libraries, so everything that must be deterministic cross-platform --
// trace generation (src/serve/), synthetic topologies (src/topo/) -- draws
// from these helpers instead. State is the caller's raw std::uint64_t seed;
// the sequence is a pure function of it.
#pragma once

#include <cstdint>
#include <vector>

namespace coyote::util::rng {

inline std::uint64_t nextU64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform int in [0, n). n must be positive. The modulo bias is below
/// 2^-32 for every n used in this repo and buys exact reproducibility of
/// the historical serve traces.
inline int nextInt(std::uint64_t& state, int n) {
  return static_cast<int>(nextU64(state) % static_cast<std::uint64_t>(n));
}

/// Uniform double in [0, 1) with 53 random bits.
inline double nextUnit(std::uint64_t& state) {
  return static_cast<double>(nextU64(state) >> 11) * 0x1.0p-53;
}

/// Fisher-Yates shuffle driven by nextInt (std::shuffle is not
/// cross-platform stable).
template <typename T>
void shuffle(std::vector<T>& v, std::uint64_t& state) {
  for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
    const int j = nextInt(state, i + 1);
    std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
  }
}

}  // namespace coyote::util::rng
