// Process peak-memory probe for BENCH telemetry (src/exp/).
#pragma once

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

namespace coyote::util {

/// Peak resident set size of the calling process in MiB (0.0 where the
/// platform has no getrusage). Monotonic over the process lifetime, so a
/// sequence of probes yields "peak RSS so far" -- each scaling rung's
/// value upper-bounds its own footprint plus everything before it.
/// `mem_`-prefixed BENCH fields carry these values and are exempt from
/// the bench_compare drift gate (allocator- and machine-sensitive).
inline double peakRssMb() {
#if defined(_WIN32)
  return 0.0;
#else
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  // ru_maxrss is bytes on macOS, KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#endif
}

}  // namespace coyote::util
