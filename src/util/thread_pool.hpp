// A small reusable worker pool for data-parallel index loops.
//
// The COYOTE hot paths (pool normalization in addPool, per-matrix
// propagation in PerformanceEvaluator::ratioFor/worst) are embarrassingly
// parallel over matrix indices. This pool replaces their ad-hoc
// std::thread spawning with persistent workers: parallelFor(n, fn) hands
// indices out through an atomic counter, the calling thread participates
// as worker 0, and the call returns only when every index is done.
//
// Determinism: workers write results into caller-owned, index-addressed
// slots and any reduction happens serially on the caller's side, so the
// outcome is bit-identical no matter how many threads run the loop
// (including thread_count() == 1, which executes entirely inline).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coyote::util {

class ThreadPool {
 public:
  /// Creates a pool that runs loops on `threads` threads in total
  /// (the caller counts as one; `threads - 1` workers are spawned).
  /// `threads == 0` picks the hardware default (see defaultThreads()).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a loop runs on, caller included; always >= 1.
  [[nodiscard]] unsigned threadCount() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// pool, and blocks until all n calls returned. The first exception
  /// thrown by any fn(i) is rethrown here (remaining indices may be
  /// skipped). Safe to call from several threads at once (concurrent
  /// jobs are serialized). Not reentrant: fn must not call parallelFor
  /// on the *same* pool -- a nested call would block on the outer job's
  /// submission lock from inside that very job and deadlock. The entry
  /// guard detects this and throws std::invalid_argument immediately
  /// (at every thread count, so misuse cannot hide behind
  /// COYOTE_THREADS=1's inline path). Dispatching into a *different*
  /// pool from inside a job is fine.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool, sized by defaultThreads(); lazily built.
  static ThreadPool& global();

  /// COYOTE_THREADS if set to a positive integer, else
  /// std::thread::hardware_concurrency() (else 1).
  static unsigned defaultThreads();

 private:
  void workerLoop();
  // Pulls indices from next_ and applies fn until the job is exhausted;
  // on exception, records the first error and cancels remaining indices.
  void runIndices(const std::function<void(std::size_t)>& fn, std::size_t n);

  unsigned threads_;
  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  // serializes concurrent parallelFor callers
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // Current job; fn_/n_ written by the caller under mutex_, read by
  // workers under mutex_ when they pick the job up. next_ is the shared
  // index dispenser. A job is finished when next_ >= n_ and active_ == 0.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  unsigned active_ = 0;        // workers inside runIndices; guarded by mutex_
  std::exception_ptr error_;   // first failure; guarded by mutex_
  bool stop_ = false;          // guarded by mutex_
};

}  // namespace coyote::util
