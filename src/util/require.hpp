// Small contract-checking helpers shared across the COYOTE libraries.
//
// Follows the C++ Core Guidelines (I.6/E.x): preconditions are checked and
// violations reported as exceptions so that library misuse is diagnosed
// eagerly instead of corrupting downstream computations.
#pragma once

#include <stdexcept>
#include <string>

namespace coyote {

/// Throws std::invalid_argument with `what` unless `cond` holds.
/// Used for checking caller-supplied arguments (preconditions).
inline void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument(what);
}

/// Throws std::logic_error with `what` unless `cond` holds.
/// Used for internal invariants that should be unreachable.
inline void ensure(bool cond, const std::string& what) {
  if (!cond) throw std::logic_error(what);
}

}  // namespace coyote
