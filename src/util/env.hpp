// Environment-variable knobs, shared by benches, tools and tests.
//
// Every runtime surface of the repo reads the same small set of COYOTE_*
// variables (COYOTE_FULL, COYOTE_EXACT, COYOTE_THREADS, ...); these helpers
// are the single parsing point so the semantics ("set and not '0'") cannot
// drift between binaries.
#pragma once

#include <cstdlib>
#include <string>

namespace coyote::util {

/// True iff `name` is set to a non-empty value other than "0".
[[nodiscard]] inline bool envFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Integer value of `name`, or `fallback` when unset/unparsable.
[[nodiscard]] inline long envInt(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// String value of `name`, or `fallback` when unset.
[[nodiscard]] inline std::string envString(const char* name,
                                           const std::string& fallback = {}) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

}  // namespace coyote::util
