#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace coyote::util::json {

namespace {

void appendIndent(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

}  // namespace

Value& Value::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  requireType(Type::kObject, "object");
  for (Member& m : obj_) {
    if (m.first == key) return m.second;
  }
  obj_.emplace_back(key, Value());
  return obj_.back().second;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

double Value::numberOr(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->isNumber() ? v->asNumber() : fallback;
}

std::string Value::stringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->isString() ? v->asString() : fallback;
}

void Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  requireType(Type::kArray, "array");
  arr_.push_back(std::move(v));
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::kNull:
      return true;
    case Value::Type::kBool:
      return a.bool_ == b.bool_;
    case Value::Type::kNumber:
      return a.num_ == b.num_;
    case Value::Type::kString:
      return a.str_ == b.str_;
    case Value::Type::kArray:
      return a.arr_ == b.arr_;
    case Value::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

std::string formatNumber(double d) {
  if (const char* tag = nonFiniteTag(d)) return tag;
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

const char* nonFiniteTag(double d) {
  if (std::isfinite(d)) return nullptr;
  if (std::isnan(d)) return "nan";
  return d > 0.0 ? "inf" : "-inf";
}

bool decodeNumber(const Value& v, double* out) {
  if (v.isNumber()) {
    *out = v.asNumber();
    return true;
  }
  if (v.isString()) {
    const std::string& s = v.asString();
    if (s == "inf") {
      *out = std::numeric_limits<double>::infinity();
      return true;
    }
    if (s == "-inf") {
      *out = -std::numeric_limits<double>::infinity();
      return true;
    }
    if (s == "nan") {
      *out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
  }
  return false;
}

std::string escapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Value::writeTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      // Non-finite numbers become tagged strings: JSON has no Inf/NaN
      // tokens, and dropping them to null would lose the one thing a
      // +inf failure ratio means (decodeNumber() reads them back).
      if (const char* tag = nonFiniteTag(num_)) {
        out.push_back('"');
        out += tag;
        out.push_back('"');
        return;
      }
      out += formatNumber(num_);
      return;
    case Type::kString:
      out.push_back('"');
      out += escapeString(str_);
      out.push_back('"');
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        appendIndent(out, indent, depth + 1);
        arr_[i].writeTo(out, indent, depth + 1);
      }
      appendIndent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out.push_back(',');
        appendIndent(out, indent, depth + 1);
        out.push_back('"');
        out += escapeString(obj_[i].first);
        out += indent > 0 ? "\": " : "\":";
        obj_[i].second.writeTo(out, indent, depth + 1);
      }
      appendIndent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  writeTo(out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

// ------------------------------------------------------------- parser ---

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parseValue() {
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return Value(parseString());
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (consumeLiteral("null")) return Value(nullptr);
        failIfNonFinite();
        fail("bad literal");
      case 'i':
      case 'I':
      case 'N':
        failIfNonFinite();
        fail("bad literal");
      default:
        return parseNumber();
    }
  }

  /// Bare Inf/NaN tokens are what tolerant writers emit for non-finite
  /// doubles; they are not JSON. Reject them by name so the error says
  /// what went wrong instead of a generic "expected a value" -- this
  /// writer encodes non-finite numbers as the tagged strings "inf",
  /// "-inf" and "nan" (see nonFiniteTag).
  void failIfNonFinite() {
    for (const char* lit : {"Infinity", "infinity", "inf", "NaN", "nan"}) {
      std::size_t n = 0;
      while (lit[n] != '\0') ++n;
      if (text_.compare(pos_, n, lit) == 0) {
        fail(std::string("non-finite number token '") + lit +
             "' is not valid JSON (this writer encodes non-finite doubles "
             "as tagged strings: \"inf\", \"-inf\", \"nan\")");
      }
    }
  }

  Value parseObject() {
    expect('{');
    Value out = Value::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      out[key] = parseValue();
      skipWhitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parseArray() {
    expect('[');
    Value out = Value::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parseValue());
      skipWhitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8 (no surrogate-pair merging;
          // the writer only emits \u for control characters).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
      failIfNonFinite();  // "-Infinity" / "-inf" / "-nan"
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      fail("malformed number");
    }
    return Value(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace coyote::util::json
