// Dependency-free JSON document model: an ordered value tree, a writer
// emitting deterministic round-trippable text, and a small strict parser.
//
// This backs the machine-readable BENCH_<scenario>.json files the
// experiment runner emits and the bench_compare regression gate consumes.
// Scope is deliberately small: UTF-8 pass-through (no surrogate handling
// beyond \uXXXX escapes for control characters), doubles via shortest
// round-trip formatting, objects keep insertion order so emitted files
// diff cleanly.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace coyote::util::json {

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;  // insertion-ordered

/// Thrown by the parser on malformed input and by typed accessors on
/// type mismatches.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Value(int i) : type_(Type::kNumber), num_(i) {}  // NOLINT
  Value(long i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}  // NOLINT
  Value(unsigned i) : type_(Type::kNumber), num_(i) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }
  [[nodiscard]] bool isBool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool isNumber() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool isString() const { return type_ == Type::kString; }
  [[nodiscard]] bool isArray() const { return type_ == Type::kArray; }
  [[nodiscard]] bool isObject() const { return type_ == Type::kObject; }

  [[nodiscard]] bool asBool() const {
    requireType(Type::kBool, "bool");
    return bool_;
  }
  [[nodiscard]] double asNumber() const {
    requireType(Type::kNumber, "number");
    return num_;
  }
  [[nodiscard]] const std::string& asString() const {
    requireType(Type::kString, "string");
    return str_;
  }
  [[nodiscard]] const Array& asArray() const {
    requireType(Type::kArray, "array");
    return arr_;
  }
  [[nodiscard]] const Object& asObject() const {
    requireType(Type::kObject, "object");
    return obj_;
  }

  /// Object member access; inserts a null member when absent (like a map).
  Value& operator[](const std::string& key);

  /// Pointer to the member value, or nullptr when absent / not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Member value or `fallback` when absent (object access only).
  [[nodiscard]] double numberOr(const std::string& key, double fallback) const;
  [[nodiscard]] std::string stringOr(const std::string& key,
                                     const std::string& fallback) const;

  /// Appends to an array value (the value must be an array).
  void push_back(Value v);

  /// Serializes the tree. indent > 0 pretty-prints with that many spaces
  /// per level; indent == 0 emits compact single-line JSON.
  [[nodiscard]] std::string dump(int indent = 2) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  void requireType(Type t, const char* what) const {
    if (type_ != t) throw Error(std::string("json: value is not a ") + what);
  }
  void writeTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Serializes a double exactly as the writer does (shortest round-trip
/// form; integral values without exponent or trailing ".0"). Non-finite
/// values return their tag ("inf", "-inf", "nan"); the writer emits the
/// tag as a JSON *string*, since JSON has no non-finite number tokens.
[[nodiscard]] std::string formatNumber(double d);

/// The tagged-string encoding of non-finite doubles ("inf", "-inf",
/// "nan"), or nullptr for finite values. The failure sweeps legitimately
/// produce +inf ratios (a loaded link with zero surviving capacity), so
/// the writer encodes them losslessly instead of emitting null or an
/// invalid bare token; a parsed document holds them as strings.
[[nodiscard]] const char* nonFiniteTag(double d);

/// Decodes a value written by the number writer: true for real numbers
/// and for the tagged non-finite strings (writing the decoded double to
/// *out), false for everything else. This is the read side of the
/// round-trip: number -> dump -> parse -> decodeNumber recovers the
/// value, infinities included.
[[nodiscard]] bool decodeNumber(const Value& v, double* out);

/// Escapes `s` as the contents of a JSON string literal (no quotes).
[[nodiscard]] std::string escapeString(const std::string& s);

/// Strict parser for the subset this writer emits (standard JSON minus
/// \u surrogate pairs, which pass through as-is). Throws Error with a
/// byte offset on malformed input. Trailing garbage is an error.
[[nodiscard]] Value parse(const std::string& text);

}  // namespace coyote::util::json
