// Monotonic wall-clock timing for benches and the experiment runner.
#pragma once

#include <chrono>

namespace coyote::util {

/// Seconds on a monotonic clock (arbitrary epoch); subtract two readings.
[[nodiscard]] inline double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(nowSeconds()) {}

  [[nodiscard]] double elapsedSeconds() const { return nowSeconds() - start_; }

  void reset() { start_ = nowSeconds(); }

 private:
  double start_;
};

}  // namespace coyote::util
