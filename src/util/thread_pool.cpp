#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/env.hpp"

namespace coyote::util {

ThreadPool::ThreadPool(unsigned threads)
    : threads_(std::max(1u, threads == 0 ? defaultThreads() : threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Serialize concurrent submitters: callers that race on the shared pool
  // (e.g. two threads evaluating on the same PerformanceEvaluator) run
  // their jobs back to back instead of corrupting fn_/n_/next_.
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    error_ = nullptr;
    next_.store(0);
  }
  work_ready_.notify_all();
  runIndices(fn, n);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&] { return next_.load() >= n_ && active_ == 0; });
  fn_ = nullptr;
  n_ = 0;
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stop_ || next_.load() < n_; });
    if (stop_) return;
    const std::function<void(std::size_t)>& fn = *fn_;
    const std::size_t n = n_;
    ++active_;
    lock.unlock();
    runIndices(fn, n);
    lock.lock();
    --active_;
    if (active_ == 0 && next_.load() >= n_) work_done_.notify_all();
  }
}

void ThreadPool::runIndices(const std::function<void(std::size_t)>& fn,
                            std::size_t n) {
  try {
    for (std::size_t i = next_.fetch_add(1); i < n; i = next_.fetch_add(1)) {
      fn(i);
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
    next_.store(n);  // cancel indices not yet handed out
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::defaultThreads() {
  const long v = envInt("COYOTE_THREADS", 0);
  if (v > 0) return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

}  // namespace coyote::util
