#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/env.hpp"
#include "util/require.hpp"

namespace coyote::util {

namespace {

/// The pool whose job this thread is currently executing (nullptr
/// outside parallelFor). Backs the reentrancy guard: a nested
/// parallelFor on the same pool would deadlock on submit_mutex_, so it
/// must fail fast instead. A RAII frame (not a bare assignment) keeps
/// the marker correct when pools nest across *different* instances.
thread_local const ThreadPool* tls_running_pool = nullptr;

class RunningPoolFrame {
 public:
  explicit RunningPoolFrame(const ThreadPool* pool)
      : previous_(tls_running_pool) {
    tls_running_pool = pool;
  }
  ~RunningPoolFrame() { tls_running_pool = previous_; }
  RunningPoolFrame(const RunningPoolFrame&) = delete;
  RunningPoolFrame& operator=(const RunningPoolFrame&) = delete;

 private:
  const ThreadPool* previous_;
};

}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : threads_(std::max(1u, threads == 0 ? defaultThreads() : threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  // Fail-fast reentrancy guard, checked before any early return so the
  // error is identical at every thread count and job size (the deadlock
  // it prevents only bites on the multi-threaded path).
  require(tls_running_pool != this,
          "ThreadPool::parallelFor called from inside one of this pool's "
          "own jobs (not reentrant; it would deadlock) -- run the nested "
          "loop serially or on a different pool");
  if (n == 0) return;
  if (threads_ == 1 || n == 1 || workers_.empty()) {
    const RunningPoolFrame frame(this);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Serialize concurrent submitters: callers that race on the shared pool
  // (e.g. two threads evaluating on the same PerformanceEvaluator) run
  // their jobs back to back instead of corrupting fn_/n_/next_.
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    error_ = nullptr;
    next_.store(0);
  }
  work_ready_.notify_all();
  runIndices(fn, n);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&] { return next_.load() >= n_ && active_ == 0; });
  fn_ = nullptr;
  n_ = 0;
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stop_ || next_.load() < n_; });
    if (stop_) return;
    const std::function<void(std::size_t)>& fn = *fn_;
    const std::size_t n = n_;
    ++active_;
    lock.unlock();
    runIndices(fn, n);
    lock.lock();
    --active_;
    if (active_ == 0 && next_.load() >= n_) work_done_.notify_all();
  }
}

void ThreadPool::runIndices(const std::function<void(std::size_t)>& fn,
                            std::size_t n) {
  const RunningPoolFrame frame(this);
  try {
    for (std::size_t i = next_.fetch_add(1); i < n; i = next_.fetch_add(1)) {
      fn(i);
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
    next_.store(n);  // cancel indices not yet handed out
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::defaultThreads() {
  const long v = envInt("COYOTE_THREADS", 0);
  if (v > 0) return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

}  // namespace coyote::util
