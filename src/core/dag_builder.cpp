#include "core/dag_builder.hpp"

#include <cmath>
#include <limits>

namespace coyote::core {

Dag augmentedDag(const Graph& g, NodeId dest) {
  const ShortestPathsToDest sp = shortestPathsTo(g, dest);
  std::vector<EdgeId> edges = shortestPathDagEdges(g, sp);
  std::vector<char> in_dag(g.numEdges(), 0);
  for (const EdgeId e : edges) in_dag[e] = 1;

  // Orient every remaining physical link toward the endpoint closer to dest.
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    if (in_dag[e]) continue;
    if (ed.reverse != kInvalidEdge && in_dag[ed.reverse]) continue;
    if (ed.reverse != kInvalidEdge && ed.reverse < e) continue;  // visit once
    const double ds = sp.dist[ed.src];
    const double dt = sp.dist[ed.dst];
    if (std::isinf(ds) || std::isinf(dt)) continue;  // disconnected endpoint
    EdgeId oriented = e;  // src -> dst, used when dst is closer
    if (dt < ds) {
      oriented = e;
    } else if (ds < dt) {
      oriented = ed.reverse;
    } else {
      // Tie: orient from the lexicographically smaller node id to the
      // larger one -- deterministic and acyclic (ids strictly increase
      // along tie edges), and it reproduces the Fig. 1c orientation
      // (s2 -> v) of the paper's running example.
      oriented = (ed.src < ed.dst) ? e : ed.reverse;
    }
    if (oriented == kInvalidEdge) continue;  // unidirectional, wrong way
    if (g.edge(oriented).src == dest) continue;  // never point out of dest
    in_dag[oriented] = 1;
    edges.push_back(oriented);
  }
  return Dag(g, dest, std::move(edges));
}

DagSet augmentedDags(const Graph& g) {
  DagSet dags;
  dags.reserve(g.numNodes());
  for (NodeId t = 0; t < g.numNodes(); ++t) dags.push_back(augmentedDag(g, t));
  return dags;
}

std::shared_ptr<const DagSet> augmentedDagsShared(const Graph& g) {
  return std::make_shared<const DagSet>(augmentedDags(g));
}

}  // namespace coyote::core
