// The local-search DAG-generation heuristic (Sec. V-B, Appendix A, Alg. 1).
//
// Maintains a set T of "critical" demand matrices. Each round: build the
// shortest-path DAGs for the current weights, find a worst-case demand
// matrix for ECMP over those DAGs, add it to T, and -- unless utilization is
// already below the target bound -- apply Fortz-Thorup-style single-weight
// moves that reduce the *maximum* (not Phi-scaled average; see the paper's
// adaptation notes (i)-(iii)) normalized link utilization over T.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::core {

enum class WorstCaseOracle {
  kCornerPool,  ///< argmax over a corner pool (fast; default)
  kExactLp      ///< per-edge slave LP (exact; small networks)
};

struct LocalSearchOptions {
  int max_rounds = 4;           ///< outer iterations of Algorithm 1
  int max_moves_per_round = 24; ///< accepted single-weight moves per round
  double target_bound = 1.05;   ///< stop when normalized utilization <= B
  int max_weight = 64;          ///< OSPF weights stay integral in [1, max]
  WorstCaseOracle oracle = WorstCaseOracle::kCornerPool;
  tm::PoolOptions pool;         ///< corners used by the pool oracle
  std::uint64_t seed = 11;
};

struct LocalSearchResult {
  std::vector<double> weights;  ///< per-edge weights (indexed by EdgeId)
  double utilization = 0.0;     ///< final normalized worst-case utilization
  int rounds = 0;
  int accepted_moves = 0;
};

/// Runs the heuristic for ECMP routing under the demand uncertainty `box`
/// and returns improved integral link weights. The input graph is not
/// modified; apply the weights with Graph::setWeight before building DAGs.
[[nodiscard]] LocalSearchResult localSearchWeights(
    const Graph& g, const tm::DemandBounds& box,
    const LocalSearchOptions& opt = {});

}  // namespace coyote::core
