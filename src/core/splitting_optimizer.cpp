#include "core/splitting_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/thread_pool.hpp"

namespace coyote::core {
namespace {

using routing::RoutingConfig;

/// Flat phi array indexed [t * numEdges + e]; mirrors RoutingConfig.
struct Phi {
  int n, m;
  std::vector<double> v;

  Phi(int nodes, int edges)
      : n(nodes), m(edges), v(static_cast<std::size_t>(nodes) * edges, 0.0) {}

  double& at(NodeId t, EdgeId e) { return v[static_cast<std::size_t>(t) * m + e]; }
  double at(NodeId t, EdgeId e) const {
    return v[static_cast<std::size_t>(t) * m + e];
  }
};

Phi fromConfig(const Graph& g, const RoutingConfig& cfg) {
  Phi phi(g.numNodes(), g.numEdges());
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    for (const EdgeId e : cfg.dags()[t].edges()) phi.at(t, e) = cfg.ratio(t, e);
  }
  return phi;
}

RoutingConfig toConfig(const Graph& g, const RoutingConfig& like,
                       const Phi& phi, double prune_below) {
  RoutingConfig cfg(g, like.dagsPtr());
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    const Dag& dag = cfg.dags()[t];
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      const auto& out = dag.outEdges(u);
      if (out.empty()) continue;
      // Prune negligible ratios but always keep the largest one.
      EdgeId best = out.front();
      for (const EdgeId e : out) {
        if (phi.at(t, e) > phi.at(t, best)) best = e;
      }
      for (const EdgeId e : out) {
        const double r = phi.at(t, e);
        cfg.setRatio(t, e, (e == best || r >= prune_below) ? r : 0.0);
      }
    }
  }
  cfg.normalize(g);
  return cfg;
}

/// Demand columns with any positive entry, per pool matrix.
struct ActiveDemand {
  NodeId dest;
  std::vector<double> column;  // column[s] = d(s,dest)
};

std::vector<std::vector<ActiveDemand>> activeColumns(
    const routing::PerformanceEvaluator& pool) {
  std::vector<std::vector<ActiveDemand>> act(pool.size());
  const int n = pool.graph().numNodes();
  for (int i = 0; i < pool.size(); ++i) {
    const tm::TrafficMatrix& d = pool.matrix(i);
    for (NodeId t = 0; t < n; ++t) {
      ActiveDemand a{t, std::vector<double>(n, 0.0)};
      bool any = false;
      for (NodeId s = 0; s < n; ++s) {
        if (s == t) continue;
        a.column[s] = d.at(s, t);
        any = any || a.column[s] > 0.0;
      }
      if (any) act[i].push_back(std::move(a));
    }
  }
  return act;
}

}  // namespace

routing::RoutingConfig optimizeSplitting(
    const Graph& g, const routing::PerformanceEvaluator& pool,
    const routing::RoutingConfig& init, const SplittingOptions& opt,
    int* iterations_used) {
  require(opt.iterations >= 1, "need >= 1 iteration");
  require(pool.size() > 0, "empty demand pool");
  const int n = g.numNodes();
  const int m = g.numEdges();
  const DagSet& dags = init.dags();

  const auto active = activeColumns(pool);
  Phi phi = fromConfig(g, init);

  // Forward state per (pool matrix, destination): inflow at every node.
  // Stored flat: flows[i] holds one vector per active destination of i.
  std::vector<std::vector<std::vector<double>>> inflow(pool.size());
  for (int i = 0; i < pool.size(); ++i) {
    inflow[i].assign(active[i].size(), std::vector<double>(n, 0.0));
  }
  std::vector<double> grad(static_cast<std::size_t>(n) * m, 0.0);
  std::vector<double> mu(n, 0.0);

  Phi best = phi;
  double best_util = std::numeric_limits<double>::infinity();
  int executed = 0;
  int since_best = 0;

  for (int iter = 0; iter < opt.iterations; ++iter) {
    ++executed;
    // ---- Forward: per-matrix link loads. Matrices are independent, so
    // they propagate on the shared thread pool; umax reduces serially
    // afterwards (max is order-insensitive, so this is bit-deterministic).
    std::vector<std::vector<double>> util(pool.size(),
                                          std::vector<double>(m, 0.0));
    util::ThreadPool::global().parallelFor(
        static_cast<std::size_t>(pool.size()), [&](std::size_t i) {
          std::vector<double> loads(m, 0.0);
          for (std::size_t k = 0; k < active[i].size(); ++k) {
            const ActiveDemand& a = active[i][k];
            const Dag& dag = dags[a.dest];
            auto& F = inflow[i][k];
            std::copy(a.column.begin(), a.column.end(), F.begin());
            for (const NodeId u : dag.topoOrder()) {
              if (u == a.dest || F[u] <= 0.0) continue;
              for (const EdgeId e : dag.outEdges(u)) {
                const double flow = F[u] * phi.at(a.dest, e);
                loads[e] += flow;
                F[g.edge(e).dst] += flow;
              }
            }
          }
          for (EdgeId e = 0; e < m; ++e) {
            util[i][e] = loads[e] / g.edge(e).capacity;
          }
        });
    double umax = 0.0;
    for (int i = 0; i < pool.size(); ++i) {
      for (EdgeId e = 0; e < m; ++e) umax = std::max(umax, util[i][e]);
    }
    // A meaningful (relative) improvement resets the patience clock; the
    // `best` snapshot itself still tracks any strict improvement.
    if (umax < best_util - 1e-9 * std::max(1.0, best_util)) {
      since_best = 0;
    } else {
      ++since_best;
    }
    if (umax < best_util) {
      best_util = umax;
      best = phi;
    }
    if (umax <= 0.0) break;
    if (opt.patience > 0 && since_best >= opt.patience) break;

    // ---- Softmax constraint weights (annealed temperature).
    const double anneal = static_cast<double>(iter) / std::max(1, opt.iterations - 1);
    const double tau =
        umax * (opt.temperature_start +
                (opt.temperature_end - opt.temperature_start) * anneal);
    double wsum = 0.0;
    for (int i = 0; i < pool.size(); ++i) {
      for (EdgeId e = 0; e < m; ++e) {
        const double w = std::exp((util[i][e] - umax) / std::max(tau, 1e-9));
        util[i][e] = (w > 1e-12) ? w : 0.0;  // reuse util[] as weight storage
        wsum += util[i][e];
      }
    }

    // ---- Backward: adjoint gradient of the weighted utilization.
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int i = 0; i < pool.size(); ++i) {
      bool any = false;
      for (EdgeId e = 0; e < m && !any; ++e) any = util[i][e] > 0.0;
      if (!any) continue;
      for (std::size_t k = 0; k < active[i].size(); ++k) {
        const ActiveDemand& a = active[i][k];
        const Dag& dag = dags[a.dest];
        const auto& F = inflow[i][k];
        std::fill(mu.begin(), mu.end(), 0.0);
        const auto& topo = dag.topoOrder();
        for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
          const NodeId u = *it;
          if (u == a.dest) continue;
          double acc = 0.0;
          for (const EdgeId e : dag.outEdges(u)) {
            const double G = util[i][e] / (wsum * g.edge(e).capacity);
            acc += phi.at(a.dest, e) * (G + mu[g.edge(e).dst]);
          }
          mu[u] = acc;
        }
        for (const EdgeId e : dag.edges()) {
          const Edge& ed = g.edge(e);
          const double G = util[i][e] / (wsum * ed.capacity);
          grad[static_cast<std::size_t>(a.dest) * m + e] +=
              F[ed.src] * (G + mu[ed.dst]);
        }
      }
    }

    // ---- Multiplicative update per (destination, node) simplex.
    // Step size decays over the run so late iterations settle onto the
    // (annealed, nearly hard-max) optimum instead of oscillating.
    const double lr = opt.learning_rate * (1.0 - 0.9 * anneal);
    for (NodeId t = 0; t < n; ++t) {
      const Dag& dag = dags[t];
      for (NodeId u = 0; u < n; ++u) {
        if (u == t) continue;
        const auto& out = dag.outEdges(u);
        if (out.size() < 2) continue;  // single next-hop: ratio pinned to 1
        double scale = 0.0;
        for (const EdgeId e : out) {
          const double gphi = grad[static_cast<std::size_t>(t) * m + e];
          const double eff = (opt.method == SplitMethod::kGpCondensation)
                                 ? gphi * phi.at(t, e)
                                 : gphi;
          scale = std::max(scale, std::abs(eff));
        }
        if (scale <= 0.0) continue;
        double sum = 0.0;
        for (const EdgeId e : out) {
          const double gphi = grad[static_cast<std::size_t>(t) * m + e];
          const double eff = (opt.method == SplitMethod::kGpCondensation)
                                 ? gphi * phi.at(t, e)
                                 : gphi;
          double& p = phi.at(t, e);
          p = std::max(1e-12, p * std::exp(-lr * eff / scale));
          sum += p;
        }
        for (const EdgeId e : out) phi.at(t, e) /= sum;
      }
    }
  }

  if (iterations_used != nullptr) *iterations_used = executed;
  RoutingConfig cfg = toConfig(g, init, best, opt.prune_below);
  cfg.validate(g);
  return cfg;
}

}  // namespace coyote::core
