#include "core/coyote.hpp"

#include <limits>

#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"

namespace coyote::core {

CoyoteResult optimizeAgainstPool(const Graph& g,
                                 routing::PerformanceEvaluator& pool,
                                 const tm::DemandBounds* box,
                                 const CoyoteOptions& opt) {
  require(pool.size() > 0, "optimization pool is empty");
  const auto dags = pool.dagsPtr();

  // Warm seed (serve `reoptimize`): start the search from the caller's
  // previous configuration when it lives over this pool's DAG set.
  const bool warm = opt.warm_init != nullptr &&
                    opt.warm_init->dagsPtr().get() == dags.get();
  int saved = 0;
  int used = 0;

  // Single-matrix pools admit the exact LP optimum (used at margin 1, where
  // COYOTE-partial-knowledge provably matches the demands-aware optimum).
  routing::RoutingConfig cfg =
      (pool.size() == 1)
          ? routing::optimalRoutingForDemand(g, dags, pool.matrix(0), opt.lp)
                .routing
          : optimizeSplitting(g, pool,
                              warm ? *opt.warm_init
                                   : routing::RoutingConfig::uniform(g, dags),
                              opt.splitting, &used);
  if (pool.size() > 1) saved += opt.splitting.iterations - used;

  CoyoteResult out{cfg, 0.0, 0};

  // Cutting-plane rounds with the exact slave-LP separation oracle: add the
  // worst-case matrix the oracle finds, re-optimize, and keep the best
  // configuration by *exact* ratio across rounds. One oracle serves every
  // round (and the final ECMP scoring): only the objective depends on the
  // routing, so each round's per-edge LPs warm-start from the previous
  // round's bases, and each addMatrix normalization warm-starts inside the
  // evaluator's OPTU engine -- the rounds append state instead of
  // rebuilding it.
  if (opt.oracle_rounds > 0) {
    routing::WorstCaseOracle oracle(g, dags, box, opt.lp);
    double best_exact = std::numeric_limits<double>::infinity();
    for (int round = 0; round < opt.oracle_rounds; ++round) {
      const routing::WorstCaseResult wc = oracle.find(cfg);
      if (wc.ratio < best_exact) {
        best_exact = wc.ratio;
        out.routing = cfg;
      }
      const double pool_ratio = pool.ratioFor(cfg);
      if (wc.ratio <= pool_ratio * (1.0 + opt.oracle_tolerance)) break;
      if (pool.addMatrix(wc.demand) < 0) break;  // duplicate/degenerate
      ++out.oracle_rounds_used;
      cfg = optimizeSplitting(g, pool, cfg, opt.splitting, &used);
      saved += opt.splitting.iterations - used;
    }
    // The last re-optimized config was never scored; score it.
    const double final_exact = oracle.find(cfg).ratio;
    if (final_exact < best_exact) {
      best_exact = final_exact;
      out.routing = cfg;
    }
    if (opt.ensure_not_worse_than_ecmp) {
      const routing::RoutingConfig ecmp = routing::ecmpConfig(g, dags);
      const double ecmp_exact = oracle.find(ecmp).ratio;
      if (ecmp_exact < best_exact) out.routing = ecmp;
    }
  } else if (opt.ensure_not_worse_than_ecmp) {
    const routing::RoutingConfig ecmp = routing::ecmpConfig(g, dags);
    if (pool.ratioFor(ecmp) < pool.ratioFor(out.routing)) {
      out.routing = ecmp;
    }
  }
  out.pool_ratio = pool.ratioFor(out.routing);
  out.splitting_iters_saved = saved;
  return out;
}

CoyoteResult coyoteWithBounds(const Graph& g,
                              std::shared_ptr<const DagSet> dags,
                              const tm::DemandBounds& box,
                              const CoyoteOptions& opt) {
  routing::PerformanceEvaluator pool(g, std::move(dags), opt.lp);
  pool.addPool(tm::cornerPool(box, opt.corner_pool));
  return optimizeAgainstPool(g, pool, &box, opt);
}

CoyoteResult coyoteOblivious(const Graph& g,
                             std::shared_ptr<const DagSet> dags,
                             const CoyoteOptions& opt) {
  routing::PerformanceEvaluator pool(g, std::move(dags), opt.lp);
  pool.addPool(tm::obliviousPool(g.numNodes(), opt.oblivious_pool));
  return optimizeAgainstPool(g, pool, /*box=*/nullptr, opt);
}

}  // namespace coyote::core
