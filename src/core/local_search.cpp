#include "core/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>

#include "routing/ecmp.hpp"
#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/propagation.hpp"
#include "routing/worst_case.hpp"

namespace coyote::core {
namespace {

/// Integral inverse-capacity starting weights (Cisco default, scaled).
std::vector<double> initialWeights(const Graph& g) {
  double max_cap = 0.0;
  for (const Edge& e : g.edges()) max_cap = std::max(max_cap, e.capacity);
  std::vector<double> w(g.numEdges(), 1.0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    w[e] = std::max(1.0, std::round(max_cap / g.edge(e).capacity));
  }
  return w;
}

/// ECMP routing for the given weights.
routing::RoutingConfig ecmpFor(const Graph& base,
                               const std::vector<double>& weights,
                               Graph& scratch) {
  scratch = base;
  for (EdgeId e = 0; e < scratch.numEdges(); ++e) {
    scratch.setWeight(e, weights[e]);
  }
  const auto dags =
      std::make_shared<const DagSet>(routing::shortestPathDags(scratch));
  return routing::ecmpConfig(scratch, dags);
}

/// Max normalized utilization of ECMP(weights) over a set of matrices that
/// are already normalized to unrestricted OPTU == 1.
double evalWeights(const Graph& base, const std::vector<double>& weights,
                   const std::vector<tm::TrafficMatrix>& matrices) {
  Graph scratch;
  const routing::RoutingConfig ecmp = ecmpFor(base, weights, scratch);
  double worst = 0.0;
  for (const auto& d : matrices) {
    worst = std::max(worst, routing::maxLinkUtilization(scratch, ecmp, d));
  }
  return worst;
}

}  // namespace

LocalSearchResult localSearchWeights(const Graph& g,
                                     const tm::DemandBounds& box,
                                     const LocalSearchOptions& opt) {
  require(opt.max_rounds >= 1, "need at least one round");
  require(opt.max_weight >= 2, "max_weight too small");

  LocalSearchResult out;
  out.weights = initialWeights(g);
  const std::vector<double> initial = out.weights;

  // Candidate worst-case matrices, normalized once to unrestricted
  // OPTU == 1 (the normalization is weight-independent, unlike the
  // DAG-restricted one, so it stays comparable as the weights move).
  std::vector<tm::TrafficMatrix> pool;
  for (const auto& d : tm::cornerPool(box, opt.pool)) {
    const double optu = routing::optimalUtilizationUnrestricted(g, d);
    if (optu <= 1e-12) continue;
    tm::TrafficMatrix scaled = d;
    scaled.scale(1.0 / optu);
    pool.push_back(std::move(scaled));
  }
  if (pool.empty()) {
    out.utilization = 0.0;  // degenerate (all-zero) box
    return out;
  }

  // Critical set T of Algorithm 1, grown one worst-case matrix per round.
  std::vector<tm::TrafficMatrix> critical;
  std::vector<char> in_critical(pool.size(), 0);

  Graph scratch;
  std::mt19937_64 rng(opt.seed);
  for (int round = 0; round < opt.max_rounds; ++round) {
    ++out.rounds;

    // WORSTCASEDM (Alg. 1 line 7) for the current ECMP routing.
    if (opt.oracle == WorstCaseOracle::kExactLp) {
      const routing::RoutingConfig ecmp = ecmpFor(g, out.weights, scratch);
      const routing::WorstCaseResult wc =
          routing::findWorstCaseDemand(scratch, ecmp, &box);
      if (wc.ratio > 0.0) {
        const double optu =
            routing::optimalUtilizationUnrestricted(g, wc.demand);
        if (optu > 1e-12) {
          tm::TrafficMatrix scaled = wc.demand;
          scaled.scale(1.0 / optu);
          critical.push_back(std::move(scaled));
        }
      }
    } else {
      const routing::RoutingConfig ecmp = ecmpFor(g, out.weights, scratch);
      int worst_idx = -1;
      double worst = -1.0;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (in_critical[i]) continue;
        const double u = routing::maxLinkUtilization(scratch, ecmp, pool[i]);
        if (u > worst) {
          worst = u;
          worst_idx = static_cast<int>(i);
        }
      }
      if (worst_idx >= 0) {
        in_critical[worst_idx] = 1;
        critical.push_back(pool[worst_idx]);
      }
    }
    if (critical.empty()) break;

    out.utilization = evalWeights(g, out.weights, critical);
    if (out.utilization <= opt.target_bound) break;  // Alg. 1 line 9

    // FORTZTHORUP (Alg. 1 line 10): first-improvement single-weight moves.
    int moves = 0;
    bool improved_any = true;
    while (moves < opt.max_moves_per_round && improved_any) {
      improved_any = false;
      std::vector<EdgeId> order(g.numEdges());
      for (EdgeId e = 0; e < g.numEdges(); ++e) order[e] = e;
      std::shuffle(order.begin(), order.end(), rng);
      for (const EdgeId e : order) {
        const double w0 = out.weights[e];
        const double candidates[] = {w0 + 1.0, w0 - 1.0, w0 * 2.0,
                                     std::round(w0 / 2.0), 1.0,
                                     static_cast<double>(opt.max_weight)};
        double best_w = w0;
        double best_u = out.utilization;
        for (const double wc : candidates) {
          const double w =
              std::clamp(wc, 1.0, static_cast<double>(opt.max_weight));
          if (w == w0) continue;
          out.weights[e] = w;
          const double u = evalWeights(g, out.weights, critical);
          if (u < best_u - 1e-9) {
            best_u = u;
            best_w = w;
          }
        }
        out.weights[e] = best_w;
        if (best_w != w0) {
          out.utilization = best_u;
          improved_any = true;
          ++out.accepted_moves;
          if (++moves >= opt.max_moves_per_round) break;
        }
      }
    }
  }

  // Guard: the heuristic optimizes over its critical set; never hand back
  // weights that are worse than the starting point over the full pool.
  const double tuned_full = evalWeights(g, out.weights, pool);
  const double initial_full = evalWeights(g, initial, pool);
  if (initial_full < tuned_full) {
    out.weights = initial;
    out.utilization = initial_full;
  } else {
    out.utilization = tuned_full;
  }
  return out;
}

}  // namespace coyote::core
