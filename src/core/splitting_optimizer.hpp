// In-DAG traffic-splitting optimization (Sec. V-C, Appendix C).
//
// Inner problem: given per-destination DAGs and a finite set T of demand
// matrices normalized to OPTU == 1, minimize the worst link utilization
//
//     R(phi) = max over (D in T, edge e) of load_e(phi, D) / c(e).
//
// Every load is a posynomial in phi, so R is convex in the log-variables
// phi~ = log phi (a max of log-sum-exps) -- the geometric-programming
// structure the paper exploits. We solve it with exact reverse-mode
// gradients through the flow propagation (the adjoint recursion
// mu_t(u) = sum over DAG edges e=(u,v) of phi_t(e) * (G(e) + mu_t(v)),
// dObj/dphi_t(u,v) = F_t(u) * (G(e) + mu_t(v))) and two interchangeable
// first-order schemes:
//
//  * kGpCondensation -- the paper's approach: gradient steps on the
//    softmax-smoothed objective in log space, renormalizing each
//    (node,destination) splitting vector after every step. Renormalization
//    is exactly the fixed point of the monomial approximation of the
//    simplex constraint sum(phi) = 1 (Appendix C), iterated per step.
//  * kMirrorDescent -- exponentiated-gradient (multiplicative-weights)
//    updates in phi space, which keep each splitting vector on the simplex
//    by construction.
//
// Both recover the closed-form optimum of the paper's running example
// (golden-ratio splits; Appendix B) -- enforced by unit tests.
#pragma once

#include "routing/evaluator.hpp"

namespace coyote::core {

enum class SplitMethod { kGpCondensation, kMirrorDescent };

struct SplittingOptions {
  SplitMethod method = SplitMethod::kGpCondensation;
  int iterations = 600;
  double learning_rate = 0.35;
  /// Softmax temperature as a fraction of the current max utilization;
  /// annealed linearly to temperature_end over the run.
  double temperature_start = 0.15;
  double temperature_end = 0.003;
  /// Ratios below this are clamped (and renormalized) at the end; keeps the
  /// configurations implementable with few virtual links.
  double prune_below = 1e-4;
  /// Early stop: break out when the best pool utilization has not improved
  /// for this many consecutive iterations. 0 (the sweep default) runs the
  /// full budget; the serve daemon sets it so a warm-seeded `reoptimize`
  /// converges in a fraction of the budget (the skipped iterations are
  /// reported via the `iterations_used` out-param).
  int patience = 0;
};

/// Optimizes splitting ratios against the evaluator's pool, starting from
/// `init` (commonly RoutingConfig::uniform). Returns the best configuration
/// seen, by exact pool ratio. When `iterations_used` is non-null it receives
/// the number of forward/backward iterations actually executed (less than
/// opt.iterations when patience stopped early).
[[nodiscard]] routing::RoutingConfig optimizeSplitting(
    const Graph& g, const routing::PerformanceEvaluator& pool,
    const routing::RoutingConfig& init, const SplittingOptions& opt = {},
    int* iterations_used = nullptr);

}  // namespace coyote::core
