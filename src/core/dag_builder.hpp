// COYOTE DAG construction (Sec. V-B).
//
// Step I: compute a shortest-path DAG per destination from link weights
// (either inverse-capacity weights -- Cisco's default -- or weights found by
// the local-search heuristic of Appendix A, see local_search.hpp).
//
// Step II ("DAG augmentation"): every physical link absent from the
// shortest-path DAG of destination t is added, oriented toward the endpoint
// closer to t (ties broken lexicographically by node id). Augmentation
// strictly enlarges the solution space while preserving acyclicity, so
// COYOTE is never worse than ECMP over the same weights.
#pragma once

#include <memory>

#include "graph/dag.hpp"
#include "graph/dijkstra.hpp"

namespace coyote::core {

/// Augmented DAG for one destination, from the graph's current weights.
[[nodiscard]] Dag augmentedDag(const Graph& g, NodeId dest);

/// Augmented DAGs for every destination, from the graph's current weights.
[[nodiscard]] DagSet augmentedDags(const Graph& g);

/// Convenience: shared pointer form used by routing configurations.
[[nodiscard]] std::shared_ptr<const DagSet> augmentedDagsShared(const Graph& g);

}  // namespace coyote::core
