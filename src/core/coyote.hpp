// COYOTE's top-level flow-computation pipeline (Fig. 5):
//
//   uncertainty bounds + topology
//        -> per-destination DAG construction        (dag_builder / local_search)
//        -> in-DAG splitting-ratio optimization     (splitting_optimizer)
//        -> [optional] exact cutting-plane rounds   (worst_case slave LP)
//
// The OSPF translation stage ("lies") lives in src/fibbing/.
//
// Two entry points mirror the paper's two variants:
//   * coyoteWithBounds  -- "COYOTE partial knowledge": optimized against the
//     corners of the operator's uncertainty box.
//   * coyoteOblivious   -- "COYOTE oblivious": optimized against a pool
//     standing in for all possible demand matrices.
//
// Both guarantee the result is no worse (on the optimization pool) than
// traditional ECMP, because ECMP's equal splitting over shortest paths is a
// feasible point of the search space (Sec. V-B).
#pragma once

#include <optional>

#include "core/splitting_optimizer.hpp"
#include "lp/lp.hpp"
#include "routing/evaluator.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::core {

struct CoyoteOptions {
  SplittingOptions splitting;
  /// Extra cutting-plane rounds driven by the exact slave-LP oracle
  /// (0 = pool-only; exact separation is practical on small networks).
  int oracle_rounds = 0;
  double oracle_tolerance = 0.02;
  tm::PoolOptions corner_pool;
  tm::ObliviousPoolOptions oblivious_pool;
  lp::SimplexOptions lp;
  /// Keep the better of {optimized config, ECMP} on the pool.
  bool ensure_not_worse_than_ecmp = true;
  /// Optional warm seed for the splitting optimizer: when non-null and
  /// living over the same DAG set as the optimization pool, the search
  /// starts from this configuration instead of uniform splitting (the
  /// serve daemon's `reoptimize` passes the previous intact config, so a
  /// mild demand drift converges in a few iterations -- pair it with
  /// splitting.patience to actually bank the savings). Not owned; must
  /// outlive the call. Ignored (uniform start) on a DAG-set mismatch.
  const routing::RoutingConfig* warm_init = nullptr;
};

struct CoyoteResult {
  routing::RoutingConfig routing;
  double pool_ratio = 0.0;  ///< PERF over the (final) optimization pool
  int oracle_rounds_used = 0;
  /// Splitting-optimizer iterations the patience early stop skipped,
  /// summed over every optimizeSplitting run (0 when patience is off).
  int splitting_iters_saved = 0;
};

/// Optimizes splitting ratios against an existing evaluator pool; the pool
/// grows if oracle rounds find violating matrices. `box` (may be null) is
/// forwarded to the exact oracle.
[[nodiscard]] CoyoteResult optimizeAgainstPool(
    const Graph& g, routing::PerformanceEvaluator& pool,
    const tm::DemandBounds* box, const CoyoteOptions& opt = {});

/// COYOTE with operator uncertainty bounds (the "partial knowledge" line of
/// Figs. 6-9 / Table I).
[[nodiscard]] CoyoteResult coyoteWithBounds(
    const Graph& g, std::shared_ptr<const DagSet> dags,
    const tm::DemandBounds& box, const CoyoteOptions& opt = {});

/// Fully demands-oblivious COYOTE (the "oblivious" line).
[[nodiscard]] CoyoteResult coyoteOblivious(const Graph& g,
                                           std::shared_ptr<const DagSet> dags,
                                           const CoyoteOptions& opt = {});

}  // namespace coyote::core
