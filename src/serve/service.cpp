#include "serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/dag_builder.hpp"
#include "failure/degrade.hpp"
#include "failure/scenario.hpp"
#include "routing/evaluator.hpp"
#include "routing/propagation.hpp"
#include "util/require.hpp"

namespace coyote::serve {

namespace json = util::json;

namespace {

json::Value envelope(long long seq, const json::Value& request) {
  json::Value resp = json::Value::object();
  resp["seq"] = static_cast<long>(seq);
  if (request.isObject()) {
    if (const json::Value* id = request.find("id")) resp["id"] = *id;
    if (const json::Value* op = request.find("op")) {
      if (op->isString()) resp["op"] = op->asString();
    }
  }
  return resp;
}

json::Value errorResponse(long long seq, const json::Value& request,
                          const std::string& what) {
  json::Value resp = envelope(seq, request);
  resp["ok"] = false;
  resp["error"] = what;
  return resp;
}

/// The request's member, or a thrown client-facing error.
const json::Value& member(const json::Value& request, const char* key) {
  const json::Value* v = request.find(key);
  if (v == nullptr) {
    throw std::invalid_argument(std::string("missing '") + key + "' member");
  }
  return *v;
}

}  // namespace

TeService::TeService(Graph g, tm::TrafficMatrix base_tm, ServeOptions opt)
    : g_(std::move(g)),
      dags_(core::augmentedDagsShared(g_)),
      base_(std::move(base_tm)),
      opt_(std::move(opt)),
      margin_(opt_.margin),
      schemes_(opt_.schemes.empty()
                   ? te::SchemeRegistry::builtin().defaults()
                   : opt_.schemes) {
  require(margin_ >= 1.0, "margin must be >= 1");
  require(!schemes_.empty(), "empty scheme list");
  require(base_.numNodes() == g_.numNodes(),
          "base matrix / graph node count mismatch");
  rebuildPool();
  computeSchemes(/*warm=*/false);
  engine_ = std::make_unique<routing::OptuEngine>(g_, opt_.coyote.lp);
  if (opt_.threads != 0) {
    own_pool_ = std::make_unique<util::ThreadPool>(opt_.threads);
  }
}

TeService::~TeService() = default;

void TeService::rebuildPool() {
  box_.emplace(tm::marginBounds(base_, margin_));
  pool_ = tm::cornerPool(*box_, opt_.pool);
}

void TeService::computeSchemes(bool warm) {
  // The failure evaluator's startup, kept warm-restartable: margin-
  // dependent schemes are optimized against the current box over the
  // same corner pool events are evaluated with; kReconverge schemes
  // keep no intact config (their post-event routing is recomputed from
  // the degraded graph alone). On the warm ("reoptimize") path each
  // optimizer-backed scheme is seeded from its previous configuration --
  // the base matrix and margin usually moved only a little, so the
  // search restarts next to the optimum and the patience early stop
  // banks most of the iteration budget (totalled in reopt_saved_iters_).
  const std::vector<std::optional<routing::RoutingConfig>> prev =
      std::move(intact_);
  intact_.clear();
  intact_.reserve(schemes_.size());
  int saved = 0;
  for (std::size_t i = 0; i < schemes_.size(); ++i) {
    const te::Scheme* s = schemes_[i];
    core::CoyoteOptions copt = opt_.coyote;
    if (warm && i < prev.size() && prev[i].has_value()) {
      copt.warm_init = &*prev[i];
    }
    if (s->reaction() == te::FailureReaction::kReconverge) {
      intact_.emplace_back(std::nullopt);
    } else if (s->marginDependent()) {
      routing::PerformanceEvaluator eval(g_, dags_, opt_.coyote.lp);
      eval.addPool(pool_);
      te::SchemeContext ctx{g_, dags_, base_, copt, &*box_, &eval};
      if (warm) ctx.splitting_iters_saved = &saved;
      intact_.emplace_back(s->compute(ctx));
    } else {
      te::SchemeContext ctx{g_, dags_, base_, copt, nullptr, nullptr};
      if (warm) ctx.splitting_iters_saved = &saved;
      intact_.emplace_back(s->compute(ctx));
    }
  }
  reopt_saved_iters_ += saved;
}

std::vector<std::string> TeService::failedLinks() const {
  std::vector<std::string> out;
  out.reserve(failed_.size());
  for (const EdgeId link : failed_) {
    out.push_back(failure::linkLabel(g_, link));
  }
  return out;
}

TeService::EvalResult TeService::evaluateLinks(
    const std::vector<EdgeId>& links, routing::OptuEngine& engine) const {
  const int n = static_cast<int>(schemes_.size());
  EvalResult out;
  out.ratio.assign(n, 0.0);
  out.routable.assign(n, 0);

  failure::FailureScenario f;
  f.links = links;
  const Graph degraded = failure::degradedGraph(g_, f);
  out.disconnected_pairs = failure::disconnectedPairs(degraded, base_);
  if (out.disconnected_pairs > 0) return out;  // reported, not evaluated
  out.evaluated = true;

  bool any_repair = false;
  for (const te::Scheme* s : schemes_) {
    any_repair |= s->reaction() == te::FailureReaction::kRepairDags;
  }
  const std::shared_ptr<const DagSet> repaired =
      any_repair ? failure::repairDags(g_, *dags_,
                                       failure::failedEdgeMask(g_, f))
                 : nullptr;
  std::vector<routing::RoutingConfig> cfgs;
  cfgs.reserve(n);
  for (int s = 0; s < n; ++s) {
    if (schemes_[s]->reaction() == te::FailureReaction::kReconverge) {
      cfgs.push_back(schemes_[s]->reconverge(degraded));
    } else {
      cfgs.push_back(failure::repairRouting(g_, *intact_[s], repaired));
    }
  }
  for (int s = 0; s < n; ++s) {
    out.routable[s] = failure::routesAllDemands(cfgs[s], base_);
  }

  // The common ruler: unrestricted OPTU on the surviving network, one
  // warm re-solve per pool matrix (the failure entered the engine as a
  // bounds mutation; {} restores the intact network).
  engine.setFailedEdges(failure::directedEdges(g_, f));
  std::vector<double> optu(pool_.size(), 0.0);
  for (std::size_t j = 0; j < pool_.size(); ++j) {
    optu[j] = engine.utilization(pool_[j]);
  }
  for (std::size_t j = 0; j < pool_.size(); ++j) {
    if (optu[j] <= 0.0) continue;  // zero matrix
    for (int s = 0; s < n; ++s) {
      if (!out.routable[s]) continue;
      const double mxlu =
          routing::maxLinkUtilization(degraded, cfgs[s], pool_[j]);
      out.ratio[s] = std::max(out.ratio[s], mxlu / optu[j]);
    }
  }
  return out;
}

void TeService::addEvalPayload(json::Value& response, const EvalResult& ev,
                               const std::vector<EdgeId>& links) const {
  response["disconnected_pairs"] = ev.disconnected_pairs;
  response["evaluated"] = ev.evaluated;
  json::Value failed = json::Value::array();
  for (const EdgeId link : links) {
    failed.push_back(failure::linkLabel(g_, link));
  }
  response["failed"] = std::move(failed);
  if (!ev.evaluated) return;
  json::Value ratios = json::Value::object();
  json::Value unroutable = json::Value::array();
  for (std::size_t i = 0; i < schemes_.size(); ++i) {
    if (ev.routable[i]) {
      ratios[schemes_[i]->key()] = ev.ratio[i];
    } else {
      unroutable.push_back(schemes_[i]->key());
    }
  }
  response["ratios"] = std::move(ratios);
  response["unroutable"] = std::move(unroutable);
}

EdgeId TeService::parseLink(const json::Value& link) const {
  if (!link.isArray() || link.asArray().size() != 2 ||
      !link.asArray()[0].isString() || !link.asArray()[1].isString()) {
    throw std::invalid_argument(
        "a link is a two-element array of node names: [\"A\",\"B\"]");
  }
  const std::string& a = link.asArray()[0].asString();
  const std::string& b = link.asArray()[1].asString();
  const std::optional<NodeId> s = g_.findNode(a);
  const std::optional<NodeId> t = g_.findNode(b);
  if (!s.has_value()) throw std::invalid_argument("unknown node: " + a);
  if (!t.has_value()) throw std::invalid_argument("unknown node: " + b);
  const std::optional<EdgeId> e = g_.findEdge(*s, *t);
  if (!e.has_value()) {
    throw std::invalid_argument("no link between " + a + " and " + b);
  }
  // Canonical link id: the lower id of the two directions.
  const EdgeId rev = g_.edge(*e).reverse;
  return rev != kInvalidEdge && rev < *e ? rev : *e;
}

json::Value TeService::handleWhatIf(const json::Value& request, long long seq,
                                    routing::OptuEngine& engine) const {
  const json::Value& links = member(request, "links");
  if (!links.isArray()) {
    throw std::invalid_argument("'links' must be an array of links");
  }
  // The hypothetical failure set: current state plus the queried links.
  std::vector<EdgeId> combined = failed_;
  for (const json::Value& link : links.asArray()) {
    combined.push_back(parseLink(link));
  }
  std::sort(combined.begin(), combined.end());
  combined.erase(std::unique(combined.begin(), combined.end()),
                 combined.end());
  const EvalResult ev = evaluateLinks(combined, engine);
  json::Value resp = envelope(seq, request);
  resp["ok"] = true;
  addEvalPayload(resp, ev, combined);
  return resp;
}

json::Value TeService::dispatch(const json::Value& request, long long seq) {
  if (!request.isObject()) {
    throw std::invalid_argument("a request is a JSON object");
  }
  const json::Value& op_value = member(request, "op");
  if (!op_value.isString()) {
    throw std::invalid_argument("'op' must be a string");
  }
  const std::string& op = op_value.asString();
  json::Value resp = envelope(seq, request);

  if (op == "state") {
    resp["ok"] = true;
    resp["nodes"] = g_.numNodes();
    resp["links"] = static_cast<int>(failure::physicalLinks(g_).size());
    resp["margin"] = margin_;
    resp["pool_size"] = poolSize();
    resp["events"] = static_cast<long>(seq_);
    json::Value keys = json::Value::array();
    for (const te::Scheme* s : schemes_) keys.push_back(s->key());
    resp["schemes"] = std::move(keys);
    json::Value failed = json::Value::array();
    for (const std::string& label : failedLinks()) failed.push_back(label);
    resp["failed"] = std::move(failed);
    return resp;
  }

  if (op == "demand") {
    const json::Value* scale = request.find("scale");
    const json::Value* set = request.find("set");
    if (scale == nullptr && set == nullptr) {
      throw std::invalid_argument("'demand' needs 'scale' and/or 'set'");
    }
    // Validate everything before mutating anything: a half-applied
    // demand update would corrupt the resident state on error.
    if (scale != nullptr &&
        (!scale->isNumber() || !(scale->asNumber() > 0.0))) {
      throw std::invalid_argument("'scale' must be a positive number");
    }
    std::vector<std::pair<std::pair<NodeId, NodeId>, double>> entries;
    if (set != nullptr) {
      if (!set->isArray()) {
        throw std::invalid_argument(
            "'set' must be an array of [src,dst,value] entries");
      }
      for (const json::Value& entry : set->asArray()) {
        if (!entry.isArray() || entry.asArray().size() != 3 ||
            !entry.asArray()[0].isString() ||
            !entry.asArray()[1].isString() ||
            !entry.asArray()[2].isNumber()) {
          throw std::invalid_argument(
              "a 'set' entry is [\"src\",\"dst\",value]");
        }
        const std::string& a = entry.asArray()[0].asString();
        const std::string& b = entry.asArray()[1].asString();
        const double v = entry.asArray()[2].asNumber();
        const std::optional<NodeId> s = g_.findNode(a);
        const std::optional<NodeId> t = g_.findNode(b);
        if (!s.has_value()) throw std::invalid_argument("unknown node: " + a);
        if (!t.has_value()) throw std::invalid_argument("unknown node: " + b);
        if (*s == *t) {
          throw std::invalid_argument("demand src == dst: " + a);
        }
        if (!(v >= 0.0)) {
          throw std::invalid_argument("demand value must be >= 0");
        }
        entries.push_back({{*s, *t}, v});
      }
    }
    if (scale != nullptr) base_.scale(scale->asNumber());
    for (const auto& [pair, v] : entries) {
      base_.set(pair.first, pair.second, v);
    }
    rebuildPool();
    resp["ok"] = true;
    addEvalPayload(resp, evaluateLinks(failed_, *engine_), failed_);
    return resp;
  }

  if (op == "link") {
    const EdgeId link = parseLink(member(request, "link"));
    const json::Value* up = request.find("up");
    const bool restore = up != nullptr && up->isBool() && up->asBool();
    const auto it = std::lower_bound(failed_.begin(), failed_.end(), link);
    const bool already = it != failed_.end() && *it == link;
    const std::string label = failure::linkLabel(g_, link);
    if (restore) {
      if (!already) {
        throw std::invalid_argument("link " + label + " is not failed");
      }
      failed_.erase(it);
    } else {
      if (already) {
        throw std::invalid_argument("link " + label + " is already failed");
      }
      failed_.insert(it, link);
    }
    resp["ok"] = true;
    resp["link"] = label;
    resp["up"] = restore;
    addEvalPayload(resp, evaluateLinks(failed_, *engine_), failed_);
    return resp;
  }

  if (op == "margin") {
    const json::Value& value = member(request, "value");
    if (!value.isNumber() || !(value.asNumber() >= 1.0)) {
      throw std::invalid_argument("'value' must be a number >= 1");
    }
    margin_ = value.asNumber();
    rebuildPool();
    resp["ok"] = true;
    resp["margin"] = margin_;
    addEvalPayload(resp, evaluateLinks(failed_, *engine_), failed_);
    return resp;
  }

  if (op == "what-if") {
    return handleWhatIf(request, seq, *engine_);
  }

  if (op == "reoptimize") {
    computeSchemes(/*warm=*/true);
    resp["ok"] = true;
    addEvalPayload(resp, evaluateLinks(failed_, *engine_), failed_);
    return resp;
  }

  throw std::invalid_argument("unknown op: " + op);
}

json::Value TeService::handle(const json::Value& request) {
  const long long seq = ++seq_;
  try {
    return dispatch(request, seq);
  } catch (const std::exception& e) {
    return errorResponse(seq, request, e.what());
  }
}

std::string TeService::handleLine(const std::string& line) {
  json::Value request;
  try {
    request = json::parse(line);
  } catch (const json::Error& e) {
    return errorResponse(++seq_, json::Value(), e.what()).dump(0);
  }
  return handle(request).dump(0);
}

std::vector<std::string> TeService::handleScript(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out(lines.size());
  util::ThreadPool& tp = own_pool_ ? *own_pool_ : util::ThreadPool::global();

  const auto parseWhatIf = [](const std::string& line,
                              json::Value* request) -> bool {
    try {
      *request = json::parse(line);
    } catch (const json::Error&) {
      return false;
    }
    return request->isObject() && request->stringOr("op", "") == "what-if";
  };

  std::size_t i = 0;
  while (i < lines.size()) {
    json::Value request;
    if (!parseWhatIf(lines[i], &request)) {
      out[i] = handleLine(lines[i]);
      ++i;
      continue;
    }
    // A maximal run of consecutive read-only what-if queries: the state
    // cannot change inside it, so the queries fan out in fixed-size
    // chunks, each chunk one OptuEngine whose sessions stay warm across
    // the chunk's queries. Responses keep their input-order seq numbers
    // and slots, so output is bit-identical for any thread count.
    std::vector<std::pair<std::size_t, json::Value>> run;
    run.emplace_back(i, std::move(request));
    ++i;
    while (i < lines.size() && parseWhatIf(lines[i], &request)) {
      run.emplace_back(i, std::move(request));
      ++i;
    }
    std::vector<long long> seqs(run.size());
    for (std::size_t k = 0; k < run.size(); ++k) seqs[k] = ++seq_;
    const std::size_t chunks =
        (run.size() + kWhatIfChunk - 1) / kWhatIfChunk;
    tp.parallelFor(chunks, [&](std::size_t c) {
      routing::OptuEngine engine(g_, opt_.coyote.lp);
      const std::size_t begin = c * kWhatIfChunk;
      const std::size_t end =
          std::min(run.size(), begin + kWhatIfChunk);
      for (std::size_t k = begin; k < end; ++k) {
        json::Value resp;
        try {
          resp = handleWhatIf(run[k].second, seqs[k], engine);
        } catch (const std::exception& e) {
          resp = errorResponse(seqs[k], run[k].second, e.what());
        }
        out[run[k].first] = resp.dump(0);
      }
    });
  }
  return out;
}

}  // namespace coyote::serve
