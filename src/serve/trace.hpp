// Seeded event-trace generation for the online TE daemon (service.hpp).
//
// A trace is the daemon's replay input: one protocol line per event. The
// generator is deterministic in (graph, base matrix, options) on every
// platform -- it uses the repo's splitmix64 idiom rather than the standard
// <random> distributions, whose outputs are implementation-defined -- so a
// committed seed reproduces the exact event stream CI benchmarks and the
// bit-identity tests replay.
//
// The default mix models an operator day: mostly read-only what-if
// probes, with demand drift, link flaps (failures that later heal),
// occasional margin moves, and rare explicit reoptimizations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "tm/traffic_matrix.hpp"

namespace coyote::serve {

struct TraceOptions {
  int events = 500;
  std::uint64_t seed = 1;
  /// At most this many links are down at once; at the cap, flap events
  /// restore a failed link instead of failing another.
  int max_concurrent_failures = 2;
  /// Event mix in percent; must sum to <= 100 (the remainder becomes
  /// reoptimize events).
  int what_if_pct = 40;
  int demand_pct = 20;
  int link_pct = 25;
  int margin_pct = 10;
};

/// One protocol line per event (compact JSON, see service.hpp for the
/// grammar). `base` seeds the demand events: "set" entries are absolute
/// values derived from base entries, so replaying the trace against the
/// same base matrix is self-consistent. Throws std::invalid_argument for
/// graphs without physical links or a mix over 100%.
[[nodiscard]] std::vector<std::string> generateTrace(
    const Graph& g, const tm::TrafficMatrix& base, const TraceOptions& opt);

/// A pure link-flap trace: `flaps` times, fail one physical link and
/// restore it (cycling through the lowest-id links). Every event is a
/// state change hitting the resident engine's warm chain -- the workload
/// the warm-vs-COYOTE_LP_COLD pivot comparison replays.
[[nodiscard]] std::vector<std::string> linkFlapTrace(const Graph& g,
                                                     int flaps);

}  // namespace coyote::serve
