#include "serve/trace.hpp"

#include <algorithm>
#include <utility>

#include "failure/scenario.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace coyote::serve {

namespace json = util::json;

namespace {

// The trace stream draws from the shared splitmix64 helpers
// (util/rng.hpp); the algorithm is unchanged, so historical seeds produce
// byte-identical traces.
using util::rng::nextInt;
using util::rng::nextUnit;

json::Value linkValue(const Graph& g, EdgeId link) {
  json::Value v = json::Value::array();
  v.push_back(g.nodeName(g.edge(link).src));
  v.push_back(g.nodeName(g.edge(link).dst));
  return v;
}

std::string linkEvent(const Graph& g, EdgeId link, bool up) {
  json::Value req = json::Value::object();
  req["op"] = "link";
  req["link"] = linkValue(g, link);
  req["up"] = up;
  return req.dump(0);
}

}  // namespace

std::vector<std::string> generateTrace(const Graph& g,
                                       const tm::TrafficMatrix& base,
                                       const TraceOptions& opt) {
  const std::vector<EdgeId> links = failure::physicalLinks(g);
  require(!links.empty(), "trace generation needs at least one physical link");
  require(opt.events >= 0, "negative event count");
  require(opt.what_if_pct >= 0 && opt.demand_pct >= 0 && opt.link_pct >= 0 &&
              opt.margin_pct >= 0,
          "negative mix percentage");
  require(opt.what_if_pct + opt.demand_pct + opt.link_pct + opt.margin_pct <=
              100,
          "event mix over 100%");
  require(opt.max_concurrent_failures >= 1, "max_concurrent_failures < 1");

  std::vector<std::pair<NodeId, NodeId>> pairs = base.nonZeroPairs();
  if (pairs.empty()) {
    for (NodeId s = 0; s < base.numNodes(); ++s) {
      for (NodeId t = 0; t < base.numNodes(); ++t) {
        if (s != t) pairs.emplace_back(s, t);
      }
    }
  }
  const double mean_demand =
      pairs.empty() ? 1.0
                    : std::max(base.total() / static_cast<double>(pairs.size()),
                               1e-9);
  static constexpr double kMargins[] = {1.5, 2.0, 2.5, 3.0};

  std::uint64_t state = opt.seed;
  std::vector<EdgeId> failed;  // mirrors the service's failed-link state
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(opt.events));

  for (int i = 0; i < opt.events; ++i) {
    const int r = nextInt(state, 100);
    if (r < opt.what_if_pct) {
      const int k = std::min(1 + nextInt(state, 2),
                             static_cast<int>(links.size()));
      std::vector<EdgeId> chosen;
      while (static_cast<int>(chosen.size()) < k) {
        const EdgeId link = links[nextInt(
            state, static_cast<int>(links.size()))];
        if (std::find(chosen.begin(), chosen.end(), link) == chosen.end()) {
          chosen.push_back(link);
        }
      }
      json::Value req = json::Value::object();
      req["op"] = "what-if";
      json::Value arr = json::Value::array();
      for (const EdgeId link : chosen) arr.push_back(linkValue(g, link));
      req["links"] = std::move(arr);
      out.push_back(req.dump(0));
    } else if (r < opt.what_if_pct + opt.demand_pct) {
      const auto [s, t] = pairs[nextInt(
          state, static_cast<int>(pairs.size()))];
      const double current = base.at(s, t);
      const double anchor = current > 0.0 ? current : mean_demand;
      const double value = anchor * (0.5 + 1.5 * nextUnit(state));
      json::Value req = json::Value::object();
      req["op"] = "demand";
      json::Value entry = json::Value::array();
      entry.push_back(g.nodeName(s));
      entry.push_back(g.nodeName(t));
      entry.push_back(value);
      json::Value set = json::Value::array();
      set.push_back(std::move(entry));
      req["set"] = std::move(set);
      out.push_back(req.dump(0));
    } else if (r < opt.what_if_pct + opt.demand_pct + opt.link_pct) {
      const bool at_cap =
          static_cast<int>(failed.size()) >= opt.max_concurrent_failures ||
          static_cast<int>(failed.size()) >= static_cast<int>(links.size());
      const bool restore =
          !failed.empty() && (at_cap || nextInt(state, 2) == 0);
      if (restore) {
        const int j = nextInt(state, static_cast<int>(failed.size()));
        const EdgeId link = failed[static_cast<std::size_t>(j)];
        failed.erase(failed.begin() + j);
        out.push_back(linkEvent(g, link, /*up=*/true));
      } else {
        EdgeId link = kInvalidEdge;
        do {
          link = links[nextInt(state, static_cast<int>(links.size()))];
        } while (std::find(failed.begin(), failed.end(), link) !=
                 failed.end());
        failed.push_back(link);
        out.push_back(linkEvent(g, link, /*up=*/false));
      }
    } else if (r <
               opt.what_if_pct + opt.demand_pct + opt.link_pct +
                   opt.margin_pct) {
      json::Value req = json::Value::object();
      req["op"] = "margin";
      req["value"] = kMargins[nextInt(state, 4)];
      out.push_back(req.dump(0));
    } else {
      json::Value req = json::Value::object();
      req["op"] = "reoptimize";
      out.push_back(req.dump(0));
    }
  }
  return out;
}

std::vector<std::string> linkFlapTrace(const Graph& g, int flaps) {
  const std::vector<EdgeId> links = failure::physicalLinks(g);
  require(!links.empty(), "trace generation needs at least one physical link");
  require(flaps >= 0, "negative flap count");
  const int cycle = std::min<int>(3, static_cast<int>(links.size()));
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(flaps) * 2);
  for (int i = 0; i < flaps; ++i) {
    const EdgeId link = links[static_cast<std::size_t>(i % cycle)];
    out.push_back(linkEvent(g, link, /*up=*/false));
    out.push_back(linkEvent(g, link, /*up=*/true));
  }
  return out;
}

}  // namespace coyote::serve
