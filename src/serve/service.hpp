// Online TE daemon core: a long-running service over warm LP sessions.
//
// Everything else in this repo is one-shot (build network -> optimize ->
// evaluate -> exit); TeService is the deployment shape -- ROADMAP item 1.
// One service instance keeps a topology, a scheme set and the retained
// warm LP sessions resident and answers a stream of events, each as a
// warm re-solve, never a rebuild:
//
//  * demand-matrix updates  -- the corner pool is rebuilt around the new
//    base matrix; the resident routing::OptuEngine re-solves it by rhs
//    mutation on its retained simplex sessions;
//  * link up/down           -- enters the engine via setFailedEdges (a
//    bounds mutation, the PR-4 machinery), and each scheme reacts per
//    its te::FailureReaction: kReconverge schemes re-run SPF on the
//    survivors, kRepairDags schemes repair their precomputed DAGs;
//  * margin changes         -- the uncertainty box and its corner pool
//    move; the running configurations stay (see below);
//  * read-only what-if queries -- hypothetical extra failures evaluated
//    on top of the current state without mutating it;
//  * reoptimize             -- the one explicitly heavy event: every
//    scheme's intact configuration is recomputed from the current base
//    matrix and margin.
//
// The split between evaluation and optimization is deliberate and
// mirrors deployment: demand/link/margin events re-*evaluate* the
// resident configurations under the new conditions (cheap, warm), while
// recomputing the configurations themselves -- re-running the COYOTE
// optimizer -- only happens when the operator requests "reoptimize".
// Ratios use the *unrestricted* OPTU on the surviving network as the
// common ruler (the failure-sweep normalization, stricter than the
// intact sweeps' within-DAG optimum; see failure/evaluate.hpp).
//
// Protocol: line-delimited util::json objects, one request per line, one
// response line per request, in request order.
//
//   {"op":"state"}                                  read-only snapshot
//   {"op":"demand","scale":1.1}                     scale whole matrix
//   {"op":"demand","set":[["A","B",1.5],...]}       set entries (after
//                                                   "scale" when both)
//   {"op":"link","link":["A","B"],"up":false}       fail / restore
//   {"op":"margin","value":2.5}                     move the box
//   {"op":"what-if","links":[["A","B"],...]}        hypothetical failures
//   {"op":"reoptimize"}                             recompute schemes
//
// Every response carries {"seq":N,"op":...,"ok":true|false} plus either
// an evaluation payload (disconnected_pairs / evaluated / ratios /
// unroutable / failed) or {"error":...}; a client "id" member is echoed
// back. Malformed lines produce an error response, never daemon death.
//
// Determinism: requests are processed in input order. State-changing
// events run serially on the resident engine (its warm chain is the
// event history, independent of any thread count). In batch replays
// (handleScript) maximal runs of consecutive what-if queries fan out
// over util::ThreadPool in fixed-size chunks -- each chunk owns an
// OptuEngine whose sessions stay warm across the chunk's queries, the
// same PR-4 idiom as failure::FailureEvaluator -- and responses are
// emitted in input order, so replay output is bit-identical for any
// COYOTE_THREADS (the contract serve_test pins for 1/2/8).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/coyote.hpp"
#include "graph/graph.hpp"
#include "routing/config.hpp"
#include "routing/optu.hpp"
#include "scheme/registry.hpp"
#include "tm/traffic_matrix.hpp"
#include "tm/uncertainty.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace coyote::serve {

struct ServeOptions {
  /// Uncertainty margin of the initial evaluation box (movable at
  /// runtime via the "margin" op).
  double margin = 2.0;
  /// Corner-pool shape (small, like the failure sweeps: every matrix
  /// costs one OPTU re-solve per event).
  tm::PoolOptions pool;
  /// Optimizer options for computing the schemes' intact configs.
  core::CoyoteOptions coyote;
  /// 0 = the process-wide util::ThreadPool; otherwise a private pool of
  /// exactly that many threads. Responses are identical either way.
  unsigned threads = 0;
  /// Schemes kept resident, in response order; empty selects
  /// te::SchemeRegistry::builtin().defaults() (the paper's four).
  std::vector<const te::Scheme*> schemes;

  ServeOptions() {
    pool.source_hotspots = false;
    pool.max_hotspots = 8;
    pool.random_corners = 4;
    pool.pair_hotspots = 4;
    pool.seed = 1;
    coyote.splitting.iterations = 300;
    // Early stop for the resident optimizer: a "reoptimize" seeded from
    // the previous ratios converges in a fraction of the budget, and the
    // skipped iterations are reported in the serve summary
    // (reoptimizeSavedIters). One-shot sweeps keep patience off.
    coyote.splitting.patience = 20;
  }
};

class TeService {
 public:
  /// Computes every scheme's intact configuration and builds the
  /// resident OPTU engine; the service is ready for events afterwards.
  TeService(Graph g, tm::TrafficMatrix base_tm, ServeOptions opt = {});
  ~TeService();

  TeService(const TeService&) = delete;
  TeService& operator=(const TeService&) = delete;

  /// Handles one parsed request; never throws for bad requests (the
  /// response carries ok:false and an error message instead).
  [[nodiscard]] util::json::Value handle(const util::json::Value& request);

  /// Handles one protocol line: parse errors become error responses.
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// Batch replay: every line in input order, one response per line.
  /// Consecutive what-if queries are evaluated concurrently in
  /// fixed-size chunks (see file comment); output order and content are
  /// independent of the thread count.
  [[nodiscard]] std::vector<std::string> handleScript(
      const std::vector<std::string>& lines);

  /// What-if queries per warm-chain chunk in handleScript. Fixed (not
  /// derived from the thread count) so responses never depend on
  /// parallelism.
  static constexpr int kWhatIfChunk = 4;

  [[nodiscard]] long long eventsHandled() const { return seq_; }
  [[nodiscard]] int poolSize() const { return static_cast<int>(pool_.size()); }
  [[nodiscard]] const std::vector<const te::Scheme*>& schemes() const {
    return schemes_;
  }
  [[nodiscard]] double margin() const { return margin_; }
  /// Currently failed physical links as "A-B" labels, in canonical order.
  [[nodiscard]] std::vector<std::string> failedLinks() const;
  /// Splitting-optimizer iterations saved across every "reoptimize"
  /// event so far: each recompute is seeded from the scheme's previous
  /// ratios (coyote.warm_init) and stops early once converged
  /// (splitting.patience); this totals the budget it never spent.
  [[nodiscard]] long long reoptimizeSavedIters() const {
    return reopt_saved_iters_;
  }

 private:
  /// One evaluation verdict (the shape of the failure sweeps').
  struct EvalResult {
    int disconnected_pairs = 0;
    bool evaluated = false;
    std::vector<double> ratio;    ///< per scheme, schemes_ order
    std::vector<char> routable;   ///< per scheme
  };

  /// Evaluates the resident configurations with `links` (canonical ids,
  /// ascending) failed, on the given engine. Read-only and thread-safe.
  [[nodiscard]] EvalResult evaluateLinks(const std::vector<EdgeId>& links,
                                         routing::OptuEngine& engine) const;
  /// (Re)computes every scheme's intact configuration from the current
  /// base matrix / margin (kReconverge schemes keep none). With `warm`
  /// (the "reoptimize" path) each optimizer-backed scheme is seeded from
  /// its previous configuration and the patience savings accumulate into
  /// reopt_saved_iters_; the constructor's initial computation is cold.
  void computeSchemes(bool warm);
  void rebuildPool();

  [[nodiscard]] util::json::Value dispatch(const util::json::Value& request,
                                           long long seq);
  [[nodiscard]] util::json::Value handleWhatIf(const util::json::Value& request,
                                               long long seq,
                                               routing::OptuEngine& engine) const;
  /// Canonical edge id for ["A","B"]; throws std::invalid_argument with
  /// a client-facing message for unknown nodes or non-adjacent pairs.
  [[nodiscard]] EdgeId parseLink(const util::json::Value& link) const;
  void addEvalPayload(util::json::Value& response, const EvalResult& ev,
                      const std::vector<EdgeId>& links) const;

  Graph g_;
  std::shared_ptr<const DagSet> dags_;
  tm::TrafficMatrix base_;
  ServeOptions opt_;
  double margin_;
  std::vector<const te::Scheme*> schemes_;
  /// Parallel to schemes_; disengaged for kReconverge schemes.
  std::vector<std::optional<routing::RoutingConfig>> intact_;
  std::optional<tm::DemandBounds> box_;
  std::vector<tm::TrafficMatrix> pool_;  ///< corner pool of the current box
  std::vector<EdgeId> failed_;  ///< failed links (canonical ids, ascending)
  /// The resident ruler: unrestricted OPTU whose simplex sessions stay
  /// warm across the whole event stream.
  std::unique_ptr<routing::OptuEngine> engine_;
  std::unique_ptr<util::ThreadPool> own_pool_;
  long long seq_ = 0;
  long long reopt_saved_iters_ = 0;  ///< see reoptimizeSavedIters()
};

}  // namespace coyote::serve
