// Scheme evaluation over a set of failure scenarios, generic over a
// te::Scheme list (default: the paper's four, from
// te::SchemeRegistry::builtin()).
//
// For each failure the surviving network is derived (degrade.hpp) and each
// scheme reacts the way its te::FailureReaction says it would in
// deployment: kReconverge schemes re-run OSPF SPF on the survivors
// (Scheme::reconverge, over the scheme's substrate weights), kRepairDags
// schemes repair their precomputed DAGs locally. Each scheme's
// post-failure performance ratio is
//
//     max over the corner pool D of  MxLU(repaired cfg, D) / OPTU_f(D)
//
// where OPTU_f is the *unrestricted* demands-aware optimum on the
// surviving network -- the common ruler all schemes (whose DAG sets
// now differ) are measured against. Note this is a stricter normalization
// than the intact sweeps' within-DAG optimum, so post-failure ratios are
// not directly comparable to the intact rows of the same scenario.
//
// OPTU_f re-solves ride routing::OptuEngine::setFailedEdges: a failure is
// a bounds mutation on a retained simplex session, not an LP rebuild, so
// sweeping hundreds of failure variants reuses warm bases (the pivot-count
// payoff is surfaced in the BENCH lp_* telemetry; COYOTE_LP_COLD=1
// disables it for A/B measurement). Failures are fanned out over
// util::ThreadPool in fixed-size chunks -- each chunk one engine with its
// own warm chain -- so results are bit-identical for any COYOTE_THREADS.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/coyote.hpp"
#include "failure/degrade.hpp"
#include "failure/scenario.hpp"
#include "routing/config.hpp"
#include "scheme/registry.hpp"
#include "tm/uncertainty.hpp"
#include "util/thread_pool.hpp"

namespace coyote::failure {

struct FailureEvalOptions {
  /// Uncertainty margin of the evaluation box around the base matrix.
  double margin = 2.0;
  /// Corner-pool shape for the post-failure adversary (smaller than the
  /// intact sweeps' default: every matrix costs one OPTU LP per failure).
  tm::PoolOptions pool;
  /// Optimizer options for the intact COYOTE schemes.
  core::CoyoteOptions coyote;
  /// 0 = the process-wide util::ThreadPool; otherwise a private pool of
  /// exactly that many threads. Results are identical either way.
  unsigned threads = 0;
  /// Schemes to sweep, in row order; empty selects
  /// te::SchemeRegistry::builtin().defaults() (the paper's four).
  std::vector<const te::Scheme*> schemes;

  FailureEvalOptions() {
    pool.source_hotspots = false;
    pool.max_hotspots = 8;
    pool.random_corners = 4;
    pool.pair_hotspots = 4;
    pool.seed = 1;
    coyote.splitting.iterations = 300;
  }
};

/// One failure scenario's verdict. The per-scheme vectors are parallel to
/// the evaluator's scheme list (FailureEvaluator::schemes(), same order).
struct FailureOutcome {
  std::string label;
  /// (s,t) pairs with base demand the surviving *graph* cannot connect.
  /// Positive means no scheme can serve the demand: the scenario is
  /// reported but not ratio-evaluated.
  int disconnected_pairs = 0;
  bool evaluated = false;
  /// Post-failure performance ratio per scheme; valid when routable.
  std::vector<double> ratio;
  /// False when the scheme's repaired DAGs strand a demanded node even
  /// though the graph stays connected (kRepairDags schemes only; a
  /// reconverged scheme is always routable on a connected graph).
  std::vector<char> routable;
};

/// Distribution summary of one scheme's ratios over evaluated failures.
struct SchemeFailureStats {
  double worst = 0.0;
  double median = 0.0;
  double p95 = 0.0;       ///< nearest-rank 95th percentile
  int evaluated = 0;      ///< failures contributing to the stats
  int unroutable = 0;     ///< failures this scheme could not serve
};

struct FailureSweepResult {
  std::vector<FailureOutcome> outcomes;  ///< one per input scenario, in order
  int evaluated = 0;
  int disconnecting = 0;
  int disconnected_pairs = 0;  ///< summed over disconnecting scenarios
  /// Per-scheme stats, keyed by scheme key, in the evaluator's scheme
  /// order (the registry keys replace the old fixed Scheme enum).
  std::vector<std::pair<std::string, SchemeFailureStats>> schemes;
};

/// Computes the intact schemes once, then sweeps failure sets against
/// them. One evaluator may run several sweeps (e.g. -fail1 and -srlg).
class FailureEvaluator {
 public:
  FailureEvaluator(const Graph& g, std::shared_ptr<const DagSet> dags,
                   const tm::TrafficMatrix& base_tm, FailureEvalOptions opt);

  [[nodiscard]] FailureSweepResult evaluate(
      const std::vector<FailureScenario>& failures) const;

  /// Failures per warm-chain chunk in evaluate(). Fixed (not derived from
  /// the thread count) so results never depend on parallelism.
  static constexpr int kFailureChunk = 4;

  [[nodiscard]] int poolSize() const { return static_cast<int>(pool_.size()); }
  [[nodiscard]] const std::vector<const te::Scheme*>& schemes() const {
    return schemes_;
  }
  /// Intact routing of the scheme with this registry key; throws
  /// std::invalid_argument for a key outside the evaluator's scheme list
  /// or for a kReconverge scheme (those recompute their post-failure
  /// routing from the degraded graph alone and keep no intact config).
  [[nodiscard]] const routing::RoutingConfig& intactRouting(
      const std::string& key) const;

 private:
  [[nodiscard]] FailureOutcome evaluateOne(const FailureScenario& f,
                                           routing::OptuEngine& engine) const;

  const Graph& g_;
  std::shared_ptr<const DagSet> dags_;
  tm::TrafficMatrix base_;
  FailureEvalOptions opt_;
  std::vector<const te::Scheme*> schemes_;
  std::vector<tm::TrafficMatrix> pool_;  ///< raw box corners (unnormalized)
  /// Parallel to schemes_; disengaged for kReconverge schemes.
  std::vector<std::optional<routing::RoutingConfig>> intact_;
  std::unique_ptr<util::ThreadPool> own_pool_;
};

}  // namespace coyote::failure
