#include "failure/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/propagation.hpp"
#include "util/require.hpp"

namespace coyote::failure {

namespace {

/// Nearest-rank percentile of an ascending-sorted sample (p in (0, 1]).
double nearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

double medianOf(const std::vector<double>& sorted) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

FailureEvaluator::FailureEvaluator(const Graph& g,
                                   std::shared_ptr<const DagSet> dags,
                                   const tm::TrafficMatrix& base_tm,
                                   FailureEvalOptions opt)
    : g_(g),
      dags_(std::move(dags)),
      base_(base_tm),
      opt_(std::move(opt)),
      schemes_(opt_.schemes.empty()
                   ? te::SchemeRegistry::builtin().defaults()
                   : opt_.schemes),
      pool_(tm::cornerPool(tm::marginBounds(base_tm, opt_.margin),
                           opt_.pool)) {
  require(dags_ != nullptr, "null dag set");
  require(opt_.margin >= 1.0, "margin must be >= 1");
  require(!schemes_.empty(), "empty scheme list");

  // The intact (offline) configuration of every kRepairDags scheme, in
  // list order, with the caller's optimizer options passed through
  // unmodified (including any oracle_rounds request). Margin-dependent
  // schemes are optimized against the operator's uncertainty box over the
  // same corner pool the sweep evaluates with. kReconverge schemes carry
  // no intact config here: their post-failure routing is recomputed from
  // the degraded graph alone (Scheme::reconverge), so computing one would
  // be pure startup waste (invcap-ecmp's would rebuild a whole augmented
  // DAG set).
  const tm::DemandBounds box = tm::marginBounds(base_tm, opt_.margin);
  intact_.reserve(schemes_.size());
  for (const te::Scheme* s : schemes_) {
    if (s->reaction() == te::FailureReaction::kReconverge) {
      intact_.emplace_back(std::nullopt);
    } else if (s->marginDependent()) {
      routing::PerformanceEvaluator eval(g_, dags_, opt_.coyote.lp);
      eval.addPool(pool_);
      const te::SchemeContext ctx{g_, dags_, base_, opt_.coyote, &box,
                                  &eval};
      intact_.emplace_back(s->compute(ctx));
    } else {
      const te::SchemeContext ctx{g_,      dags_,  base_, opt_.coyote,
                                  nullptr, nullptr};
      intact_.emplace_back(s->compute(ctx));
    }
  }
  if (opt_.threads != 0) {
    own_pool_ = std::make_unique<util::ThreadPool>(opt_.threads);
  }
}

const routing::RoutingConfig& FailureEvaluator::intactRouting(
    const std::string& key) const {
  for (std::size_t i = 0; i < schemes_.size(); ++i) {
    if (key != schemes_[i]->key()) continue;
    if (!intact_[i].has_value()) {
      throw std::invalid_argument("scheme '" + key +
                                  "' reconverges; it keeps no intact "
                                  "config here");
    }
    return *intact_[i];
  }
  throw std::invalid_argument("scheme '" + key +
                              "' is not in this evaluator's list");
}

FailureOutcome FailureEvaluator::evaluateOne(
    const FailureScenario& f, routing::OptuEngine& engine) const {
  const int n = static_cast<int>(schemes_.size());
  FailureOutcome out;
  out.label = f.label;
  out.ratio.assign(n, 0.0);
  out.routable.assign(n, 0);

  const Graph degraded = degradedGraph(g_, f);
  out.disconnected_pairs = disconnectedPairs(degraded, base_);
  if (out.disconnected_pairs > 0) return out;  // reported, not evaluated
  out.evaluated = true;

  // The surviving routings: each scheme reacts per its FailureReaction --
  // OSPF reconvergence, or DAG repair with split renormalization. The
  // repaired DAG set is shared by every kRepairDags scheme (and skipped
  // entirely when the selection is all-reconverge).
  bool any_repair = false;
  for (const te::Scheme* s : schemes_) {
    any_repair |= s->reaction() == te::FailureReaction::kRepairDags;
  }
  const std::shared_ptr<const DagSet> repaired =
      any_repair ? repairDags(g_, *dags_, failedEdgeMask(g_, f)) : nullptr;
  std::vector<routing::RoutingConfig> cfgs;
  cfgs.reserve(n);
  for (int s = 0; s < n; ++s) {
    if (schemes_[s]->reaction() == te::FailureReaction::kReconverge) {
      cfgs.push_back(schemes_[s]->reconverge(degraded));
    } else {
      cfgs.push_back(repairRouting(g_, *intact_[s], repaired));
    }
  }
  for (int s = 0; s < n; ++s) {
    out.routable[s] = routesAllDemands(cfgs[s], base_);
  }

  // The common post-failure ruler: unrestricted OPTU on the surviving
  // network, one warm re-solve per pool matrix (the failure entered the
  // engine as a bounds mutation; see OptuEngine::setFailedEdges).
  engine.setFailedEdges(directedEdges(g_, f));
  std::vector<double> optu(pool_.size(), 0.0);
  for (std::size_t j = 0; j < pool_.size(); ++j) {
    optu[j] = engine.utilization(pool_[j]);
  }

  for (std::size_t j = 0; j < pool_.size(); ++j) {
    if (optu[j] <= 0.0) continue;  // zero matrix
    for (int s = 0; s < n; ++s) {
      if (!out.routable[s]) continue;
      const double mxlu =
          routing::maxLinkUtilization(degraded, cfgs[s], pool_[j]);
      out.ratio[s] = std::max(out.ratio[s], mxlu / optu[j]);
    }
  }
  return out;
}

FailureSweepResult FailureEvaluator::evaluate(
    const std::vector<FailureScenario>& failures) const {
  const int n = static_cast<int>(schemes_.size());
  FailureSweepResult result;
  result.outcomes.resize(failures.size());
  result.schemes.reserve(n);
  for (const te::Scheme* s : schemes_) {
    result.schemes.emplace_back(s->key(), SchemeFailureStats{});
  }

  // Fixed-size chunks of the failure list: each chunk owns one OptuEngine
  // whose sessions stay warm across the chunk's failures x pool matrices.
  // Chunking is independent of the thread count, so results (and pivot
  // counts) are bit-identical for any COYOTE_THREADS.
  const std::size_t chunks =
      (failures.size() + kFailureChunk - 1) / kFailureChunk;
  util::ThreadPool& tp = own_pool_ ? *own_pool_ : util::ThreadPool::global();
  tp.parallelFor(chunks, [&](std::size_t c) {
    routing::OptuEngine engine(g_, opt_.coyote.lp);  // unrestricted OPTU
    const std::size_t begin = c * kFailureChunk;
    const std::size_t end =
        std::min(failures.size(), begin + kFailureChunk);
    for (std::size_t i = begin; i < end; ++i) {
      result.outcomes[i] = evaluateOne(failures[i], engine);
    }
  });

  // Serial reduction in scenario order.
  std::vector<std::vector<double>> ratios(n);
  for (const FailureOutcome& out : result.outcomes) {
    if (!out.evaluated) {
      ++result.disconnecting;
      result.disconnected_pairs += out.disconnected_pairs;
      continue;
    }
    ++result.evaluated;
    for (int s = 0; s < n; ++s) {
      if (out.routable[s]) {
        ratios[s].push_back(out.ratio[s]);
      } else {
        ++result.schemes[s].second.unroutable;
      }
    }
  }
  for (int s = 0; s < n; ++s) {
    std::vector<double>& r = ratios[s];
    std::sort(r.begin(), r.end());
    SchemeFailureStats& stats = result.schemes[s].second;
    stats.evaluated = static_cast<int>(r.size());
    if (!r.empty()) {
      stats.worst = r.back();
      stats.median = medianOf(r);
      stats.p95 = nearestRank(r, 0.95);
    }
  }
  return result;
}

}  // namespace coyote::failure
