#include "failure/evaluate.hpp"

#include <algorithm>
#include <cmath>

#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/propagation.hpp"
#include "util/require.hpp"

namespace coyote::failure {

const char* schemeKey(Scheme s) {
  switch (s) {
    case Scheme::kEcmp:
      return "ecmp";
    case Scheme::kBase:
      return "base";
    case Scheme::kOblivious:
      return "oblivious";
    case Scheme::kPartial:
      return "partial";
  }
  return "unknown";
}

namespace {

/// Nearest-rank percentile of an ascending-sorted sample (p in (0, 1]).
double nearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

double medianOf(const std::vector<double>& sorted) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

FailureEvaluator::FailureEvaluator(const Graph& g,
                                   std::shared_ptr<const DagSet> dags,
                                   const tm::TrafficMatrix& base_tm,
                                   FailureEvalOptions opt)
    : g_(g),
      dags_(std::move(dags)),
      base_(base_tm),
      opt_(std::move(opt)),
      pool_(tm::cornerPool(tm::marginBounds(base_tm, opt_.margin),
                           opt_.pool)),
      base_routing_(
          routing::optimalRoutingForDemand(g, dags_, base_tm, opt_.coyote.lp)
              .routing),
      oblivious_(core::coyoteOblivious(g, dags_, opt_.coyote).routing),
      partial_([&] {
        // COYOTE with the operator's uncertainty box, optimized on the
        // intact network (the offline configuration the failure hits),
        // against the same corner pool the sweep evaluates with.
        const tm::DemandBounds box = tm::marginBounds(base_tm, opt_.margin);
        routing::PerformanceEvaluator eval(g, dags_, opt_.coyote.lp);
        eval.addPool(pool_);
        return core::optimizeAgainstPool(g, eval, &box, opt_.coyote).routing;
      }()) {
  require(dags_ != nullptr, "null dag set");
  require(opt_.margin >= 1.0, "margin must be >= 1");
  if (opt_.threads != 0) {
    own_pool_ = std::make_unique<util::ThreadPool>(opt_.threads);
  }
}

const routing::RoutingConfig& FailureEvaluator::intactRouting(Scheme s) const {
  switch (s) {
    case Scheme::kBase:
      return base_routing_;
    case Scheme::kOblivious:
      return oblivious_;
    case Scheme::kPartial:
      return partial_;
    default:
      break;
  }
  throw std::invalid_argument("no intact config for this scheme");
}

FailureOutcome FailureEvaluator::evaluateOne(
    const FailureScenario& f, routing::OptuEngine& engine) const {
  FailureOutcome out;
  out.label = f.label;

  const Graph degraded = degradedGraph(g_, f);
  out.disconnected_pairs = disconnectedPairs(degraded, base_);
  if (out.disconnected_pairs > 0) return out;  // reported, not evaluated
  out.evaluated = true;

  // The surviving routings: OSPF reconvergence for ECMP, DAG repair with
  // split renormalization for the static schemes.
  const std::vector<char> failed = failedEdgeMask(g_, f);
  const std::shared_ptr<const DagSet> repaired =
      repairDags(g_, *dags_, failed);
  std::array<routing::RoutingConfig, kSchemeCount> cfgs = {
      reconvergedEcmp(degraded),
      repairRouting(g_, base_routing_, repaired),
      repairRouting(g_, oblivious_, repaired),
      repairRouting(g_, partial_, repaired),
  };
  for (int s = 0; s < kSchemeCount; ++s) {
    out.routable[s] = routesAllDemands(cfgs[s], base_);
  }

  // The common post-failure ruler: unrestricted OPTU on the surviving
  // network, one warm re-solve per pool matrix (the failure entered the
  // engine as a bounds mutation; see OptuEngine::setFailedEdges).
  engine.setFailedEdges(directedEdges(g_, f));
  std::vector<double> optu(pool_.size(), 0.0);
  for (std::size_t j = 0; j < pool_.size(); ++j) {
    optu[j] = engine.utilization(pool_[j]);
  }

  for (std::size_t j = 0; j < pool_.size(); ++j) {
    if (optu[j] <= 0.0) continue;  // zero matrix
    for (int s = 0; s < kSchemeCount; ++s) {
      if (!out.routable[s]) continue;
      const double mxlu =
          routing::maxLinkUtilization(degraded, cfgs[s], pool_[j]);
      out.ratio[s] = std::max(out.ratio[s], mxlu / optu[j]);
    }
  }
  return out;
}

FailureSweepResult FailureEvaluator::evaluate(
    const std::vector<FailureScenario>& failures) const {
  FailureSweepResult result;
  result.outcomes.resize(failures.size());

  // Fixed-size chunks of the failure list: each chunk owns one OptuEngine
  // whose sessions stay warm across the chunk's failures x pool matrices.
  // Chunking is independent of the thread count, so results (and pivot
  // counts) are bit-identical for any COYOTE_THREADS.
  const std::size_t chunks =
      (failures.size() + kFailureChunk - 1) / kFailureChunk;
  util::ThreadPool& tp = own_pool_ ? *own_pool_ : util::ThreadPool::global();
  tp.parallelFor(chunks, [&](std::size_t c) {
    routing::OptuEngine engine(g_, opt_.coyote.lp);  // unrestricted OPTU
    const std::size_t begin = c * kFailureChunk;
    const std::size_t end =
        std::min(failures.size(), begin + kFailureChunk);
    for (std::size_t i = begin; i < end; ++i) {
      result.outcomes[i] = evaluateOne(failures[i], engine);
    }
  });

  // Serial reduction in scenario order.
  std::array<std::vector<double>, kSchemeCount> ratios;
  for (const FailureOutcome& out : result.outcomes) {
    if (!out.evaluated) {
      ++result.disconnecting;
      result.disconnected_pairs += out.disconnected_pairs;
      continue;
    }
    ++result.evaluated;
    for (int s = 0; s < kSchemeCount; ++s) {
      if (out.routable[s]) {
        ratios[s].push_back(out.ratio[s]);
      } else {
        ++result.schemes[s].unroutable;
      }
    }
  }
  for (int s = 0; s < kSchemeCount; ++s) {
    std::vector<double>& r = ratios[s];
    std::sort(r.begin(), r.end());
    SchemeFailureStats& stats = result.schemes[s];
    stats.evaluated = static_cast<int>(r.size());
    if (!r.empty()) {
      stats.worst = r.back();
      stats.median = medianOf(r);
      stats.p95 = nearestRank(r, 0.95);
    }
  }
  return result;
}

}  // namespace coyote::failure
