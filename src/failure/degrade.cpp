#include "failure/degrade.hpp"

#include <algorithm>
#include <limits>

#include "fibbing/ospf_model.hpp"
#include "graph/dijkstra.hpp"

namespace coyote::failure {

Graph degradedGraph(const Graph& g, const FailureScenario& f) {
  Graph out = g;
  for (const EdgeId e : directedEdges(g, f)) out.setCapacity(e, 0.0);
  return out;
}

std::vector<char> failedEdgeMask(const Graph& g, const FailureScenario& f) {
  std::vector<char> failed(g.numEdges(), 0);
  for (const EdgeId e : directedEdges(g, f)) failed[e] = 1;
  return failed;
}

Dag repairDag(const Graph& g, const Dag& dag,
              const std::vector<char>& failed) {
  require(static_cast<int>(failed.size()) == g.numEdges(),
          "failed mask size mismatch");
  // Which nodes still reach dest over surviving DAG edges: one sweep over
  // the original topological order in reverse (dest-most first) suffices,
  // because every surviving edge (u,v) has v later in the order.
  const NodeId dest = dag.dest();
  std::vector<char> reaches(dag.numNodes(), 0);
  reaches[dest] = 1;
  const auto& topo = dag.topoOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    if (reaches[u]) continue;
    for (const EdgeId e : dag.outEdges(u)) {
      if (!failed[e] && reaches[g.edge(e).dst]) {
        reaches[u] = 1;
        break;
      }
    }
  }
  // Keep edges that survive and still lead somewhere: pruning edges into
  // dead-end nodes is what makes the renormalized splits lossless.
  std::vector<EdgeId> edges;
  for (const EdgeId e : dag.edges()) {
    if (!failed[e] && reaches[g.edge(e).dst]) edges.push_back(e);
  }
  return Dag(g, dest, std::move(edges));
}

std::shared_ptr<const DagSet> repairDags(const Graph& g, const DagSet& dags,
                                         const std::vector<char>& failed) {
  DagSet out;
  out.reserve(dags.size());
  for (const Dag& dag : dags) out.push_back(repairDag(g, dag, failed));
  return std::make_shared<const DagSet>(std::move(out));
}

routing::RoutingConfig repairRouting(const Graph& g,
                                     const routing::RoutingConfig& cfg,
                                     std::shared_ptr<const DagSet> repaired) {
  require(repaired != nullptr, "null repaired dag set");
  routing::RoutingConfig out(g, std::move(repaired));
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    for (const EdgeId e : out.dags()[t].edges()) {
      // Repaired edges are a subset of the original DAG's edges, so the
      // original ratio is defined for each of them.
      out.setRatio(t, e, cfg.ratio(t, e));
    }
  }
  // Renormalize per (destination, node); nodes whose surviving ratios sum
  // to ~0 (the original split sent everything into failed/pruned edges)
  // fall back to equal splitting over the surviving out-edges.
  out.normalize(g);
  return out;
}

bool routesAllDemands(const routing::RoutingConfig& cfg,
                      const tm::TrafficMatrix& d) {
  for (NodeId t = 0; t < d.numNodes(); ++t) {
    const Dag& dag = cfg.dags()[t];
    for (NodeId s = 0; s < d.numNodes(); ++s) {
      if (s == t || d.at(s, t) <= 0.0) continue;
      if (!dag.reachesDest(s)) return false;
    }
  }
  return true;
}

routing::RoutingConfig reconvergedEcmp(const Graph& degraded) {
  // OSPF reconvergence: every router re-runs SPF on the surviving
  // topology. The OspfModel computes, per destination prefix, exactly the
  // FIBs legacy routers converge to once the failure's LSAs flood (no
  // lies survive a reconvergence unrefreshed; the controller would have
  // to re-inject them, which is the precomputed-failover story of
  // Sec. VI-A, not the baseline modeled here).
  fib::OspfModel model(degraded);
  const int n = degraded.numNodes();
  DagSet dags;
  dags.reserve(n);
  std::vector<std::vector<fib::FibEntry>> fibs;
  fibs.reserve(n);
  for (NodeId t = 0; t < n; ++t) {
    model.advertisePrefix(t, t);
    fibs.push_back(model.computeFibs(t));
    std::vector<EdgeId> edges;
    for (NodeId u = 0; u < n; ++u) {
      for (const fib::FibNextHop& hop : fibs.back()[u].next_hops) {
        edges.push_back(hop.edge);
      }
    }
    dags.emplace_back(degraded, t, std::move(edges));
  }
  routing::RoutingConfig cfg(degraded,
                             std::make_shared<const DagSet>(std::move(dags)));
  for (NodeId t = 0; t < n; ++t) {
    for (NodeId u = 0; u < n; ++u) {
      const fib::FibEntry& entry = fibs[t][u];
      const int total = entry.totalMultiplicity();
      if (total <= 0) continue;
      for (const fib::FibNextHop& hop : entry.next_hops) {
        cfg.setRatio(t, hop.edge,
                     static_cast<double>(hop.multiplicity) / total);
      }
    }
  }
  return cfg;
}

int disconnectedPairs(const Graph& degraded, const tm::TrafficMatrix& base) {
  require(base.numNodes() == degraded.numNodes(),
          "matrix/graph size mismatch");
  int count = 0;
  for (NodeId t = 0; t < degraded.numNodes(); ++t) {
    bool any = false;
    for (NodeId s = 0; s < degraded.numNodes(); ++s) {
      any = any || (s != t && base.at(s, t) > 0.0);
    }
    if (!any) continue;
    // Reverse reachability toward t over surviving (positive-capacity)
    // edges; hop distances suffice.
    const ShortestPathsToDest sp = hopDistancesTo(degraded, t);
    for (NodeId s = 0; s < degraded.numNodes(); ++s) {
      if (s != t && base.at(s, t) > 0.0 &&
          sp.dist[s] == std::numeric_limits<double>::infinity()) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace coyote::failure
