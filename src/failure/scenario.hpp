// Failure-scenario enumeration (the link-failure workload class).
//
// The paper evaluates COYOTE on intact topologies only, but a
// (semi-)oblivious TE scheme's selling point is robustness to conditions
// the operator did not plan for -- Kulfi-style evaluations make link
// failures a first-class axis. A FailureScenario names a set of physical
// links that fail together; this header enumerates the standard families:
//
//  * every single-link failure,
//  * deterministically sampled double-link failures, and
//  * SRLG (shared-risk link group) failures: links that share a conduit
//    or line card and therefore fail together. Real SRLG databases are
//    operator data; derivedSrlgs() synthesizes the classic stand-in (the
//    two first links leaving every >=3-degree POP share a conduit).
//
// The derived per-failure network (capacity zeroing, DAG repair, OSPF
// reconvergence) lives in degrade.hpp; the four-scheme evaluation over a
// failure set lives in evaluate.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace coyote::failure {

/// One failure scenario: the physical links that go down together. Links
/// are named by their canonical directed edge id (the lower id of the two
/// directions); the reverse directions fail implicitly.
struct FailureScenario {
  std::string label;           ///< "A-B" or "srlg:POP" -- stable, printable
  std::vector<EdgeId> links;   ///< canonical edge ids, strictly ascending
};

/// A named shared-risk link group.
struct Srlg {
  std::string name;
  std::vector<EdgeId> links;  ///< canonical edge ids
};

/// Canonical edge ids of every physical link: unidirectional edges and the
/// lower-id direction of every bidirectional pair, ascending.
[[nodiscard]] std::vector<EdgeId> physicalLinks(const Graph& g);

/// Both directions of a failure's links (the edge set to actually zero).
[[nodiscard]] std::vector<EdgeId> directedEdges(const Graph& g,
                                                const FailureScenario& f);

/// "A-B" from the canonical edge's endpoint names.
[[nodiscard]] std::string linkLabel(const Graph& g, EdgeId link);

/// Every single-link failure, in canonical link order.
[[nodiscard]] std::vector<FailureScenario> singleLinkFailures(const Graph& g);

/// `count` double-link failures sampled without replacement from all
/// unordered link pairs. Deterministic in (g, count, seed); when the graph
/// has at most `count` pairs, all of them are returned in order.
[[nodiscard]] std::vector<FailureScenario> sampledDoubleLinkFailures(
    const Graph& g, int count, std::uint64_t seed);

/// One failure scenario per SRLG (groups with no links are skipped).
[[nodiscard]] std::vector<FailureScenario> srlgFailures(
    const Graph& g, const std::vector<Srlg>& groups);

/// Synthetic SRLG database when no operator data exists: for every node of
/// degree >= 3, its two lowest-id incident physical links are assumed to
/// leave the POP through one conduit ("srlg:<node>"). Degree-2 nodes are
/// excluded -- their pair failing always isolates the node, which would
/// make every SRLG scenario trivially disconnecting.
[[nodiscard]] std::vector<Srlg> derivedSrlgs(const Graph& g);

}  // namespace coyote::failure
