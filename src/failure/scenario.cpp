#include "failure/scenario.hpp"

#include <algorithm>
#include <random>

namespace coyote::failure {

std::vector<EdgeId> physicalLinks(const Graph& g) {
  std::vector<EdgeId> links;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    if (ed.reverse != kInvalidEdge && ed.reverse < e) continue;  // visit once
    links.push_back(e);
  }
  return links;
}

std::vector<EdgeId> directedEdges(const Graph& g, const FailureScenario& f) {
  std::vector<EdgeId> edges;
  edges.reserve(2 * f.links.size());
  for (const EdgeId link : f.links) {
    require(link >= 0 && link < g.numEdges(), "failure link out of range");
    edges.push_back(link);
    const EdgeId rev = g.edge(link).reverse;
    if (rev != kInvalidEdge) edges.push_back(rev);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::string linkLabel(const Graph& g, EdgeId link) {
  const Edge& ed = g.edge(link);
  return g.nodeName(ed.src) + "-" + g.nodeName(ed.dst);
}

std::vector<FailureScenario> singleLinkFailures(const Graph& g) {
  std::vector<FailureScenario> out;
  for (const EdgeId link : physicalLinks(g)) {
    out.push_back({linkLabel(g, link), {link}});
  }
  return out;
}

std::vector<FailureScenario> sampledDoubleLinkFailures(const Graph& g,
                                                       int count,
                                                       std::uint64_t seed) {
  require(count >= 0, "negative sample count");
  const std::vector<EdgeId> links = physicalLinks(g);
  const std::size_t n = links.size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  if (static_cast<std::size_t>(count) < pairs.size()) {
    // Deterministic partial Fisher-Yates: the first `count` entries are a
    // uniform sample without replacement; re-sorted so the scenario order
    // is stable and readable regardless of the draw order.
    std::mt19937_64 rng(seed);
    for (std::size_t k = 0; k < static_cast<std::size_t>(count); ++k) {
      std::uniform_int_distribution<std::size_t> pick(k, pairs.size() - 1);
      std::swap(pairs[k], pairs[pick(rng)]);
    }
    pairs.resize(static_cast<std::size_t>(count));
    std::sort(pairs.begin(), pairs.end());
  }
  std::vector<FailureScenario> out;
  out.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    FailureScenario f;
    f.label = linkLabel(g, links[i]) + "+" + linkLabel(g, links[j]);
    f.links = {links[i], links[j]};
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<FailureScenario> srlgFailures(const Graph& g,
                                          const std::vector<Srlg>& groups) {
  std::vector<FailureScenario> out;
  for (const Srlg& srlg : groups) {
    if (srlg.links.empty()) continue;
    FailureScenario f;
    f.label = "srlg:" + srlg.name;
    f.links = srlg.links;
    for (const EdgeId link : f.links) {
      require(link >= 0 && link < g.numEdges(), "SRLG link out of range");
    }
    std::sort(f.links.begin(), f.links.end());
    f.links.erase(std::unique(f.links.begin(), f.links.end()),
                  f.links.end());
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<Srlg> derivedSrlgs(const Graph& g) {
  // Physical degree and the incident canonical links per node.
  std::vector<std::vector<EdgeId>> incident(g.numNodes());
  for (const EdgeId link : physicalLinks(g)) {
    const Edge& ed = g.edge(link);
    incident[ed.src].push_back(link);
    incident[ed.dst].push_back(link);
  }
  std::vector<Srlg> out;
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    auto& links = incident[v];
    if (links.size() < 3) continue;  // degree-2 pairs always isolate v
    std::sort(links.begin(), links.end());
    out.push_back({g.nodeName(v), {links[0], links[1]}});
  }
  return out;
}

}  // namespace coyote::failure
