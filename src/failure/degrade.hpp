// Deriving the post-failure network for one FailureScenario.
//
// Three views of the surviving network, matching how each routing scheme
// actually reacts to a link failure:
//
//  * the graph: failed links get capacity 0 (node/edge ids are preserved,
//    so every id-indexed structure stays aligned). Zero capacity is the
//    repo-wide "failed link" encoding -- SPF, ECMP next-hop computation
//    and connectivity checks all skip such edges (see graph/dijkstra.hpp).
//
//  * COYOTE / any static per-destination-DAG scheme: the precomputed DAGs
//    are *repaired*, not rebuilt -- failed edges are removed, then edges
//    into nodes that lost their path to the destination are pruned
//    iteratively, and each surviving node renormalizes its splitting
//    ratios over the surviving out-edges (the local rebalancing a static
//    scheme can do without re-running the optimizer). A node the pruning
//    strands (graph-connected but DAG-disconnected) makes the scheme
//    *unroutable* for demands at that node.
//
//  * ECMP / the fibbing substrate: OSPF floods the withdrawal and every
//    router re-runs SPF on the surviving topology -- modeled through
//    fibbing::OspfModel over the degraded graph, so the reconverged ECMP
//    config is exactly what the FIBs of lied-to-but-now-truthful routers
//    would hold.
#pragma once

#include <memory>
#include <vector>

#include "failure/scenario.hpp"
#include "graph/dag.hpp"
#include "routing/config.hpp"
#include "tm/traffic_matrix.hpp"

namespace coyote::failure {

/// Copy of `g` with both directions of the failure's links at capacity 0.
[[nodiscard]] Graph degradedGraph(const Graph& g, const FailureScenario& f);

/// Per-EdgeId failed mask (both directions) for the scenario.
[[nodiscard]] std::vector<char> failedEdgeMask(const Graph& g,
                                               const FailureScenario& f);

/// Repairs one destination DAG: drops failed edges, then iteratively
/// prunes edges whose head can no longer reach the destination. The result
/// is acyclic by construction (a subset of an acyclic edge set) and may
/// strand nodes (no surviving out-edges); callers detect those via
/// Dag::reachesDest.
[[nodiscard]] Dag repairDag(const Graph& g, const Dag& dag,
                            const std::vector<char>& failed);

/// repairDag over a whole DAG set.
[[nodiscard]] std::shared_ptr<const DagSet> repairDags(
    const Graph& g, const DagSet& dags, const std::vector<char>& failed);

/// Re-expresses `cfg` over the repaired DAGs: surviving ratios are copied
/// and renormalized per (destination, node); nodes whose surviving ratios
/// all vanished fall back to equal splitting over the surviving out-edges.
/// No traffic is ever placed on a failed edge.
[[nodiscard]] routing::RoutingConfig repairRouting(
    const Graph& g, const routing::RoutingConfig& cfg,
    std::shared_ptr<const DagSet> repaired);

/// True if `cfg` can deliver every positive demand of `d`: each (s,t) with
/// d(s,t) > 0 has a directed path to t inside cfg's DAG for t.
[[nodiscard]] bool routesAllDemands(const routing::RoutingConfig& cfg,
                                    const tm::TrafficMatrix& d);

/// The post-failure ECMP configuration: OSPF reconvergence on the degraded
/// graph, modeled via fibbing::OspfModel (one prefix per destination), with
/// equal splitting over each FIB's next hops. The config's DAG set is the
/// reconverged shortest-path DAG set.
[[nodiscard]] routing::RoutingConfig reconvergedEcmp(const Graph& degraded);

/// Number of (s,t) pairs with base demand > 0 that the degraded graph
/// cannot connect at all (no surviving directed path). Positive means the
/// failure partitions the demand: no routing scheme can serve it.
[[nodiscard]] int disconnectedPairs(const Graph& degraded,
                                    const tm::TrafficMatrix& base);

}  // namespace coyote::failure
