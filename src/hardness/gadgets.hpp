// Constructions behind the negative results of Sec. IV.
//
//  * The BIPARTITION reduction (Theorem 1, Figs. 2-3): an instance
//    W = {w_1..w_k} of positive integers becomes a network of k INTEGER
//    gadgets between two sources and one target. A positive instance admits
//    an oblivious per-destination routing of ratio 4/3 (Lemma 2, realized
//    here explicitly); a negative one does not (Lemma 3). Tests check both
//    directions numerically.
//
//  * The Omega(|V|) gap (Theorem 4, Fig. 4): an n-node path with infinite
//    internal capacity and unit-capacity exits forces every oblivious
//    per-destination routing to performance ratio >= n on single-source
//    demands, while the all-direct routing attains exactly n.
#pragma once

#include <memory>
#include <vector>

#include "graph/dag.hpp"
#include "routing/config.hpp"
#include "tm/traffic_matrix.hpp"

namespace coyote::hardness {

struct BipartitionInstance {
  Graph graph;
  NodeId s1 = kInvalidNode;
  NodeId s2 = kInvalidNode;
  NodeId t = kInvalidNode;
  std::vector<NodeId> x1, x2, m;  ///< gadget vertices, one entry per integer
  std::vector<double> weights;    ///< the integers W
  double sum = 0.0;               ///< SUM of W
};

/// Builds the reduction network for the integer set `w` (all > 0).
[[nodiscard]] BipartitionInstance makeBipartitionInstance(
    const std::vector<double>& w);

/// The two non-dominated demand vertices D1 = (2*SUM, 0), D2 = (0, 2*SUM).
[[nodiscard]] std::pair<tm::TrafficMatrix, tm::TrafficMatrix> extremeDemands(
    const BipartitionInstance& inst);

/// The explicit routing of Lemma 2 for the partition given by `in_p1`
/// (in_p1[i] == true places w_i in P1). For an even bipartition this routing
/// has worst-case utilization exactly 4/3 on {D1, D2}; for uneven
/// partitions the lemma's source splits are rescaled proportionally (and
/// the resulting worst case exceeds 4/3).
[[nodiscard]] routing::RoutingConfig lemma2Routing(
    const BipartitionInstance& inst, const std::vector<bool>& in_p1);

/// DAG toward t for a given gadget-edge orientation (orient_1to2[i] == true
/// orients (x1_i -> x2_i)); the DAG underlying lemma2Routing.
[[nodiscard]] std::shared_ptr<const DagSet> bipartitionDags(
    const BipartitionInstance& inst, const std::vector<bool>& orient_1to2);

struct PathInstance {
  Graph graph;
  std::vector<NodeId> x;  ///< the path vertices x_1..x_n
  NodeId t = kInvalidNode;
};

/// The Theorem 4 network: an n-vertex bidirectional path of effectively
/// infinite capacity, each vertex wired to t by a unit-capacity edge.
[[nodiscard]] PathInstance makePathInstance(int n);

/// The n single-source demand matrices D_i (x_i sends n units to t).
[[nodiscard]] std::vector<tm::TrafficMatrix> pathDemands(
    const PathInstance& inst);

/// The "all direct" routing (every x_i uses only its (x_i,t) edge), which
/// attains performance ratio exactly n -- the optimum by Theorem 4.
[[nodiscard]] routing::RoutingConfig allDirectRouting(const PathInstance& inst);

}  // namespace coyote::hardness
