#include "hardness/gadgets.hpp"

namespace coyote::hardness {

BipartitionInstance makeBipartitionInstance(const std::vector<double>& w) {
  require(!w.empty(), "empty integer set");
  BipartitionInstance inst;
  inst.weights = w;
  for (const double wi : w) {
    require(wi > 0.0, "integers must be positive");
    inst.sum += wi;
  }
  Graph& g = inst.graph;
  inst.s1 = g.addNode("s1");
  inst.s2 = g.addNode("s2");
  inst.t = g.addNode("t");
  for (std::size_t i = 0; i < w.size(); ++i) {
    const std::string suffix = std::to_string(i);
    const NodeId x1 = g.addNode("x1_" + suffix);
    const NodeId x2 = g.addNode("x2_" + suffix);
    const NodeId mi = g.addNode("m_" + suffix);
    inst.x1.push_back(x1);
    inst.x2.push_back(x2);
    inst.m.push_back(mi);
    const double wi = w[i];
    g.addLink(x1, x2, wi);  // bidirectional, capacity w_i
    g.addLink(x1, mi, wi);
    g.addLink(x2, mi, wi);
    g.addEdge(inst.s1, x1, 2.0 * wi);  // directed source feeds
    g.addEdge(inst.s2, x2, 2.0 * wi);
    g.addEdge(mi, inst.t, 2.0 * wi);   // directed gadget exit
  }
  return inst;
}

std::pair<tm::TrafficMatrix, tm::TrafficMatrix> extremeDemands(
    const BipartitionInstance& inst) {
  tm::TrafficMatrix d1(inst.graph.numNodes());
  tm::TrafficMatrix d2(inst.graph.numNodes());
  d1.set(inst.s1, inst.t, 2.0 * inst.sum);
  d2.set(inst.s2, inst.t, 2.0 * inst.sum);
  return {d1, d2};
}

std::shared_ptr<const DagSet> bipartitionDags(
    const BipartitionInstance& inst, const std::vector<bool>& orient_1to2) {
  require(orient_1to2.size() == inst.weights.size(), "orientation size");
  const Graph& g = inst.graph;
  DagSet dags;
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    std::vector<EdgeId> edges;
    if (t == inst.t) {
      for (std::size_t i = 0; i < inst.weights.size(); ++i) {
        edges.push_back(*g.findEdge(inst.s1, inst.x1[i]));
        edges.push_back(*g.findEdge(inst.s2, inst.x2[i]));
        edges.push_back(*g.findEdge(inst.m[i], inst.t));
        edges.push_back(*g.findEdge(inst.x1[i], inst.m[i]));
        edges.push_back(*g.findEdge(inst.x2[i], inst.m[i]));
        if (orient_1to2[i]) {
          edges.push_back(*g.findEdge(inst.x1[i], inst.x2[i]));
        } else {
          edges.push_back(*g.findEdge(inst.x2[i], inst.x1[i]));
        }
      }
    }
    // Non-target destinations carry no demand in the reduction; empty DAGs.
    dags.emplace_back(g, t, std::move(edges));
  }
  return std::make_shared<const DagSet>(std::move(dags));
}

routing::RoutingConfig lemma2Routing(const BipartitionInstance& inst,
                                     const std::vector<bool>& in_p1) {
  require(in_p1.size() == inst.weights.size(), "partition size mismatch");
  const Graph& g = inst.graph;
  // The DAG orientation of Lemma 2: (x1->x2) iff w_i in P1 ... the split at
  // x1_i is 1/2 toward x2_i when i is in P1; symmetric for P2.
  std::vector<bool> orient(in_p1);
  auto dags = bipartitionDags(inst, orient);
  routing::RoutingConfig cfg(g, dags);
  const NodeId t = inst.t;
  const double sum3 = 3.0 * inst.sum;
  for (std::size_t i = 0; i < inst.weights.size(); ++i) {
    const double wi = inst.weights[i];
    const bool p1 = in_p1[i];
    // Splits at the sources (Lemma 2): 4w/3SUM toward "its" partition's
    // gadget entry, 2w/3SUM otherwise.
    cfg.setRatio(t, *g.findEdge(inst.s1, inst.x1[i]),
                 (p1 ? 4.0 : 2.0) * wi / sum3);
    cfg.setRatio(t, *g.findEdge(inst.s2, inst.x2[i]),
                 (p1 ? 2.0 : 4.0) * wi / sum3);
    // Splits inside the gadget.
    if (p1) {
      cfg.setRatio(t, *g.findEdge(inst.x1[i], inst.x2[i]), 0.5);
      cfg.setRatio(t, *g.findEdge(inst.x1[i], inst.m[i]), 0.5);
      cfg.setRatio(t, *g.findEdge(inst.x2[i], inst.m[i]), 1.0);
    } else {
      cfg.setRatio(t, *g.findEdge(inst.x2[i], inst.x1[i]), 0.5);
      cfg.setRatio(t, *g.findEdge(inst.x2[i], inst.m[i]), 0.5);
      cfg.setRatio(t, *g.findEdge(inst.x1[i], inst.m[i]), 1.0);
    }
    cfg.setRatio(t, *g.findEdge(inst.m[i], inst.t), 1.0);
  }
  // For an even bipartition the source splits already sum to 1; for uneven
  // partitions (used by tests to show they are worse) rescale them
  // proportionally.
  cfg.normalize(g);
  cfg.validate(g);
  return cfg;
}

PathInstance makePathInstance(int n) {
  require(n >= 2, "path needs >= 2 vertices");
  PathInstance inst;
  Graph& g = inst.graph;
  // "Infinite" internal capacity: large enough that the path never binds
  // for any demand in the experiments, small enough to keep the LPs
  // well-conditioned.
  constexpr double kHuge = 1e6;
  for (int i = 0; i < n; ++i) {
    inst.x.push_back(g.addNode("x" + std::to_string(i + 1)));
  }
  inst.t = g.addNode("t");
  for (int i = 0; i + 1 < n; ++i) g.addLink(inst.x[i], inst.x[i + 1], kHuge);
  for (int i = 0; i < n; ++i) g.addEdge(inst.x[i], inst.t, 1.0);
  return inst;
}

std::vector<tm::TrafficMatrix> pathDemands(const PathInstance& inst) {
  const int n = static_cast<int>(inst.x.size());
  std::vector<tm::TrafficMatrix> out;
  for (int i = 0; i < n; ++i) {
    tm::TrafficMatrix d(inst.graph.numNodes());
    d.set(inst.x[i], inst.t, static_cast<double>(n));
    out.push_back(std::move(d));
  }
  return out;
}

routing::RoutingConfig allDirectRouting(const PathInstance& inst) {
  const Graph& g = inst.graph;
  DagSet dags;
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    std::vector<EdgeId> edges;
    if (t == inst.t) {
      for (const NodeId x : inst.x) edges.push_back(*g.findEdge(x, inst.t));
    }
    dags.emplace_back(g, t, std::move(edges));
  }
  auto shared = std::make_shared<const DagSet>(std::move(dags));
  routing::RoutingConfig cfg(g, shared);
  for (const NodeId x : inst.x) {
    cfg.setRatio(inst.t, *g.findEdge(x, inst.t), 1.0);
  }
  cfg.validate(g);
  return cfg;
}

}  // namespace coyote::hardness
