// OSPF/ECMP control-plane model.
//
// Models what a legacy router computes from a (possibly lied-to) link-state
// database: per-prefix shortest-path distances and ECMP next-hop *multisets*
// (a fake node mapped onto a real neighbor makes that neighbor appear
// multiple times in the FIB entry, which is how unequal splitting is
// approximated with equal-cost multipath -- Nemeth et al. [18]).
//
// Lies follow Fibbing [8,9]: a fake node is attached to exactly one real
// router u, advertises a prefix at a chosen total cost, and maps to a real
// neighbor v of u as its forwarding address. Only u routes through its own
// fake nodes (the controller advertises the fake adjacency with infinite
// reverse cost, so no other router transits it).
#pragma once

#include <map>
#include <vector>

#include "graph/graph.hpp"

namespace coyote::fib {

/// A prefix advertised by a destination router. Prefix ids are dense.
using PrefixId = std::int32_t;

/// One Fibbing lie: router `router` believes the prefix is additionally
/// reachable via `count` fake node(s) at total cost `cost`, with forwarding
/// address on real neighbor `via` (there must be a (router, via) edge).
struct FakeAdvertisement {
  NodeId router = kInvalidNode;
  PrefixId prefix = -1;
  NodeId via = kInvalidNode;
  int count = 1;
  double cost = 0.0;
};

/// Next-hop entry of a FIB: a real out-edge plus its ECMP multiplicity.
struct FibNextHop {
  EdgeId edge = kInvalidEdge;
  int multiplicity = 0;
};

/// Forwarding entry of one router for one prefix.
struct FibEntry {
  std::vector<FibNextHop> next_hops;  ///< empty at the prefix owner

  /// Total multiplicity (ECMP fan-out including virtual duplicates).
  [[nodiscard]] int totalMultiplicity() const {
    int s = 0;
    for (const auto& h : next_hops) s += h.multiplicity;
    return s;
  }
};

/// The simulated OSPF domain: real topology + prefix ownership + lies.
class OspfModel {
 public:
  explicit OspfModel(const Graph& g) : g_(g) {}

  /// Declares that router `owner` originates `prefix`.
  void advertisePrefix(PrefixId prefix, NodeId owner);

  /// Injects a lie. Throws if (router, via) is not a real adjacency or the
  /// cost is not positive.
  void injectLie(const FakeAdvertisement& lie);

  /// Number of fake nodes the lies amount to (the paper's FIB/LSA budget
  /// metric, Fig. 10).
  [[nodiscard]] int fakeNodeCount() const;

  /// Computes every router's FIB entry for `prefix` by SPF over the
  /// lied-to topology: a router forwards to the minimum-cost candidates
  /// among (real shortest paths) and (its own fake advertisements), with
  /// multiset semantics. Routers with no route get an empty entry.
  [[nodiscard]] std::vector<FibEntry> computeFibs(PrefixId prefix) const;

  /// True if per-prefix forwarding is loop-free (it always is when lie
  /// costs are consistent; checked defensively).
  [[nodiscard]] bool forwardingIsLoopFree(PrefixId prefix) const;

  [[nodiscard]] const Graph& graph() const { return g_; }

 private:
  const Graph& g_;
  std::map<PrefixId, NodeId> prefix_owner_;
  std::vector<FakeAdvertisement> lies_;
};

}  // namespace coyote::fib
