#include "fibbing/ospf_model.hpp"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.hpp"

namespace coyote::fib {

void OspfModel::advertisePrefix(PrefixId prefix, NodeId owner) {
  require(owner >= 0 && owner < g_.numNodes(), "prefix owner out of range");
  require(prefix >= 0, "negative prefix id");
  require(!prefix_owner_.count(prefix), "prefix already advertised");
  prefix_owner_[prefix] = owner;
}

void OspfModel::injectLie(const FakeAdvertisement& lie) {
  require(prefix_owner_.count(lie.prefix), "lie for unknown prefix");
  require(lie.count >= 1, "lie count must be >= 1");
  require(lie.cost > 0.0 && std::isfinite(lie.cost),
          "lie cost must be positive");
  require(g_.findEdge(lie.router, lie.via).has_value(),
          "lie forwarding address must be a real neighbor");
  lies_.push_back(lie);
}

int OspfModel::fakeNodeCount() const {
  int count = 0;
  for (const auto& lie : lies_) count += lie.count;
  return count;
}

std::vector<FibEntry> OspfModel::computeFibs(PrefixId prefix) const {
  const auto it = prefix_owner_.find(prefix);
  require(it != prefix_owner_.end(), "unknown prefix");
  const NodeId owner = it->second;
  const ShortestPathsToDest sp = shortestPathsTo(g_, owner);

  std::vector<FibEntry> fibs(g_.numNodes());
  constexpr double kEps = 1e-9;
  for (NodeId u = 0; u < g_.numNodes(); ++u) {
    if (u == owner) continue;
    // Candidate costs: the real IGP distance and this router's own lies.
    double best = sp.dist[u];
    for (const auto& lie : lies_) {
      if (lie.router == u && lie.prefix == prefix) {
        best = std::min(best, lie.cost);
      }
    }
    if (std::isinf(best)) continue;  // no route

    std::vector<FibNextHop>& hops = fibs[u].next_hops;
    const auto bump = [&](EdgeId e, int by) {
      for (auto& h : hops) {
        if (h.edge == e) {
          h.multiplicity += by;
          return;
        }
      }
      hops.push_back({e, by});
    };
    if (sp.dist[u] <= best + kEps) {
      for (const EdgeId e : ecmpNextHops(g_, sp, u)) bump(e, 1);
    }
    for (const auto& lie : lies_) {
      if (lie.router == u && lie.prefix == prefix &&
          lie.cost <= best + kEps) {
        const auto e = g_.findEdge(u, lie.via);
        ensure(e.has_value(), "lie neighbor disappeared");
        bump(*e, lie.count);
      }
    }
    std::sort(hops.begin(), hops.end(),
              [](const FibNextHop& a, const FibNextHop& b) {
                return a.edge < b.edge;
              });
  }
  return fibs;
}

bool OspfModel::forwardingIsLoopFree(PrefixId prefix) const {
  const std::vector<FibEntry> fibs = computeFibs(prefix);
  // Kahn's algorithm over the forwarding edges.
  const int n = g_.numNodes();
  std::vector<int> indeg(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& h : fibs[u].next_hops) ++indeg[g_.edge(h.edge).dst];
  }
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  int seen = 0;
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    ++seen;
    for (const auto& h : fibs[u].next_hops) {
      const NodeId w = g_.edge(h.edge).dst;
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  return seen == n;
}

}  // namespace coyote::fib
