#include "fibbing/lie_synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/dijkstra.hpp"

namespace coyote::fib {
namespace {

/// Largest-remainder rounding of p * total, capped at max_multiplicity.
std::vector<int> roundToTotal(const std::vector<double>& p, int total,
                              int max_multiplicity) {
  const int k = static_cast<int>(p.size());
  std::vector<int> m(k, 0);
  std::vector<std::pair<double, int>> rem(k);
  int assigned = 0;
  for (int i = 0; i < k; ++i) {
    const double exact = p[i] * total;
    m[i] = std::min(static_cast<int>(exact), max_multiplicity);
    assigned += m[i];
    rem[i] = {exact - m[i], i};
  }
  std::sort(rem.begin(), rem.end(), std::greater<>());
  for (int j = 0; j < k && assigned < total; ++j) {
    const int i = rem[j].second;
    if (m[i] < max_multiplicity) {
      ++m[i];
      ++assigned;
    }
  }
  return m;
}

double linfError(const std::vector<double>& p, const std::vector<int>& m) {
  const int total = std::accumulate(m.begin(), m.end(), 0);
  if (total == 0) return std::numeric_limits<double>::infinity();
  double err = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    err = std::max(err, std::abs(p[i] - static_cast<double>(m[i]) / total));
  }
  return err;
}

}  // namespace

std::vector<int> apportionSplits(const std::vector<double>& ratios,
                                 int max_multiplicity) {
  require(!ratios.empty(), "empty ratio vector");
  require(max_multiplicity >= 1, "max_multiplicity must be >= 1");
  double sum = 0.0;
  for (const double r : ratios) {
    require(r >= 0.0, "negative ratio");
    sum += r;
  }
  require(sum > 0.0, "all-zero ratio vector");
  std::vector<double> p(ratios);
  for (double& v : p) v /= sum;

  const int k = static_cast<int>(p.size());
  std::vector<int> best;
  double best_err = std::numeric_limits<double>::infinity();
  for (int total = 1; total <= k * max_multiplicity; ++total) {
    const std::vector<int> m = roundToTotal(p, total, max_multiplicity);
    const double err = linfError(p, m);
    if (err < best_err - 1e-15) {
      best_err = err;
      best = m;
    }
  }
  ensure(!best.empty(), "apportionment failed");
  return best;
}

routing::RoutingConfig quantizeConfig(const Graph& g,
                                      const routing::RoutingConfig& cfg,
                                      int max_multiplicity) {
  routing::RoutingConfig out(g, cfg.dagsPtr());
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    const Dag& dag = cfg.dags()[t];
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      const auto& edges = dag.outEdges(u);
      if (edges.empty()) continue;
      std::vector<double> p(edges.size(), 0.0);
      double sum = 0.0;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        p[i] = cfg.ratio(t, edges[i]);
        sum += p[i];
      }
      if (sum <= 0.0) continue;
      const std::vector<int> m = apportionSplits(p, max_multiplicity);
      const double total = std::accumulate(m.begin(), m.end(), 0);
      for (std::size_t i = 0; i < edges.size(); ++i) {
        out.setRatio(t, edges[i], static_cast<double>(m[i]) / total);
      }
    }
  }
  out.validate(g);
  return out;
}

LiePlan synthesizeLies(const Graph& g, const routing::RoutingConfig& cfg,
                       NodeId dest, PrefixId prefix, int max_multiplicity) {
  require(dest >= 0 && dest < g.numNodes(), "dest out of range");
  LiePlan plan;
  const Dag& dag = cfg.dags()[dest];
  const ShortestPathsToDest sp = shortestPathsTo(g, dest);

  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (u == dest || std::isinf(sp.dist[u])) continue;
    const auto& edges = dag.outEdges(u);
    if (edges.empty()) continue;

    // Desired next-hop multiset.
    std::vector<double> p;
    std::vector<EdgeId> used;
    double sum = 0.0;
    for (const EdgeId e : edges) {
      const double r = cfg.ratio(dest, e);
      if (r > 0.0) {
        p.push_back(r);
        used.push_back(e);
        sum += r;
      }
    }
    if (used.empty()) continue;
    const std::vector<int> m = apportionSplits(p, max_multiplicity);

    // Plain OSPF would install multiplicity-1 ECMP next-hops; skip the lie
    // if that is exactly what we want.
    const std::vector<EdgeId> ecmp = ecmpNextHops(g, sp, u);
    bool matches_plain = std::all_of(m.begin(), m.end(),
                                     [](int x) { return x == 1; }) &&
                         used.size() == ecmp.size();
    if (matches_plain) {
      for (const EdgeId e : used) {
        if (std::find(ecmp.begin(), ecmp.end(), e) == ecmp.end()) {
          matches_plain = false;
          break;
        }
      }
    }
    if (matches_plain) continue;

    // One fake advertisement per next-hop, all at the same cost strictly
    // below the real IGP distance so only the lie multiset is installed.
    const double cost = sp.dist[u] / 2.0;
    ++plan.routers_lied_to;
    for (std::size_t i = 0; i < used.size(); ++i) {
      if (m[i] == 0) continue;
      FakeAdvertisement lie;
      lie.router = u;
      lie.prefix = prefix;
      lie.via = g.edge(used[i]).dst;
      lie.count = m[i];
      lie.cost = cost;
      plan.lies.push_back(lie);
      plan.fake_nodes += m[i];
    }
  }
  return plan;
}

void applyPlan(OspfModel& model, const LiePlan& plan) {
  for (const auto& lie : plan.lies) model.injectLie(lie);
}

bool verifyRealization(const OspfModel& model,
                       const routing::RoutingConfig& cfg, NodeId dest,
                       PrefixId prefix, int max_multiplicity) {
  const Graph& g = model.graph();
  const std::vector<FibEntry> fibs = model.computeFibs(prefix);
  const Dag& dag = cfg.dags()[dest];

  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (u == dest) continue;
    std::vector<double> p;
    std::vector<EdgeId> used;
    for (const EdgeId e : dag.outEdges(u)) {
      const double r = cfg.ratio(dest, e);
      if (r > 0.0) {
        p.push_back(r);
        used.push_back(e);
      }
    }
    const FibEntry& fib = fibs[u];
    if (used.empty()) {
      // Nothing desired: router follows plain OSPF; nothing to check.
      continue;
    }
    const std::vector<int> m = apportionSplits(p, max_multiplicity);
    const int total = fib.totalMultiplicity();
    const int want_total = std::accumulate(m.begin(), m.end(), 0);
    if (total != want_total) return false;
    for (std::size_t i = 0; i < used.size(); ++i) {
      int got = 0;
      for (const auto& h : fib.next_hops) {
        if (h.edge == used[i]) got = h.multiplicity;
      }
      if (got != m[i]) return false;
    }
    // No extra next-hops beyond the desired ones.
    for (const auto& h : fib.next_hops) {
      if (h.multiplicity > 0 &&
          std::find(used.begin(), used.end(), h.edge) == used.end()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace coyote::fib
