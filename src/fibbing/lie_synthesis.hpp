// Translation of COYOTE routing configurations into OSPF lies (Sec. V-D).
//
// Two ingredients:
//
//  1. Split apportionment (Nemeth et al. [18]): a splitting vector
//     (p_1..p_k) over a router's next-hops is approximated by integer ECMP
//     multiplicities (m_1..m_k), m_i <= max_multiplicity, realized with
//     m_i - 1 fake nodes per next-hop. Fig. 10 sweeps this budget.
//
//  2. Per-destination DAG enforcement (Fibbing [8,9]): wherever the desired
//     next-hop multiset differs from what plain OSPF/ECMP would compute, the
//     router is given fake advertisements for the destination prefix --
//     all at one cost strictly below its real IGP distance, so exactly the
//     fake multiset is installed. Loop-freedom is inherited from the DAG.
#pragma once

#include <vector>

#include "fibbing/ospf_model.hpp"
#include "routing/config.hpp"

namespace coyote::fib {

/// Approximates `ratios` (nonnegative, summing to ~1) with integer
/// multiplicities in [0, max_multiplicity], at least one positive,
/// minimizing the L-infinity error |p_i - m_i/sum(m)|. Exhaustive over the
/// total sum (<= k*max_multiplicity) with largest-remainder rounding.
[[nodiscard]] std::vector<int> apportionSplits(const std::vector<double>& ratios,
                                               int max_multiplicity);

/// The routing that ECMP-with-multiplicities actually realizes: every
/// splitting vector of `cfg` replaced by its apportioned approximation.
/// Fig. 10 evaluates this config against the ideal one.
[[nodiscard]] routing::RoutingConfig quantizeConfig(
    const Graph& g, const routing::RoutingConfig& cfg, int max_multiplicity);

/// The lies realizing `cfg` for destination `dest` advertised as `prefix`.
struct LiePlan {
  std::vector<FakeAdvertisement> lies;
  int fake_nodes = 0;      ///< total fake nodes (sum of lie counts)
  int routers_lied_to = 0; ///< routers needing at least one lie
};

/// Synthesizes the lie plan for one destination. Routers whose desired
/// next-hop multiset already equals their plain-OSPF ECMP set need no lies.
[[nodiscard]] LiePlan synthesizeLies(const Graph& g,
                                     const routing::RoutingConfig& cfg,
                                     NodeId dest, PrefixId prefix,
                                     int max_multiplicity);

/// Injects the plan into `model` (which must already advertise `prefix`).
void applyPlan(OspfModel& model, const LiePlan& plan);

/// Checks that the model's computed FIBs realize exactly the apportioned
/// next-hop multisets of `cfg` toward `dest`. Returns false with no side
/// effects on mismatch (used by tests and the prototype).
[[nodiscard]] bool verifyRealization(const OspfModel& model,
                                     const routing::RoutingConfig& cfg,
                                     NodeId dest, PrefixId prefix,
                                     int max_multiplicity);

}  // namespace coyote::fib
