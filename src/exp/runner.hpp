// Executes scenarios from the ScenarioRegistry: streams the same text rows
// the per-figure bench binaries always printed, times repetitions, and
// emits one self-describing BENCH_<scenario>.json per scenario (the format
// bench_compare and the CI perf gate consume; schema documented in
// EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "util/json.hpp"

namespace coyote::exp {

struct RunOptions {
  bool full = false;     ///< full margin grids / network corpora
  bool exact = false;    ///< exact slave-LP cutting planes / evaluation
  /// Scheme keys (te::SchemeRegistry::builtin()) the scheme-comparison
  /// kinds (schemes/table/failure) sweep; empty = the paper's four.
  /// Unknown keys are a hard error (the CLI validates before running).
  std::vector<std::string> schemes;
  int repeat = 1;        ///< timed repetitions per scenario (>= 1)
  /// Untimed repetitions before the timed ones. Rows print during the
  /// very first repetition only, so with warmup >= 1 the timed reps are
  /// free of stdout I/O — use `--warmup 1` whenever timings will be
  /// compared (CI and the baseline-refresh command both do).
  int warmup = 0;
  std::string json_dir;  ///< where BENCH_<id>.json files go; empty = none
  bool print = true;     ///< stream the bench-identical text to stdout
};

struct ScenarioResult {
  std::string id;
  bool ok = true;                ///< false e.g. when fig12's lie check fails
  util::json::Value document;    ///< the full BENCH JSON document
  std::vector<double> seconds;   ///< wall time of each timed repetition

  [[nodiscard]] double minSeconds() const;
  [[nodiscard]] double medianSeconds() const;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunOptions opt) : opt_(std::move(opt)) {}

  /// Runs one scenario (warmup + timed repetitions; rows are printed
  /// during the first execution only -- results are deterministic).
  [[nodiscard]] ScenarioResult run(const Scenario& s) const;

  /// Runs every scenario in order, writing BENCH_<id>.json into json_dir
  /// when set. Returns the number of failed scenarios.
  int runAll(const std::vector<const Scenario*>& scenarios) const;

 private:
  RunOptions opt_;
};

/// Entry point for the thin per-figure bench shims: options come from the
/// environment (COYOTE_FULL, COYOTE_EXACT, COYOTE_JSON_DIR) and the rows
/// print exactly as the pre-registry binaries did. Returns an exit code.
int runScenarioShim(const std::string& id);

/// `git describe --always --dirty`, or "unknown" outside a work tree.
[[nodiscard]] std::string gitDescribe();

}  // namespace coyote::exp
