#include "exp/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "topo/generator.hpp"
#include "topo/zoo.hpp"
#include "util/require.hpp"

namespace coyote::exp {

const char* kindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kSchemes:
      return "schemes";
    case ScenarioKind::kTable:
      return "table";
    case ScenarioKind::kLocalSearch:
      return "local-search";
    case ScenarioKind::kQuantization:
      return "quantization";
    case ScenarioKind::kStretch:
      return "stretch";
    case ScenarioKind::kPrototype:
      return "prototype";
    case ScenarioKind::kDagAug:
      return "dag-augmentation";
    case ScenarioKind::kOptimizer:
      return "optimizer";
    case ScenarioKind::kHardness:
      return "hardness";
    case ScenarioKind::kFailure:
      return "failure";
    case ScenarioKind::kServe:
      return "serve";
    case ScenarioKind::kScaling:
      return "scaling";
  }
  return "unknown";
}

const char* FailureSpec::name() const {
  switch (model) {
    case Model::kSingleLink:
      return "single-link";
    case Model::kDoubleLink:
      return "double-link";
    case Model::kSrlg:
      return "srlg";
  }
  return "unknown";
}

// ------------------------------------------------------- TopologySpec ---

Graph TopologySpec::build() const {
  switch (kind) {
    case Kind::kZoo:
      return topo::makeZoo(zoo_name);
    case Kind::kRunningExample:
      return topo::runningExample();
    case Kind::kPrototypeTriangle:
      return topo::prototypeTriangle();
    case Kind::kRing:
      return topo::ring(a);
    case Kind::kGrid:
      return topo::grid(a, b);
    case Kind::kFullMesh:
      return topo::fullMesh(a);
    case Kind::kRandomBackbone:
      return topo::randomBackbone(a, avg_degree, seed);
    case Kind::kFatTree:
      return topo::fatTree(a);
    case Kind::kDragonfly:
      return topo::dragonfly(a, b, c);
    case Kind::kHammingMesh:
      return topo::hammingMesh(a, b, c, d);
    case Kind::kTorus2d:
      return topo::torus2d(a, b);
  }
  require(false, "unknown topology kind");
  return topo::runningExample();  // unreachable
}

std::string TopologySpec::label() const {
  switch (kind) {
    case Kind::kZoo:
      return zoo_name;
    case Kind::kRunningExample:
      return "running-example";
    case Kind::kPrototypeTriangle:
      return "prototype-triangle";
    case Kind::kRing:
      return "ring" + std::to_string(a);
    case Kind::kGrid:
      return "grid" + std::to_string(a) + "x" + std::to_string(b);
    case Kind::kFullMesh:
      return "mesh" + std::to_string(a);
    case Kind::kRandomBackbone: {
      char deg[16];
      std::snprintf(deg, sizeof(deg), "%.1f", avg_degree);
      return "backbone" + std::to_string(a) + "-d" + deg + "-s" +
             std::to_string(seed);
    }
    case Kind::kFatTree:
      return "fattree" + std::to_string(a);
    case Kind::kDragonfly:
      return "dragonfly-a" + std::to_string(a) + "p" + std::to_string(b) +
             "h" + std::to_string(c);
    case Kind::kHammingMesh:
      return "hmesh" + std::to_string(a) + "x" + std::to_string(b) + "b" +
             std::to_string(c) + "x" + std::to_string(d);
    case Kind::kTorus2d:
      return "torus" + std::to_string(a) + "x" + std::to_string(b);
  }
  return "unknown";
}

TopologySpec TopologySpec::zoo(std::string name) {
  TopologySpec t;
  t.kind = Kind::kZoo;
  t.zoo_name = std::move(name);
  return t;
}

TopologySpec TopologySpec::ring(int n) {
  TopologySpec t;
  t.kind = Kind::kRing;
  t.a = n;
  return t;
}

TopologySpec TopologySpec::grid(int rows, int cols) {
  TopologySpec t;
  t.kind = Kind::kGrid;
  t.a = rows;
  t.b = cols;
  return t;
}

TopologySpec TopologySpec::fullMesh(int n) {
  TopologySpec t;
  t.kind = Kind::kFullMesh;
  t.a = n;
  return t;
}

TopologySpec TopologySpec::randomBackbone(int n, double avg_degree,
                                          std::uint64_t seed) {
  TopologySpec t;
  t.kind = Kind::kRandomBackbone;
  t.a = n;
  t.avg_degree = avg_degree;
  t.seed = seed;
  return t;
}

TopologySpec TopologySpec::fatTree(int k) {
  TopologySpec t;
  t.kind = Kind::kFatTree;
  t.a = k;
  return t;
}

TopologySpec TopologySpec::dragonfly(int a, int p, int h) {
  TopologySpec t;
  t.kind = Kind::kDragonfly;
  t.a = a;
  t.b = p;
  t.c = h;
  return t;
}

TopologySpec TopologySpec::hammingMesh(int x, int y, int bx, int by) {
  TopologySpec t;
  t.kind = Kind::kHammingMesh;
  t.a = x;
  t.b = y;
  t.c = bx;
  t.d = by;
  return t;
}

TopologySpec TopologySpec::torus2d(int rows, int cols) {
  TopologySpec t;
  t.kind = Kind::kTorus2d;
  t.a = rows;
  t.b = cols;
  return t;
}

// --------------------------------------------------------- DemandSpec ---

tm::TrafficMatrix DemandSpec::build(const Graph& g) const {
  switch (model) {
    case Model::kGravity: {
      // The options overload early-returns into the historical dense path
      // when both knobs are off, so pre-existing scenarios stay
      // bit-identical.
      tm::GravityOptions gopt;
      gopt.top_k = top_k;
      gopt.endpoint_prefix = endpoint_prefix;
      return tm::gravityMatrix(g, total, gopt);
    }
    case Model::kBimodal:
      return tm::bimodalMatrix(g, {}, seed, total);
    case Model::kUniform:
      return tm::uniformMatrix(g, total);
  }
  require(false, "unknown demand model");
  return tm::TrafficMatrix(g.numNodes());  // unreachable
}

const char* DemandSpec::name() const {
  switch (model) {
    case Model::kGravity:
      return "gravity";
    case Model::kBimodal:
      return "bimodal";
    case Model::kUniform:
      return "uniform";
  }
  return "unknown";
}

// ----------------------------------------------------------- Scenario ---

bool Scenario::hasTag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

// --------------------------------------------------- ScenarioRegistry ---

namespace {

std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

DemandSpec demandModel(DemandSpec::Model model, std::uint64_t seed = 23) {
  DemandSpec d;
  d.model = model;
  d.seed = seed;
  return d;
}

}  // namespace

ScenarioRegistry::ScenarioRegistry(std::vector<Scenario> scenarios) {
  for (Scenario& s : scenarios) add(std::move(s));
}

void ScenarioRegistry::add(Scenario s) {
  require(!s.id.empty(), "scenario id must be non-empty");
  require(find(s.id) == nullptr, "duplicate scenario id: " + s.id);
  // Ids name BENCH_<id>.json files and appear in shell command lines:
  // enforce the safe charset here, at registration time, so a bad id
  // fails fast in every tool rather than only in scenario_test.
  for (const char c : s.id) {
    require(std::isalnum(static_cast<unsigned char>(c)) || c == '-',
            "scenario id must be [a-zA-Z0-9-]: " + s.id);
  }
  scenarios_.push_back(std::move(s));
}

const Scenario* ScenarioRegistry::find(const std::string& id) const {
  for (const Scenario& s : scenarios_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::match(
    const std::string& pattern) const {
  std::vector<const Scenario*> out;
  for (const Scenario& s : scenarios_) {
    const bool hit =
        pattern.empty() || s.id.find(pattern) != std::string::npos ||
        std::any_of(s.tags.begin(), s.tags.end(), [&](const std::string& t) {
          return t.find(pattern) != std::string::npos;
        });
    if (hit) out.push_back(&s);
  }
  return out;
}

const ScenarioRegistry& ScenarioRegistry::global() {
  static const ScenarioRegistry registry;
  return registry;
}

ScenarioRegistry::ScenarioRegistry() {
  // --- The paper's figures -------------------------------------------
  {
    Scenario s;
    s.id = "fig06";
    s.description =
        "Fig. 6: Geant, gravity base model -- four-scheme margin sweep";
    s.tags = {"figure", "zoo", "schemes"};
    s.kind = ScenarioKind::kSchemes;
    s.topology = TopologySpec::zoo("Geant");
    s.demand = demandModel(DemandSpec::Model::kGravity);
    s.margins = marginGrid(3.0, false);
    s.full_margins = marginGrid(3.0, true);
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "fig07";
    s.description =
        "Fig. 7: Digex, gravity base model -- sparse hub-heavy network "
        "where ECMP's equal splitting hurts most";
    s.tags = {"figure", "zoo", "schemes"};
    s.kind = ScenarioKind::kSchemes;
    s.topology = TopologySpec::zoo("Digex");
    s.demand = demandModel(DemandSpec::Model::kGravity);
    s.margins = marginGrid(3.0, false);
    s.full_margins = marginGrid(3.0, true);
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "fig08";
    s.description =
        "Fig. 8: AS1755, bimodal (elephants/mice) base model -- gravity "
        "trends persist under structured demands";
    s.tags = {"figure", "zoo", "schemes"};
    s.kind = ScenarioKind::kSchemes;
    s.topology = TopologySpec::zoo("AS1755");
    s.demand = demandModel(DemandSpec::Model::kBimodal, 23);
    s.margins = marginGrid(3.0, false);
    s.full_margins = marginGrid(3.0, true);
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "fig09";
    s.description =
        "Fig. 9: Abilene, bimodal, local-search weight re-tuning per "
        "margin, exact within-box worst case for ECMP and COYOTE-pk";
    s.tags = {"figure", "zoo", "local-search"};
    s.kind = ScenarioKind::kLocalSearch;
    s.topology = TopologySpec::zoo("Abilene");
    s.demand = demandModel(DemandSpec::Model::kBimodal, 31);
    s.margins = marginGrid(5.0, false);
    s.full_margins = marginGrid(5.0, true);
    s.local_search.max_rounds = 3;
    s.local_search.max_moves_per_round = 12;
    s.ls_full_moves = 24;
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "fig10";
    s.description =
        "Fig. 10: AS1755, gravity -- ECMP over k virtual next-hops "
        "approximating COYOTE's ideal splitting ratios";
    s.tags = {"figure", "zoo", "quantization"};
    s.kind = ScenarioKind::kQuantization;
    s.topology = TopologySpec::zoo("AS1755");
    s.demand = demandModel(DemandSpec::Model::kGravity);
    s.margins = marginGrid(3.0, false);
    s.full_margins = marginGrid(3.0, true);
    s.quantize_multiplicities = {3, 5, 10};
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "fig11";
    s.description =
        "Fig. 11: average path stretch of COYOTE (oblivious and pk, "
        "margin 2.5) relative to OSPF/ECMP paths";
    s.tags = {"figure", "zoo", "stretch"};
    s.kind = ScenarioKind::kStretch;
    s.demand = demandModel(DemandSpec::Model::kGravity);
    s.fixed_margin = 2.5;
    s.networks = {"Abilene", "NSF",   "Germany",   "Geant",
                  "AS1755",  "GRNet", "BBNPlanet", "Digex"};
    s.full_networks = topo::zooNames();
    // Gambia is a tree: no path diversity, stretch trivially 1.
    s.full_networks.erase(std::remove(s.full_networks.begin(),
                                      s.full_networks.end(),
                                      std::string("Gambia")),
                          s.full_networks.end());
    s.sweep.coyote.splitting.iterations = 250;
    s.sweep.coyote.oblivious_pool.random_sparse = 8;
    s.sweep.coyote.corner_pool.source_hotspots = false;
    s.sweep.coyote.corner_pool.max_hotspots = 12;
    s.sweep.coyote.corner_pool.random_corners = 4;
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "fig12";
    s.description =
        "Fig. 12: fluid-emulator replay of the mininet prototype -- "
        "triangle topology, two prefixes, three UDP scenarios, plus the "
        "OSPF lie-synthesis realization check";
    s.tags = {"figure", "prototype", "small", "smoke"};
    s.kind = ScenarioKind::kPrototype;
    s.topology.kind = TopologySpec::Kind::kPrototypeTriangle;
    add(std::move(s));
  }

  // --- Table I -------------------------------------------------------
  {
    Scenario s;
    s.id = "table1";
    s.description =
        "Table I: every backbone x margins x four schemes, gravity base "
        "model; networks with <= 14 nodes use the exact slave-LP adversary";
    s.tags = {"table1", "zoo", "schemes"};
    s.kind = ScenarioKind::kTable;
    s.demand = demandModel(DemandSpec::Model::kGravity);
    s.margins = {1.0, 3.0, 5.0};
    s.full_margins = marginGrid(5.0, true);
    s.networks = topo::tableOneNames();
    s.sweep.pool.max_hotspots = 10;
    s.sweep.coyote.oblivious_pool.random_sparse = 8;
    s.sweep.coyote.splitting.iterations = 250;
    s.exact_node_limit = 14;
    s.exact_env_upgrades_eval = true;
    add(std::move(s));
  }

  // --- Ablations -----------------------------------------------------
  {
    Scenario s;
    s.id = "ablation-dag-aug";
    s.description =
        "Ablation: COYOTE-pk over plain shortest-path DAGs vs augmented "
        "DAGs, margin 2.5, shared evaluation pool";
    s.tags = {"ablation", "zoo"};
    s.kind = ScenarioKind::kDagAug;
    s.demand = demandModel(DemandSpec::Model::kGravity);
    s.fixed_margin = 2.5;
    s.networks = {"Abilene", "NSF", "Geant", "Germany"};
    s.full_networks = topo::tableOneNames();
    s.sweep.pool.source_hotspots = false;
    s.sweep.pool.max_hotspots = 10;
    s.sweep.pool.random_corners = 4;
    s.sweep.coyote.splitting.iterations = 250;
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "ablation-optimizer";
    s.description =
        "Ablation: GP condensation vs exponentiated-gradient mirror "
        "descent as a function of the iteration budget";
    s.tags = {"ablation"};
    s.kind = ScenarioKind::kOptimizer;
    s.topology.kind = TopologySpec::Kind::kRunningExample;
    add(std::move(s));
  }
  {
    Scenario s;
    s.id = "ablation-hardness";
    s.description =
        "Sec. IV constructions, numerically: BIPARTITION gadgets reach "
        "the 4/3 bound iff positive; the path instance's oblivious ratio "
        "grows linearly";
    s.tags = {"ablation", "small"};
    s.kind = ScenarioKind::kHardness;
    s.topology.kind = TopologySpec::Kind::kRunningExample;
    add(std::move(s));
  }

  // --- The smoke scenario: the paper's running example ---------------
  {
    Scenario s;
    s.id = "running-example";
    s.description =
        "Fig. 1a running example (4 nodes): four-scheme sweep; "
        "closed-form COYOTE optimum is sqrt(5)-1 at margin infinity";
    s.tags = {"synthetic", "schemes", "small", "smoke"};
    s.kind = ScenarioKind::kSchemes;
    s.topology.kind = TopologySpec::Kind::kRunningExample;
    s.demand = demandModel(DemandSpec::Model::kUniform);
    s.margins = {1.0, 2.0, 3.0};
    s.full_margins = marginGrid(3.0, true);
    add(std::move(s));
  }

  // --- Extension grid: every Zoo topology x base-demand model --------
  for (const std::string& name : topo::zooNames()) {
    static const struct {
      DemandSpec::Model model;
      const char* suffix;
    } kModels[] = {
        {DemandSpec::Model::kGravity, "gravity"},
        {DemandSpec::Model::kBimodal, "bimodal"},
        {DemandSpec::Model::kUniform, "uniform"},
    };
    for (const auto& m : kModels) {
      Scenario s;
      s.id = "zoo-" + lowered(name) + "-" + m.suffix;
      s.description = name + ", " + m.suffix +
                      " base model -- four-scheme margin sweep (extension "
                      "grid beyond the paper's figures)";
      s.tags = {"grid", "zoo", "schemes", m.suffix};
      s.kind = ScenarioKind::kSchemes;
      s.topology = TopologySpec::zoo(name);
      s.demand = demandModel(m.model, 23);
      s.margins = marginGrid(3.0, false);
      s.full_margins = marginGrid(3.0, true);
      add(std::move(s));
    }
  }

  // --- Extension grid: synthetic topologies --------------------------
  const auto addSynthetic = [&](const std::string& id, TopologySpec topo_spec,
                                DemandSpec::Model model, bool small) {
    Scenario s;
    s.id = id;
    s.description = topo_spec.label() + std::string(", ") +
                    demandModel(model).name() +
                    " base model -- four-scheme margin sweep on a "
                    "topo::generator topology";
    s.tags = {"grid", "synthetic", "schemes"};
    if (small) {
      s.tags.emplace_back("small");
      s.tags.emplace_back("smoke");
    }
    s.kind = ScenarioKind::kSchemes;
    s.topology = topo_spec;
    s.demand = demandModel(model, 23);
    s.margins = marginGrid(3.0, false);
    s.full_margins = marginGrid(3.0, true);
    add(std::move(s));
  };
  addSynthetic("synth-ring8-uniform", TopologySpec::ring(8),
               DemandSpec::Model::kUniform, /*small=*/true);
  addSynthetic("synth-ring16-gravity", TopologySpec::ring(16),
               DemandSpec::Model::kGravity, /*small=*/false);
  addSynthetic("synth-grid3x3-gravity", TopologySpec::grid(3, 3),
               DemandSpec::Model::kGravity, /*small=*/true);
  addSynthetic("synth-grid4x4-uniform", TopologySpec::grid(4, 4),
               DemandSpec::Model::kUniform, /*small=*/false);
  addSynthetic("synth-mesh6-bimodal", TopologySpec::fullMesh(6),
               DemandSpec::Model::kBimodal, /*small=*/true);
  addSynthetic("synth-mesh8-gravity", TopologySpec::fullMesh(8),
               DemandSpec::Model::kGravity, /*small=*/false);
  addSynthetic("synth-backbone16-gravity",
               TopologySpec::randomBackbone(16, 3.0, 5),
               DemandSpec::Model::kGravity, /*small=*/false);
  addSynthetic("synth-backbone24-bimodal",
               TopologySpec::randomBackbone(24, 3.5, 9),
               DemandSpec::Model::kBimodal, /*small=*/false);
  addSynthetic("synth-backbone32-uniform",
               TopologySpec::randomBackbone(32, 3.0, 13),
               DemandSpec::Model::kUniform, /*small=*/false);

  // --- Failure variants (src/failure/): post-failure four-scheme sweeps
  // --- derived from every smoke/figure scenario with a single topology.
  const auto failureVariant = [&](const Scenario& parent,
                                  FailureSpec::Model model,
                                  const char* suffix, bool smoke) {
    Scenario s;
    s.id = parent.id + "-" + suffix;
    FailureSpec spec;
    spec.model = model;
    s.description = parent.topology.label() + ", " + parent.demand.name() +
                    " base model -- " + spec.name() +
                    " failure sweep: post-failure four-scheme ratios "
                    "(margin 2.0)";
    s.tags = {"failure", suffix};
    for (const char* inherited : {"zoo", "synthetic", "small"}) {
      if (parent.hasTag(inherited)) s.tags.emplace_back(inherited);
    }
    if (smoke) s.tags.emplace_back("smoke");
    s.kind = ScenarioKind::kFailure;
    s.topology = parent.topology;
    s.demand = parent.demand;
    s.fixed_margin = 2.0;
    s.failure = spec;
    s.sweep = parent.sweep;
    add(std::move(s));
  };
  {
    // Snapshot first: failureVariant() appends to scenarios_ while we
    // iterate, and the variants must not themselves get variants.
    std::vector<Scenario> parents;
    for (const Scenario& s : scenarios_) {
      const bool eligible = s.kind == ScenarioKind::kSchemes ||
                            s.kind == ScenarioKind::kLocalSearch ||
                            s.kind == ScenarioKind::kQuantization ||
                            s.kind == ScenarioKind::kPrototype;
      if (eligible && (s.hasTag("smoke") || s.hasTag("figure"))) {
        parents.push_back(s);
      }
    }
    for (const Scenario& parent : parents) {
      // The CI bench-smoke gate runs exactly one failure scenario: the
      // running example's single-link sweep (tiny and fully determined).
      failureVariant(parent, FailureSpec::Model::kSingleLink, "fail1",
                     /*smoke=*/parent.id == "running-example");
      failureVariant(parent, FailureSpec::Model::kSrlg, "srlg",
                     /*smoke=*/false);
      if (parent.id == "running-example" || parent.id == "fig06") {
        failureVariant(parent, FailureSpec::Model::kDoubleLink, "fail2",
                       /*smoke=*/false);
      }
    }
  }

  // --- Online TE daemon (src/serve/): seeded event-trace replays -----
  const auto serveScenario = [&](const std::string& id, TopologySpec topo_spec,
                                 DemandSpec::Model model, int events,
                                 bool smoke) {
    Scenario s;
    s.id = id;
    s.description = topo_spec.label() + std::string(", ") +
                    demandModel(model).name() +
                    " base model -- online TE daemon replay: " +
                    std::to_string(events) +
                    " demand/link/margin/what-if events over the resident "
                    "warm-LP service (margin 2.0)";
    s.tags = {"serve"};
    if (topo_spec.kind == TopologySpec::Kind::kZoo) s.tags.emplace_back("zoo");
    if (smoke) {
      s.tags.emplace_back("small");
      s.tags.emplace_back("smoke");
    }
    s.kind = ScenarioKind::kServe;
    s.topology = std::move(topo_spec);
    s.demand = demandModel(model, 23);
    s.fixed_margin = 2.0;
    s.serve_events = events;
    s.serve_seed = 1;
    // The daemon's evaluation pool is small by design: every event costs
    // one warm OPTU re-solve per pool matrix.
    s.sweep.pool.source_hotspots = false;
    s.sweep.pool.max_hotspots = 8;
    s.sweep.pool.random_corners = 4;
    s.sweep.pool.pair_hotspots = 4;
    s.sweep.coyote.splitting.iterations = 150;
    add(std::move(s));
  };
  {
    TopologySpec re;
    re.kind = TopologySpec::Kind::kRunningExample;
    // The CI bench-smoke gate replays this one (events/sec + p50/p99
    // land in the BENCH timing block, gated by bench_compare).
    serveScenario("serve-running-example", re, DemandSpec::Model::kUniform,
                  200, /*smoke=*/true);
  }
  serveScenario("serve-geant-500", TopologySpec::zoo("Geant"),
                DemandSpec::Model::kGravity, 500, /*smoke=*/false);

  // --- Scaling curves (structured DC/WAN generators, src/topo/) -------
  //
  // One scheme set, one fixed margin, a size ladder per generator family:
  // the rows carry nodes/edges/ratios, the timing block the per-rung
  // optimize seconds, and `mem_peak_rss_mb` / `lp_*` the memory and
  // solver-work curves. Gravity top_k bounds the active-destination count
  // per rung (structured fabrics have uniform out-capacities, so the
  // deterministic lowest-id tie-break selects the same destination set
  // from every source); the fat-tree ladders additionally aggregate
  // demands at "edge" switches, the paper-style host-aggregated model.
  const auto scalingScenario = [&](const std::string& id, const char* family,
                                   std::vector<TopologySpec> ladder,
                                   int top_k, const char* endpoint_prefix,
                                   bool smoke) {
    Scenario s;
    s.id = id;
    s.description =
        std::string(family) +
        " size ladder -- scheme ratios plus optimize-time / peak-RSS / "
        "lp-pivot scaling curves, one rung per topology size";
    s.tags = {"scaling", "synthetic"};
    if (smoke) {
      s.tags.emplace_back("small");
      s.tags.emplace_back("smoke");
    }
    s.kind = ScenarioKind::kScaling;
    s.topology = ladder.front();  // smallest rung, for single-topo consumers
    s.ladder = std::move(ladder);
    s.demand = demandModel(DemandSpec::Model::kGravity);
    s.demand.top_k = top_k;
    s.demand.endpoint_prefix = endpoint_prefix;
    s.fixed_margin = 2.0;
    // Scaling rungs measure optimize cost growth, not ratio quality:
    // a small fixed evaluation pool and iteration budget keep every rung
    // doing the same *kind* of work so the curves compare sizes only.
    s.sweep.pool.source_hotspots = false;
    s.sweep.pool.max_hotspots = 8;
    s.sweep.pool.random_corners = 4;
    s.sweep.pool.pair_hotspots = 4;
    // The oblivious scheme's pool: keep only matrices with O(1) active
    // destinations (destination-concentrated and sparse-random). The
    // per-source and uniform matrices activate every destination, whose
    // OPTU normalization costs O(|V|) DAG-sized LP blocks *per matrix* --
    // quadratic total, which would drown the curves the ladder measures.
    s.sweep.coyote.oblivious_pool.source_concentrated = false;
    s.sweep.coyote.oblivious_pool.uniform = false;
    s.sweep.coyote.oblivious_pool.random_sparse = 4;
    s.sweep.coyote.splitting.iterations = 120;
    add(std::move(s));
  };
  scalingScenario("scaling-fattree-smoke", "fat-tree (smoke rung)",
                  {TopologySpec::fatTree(4)}, 8, "edge", /*smoke=*/true);
  scalingScenario("scaling-fattree-k8", "fat-tree",
                  {TopologySpec::fatTree(4), TopologySpec::fatTree(6),
                   TopologySpec::fatTree(8)},
                  8, "edge", /*smoke=*/false);
  scalingScenario("scaling-fattree-k12", "fat-tree",
                  {TopologySpec::fatTree(4), TopologySpec::fatTree(8),
                   TopologySpec::fatTree(12)},
                  8, "edge", /*smoke=*/false);
  scalingScenario("scaling-fattree-k16", "fat-tree",
                  {TopologySpec::fatTree(8), TopologySpec::fatTree(12),
                   TopologySpec::fatTree(16)},
                  8, "edge", /*smoke=*/false);
  scalingScenario("scaling-dragonfly-a4", "dragonfly",
                  {TopologySpec::dragonfly(2, 1, 1),
                   TopologySpec::dragonfly(3, 2, 2),
                   TopologySpec::dragonfly(4, 2, 2)},
                  8, "", /*smoke=*/false);
  scalingScenario("scaling-dragonfly-a8", "dragonfly",
                  {TopologySpec::dragonfly(4, 2, 2),
                   TopologySpec::dragonfly(6, 2, 3),
                   TopologySpec::dragonfly(8, 2, 4)},
                  8, "", /*smoke=*/false);
  scalingScenario("scaling-hmesh-x2", "HammingMesh",
                  {TopologySpec::hammingMesh(2, 2, 2, 2),
                   TopologySpec::hammingMesh(2, 2, 4, 4)},
                  8, "", /*smoke=*/false);
  scalingScenario("scaling-hmesh-x3", "HammingMesh",
                  {TopologySpec::hammingMesh(2, 2, 4, 4),
                   TopologySpec::hammingMesh(3, 3, 4, 4),
                   TopologySpec::hammingMesh(4, 4, 4, 4)},
                  8, "", /*smoke=*/false);
  scalingScenario("scaling-torus", "2-D torus",
                  {TopologySpec::torus2d(4, 4), TopologySpec::torus2d(8, 8),
                   TopologySpec::torus2d(12, 12)},
                  8, "", /*smoke=*/false);
}

}  // namespace coyote::exp
