// Scenario registry: the paper's evaluation grid as data.
//
// A Scenario names one experiment -- topology x base-demand model x margin
// grid x pool/optimizer options x measurement kind -- and the global
// ScenarioRegistry holds every figure/table of the paper plus the
// combinations the per-figure binaries never reached (all Zoo topologies
// under gravity/bimodal/uniform base demands, synthetic topologies from
// topo::generator). The ExperimentRunner (runner.hpp) executes scenarios;
// the per-figure bench binaries are thin shims over it, so `bench_fig06...`
// and `coyote_experiments --run fig06` produce identical rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/local_search.hpp"
#include "exp/sweep.hpp"
#include "graph/graph.hpp"
#include "tm/traffic_matrix.hpp"

namespace coyote::exp {

/// What the runner measures for a scenario.
enum class ScenarioKind {
  kSchemes,       ///< four-scheme margin sweep on one network (Figs. 6-8)
  kTable,         ///< four-scheme sweep over a network list (Table I)
  kLocalSearch,   ///< per-margin weight re-tuning, exact eval (Fig. 9)
  kQuantization,  ///< ECMP-over-virtual-next-hops approximation (Fig. 10)
  kStretch,       ///< path stretch vs ECMP over a network list (Fig. 11)
  kPrototype,     ///< fluid-emulator prototype replay + lie check (Fig. 12)
  kDagAug,        ///< SP-DAGs vs augmented DAGs ablation
  kOptimizer,     ///< inner-optimizer ablation (GP vs mirror descent)
  kHardness,      ///< Sec. IV constructions, numerically
  kFailure,       ///< post-failure four-scheme sweep (src/failure/)
  kServe,         ///< online TE daemon trace replay (src/serve/)
  kScaling,       ///< size-ladder scaling curves on structured generators
};

[[nodiscard]] const char* kindName(ScenarioKind kind);

/// How to build the scenario's graph. Deterministic in its fields.
struct TopologySpec {
  enum class Kind {
    kZoo,
    kRunningExample,
    kPrototypeTriangle,
    kRing,
    kGrid,
    kFullMesh,
    kRandomBackbone,
    kFatTree,      ///< topo::fatTree(k): 3-tier Clos, a = k
    kDragonfly,    ///< topo::dragonfly(a, p, h): a, b = p, c = h
    kHammingMesh,  ///< topo::hammingMesh(x, y, bx, by): a, b, c, d
    kTorus2d,      ///< topo::torus2d(rows, cols): a, b
  };
  Kind kind = Kind::kZoo;
  std::string zoo_name;      ///< kZoo
  int a = 0;                 ///< ring n / grid rows / mesh n / backbone n / ...
  int b = 0;                 ///< grid cols / dragonfly p / hmesh y / torus cols
  int c = 0;                 ///< dragonfly h / hmesh bx
  int d = 0;                 ///< hmesh by
  double avg_degree = 0.0;   ///< kRandomBackbone
  std::uint64_t seed = 0;    ///< kRandomBackbone

  [[nodiscard]] Graph build() const;
  /// Human-readable label ("Geant", "ring12", "backbone20-d3.0-s7",
  /// "fattree16", "dragonfly-a8p2h4", "hmesh3x3b4x4", "torus8x8").
  [[nodiscard]] std::string label() const;

  static TopologySpec zoo(std::string name);
  static TopologySpec ring(int n);
  static TopologySpec grid(int rows, int cols);
  static TopologySpec fullMesh(int n);
  static TopologySpec randomBackbone(int n, double avg_degree,
                                     std::uint64_t seed);
  static TopologySpec fatTree(int k);
  static TopologySpec dragonfly(int a, int p, int h);
  static TopologySpec hammingMesh(int x, int y, int bx, int by);
  static TopologySpec torus2d(int rows, int cols);
};

/// How to build the scenario's base traffic matrix.
struct DemandSpec {
  enum class Model { kGravity, kBimodal, kUniform };
  Model model = Model::kGravity;
  std::uint64_t seed = 23;  ///< kBimodal only
  double total = 1.0;
  /// kGravity shaping (tm::GravityOptions); the defaults reproduce the
  /// historical dense gravity matrix bit-identically. Scaling scenarios
  /// use top_k to bound the active-destination count per rung and
  /// endpoint_prefix to model host-aggregated fat-tree demands (only
  /// "edge" switches terminate traffic).
  int top_k = 0;
  std::string endpoint_prefix;

  [[nodiscard]] tm::TrafficMatrix build(const Graph& g) const;
  [[nodiscard]] const char* name() const;
};

/// How a kFailure scenario enumerates its failure set (the scenarios
/// themselves come from failure::singleLinkFailures & friends).
struct FailureSpec {
  enum class Model { kSingleLink, kDoubleLink, kSrlg };
  Model model = Model::kSingleLink;
  int double_samples = 8;    ///< kDoubleLink: sampled pair count
  std::uint64_t seed = 17;   ///< kDoubleLink: sampling seed

  [[nodiscard]] const char* name() const;  ///< "single-link", ...
};

struct Scenario {
  std::string id;           ///< unique, stable key ("fig06", "zoo-geant-uniform")
  std::string description;
  /// Free-form filter labels: "figure", "table1", "ablation", "zoo",
  /// "synthetic", "small" (seconds in quick mode), ...
  std::vector<std::string> tags;
  ScenarioKind kind = ScenarioKind::kSchemes;

  TopologySpec topology;   ///< single-network kinds
  DemandSpec demand;
  std::vector<double> margins;       ///< quick margin grid
  std::vector<double> full_margins;  ///< --full / COYOTE_FULL grid
  SweepOptions sweep;

  /// COYOTE_EXACT / --exact also switches the exact whole-box evaluation
  /// on (Table I behavior), not just the oracle cutting planes.
  bool exact_env_upgrades_eval = false;
  /// Networks with <= `exact_node_limit` nodes use the exact slave-LP
  /// adversary for evaluation and the oracle (Table I's '+' rows); 0 = off.
  int exact_node_limit = 0;

  /// kTable / kStretch / kDagAug: networks swept in quick / full mode.
  std::vector<std::string> networks;
  std::vector<std::string> full_networks;
  double fixed_margin = 2.5;  ///< kStretch / kDagAug / kFailure margin

  FailureSpec failure;  ///< kFailure: which failure family to sweep

  /// kServe: seeded event-trace replay (serve::generateTrace); the
  /// daemon's margin comes from fixed_margin.
  int serve_events = 200;
  std::uint64_t serve_seed = 1;

  /// kScaling: the size ladder, smallest rung first. Each rung runs the
  /// full scheme set at fixed_margin and reports nodes/edges/ratios plus
  /// optimize-time, peak-RSS and lp-pivot curves. `topology` mirrors the
  /// smallest rung so single-topology consumers (tests, shims) stay cheap.
  std::vector<TopologySpec> ladder;

  core::LocalSearchOptions local_search;  ///< kLocalSearch
  int ls_full_moves = 24;  ///< max_moves_per_round under --full

  std::vector<int> quantize_multiplicities = {3, 5, 10};  ///< kQuantization

  [[nodiscard]] bool hasTag(const std::string& tag) const;
  [[nodiscard]] const std::vector<double>& grid(bool full) const {
    return full && !full_margins.empty() ? full_margins : margins;
  }
  [[nodiscard]] const std::vector<std::string>& networkList(bool full) const {
    return full && !full_networks.empty() ? full_networks : networks;
  }
};

/// Immutable registry of every known scenario; built once at first use.
class ScenarioRegistry {
 public:
  /// The process-wide registry with the full paper + extension grid.
  static const ScenarioRegistry& global();

  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }
  [[nodiscard]] const Scenario* find(const std::string& id) const;

  /// Scenarios whose id or any tag contains `pattern` (case-sensitive
  /// substring; empty matches everything), in registration order.
  [[nodiscard]] std::vector<const Scenario*> match(
      const std::string& pattern) const;

  /// Builds a registry from explicit scenarios (tests); ids must be unique.
  explicit ScenarioRegistry(std::vector<Scenario> scenarios);

 private:
  ScenarioRegistry();  // the global grid
  void add(Scenario s);

  std::vector<Scenario> scenarios_;
};

}  // namespace coyote::exp
