#include "exp/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "core/local_search.hpp"
#include "core/splitting_optimizer.hpp"
#include "failure/evaluate.hpp"
#include "failure/scenario.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "hardness/gadgets.hpp"
#include "lp/stats.hpp"
#include "routing/ecmp.hpp"
#include "routing/propagation.hpp"
#include "routing/stretch.hpp"
#include "scheme/registry.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"
#include "sim/fluid.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"
#include "util/env.hpp"
#include "util/mem.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace coyote::exp {

namespace json = util::json;

namespace {

// Output of one scenario execution: JSON rows plus kind-specific summary
// members merged into the document, and the pass/fail verdict.
struct KindOutput {
  json::Value rows = json::Value::array();
  json::Value extra = json::Value::object();
  /// Members merged into the machine-dependent "timing" block (exempt
  /// from the bench_compare drift gate; kServe puts throughput and
  /// latency percentiles here, where they are regression-gated instead).
  json::Value timing_extra = json::Value::object();
  bool ok = true;
};

/// The scheme list a scheme-comparison scenario sweeps: the --schemes
/// selection, or the registry defaults (the paper's four). The CLI
/// validated the keys already; re-resolving here keeps library callers
/// honest (unknown keys throw, naming the key).
std::vector<const te::Scheme*> selectedSchemes(const RunOptions& opt) {
  return te::SchemeRegistry::builtin().resolve(opt.schemes);
}

std::string formatMargin(double margin) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", margin);
  return buf;
}

json::Value schemeRowJson(const std::vector<const te::Scheme*>& schemes,
                          const SchemeRow& r) {
  json::Value row = json::Value::object();
  row["margin"] = r.margin;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    row[schemes[i]->key()] = r.ratio[i];
  }
  // Solver-work telemetry; `lp_`-prefixed fields (the per-margin totals
  // and the per-scheme breakdown objects) are exempt from the
  // bench_compare drift gate (pivot counts are toolchain-sensitive).
  row["lp_solves"] = static_cast<double>(r.lp_solves);
  row["lp_pivots"] = static_cast<double>(r.lp_pivots);
  json::Value solves = json::Value::object();
  json::Value pivots = json::Value::object();
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    solves[schemes[i]->key()] = static_cast<double>(r.scheme_lp_solves[i]);
    pivots[schemes[i]->key()] = static_cast<double>(r.scheme_lp_pivots[i]);
  }
  row["lp_scheme_solves"] = std::move(solves);
  row["lp_scheme_pivots"] = std::move(pivots);
  return row;
}

// --- kSchemes (Figs. 6-8 and the zoo/synthetic extension grid) --------

KindOutput runSchemes(const Scenario& s, const RunOptions& opt, bool print) {
  KindOutput out;
  const Graph g = s.topology.build();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = s.demand.build(g);
  const std::vector<const te::Scheme*> schemes = selectedSchemes(opt);

  SweepOptions sopt = s.sweep;
  sopt.exact_oracle = sopt.exact_oracle || opt.exact;
  if (opt.exact && s.exact_env_upgrades_eval) sopt.exact_eval = true;

  const SchemeTable table(schemes, {{"margin", 8}});
  if (print) {
    printSweepPreamble(s.topology.label().c_str(), s.demand.name());
    table.printHeader();
  }
  const NetworkSweep sweep(g, dags, base, sopt, schemes);
  for (const double margin : s.grid(opt.full)) {
    const SchemeRow r = sweep.run(margin);
    if (print) {
      table.printRow({formatMargin(r.margin)}, r.ratio);
      std::fflush(stdout);
    }
    out.rows.push_back(schemeRowJson(schemes, r));
  }
  return out;
}

// --- kTable (Table I) -------------------------------------------------

KindOutput runTable(const Scenario& s, const RunOptions& opt, bool print) {
  KindOutput out;
  const std::vector<double>& margins = s.grid(opt.full);
  const std::vector<const te::Scheme*> schemes = selectedSchemes(opt);
  const SchemeTable table(schemes, {{"network", 14}, {"margin", 8}});
  if (print) {
    std::printf("# Table I: gravity base model, margins");
    for (const double m : margins) std::printf(" %.1f", m);
    std::printf("\n# networks with <= %d nodes use the exact slave-LP "
                "adversary ('+'); larger ones the corner pool\n",
                s.exact_node_limit);
    table.printHeader();
  }

  for (const std::string& name : s.networkList(opt.full)) {
    const Graph g = topo::makeZoo(name);
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = s.demand.build(g);

    SweepOptions sopt = s.sweep;
    sopt.exact_eval =
        (s.exact_node_limit > 0 && g.numNodes() <= s.exact_node_limit) ||
        (opt.exact && s.exact_env_upgrades_eval);
    sopt.exact_oracle = sopt.exact_eval || opt.exact;

    const NetworkSweep sweep(g, dags, base, sopt, schemes);
    const std::string label = name + (sopt.exact_eval ? "+" : "");
    for (const double margin : margins) {
      const SchemeRow r = sweep.run(margin);
      if (print) {
        table.printRow({label, formatMargin(r.margin)}, r.ratio);
        std::fflush(stdout);
      }
      json::Value row = schemeRowJson(schemes, r);
      row["network"] = name;
      row["exact"] = sopt.exact_eval;
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

// --- kLocalSearch (Fig. 9) --------------------------------------------

KindOutput runLocalSearch(const Scenario& s, const RunOptions& opt,
                          bool print) {
  KindOutput out;
  const Graph base_graph = s.topology.build();
  const tm::TrafficMatrix base = s.demand.build(base_graph);

  if (print) {
    std::printf("# %s, %s base matrix, local-search weights\n",
                s.topology.label().c_str(), s.demand.name());
    std::printf("%-8s %-8s %-12s %-8s %-10s\n", "margin", "ECMP", "COYOTE-pk",
                "moves", "ECMP/pk");
  }

  double gap_sum = 0.0;
  int gap_rows = 0;
  for (const double margin : s.grid(opt.full)) {
    const tm::DemandBounds box = tm::marginBounds(base, margin);

    core::LocalSearchOptions ls = s.local_search;
    if (opt.full) ls.max_moves_per_round = s.ls_full_moves;
    const core::LocalSearchResult found =
        core::localSearchWeights(base_graph, box, ls);

    Graph g = base_graph;
    for (EdgeId e = 0; e < g.numEdges(); ++e) g.setWeight(e, found.weights[e]);
    const auto dags = core::augmentedDagsShared(g);

    routing::PerformanceEvaluator pool(g, dags);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.random_corners = 6;
    pool.addPool(tm::cornerPool(box, popt));

    core::CoyoteOptions copt;
    copt.splitting.iterations = 300;
    copt.oracle_rounds = 2;  // Abilene-scale: exact cutting planes are cheap
    const core::CoyoteResult pk_res =
        core::optimizeAgainstPool(g, pool, &box, copt);
    // Exact within-box worst case for both schemes (one slave LP per edge).
    const double ecmp =
        routing::findWorstCaseDemand(g, routing::ecmpConfig(g, dags), &box)
            .ratio;
    const double pk =
        routing::findWorstCaseDemand(g, pk_res.routing, &box).ratio;

    if (print) {
      std::printf("%-8.1f %-8.2f %-12.2f %-8d %-10.2f\n", margin, ecmp, pk,
                  found.accepted_moves, ecmp / pk);
      std::fflush(stdout);
    }
    // Distance-from-optimum comparison; margin 1 rows are excluded (both
    // schemes sit at the optimum and the quotient degenerates).
    if (pk > 1.02) {
      gap_sum += (ecmp - 1.0) / (pk - 1.0);
      ++gap_rows;
    }

    json::Value row = json::Value::object();
    row["margin"] = margin;
    row["ecmp"] = ecmp;
    row["partial"] = pk;
    row["moves"] = found.accepted_moves;
    row["ecmp_over_partial"] = ecmp / pk;
    out.rows.push_back(std::move(row));
  }
  if (gap_rows > 0) {
    const double avg_gap = 100.0 * gap_sum / gap_rows;
    if (print) {
      std::printf(
          "# ECMP's average distance-from-optimum is %.0f%% of COYOTE's "
          "(paper: ~180%%)\n",
          avg_gap);
    }
    out.extra["ecmp_gap_percent"] = avg_gap;
  }
  return out;
}

// --- kQuantization (Fig. 10) ------------------------------------------

KindOutput runQuantization(const Scenario& s, const RunOptions& opt,
                           bool print) {
  KindOutput out;
  const Graph g = s.topology.build();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = s.demand.build(g);

  if (print) {
    std::printf("# %s, %s base matrix: ECMP vs quantized COYOTE\n",
                s.topology.label().c_str(), s.demand.name());
    std::printf("%-8s %-8s", "margin", "ECMP");
    for (const int k : s.quantize_multiplicities) {
      std::printf(" %-12s", ("COYOTE-" + std::to_string(k) + "NH").c_str());
    }
    std::printf(" %-12s\n", "COYOTE-ideal");
  }

  for (const double margin : s.grid(opt.full)) {
    const tm::DemandBounds box = tm::marginBounds(base, margin);
    routing::PerformanceEvaluator pool(g, dags);
    pool.addPool(tm::cornerPool(box, s.sweep.pool));

    const double ecmp = pool.ratioFor(routing::ecmpConfig(g, dags));
    const core::CoyoteResult ideal =
        core::optimizeAgainstPool(g, pool, &box, s.sweep.coyote);

    json::Value row = json::Value::object();
    row["margin"] = margin;
    row["ecmp"] = ecmp;
    if (print) std::printf("%-8.1f %-8.2f", margin, ecmp);
    json::Value quantized = json::Value::object();
    // k virtual links per interface allow multiplicity k+1 per next-hop.
    for (const int k : s.quantize_multiplicities) {
      const double rk =
          pool.ratioFor(fib::quantizeConfig(g, ideal.routing, k + 1));
      if (print) std::printf(" %-12.2f", rk);
      quantized[std::to_string(k)] = rk;
    }
    if (print) {
      std::printf(" %-12.2f\n", ideal.pool_ratio);
      std::fflush(stdout);
    }
    row["quantized"] = std::move(quantized);
    row["ideal"] = ideal.pool_ratio;
    out.rows.push_back(std::move(row));
  }
  return out;
}

// --- kStretch (Fig. 11) -----------------------------------------------

KindOutput runStretch(const Scenario& s, const RunOptions& opt, bool print) {
  KindOutput out;
  if (print) {
    std::printf("# average path stretch vs ECMP, margin %.1f\n",
                s.fixed_margin);
    std::printf("%-14s %-16s %-18s\n", "network", "COYOTE-obl", "COYOTE-pk");
  }

  for (const std::string& name : s.networkList(opt.full)) {
    const Graph g = topo::makeZoo(name);
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = s.demand.build(g);
    const tm::DemandBounds box = tm::marginBounds(base, s.fixed_margin);

    const routing::RoutingConfig ecmp = routing::ecmpConfig(g, dags);
    const core::CoyoteOptions& copt = s.sweep.coyote;
    const core::CoyoteResult obl = core::coyoteOblivious(g, dags, copt);
    const core::CoyoteResult pk = core::coyoteWithBounds(g, dags, box, copt);

    const double obl_stretch = routing::averageStretch(g, obl.routing, ecmp);
    const double pk_stretch = routing::averageStretch(g, pk.routing, ecmp);
    if (print) {
      std::printf("%-14s %-16.3f %-18.3f\n", name.c_str(), obl_stretch,
                  pk_stretch);
      std::fflush(stdout);
    }
    json::Value row = json::Value::object();
    row["network"] = name;
    row["oblivious"] = obl_stretch;
    row["partial"] = pk_stretch;
    out.rows.push_back(std::move(row));
  }
  return out;
}

// --- kPrototype (Fig. 12) ---------------------------------------------

struct PrototypeSchedule {
  NodeId s1, s2;
  void install(sim::FluidNetwork& net) const {
    net.addFlow({s2, 1, 2.0, 0.0, 15.0});   // scenario 1: (0, 2)
    net.addFlow({s1, 0, 1.0, 15.0, 30.0});  // scenario 2: (1, 1)
    net.addFlow({s2, 1, 1.0, 15.0, 30.0});
    net.addFlow({s1, 0, 2.0, 30.0, 45.0});  // scenario 3: (2, 0)
  }
};

json::Value prototypeReport(const char* scheme,
                            const std::vector<sim::StepStats>& stats,
                            bool print) {
  if (print) std::printf("%-8s drop%%/s:", scheme);
  json::Value drops = json::Value::array();
  double sent = 0.0, del = 0.0;
  for (const auto& st : stats) {
    if (print) std::printf(" %3.0f", 100.0 * st.dropRate());
    drops.push_back(100.0 * st.dropRate());
    sent += st.sent;
    del += st.delivered;
  }
  const double dropped_percent = 100.0 * (1.0 - del / sent);
  if (print) {
    std::printf("  | total sent %.0f Mb, dropped %.0f%%\n", sent,
                dropped_percent);
  }
  json::Value row = json::Value::object();
  row["scheme"] = scheme;
  row["drop_percent_per_second"] = std::move(drops);
  row["sent_mb"] = sent;
  row["dropped_percent"] = dropped_percent;
  return row;
}

KindOutput runPrototype(const Scenario&, const RunOptions&, bool print) {
  KindOutput out;
  const Graph g = topo::prototypeTriangle();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId t = *g.findNode("t");
  const EdgeId s1t = *g.findEdge(s1, t);
  const EdgeId s2t = *g.findEdge(s2, t);
  const EdgeId s1s2 = *g.findEdge(s1, s2);
  const EdgeId s2s1 = *g.findEdge(s2, s1);
  const PrototypeSchedule sched{s1, s2};

  if (print) {
    std::printf("# Fig. 12: 1 Mbps links; 3 x 15 s scenarios "
                "(0,2) -> (1,1) -> (2,0) Mbps; 1 s bins\n");
  }

  {  // TE1: both sources route directly (single shared DAG).
    sim::FluidNetwork net(g);
    for (const sim::PrefixId p : {0, 1}) {
      net.setPrefixOwner(p, t);
      net.setForwarding(p, s1, {{s1t, 1.0}});
      net.setForwarding(p, s2, {{s2t, 1.0}});
    }
    sched.install(net);
    out.rows.push_back(prototypeReport("TE1", net.run(45.0, 1.0), print));
  }
  {  // TE2: s1 splits via s2; s2 direct (still one DAG for both prefixes).
    sim::FluidNetwork net(g);
    for (const sim::PrefixId p : {0, 1}) {
      net.setPrefixOwner(p, t);
      net.setForwarding(p, s1, {{s1t, 0.5}, {s1s2, 0.5}});
      net.setForwarding(p, s2, {{s2t, 1.0}});
    }
    sched.install(net);
    out.rows.push_back(prototypeReport("TE2", net.run(45.0, 1.0), print));
  }
  {  // COYOTE: per-prefix DAGs (t1 split at s1, t2 split at s2).
    sim::FluidNetwork net(g);
    net.setPrefixOwner(0, t);
    net.setPrefixOwner(1, t);
    net.setForwarding(0, s1, {{s1t, 0.5}, {s1s2, 0.5}});
    net.setForwarding(0, s2, {{s2t, 1.0}});
    net.setForwarding(1, s2, {{s2t, 0.5}, {s2s1, 0.5}});
    net.setForwarding(1, s1, {{s1t, 1.0}});
    sched.install(net);
    out.rows.push_back(prototypeReport("COYOTE", net.run(45.0, 1.0), print));
  }

  // The COYOTE forwarding above is exactly what the lie-synthesis layer
  // realizes on unmodified OSPF/ECMP routers: verify it.
  fib::OspfModel model(g);
  model.advertisePrefix(0, t);
  model.advertisePrefix(1, t);
  const auto mkDags = [&](bool split_at_s1) {
    DagSet ds;
    for (NodeId d = 0; d < g.numNodes(); ++d) {
      std::vector<EdgeId> edges;
      if (d == t) {
        edges = split_at_s1 ? std::vector<EdgeId>{s1t, s2t, s1s2}
                            : std::vector<EdgeId>{s1t, s2t, s2s1};
      }
      ds.emplace_back(g, d, std::move(edges));
    }
    return std::make_shared<const DagSet>(std::move(ds));
  };
  auto cfg1 = routing::RoutingConfig(g, mkDags(true));
  cfg1.setRatio(t, s1t, 0.5);
  cfg1.setRatio(t, s1s2, 0.5);
  cfg1.setRatio(t, s2t, 1.0);
  auto cfg2 = routing::RoutingConfig(g, mkDags(false));
  cfg2.setRatio(t, s2t, 0.5);
  cfg2.setRatio(t, s2s1, 0.5);
  cfg2.setRatio(t, s1t, 1.0);
  const fib::LiePlan plan1 = fib::synthesizeLies(g, cfg1, t, 0, 4);
  const fib::LiePlan plan2 = fib::synthesizeLies(g, cfg2, t, 1, 4);
  fib::applyPlan(model, plan1);
  fib::applyPlan(model, plan2);
  const bool ok = fib::verifyRealization(model, cfg1, t, 0, 4) &&
                  fib::verifyRealization(model, cfg2, t, 1, 4) &&
                  model.forwardingIsLoopFree(0) &&
                  model.forwardingIsLoopFree(1);
  if (print) {
    std::printf("# OSPF lies realizing COYOTE's per-prefix DAGs: %d fake "
                "nodes, verified: %s\n",
                model.fakeNodeCount(), ok ? "yes" : "NO");
  }
  out.extra["fake_nodes"] = model.fakeNodeCount();
  out.extra["verified"] = ok;
  out.ok = ok;
  return out;
}

// --- kDagAug ----------------------------------------------------------

KindOutput runDagAug(const Scenario& s, const RunOptions& opt, bool print) {
  KindOutput out;
  if (print) {
    std::printf("# COYOTE-pk ratio, margin %.1f: shortest-path DAGs vs "
                "augmented DAGs\n",
                s.fixed_margin);
    std::printf("%-14s %-10s %-10s %-10s\n", "network", "SP-DAGs",
                "augmented", "ECMP");
  }

  for (const std::string& name : s.networkList(opt.full)) {
    const Graph g = topo::makeZoo(name);
    const auto aug = core::augmentedDagsShared(g);
    const auto sp =
        std::make_shared<const DagSet>(routing::shortestPathDags(g));
    const tm::TrafficMatrix base = s.demand.build(g);
    const tm::DemandBounds box = tm::marginBounds(base, s.fixed_margin);

    const tm::PoolOptions& popt = s.sweep.pool;
    const core::CoyoteOptions& copt = s.sweep.coyote;

    // Shared evaluation pool (normalized within the augmented DAGs).
    routing::PerformanceEvaluator eval(g, aug);
    eval.addPool(tm::cornerPool(box, popt));

    // COYOTE over shortest-path DAGs only.
    routing::PerformanceEvaluator sp_pool(g, sp);
    sp_pool.addPool(tm::cornerPool(box, popt));
    const auto sp_cfg = core::optimizeAgainstPool(g, sp_pool, &box, copt);

    // COYOTE over augmented DAGs.
    routing::PerformanceEvaluator aug_pool(g, aug);
    aug_pool.addPool(tm::cornerPool(box, popt));
    const auto aug_cfg = core::optimizeAgainstPool(g, aug_pool, &box, copt);

    // Evaluate all on the shared pool. The SP-DAG config is valid over the
    // augmented DAGs too (SP edges are a subset).
    routing::RoutingConfig sp_on_aug(g, aug);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      for (const EdgeId e : (*sp)[t].edges()) {
        sp_on_aug.setRatio(t, e, sp_cfg.routing.ratio(t, e));
      }
    }
    sp_on_aug.normalize(g);

    const double sp_ratio = eval.ratioFor(sp_on_aug);
    const double aug_ratio = eval.ratioFor(aug_cfg.routing);
    const double ecmp_ratio = eval.ratioFor(routing::ecmpConfig(g, aug));
    if (print) {
      std::printf("%-14s %-10.2f %-10.2f %-10.2f\n", name.c_str(), sp_ratio,
                  aug_ratio, ecmp_ratio);
      std::fflush(stdout);
    }
    json::Value row = json::Value::object();
    row["network"] = name;
    row["sp_dags"] = sp_ratio;
    row["augmented"] = aug_ratio;
    row["ecmp"] = ecmp_ratio;
    out.rows.push_back(std::move(row));
  }
  return out;
}

// --- kOptimizer -------------------------------------------------------

double optimizerRunOnce(const Graph& g,
                        const routing::PerformanceEvaluator& eval,
                        core::SplitMethod method, int iterations) {
  core::SplittingOptions opt;
  opt.method = method;
  opt.iterations = iterations;
  const auto cfg = core::optimizeSplitting(
      g, eval, routing::RoutingConfig::uniform(g, eval.dagsPtr()), opt);
  return eval.ratioFor(cfg);
}

KindOutput runOptimizer(const Scenario&, const RunOptions&, bool print) {
  KindOutput out;
  if (print) {
    std::printf("# inner-optimizer ablation: pool ratio vs iterations\n");
    std::printf("%-16s %-8s %-14s %-14s\n", "instance", "iters",
                "GP-condens.", "mirror-desc.");
  }

  const auto record = [&](const char* instance, int iters, double gp,
                          double mirror) {
    if (print) {
      std::printf("%-16s %-8d %-14.4f %-14.4f\n", instance, iters, gp,
                  mirror);
      std::fflush(stdout);
    }
    json::Value row = json::Value::object();
    row["instance"] = instance;
    row["iterations"] = iters;
    row["gp_condensation"] = gp;
    row["mirror_descent"] = mirror;
    out.rows.push_back(std::move(row));
  };

  {  // Running example: optimum is sqrt(5)-1 ~ 1.2361.
    const Graph g = topo::runningExample();
    const auto dags = core::augmentedDagsShared(g);
    routing::PerformanceEvaluator eval(g, dags);
    tm::TrafficMatrix d1(g.numNodes()), d2(g.numNodes());
    d1.set(*g.findNode("s1"), *g.findNode("t"), 2.0);
    d2.set(*g.findNode("s2"), *g.findNode("t"), 2.0);
    eval.addMatrix(d1);
    eval.addMatrix(d2);
    for (const int iters : {50, 200, 800, 2000}) {
      record("running-example", iters,
             optimizerRunOnce(g, eval, core::SplitMethod::kGpCondensation,
                              iters),
             optimizerRunOnce(g, eval, core::SplitMethod::kMirrorDescent,
                              iters));
    }
    if (print) {
      std::printf("%-16s %-8s %-14.4f (closed form)\n", "running-example",
                  "optimal", std::sqrt(5.0) - 1.0);
    }
    out.extra["closed_form_optimum"] = std::sqrt(5.0) - 1.0;
  }
  {  // Abilene, margin-2 corner pool.
    const Graph g = topo::makeZoo("Abilene");
    const auto dags = core::augmentedDagsShared(g);
    routing::PerformanceEvaluator eval(g, dags);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.random_corners = 4;
    eval.addPool(tm::cornerPool(
        tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt));
    for (const int iters : {50, 200, 800}) {
      record("abilene-m2", iters,
             optimizerRunOnce(g, eval, core::SplitMethod::kGpCondensation,
                              iters),
             optimizerRunOnce(g, eval, core::SplitMethod::kMirrorDescent,
                              iters));
    }
  }
  return out;
}

// --- kHardness --------------------------------------------------------

KindOutput runHardness(const Scenario&, const RunOptions&, bool print) {
  KindOutput out;
  if (print) {
    std::printf("# BIPARTITION reduction (Theorem 1 / Lemmas 2-3)\n");
    std::printf("%-16s %-12s %-22s\n", "integer set", "positive?",
                "best oblivious ratio");
  }
  struct Case {
    std::vector<double> w;
    bool positive;
  };
  const std::vector<Case> cases = {
      {{1, 1}, true},   {{1, 1, 2}, true},  {{2, 3, 5}, true},
      {{1, 3}, false},  {{1, 1, 3}, false}, {{2, 3, 6}, false},
  };
  for (const auto& c : cases) {
    const hardness::BipartitionInstance inst =
        hardness::makeBipartitionInstance(c.w);
    const auto [d1, d2] = hardness::extremeDemands(inst);
    double best = std::numeric_limits<double>::infinity();
    const int k = static_cast<int>(c.w.size());
    for (int mask = 0; mask < (1 << k); ++mask) {
      std::vector<bool> orient(k);
      for (int i = 0; i < k; ++i) orient[i] = (mask >> i) & 1;
      const auto dags = hardness::bipartitionDags(inst, orient);
      routing::PerformanceEvaluator eval(
          inst.graph, dags, {}, routing::Normalization::kUnrestricted);
      eval.addMatrix(d1);
      eval.addMatrix(d2);
      core::SplittingOptions sopt;
      sopt.iterations = 600;
      const auto cfg = core::optimizeSplitting(
          inst.graph, eval,
          routing::RoutingConfig::uniform(inst.graph, dags), sopt);
      best = std::min(best, eval.ratioFor(cfg));
    }
    std::string wstr;
    for (const double wi : c.w) {
      wstr += std::to_string(static_cast<int>(wi)) + " ";
    }
    if (print) {
      std::printf("%-16s %-12s %.4f  (4/3 = 1.3333)\n", wstr.c_str(),
                  c.positive ? "yes" : "no", best);
      std::fflush(stdout);
    }
    json::Value row = json::Value::object();
    row["kind"] = "bipartition";
    row["integer_set"] = wstr;
    row["positive"] = c.positive;
    row["best_oblivious_ratio"] = best;
    out.rows.push_back(std::move(row));
  }

  if (print) {
    std::printf("\n# Omega(|V|) gap (Theorem 4): path instance\n");
    std::printf("%-6s %-24s\n", "n", "oblivious ratio (= n)");
  }
  for (const int n : {2, 4, 8, 16, 32}) {
    const hardness::PathInstance inst = hardness::makePathInstance(n);
    const auto direct = hardness::allDirectRouting(inst);
    double worst = 0.0;
    for (const auto& d : hardness::pathDemands(inst)) {
      const double mxlu = routing::maxLinkUtilization(inst.graph, direct, d);
      const double optu =
          routing::optimalUtilizationUnrestricted(inst.graph, d);
      worst = std::max(worst, mxlu / optu);
    }
    if (print) {
      std::printf("%-6d %.2f\n", n, worst);
      std::fflush(stdout);
    }
    json::Value row = json::Value::object();
    row["kind"] = "path-gap";
    row["n"] = n;
    row["oblivious_ratio"] = worst;
    out.rows.push_back(std::move(row));
  }
  return out;
}

// --- kFailure (src/failure/: post-failure four-scheme sweep) ----------

KindOutput runFailure(const Scenario& s, const RunOptions& opt, bool print) {
  KindOutput out;
  const Graph g = s.topology.build();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = s.demand.build(g);
  const std::vector<const te::Scheme*> schemes = selectedSchemes(opt);

  std::vector<failure::FailureScenario> fails;
  switch (s.failure.model) {
    case FailureSpec::Model::kSingleLink:
      fails = failure::singleLinkFailures(g);
      break;
    case FailureSpec::Model::kDoubleLink:
      fails = failure::sampledDoubleLinkFailures(g, s.failure.double_samples,
                                                 s.failure.seed);
      break;
    case FailureSpec::Model::kSrlg:
      fails = failure::srlgFailures(g, failure::derivedSrlgs(g));
      break;
  }

  failure::FailureEvalOptions fopt;
  fopt.margin = s.fixed_margin;
  fopt.coyote = s.sweep.coyote;
  fopt.schemes = schemes;
  const failure::FailureEvaluator eval(g, dags, base, fopt);
  const failure::FailureSweepResult res = eval.evaluate(fails);

  const int n = static_cast<int>(schemes.size());
  const SchemeTable table(schemes, {{"failed", 24}});
  if (print) {
    std::printf("# %s, %s base matrix -- %s failure sweep, margin %.1f\n",
                s.topology.label().c_str(), s.demand.name(),
                s.failure.name(), s.fixed_margin);
    std::printf("# post-failure ratios: worst over the corner pool, "
                "normalized by the unrestricted optimum on the surviving "
                "network\n");
    table.printHeader();
  }

  for (const failure::FailureOutcome& o : res.outcomes) {
    json::Value row = json::Value::object();
    row["label"] = o.label;
    row["evaluated"] = o.evaluated;
    row["disconnected_pairs"] = o.disconnected_pairs;
    if (!o.evaluated) {
      if (print) {
        std::printf("%-24s (disconnects %d demand pair(s))\n",
                    o.label.c_str(), o.disconnected_pairs);
      }
    } else {
      json::Value unroutable = json::Value::array();
      for (int i = 0; i < n; ++i) {
        const char* key = schemes[i]->key();
        if (o.routable[i]) {
          row[key] = o.ratio[i];
        } else {
          unroutable.push_back(key);
        }
      }
      row["unroutable"] = std::move(unroutable);
      if (print) table.printRow({o.label}, o.ratio, &o.routable);
    }
    if (print) std::fflush(stdout);
    out.rows.push_back(std::move(row));
  }

  json::Value block = json::Value::object();
  block["model"] = s.failure.name();
  block["margin"] = s.fixed_margin;
  block["scenarios"] = static_cast<int>(res.outcomes.size());
  block["evaluated"] = res.evaluated;
  block["disconnecting"] = res.disconnecting;
  block["disconnected_pairs"] = res.disconnected_pairs;
  block["pool_size"] = eval.poolSize();
  json::Value per_scheme = json::Value::object();
  for (const auto& [key, st] : res.schemes) {
    json::Value v = json::Value::object();
    v["worst"] = st.worst;
    v["median"] = st.median;
    v["p95"] = st.p95;
    v["evaluated"] = st.evaluated;
    v["unroutable"] = st.unroutable;
    per_scheme[key] = std::move(v);
  }
  block["schemes"] = std::move(per_scheme);
  out.extra["failures"] = std::move(block);

  if (print) {
    std::printf("# failures: %zu total, %d evaluated, %d disconnecting "
                "(%d demand pair(s) cut)\n",
                res.outcomes.size(), res.evaluated, res.disconnecting,
                res.disconnected_pairs);
    std::printf("# worst/median/p95:");
    for (const auto& [key, st] : res.schemes) {
      std::printf("  %s %.2f/%.2f/%.2f", key.c_str(), st.worst, st.median,
                  st.p95);
    }
    std::printf("\n");
  }
  return out;
}

// --- kServe (online TE daemon trace replay, src/serve/) ---------------

/// Nearest-rank percentile of an unsorted sample (q in [0,1]).
double percentileMs(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const std::size_t n = sample.size();
  const double rank = std::ceil(q * static_cast<double>(n));
  const std::size_t idx =
      rank < 1.0 ? 0 : std::min(n - 1, static_cast<std::size_t>(rank) - 1);
  return sample[idx];
}

KindOutput runServe(const Scenario& s, const RunOptions& opt, bool print) {
  KindOutput out;
  const Graph g = s.topology.build();
  const tm::TrafficMatrix base = s.demand.build(g);

  serve::TraceOptions topt;
  topt.events = s.serve_events;
  topt.seed = s.serve_seed;
  const std::vector<std::string> trace = serve::generateTrace(g, base, topt);

  serve::ServeOptions sopt;
  sopt.margin = s.fixed_margin;
  sopt.pool = s.sweep.pool;
  // Adopt the scenario's sweep options but keep the service's own
  // early-stop default: sweeps leave patience off (fixed budgets keep
  // their outputs comparable), while the daemon's warm reoptimize relies
  // on it to bank the saved iterations.
  const int serve_patience = sopt.coyote.splitting.patience;
  sopt.coyote = s.sweep.coyote;
  if (sopt.coyote.splitting.patience == 0) {
    sopt.coyote.splitting.patience = serve_patience;
  }
  sopt.schemes = selectedSchemes(opt);
  serve::TeService service(g, base, sopt);

  if (print) {
    std::printf("# %s, %s base matrix -- online TE daemon replay: %zu "
                "events, margin %.1f, pool %d\n",
                s.topology.label().c_str(), s.demand.name(), trace.size(),
                s.fixed_margin, service.poolSize());
  }

  const auto opOf = [](const std::string& line) -> std::string {
    try {
      return json::parse(line).stringOr("op", "");
    } catch (const std::exception&) {
      return "";
    }
  };

  // Replay in handleScript-shaped groups: maximal runs of consecutive
  // what-if queries batch over the thread pool, every other event is its
  // own serial group. Each event in a group is attributed the group's
  // mean latency (the batch answers them together).
  std::vector<double> latency_ms;
  latency_ms.reserve(trace.size());
  std::vector<std::string> responses;
  responses.reserve(trace.size());
  const util::Timer replay_timer;
  std::size_t i = 0;
  while (i < trace.size()) {
    std::size_t j = i + 1;
    if (opOf(trace[i]) == "what-if") {
      while (j < trace.size() && opOf(trace[j]) == "what-if") ++j;
    }
    const std::vector<std::string> group(trace.begin() + i, trace.begin() + j);
    const util::Timer timer;
    std::vector<std::string> resp = service.handleScript(group);
    const double per_event_ms =
        1000.0 * timer.elapsedSeconds() / static_cast<double>(group.size());
    for (std::string& r : resp) {
      latency_ms.push_back(per_event_ms);
      responses.push_back(std::move(r));
    }
    i = j;
  }
  const double replay_seconds = replay_timer.elapsedSeconds();

  // Per-op event counts (deterministic for a trace seed, so the rows are
  // drift-gated) and the error total (any ok:false response fails the
  // scenario: the generator only emits well-formed requests).
  static constexpr const char* kOps[] = {"state",  "demand",  "link",
                                         "margin", "what-if", "reoptimize"};
  constexpr int kNumOps = static_cast<int>(std::size(kOps));
  int counts[kNumOps] = {};
  for (const std::string& line : trace) {
    const std::string op = opOf(line);
    for (int k = 0; k < kNumOps; ++k) {
      if (op == kOps[k]) ++counts[k];
    }
  }
  int errors = 0;
  for (const std::string& r : responses) {
    try {
      const json::Value resp = json::parse(r);
      const json::Value* ok = resp.find("ok");
      if (ok == nullptr || !ok->isBool() || !ok->asBool()) ++errors;
    } catch (const std::exception&) {
      ++errors;
    }
  }
  out.ok = errors == 0;

  for (int k = 0; k < kNumOps; ++k) {
    json::Value row = json::Value::object();
    row["op"] = kOps[k];
    row["events"] = counts[k];
    out.rows.push_back(std::move(row));
  }

  // Post-replay ground truth: a no-failure what-if snapshots the final
  // service state (deterministic; drift-gated like any scheme ratio).
  json::Value probe = json::Value::object();
  probe["op"] = "what-if";
  probe["links"] = json::Value::array();
  const json::Value final_state = service.handle(probe);

  json::Value block = json::Value::object();
  block["events"] = static_cast<int>(trace.size());
  block["trace_seed"] = static_cast<double>(s.serve_seed);
  block["pool_size"] = service.poolSize();
  block["errors"] = errors;
  block["final_margin"] = service.margin();
  block["final_failed_links"] =
      static_cast<int>(service.failedLinks().size());
  // Splitting-optimizer budget the warm-seeded reoptimize events never
  // spent (previous-ratio seed + patience early stop; 0 when the trace
  // has no reoptimize events).
  block["reoptimize_saved_iters"] =
      static_cast<double>(service.reoptimizeSavedIters());
  for (const char* key : {"disconnected_pairs", "evaluated", "ratios",
                          "unroutable", "failed"}) {
    if (const json::Value* v = final_state.find(key)) {
      block[std::string("final_") + key] = *v;
    }
  }
  out.extra["serve"] = std::move(block);

  const double events_per_second =
      replay_seconds > 0.0 ? static_cast<double>(trace.size()) / replay_seconds
                           : 0.0;
  out.timing_extra["replay_seconds"] = replay_seconds;
  out.timing_extra["events_per_second"] = events_per_second;
  out.timing_extra["event_p50_ms"] = percentileMs(latency_ms, 0.50);
  out.timing_extra["event_p99_ms"] = percentileMs(latency_ms, 0.99);

  if (print) {
    std::printf("# events:");
    for (int k = 0; k < kNumOps; ++k) {
      std::printf(" %s %d", kOps[k], counts[k]);
    }
    std::printf("  (errors %d)\n", errors);
    std::printf("# throughput: %.1f events/s, latency p50 %.2f ms, "
                "p99 %.2f ms\n",
                events_per_second, percentileMs(latency_ms, 0.50),
                percentileMs(latency_ms, 0.99));
    std::printf("# reoptimize: %lld splitting iterations saved by warm "
                "starts\n",
                service.reoptimizeSavedIters());
    if (const json::Value* ratios = final_state.find("ratios")) {
      std::printf("# final ratios:");
      for (const auto& [key, v] : ratios->asObject()) {
        std::printf("  %s %.2f", key.c_str(), v.asNumber());
      }
      std::printf("\n");
    }
    std::fflush(stdout);
  }
  return out;
}

// --- kScaling (structured-generator size ladders) ---------------------

KindOutput runScaling(const Scenario& s, const RunOptions& opt, bool print) {
  KindOutput out;
  const std::vector<const te::Scheme*> schemes = selectedSchemes(opt);
  const SchemeTable table(schemes,
                          {{"rung", 18}, {"nodes", 7}, {"edges", 7}});
  if (print) {
    std::printf("# scaling curve: %zu rung(s), %s base model, margin %.1f\n",
                s.ladder.size(), s.demand.name(), s.fixed_margin);
    table.printHeader();
  }

  // Per-rung wall-clock goes under "timing" (machine-dependent, exempt
  // from the drift gate); the rows keep only deterministic fields plus
  // the lp_* / mem_* telemetry the gate already exempts.
  json::Value rung_seconds = json::Value::array();
  for (const TopologySpec& spec : s.ladder) {
    const util::Timer rung_timer;
    const Graph g = spec.build();
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = s.demand.build(g);
    const NetworkSweep sweep(g, dags, base, s.sweep, schemes);
    const SchemeRow r = sweep.run(s.fixed_margin);
    const double seconds = rung_timer.elapsedSeconds();

    if (print) {
      table.printRow({spec.label(), std::to_string(g.numNodes()),
                      std::to_string(g.numEdges())},
                     r.ratio);
      std::printf("#   %s: %.2fs, peak RSS %.1f MiB\n", spec.label().c_str(),
                  seconds, util::peakRssMb());
      std::fflush(stdout);
    }
    json::Value row = schemeRowJson(schemes, r);
    row["rung"] = spec.label();
    row["nodes"] = g.numNodes();
    row["edges"] = g.numEdges();
    row["mem_peak_rss_mb"] = util::peakRssMb();
    out.rows.push_back(std::move(row));

    json::Value t = json::Value::object();
    t["rung"] = spec.label();
    t["seconds"] = seconds;
    rung_seconds.push_back(std::move(t));
  }
  out.timing_extra["rungs"] = std::move(rung_seconds);
  return out;
}

KindOutput runKind(const Scenario& s, const RunOptions& opt, bool print) {
  switch (s.kind) {
    case ScenarioKind::kSchemes:
      return runSchemes(s, opt, print);
    case ScenarioKind::kTable:
      return runTable(s, opt, print);
    case ScenarioKind::kLocalSearch:
      return runLocalSearch(s, opt, print);
    case ScenarioKind::kQuantization:
      return runQuantization(s, opt, print);
    case ScenarioKind::kStretch:
      return runStretch(s, opt, print);
    case ScenarioKind::kPrototype:
      return runPrototype(s, opt, print);
    case ScenarioKind::kDagAug:
      return runDagAug(s, opt, print);
    case ScenarioKind::kOptimizer:
      return runOptimizer(s, opt, print);
    case ScenarioKind::kHardness:
      return runHardness(s, opt, print);
    case ScenarioKind::kFailure:
      return runFailure(s, opt, print);
    case ScenarioKind::kServe:
      return runServe(s, opt, print);
    case ScenarioKind::kScaling:
      return runScaling(s, opt, print);
  }
  require(false, "unknown scenario kind");
  return {};  // unreachable
}

// Matches the trailing line of the pre-registry bench binaries: the
// margin-sweep binaries echoed the COYOTE_FULL flag, the rest did not,
// and fig12 printed no elapsed line at all.
void printElapsed(const Scenario& s, const RunOptions& opt, double seconds) {
  switch (s.kind) {
    case ScenarioKind::kPrototype:
      return;
    case ScenarioKind::kSchemes:
    case ScenarioKind::kTable:
    case ScenarioKind::kStretch:
      std::printf("# elapsed: %.1fs (COYOTE_FULL=%d)\n", seconds,
                  opt.full ? 1 : 0);
      return;
    default:
      std::printf("# elapsed: %.1fs\n", seconds);
      return;
  }
}

}  // namespace

double ScenarioResult::minSeconds() const {
  double m = std::numeric_limits<double>::infinity();
  for (const double s : seconds) m = std::min(m, s);
  return seconds.empty() ? 0.0 : m;
}

double ScenarioResult::medianSeconds() const {
  if (seconds.empty()) return 0.0;
  std::vector<double> sorted = seconds;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

std::string gitDescribe() {
  std::string out;
#if !defined(_WIN32)
  if (FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    ::pclose(pipe);
  }
#endif
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

ScenarioResult ExperimentRunner::run(const Scenario& s) const {
  ScenarioResult result;
  result.id = s.id;

  KindOutput output;
  const int total = std::max(1, opt_.repeat) + std::max(0, opt_.warmup);
  const int warmup = std::max(0, opt_.warmup);
  const lp::StatsSnapshot lp_start = lp::statsSnapshot();
  lp::StatsSnapshot lp_delta;   // last repetition (all reps do equal work)
  double last_elapsed = 0.0;
  for (int rep = 0; rep < total; ++rep) {
    // Deterministic results: print during the first execution only.
    const bool print = opt_.print && rep == 0;
    const lp::StatsSnapshot lp_before = lp::statsSnapshot();
    const util::Timer timer;
    output = runKind(s, opt_, print);
    const double elapsed = timer.elapsedSeconds();
    lp_delta = lp::statsSnapshot() - lp_before;
    last_elapsed = elapsed;
    if (print) printElapsed(s, opt_, elapsed);
    if (rep >= warmup) result.seconds.push_back(elapsed);
  }
  result.ok = output.ok;

  // An LP hitting its iteration limit means some reported objective is not
  // the optimum -- a silent correctness failure, surfaced here as a hard
  // per-scenario error rather than a quietly-wrong BENCH row.
  const lp::StatsSnapshot lp_total = lp::statsSnapshot() - lp_start;
  if (lp_total.iter_limit_solves > 0) {
    std::fprintf(stderr,
                 "scenario %s: %lld LP solve(s) hit the iteration limit "
                 "(objectives are not optimal); failing the scenario\n",
                 s.id.c_str(),
                 static_cast<long long>(lp_total.iter_limit_solves));
    result.ok = false;
  }

  json::Value doc = json::Value::object();
  doc["schema"] = "coyote-bench/6";
  doc["scenario"] = s.id;
  doc["kind"] = kindName(s.kind);
  doc["description"] = s.description;
  json::Value tags = json::Value::array();
  for (const std::string& t : s.tags) tags.push_back(t);
  doc["tags"] = std::move(tags);
  doc["git"] = gitDescribe();
  doc["threads"] = static_cast<int>(util::ThreadPool::defaultThreads());
  doc["full"] = opt_.full;
  doc["exact"] = opt_.exact;
  // The scheme list the scheme-comparison kinds swept (run metadata, like
  // full/exact: it names the selection, the rows carry the values).
  switch (s.kind) {
    case ScenarioKind::kSchemes:
    case ScenarioKind::kTable:
    case ScenarioKind::kFailure:
    case ScenarioKind::kServe:
    case ScenarioKind::kScaling: {
      json::Value keys = json::Value::array();
      for (const te::Scheme* sch : selectedSchemes(opt_)) {
        keys.push_back(std::string(sch->key()));
      }
      doc["schemes"] = std::move(keys);
      break;
    }
    default:
      break;
  }
  switch (s.kind) {
    case ScenarioKind::kSchemes:
    case ScenarioKind::kLocalSearch:
    case ScenarioKind::kQuantization:
    case ScenarioKind::kServe:
      doc["network"] = s.topology.label();
      doc["demand_model"] = s.demand.name();
      break;
    case ScenarioKind::kFailure:
      doc["network"] = s.topology.label();
      doc["demand_model"] = s.demand.name();
      doc["failure_model"] = s.failure.name();
      break;
    case ScenarioKind::kTable:
    case ScenarioKind::kStretch:
    case ScenarioKind::kDagAug: {
      json::Value nets = json::Value::array();
      for (const std::string& n : s.networkList(opt_.full)) nets.push_back(n);
      doc["networks"] = std::move(nets);
      doc["demand_model"] = s.demand.name();
      break;
    }
    case ScenarioKind::kScaling: {
      json::Value rungs = json::Value::array();
      for (const TopologySpec& spec : s.ladder) {
        rungs.push_back(spec.label());
      }
      doc["ladder"] = std::move(rungs);
      doc["demand_model"] = s.demand.name();
      doc["margin"] = s.fixed_margin;
      break;
    }
    default:
      break;
  }
  doc["ok"] = result.ok;
  // Per-scenario LP work (one repetition's worth). The counts are
  // deterministic for a binary (and for any thread count); all lp_*
  // fields are exempt from the bench_compare drift gate. The wall-clock
  // share of the solver lands under "timing" with the other
  // machine-dependent data.
  doc["lp_solves"] = static_cast<double>(lp_delta.solves);
  doc["lp_pivots"] = static_cast<double>(lp_delta.iterations);
  doc["lp_phase1_pivots"] = static_cast<double>(lp_delta.phase1_iters);
  doc["lp_refactorizations"] =
      static_cast<double>(lp_delta.refactorizations);
  doc["lp_pricing_hits"] = static_cast<double>(lp_delta.pricing_hits);
  doc["lp_degen_rescues"] = static_cast<double>(lp_delta.degen_rescues);
  doc["lp_lu_updates"] = static_cast<double>(lp_delta.lu_updates);
  doc["lp_lu_fill"] = static_cast<double>(lp_delta.lu_fill);
  doc["lp_dual_pivots"] = static_cast<double>(lp_delta.dual_pivots);
  doc["lp_decomp_rounds"] = static_cast<double>(lp_delta.decomp_rounds);
  // Process peak RSS after the scenario ran (schema coyote-bench/6).
  // Monotonic over the process, so in a multi-scenario run each value
  // upper-bounds the scenario's own footprint; `mem_`-prefixed fields are
  // exempt from the drift gate and surfaced as [INFO] deltas instead.
  doc["mem_peak_rss_mb"] = util::peakRssMb();
  doc["rows"] = std::move(output.rows);
  for (auto& [key, value] : output.extra.asObject()) {
    doc[key] = value;
  }
  json::Value timing = json::Value::object();
  timing["repeat"] = std::max(1, opt_.repeat);
  timing["warmup"] = warmup;
  json::Value secs = json::Value::array();
  for (const double sec : result.seconds) secs.push_back(sec);
  timing["seconds"] = std::move(secs);
  timing["min_seconds"] = result.minSeconds();
  timing["median_seconds"] = result.medianSeconds();
  // Solver seconds (summed across worker threads) per wall-clock second:
  // can exceed 1.0 when COYOTE_THREADS > 1 and the LP chunks run
  // concurrently -- it is a utilization measure, not a percentage.
  timing["lp_time_frac"] =
      last_elapsed > 0.0 ? std::max(0.0, lp_delta.seconds / last_elapsed)
                         : 0.0;
  // Kind-specific timing (kServe: events/sec and latency percentiles);
  // lives here with the other machine-dependent data so the drift gate
  // skips it, while bench_compare applies explicit regression gates.
  for (const auto& [key, value] : output.timing_extra.asObject()) {
    timing[key] = value;
  }
  doc["timing"] = std::move(timing);
  result.document = std::move(doc);
  return result;
}

int ExperimentRunner::runAll(
    const std::vector<const Scenario*>& scenarios) const {
  int failures = 0;
  if (!opt_.json_dir.empty()) {
    std::filesystem::create_directories(opt_.json_dir);
  }
  for (const Scenario* s : scenarios) {
    const ScenarioResult result = run(*s);
    if (!result.ok) ++failures;
    if (!opt_.json_dir.empty()) {
      const std::filesystem::path path =
          std::filesystem::path(opt_.json_dir) / ("BENCH_" + s->id + ".json");
      std::ofstream file(path);
      file << result.document.dump(2);
      file.close();  // surface buffered write errors before the check
      if (!file.good()) {
        std::fprintf(stderr, "failed to write %s\n", path.string().c_str());
        ++failures;
      }
    }
  }
  return failures;
}

int runScenarioShim(const std::string& id) {
  const Scenario* s = ScenarioRegistry::global().find(id);
  if (s == nullptr) {
    std::fprintf(stderr, "unknown scenario: %s\n", id.c_str());
    return 1;
  }
  RunOptions opt;
  opt.full = util::envFlag("COYOTE_FULL");
  opt.exact = util::envFlag("COYOTE_EXACT");
  opt.json_dir = util::envString("COYOTE_JSON_DIR");
  const ExperimentRunner runner(opt);
  return runner.runAll({s}) == 0 ? 0 : 1;
}

}  // namespace coyote::exp
