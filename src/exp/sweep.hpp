// The four-scheme margin sweep at the heart of the paper's evaluation
// (Figs. 6-9, Table I), factored out of the per-figure bench binaries so
// the scenario registry (scenario.hpp) and the experiment runner
// (runner.hpp) can drive it uniformly.
//
// Every sweep prints/records the same rows the paper reports, normalized --
// like the paper's figures -- by the demands-aware optimum *within the same
// augmented DAGs*. Evaluation is over a finite pool of corner/hotspot
// matrices of the uncertainty box (see tm::cornerPool); the same pool
// drives COYOTE's optimizer, and the exact slave-LP oracle can be enabled
// on small networks. Shapes (who wins, by what factor, where crossovers
// fall), not absolute values, are the reproduction target; see
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::exp {

/// One row of the Fig. 6-9 / Table I comparison.
struct SchemeRow {
  double margin = 1.0;
  double ecmp = 0.0;        ///< traditional TE with ECMP
  double base = 0.0;        ///< demands-aware optimum for the base matrix
  double oblivious = 0.0;   ///< COYOTE, no demand knowledge
  double partial = 0.0;     ///< COYOTE, optimized for the uncertainty box
  /// LP work this margin point cost (pool normalization, optimizer
  /// re-solves, slave LPs): deltas of lp::statsSnapshot() around run().
  std::int64_t lp_solves = 0;
  std::int64_t lp_pivots = 0;
};

struct SweepOptions {
  /// Corner-pool shape for the per-margin evaluation/optimization pool.
  tm::PoolOptions pool;
  core::CoyoteOptions coyote;
  bool exact_oracle = false;  ///< add slave-LP cutting planes (small nets)
  /// Evaluate the four schemes with the exact slave-LP adversary over the
  /// whole box (one LP per edge per scheme) instead of the corner pool.
  /// This is what exposes how quickly the base-optimal routing degrades
  /// under uncertainty; affordable up to ~15-node networks.
  bool exact_eval = false;

  SweepOptions() {
    pool.random_corners = 6;
    pool.source_hotspots = false;  // halves the per-margin LP count
    pool.max_hotspots = 12;        // caps LP count on the larger networks
    pool.seed = 1;
    coyote.splitting.iterations = 300;
  }
};

/// Margin-sweep harness for one network. The margin-independent schemes
/// (ECMP, the base-matrix optimum, COYOTE-oblivious) are computed once and
/// re-evaluated under every margin's pool; COYOTE-partial-knowledge is
/// re-optimized per margin. All heavy stages (pool normalization, PERF
/// evaluation, the optimizer's forward pass, the slave LPs) run on the
/// shared util::ThreadPool; results are bit-identical for any thread count.
///
/// One routing::OptuEngine is shared by every margin point's evaluator:
/// the OPTU constraint matrix is built once per (graph, DAG-set,
/// active-destination signature) and each margin's pool normalizations
/// re-solve it by mutating the conservation rhs from a warm basis.
class NetworkSweep {
 public:
  NetworkSweep(const Graph& g, std::shared_ptr<const DagSet> dags,
               const tm::TrafficMatrix& base_tm, SweepOptions opt);

  [[nodiscard]] SchemeRow run(double margin) const;

  [[nodiscard]] const routing::RoutingConfig& ecmpRouting() const {
    return ecmp_;
  }
  [[nodiscard]] const routing::RoutingConfig& obliviousRouting() const {
    return oblivious_;
  }

 private:
  const Graph& g_;
  std::shared_ptr<const DagSet> dags_;
  const tm::TrafficMatrix& base_tm_;
  SweepOptions opt_;
  std::shared_ptr<routing::OptuEngine> optu_engine_;
  routing::RoutingConfig ecmp_;
  routing::RoutingConfig base_routing_;
  routing::RoutingConfig oblivious_;
};

/// Margins used by the sweeps: the paper uses 1..3 (figures) and 1..5
/// (Table I) in 0.5 steps; the quick default thins them out.
[[nodiscard]] std::vector<double> marginGrid(double max_margin, bool full);

void printSchemeHeader(const char* network, const char* model);
void printSchemeRow(const SchemeRow& r);

}  // namespace coyote::exp
