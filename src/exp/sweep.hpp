// The scheme margin sweep at the heart of the paper's evaluation
// (Figs. 6-9, Table I), factored out of the per-figure bench binaries so
// the scenario registry (scenario.hpp) and the experiment runner
// (runner.hpp) can drive it uniformly. Since the te::Scheme redesign the
// sweep is generic over a scheme list (default: the paper's four, from
// te::SchemeRegistry::builtin()).
//
// Every sweep prints/records the same rows the paper reports, normalized --
// like the paper's figures -- by the demands-aware optimum *within the same
// augmented DAGs*. Evaluation is over a finite pool of corner/hotspot
// matrices of the uncertainty box (see tm::cornerPool); the same pool
// drives COYOTE's optimizer, and the exact slave-LP oracle can be enabled
// on small networks. Shapes (who wins, by what factor, where crossovers
// fall), not absolute values, are the reproduction target; see
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "scheme/registry.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::exp {

/// One row of the Fig. 6-9 / Table I comparison: one ratio per scheme of
/// the sweep's scheme list (NetworkSweep::schemes(), same order).
struct SchemeRow {
  double margin = 1.0;
  std::vector<double> ratio;
  /// LP work this margin point cost in total (pool normalization,
  /// optimizer re-solves, slave LPs): deltas of lp::statsSnapshot()
  /// around run().
  std::int64_t lp_solves = 0;
  std::int64_t lp_pivots = 0;
  /// The per-scheme share of that work (margin-dependent re-optimization
  /// plus the scheme's own evaluation; the shared pool normalization is
  /// not attributed). Parallel to `ratio`.
  std::vector<std::int64_t> scheme_lp_solves;
  std::vector<std::int64_t> scheme_lp_pivots;
};

struct SweepOptions {
  /// Corner-pool shape for the per-margin evaluation/optimization pool.
  tm::PoolOptions pool;
  core::CoyoteOptions coyote;
  bool exact_oracle = false;  ///< add slave-LP cutting planes (small nets)
  /// Evaluate the schemes with the exact slave-LP adversary over the
  /// whole box (one LP per edge per scheme) instead of the corner pool.
  /// This is what exposes how quickly the base-optimal routing degrades
  /// under uncertainty; affordable up to ~15-node networks.
  bool exact_eval = false;
  /// 0 = the process-wide util::ThreadPool; otherwise the per-margin pool
  /// evaluator runs on a private pool of exactly that many threads.
  /// Results are bit-identical either way (tests sweep this knob).
  unsigned threads = 0;

  SweepOptions() {
    pool.random_corners = 6;
    pool.source_hotspots = false;  // halves the per-margin LP count
    pool.max_hotspots = 12;        // caps LP count on the larger networks
    pool.seed = 1;
    coyote.splitting.iterations = 300;
  }
};

/// Margin-sweep harness for one network, generic over a scheme list.
/// Margin-independent schemes are computed once (in list order) and
/// re-evaluated under every margin's pool; margin-dependent ones
/// (COYOTE-pk) are re-optimized per margin. All heavy stages (pool
/// normalization, PERF evaluation, the optimizer's forward pass, the slave
/// LPs) run on the shared util::ThreadPool; results are bit-identical for
/// any thread count.
///
/// One routing::OptuEngine is shared by every margin point's evaluator:
/// the OPTU constraint matrix is built once per (graph, DAG-set,
/// active-destination signature) and each margin's pool normalizations
/// re-solve it by mutating the conservation rhs from a warm basis. The
/// warm chains and thread-chunking are per scheme-independent stage, so
/// adding or removing schemes never perturbs another scheme's pivots.
class NetworkSweep {
 public:
  /// `schemes` empty selects te::SchemeRegistry::builtin().defaults()
  /// (the paper's four-scheme comparison).
  NetworkSweep(const Graph& g, std::shared_ptr<const DagSet> dags,
               const tm::TrafficMatrix& base_tm, SweepOptions opt,
               std::vector<const te::Scheme*> schemes = {});

  [[nodiscard]] SchemeRow run(double margin) const;

  [[nodiscard]] const std::vector<const te::Scheme*>& schemes() const {
    return schemes_;
  }

  /// Intact routing of scheme `i` (margin-independent schemes only;
  /// margin-dependent ones are recomputed inside run()).
  [[nodiscard]] const routing::RoutingConfig& intactRouting(int i) const;

 private:
  const Graph& g_;
  std::shared_ptr<const DagSet> dags_;
  const tm::TrafficMatrix& base_tm_;
  SweepOptions opt_;
  std::vector<const te::Scheme*> schemes_;
  std::shared_ptr<routing::OptuEngine> optu_engine_;
  /// Parallel to schemes_; disengaged for margin-dependent schemes.
  std::vector<std::optional<routing::RoutingConfig>> intact_;
};

/// Margins used by the sweeps: the paper uses 1..3 (figures) and 1..5
/// (Table I) in 0.5 steps; the quick default thins them out. Generated
/// from integer step counts (not floating-point accumulation), so the last
/// margin is never lost to round-off drift.
[[nodiscard]] std::vector<double> marginGrid(double max_margin, bool full);

/// Column-width-computed text table for scheme rows: any number of
/// caller-formatted leading columns followed by one column per scheme,
/// each sized to its display name. Replaces the hardcoded
/// printSchemeHeader/printSchemeRow printf pair.
class SchemeTable {
 public:
  struct LeadingColumn {
    std::string title;
    int width = 8;
  };

  SchemeTable(std::vector<const te::Scheme*> schemes,
              std::vector<LeadingColumn> leading);

  /// Prints the column-title line.
  void printHeader() const;

  /// Prints one row: the leading cells (caller-formatted, e.g. "2.5" or a
  /// failure label) then `values[i]` at two decimals per scheme --
  /// "n/a" where `routable` (when given) is false.
  void printRow(const std::vector<std::string>& leading,
                const std::vector<double>& values,
                const std::vector<char>* routable = nullptr) const;

 private:
  std::vector<const te::Scheme*> schemes_;
  std::vector<LeadingColumn> leading_;
  std::vector<int> widths_;  ///< per-scheme column width
};

/// The two-line normalization preamble the margin sweeps print above their
/// table ("# <network>, <model> base matrix" + the ruler description).
void printSweepPreamble(const char* network, const char* model);

}  // namespace coyote::exp
