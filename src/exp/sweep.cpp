#include "exp/sweep.hpp"

#include <cstdio>

#include "lp/stats.hpp"

namespace coyote::exp {

NetworkSweep::NetworkSweep(const Graph& g, std::shared_ptr<const DagSet> dags,
                           const tm::TrafficMatrix& base_tm, SweepOptions opt)
    : g_(g),
      dags_(std::move(dags)),
      base_tm_(base_tm),
      opt_(std::move(opt)),
      optu_engine_(std::make_shared<routing::OptuEngine>(g, dags_,
                                                         opt_.coyote.lp)),
      ecmp_(routing::ecmpConfig(g, dags_)),
      base_routing_(
          routing::optimalRoutingForDemand(g, dags_, base_tm, opt_.coyote.lp)
              .routing),
      oblivious_([&] {
        core::CoyoteOptions copt = opt_.coyote;
        copt.oracle_rounds = opt_.exact_oracle ? 2 : 0;
        return core::coyoteOblivious(g, dags_, copt).routing;
      }()) {}

SchemeRow NetworkSweep::run(double margin) const {
  SchemeRow row;
  row.margin = margin;
  const lp::StatsSnapshot lp_before = lp::statsSnapshot();
  const tm::DemandBounds box = tm::marginBounds(base_tm_, margin);
  routing::PerformanceEvaluator pool(g_, dags_, opt_.coyote.lp,
                                     routing::Normalization::kWithinDags,
                                     optu_engine_);
  pool.addPool(tm::cornerPool(box, opt_.pool));

  core::CoyoteOptions copt = opt_.coyote;
  copt.oracle_rounds = opt_.exact_oracle ? 2 : 0;
  const core::CoyoteResult pk = core::optimizeAgainstPool(g_, pool, &box, copt);

  if (opt_.exact_eval) {
    const auto exact = [&](const routing::RoutingConfig& cfg) {
      return routing::findWorstCaseDemand(g_, cfg, &box, opt_.coyote.lp)
          .ratio;
    };
    row.ecmp = exact(ecmp_);
    row.base = exact(base_routing_);
    row.oblivious = exact(oblivious_);
    row.partial = exact(pk.routing);
  } else {
    row.ecmp = pool.ratioFor(ecmp_);
    row.base = pool.ratioFor(base_routing_);
    row.oblivious = pool.ratioFor(oblivious_);
    row.partial = pool.ratioFor(pk.routing);
  }
  const lp::StatsSnapshot lp_delta = lp::statsSnapshot() - lp_before;
  row.lp_solves = lp_delta.solves;
  row.lp_pivots = lp_delta.iterations;
  return row;
}

std::vector<double> marginGrid(double max_margin, bool full) {
  std::vector<double> out;
  for (double m = 1.0; m <= max_margin + 1e-9; m += full ? 0.5 : 1.0) {
    out.push_back(m);
  }
  return out;
}

void printSchemeHeader(const char* network, const char* model) {
  std::printf("# %s, %s base matrix\n", network, model);
  std::printf("# ratios are worst-case link utilization relative to the\n");
  std::printf("# demands-aware optimum within the same augmented DAGs\n");
  std::printf("%-8s %-8s %-8s %-12s %-12s\n", "margin", "ECMP", "Base",
              "COYOTE-obl", "COYOTE-pk");
}

void printSchemeRow(const SchemeRow& r) {
  std::printf("%-8.1f %-8.2f %-8.2f %-12.2f %-12.2f\n", r.margin, r.ecmp,
              r.base, r.oblivious, r.partial);
}

}  // namespace coyote::exp
