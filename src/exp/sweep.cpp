#include "exp/sweep.hpp"

#include <algorithm>
#include <cstdio>

#include "lp/stats.hpp"
#include "util/require.hpp"

namespace coyote::exp {

NetworkSweep::NetworkSweep(const Graph& g, std::shared_ptr<const DagSet> dags,
                           const tm::TrafficMatrix& base_tm, SweepOptions opt,
                           std::vector<const te::Scheme*> schemes)
    : g_(g),
      dags_(std::move(dags)),
      base_tm_(base_tm),
      opt_(std::move(opt)),
      schemes_(schemes.empty() ? te::SchemeRegistry::builtin().defaults()
                               : std::move(schemes)),
      optu_engine_(std::make_shared<routing::OptuEngine>(g, dags_,
                                                         opt_.coyote.lp)) {
  require(!schemes_.empty(), "empty scheme list");
  // Margin-independent schemes are computed once, in list order (each
  // scheme's LP/optimizer work is a self-contained stage, so the sequence
  // -- and thus every lp_pivots count -- is independent of the margin grid
  // and of which other schemes ride along). The sweep's exact_oracle flag
  // decides the schemes' cutting-plane rounds (the pre-registry behavior:
  // forced, in either direction).
  core::CoyoteOptions copt = opt_.coyote;
  copt.oracle_rounds = opt_.exact_oracle ? 2 : 0;
  const te::SchemeContext ctx{g_, dags_, base_tm_, copt, nullptr, nullptr};
  intact_.reserve(schemes_.size());
  for (const te::Scheme* s : schemes_) {
    if (s->marginDependent()) {
      intact_.emplace_back(std::nullopt);
    } else {
      intact_.emplace_back(s->compute(ctx));
    }
  }
}

const routing::RoutingConfig& NetworkSweep::intactRouting(int i) const {
  require(i >= 0 && i < static_cast<int>(intact_.size()),
          "scheme index out of range");
  require(intact_[i].has_value(),
          "margin-dependent scheme has no cached intact routing");
  return *intact_[i];
}

SchemeRow NetworkSweep::run(double margin) const {
  const int n = static_cast<int>(schemes_.size());
  SchemeRow row;
  row.margin = margin;
  row.ratio.assign(n, 0.0);
  row.scheme_lp_solves.assign(n, 0);
  row.scheme_lp_pivots.assign(n, 0);

  const lp::StatsSnapshot lp_before = lp::statsSnapshot();
  const tm::DemandBounds box = tm::marginBounds(base_tm_, margin);
  routing::PerformanceEvaluator pool(g_, dags_, opt_.coyote.lp,
                                     routing::Normalization::kWithinDags,
                                     optu_engine_);
  if (opt_.threads != 0) pool.setThreads(opt_.threads);
  pool.addPool(tm::cornerPool(box, opt_.pool));

  core::CoyoteOptions copt = opt_.coyote;
  copt.oracle_rounds = opt_.exact_oracle ? 2 : 0;
  const te::SchemeContext ctx{g_, dags_, base_tm_, copt, &box, &pool};

  // Attributes the LP work of one scheme stage to its per-scheme counters.
  const auto attributed = [&row](int i, const auto& stage) {
    const lp::StatsSnapshot before = lp::statsSnapshot();
    stage();
    const lp::StatsSnapshot delta = lp::statsSnapshot() - before;
    row.scheme_lp_solves[i] += delta.solves;
    row.scheme_lp_pivots[i] += delta.iterations;
  };

  // Margin-dependent schemes are (re-)optimized first: their optimizer may
  // grow the shared pool with oracle cutting planes, and every scheme is
  // evaluated against the final pool (the pre-registry order of events).
  std::vector<std::optional<routing::RoutingConfig>> per_margin(n);
  for (int i = 0; i < n; ++i) {
    if (!schemes_[i]->marginDependent()) continue;
    attributed(i, [&] { per_margin[i] = schemes_[i]->compute(ctx); });
  }

  for (int i = 0; i < n; ++i) {
    const routing::RoutingConfig& cfg =
        per_margin[i].has_value() ? *per_margin[i] : *intact_[i];
    attributed(i, [&] {
      row.ratio[i] =
          opt_.exact_eval
              ? routing::findWorstCaseDemand(g_, cfg, &box, opt_.coyote.lp)
                    .ratio
              : pool.ratioFor(cfg);
    });
  }

  const lp::StatsSnapshot lp_delta = lp::statsSnapshot() - lp_before;
  row.lp_solves = lp_delta.solves;
  row.lp_pivots = lp_delta.iterations;
  return row;
}

std::vector<double> marginGrid(double max_margin, bool full) {
  // Margins scale an uncertainty box around the base matrix; < 1 is
  // meaningless (same precondition as FailureEvalOptions::margin).
  require(max_margin >= 1.0, "max_margin must be >= 1");
  // Integer-step generation: `m += 0.5` accumulation can land the last
  // margin at max_margin + epsilon and silently drop it.
  const int steps_per_unit = full ? 2 : 1;
  const int last = static_cast<int>((max_margin - 1.0) * steps_per_unit +
                                    1e-9);
  std::vector<double> out;
  out.reserve(last + 1);
  for (int i = 0; i <= last; ++i) {
    out.push_back(1.0 + static_cast<double>(i) / steps_per_unit);
  }
  return out;
}

SchemeTable::SchemeTable(std::vector<const te::Scheme*> schemes,
                         std::vector<LeadingColumn> leading)
    : schemes_(std::move(schemes)), leading_(std::move(leading)) {
  widths_.reserve(schemes_.size());
  for (const te::Scheme* s : schemes_) {
    // Wide enough for the display name plus one separating space, never
    // narrower than the classic 8-character ratio column.
    widths_.push_back(
        std::max<int>(8, static_cast<int>(std::string(s->display()).size()) +
                             2));
  }
}

void SchemeTable::printHeader() const {
  for (const LeadingColumn& c : leading_) {
    std::printf("%-*s ", c.width, c.title.c_str());
  }
  for (std::size_t i = 0; i < schemes_.size(); ++i) {
    std::printf("%-*s ", widths_[i], schemes_[i]->display());
  }
  std::printf("\n");
}

void SchemeTable::printRow(const std::vector<std::string>& leading,
                           const std::vector<double>& values,
                           const std::vector<char>* routable) const {
  require(leading.size() == leading_.size(), "leading cell count mismatch");
  require(values.size() == schemes_.size(), "value count mismatch");
  for (std::size_t i = 0; i < leading.size(); ++i) {
    std::printf("%-*s ", leading_[i].width, leading[i].c_str());
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (routable != nullptr && !(*routable)[i]) {
      std::printf("%-*s ", widths_[i], "n/a");
    } else {
      std::printf("%-*.2f ", widths_[i], values[i]);
    }
  }
  std::printf("\n");
}

void printSweepPreamble(const char* network, const char* model) {
  std::printf("# %s, %s base matrix\n", network, model);
  std::printf("# ratios are worst-case link utilization relative to the\n");
  std::printf("# demands-aware optimum within the same augmented DAGs\n");
}

}  // namespace coyote::exp
