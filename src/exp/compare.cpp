#include "exp/compare.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace coyote::exp {

namespace json = util::json;

bool isRunMetadata(const std::string& key);  // defined below

namespace {

void addFinding(CompareReport* report, CompareFinding::Kind kind,
                std::string scenario, std::string what) {
  report->findings.push_back(
      {std::move(scenario), std::move(what), kind});
}

bool numbersDiffer(double a, double b, double rel_tol) {
  if (a == b) return false;
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) / scale > rel_tol;
}

/// Solver-work telemetry (schema coyote-bench/2; since coyote-bench/4 this
/// also covers the per-scheme lp_scheme_solves/lp_scheme_pivots row
/// objects): deterministic for one binary but sensitive to toolchain/libm
/// differences, so it is reported informationally instead of gated as
/// drift.
bool isLpTelemetry(const std::string& key) { return key.rfind("lp_", 0) == 0; }

/// Memory telemetry (schema coyote-bench/6): peak-RSS probes are
/// allocator- and machine-sensitive, so like `lp_*` they are reported
/// informationally instead of gated as drift.
bool isMemTelemetry(const std::string& key) {
  return key.rfind("mem_", 0) == 0;
}

/// Candidate-only keys -- e.g. the rows of a scheme the baseline never
/// swept (schema coyote-bench/4 rows are dynamic over the scheme list) or
/// fields a newer schema added -- are surfaced as [INFO], never gated:
/// the drift walk is baseline-driven. `skip_metadata` additionally mutes
/// run-metadata keys (the top-level walk; metadata differs freely).
void reportCandidateOnly(const json::Value& base, const json::Value& cand,
                         const std::string& path, const std::string& scenario,
                         bool skip_metadata, CompareReport* report) {
  if (!base.isObject() || !cand.isObject()) return;
  for (const auto& [key, value] : cand.asObject()) {
    (void)value;
    if (isLpTelemetry(key) || isMemTelemetry(key)) continue;
    if (skip_metadata && isRunMetadata(key)) continue;
    if (base.find(key) == nullptr) {
      addFinding(report, CompareFinding::Kind::kInfo, scenario,
                 path.empty() ? key + ": candidate-only (not gated)"
                              : path + "." + key +
                                    ": candidate-only (not gated)");
    }
  }
}

/// Recursively compares numeric leaves of the row trees; `path` names the
/// offending field in findings.
void compareValues(const json::Value& base, const json::Value& cand,
                   const std::string& path, const std::string& scenario,
                   const CompareOptions& opt, CompareReport* report) {
  if (base.type() != cand.type()) {
    addFinding(report, CompareFinding::Kind::kDrift, scenario,
               path + ": type changed");
    return;
  }
  switch (base.type()) {
    case json::Value::Type::kNumber:
      if (numbersDiffer(base.asNumber(), cand.asNumber(),
                        opt.ratio_tolerance)) {
        std::ostringstream msg;
        msg << path << ": " << json::formatNumber(base.asNumber()) << " -> "
            << json::formatNumber(cand.asNumber());
        addFinding(report, CompareFinding::Kind::kDrift, scenario, msg.str());
      }
      return;
    case json::Value::Type::kArray: {
      const json::Array& ba = base.asArray();
      const json::Array& ca = cand.asArray();
      if (ba.size() != ca.size()) {
        addFinding(report, CompareFinding::Kind::kDrift, scenario,
                   path + ": length " + std::to_string(ba.size()) + " -> " +
                       std::to_string(ca.size()));
        return;
      }
      for (std::size_t i = 0; i < ba.size(); ++i) {
        compareValues(ba[i], ca[i], path + "[" + std::to_string(i) + "]",
                      scenario, opt, report);
      }
      return;
    }
    case json::Value::Type::kObject: {
      for (const auto& [key, value] : base.asObject()) {
        if (isLpTelemetry(key) || isMemTelemetry(key)) continue;
        const json::Value* other = cand.find(key);
        if (other == nullptr) {
          addFinding(report, CompareFinding::Kind::kDrift, scenario,
                     path + "." + key + ": missing in candidate");
          continue;
        }
        compareValues(value, *other, path + "." + key, scenario, opt, report);
      }
      reportCandidateOnly(base, cand, path, scenario,
                          /*skip_metadata=*/false, report);
      return;
    }
    default:
      if (!(base == cand)) {
        addFinding(report, CompareFinding::Kind::kDrift, scenario,
                   path + ": value changed");
      }
      return;
  }
}

}  // namespace

// Top-level members that legitimately differ between two runs of the
// same source tree: provenance, machine, options, and prose. Everything
// else (rows, ok, and the kind-specific summary fields like 'verified',
// 'fake_nodes', 'ecmp_gap_percent') is deterministic and gated --
// except `lp_*` solver telemetry (see isLpTelemetry) and candidate-only
// keys, which future schema revisions or extra --schemes selections may
// add: the drift walk is baseline-driven, so those are surfaced as
// non-failing [INFO] findings (reportCandidateOnly) and newer candidates
// stay forward-compatible.
bool isRunMetadata(const std::string& key) {
  static const char* const kKeys[] = {
      "schema", "scenario", "kind",    "description", "tags",
      "git",    "threads",  "timing",  "network",     "networks",
      "demand_model",       "full",    "exact",       "schemes",
  };
  for (const char* k : kKeys) {
    if (key == k) return true;
  }
  return false;
}

void compareDocuments(const json::Value& baseline, const json::Value& cand,
                      const CompareOptions& opt, CompareReport* report) {
  const std::string scenario = baseline.stringOr("scenario", "<unnamed>");
  ++report->compared;

  // Result drift: every deterministic field the baseline recorded must be
  // reproduced -- the rows plus any kind-specific summary members.
  if (baseline.find("rows") == nullptr || cand.find("rows") == nullptr) {
    addFinding(report, CompareFinding::Kind::kMalformed, scenario,
               "missing 'rows' array");
  }
  if (baseline.isObject()) {
    for (const auto& [key, value] : baseline.asObject()) {
      if (isRunMetadata(key) || isLpTelemetry(key) || isMemTelemetry(key)) {
        continue;
      }
      const json::Value* other = cand.find(key);
      if (other == nullptr) {
        addFinding(report, CompareFinding::Kind::kDrift, scenario,
                   key + ": missing in candidate");
        continue;
      }
      compareValues(value, *other, key, scenario, opt, report);
    }
    reportCandidateOnly(baseline, cand, /*path=*/"", scenario,
                        /*skip_metadata=*/true, report);
  }

  // Informational lp_pivots delta (never gated): the warm-start engine's
  // whole point is driving this number down, so surface it per scenario.
  {
    const double base_pivots = baseline.numberOr("lp_pivots", -1.0);
    const double cand_pivots = cand.numberOr("lp_pivots", -1.0);
    if (base_pivots >= 0.0 && cand_pivots >= 0.0) {
      std::ostringstream msg;
      msg << "lp_pivots " << json::formatNumber(base_pivots) << " -> "
          << json::formatNumber(cand_pivots);
      if (base_pivots > 0.0) {
        msg.precision(3);
        msg << " (" << (cand_pivots >= base_pivots ? "+" : "")
            << 100.0 * (cand_pivots / base_pivots - 1.0) << "%)";
      }
      addFinding(report, CompareFinding::Kind::kInfo, scenario, msg.str());
    }
  }

  // Informational peak-RSS delta (never gated, like lp_pivots): memory
  // growth across schema coyote-bench/6 runs is worth eyes, not a gate.
  {
    const double base_mem = baseline.numberOr("mem_peak_rss_mb", -1.0);
    const double cand_mem = cand.numberOr("mem_peak_rss_mb", -1.0);
    if (base_mem >= 0.0 && cand_mem >= 0.0) {
      std::ostringstream msg;
      msg.precision(4);
      msg << "mem_peak_rss_mb " << base_mem << " -> " << cand_mem;
      if (base_mem > 0.0) {
        msg.precision(3);
        msg << " (" << (cand_mem >= base_mem ? "+" : "")
            << 100.0 * (cand_mem / base_mem - 1.0) << "%)";
      }
      addFinding(report, CompareFinding::Kind::kInfo, scenario, msg.str());
    }
  }

  // Timing regression: gate on the median over repetitions.
  const json::Value* base_timing = baseline.find("timing");
  const json::Value* cand_timing = cand.find("timing");
  if (base_timing == nullptr || cand_timing == nullptr) {
    addFinding(report, CompareFinding::Kind::kMalformed, scenario,
               "missing 'timing' object");
    return;
  }
  const double base_median = base_timing->numberOr("median_seconds", -1.0);
  const double cand_median = cand_timing->numberOr("median_seconds", -1.0);
  if (base_median < 0.0 || cand_median < 0.0) {
    addFinding(report, CompareFinding::Kind::kMalformed, scenario,
               "missing 'timing.median_seconds'");
    return;
  }
  const double gate_base = std::max(base_median, opt.min_gate_seconds);
  if (gate_base > 0.0 &&
      cand_median > gate_base * (1.0 + opt.max_regression)) {
    std::ostringstream msg;
    msg.precision(3);
    msg << "median " << base_median << "s -> " << cand_median << "s (+"
        << 100.0 * (cand_median / gate_base - 1.0) << "% over the gated "
        << gate_base << "s, limit +" << 100.0 * opt.max_regression << "%)";
    addFinding(report, CompareFinding::Kind::kRegression, scenario,
               msg.str());
  }

  // Serve-daemon gates (kServe scenarios publish events_per_second and
  // event_p99_ms under "timing"). Silent when either side lacks the keys
  // so pre-serve baselines keep comparing cleanly; timing is run
  // metadata, so these fields are never drift-gated.
  const double base_p99 = base_timing->numberOr("event_p99_ms", -1.0);
  const double cand_p99 = cand_timing->numberOr("event_p99_ms", -1.0);
  if (base_p99 >= 0.0 && cand_p99 >= 0.0) {
    // Floor the gate like median_seconds: sub-floor latencies are noise.
    const double gate_p99 = std::max(base_p99, 1000.0 * opt.min_gate_seconds);
    if (gate_p99 > 0.0 && cand_p99 > gate_p99 * (1.0 + opt.max_regression)) {
      std::ostringstream msg;
      msg.precision(3);
      msg << "event p99 " << base_p99 << "ms -> " << cand_p99 << "ms (+"
          << 100.0 * (cand_p99 / gate_p99 - 1.0) << "% over the gated "
          << gate_p99 << "ms, limit +" << 100.0 * opt.max_regression << "%)";
      addFinding(report, CompareFinding::Kind::kRegression, scenario,
                 msg.str());
    }
  }
  const double base_eps = base_timing->numberOr("events_per_second", -1.0);
  const double cand_eps = cand_timing->numberOr("events_per_second", -1.0);
  if (base_eps > 0.0 && cand_eps >= 0.0) {
    // Throughputs above 1/min_gate_seconds mean sub-floor per-event cost;
    // cap the gate there so noise-level traces cannot fail the gate.
    const double gate_eps = std::min(base_eps, 1.0 / opt.min_gate_seconds);
    if (cand_eps < gate_eps / (1.0 + opt.max_regression)) {
      std::ostringstream msg;
      msg.precision(3);
      msg << "throughput " << base_eps << " -> " << cand_eps
          << " events/s (-" << 100.0 * (1.0 - cand_eps / gate_eps)
          << "% under the gated " << gate_eps << " events/s, limit -"
          << 100.0 * (1.0 - 1.0 / (1.0 + opt.max_regression)) << "%)";
      addFinding(report, CompareFinding::Kind::kRegression, scenario,
                 msg.str());
    }
  }
}

CompareReport compareBenchDirs(const std::string& baseline_dir,
                               const std::string& candidate_dir,
                               const CompareOptions& opt) {
  namespace fs = std::filesystem;
  CompareReport report;

  const auto collect = [&report](const std::string& dir) {
    std::map<std::string, fs::path> out;  // sorted for stable reports
    if (!fs::is_directory(dir)) {
      addFinding(&report, CompareFinding::Kind::kMalformed, dir,
                 "not a directory");
      return out;
    }
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        out[name] = entry.path();
      }
    }
    return out;
  };

  const auto baseline_files = collect(baseline_dir);
  const auto candidate_files = collect(candidate_dir);
  if (baseline_files.empty()) {
    addFinding(&report, CompareFinding::Kind::kMalformed, baseline_dir,
               "no BENCH_*.json files");
  }

  const auto load = [&report](const fs::path& path,
                              json::Value* out) -> bool {
    std::ifstream file(path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    try {
      *out = json::parse(buffer.str());
      return true;
    } catch (const json::Error& e) {
      addFinding(&report, CompareFinding::Kind::kMalformed,
                 path.filename().string(), e.what());
      return false;
    }
  };

  for (const auto& [name, base_path] : baseline_files) {
    const auto it = candidate_files.find(name);
    if (it == candidate_files.end()) {
      // A baseline scenario the candidate never produced is a hard
      // failure under require_all (the default): a run that silently
      // drops a gated scenario -- a deregistered serve replay, a
      // filter typo -- must not pass as "no regressions found".
      if (opt.require_all) {
        addFinding(&report, CompareFinding::Kind::kMissing, name,
                   "present in baseline but not in candidate");
      }
      continue;
    }
    json::Value base, cand;
    if (!load(base_path, &base) || !load(it->second, &cand)) continue;
    compareDocuments(base, cand, opt, &report);
  }
  // Candidate-only scenario files are informational, mirroring the
  // candidate-only *field* policy: the walk is baseline-driven, so a
  // newly registered scenario shows up here (and stays visible in the
  // report) until its baseline is committed.
  for (const auto& [name, path] : candidate_files) {
    (void)path;
    if (baseline_files.find(name) == baseline_files.end()) {
      addFinding(&report, CompareFinding::Kind::kInfo, name,
                 "candidate-only scenario (not gated; commit a baseline "
                 "to start gating it)");
    }
  }
  return report;
}

std::string CompareReport::text() const {
  std::ostringstream out;
  out << "compared " << compared << " scenario(s): ";
  int regressions = 0, drifts = 0, infos = 0, other = 0;
  for (const CompareFinding& f : findings) {
    switch (f.kind) {
      case CompareFinding::Kind::kRegression:
        ++regressions;
        break;
      case CompareFinding::Kind::kDrift:
        ++drifts;
        break;
      case CompareFinding::Kind::kInfo:
        ++infos;
        break;
      default:
        ++other;
    }
  }
  if (pass()) {
    out << "OK\n";
  } else {
    out << regressions << " regression(s), " << drifts << " drift(s), "
        << other << " other problem(s)\n";
  }
  for (const CompareFinding& f : findings) {
    const char* kind = "";
    switch (f.kind) {
      case CompareFinding::Kind::kRegression:
        kind = "REGRESSION";
        break;
      case CompareFinding::Kind::kDrift:
        kind = "DRIFT";
        break;
      case CompareFinding::Kind::kMissing:
        kind = "MISSING";
        break;
      case CompareFinding::Kind::kMalformed:
        kind = "MALFORMED";
        break;
      case CompareFinding::Kind::kInfo:
        kind = "INFO";
        break;
    }
    out << "  [" << kind << "] " << f.scenario << ": " << f.what << "\n";
  }
  return out.str();
}

}  // namespace coyote::exp
