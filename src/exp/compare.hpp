// Diffs two directories of BENCH_<scenario>.json files (see runner.hpp):
// the committed baseline snapshot vs a fresh run. Two failure classes:
//
//  * timing regression -- a scenario's median wall time exceeds the
//    baseline's by more than `max_regression` (relative; 0.25 = +25%).
//  * result drift -- any numeric row field differs from the baseline by
//    more than `ratio_tolerance` (relative). Rows are deterministic for a
//    given source tree, so drift means behavior changed, not noise.
//
// This is the library behind the bench_compare CLI that the CI bench-smoke
// job runs; it is pure (no exit()) so tests can exercise it directly.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace coyote::exp {

struct CompareOptions {
  /// Fail when candidate median_seconds > baseline * (1 + max_regression).
  double max_regression = 0.25;
  /// Relative tolerance for numeric row fields; exceeding it is "drift".
  double ratio_tolerance = 1e-9;
  /// Fail when a baseline scenario has no candidate file.
  bool require_all = true;
  /// Timing floor: the gate compares against max(baseline median,
  /// min_gate_seconds), so sub-millisecond scenarios (where a single
  /// scheduler preemption exceeds any relative threshold) only fail on
  /// absolute blowups, while genuine hangs are still caught.
  double min_gate_seconds = 0.01;
};

struct CompareFinding {
  std::string scenario;
  std::string what;  ///< human-readable, one line
  /// kInfo findings (e.g. per-scenario lp_pivots deltas) are printed but
  /// never fail the gate.
  enum class Kind { kRegression, kDrift, kMissing, kMalformed, kInfo } kind;
};

struct CompareReport {
  int compared = 0;  ///< scenarios present on both sides
  std::vector<CompareFinding> findings;

  [[nodiscard]] bool pass() const {
    for (const CompareFinding& f : findings) {
      if (f.kind != CompareFinding::Kind::kInfo) return false;
    }
    return true;
  }
  /// Multi-line summary suitable for CI logs.
  [[nodiscard]] std::string text() const;
};

/// Compares two parsed BENCH documents for one scenario.
void compareDocuments(const util::json::Value& baseline,
                      const util::json::Value& candidate,
                      const CompareOptions& opt, CompareReport* report);

/// Compares every BENCH_*.json under `baseline_dir` against its
/// counterpart in `candidate_dir`.
[[nodiscard]] CompareReport compareBenchDirs(const std::string& baseline_dir,
                                             const std::string& candidate_dir,
                                             const CompareOptions& opt = {});

}  // namespace coyote::exp
