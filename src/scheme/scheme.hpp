// First-class TE schemes (the rows of the paper's comparisons).
//
// A te::Scheme packages everything the experiment layers need to treat a
// routing scheme generically:
//
//  * identity -- a stable machine key ("ecmp", "semi-oblivious"; the JSON
//    row key and the `--schemes` selector) and a display name for tables;
//  * computation -- compute() builds the scheme's routing configuration on
//    the *intact* network from a SchemeContext. Margin-independent schemes
//    (marginDependent() == false) are computed once per network and
//    re-evaluated under every uncertainty margin; margin-dependent ones
//    (COYOTE-pk) are re-optimized per margin against the context's
//    evaluation pool;
//  * failure reaction -- how the scheme responds to a link failure in
//    deployment: OSPF reconvergence (kReconverge; every router re-runs SPF
//    on the survivors) or local repair of its precomputed static DAGs
//    (kRepairDags; see failure/degrade.hpp). kReconverge schemes provide
//    the post-failure configuration via reconverge();
//  * the OSPF substrate -- ospfSubstrate() returns the graph (possibly
//    re-weighted) whose link weights the scheme assumes OSPF is running
//    with. It anchors both reconvergence and the fibbing translation
//    (lies are priced against the substrate's real IGP distances).
//
// The four paper schemes plus the extension schemes are registered in
// SchemeRegistry::builtin() (registry.hpp); NetworkSweep, the failure
// evaluator, and the experiment runner are generic over scheme lists.
#pragma once

#include <memory>
#include <string>

#include "core/coyote.hpp"
#include "graph/dag.hpp"
#include "graph/graph.hpp"
#include "routing/config.hpp"
#include "routing/evaluator.hpp"
#include "tm/traffic_matrix.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::te {

/// Everything compute() may draw on. `box` and `pool` describe the current
/// uncertainty margin and its corner-pool evaluator; they are only
/// guaranteed non-null for margin-dependent schemes (margin-independent
/// schemes must not use them -- their configuration may be cached across
/// margins).
struct SchemeContext {
  const Graph& g;
  std::shared_ptr<const DagSet> dags;  ///< augmented DAGs of g's weights
  const tm::TrafficMatrix& base_tm;
  /// Optimizer options, final: schemes use them as-is (in particular
  /// `oracle_rounds` -- the caller decides whether the exact slave-LP
  /// cutting-plane oracle runs; NetworkSweep derives it from its
  /// exact_oracle flag, the failure evaluator passes its options through).
  core::CoyoteOptions coyote;
  const tm::DemandBounds* box = nullptr;            ///< margin-dependent only
  routing::PerformanceEvaluator* pool = nullptr;    ///< margin-dependent only
  /// When non-null, schemes that run the splitting optimizer add the
  /// iterations its patience early stop skipped (see
  /// core::CoyoteResult::splitting_iters_saved). The serve daemon passes
  /// a counter here -- together with coyote.warm_init it is how a warm
  /// `reoptimize` reports how much of the budget the previous ratios
  /// saved. Other schemes leave it untouched.
  int* splitting_iters_saved = nullptr;
};

/// How a scheme reacts to a link failure in deployment.
enum class FailureReaction {
  kReconverge,  ///< OSPF floods the withdrawal; SPF re-runs (ECMP family)
  kRepairDags,  ///< static per-destination DAGs repaired locally (COYOTE family)
};

[[nodiscard]] const char* reactionName(FailureReaction r);

class Scheme {
 public:
  virtual ~Scheme() = default;

  /// Stable machine key: the JSON row key, the `--schemes` selector, and
  /// the failure-stats map key. Lowercase [a-z0-9-], unique per registry.
  [[nodiscard]] virtual const char* key() const = 0;
  /// Human-readable column header ("COYOTE-obl").
  [[nodiscard]] virtual const char* display() const = 0;
  /// One-line description for `--list-schemes`.
  [[nodiscard]] virtual const char* describe() const = 0;

  /// True when the configuration depends on the uncertainty margin (the
  /// scheme is re-optimized per margin point); false when it is computed
  /// once per network and merely re-evaluated under every margin.
  [[nodiscard]] virtual bool marginDependent() const { return false; }

  [[nodiscard]] virtual FailureReaction reaction() const {
    return FailureReaction::kRepairDags;
  }

  /// The intact-network routing configuration.
  [[nodiscard]] virtual routing::RoutingConfig compute(
      const SchemeContext& ctx) const = 0;

  /// The graph whose weights the scheme's OSPF substrate runs with
  /// (identity for every scheme that adopts the operator's configured
  /// weights; invcap-ecmp re-weights). Used by reconverge() and by the
  /// fibbing round-trip: lies realizing the scheme's DAGs are priced
  /// against this graph's IGP distances.
  [[nodiscard]] virtual Graph ospfSubstrate(const Graph& g) const;

  /// Post-failure configuration for kReconverge schemes: OSPF SPF re-run
  /// on the degraded graph (zero-capacity edges are withdrawn), over the
  /// scheme's substrate weights. Throws std::logic_error for kRepairDags
  /// schemes -- their post-failure config is failure::repairRouting of the
  /// intact one.
  [[nodiscard]] virtual routing::RoutingConfig reconverge(
      const Graph& degraded) const;
};

/// Copy of `g` with every live (positive-capacity) edge's weight set to
/// max_capacity / capacity -- the classic "inverse capacity" OSPF default.
/// Zero-capacity (failed) edges keep their weight: SPF skips them anyway.
[[nodiscard]] Graph inverseCapacityReweighted(const Graph& g);

/// Factories for the built-in schemes (registered by
/// SchemeRegistry::builtin(); exposed for tests that build registries).
[[nodiscard]] std::unique_ptr<const Scheme> makeEcmpScheme();
[[nodiscard]] std::unique_ptr<const Scheme> makeBaseScheme();
[[nodiscard]] std::unique_ptr<const Scheme> makeObliviousScheme();
[[nodiscard]] std::unique_ptr<const Scheme> makePartialScheme();
[[nodiscard]] std::unique_ptr<const Scheme> makeInvCapEcmpScheme();
[[nodiscard]] std::unique_ptr<const Scheme> makeSemiObliviousScheme();

}  // namespace coyote::te
