#include "scheme/registry.hpp"

#include <stdexcept>

namespace coyote::te {

namespace {

bool safeKey(const std::string& key) {
  if (key.empty()) return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

/// BENCH row fields the runner emits next to the per-scheme ratios; a
/// scheme keyed like one of these would silently overwrite that field in
/// the JSON (lp_* cannot collide: keys have no '_').
bool reservedKey(const std::string& key) {
  static const char* const kReserved[] = {
      "margin", "network", "exact", "label", "evaluated", "unroutable",
      "moves", "ideal", "quantized",
  };
  for (const char* r : kReserved) {
    if (key == r) return true;
  }
  return false;
}

}  // namespace

const SchemeRegistry& SchemeRegistry::builtin() {
  static const SchemeRegistry* const kRegistry = [] {
    auto* reg = new SchemeRegistry();
    // The paper's comparison, in row order.
    reg->add(makeEcmpScheme(), /*default_scheme=*/true);
    reg->add(makeBaseScheme(), /*default_scheme=*/true);
    reg->add(makeObliviousScheme(), /*default_scheme=*/true);
    reg->add(makePartialScheme(), /*default_scheme=*/true);
    // Extension schemes: selected via --schemes, never part of defaults().
    reg->add(makeInvCapEcmpScheme());
    reg->add(makeSemiObliviousScheme());
    return reg;
  }();
  return *kRegistry;
}

void SchemeRegistry::add(std::unique_ptr<const Scheme> scheme,
                         bool default_scheme) {
  if (scheme == nullptr) throw std::invalid_argument("null scheme");
  const std::string key = scheme->key();
  if (!safeKey(key)) {
    throw std::invalid_argument("unsafe scheme key '" + key +
                                "' (want lowercase [a-z0-9-])");
  }
  if (reservedKey(key)) {
    throw std::invalid_argument("reserved scheme key '" + key +
                                "' (collides with a BENCH row field)");
  }
  if (find(key) != nullptr) {
    throw std::invalid_argument("duplicate scheme key '" + key + "'");
  }
  all_.push_back(scheme.get());
  if (default_scheme) defaults_.push_back(scheme.get());
  owned_.push_back(std::move(scheme));
}

const Scheme* SchemeRegistry::find(const std::string& key) const {
  for (const Scheme* s : all_) {
    if (key == s->key()) return s;
  }
  return nullptr;
}

std::vector<const Scheme*> SchemeRegistry::resolve(
    const std::vector<std::string>& keys) const {
  if (keys.empty()) return defaults_;
  std::vector<const Scheme*> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    const Scheme* s = find(key);
    if (s == nullptr) {
      throw std::invalid_argument("unknown scheme '" + key +
                                  "' (see --list-schemes)");
    }
    for (const Scheme* have : out) {
      if (have == s) {
        // A repeated key would compute the scheme twice and emit
        // duplicate JSON row fields -- reject like every other bad key.
        throw std::invalid_argument("duplicate scheme '" + key +
                                    "' in selection");
      }
    }
    out.push_back(s);
  }
  return out;
}

std::vector<const Scheme*> SchemeRegistry::parseList(
    const std::string& csv) const {
  // Tokens are trimmed, not space-stripped: "ecm p" must stay the unknown
  // key "ecm p" (a hard error naming it), never silently become "ecmp".
  std::vector<std::string> keys;
  std::string cur;
  const auto flush = [&] {
    const std::size_t begin = cur.find_first_not_of(' ');
    if (begin != std::string::npos) {
      keys.push_back(cur.substr(begin, cur.find_last_not_of(' ') - begin + 1));
    }
    cur.clear();
  };
  for (const char c : csv) {
    if (c == ',') {
      flush();
    } else {
      cur += c;
    }
  }
  flush();
  return resolve(keys);
}

}  // namespace coyote::te
