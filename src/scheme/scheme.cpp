#include "scheme/scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/dag_builder.hpp"
#include "core/splitting_optimizer.hpp"
#include "failure/degrade.hpp"
#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "util/require.hpp"

namespace coyote::te {

const char* reactionName(FailureReaction r) {
  switch (r) {
    case FailureReaction::kReconverge:
      return "reconverge";
    case FailureReaction::kRepairDags:
      return "repair-dags";
  }
  return "unknown";
}

Graph Scheme::ospfSubstrate(const Graph& g) const { return g; }

routing::RoutingConfig Scheme::reconverge(const Graph& degraded) const {
  if (reaction() != FailureReaction::kReconverge) {
    throw std::logic_error(std::string("scheme '") + key() +
                           "' repairs its DAGs; it does not reconverge");
  }
  // OSPF SPF re-run on the survivors, over the scheme's substrate weights.
  return failure::reconvergedEcmp(ospfSubstrate(degraded));
}

Graph inverseCapacityReweighted(const Graph& g) {
  Graph out = g;
  double max_cap = 0.0;
  for (const Edge& e : out.edges()) max_cap = std::max(max_cap, e.capacity);
  if (max_cap <= 0.0) return out;
  for (EdgeId e = 0; e < out.numEdges(); ++e) {
    const double cap = out.edge(e).capacity;
    if (cap > 0.0) out.setWeight(e, max_cap / cap);
  }
  return out;
}

namespace {

// --- the paper's four schemes -----------------------------------------

class EcmpScheme final : public Scheme {
 public:
  const char* key() const override { return "ecmp"; }
  const char* display() const override { return "ECMP"; }
  const char* describe() const override {
    return "traditional TE: equal splitting over shortest paths of the "
           "configured link weights";
  }
  FailureReaction reaction() const override {
    return FailureReaction::kReconverge;
  }
  routing::RoutingConfig compute(const SchemeContext& ctx) const override {
    return routing::ecmpConfig(ctx.g, ctx.dags);
  }
};

class BaseScheme final : public Scheme {
 public:
  const char* key() const override { return "base"; }
  const char* display() const override { return "Base"; }
  const char* describe() const override {
    return "demands-aware optimum (within the augmented DAGs) for the base "
           "matrix only";
  }
  routing::RoutingConfig compute(const SchemeContext& ctx) const override {
    return routing::optimalRoutingForDemand(ctx.g, ctx.dags, ctx.base_tm,
                                            ctx.coyote.lp)
        .routing;
  }
};

class ObliviousScheme final : public Scheme {
 public:
  const char* key() const override { return "oblivious"; }
  const char* display() const override { return "COYOTE-obl"; }
  const char* describe() const override {
    return "COYOTE with no demand knowledge: optimized against a pool "
           "standing in for all matrices";
  }
  routing::RoutingConfig compute(const SchemeContext& ctx) const override {
    core::CoyoteResult res = core::coyoteOblivious(ctx.g, ctx.dags, ctx.coyote);
    if (ctx.splitting_iters_saved != nullptr) {
      *ctx.splitting_iters_saved += res.splitting_iters_saved;
    }
    return std::move(res.routing);
  }
};

class PartialScheme final : public Scheme {
 public:
  const char* key() const override { return "partial"; }
  const char* display() const override { return "COYOTE-pk"; }
  const char* describe() const override {
    return "COYOTE partial knowledge: re-optimized per margin against the "
           "uncertainty box's corner pool";
  }
  bool marginDependent() const override { return true; }
  routing::RoutingConfig compute(const SchemeContext& ctx) const override {
    require(ctx.pool != nullptr && ctx.box != nullptr,
            "margin-dependent scheme needs the margin's box and pool");
    core::CoyoteResult res =
        core::optimizeAgainstPool(ctx.g, *ctx.pool, ctx.box, ctx.coyote);
    if (ctx.splitting_iters_saved != nullptr) {
      *ctx.splitting_iters_saved += res.splitting_iters_saved;
    }
    return std::move(res.routing);
  }
};

// --- extension schemes (beyond the paper's comparison) ----------------

class InvCapEcmpScheme final : public Scheme {
 public:
  const char* key() const override { return "invcap-ecmp"; }
  const char* display() const override { return "invcap-ECMP"; }
  const char* describe() const override {
    return "ECMP over inverse-capacity OSPF weights (the classic operator "
           "default), whatever weights the topology carries";
  }
  FailureReaction reaction() const override {
    return FailureReaction::kReconverge;
  }
  Graph ospfSubstrate(const Graph& g) const override {
    return inverseCapacityReweighted(g);
  }
  routing::RoutingConfig compute(const SchemeContext& ctx) const override {
    // The config lives over the substrate's own augmented DAGs (Dags hold
    // ids only, so it evaluates directly on the original graph). On
    // topologies already carrying inverse-capacity weights this reproduces
    // plain ECMP exactly.
    const Graph reweighted = inverseCapacityReweighted(ctx.g);
    return routing::ecmpConfig(reweighted,
                               core::augmentedDagsShared(reweighted));
  }
};

class SemiObliviousScheme final : public Scheme {
 public:
  const char* key() const override { return "semi-oblivious"; }
  const char* display() const override { return "COYOTE-semi"; }
  const char* describe() const override {
    return "Kulfi-style semi-oblivious: COYOTE-oblivious DAG structure, "
           "splits re-optimized for the base matrix only";
  }
  routing::RoutingConfig compute(const SchemeContext& ctx) const override {
    // Start from the demand-oblivious optimum (same options as the
    // 'oblivious' scheme, so both rows share one structure in one run),
    // then re-tune the splitting ratios for the base matrix alone -- a
    // middle point between 'base' (fully demand-aware) and 'partial'
    // (box-aware): the structure is oblivious, only the rates adapt, and
    // nothing depends on the margin.
    core::CoyoteResult obl = core::coyoteOblivious(ctx.g, ctx.dags, ctx.coyote);
    routing::PerformanceEvaluator eval(ctx.g, ctx.dags, ctx.coyote.lp);
    eval.addMatrix(ctx.base_tm);
    int used = 0;
    routing::RoutingConfig cfg = core::optimizeSplitting(
        ctx.g, eval, obl.routing, ctx.coyote.splitting, &used);
    if (ctx.splitting_iters_saved != nullptr) {
      *ctx.splitting_iters_saved += obl.splitting_iters_saved +
                                    (ctx.coyote.splitting.iterations - used);
    }
    return cfg;
  }
};

}  // namespace

std::unique_ptr<const Scheme> makeEcmpScheme() {
  return std::make_unique<EcmpScheme>();
}
std::unique_ptr<const Scheme> makeBaseScheme() {
  return std::make_unique<BaseScheme>();
}
std::unique_ptr<const Scheme> makeObliviousScheme() {
  return std::make_unique<ObliviousScheme>();
}
std::unique_ptr<const Scheme> makePartialScheme() {
  return std::make_unique<PartialScheme>();
}
std::unique_ptr<const Scheme> makeInvCapEcmpScheme() {
  return std::make_unique<InvCapEcmpScheme>();
}
std::unique_ptr<const Scheme> makeSemiObliviousScheme() {
  return std::make_unique<SemiObliviousScheme>();
}

}  // namespace coyote::te
