// Registry of TE schemes (scheme.hpp): the built-in corpus the experiment
// layers draw from, plus an explicit-construction form for tests.
//
// Keys are the contract: BENCH JSON row fields, `--schemes` selectors, and
// failure-stats map keys are all registry keys, and bench_compare matches
// rows across runs by them. Registration rejects duplicate or unsafe keys;
// lookups of unknown keys in resolve()/parseList() throw with the
// offending key named, so a CLI typo is a hard error, never a silently
// empty sweep.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scheme/scheme.hpp"

namespace coyote::te {

class SchemeRegistry {
 public:
  /// Empty registry (tests register their own schemes).
  SchemeRegistry() = default;

  /// The process-wide registry: the four paper schemes (in the paper's row
  /// order, flagged as the default sweep set) plus the extension schemes
  /// invcap-ecmp and semi-oblivious.
  static const SchemeRegistry& builtin();

  /// Registers a scheme. Throws std::invalid_argument on a duplicate or
  /// unsafe key (keys are lowercase [a-z0-9-]: they become JSON fields and
  /// CLI selectors). `default_scheme` adds it to defaults().
  void add(std::unique_ptr<const Scheme> scheme, bool default_scheme = false);

  [[nodiscard]] const Scheme* find(const std::string& key) const;

  /// Every registered scheme, in registration order.
  [[nodiscard]] const std::vector<const Scheme*>& all() const { return all_; }

  /// The default sweep set (the paper's four-scheme comparison).
  [[nodiscard]] const std::vector<const Scheme*>& defaults() const {
    return defaults_;
  }

  /// Resolves keys to schemes, preserving order; an empty list resolves to
  /// defaults(). Throws std::invalid_argument naming the first unknown key.
  [[nodiscard]] std::vector<const Scheme*> resolve(
      const std::vector<std::string>& keys) const;

  /// resolve() over a comma-separated list ("ecmp,partial"); empty input
  /// resolves to defaults(). Throws like resolve().
  [[nodiscard]] std::vector<const Scheme*> parseList(
      const std::string& csv) const;

 private:
  std::vector<std::unique_ptr<const Scheme>> owned_;
  std::vector<const Scheme*> all_;
  std::vector<const Scheme*> defaults_;
};

}  // namespace coyote::te
