#include "routing/config.hpp"

#include <cmath>
#include <string>

namespace coyote::routing {

RoutingConfig::RoutingConfig(const Graph& g, std::shared_ptr<const DagSet> dags)
    : dags_(std::move(dags)), num_nodes_(g.numNodes()), num_edges_(g.numEdges()) {
  require(dags_ != nullptr, "null dag set");
  require(static_cast<int>(dags_->size()) == num_nodes_,
          "dag set must contain one dag per destination");
  for (NodeId t = 0; t < num_nodes_; ++t) {
    require((*dags_)[t].dest() == t, "dag set must be indexed by destination");
  }
  ratios_.assign(static_cast<std::size_t>(num_nodes_) * num_edges_, 0.0);
}

RoutingConfig RoutingConfig::uniform(const Graph& g,
                                     std::shared_ptr<const DagSet> dags) {
  RoutingConfig cfg(g, std::move(dags));
  for (NodeId t = 0; t < cfg.num_nodes_; ++t) {
    const Dag& dag = (*cfg.dags_)[t];
    for (NodeId u = 0; u < cfg.num_nodes_; ++u) {
      if (u == t) continue;
      const auto& out = dag.outEdges(u);
      if (out.empty()) continue;
      const double r = 1.0 / static_cast<double>(out.size());
      for (const EdgeId e : out) cfg.ratios_[cfg.index(t, e)] = r;
    }
  }
  return cfg;
}

void RoutingConfig::setRatio(NodeId t, EdgeId e, double value) {
  require(value >= 0.0 && std::isfinite(value), "ratio must be >= 0");
  require((*dags_)[t].contains(e), "ratio set on edge outside the DAG");
  ratios_[index(t, e)] = value;
}

void RoutingConfig::normalize(const Graph& g, double eps) {
  for (NodeId t = 0; t < num_nodes_; ++t) {
    const Dag& dag = (*dags_)[t];
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (u == t) continue;
      const auto& out = dag.outEdges(u);
      if (out.empty()) continue;
      double sum = 0.0;
      for (const EdgeId e : out) sum += ratios_[index(t, e)];
      if (sum > eps) {
        for (const EdgeId e : out) ratios_[index(t, e)] /= sum;
      } else if (dag.reachesDest(u)) {
        const double r = 1.0 / static_cast<double>(out.size());
        for (const EdgeId e : out) ratios_[index(t, e)] = r;
      }
    }
  }
  (void)g;
}

void RoutingConfig::validate(const Graph& g, double tol) const {
  for (NodeId t = 0; t < num_nodes_; ++t) {
    const Dag& dag = (*dags_)[t];
    for (EdgeId e = 0; e < num_edges_; ++e) {
      const double r = ratios_[index(t, e)];
      ensure(r >= -tol, "negative splitting ratio");
      if (!dag.contains(e)) {
        ensure(r <= tol, "positive ratio on edge outside DAG for t=" +
                             g.nodeName(t));
      }
    }
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (u == t) continue;
      const auto& out = dag.outEdges(u);
      if (out.empty() || !dag.reachesDest(u)) continue;
      double sum = 0.0;
      for (const EdgeId e : out) sum += ratios_[index(t, e)];
      ensure(std::abs(sum - 1.0) <= tol,
             "splitting ratios at node " + g.nodeName(u) + " toward " +
                 g.nodeName(t) + " sum to " + std::to_string(sum));
    }
  }
}

std::size_t RoutingConfig::index(NodeId t, EdgeId e) const {
  require(t >= 0 && t < num_nodes_, "destination out of range");
  require(e >= 0 && e < num_edges_, "edge out of range");
  return static_cast<std::size_t>(t) * num_edges_ + e;
}

}  // namespace coyote::routing
