// Traditional TE with ECMP (Sec. II): traffic to each destination follows
// the shortest-path DAG induced by the configured link weights and is split
// *equally* among the next-hops on shortest paths.
#pragma once

#include <memory>

#include "graph/dijkstra.hpp"
#include "routing/config.hpp"

namespace coyote::routing {

/// Builds the ECMP routing configuration for the graph's current link
/// weights, expressed over the given DAG set (each shortest-path edge must
/// be contained in the corresponding DAG -- true by construction when `dags`
/// are the augmented DAGs built from the same weights). Ratios are 1/k over
/// the k ECMP next-hops and 0 on the remaining DAG edges, which makes ECMP
/// a point of COYOTE's solution space (Sec. V-B).
[[nodiscard]] RoutingConfig ecmpConfig(const Graph& g,
                                       std::shared_ptr<const DagSet> dags);

/// Shortest-path DAG set for the current weights (one DAG per destination).
[[nodiscard]] DagSet shortestPathDags(const Graph& g);

}  // namespace coyote::routing
