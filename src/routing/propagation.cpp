#include "routing/propagation.hpp"

#include <limits>

namespace coyote::routing {

void accumulateDestinationLoads(const Graph& g, const RoutingConfig& cfg,
                                const tm::TrafficMatrix& d, NodeId t,
                                LinkLoads& loads) {
  require(static_cast<int>(loads.size()) == g.numEdges(), "bad loads size");
  const Dag& dag = cfg.dags()[t];
  std::vector<double> inflow(g.numNodes(), 0.0);
  for (NodeId s = 0; s < g.numNodes(); ++s) {
    if (s != t) inflow[s] = d.at(s, t);
  }
  for (const NodeId u : dag.topoOrder()) {
    if (u == t || inflow[u] <= 0.0) continue;
    for (const EdgeId e : dag.outEdges(u)) {
      const double flow = inflow[u] * cfg.ratio(t, e);
      if (flow <= 0.0) continue;
      loads[e] += flow;
      inflow[g.edge(e).dst] += flow;
    }
  }
}

LinkLoads computeLoads(const Graph& g, const RoutingConfig& cfg,
                       const tm::TrafficMatrix& d) {
  require(d.numNodes() == g.numNodes(), "matrix/graph size mismatch");
  LinkLoads loads(g.numEdges(), 0.0);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    accumulateDestinationLoads(g, cfg, d, t, loads);
  }
  return loads;
}

double maxLinkUtilization(const Graph& g, const LinkLoads& loads) {
  require(static_cast<int>(loads.size()) == g.numEdges(), "bad loads size");
  double mx = 0.0;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const double cap = g.edge(e).capacity;
    if (cap <= 0.0) {
      // Failed link (src/failure/): idle is fine, any load is a routing
      // that forwards into a dead link -- infinite utilization, not 0/0.
      if (loads[e] > 0.0) return std::numeric_limits<double>::infinity();
      continue;
    }
    mx = std::max(mx, loads[e] / cap);
  }
  return mx;
}

double maxLinkUtilization(const Graph& g, const RoutingConfig& cfg,
                          const tm::TrafficMatrix& d) {
  return maxLinkUtilization(g, computeLoads(g, cfg, d));
}

std::vector<double> sourceFractions(const Graph& g, const RoutingConfig& cfg,
                                    NodeId s, NodeId t) {
  require(s >= 0 && s < g.numNodes() && t >= 0 && t < g.numNodes(),
          "node out of range");
  const Dag& dag = cfg.dags()[t];
  std::vector<double> f(g.numNodes(), 0.0);
  if (s == t) return f;
  f[s] = 1.0;
  for (const NodeId u : dag.topoOrder()) {
    if (u == t || f[u] <= 0.0) continue;
    for (const EdgeId e : dag.outEdges(u)) {
      f[g.edge(e).dst] += f[u] * cfg.ratio(t, e);
    }
  }
  return f;
}

double expectedHopCount(const Graph& g, const RoutingConfig& cfg, NodeId s,
                        NodeId t) {
  if (s == t) return 0.0;
  const Dag& dag = cfg.dags()[t];
  const std::vector<double> f = sourceFractions(g, cfg, s, t);
  double hops = 0.0;
  for (const EdgeId e : dag.edges()) {
    hops += f[g.edge(e).src] * cfg.ratio(t, e);
  }
  return hops;
}

}  // namespace coyote::routing
