// Flow propagation through per-destination DAGs.
//
// With destination-based routing, the flow a demand matrix induces on every
// link is computed exactly by one sweep per destination in topological
// order (Sec. III): F_t(u) = d(u,t) + sum over DAG in-edges (w,u) of
// F_t(w) * phi_t(w,u); the load contributed to edge e=(u,v) is
// F_t(u) * phi_t(e).
#pragma once

#include <vector>

#include "routing/config.hpp"
#include "tm/traffic_matrix.hpp"

namespace coyote::routing {

/// Per-edge absolute flow (same indexing as Graph edges).
using LinkLoads = std::vector<double>;

/// Total load per edge for demand matrix `d` routed by `cfg`.
[[nodiscard]] LinkLoads computeLoads(const Graph& g, const RoutingConfig& cfg,
                                     const tm::TrafficMatrix& d);

/// Load per edge for a single destination's demands (column t of `d`).
/// `loads` is accumulated into (callers zero it as needed).
void accumulateDestinationLoads(const Graph& g, const RoutingConfig& cfg,
                                const tm::TrafficMatrix& d, NodeId t,
                                LinkLoads& loads);

/// Maximum link utilization max_e load(e)/capacity(e).
[[nodiscard]] double maxLinkUtilization(const Graph& g, const LinkLoads& loads);

/// Convenience: MxLU(cfg, d) in one call.
[[nodiscard]] double maxLinkUtilization(const Graph& g,
                                        const RoutingConfig& cfg,
                                        const tm::TrafficMatrix& d);

/// Fractions f_st(v): the fraction of a unit s->t demand that enters each
/// node v when routed by `cfg` (Sec. III). f[s] = 1.
[[nodiscard]] std::vector<double> sourceFractions(const Graph& g,
                                                  const RoutingConfig& cfg,
                                                  NodeId s, NodeId t);

/// Expected path length (in hops) of the s->t flow under `cfg`:
/// sum over edges e=(u,v) of f_st(u)*phi_t(e). Used by the Fig. 11 stretch
/// metric. Returns 0 for s == t.
[[nodiscard]] double expectedHopCount(const Graph& g, const RoutingConfig& cfg,
                                      NodeId s, NodeId t);

}  // namespace coyote::routing
