// Exact worst-case-demand oracle (the "slave LP" of Sec. IV / Appendix C).
//
// Given a fixed routing phi, the demand matrix maximizing the utilization of
// an edge e -- among all matrices routable within the capacities of the
// per-destination DAGs (i.e., OPTU <= 1 after rescaling) and, optionally,
// inside the scaled uncertainty box  lambda*dmin <= d <= lambda*dmax -- is
// found by one LP per edge:
//
//     max  sum_st l_st(e) * d(s,t) / c(e)
//     s.t. g_t routes d inside the DAGs           (conservation, equality)
//          sum_t g_t(a) <= c(a)   for every a     (capacity)
//          lambda*dmin <= d <= lambda*dmax        (box case only)
//          d, g, lambda >= 0
//
// where l_st(e) = f_st(u) * phi_t(e) is the fraction of the (s,t) demand
// that phi places on e. The max over all edges is the exact performance
// ratio PERF(phi, D) relative to the in-DAG optimum.
//
// Only the objective depends on the target edge (and, through l, on the
// routing phi): WorstCaseOracle builds the constraint matrix once per
// (graph, DAGs, box) and scans the edges as warm-start chains on retained
// lp::SimplexSolver sessions -- one session per fixed-size edge chunk, so
// the thread-pool fan-out is deterministic for any thread count. The same
// oracle instance serves every cutting-plane round of COYOTE's optimizer
// (each round is one more objective sweep, not a rebuild). Exact
// evaluation is practical for small/medium networks and is used by tests,
// ablations and the Table I '+' rows; the figure benches default to the
// corner-pool evaluator (see evaluator.hpp).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "lp/lp.hpp"
#include "routing/config.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::routing {

struct WorstCaseResult {
  tm::TrafficMatrix demand;       ///< worst-case matrix (OPTU <= 1 scale)
  double ratio = 0.0;             ///< = MxLU(phi, demand) = performance ratio
  EdgeId edge = kInvalidEdge;     ///< the edge attaining it
};

/// Reusable slave-LP solver for one (graph, DAG-set, box). find() may be
/// called repeatedly with different routings (the cutting-plane loop);
/// sessions and bases are retained across calls. Not thread-safe for
/// concurrent calls on one instance (find() itself fans out internally).
class WorstCaseOracle {
 public:
  /// `dags` and `box` (nullable: the oblivious case) must outlive the
  /// oracle; the box is identified by reference across calls.
  WorstCaseOracle(const Graph& g, std::shared_ptr<const DagSet> dags,
                  const tm::DemandBounds* box,
                  const lp::SimplexOptions& opt = {});
  ~WorstCaseOracle();

  WorstCaseOracle(const WorstCaseOracle&) = delete;
  WorstCaseOracle& operator=(const WorstCaseOracle&) = delete;

  /// Worst case over all edges for `cfg` (which must use the oracle's DAG
  /// set). Per-edge LPs run on the shared thread pool in fixed-size warm
  /// chunks; the winner is re-solved cold for its demand matrix, so the
  /// result is identical to findWorstCaseDemandForEdge on the argmax edge.
  [[nodiscard]] WorstCaseResult find(const RoutingConfig& cfg);

  /// Worst case for a single edge.
  [[nodiscard]] WorstCaseResult findForEdge(const RoutingConfig& cfg,
                                            EdgeId edge);

  /// Switches the oracle to a post-failure network: the capacity rows of
  /// the given (directed) edges get rhs 0, so no witness flow may cross
  /// them -- the adversary is confined to the surviving network. A
  /// rhs mutation on the retained template and sessions, not a rebuild:
  /// subsequent find() calls warm-start from the pre-failure bases.
  /// Passing {} restores the intact capacities. Routings evaluated under
  /// failures must place no traffic on the failed edges (ratio 0 there;
  /// see failure::repairRouting) -- their DAG set stays the oracle's.
  void setFailedEdges(const std::vector<EdgeId>& edges);

  /// Edges per warm-start chain in find(). Fixed (not derived from the
  /// thread count) so results never depend on parallelism.
  static constexpr int kEdgeChunk = 8;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Worst case over all demand matrices (box == nullptr, the oblivious case)
/// or over the scaled uncertainty box. One-shot: builds a WorstCaseOracle
/// internally; callers with repeated queries should hold an oracle.
[[nodiscard]] WorstCaseResult findWorstCaseDemand(
    const Graph& g, const RoutingConfig& cfg,
    const tm::DemandBounds* box = nullptr, const lp::SimplexOptions& opt = {});

/// Worst case for a single edge (exposed for tests and incremental use).
[[nodiscard]] WorstCaseResult findWorstCaseDemandForEdge(
    const Graph& g, const RoutingConfig& cfg, EdgeId edge,
    const tm::DemandBounds* box = nullptr, const lp::SimplexOptions& opt = {});

}  // namespace coyote::routing
