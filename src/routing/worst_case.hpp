// Exact worst-case-demand oracle (the "slave LP" of Sec. IV / Appendix C).
//
// Given a fixed routing phi, the demand matrix maximizing the utilization of
// an edge e -- among all matrices routable within the capacities of the
// per-destination DAGs (i.e., OPTU <= 1 after rescaling) and, optionally,
// inside the scaled uncertainty box  lambda*dmin <= d <= lambda*dmax -- is
// found by one LP per edge:
//
//     max  sum_st l_st(e) * d(s,t) / c(e)
//     s.t. g_t routes d inside the DAGs           (conservation, equality)
//          sum_t g_t(a) <= c(a)   for every a     (capacity)
//          lambda*dmin <= d <= lambda*dmax        (box case only)
//          d, g, lambda >= 0
//
// where l_st(e) = f_st(u) * phi_t(e) is the fraction of the (s,t) demand
// that phi places on e. The max over all edges is the exact performance
// ratio PERF(phi, D) relative to the in-DAG optimum.
//
// Cost: one LP with O(|V||E|) variables per edge. Exact evaluation is
// practical for small/medium networks and is used by tests and ablations;
// the figure benches default to the corner-pool evaluator (see
// evaluator.hpp) whose pools the cutting-plane optimizer also consumes.
#pragma once

#include <optional>

#include "lp/lp.hpp"
#include "routing/config.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::routing {

struct WorstCaseResult {
  tm::TrafficMatrix demand;       ///< worst-case matrix (OPTU <= 1 scale)
  double ratio = 0.0;             ///< = MxLU(phi, demand) = performance ratio
  EdgeId edge = kInvalidEdge;     ///< the edge attaining it
};

/// Worst case over all demand matrices (box == nullptr, the oblivious case)
/// or over the scaled uncertainty box.
[[nodiscard]] WorstCaseResult findWorstCaseDemand(
    const Graph& g, const RoutingConfig& cfg,
    const tm::DemandBounds* box = nullptr, const lp::SimplexOptions& opt = {});

/// Worst case for a single edge (exposed for tests and incremental use).
[[nodiscard]] WorstCaseResult findWorstCaseDemandForEdge(
    const Graph& g, const RoutingConfig& cfg, EdgeId edge,
    const tm::DemandBounds* box = nullptr, const lp::SimplexOptions& opt = {});

}  // namespace coyote::routing
