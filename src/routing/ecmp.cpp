#include "routing/ecmp.hpp"

namespace coyote::routing {

DagSet shortestPathDags(const Graph& g) {
  DagSet dags;
  dags.reserve(g.numNodes());
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    const ShortestPathsToDest sp = shortestPathsTo(g, t);
    dags.emplace_back(g, t, shortestPathDagEdges(g, sp));
  }
  return dags;
}

RoutingConfig ecmpConfig(const Graph& g, std::shared_ptr<const DagSet> dags) {
  RoutingConfig cfg(g, std::move(dags));
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    const ShortestPathsToDest sp = shortestPathsTo(g, t);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      const std::vector<EdgeId> hops = ecmpNextHops(g, sp, u);
      if (hops.empty()) continue;
      const double r = 1.0 / static_cast<double>(hops.size());
      for (const EdgeId e : hops) {
        require(cfg.dags()[t].contains(e),
                "shortest-path edge missing from DAG; build DAGs from the "
                "same weights");
        cfg.setRatio(t, e, r);
      }
    }
  }
  cfg.validate(g);
  return cfg;
}

}  // namespace coyote::routing
