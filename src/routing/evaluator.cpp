#include "routing/evaluator.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "routing/propagation.hpp"

namespace coyote::routing {

int PerformanceEvaluator::addMatrix(const tm::TrafficMatrix& d) {
  require(d.numNodes() == g_.numNodes(), "matrix/graph size mismatch");
  if (d.total() <= 0.0) return -1;
  const double optu = (norm_ == Normalization::kWithinDags)
                          ? optimalUtilization(g_, *dags_, d, lp_options_)
                          : optimalUtilizationUnrestricted(g_, d, lp_options_);
  if (optu <= 1e-12) return -1;
  tm::TrafficMatrix scaled = d;
  scaled.scale(1.0 / optu);
  // Deduplicate: corner pools at margin 1 collapse to the base matrix, and
  // the cutting-plane loop must detect an oracle returning a known matrix.
  for (int i = 0; i < size(); ++i) {
    if (pool_[i] == scaled) return -1;
  }
  pool_.push_back(std::move(scaled));
  return size() - 1;
}

void PerformanceEvaluator::addPool(const std::vector<tm::TrafficMatrix>& pool) {
  // Solve the normalization LPs concurrently (they are independent), then
  // insert sequentially so ordering and deduplication stay deterministic.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, hw), pool.size());
  if (workers <= 1) {
    for (const auto& d : pool) addMatrix(d);
    return;
  }
  std::vector<double> optu(pool.size(), 0.0);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      try {
        for (std::size_t i = next.fetch_add(1); i < pool.size();
             i = next.fetch_add(1)) {
          optu[i] = (pool[i].total() <= 0.0) ? 0.0
                    : (norm_ == Normalization::kWithinDags)
                        ? optimalUtilization(g_, *dags_, pool[i], lp_options_)
                        : optimalUtilizationUnrestricted(g_, pool[i],
                                                         lp_options_);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (optu[i] <= 1e-12) continue;
    tm::TrafficMatrix scaled = pool[i];
    scaled.scale(1.0 / optu[i]);
    bool dup = false;
    for (const auto& existing : pool_) {
      if (existing == scaled) {
        dup = true;
        break;
      }
    }
    if (!dup) pool_.push_back(std::move(scaled));
  }
}

double PerformanceEvaluator::ratioFor(const RoutingConfig& cfg) const {
  return worst(cfg).second;
}

std::pair<int, double> PerformanceEvaluator::worst(
    const RoutingConfig& cfg) const {
  int arg = -1;
  double best = 0.0;
  for (int i = 0; i < size(); ++i) {
    const double u = maxLinkUtilization(g_, cfg, pool_[i]);
    if (u > best) {
      best = u;
      arg = i;
    }
  }
  return {arg, best};
}

}  // namespace coyote::routing
