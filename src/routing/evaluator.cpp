#include "routing/evaluator.hpp"

#include <cmath>
#include <utility>

#include "routing/propagation.hpp"
#include "util/thread_pool.hpp"

namespace coyote::routing {
namespace {

// Entrywise comparison with a small relative tolerance: normalization is
// scale-invariant in exact arithmetic, so rescaled copies of a pooled
// matrix (or an oracle re-deriving one) differ only by LP round-off and
// must still count as duplicates.
bool nearlyEqual(const tm::TrafficMatrix& a, const tm::TrafficMatrix& b) {
  if (a.numNodes() != b.numNodes()) return false;
  for (NodeId s = 0; s < a.numNodes(); ++s) {
    for (NodeId t = 0; t < a.numNodes(); ++t) {
      if (s == t) continue;
      const double x = a.at(s, t);
      const double y = b.at(s, t);
      if (std::abs(x - y) > 1e-9 * (1.0 + std::abs(x) + std::abs(y))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

util::ThreadPool& PerformanceEvaluator::pool() const {
  return own_pool_ ? *own_pool_ : util::ThreadPool::global();
}

void PerformanceEvaluator::setThreads(unsigned threads) {
  threads_ = threads;
  // Built here, in the only mutating entry point, so the const evaluation
  // paths (ratioFor/worst) stay safe for concurrent callers.
  own_pool_ =
      threads == 0 ? nullptr : std::make_unique<util::ThreadPool>(threads);
}

double PerformanceEvaluator::normalizationOf(const tm::TrafficMatrix& d) const {
  if (d.total() <= 0.0) return 0.0;
  // The shared engine retains the constraint matrix and basis between
  // calls, so successive normalizations (cutting-plane rounds, margin
  // sweeps) warm-start instead of rebuilding.
  return engine_->utilization(d);
}

int PerformanceEvaluator::addMatrix(const tm::TrafficMatrix& d) {
  require(d.numNodes() == g_.numNodes(), "matrix/graph size mismatch");
  const double optu = normalizationOf(d);
  if (optu <= 1e-12) return -1;
  tm::TrafficMatrix scaled = d;
  scaled.scale(1.0 / optu);
  // Deduplicate: corner pools at margin 1 collapse to the base matrix, and
  // the cutting-plane loop must detect an oracle returning a known matrix.
  for (int i = 0; i < size(); ++i) {
    if (nearlyEqual(pool_[i], scaled)) return -1;
  }
  pool_.push_back(std::move(scaled));
  return size() - 1;
}

void PerformanceEvaluator::addPool(const std::vector<tm::TrafficMatrix>& pool) {
  for (const auto& d : pool) {
    require(d.numNodes() == g_.numNodes(), "matrix/graph size mismatch");
  }
  // Solve the normalization LPs in warm-start chains: the engine groups
  // matrices by LP structure and cuts each group into fixed-size chunks
  // that fan out over the thread pool (results identical for any thread
  // count). Insertion stays sequential so ordering and deduplication are
  // deterministic.
  std::vector<double> optu = engine_->utilizationBatch(pool, this->pool());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (optu[i] <= 1e-12) continue;
    tm::TrafficMatrix scaled = pool[i];
    scaled.scale(1.0 / optu[i]);
    bool dup = false;
    for (const auto& existing : pool_) {
      if (nearlyEqual(existing, scaled)) {
        dup = true;
        break;
      }
    }
    if (!dup) pool_.push_back(std::move(scaled));
  }
}

double PerformanceEvaluator::ratioFor(const RoutingConfig& cfg) const {
  return worst(cfg).second;
}

std::pair<int, double> PerformanceEvaluator::worst(
    const RoutingConfig& cfg) const {
  // Each matrix's propagation is independent: compute utilizations into
  // index-addressed slots in parallel, then reduce serially in pool order
  // so the argmax (ties included) is identical for any thread count.
  std::vector<double> util(pool_.size(), 0.0);
  pool().parallelFor(pool_.size(), [&](std::size_t i) {
    util[i] = maxLinkUtilization(g_, cfg, pool_[i]);
  });
  int arg = -1;
  double best = 0.0;
  for (int i = 0; i < size(); ++i) {
    if (util[i] > best) {
      best = util[i];
      arg = i;
    }
  }
  return {arg, best};
}

}  // namespace coyote::routing
