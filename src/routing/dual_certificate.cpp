#include "routing/dual_certificate.hpp"

#include <limits>

#include "routing/propagation.hpp"

namespace coyote::routing {
namespace {

/// l_st(e) = f_st(u) * phi_t(e) for a fixed target edge, all (s,t).
/// coeff[t][s] is the load fraction the (s,t) demand places on `edge`.
std::vector<std::vector<double>> loadCoefficientsFor(const Graph& g,
                                                     const RoutingConfig& cfg,
                                                     EdgeId edge) {
  const int n = g.numNodes();
  const NodeId u = g.edge(edge).src;
  std::vector<std::vector<double>> coeff(n);
  for (NodeId t = 0; t < n; ++t) {
    if (!cfg.dags()[t].contains(edge)) continue;
    const double phi = cfg.ratio(t, edge);
    if (phi <= 0.0) continue;
    coeff[t].assign(n, 0.0);
    for (NodeId s = 0; s < n; ++s) {
      if (s == t) continue;
      const std::vector<double> f = sourceFractions(g, cfg, s, t);
      coeff[t][s] = f[u] * phi;
    }
  }
  return coeff;
}

/// Shortest v->t distance inside DAG_t under weights pi (exact, via one
/// sweep in reverse topological order).
std::vector<double> dagDistances(const Graph& g, const Dag& dag,
                                 const std::vector<double>& pi) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.numNodes(), kInf);
  dist[dag.dest()] = 0.0;
  const auto& topo = dag.topoOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (v == dag.dest()) continue;
    for (const EdgeId a : dag.outEdges(v)) {
      dist[v] = std::min(dist[v], pi[a] + dist[g.edge(a).dst]);
    }
  }
  return dist;
}

EdgeCertificate certifyEdge(const Graph& g, const RoutingConfig& cfg,
                            EdgeId edge, const lp::SimplexOptions& opt) {
  const int n = g.numNodes();
  const double cap = g.edge(edge).capacity;
  const auto coeff = loadCoefficientsFor(g, cfg, edge);

  lp::LpProblem p(lp::Sense::kMinimize);
  // pi(h) >= 0, objective sum_h pi(h)*c(h)  (this *is* the certified bound
  // for this edge, requirement R1 with r minimized).
  std::vector<int> pi_var(g.numEdges());
  for (EdgeId h = 0; h < g.numEdges(); ++h) {
    pi_var[h] = p.addVar(g.edge(h).capacity);
  }
  // Per destination with nonzero coefficients: distance variables p_t(v).
  for (NodeId t = 0; t < n; ++t) {
    if (coeff[t].empty()) continue;
    const Dag& dag = cfg.dags()[t];
    std::vector<int> dist_var(n, -1);
    for (NodeId v = 0; v < n; ++v) {
      if (v != t && dag.reachesDest(v)) dist_var[v] = p.addVar(0.0);
    }
    // Triangle inequalities: p(j) <= pi(a) + p(k) for each DAG edge (j,k).
    for (const EdgeId a : dag.edges()) {
      const NodeId j = g.edge(a).src;
      const NodeId k = g.edge(a).dst;
      if (dist_var[j] < 0) continue;
      std::vector<lp::Term> terms{{dist_var[j], 1.0}, {pi_var[a], -1.0}};
      if (k != t) {
        require(dist_var[k] >= 0, "DAG edge into node not reaching dest");
        terms.push_back({dist_var[k], -1.0});
      }
      p.addConstraint(std::move(terms), lp::Rel::kLe, 0.0);
    }
    // Load constraints (R2): l_st(e)/c(e) <= p_t(s).
    for (NodeId s = 0; s < n; ++s) {
      if (s == t || coeff[t][s] <= 0.0 || dist_var[s] < 0) continue;
      p.addConstraint({{dist_var[s], 1.0}}, lp::Rel::kGe, coeff[t][s] / cap);
    }
  }

  const lp::LpResult res = lp::solve(p, opt);
  EdgeCertificate out;
  out.edge = edge;
  if (res.status != lp::Status::kOptimal) return out;  // ratio 0: no load
  out.ratio = res.objective;
  out.pi.assign(g.numEdges(), 0.0);
  for (EdgeId h = 0; h < g.numEdges(); ++h) {
    out.pi[h] = std::max(0.0, res.x[pi_var[h]]);
  }
  return out;
}

BoxEdgeCertificate certifyBoxEdge(const Graph& g, const RoutingConfig& cfg,
                                  const tm::DemandBounds& box, EdgeId edge,
                                  const lp::SimplexOptions& opt) {
  const int n = g.numNodes();
  const double cap = g.edge(edge).capacity;
  const auto coeff = loadCoefficientsFor(g, cfg, edge);

  BoxEdgeCertificate out;
  out.edge = edge;
  bool any_load = false;
  for (NodeId t = 0; t < n && !any_load; ++t) {
    for (NodeId s = 0; !coeff[t].empty() && s < n && !any_load; ++s) {
      any_load = coeff[t][s] > 0.0;
    }
  }
  if (!any_load) return out;  // nothing can load this edge: bound 0

  lp::LpProblem p(lp::Sense::kMinimize);
  std::vector<int> pi_var(g.numEdges());
  for (EdgeId h = 0; h < g.numEdges(); ++h) {
    pi_var[h] = p.addVar(g.edge(h).capacity);
  }
  // Free potentials p_t(v) = pp - pm; one pair per (active t, v != t).
  // Active destinations: any pair with load on `edge` or inside the box.
  const auto pairActive = [&](NodeId s, NodeId t) {
    const double l = coeff[t].empty() ? 0.0 : coeff[t][s];
    return l > 0.0 || box.hi.at(s, t) > 0.0;
  };
  std::vector<char> active(n, 0);
  for (NodeId t = 0; t < n; ++t) {
    for (NodeId s = 0; s < n && !active[t]; ++s) {
      if (s != t && pairActive(s, t)) active[t] = 1;
    }
  }
  std::vector<std::vector<int>> pp(n), pm(n);
  for (NodeId t = 0; t < n; ++t) {
    if (!active[t]) continue;
    pp[t].assign(n, -1);
    pm[t].assign(n, -1);
    for (NodeId v = 0; v < n; ++v) {
      if (v == t) continue;
      pp[t][v] = p.addVar(0.0);
      pm[t][v] = p.addVar(0.0);
    }
  }
  // Box slack weights.
  std::vector<int> sp(static_cast<std::size_t>(n) * n, -1);
  std::vector<int> sm(static_cast<std::size_t>(n) * n, -1);
  std::vector<lp::Term> lambda_col;  // sum hi*s+ - sum lo*s- <= 0
  for (NodeId t = 0; t < n; ++t) {
    if (!active[t]) continue;
    for (NodeId s = 0; s < n; ++s) {
      if (s == t || !pairActive(s, t)) continue;
      const std::size_t k = static_cast<std::size_t>(s) * n + t;
      sp[k] = p.addVar(0.0);
      lambda_col.push_back({sp[k], box.hi.at(s, t)});
      if (box.lo.at(s, t) > 0.0) {
        sm[k] = p.addVar(0.0);
        lambda_col.push_back({sm[k], -box.lo.at(s, t)});
      }
      // Column of d_st: s+ - s- - p_t(s) >= l/c.
      const double l = coeff[t].empty() ? 0.0 : coeff[t][s];
      std::vector<lp::Term> terms{{sp[k], 1.0},
                                  {pp[t][s], -1.0},
                                  {pm[t][s], 1.0}};
      if (sm[k] >= 0) terms.push_back({sm[k], -1.0});
      p.addConstraint(std::move(terms), lp::Rel::kGe, l / cap);
    }
  }
  p.addConstraint(std::move(lambda_col), lp::Rel::kLe, 0.0);
  // Columns of the witness flows: p_t(j) - p_t(k) + pi(a) >= 0.
  for (NodeId t = 0; t < n; ++t) {
    if (!active[t]) continue;
    for (const EdgeId a : cfg.dags()[t].edges()) {
      const NodeId j = g.edge(a).src;
      const NodeId k = g.edge(a).dst;
      std::vector<lp::Term> terms{{pp[t][j], 1.0},
                                  {pm[t][j], -1.0},
                                  {pi_var[a], 1.0}};
      if (k != t) {
        terms.push_back({pp[t][k], -1.0});
        terms.push_back({pm[t][k], 1.0});
      }
      p.addConstraint(std::move(terms), lp::Rel::kGe, 0.0);
    }
  }

  const lp::LpResult res = lp::solve(p, opt);
  if (res.status != lp::Status::kOptimal) return out;
  out.ratio = res.objective;
  out.pi.assign(g.numEdges(), 0.0);
  for (EdgeId h = 0; h < g.numEdges(); ++h) {
    out.pi[h] = std::max(0.0, res.x[pi_var[h]]);
  }
  out.p.assign(n, {});
  for (NodeId t = 0; t < n; ++t) {
    if (!active[t]) continue;
    out.p[t].assign(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      if (v != t) out.p[t][v] = res.x[pp[t][v]] - res.x[pm[t][v]];
    }
  }
  out.s_plus.assign(static_cast<std::size_t>(n) * n, 0.0);
  out.s_minus.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (std::size_t k = 0; k < sp.size(); ++k) {
    if (sp[k] >= 0) out.s_plus[k] = std::max(0.0, res.x[sp[k]]);
    if (sm[k] >= 0) out.s_minus[k] = std::max(0.0, res.x[sm[k]]);
  }
  return out;
}

}  // namespace

BoxCertificate certifyBoxRatio(const Graph& g, const RoutingConfig& cfg,
                               const tm::DemandBounds& box,
                               const lp::SimplexOptions& opt) {
  BoxCertificate cert;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    BoxEdgeCertificate ec = certifyBoxEdge(g, cfg, box, e, opt);
    cert.ratio = std::max(cert.ratio, ec.ratio);
    cert.edges.push_back(std::move(ec));
  }
  return cert;
}

bool checkBoxCertificate(const Graph& g, const RoutingConfig& cfg,
                         const tm::DemandBounds& box,
                         const BoxCertificate& cert, double tol) {
  const int n = g.numNodes();
  if (static_cast<int>(cert.edges.size()) != g.numEdges()) return false;
  for (const BoxEdgeCertificate& ec : cert.edges) {
    if (ec.pi.empty()) continue;  // trivial bound 0
    if (static_cast<int>(ec.pi.size()) != g.numEdges()) return false;
    const double cap = g.edge(ec.edge).capacity;
    const auto coeff = loadCoefficientsFor(g, cfg, ec.edge);
    // Dual objective bounds the primal worst case (weak duality).
    double weighted = 0.0;
    for (EdgeId h = 0; h < g.numEdges(); ++h) {
      if (ec.pi[h] < -tol) return false;
      weighted += ec.pi[h] * g.edge(h).capacity;
    }
    if (weighted > cert.ratio + tol || weighted > ec.ratio + tol) return false;
    // Lambda column.
    double lambda_col = 0.0;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        const std::size_t k = static_cast<std::size_t>(s) * n + t;
        const double spv = k < ec.s_plus.size() ? ec.s_plus[k] : 0.0;
        const double smv = k < ec.s_minus.size() ? ec.s_minus[k] : 0.0;
        if (spv < -tol || smv < -tol) return false;
        lambda_col += box.hi.at(s, t) * spv - box.lo.at(s, t) * smv;
      }
    }
    if (lambda_col > tol) return false;
    // Demand and flow columns.
    for (NodeId t = 0; t < n; ++t) {
      const bool has_p = !ec.p.empty() && !ec.p[t].empty();
      for (NodeId s = 0; s < n; ++s) {
        if (s == t) continue;
        const double l = coeff[t].empty() ? 0.0 : coeff[t][s];
        if (l <= 0.0 && box.hi.at(s, t) <= 0.0) continue;
        if (!has_p) return false;  // active pair without potentials
        const std::size_t k = static_cast<std::size_t>(s) * n + t;
        const double spv = k < ec.s_plus.size() ? ec.s_plus[k] : 0.0;
        const double smv = k < ec.s_minus.size() ? ec.s_minus[k] : 0.0;
        if (spv - smv - ec.p[t][s] < l / cap - tol) return false;
      }
      if (!has_p) continue;
      for (const EdgeId a : cfg.dags()[t].edges()) {
        const NodeId j = g.edge(a).src;
        const NodeId kk = g.edge(a).dst;
        const double pk = (kk == t) ? 0.0 : ec.p[t][kk];
        if (ec.p[t][j] - pk + ec.pi[a] < -tol) return false;
      }
    }
  }
  return true;
}

ObliviousCertificate certifyObliviousRatio(const Graph& g,
                                           const RoutingConfig& cfg,
                                           const lp::SimplexOptions& opt) {
  ObliviousCertificate cert;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    EdgeCertificate ec = certifyEdge(g, cfg, e, opt);
    cert.ratio = std::max(cert.ratio, ec.ratio);
    cert.edges.push_back(std::move(ec));
  }
  return cert;
}

bool checkCertificate(const Graph& g, const RoutingConfig& cfg,
                      const ObliviousCertificate& cert, double tol) {
  if (static_cast<int>(cert.edges.size()) != g.numEdges()) return false;
  for (const EdgeCertificate& ec : cert.edges) {
    if (ec.pi.empty()) continue;  // edge certified trivially (carries no load)
    if (static_cast<int>(ec.pi.size()) != g.numEdges()) return false;
    // R1: sum_h pi(h) c(h) <= claimed ratio (and the global max).
    double weighted = 0.0;
    for (EdgeId h = 0; h < g.numEdges(); ++h) {
      if (ec.pi[h] < -tol) return false;
      weighted += ec.pi[h] * g.edge(h).capacity;
    }
    if (weighted > cert.ratio + tol || weighted > ec.ratio + tol) {
      return false;
    }
    // R2 via exact DAG distances under pi.
    const double cap = g.edge(ec.edge).capacity;
    const auto coeff = loadCoefficientsFor(g, cfg, ec.edge);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      if (coeff[t].empty()) continue;
      const std::vector<double> dist =
          dagDistances(g, cfg.dags()[t], ec.pi);
      for (NodeId s = 0; s < g.numNodes(); ++s) {
        if (s == t || coeff[t][s] <= 0.0) continue;
        if (coeff[t][s] / cap > dist[s] + tol) return false;
      }
    }
  }
  return true;
}

}  // namespace coyote::routing
