// Dual certificates for the oblivious performance ratio (Theorem 5 /
// Appendix C).
//
// Theorem 5: a routing phi has oblivious ratio <= r if there exist
// nonnegative weights pi_e(h) (one per ordered pair of edges) with
//
//   R1:  sum_h pi_e(h) * c(h) <= r                        for every edge e
//   R2:  f_st(u) * phi_t(u,v) <= c(e) * sum_k pi_e(a_k)   for every edge
//        e = (u,v), demand (s,t) and s->t path (a_1..a_l) in the DAG of t.
//
// R2's exponentially many path constraints collapse to polynomially many by
// introducing shortest-path distances p_e(i,t) under the weights pi_e
// (triangle inequalities (14) in the paper). For a FIXED routing phi, the
// minimal certifiable r is one LP per edge -- precisely the LP dual of the
// worst-case "slave LP" of worst_case.hpp, so strong duality makes the two
// computations coincide: the certificate is machine-checkable proof that
// PERF(phi, all demands) <= r, while the slave LP exhibits a demand matrix
// attaining it. Tests assert both sides agree.
//
// This header implements the fully oblivious case (demands bounded only by
// routability within the DAG capacities), matching
// findWorstCaseDemand(g, cfg, /*box=*/nullptr).
#pragma once

#include <vector>

#include "lp/lp.hpp"
#include "routing/config.hpp"
#include "tm/uncertainty.hpp"

namespace coyote::routing {

/// Certificate for one edge: weights pi over all edges plus the certified
/// utilization bound for that edge.
struct EdgeCertificate {
  EdgeId edge = kInvalidEdge;
  double ratio = 0.0;              ///< certified bound on this edge's load
  std::vector<double> pi;          ///< pi_e(h), indexed by EdgeId h
};

/// Full certificate: max over edges = certified oblivious ratio.
struct ObliviousCertificate {
  double ratio = 0.0;
  std::vector<EdgeCertificate> edges;
};

/// Computes the minimal certifiable oblivious ratio of `cfg` by solving the
/// Theorem 5 LP for every edge.
[[nodiscard]] ObliviousCertificate certifyObliviousRatio(
    const Graph& g, const RoutingConfig& cfg, const lp::SimplexOptions& = {});

/// Independently validates a certificate against R1/R2 (recomputing the
/// shortest pi_e-distances and every load coefficient from scratch).
/// Returns true if the certificate proves PERF(cfg) <= cert.ratio + tol.
[[nodiscard]] bool checkCertificate(const Graph& g, const RoutingConfig& cfg,
                                    const ObliviousCertificate& cert,
                                    double tol = 1e-6);

// ---------------------------------------------------------------------------
// Bounded demand sets (the paper's closing paragraph of Appendix C): when
// demands are confined to the scaled box lambda*dmin <= d <= lambda*dmax,
// the dualization gains slack weights s+/s- per demand pair:
//
//     l_st(e)/c(e) <= p_t(s) + s+_st - s-_st          (replaces (15))
//     sum_st (dmax_st * s+_st - dmin_st * s-_st) <= 0 (the lambda column)
//
// with the node potentials p_t now free (they may go negative). The
// certificate below stores the full dual solution per edge, and the checker
// verifies every dual-feasibility condition mechanically, so a valid
// certificate is machine-checkable proof (by weak LP duality) that the
// within-box performance ratio of `cfg` is at most `ratio`.
// ---------------------------------------------------------------------------

/// Dual solution certifying a within-box bound for one edge.
struct BoxEdgeCertificate {
  EdgeId edge = kInvalidEdge;
  double ratio = 0.0;
  std::vector<double> pi;  ///< pi_e(h) >= 0, indexed by EdgeId
  /// Node potentials per destination: p[t][v] (free sign); empty vector for
  /// destinations without load on this edge.
  std::vector<std::vector<double>> p;
  /// Box slack weights per (s,t) pair, flattened s*n+t; >= 0.
  std::vector<double> s_plus, s_minus;
};

struct BoxCertificate {
  double ratio = 0.0;
  std::vector<BoxEdgeCertificate> edges;
};

/// Minimal certifiable performance ratio of `cfg` over the uncertainty box
/// (the dual of findWorstCaseDemand(g, cfg, &box); strong duality makes
/// them agree, asserted in tests).
[[nodiscard]] BoxCertificate certifyBoxRatio(const Graph& g,
                                             const RoutingConfig& cfg,
                                             const tm::DemandBounds& box,
                                             const lp::SimplexOptions& = {});

/// Mechanically verifies every dual-feasibility condition of `cert`.
[[nodiscard]] bool checkBoxCertificate(const Graph& g,
                                       const RoutingConfig& cfg,
                                       const tm::DemandBounds& box,
                                       const BoxCertificate& cert,
                                       double tol = 1e-6);

}  // namespace coyote::routing
