// Per-destination routing configurations (Sec. III).
//
// A routing configuration phi assigns, for every destination t and edge
// e=(u,v), the fraction phi_t(e) of the t-destined flow entering u that is
// forwarded on e. Ratios live on the edges of a per-destination DAG, which
// makes the induced flows well-defined and loop-free.
#pragma once

#include <memory>
#include <vector>

#include "graph/dag.hpp"
#include "graph/graph.hpp"

namespace coyote::routing {

class RoutingConfig {
 public:
  /// Creates an all-zero configuration over the given DAG set (one DAG per
  /// destination, indexed by destination id; dags->size() must equal |V|).
  RoutingConfig(const Graph& g, std::shared_ptr<const DagSet> dags);

  /// Equal splitting over every DAG out-edge (the "uniform" starting point
  /// of COYOTE's optimizer; also ECMP when the DAGs are shortest-path DAGs).
  [[nodiscard]] static RoutingConfig uniform(const Graph& g,
                                             std::shared_ptr<const DagSet> dags);

  [[nodiscard]] const DagSet& dags() const { return *dags_; }
  [[nodiscard]] std::shared_ptr<const DagSet> dagsPtr() const { return dags_; }
  [[nodiscard]] int numNodes() const { return num_nodes_; }
  [[nodiscard]] int numEdges() const { return num_edges_; }

  [[nodiscard]] double ratio(NodeId t, EdgeId e) const {
    return ratios_[index(t, e)];
  }

  /// Sets phi_t(e). `e` must belong to the DAG of `t`.
  void setRatio(NodeId t, EdgeId e, double value);

  /// Rescales out-ratios at every (destination, node) to sum to one.
  /// Nodes whose out-ratios are all ~zero fall back to equal splitting over
  /// their DAG out-edges (needed when deriving configs from LP flows whose
  /// support does not cover every node).
  void normalize(const Graph& g, double eps = 1e-12);

  /// Checks structural validity: ratios are >= 0, live only on DAG edges,
  /// and sum to 1 (within tol) at every non-destination node with DAG
  /// out-edges that can reach the destination. Throws std::logic_error with
  /// a description on violation.
  void validate(const Graph& g, double tol = 1e-6) const;

 private:
  [[nodiscard]] std::size_t index(NodeId t, EdgeId e) const;

  std::shared_ptr<const DagSet> dags_;
  int num_nodes_;
  int num_edges_;
  std::vector<double> ratios_;  // [t * numEdges + e]
};

}  // namespace coyote::routing
