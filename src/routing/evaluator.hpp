// Performance-ratio evaluation against a finite pool of demand matrices.
//
// PERF(phi, D) = max over D in the pool of MxLU(phi, D) / OPTU(D), where
// OPTU is the demands-aware optimum within the same DAGs (the normalization
// used by the paper's figures). Each matrix's OPTU is an LP solved once and
// cached; evaluating a routing is then |pool| cheap propagations, which is
// what makes the Table I sweep tractable. The same pool doubles as the
// cutting-plane set of COYOTE's optimizer. For exact worst-case evaluation
// over the whole box, see worst_case.hpp.
#pragma once

#include <memory>
#include <vector>

#include "lp/lp.hpp"
#include "routing/config.hpp"
#include "routing/optu.hpp"
#include "tm/uncertainty.hpp"
#include "util/thread_pool.hpp"

namespace coyote::routing {

/// How pool matrices are normalized to "optimum = 1".
enum class Normalization {
  kWithinDags,    ///< by OPTU restricted to the DAGs (the paper's figures)
  kUnrestricted,  ///< by OPTU over all destination-based routings (Sec. IV)
};

class PerformanceEvaluator {
 public:
  /// `engine` may share a warm OPTU solver across evaluators (one per
  /// (graph, DAG-set); see NetworkSweep, which reuses it across margin
  /// points). When null, the evaluator builds a private engine matching
  /// `norm`. A supplied engine must have been built over the same graph
  /// and, for kWithinDags, the same DAG set.
  PerformanceEvaluator(const Graph& g, std::shared_ptr<const DagSet> dags,
                       lp::SimplexOptions lp_options = {},
                       Normalization norm = Normalization::kWithinDags,
                       std::shared_ptr<OptuEngine> engine = nullptr)
      : g_(g), dags_(std::move(dags)), engine_(std::move(engine)) {
    require(dags_ != nullptr, "null dag set");
    // lp_options/norm only shape the default engine: once an engine
    // exists (supplied or built here), it alone defines the
    // normalization LP and its solver options.
    if (engine_ == nullptr) {
      engine_ = (norm == Normalization::kWithinDags)
                    ? std::make_shared<OptuEngine>(g_, dags_, lp_options)
                    : std::make_shared<OptuEngine>(g_, lp_options);
    }
  }

  /// Adds a matrix to the pool: computes OPTU within the DAGs once and
  /// stores the matrix rescaled so its OPTU equals 1. Matrices with zero
  /// demand, or equal (after normalization, up to a small relative
  /// tolerance absorbing LP round-off) to one already pooled, are ignored.
  /// Returns the pool index, or -1 if ignored.
  int addMatrix(const tm::TrafficMatrix& d);

  /// Adds every matrix of a pool (see tm::cornerPool / tm::obliviousPool).
  /// Normalization LPs for distinct matrices are independent and run on
  /// multiple threads; results keep the pool's order.
  void addPool(const std::vector<tm::TrafficMatrix>& pool);

  [[nodiscard]] int size() const { return static_cast<int>(pool_.size()); }
  /// i-th matrix, normalized to OPTU == 1.
  [[nodiscard]] const tm::TrafficMatrix& matrix(int i) const {
    return pool_.at(i);
  }

  /// PERF(cfg, pool) = max_i MxLU(cfg, matrix(i)).
  [[nodiscard]] double ratioFor(const RoutingConfig& cfg) const;

  /// (pool index, ratio) of the worst matrix for cfg; index -1 if empty.
  [[nodiscard]] std::pair<int, double> worst(const RoutingConfig& cfg) const;

  [[nodiscard]] const Graph& graph() const { return g_; }
  [[nodiscard]] std::shared_ptr<const DagSet> dagsPtr() const { return dags_; }

  /// Caps the threads used by addPool/ratioFor/worst. 0 (the default)
  /// uses the process-wide util::ThreadPool::global(); any other value
  /// runs on a private pool of exactly that many threads. Results are
  /// bit-identical for every setting (reduction order is serial).
  void setThreads(unsigned threads);
  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  util::ThreadPool& pool() const;
  /// OPTU of d under the configured normalization; 0 for zero demand.
  double normalizationOf(const tm::TrafficMatrix& d) const;

  const Graph& g_;
  std::shared_ptr<const DagSet> dags_;
  std::shared_ptr<OptuEngine> engine_;
  std::vector<tm::TrafficMatrix> pool_;
  unsigned threads_ = 0;
  std::unique_ptr<util::ThreadPool> own_pool_;
};

}  // namespace coyote::routing
