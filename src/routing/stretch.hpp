// Path-stretch metric (Fig. 11): the average, over all ordered pairs (s,t),
// of the expected hop count of the s->t flow under a routing, divided by the
// expected hop count under the reference (ECMP) routing. Values below 1 are
// possible because ECMP follows weighted shortest paths, which need not be
// hop-shortest (the paper observes this on BBNPlanet).
#pragma once

#include "routing/config.hpp"

namespace coyote::routing {

/// Average of E[hops under cfg] / E[hops under reference] across all pairs
/// with positive reference hop count.
[[nodiscard]] double averageStretch(const Graph& g, const RoutingConfig& cfg,
                                    const RoutingConfig& reference);

}  // namespace coyote::routing
