#include "routing/worst_case.hpp"

#include <vector>

#include "routing/propagation.hpp"
#include "util/thread_pool.hpp"

namespace coyote::routing {
namespace {

/// l[t][s][e-slot] coefficients: fraction of the (s,t) demand placed on each
/// DAG edge of t by cfg. Slots follow dags()[t].edges() ordering.
struct LoadCoefficients {
  // load[t*n+s] maps slot -> l_st(edge).
  std::vector<std::vector<double>> per_pair;

  LoadCoefficients(const Graph& g, const RoutingConfig& cfg) {
    const int n = g.numNodes();
    per_pair.assign(static_cast<std::size_t>(n) * n, {});
    for (NodeId t = 0; t < n; ++t) {
      const Dag& dag = cfg.dags()[t];
      const auto& edges = dag.edges();
      for (NodeId s = 0; s < n; ++s) {
        if (s == t) continue;
        const std::vector<double> f = sourceFractions(g, cfg, s, t);
        auto& l = per_pair[static_cast<std::size_t>(t) * n + s];
        l.assign(edges.size(), 0.0);
        for (std::size_t k = 0; k < edges.size(); ++k) {
          const EdgeId e = edges[k];
          l[k] = f[g.edge(e).src] * cfg.ratio(t, e);
        }
      }
    }
  }
};

class SlaveLp {
 public:
  SlaveLp(const Graph& g, const RoutingConfig& cfg,
          const tm::DemandBounds* box)
      : g_(g), cfg_(cfg), box_(box), coef_(g, cfg) {}

  // Reads only the shared coefficients; safe to call concurrently for
  // different edges (findWorstCaseDemand fans the per-edge LPs out).
  WorstCaseResult solveForEdge(EdgeId target,
                               const lp::SimplexOptions& opt) const {
    const int n = g_.numNodes();
    lp::LpProblem p(lp::Sense::kMaximize);

    // Demand variables. Oblivious case: only pairs whose flow crosses
    // `target` can increase the objective; every other pair's optimal
    // demand is zero (it merely consumes capacity), so we omit it.
    // Box case: all pairs with dmax > 0 participate (they are lower-bounded
    // by lambda*dmin and consume capacity).
    std::vector<std::vector<int>> dvar(n, std::vector<int>(n, -1));
    int lambda = -1;
    int num_dvars = 0;
    if (box_ != nullptr) lambda = p.addVar(0.0, 0.0, lp::kInfinity, "lambda");
    const double target_cap = g_.edge(target).capacity;
    for (NodeId t = 0; t < n; ++t) {
      const auto& edges = cfg_.dags()[t].edges();
      const auto slot = slotOf(edges, target);
      for (NodeId s = 0; s < n; ++s) {
        if (s == t) continue;
        const double l =
            slot ? coef_.per_pair[static_cast<std::size_t>(t) * n + s][*slot]
                 : 0.0;
        const bool in_box = box_ != nullptr && box_->hi.at(s, t) > 0.0;
        if (l <= 0.0 && !in_box) continue;
        dvar[s][t] = p.addVar(l / target_cap, 0.0, lp::kInfinity);
        ++num_dvars;
        if (box_ != nullptr) {
          // d <= lambda*dmax ; d >= lambda*dmin.
          p.addConstraint({{dvar[s][t], 1.0}, {lambda, -box_->hi.at(s, t)}},
                          lp::Rel::kLe, 0.0);
          if (box_->lo.at(s, t) > 0.0) {
            p.addConstraint({{dvar[s][t], 1.0}, {lambda, -box_->lo.at(s, t)}},
                            lp::Rel::kGe, 0.0);
          }
        }
      }
    }

    // No demand can load this edge at all (e.g., every destination routes
    // zero traffic across it): the worst case is trivially 0.
    if (num_dvars == 0) return {tm::TrafficMatrix(n), 0.0, target};

    // Witness flows g_t(e) on DAG edges for destinations with any demand
    // variable; conservation ties them to d.
    std::vector<std::vector<int>> gvar(n);
    for (NodeId t = 0; t < n; ++t) {
      bool any = false;
      for (NodeId s = 0; s < n; ++s) any = any || dvar[s][t] >= 0;
      if (!any) continue;
      const auto& edges = cfg_.dags()[t].edges();
      gvar[t].assign(g_.numEdges(), -1);
      for (const EdgeId e : edges) {
        gvar[t][e] = p.addVar(0.0, 0.0, lp::kInfinity);
      }
      const Dag& dag = cfg_.dags()[t];
      for (NodeId u = 0; u < n; ++u) {
        if (u == t) continue;
        std::vector<lp::Term> terms;
        for (const EdgeId e : dag.outEdges(u)) terms.push_back({gvar[t][e], 1.0});
        for (const EdgeId e : dag.inEdges(u)) terms.push_back({gvar[t][e], -1.0});
        if (dvar[u][t] >= 0) {
          terms.push_back({dvar[u][t], -1.0});
        } else if (terms.empty()) {
          continue;
        }
        p.addConstraint(std::move(terms), lp::Rel::kEq, 0.0);
      }
    }

    // Capacity of every edge.
    for (EdgeId e = 0; e < g_.numEdges(); ++e) {
      std::vector<lp::Term> terms;
      for (NodeId t = 0; t < n; ++t) {
        if (!gvar[t].empty() && gvar[t][e] >= 0) {
          terms.push_back({gvar[t][e], 1.0});
        }
      }
      if (terms.empty()) continue;
      p.addConstraint(std::move(terms), lp::Rel::kLe, g_.edge(e).capacity);
    }

    const lp::LpResult res = lp::solve(p, opt);
    WorstCaseResult out{tm::TrafficMatrix(n), 0.0, target};
    if (res.status != lp::Status::kOptimal) {
      // Degenerate cases (no demand can cross the edge) report ratio 0.
      return out;
    }
    out.ratio = res.objective;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (dvar[s][t] >= 0 && res.x[dvar[s][t]] > 1e-12) {
          out.demand.set(s, t, res.x[dvar[s][t]]);
        }
      }
    }
    return out;
  }

 private:
  static std::optional<std::size_t> slotOf(const std::vector<EdgeId>& edges,
                                           EdgeId e) {
    for (std::size_t k = 0; k < edges.size(); ++k) {
      if (edges[k] == e) return k;
    }
    return std::nullopt;
  }

  const Graph& g_;
  const RoutingConfig& cfg_;
  const tm::DemandBounds* box_;
  LoadCoefficients coef_;
};

}  // namespace

WorstCaseResult findWorstCaseDemandForEdge(const Graph& g,
                                           const RoutingConfig& cfg,
                                           EdgeId edge,
                                           const tm::DemandBounds* box,
                                           const lp::SimplexOptions& opt) {
  require(edge >= 0 && edge < g.numEdges(), "edge out of range");
  SlaveLp lp(g, cfg, box);
  return lp.solveForEdge(edge, opt);
}

WorstCaseResult findWorstCaseDemand(const Graph& g, const RoutingConfig& cfg,
                                    const tm::DemandBounds* box,
                                    const lp::SimplexOptions& opt) {
  SlaveLp lp(g, cfg, box);
  // One independent LP per edge: solve them on the pool, keeping only the
  // per-edge ratio (a full WorstCaseResult per edge would be O(|E| |V|^2)
  // memory), then reduce in edge order so ties keep resolving to the
  // lowest edge id, and re-solve the winner once for its demand matrix.
  std::vector<double> ratio(static_cast<std::size_t>(g.numEdges()), 0.0);
  util::ThreadPool::global().parallelFor(
      static_cast<std::size_t>(g.numEdges()), [&](std::size_t e) {
        ratio[e] = lp.solveForEdge(static_cast<EdgeId>(e), opt).ratio;
      });
  EdgeId arg = kInvalidEdge;
  double best = -1.0;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    if (ratio[e] > best) {
      best = ratio[e];
      arg = e;
    }
  }
  if (arg == kInvalidEdge) {
    return {tm::TrafficMatrix(g.numNodes()), -1.0, kInvalidEdge};
  }
  return lp.solveForEdge(arg, opt);
}

}  // namespace coyote::routing
