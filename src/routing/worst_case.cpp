#include "routing/worst_case.hpp"

#include <algorithm>
#include <vector>

#include "routing/optu.hpp"
#include "routing/propagation.hpp"
#include "util/thread_pool.hpp"

namespace coyote::routing {
namespace {

/// l[t][s][e-slot] coefficients: fraction of the (s,t) demand placed on each
/// DAG edge of t by cfg. Slots follow dags()[t].edges() ordering.
struct LoadCoefficients {
  // load[t*n+s] maps slot -> l_st(edge).
  std::vector<std::vector<double>> per_pair;

  LoadCoefficients(const Graph& g, const RoutingConfig& cfg) {
    const int n = g.numNodes();
    per_pair.assign(static_cast<std::size_t>(n) * n, {});
    for (NodeId t = 0; t < n; ++t) {
      const Dag& dag = cfg.dags()[t];
      const auto& edges = dag.edges();
      for (NodeId s = 0; s < n; ++s) {
        if (s == t) continue;
        const std::vector<double> f = sourceFractions(g, cfg, s, t);
        auto& l = per_pair[static_cast<std::size_t>(t) * n + s];
        l.assign(edges.size(), 0.0);
        for (std::size_t k = 0; k < edges.size(); ++k) {
          const EdgeId e = edges[k];
          l[k] = f[g.edge(e).src] * cfg.ratio(t, e);
        }
      }
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// WorstCaseOracle::Impl
//
// The constraint matrix (conservation, capacity, box scaling) depends only
// on (graph, DAGs, box): demand variables exist for every pair the DAGs can
// route (restricted to hi > 0 in the box case; pairs the box pins to zero
// or the DAGs cannot carry are omitted -- conservation fixed them at zero
// in the per-edge formulation, which is equivalent, except that a pair
// with a positive box *lower* bound the DAGs cannot route pins lambda to
// zero, detected up front as `forced_zero_`). The target edge and the
// routing phi enter through the objective alone, so an edge scan is a
// sequence of setObjective + warm solve on a retained session.
// ---------------------------------------------------------------------------
class WorstCaseOracle::Impl {
 public:
  Impl(const Graph& g, std::shared_ptr<const DagSet> dags,
       const tm::DemandBounds* box, const lp::SimplexOptions& opt)
      : g_(g), dags_(std::move(dags)), box_(box), opt_(opt) {
    require(dags_ != nullptr, "null dag set");
    require(static_cast<int>(dags_->size()) == g.numNodes(), "bad dag set");
    build();
  }

  WorstCaseResult find(const RoutingConfig& cfg) {
    requireSameDags(cfg);
    const int n = g_.numNodes();
    const int m = g_.numEdges();
    if (num_dvars_ == 0 || forced_zero_) {
      return {tm::TrafficMatrix(n), 0.0, m > 0 ? 0 : kInvalidEdge};
    }
    const LoadCoefficients coef(g_, cfg);

    // One independent LP per edge, scanned in fixed-size chunks (chunk k
    // handles edges [k*kEdgeChunk, ...)); the chunk -> session mapping is
    // stable across calls, and each edge warm-starts from its own basis
    // of the previous cutting-plane round (see solveEdge). Only the
    // per-edge ratio is kept (a full result per edge would be
    // O(|E| |V|^2) memory); the winner -- reduced in edge order so ties
    // resolve to the lowest edge id -- is re-solved from its stored
    // basis for its demand matrix.
    const std::size_t chunk_size =
        OptuEngine::coldOverride() ? 1 : kEdgeChunk;
    const std::size_t chunks =
        (static_cast<std::size_t>(m) + chunk_size - 1) / chunk_size;
    if (sessions_.size() != chunks) {
      sessions_.clear();
      for (std::size_t c = 0; c < chunks; ++c) {
        sessions_.push_back(
            std::make_unique<Session>(Session{lp::SimplexSolver(problem_, opt_), {}}));
      }
    }
    if (edge_basis_.size() != static_cast<std::size_t>(m)) {
      edge_basis_.assign(static_cast<std::size_t>(m), {});
    }
    std::vector<double> ratio(static_cast<std::size_t>(m), 0.0);
    util::ThreadPool::global().parallelFor(chunks, [&](std::size_t c) {
      Session& session = *sessions_[c];
      if (OptuEngine::coldOverride()) session.solver.setBasis({});
      const EdgeId begin = static_cast<EdgeId>(c * chunk_size);
      const EdgeId end = std::min<EdgeId>(m, begin + chunk_size);
      for (EdgeId e = begin; e < end; ++e) {
        ratio[e] = solveEdge(session, coef, e);
      }
    });

    EdgeId arg = kInvalidEdge;
    double best = -1.0;
    for (EdgeId e = 0; e < m; ++e) {
      if (ratio[e] > best) {
        best = ratio[e];
        arg = e;
      }
    }
    if (arg == kInvalidEdge) {
      return {tm::TrafficMatrix(n), -1.0, kInvalidEdge};
    }
    return resolveEdge(coef, arg);
  }

  WorstCaseResult findForEdge(const RoutingConfig& cfg, EdgeId edge) {
    requireSameDags(cfg);
    require(edge >= 0 && edge < g_.numEdges(), "edge out of range");
    if (num_dvars_ == 0 || forced_zero_) {
      return {tm::TrafficMatrix(g_.numNodes()), 0.0, edge};
    }
    return resolveEdge(LoadCoefficients(g_, cfg), edge);
  }

  void setFailedEdges(const std::vector<EdgeId>& edges) {
    std::vector<char> mask(g_.numEdges(), 0);
    for (const EdgeId e : edges) {
      require(e >= 0 && e < g_.numEdges(), "failed edge out of range");
      mask[e] = 1;
    }
    for (EdgeId e = 0; e < g_.numEdges(); ++e) {
      if (cap_row_[e] < 0) continue;
      const double rhs = mask[e] ? 0.0 : g_.edge(e).capacity;
      if (problem_.rowRhs(cap_row_[e]) == rhs) continue;
      // Template plus every retained session: fresh sessions clone the
      // template, retained ones keep their bases as warm starts.
      problem_.setConstraintRhs(cap_row_[e], rhs);
      for (const auto& session : sessions_) {
        session->solver.setRhs(cap_row_[e], rhs);
      }
    }
  }

 private:
  /// Cold solve of one edge's LP with the demand matrix extracted
  /// (`coef` is reused from the caller's scan -- it costs O(|V|^2) flow
  /// propagations to build).
  WorstCaseResult resolveEdge(const LoadCoefficients& coef, EdgeId edge) {
    const int n = g_.numNodes();
    WorstCaseResult out{tm::TrafficMatrix(n), 0.0, edge};
    Session session{lp::SimplexSolver(problem_, opt_), {}};
    // The scan (if any) just solved this edge and stored its optimal
    // basis; re-solving from it recovers the full demand vector in a
    // handful of pivots instead of a cold phase-1 solve.
    if (opt_.dual_simplex && !OptuEngine::coldOverride() &&
        static_cast<std::size_t>(edge) < edge_basis_.size() &&
        !edge_basis_[edge].empty()) {
      session.solver.setBasis(edge_basis_[edge]);
    }
    setEdgeObjective(session, coef, edge);
    const lp::LpResult res = session.solver.solve();
    if (res.status != lp::Status::kOptimal) {
      // Degenerate cases (no demand can cross the edge) report ratio 0.
      return out;
    }
    out.ratio = res.objective;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (dvar_[s][t] >= 0 && res.x[dvar_[s][t]] > 1e-12) {
          out.demand.set(s, t, res.x[dvar_[s][t]]);
        }
      }
    }
    return out;
  }

 private:
  struct Session {
    lp::SimplexSolver solver;
    std::vector<int> objective_vars;  ///< vars with nonzero obj installed
  };

  /// The template's var/slot maps are indexed by the oracle's DAG set; a
  /// routing over a different set would read them out of bounds.
  void requireSameDags(const RoutingConfig& cfg) const {
    require(cfg.dagsPtr().get() == dags_.get(),
            "routing uses a different DAG set than the oracle");
  }

  void build() {
    const int n = g_.numNodes();
    dvar_.assign(n, std::vector<int>(n, -1));
    num_dvars_ = 0;
    lambda_ = -1;
    lp::LpProblem p(lp::Sense::kMaximize);

    // Demand variables: every pair the DAGs can route (and, in the box
    // case, the box does not pin to zero). Pairs that cannot cross the
    // target edge keep objective coefficient 0 for that edge; their
    // optimal value does not affect the objective.
    //
    // A box pair with a *positive lower bound* the DAGs cannot route at
    // all pins lambda to 0 (no scaled copy of the box is routable): the
    // whole oracle is degenerate and every ratio is 0. Detect it here
    // instead of carrying the pinned variable through every solve.
    if (box_ != nullptr) {
      for (NodeId t = 0; t < n && !forced_zero_; ++t) {
        const Dag& dag = (*dags_)[t];
        for (NodeId s = 0; s < n && !forced_zero_; ++s) {
          if (s != t && box_->lo.at(s, t) > 0.0 &&
              (dag.edges().empty() || !dag.reachesDest(s))) {
            forced_zero_ = true;
          }
        }
      }
      lambda_ = p.addVar(0.0, 0.0, lp::kInfinity, "lambda");
    }
    for (NodeId t = 0; t < n; ++t) {
      const Dag& dag = (*dags_)[t];
      if (dag.edges().empty()) continue;
      for (NodeId s = 0; s < n; ++s) {
        if (s == t || !dag.reachesDest(s)) continue;
        if (box_ != nullptr && box_->hi.at(s, t) <= 0.0) continue;
        dvar_[s][t] = p.addVar(0.0, 0.0, lp::kInfinity);
        ++num_dvars_;
        if (box_ != nullptr) {
          // d <= lambda*dmax ; d >= lambda*dmin.
          p.addConstraint({{dvar_[s][t], 1.0}, {lambda_, -box_->hi.at(s, t)}},
                          lp::Rel::kLe, 0.0);
          if (box_->lo.at(s, t) > 0.0) {
            p.addConstraint({{dvar_[s][t], 1.0}, {lambda_, -box_->lo.at(s, t)}},
                            lp::Rel::kGe, 0.0);
          }
        }
      }
    }

    // Witness flows g_t(e) on DAG edges for destinations with any demand
    // variable; conservation ties them to d. Per-destination variable
    // blocks are sized by the destination's DAG (its reachable subgraph),
    // not |E|: the dense [t][e] maps this used to keep cost
    // O(|V| |E|) ints, which is what large scaling rungs cannot afford.
    // A dense scratch keyed by edge id is reused across destinations
    // (targeted clear), and capacity-row terms are bucketed per edge as
    // variables appear, so the t-ascending term order of the historical
    // dense scan is reproduced exactly -- ids, rows and solves stay
    // bit-identical.
    std::vector<int> gvar(static_cast<std::size_t>(g_.numEdges()), -1);
    std::vector<std::vector<lp::Term>> cap_terms(
        static_cast<std::size_t>(g_.numEdges()));
    for (NodeId t = 0; t < n; ++t) {
      bool any = false;
      for (NodeId s = 0; s < n; ++s) any = any || dvar_[s][t] >= 0;
      if (!any) continue;
      const Dag& dag = (*dags_)[t];
      for (const EdgeId e : dag.edges()) {
        gvar[e] = p.addVar(0.0, 0.0, lp::kInfinity);
        cap_terms[e].push_back({gvar[e], 1.0});
      }
      for (NodeId u = 0; u < n; ++u) {
        if (u == t) continue;
        std::vector<lp::Term> terms;
        for (const EdgeId e : dag.outEdges(u)) terms.push_back({gvar[e], 1.0});
        for (const EdgeId e : dag.inEdges(u)) terms.push_back({gvar[e], -1.0});
        if (dvar_[u][t] >= 0) {
          terms.push_back({dvar_[u][t], -1.0});
        } else if (terms.empty()) {
          continue;
        }
        p.addConstraint(std::move(terms), lp::Rel::kEq, 0.0);
      }
      for (const EdgeId e : dag.edges()) gvar[e] = -1;
    }

    // Capacity of every edge (row index kept for setFailedEdges). The
    // buckets were appended in destination order above, matching the
    // dense scan's term order.
    cap_row_.assign(g_.numEdges(), -1);
    for (EdgeId e = 0; e < g_.numEdges(); ++e) {
      if (cap_terms[e].empty()) continue;
      cap_row_[e] = p.numRows();
      p.addConstraint(std::move(cap_terms[e]), lp::Rel::kLe,
                      g_.edge(e).capacity);
    }

    // Objective postings: for each edge, the destinations whose DAG uses
    // it plus the edge's slot within dags[t].edges(). Replaces the dense
    // [t][e] slot map; setEdgeObjective then touches only destinations
    // that can actually load the target edge.
    edge_dests_.assign(static_cast<std::size_t>(g_.numEdges()), {});
    for (NodeId t = 0; t < n; ++t) {
      const auto& edges = (*dags_)[t].edges();
      for (std::size_t k = 0; k < edges.size(); ++k) {
        edge_dests_[edges[k]].push_back({t, static_cast<int>(k)});
      }
    }
    problem_ = std::move(p);
  }

  void setEdgeObjective(Session& session, const LoadCoefficients& coef,
                        EdgeId target) const {
    for (const int var : session.objective_vars) {
      session.solver.setObjective(var, 0.0);
    }
    session.objective_vars.clear();
    const int n = g_.numNodes();
    const double cap = g_.edge(target).capacity;
    // Postings are dest-ascending, so the objective_vars order matches
    // the historical dense [t][e] scan.
    for (const DestSlot& ds : edge_dests_[target]) {
      const NodeId t = ds.dest;
      for (NodeId s = 0; s < n; ++s) {
        if (s == t || dvar_[s][t] < 0) continue;
        const double l =
            coef.per_pair[static_cast<std::size_t>(t) * n + s][ds.slot];
        if (l <= 0.0) continue;
        session.solver.setObjective(dvar_[s][t], l / cap);
        session.objective_vars.push_back(dvar_[s][t]);
      }
    }
  }

  double solveEdge(Session& session, const LoadCoefficients& coef,
                   EdgeId target) {
    setEdgeObjective(session, coef, target);
    if (session.objective_vars.empty()) return 0.0;  // nothing loads it
    // Each edge re-solves from its *own* previous optimal basis (stored
    // across cutting-plane rounds) rather than from whatever edge the
    // chunk chain solved last: the routing moves only a little between
    // rounds, so the same-edge basis is usually optimal or one pivot
    // away, while the neighboring edge's basis prices a fully different
    // objective. Each edge belongs to exactly one chunk, so the slot is
    // touched by a single pool worker and the scan stays bit-identical
    // for any thread count.
    // Stored-basis warm entry rides the dual-simplex machinery (after a
    // setFailedEdges rhs mutation the memoized basis is typically primal-
    // infeasible and re-enters through the dual), so the same option --
    // and therefore the COYOTE_LP_DUAL escape hatch -- gates both.
    const bool memo_on = opt_.dual_simplex && !OptuEngine::coldOverride();
    lp::Basis& memo = edge_basis_[target];
    if (memo_on && !memo.empty()) {
      session.solver.setBasis(memo);
    }
    const lp::LpResult res = session.solver.solve();
    if (res.status != lp::Status::kOptimal) return 0.0;
    if (memo_on) memo = session.solver.basis();
    return res.objective;
  }

  const Graph& g_;
  std::shared_ptr<const DagSet> dags_;
  const tm::DemandBounds* box_;
  lp::SimplexOptions opt_;
  lp::LpProblem problem_{lp::Sense::kMaximize};
  int lambda_ = -1;
  int num_dvars_ = 0;
  bool forced_zero_ = false;  ///< box demands a pair the DAGs cannot route
  struct DestSlot {
    NodeId dest;  ///< destination whose DAG uses the edge
    int slot;     ///< edge's index within dags[dest].edges()
  };
  std::vector<std::vector<int>> dvar_;  ///< [s][t]
  /// [e] -> postings of the dests whose DAG uses e, dest-ascending.
  std::vector<std::vector<DestSlot>> edge_dests_;
  std::vector<int> cap_row_;            ///< [e] capacity row or -1
  std::vector<std::unique_ptr<Session>> sessions_;  ///< one per edge chunk
  /// Per-edge optimal basis from the previous scan; slot e is only ever
  /// touched by the chunk that owns edge e (see solveEdge).
  std::vector<lp::Basis> edge_basis_;
};

WorstCaseOracle::WorstCaseOracle(const Graph& g,
                                 std::shared_ptr<const DagSet> dags,
                                 const tm::DemandBounds* box,
                                 const lp::SimplexOptions& opt)
    : impl_(std::make_unique<Impl>(g, std::move(dags), box, opt)) {}
WorstCaseOracle::~WorstCaseOracle() = default;

WorstCaseResult WorstCaseOracle::find(const RoutingConfig& cfg) {
  return impl_->find(cfg);
}

WorstCaseResult WorstCaseOracle::findForEdge(const RoutingConfig& cfg,
                                             EdgeId edge) {
  return impl_->findForEdge(cfg, edge);
}

void WorstCaseOracle::setFailedEdges(const std::vector<EdgeId>& edges) {
  impl_->setFailedEdges(edges);
}

WorstCaseResult findWorstCaseDemandForEdge(const Graph& g,
                                           const RoutingConfig& cfg,
                                           EdgeId edge,
                                           const tm::DemandBounds* box,
                                           const lp::SimplexOptions& opt) {
  require(edge >= 0 && edge < g.numEdges(), "edge out of range");
  WorstCaseOracle oracle(g, cfg.dagsPtr(), box, opt);
  return oracle.findForEdge(cfg, edge);
}

WorstCaseResult findWorstCaseDemand(const Graph& g, const RoutingConfig& cfg,
                                    const tm::DemandBounds* box,
                                    const lp::SimplexOptions& opt) {
  WorstCaseOracle oracle(g, cfg.dagsPtr(), box, opt);
  return oracle.find(cfg);
}

}  // namespace coyote::routing
