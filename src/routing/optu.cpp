#include "routing/optu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lp/stats.hpp"
#include "util/env.hpp"

namespace coyote::routing {

/// Constraint matrix, variable map and row map for one active-destination
/// signature. `problem` is the rhs-agnostic skeleton (conservation rhs 0);
/// `serial` is the retained warm-start session of the serial entry points.
///
/// Per-destination variable maps are sparse (edge, var) pair lists in
/// variable-creation order, so a destination's block costs O(|DAG_t|)
/// instead of O(|E|) -- on a fat-tree rung the dense [t][e] maps alone
/// would dwarf the LP itself.
struct OptuEngine::Template {
  /// One destination's flow variables: parallel arrays in the DAG's edge
  /// order (unrestricted mode: ascending edge id), which is exactly the
  /// historical addVar order -- column ids are unchanged.
  struct DestVars {
    std::vector<EdgeId> edges;
    std::vector<int> vars;
  };

  lp::LpProblem problem{lp::Sense::kMinimize};
  int alpha = -1;
  std::vector<char> active;              ///< [t] 1 if destination modeled
  std::vector<DestVars> var;             ///< [t] sparse flow-var block
  std::vector<std::vector<int>> row;     ///< [t][u] conservation row or -1
  std::vector<int> cap_row;              ///< [e] capacity row or -1
  std::unique_ptr<lp::SimplexSolver> serial;
  /// Decomposition crossover basis (empty when not built/worthwhile).
  /// Computed at most once per template; batch chunk clones and the first
  /// serial solve warm-start from it instead of an all-logical cold basis.
  lp::Basis seed;
  bool tried_seed = false;
  bool warmed = false;  ///< serial session has solved (or been seeded)
};

OptuEngine::OptuEngine(const Graph& g, std::shared_ptr<const DagSet> dags,
                       lp::SimplexOptions opt)
    : g_(g), dags_(std::move(dags)), opt_(opt) {
  require(dags_ != nullptr, "null dag set");
  require(static_cast<int>(dags_->size()) == g.numNodes(), "bad dag set");
}

OptuEngine::OptuEngine(const Graph& g, lp::SimplexOptions opt)
    : g_(g), dags_(nullptr), opt_(opt) {}

OptuEngine::~OptuEngine() = default;

std::vector<char> OptuEngine::activeSignature(
    const tm::TrafficMatrix& d) const {
  require(d.numNodes() == g_.numNodes(), "matrix/graph size mismatch");
  const int n = g_.numNodes();
  std::vector<char> active(n, 0);
  for (NodeId t = 0; t < n; ++t) {
    for (NodeId s = 0; s < n; ++s) {
      if (s != t && d.at(s, t) > 0.0) {
        active[t] = 1;
        break;
      }
    }
  }
  return active;
}

OptuEngine::Template& OptuEngine::templateFor(const std::vector<char>& active) {
  std::string key(active.begin(), active.end());
  const auto it = cache_.find(key);
  if (it != cache_.end()) return *it->second;

  auto tpl = std::make_unique<Template>();
  Template& t = *tpl;
  t.active = active;
  const int n = g_.numNodes();
  t.alpha = t.problem.addVar(1.0, 0.0, lp::kInfinity, "alpha");
  t.var.assign(n, {});
  t.row.assign(n, {});
  // One pass over the destinations builds everything sparsity-aware:
  // variables and conservation rows per destination (a dense per-edge
  // scratch map lives only for the current destination), while the
  // capacity-row terms accumulate in per-edge buckets. addVar/addConstraint
  // sequences are unchanged from the historical all-vars-then-all-rows
  // construction (variable and row counters are independent), so column
  // and row ids -- and therefore the solves -- are bit-identical.
  std::vector<std::vector<lp::Term>> cap_terms(
      static_cast<std::size_t>(g_.numEdges()));
  std::vector<int> scratch(static_cast<std::size_t>(g_.numEdges()), -1);
  for (NodeId dest = 0; dest < n; ++dest) {
    if (!active[dest]) continue;
    Template::DestVars& dv = t.var[dest];
    if (dags_ != nullptr) {
      const auto& dag_edges = (*dags_)[dest].edges();
      dv.edges.reserve(dag_edges.size());
      dv.vars.reserve(dag_edges.size());
      for (const EdgeId e : dag_edges) {
        dv.edges.push_back(e);
        dv.vars.push_back(t.problem.addVar(0.0, 0.0, lp::kInfinity));
      }
    } else {
      for (EdgeId e = 0; e < g_.numEdges(); ++e) {
        if (g_.edge(e).src != dest) {
          dv.edges.push_back(e);
          dv.vars.push_back(t.problem.addVar(0.0, 0.0, lp::kInfinity));
        }
      }
    }
    for (std::size_t j = 0; j < dv.edges.size(); ++j) {
      scratch[dv.edges[j]] = dv.vars[j];
      // Bucketed capacity terms: destinations are visited in ascending
      // order, reproducing the dense scan's per-edge term order.
      cap_terms[dv.edges[j]].push_back({dv.vars[j], 1.0});
    }
    // Conservation at every non-destination node (rhs filled per matrix).
    t.row[dest].assign(n, -1);
    for (NodeId u = 0; u < n; ++u) {
      if (u == dest) continue;
      std::vector<lp::Term> terms;
      for (const EdgeId e : g_.outEdges(u)) {
        if (scratch[e] >= 0) terms.push_back({scratch[e], 1.0});
      }
      for (const EdgeId e : g_.inEdges(u)) {
        if (scratch[e] >= 0) terms.push_back({scratch[e], -1.0});
      }
      if (terms.empty()) continue;
      t.row[dest][u] = t.problem.numRows();
      t.problem.addConstraint(std::move(terms), lp::Rel::kEq, 0.0);
    }
    for (const EdgeId e : dv.edges) scratch[e] = -1;
  }
  // Capacity: sum_t g_t(e) - alpha*c(e) <= 0.
  t.cap_row.assign(g_.numEdges(), -1);
  for (EdgeId e = 0; e < g_.numEdges(); ++e) {
    if (cap_terms[e].empty()) continue;
    std::vector<lp::Term> terms = std::move(cap_terms[e]);
    terms.push_back({t.alpha, -g_.edge(e).capacity});
    t.cap_row[e] = t.problem.numRows();
    t.problem.addConstraint(std::move(terms), lp::Rel::kLe, 0.0);
  }
  t.serial = std::make_unique<lp::SimplexSolver>(t.problem, opt_);
  applyFailures(t);  // templates built mid-failure inherit the failed set
  return *cache_.emplace(std::move(key), std::move(tpl)).first->second;
}

void OptuEngine::applyDemand(lp::SimplexSolver& solver, const Template& t,
                             const tm::TrafficMatrix& d) const {
  const int n = g_.numNodes();
  for (NodeId dest = 0; dest < n; ++dest) {
    if (!t.active[dest]) continue;
    for (NodeId u = 0; u < n; ++u) {
      if (u == dest) continue;
      const double dem = d.at(u, dest);
      const int row = t.row[dest][u];
      if (row < 0) {
        require(dem <= 0.0, "demand from " + g_.nodeName(u) + " to " +
                                g_.nodeName(dest) +
                                " cannot be routed (no usable edges)");
        continue;
      }
      solver.setRhs(row, dem);
    }
  }
}

double OptuEngine::solveAlpha(lp::SimplexSolver& solver, const Template& t) {
  const lp::LpResult res = solver.solve();
  if (res.status != lp::Status::kOptimal) {
    throw std::runtime_error("OPTU LP not optimal: " +
                             lp::toString(res.status));
  }
  return res.x[t.alpha];
}

void OptuEngine::applyFailures(Template& t) const {
  if (failed_.empty()) return;
  for (NodeId dest = 0; dest < g_.numNodes(); ++dest) {
    if (!t.active[dest]) continue;
    const Template::DestVars& dv = t.var[dest];
    for (std::size_t j = 0; j < dv.edges.size(); ++j) {
      const double ub = failed_[dv.edges[j]] ? 0.0 : lp::kInfinity;
      t.problem.setVarBounds(dv.vars[j], 0.0, ub);
      t.serial->setBounds(dv.vars[j], 0.0, ub);
    }
  }
}

void OptuEngine::setFailedEdges(const std::vector<EdgeId>& edges) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<char> mask;
  if (!edges.empty()) {
    mask.assign(g_.numEdges(), 0);
    for (const EdgeId e : edges) {
      require(e >= 0 && e < g_.numEdges(), "failed edge out of range");
      mask[e] = 1;
    }
  }
  if (mask == failed_) return;
  // Mutate every cached template (skeleton + retained session): clones made
  // by utilizationBatch and future solves all see the new network, and the
  // retained bases stay valid warm starts (phase 1 repairs feasibility).
  const std::vector<char> previous = std::move(failed_);
  failed_ = std::move(mask);
  for (auto& [key, tpl] : cache_) {
    Template& t = *tpl;
    for (NodeId dest = 0; dest < g_.numNodes(); ++dest) {
      if (!t.active[dest]) continue;
      const Template::DestVars& dv = t.var[dest];
      for (std::size_t j = 0; j < dv.edges.size(); ++j) {
        const EdgeId e = dv.edges[j];
        const bool was = !previous.empty() && previous[e];
        const bool now = !failed_.empty() && failed_[e];
        if (was == now) continue;
        const double ub = now ? 0.0 : lp::kInfinity;
        t.problem.setVarBounds(dv.vars[j], 0.0, ub);
        t.serial->setBounds(dv.vars[j], 0.0, ub);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Block decomposition. The OPTU constraint matrix is block-angular: the
// per-destination conservation blocks share nothing but the capacity rows
// and alpha. Given per-edge prices, each destination's cheapest routing is
// an independent min-cost flow LP; iterating a deterministic multiplicative
// price update against the resulting bottlenecks yields a near-optimal flow
// whose block bases assemble ("cross over") into a full-problem basis:
//
//   * block variable/conservation-logical statuses map 1:1 onto the full
//     columns (the block basis matrices reappear unchanged on the full
//     basis diagonal);
//   * every capacity-row logical is basic except on the most-utilized edge
//     r*, where alpha enters the basis instead.
//
// The assembled matrix is block lower triangular with nonsingular diagonal
// blocks (det = prod(det B_block) * (-c_{r*})), and because alpha is basic
// on the max-utilization row, alpha = max_e load_e/c_e covers every other
// capacity row -- the basis is *primal feasible* for the decomposed flow,
// so the full monolithic solve that follows skips phase 1 entirely and
// merely prices out the remaining gap to the exact LP optimum.
// ---------------------------------------------------------------------------

bool OptuEngine::decompEnabled() {
  return util::envString("COYOTE_LP_DECOMP", "1") != "0";
}

lp::Basis OptuEngine::decomposeSeed(const Template& t,
                                    const tm::TrafficMatrix& d,
                                    util::ThreadPool* tp) const {
  if (t.problem.numRows() < kDecompMinRows) return {};
  const int n = g_.numNodes();
  const int ne = g_.numEdges();

  // Per-destination min-cost-flow block: vars in ascending edge-id order
  // (the historical dense-scan order), rows in the full template's order,
  // so statuses map across by position.
  struct Block {
    NodeId dest = 0;
    std::vector<EdgeId> edges;  ///< block var j -> edge id
    std::vector<int> fullvar;   ///< block var j -> full-problem var id
    std::vector<int> rows;      ///< block row i -> full row id
    std::unique_ptr<lp::SimplexSolver> session;
    std::vector<double> flow;   ///< per block var, last optimal solution
    bool ok = true;
  };

  // Initial prices: inverse capacity (crossing a thin link is expensive),
  // the classic starting point for price-directed decomposition.
  std::vector<double> price(ne, 0.0);
  for (EdgeId e = 0; e < ne; ++e) {
    const double c = g_.edge(e).capacity;
    if (c > 0.0) price[e] = 1.0 / c;
  }

  std::vector<Block> blocks;
  std::vector<int> bvar(ne, -1);
  for (NodeId dest = 0; dest < n; ++dest) {
    if (!t.active[dest] || t.var[dest].edges.empty()) continue;
    const Template::DestVars& dv = t.var[dest];
    Block b;
    b.dest = dest;
    // The sparse template block is in DAG edge order; sort a copy by edge
    // id to reproduce the historical ascending-edge block layout.
    b.edges = dv.edges;
    b.fullvar = dv.vars;
    {
      std::vector<std::size_t> order(b.edges.size());
      for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return b.edges[x] < b.edges[y];
      });
      std::vector<EdgeId> edges_sorted(b.edges.size());
      std::vector<int> fullvar_sorted(b.edges.size());
      for (std::size_t j = 0; j < order.size(); ++j) {
        edges_sorted[j] = b.edges[order[j]];
        fullvar_sorted[j] = b.fullvar[order[j]];
      }
      b.edges = std::move(edges_sorted);
      b.fullvar = std::move(fullvar_sorted);
    }
    lp::LpProblem prob(lp::Sense::kMinimize);
    for (std::size_t j = 0; j < b.edges.size(); ++j) {
      const EdgeId e = b.edges[j];
      // Pin what the full problem pins: failed edges (bounds) and
      // zero-capacity edges (whose capacity row forces zero flow).
      const bool pinned = (!failed_.empty() && failed_[e]) ||
                          g_.edge(e).capacity <= 0.0;
      bvar[e] = prob.addVar(price[e], 0.0, pinned ? 0.0 : lp::kInfinity);
    }
    for (NodeId u = 0; u < n; ++u) {
      if (u == dest || t.row[dest][u] < 0) continue;
      std::vector<lp::Term> terms;
      for (const EdgeId e : g_.outEdges(u)) {
        if (bvar[e] >= 0) terms.push_back({bvar[e], 1.0});
      }
      for (const EdgeId e : g_.inEdges(u)) {
        if (bvar[e] >= 0) terms.push_back({bvar[e], -1.0});
      }
      b.rows.push_back(t.row[dest][u]);
      prob.addConstraint(std::move(terms), lp::Rel::kEq, d.at(u, dest));
    }
    for (const EdgeId e : b.edges) bvar[e] = -1;
    b.session = std::make_unique<lp::SimplexSolver>(std::move(prob), opt_);
    blocks.push_back(std::move(b));
  }
  if (blocks.empty()) return {};

  std::vector<double> load(ne, 0.0);
  for (int round = 0; round < kDecompRounds; ++round) {
    const auto solveBlock = [&](std::size_t bi) {
      Block& b = blocks[bi];
      if (!b.ok) return;
      const lp::LpResult res = b.session->solve();
      if (res.status != lp::Status::kOptimal) {
        b.ok = false;  // unroutable under pins: let the full solve report
        return;
      }
      b.flow = res.x;
    };
    // Fixed-size chunks on the pool (or serial): each block is an
    // independent LP warm-chained only against its own previous round, so
    // the fan-out is bit-identical for any thread count.
    if (tp != nullptr && blocks.size() > 1) {
      const std::size_t nchunks =
          (blocks.size() + kBlockChunk - 1) / kBlockChunk;
      tp->parallelFor(nchunks, [&](std::size_t ci) {
        const std::size_t lo = ci * kBlockChunk;
        const std::size_t hi = std::min(blocks.size(), lo + kBlockChunk);
        for (std::size_t bi = lo; bi < hi; ++bi) solveBlock(bi);
      });
    } else {
      for (std::size_t bi = 0; bi < blocks.size(); ++bi) solveBlock(bi);
    }
    for (const Block& b : blocks) {
      if (!b.ok) return {};
    }

    // Deterministic serial reduction in destination order.
    std::fill(load.begin(), load.end(), 0.0);
    for (const Block& b : blocks) {
      for (std::size_t j = 0; j < b.edges.size(); ++j) {
        load[b.edges[j]] += std::max(0.0, b.flow[j]);
      }
    }
    double umax = 0.0;
    for (EdgeId e = 0; e < ne; ++e) {
      const double c = g_.edge(e).capacity;
      if (c > 0.0) umax = std::max(umax, load[e] / c);
    }
    if (round + 1 == kDecompRounds || umax <= 0.0) break;

    // Multiplicative-weights price update: bottlenecked edges get
    // exponentially dearer (normalized so sum price*c = 1 for scale
    // stability); objective-only mutations keep the block bases warm.
    double scale = 0.0;
    for (EdgeId e = 0; e < ne; ++e) {
      const double c = g_.edge(e).capacity;
      if (c <= 0.0) continue;
      price[e] *= std::exp(load[e] / (c * umax));
      scale += price[e] * c;
    }
    if (scale > 0.0) {
      for (EdgeId e = 0; e < ne; ++e) price[e] /= scale;
    }
    for (Block& b : blocks) {
      for (std::size_t j = 0; j < b.edges.size(); ++j) {
        b.session->setObjective(static_cast<int>(j), price[b.edges[j]]);
      }
    }
  }

  lp::StatsSnapshot delta;
  delta.decomp_rounds = kDecompRounds;
  lp::GlobalStats::instance().record(delta);

  // Crossover: assemble the full-problem basis from the block bases.
  lp::Basis seed;
  const int nv = t.problem.numVars();
  seed.status.assign(static_cast<std::size_t>(nv) + t.problem.numRows(),
                     lp::Basis::kAtLower);
  for (const Block& b : blocks) {
    const lp::Basis& bb = b.session->basis();
    const int bn = static_cast<int>(b.edges.size());
    for (int j = 0; j < bn; ++j) {
      seed.status[b.fullvar[j]] = bb.status[j];
    }
    for (std::size_t i = 0; i < b.rows.size(); ++i) {
      seed.status[nv + b.rows[i]] = bb.status[bn + static_cast<int>(i)];
    }
  }
  int rstar = -1;
  double ustar = 0.0;
  for (EdgeId e = 0; e < ne; ++e) {
    if (t.cap_row[e] < 0) continue;
    seed.status[nv + t.cap_row[e]] = lp::Basis::kBasic;
    const double c = g_.edge(e).capacity;
    if (c > 0.0 && load[e] / c > ustar) {  // strict: ties keep lowest e
      ustar = load[e] / c;
      rstar = e;
    }
  }
  if (rstar >= 0) {
    // alpha enters the basis on the most-utilized capacity row; its
    // logical leaves. alpha = ustar then satisfies every capacity row.
    seed.status[nv + t.cap_row[rstar]] = lp::Basis::kAtLower;
    seed.status[t.alpha] = lp::Basis::kBasic;
  }
  return seed;
}

const lp::Basis& OptuEngine::ensureSeed(Template& t,
                                        const tm::TrafficMatrix& d,
                                        util::ThreadPool* tp) {
  if (!t.tried_seed && decompEnabled() && !coldOverride()) {
    t.tried_seed = true;
    t.seed = decomposeSeed(t, d, tp);
  }
  return t.seed;
}

double OptuEngine::utilization(const tm::TrafficMatrix& d) {
  const std::vector<char> active = activeSignature(d);
  const std::lock_guard<std::mutex> lock(mutex_);
  Template& t = templateFor(active);
  if (coldOverride()) {
    t.serial->setBasis({});
  } else if (!t.warmed) {
    // First solve on this template: seed the session from the
    // decomposition crossover basis instead of an all-logical cold start.
    // (Serial entries may run inside pool workers, so blocks solve
    // serially here; utilizationBatch passes the pool.)
    const lp::Basis& seed = ensureSeed(t, d, nullptr);
    if (!seed.empty()) t.serial->setBasis(seed);
    t.warmed = true;
  }
  applyDemand(*t.serial, t, d);
  return solveAlpha(*t.serial, t);
}

bool OptuEngine::coldOverride() { return util::envFlag("COYOTE_LP_COLD"); }

std::vector<double> OptuEngine::utilizationBatch(
    const std::vector<tm::TrafficMatrix>& pool, util::ThreadPool& tp) {
  // Group matrices by signature, then cut every group into fixed-size
  // chunks; each chunk is one warm-start chain on its own session clone.
  // The chunking is independent of the thread count, so results (and
  // pivot counts) are identical no matter how the chunks are scheduled.
  std::vector<double> out(pool.size(), 0.0);
  std::unordered_map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::string> group_order;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const std::vector<char> active = activeSignature(pool[i]);
    std::string key(active.begin(), active.end());
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) group_order.push_back(it->first);
    it->second.push_back(i);
  }

  struct Chunk {
    const Template* tpl = nullptr;
    const lp::Basis* seed = nullptr;  ///< decomposition crossover basis
    std::vector<std::size_t> indices;
  };
  const std::size_t chunk_size = coldOverride() ? 1 : kBatchChunk;
  std::vector<Chunk> chunks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& key : group_order) {
      const std::vector<std::size_t>& members = groups[key];
      Template& t = templateFor(std::vector<char>(key.begin(), key.end()));
      // Phase A: one decomposition per template (blocks fanned out on the
      // pool) builds the crossover basis every chunk clone starts from --
      // chunk clones otherwise pay a cold all-logical solve each batch.
      const lp::Basis& seed = ensureSeed(t, pool[members.front()], &tp);
      for (std::size_t at = 0; at < members.size(); at += chunk_size) {
        Chunk c;
        c.tpl = &t;
        c.seed = seed.empty() ? nullptr : &t.seed;
        const std::size_t end = std::min(members.size(), at + chunk_size);
        c.indices.assign(members.begin() + at, members.begin() + end);
        chunks.push_back(std::move(c));
      }
    }
  }

  tp.parallelFor(chunks.size(), [&](std::size_t ci) {
    const Chunk& c = chunks[ci];
    lp::SimplexSolver solver(c.tpl->problem, opt_);
    if (c.seed != nullptr) solver.setBasis(*c.seed);
    for (const std::size_t i : c.indices) {
      applyDemand(solver, *c.tpl, pool[i]);
      out[i] = solveAlpha(solver, *c.tpl);
    }
  });
  return out;
}

std::pair<double, std::vector<std::vector<double>>>
OptuEngine::utilizationWithFlows(const tm::TrafficMatrix& d) {
  const std::vector<char> active = activeSignature(d);
  const std::lock_guard<std::mutex> lock(mutex_);
  Template& t = templateFor(active);
  if (coldOverride()) {
    t.serial->setBasis({});
  } else if (!t.warmed) {
    const lp::Basis& seed = ensureSeed(t, d, nullptr);
    if (!seed.empty()) t.serial->setBasis(seed);
    t.warmed = true;
  }
  applyDemand(*t.serial, t, d);
  const lp::LpResult res = t.serial->solve();
  if (res.status != lp::Status::kOptimal) {
    throw std::runtime_error("OPTU LP not optimal: " +
                             lp::toString(res.status));
  }
  const int n = g_.numNodes();
  std::vector<std::vector<double>> flows(n);
  for (NodeId dest = 0; dest < n; ++dest) {
    if (!t.active[dest]) continue;
    flows[dest].assign(g_.numEdges(), 0.0);
    const Template::DestVars& dv = t.var[dest];
    for (std::size_t j = 0; j < dv.edges.size(); ++j) {
      flows[dest][dv.edges[j]] = std::max(0.0, res.x[dv.vars[j]]);
    }
  }
  return {res.x[t.alpha], std::move(flows)};
}

namespace {

/// Non-owning shared_ptr view for the by-reference entry points.
std::shared_ptr<const DagSet> borrow(const DagSet& dags) {
  return {std::shared_ptr<void>(), &dags};
}

}  // namespace

double optimalUtilization(const Graph& g, const DagSet& dags,
                          const tm::TrafficMatrix& d,
                          const lp::SimplexOptions& opt) {
  OptuEngine engine(g, borrow(dags), opt);
  return engine.utilization(d);
}

double optimalUtilizationUnrestricted(const Graph& g,
                                      const tm::TrafficMatrix& d,
                                      const lp::SimplexOptions& opt) {
  OptuEngine engine(g, opt);
  return engine.utilization(d);
}

OptimalRouting optimalRoutingForDemand(const Graph& g,
                                       std::shared_ptr<const DagSet> dags,
                                       const tm::TrafficMatrix& d,
                                       const lp::SimplexOptions& opt) {
  require(dags != nullptr, "null dag set");
  OptuEngine engine(g, dags, opt);
  auto [alpha, flows] = engine.utilizationWithFlows(d);

  RoutingConfig cfg(g, dags);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    if (flows[t].empty()) continue;
    const Dag& dag = (*dags)[t];
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      const auto& out = dag.outEdges(u);
      double sum = 0.0;
      for (const EdgeId e : out) sum += flows[t][e];
      if (sum <= 1e-12) continue;  // normalize() fills in uniform defaults
      for (const EdgeId e : out) cfg.setRatio(t, e, flows[t][e] / sum);
    }
  }
  cfg.normalize(g);
  cfg.validate(g);
  return {alpha, std::move(cfg)};
}

}  // namespace coyote::routing
