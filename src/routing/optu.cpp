#include "routing/optu.hpp"

#include <string>
#include <vector>

namespace coyote::routing {
namespace {

/// Shared LP construction for the DAG-restricted and unrestricted variants.
/// For destination t, `edgesFor(t)` yields the edges flow to t may use.
class OptuBuilder {
 public:
  OptuBuilder(const Graph& g, const tm::TrafficMatrix& d) : g_(g), d_(d) {
    require(d.numNodes() == g.numNodes(), "matrix/graph size mismatch");
  }

  /// Builds and solves; returns (alpha, flows) where flows[t] maps EdgeId to
  /// the optimal aggregate flow toward t (empty for inactive destinations).
  std::pair<double, std::vector<std::vector<double>>> solve(
      const std::vector<std::vector<EdgeId>>& edges_per_dest,
      const lp::SimplexOptions& opt) {
    const int n = g_.numNodes();
    lp::LpProblem p(lp::Sense::kMinimize);
    const int alpha = p.addVar(1.0, 0.0, lp::kInfinity, "alpha");

    // var_[t][e] = LP variable of flow toward t on edge e (or -1).
    var_.assign(n, std::vector<int>(g_.numEdges(), -1));
    std::vector<char> active(n, 0);
    for (NodeId t = 0; t < n; ++t) {
      for (NodeId s = 0; s < n; ++s) {
        if (s != t && d_.at(s, t) > 0.0) {
          active[t] = 1;
          break;
        }
      }
      if (!active[t]) continue;
      for (const EdgeId e : edges_per_dest[t]) {
        var_[t][e] = p.addVar(0.0, 0.0, lp::kInfinity);
      }
    }

    // Conservation at every non-destination node.
    for (NodeId t = 0; t < n; ++t) {
      if (!active[t]) continue;
      for (NodeId u = 0; u < n; ++u) {
        if (u == t) continue;
        std::vector<lp::Term> terms;
        for (const EdgeId e : g_.outEdges(u)) {
          if (var_[t][e] >= 0) terms.push_back({var_[t][e], 1.0});
        }
        for (const EdgeId e : g_.inEdges(u)) {
          if (var_[t][e] >= 0) terms.push_back({var_[t][e], -1.0});
        }
        const double dem = d_.at(u, t);
        if (terms.empty()) {
          require(dem <= 0.0, "demand from " + g_.nodeName(u) + " to " +
                                  g_.nodeName(t) +
                                  " cannot be routed (no usable edges)");
          continue;
        }
        p.addConstraint(std::move(terms), lp::Rel::kEq, dem);
      }
    }

    // Capacity: sum_t g_t(e) - alpha*c(e) <= 0.
    for (EdgeId e = 0; e < g_.numEdges(); ++e) {
      std::vector<lp::Term> terms;
      for (NodeId t = 0; t < n; ++t) {
        if (active[t] && var_[t][e] >= 0) terms.push_back({var_[t][e], 1.0});
      }
      if (terms.empty()) continue;
      terms.push_back({alpha, -g_.edge(e).capacity});
      p.addConstraint(std::move(terms), lp::Rel::kLe, 0.0);
    }

    const lp::LpResult res = lp::solve(p, opt);
    if (res.status != lp::Status::kOptimal) {
      throw std::runtime_error("OPTU LP not optimal: " +
                               lp::toString(res.status));
    }
    std::vector<std::vector<double>> flows(n);
    for (NodeId t = 0; t < n; ++t) {
      if (!active[t]) continue;
      flows[t].assign(g_.numEdges(), 0.0);
      for (EdgeId e = 0; e < g_.numEdges(); ++e) {
        if (var_[t][e] >= 0) flows[t][e] = std::max(0.0, res.x[var_[t][e]]);
      }
    }
    return {res.x[alpha], std::move(flows)};
  }

 private:
  const Graph& g_;
  const tm::TrafficMatrix& d_;
  std::vector<std::vector<int>> var_;
};

std::vector<std::vector<EdgeId>> dagEdgeSets(const Graph& g,
                                             const DagSet& dags) {
  std::vector<std::vector<EdgeId>> sets(g.numNodes());
  for (NodeId t = 0; t < g.numNodes(); ++t) sets[t] = dags[t].edges();
  return sets;
}

std::vector<std::vector<EdgeId>> allEdgeSets(const Graph& g) {
  std::vector<std::vector<EdgeId>> sets(g.numNodes());
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      if (g.edge(e).src != t) sets[t].push_back(e);
    }
  }
  return sets;
}

}  // namespace

double optimalUtilization(const Graph& g, const DagSet& dags,
                          const tm::TrafficMatrix& d,
                          const lp::SimplexOptions& opt) {
  require(static_cast<int>(dags.size()) == g.numNodes(), "bad dag set");
  OptuBuilder builder(g, d);
  return builder.solve(dagEdgeSets(g, dags), opt).first;
}

double optimalUtilizationUnrestricted(const Graph& g,
                                      const tm::TrafficMatrix& d,
                                      const lp::SimplexOptions& opt) {
  OptuBuilder builder(g, d);
  return builder.solve(allEdgeSets(g), opt).first;
}

OptimalRouting optimalRoutingForDemand(const Graph& g,
                                       std::shared_ptr<const DagSet> dags,
                                       const tm::TrafficMatrix& d,
                                       const lp::SimplexOptions& opt) {
  require(dags != nullptr, "null dag set");
  OptuBuilder builder(g, d);
  auto [alpha, flows] = builder.solve(dagEdgeSets(g, *dags), opt);

  RoutingConfig cfg(g, dags);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    if (flows[t].empty()) continue;
    const Dag& dag = (*dags)[t];
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      const auto& out = dag.outEdges(u);
      double sum = 0.0;
      for (const EdgeId e : out) sum += flows[t][e];
      if (sum <= 1e-12) continue;  // normalize() fills in uniform defaults
      for (const EdgeId e : out) cfg.setRatio(t, e, flows[t][e] / sum);
    }
  }
  cfg.normalize(g);
  cfg.validate(g);
  return {alpha, std::move(cfg)};
}

}  // namespace coyote::routing
