#include "routing/stretch.hpp"

#include "routing/propagation.hpp"

namespace coyote::routing {

double averageStretch(const Graph& g, const RoutingConfig& cfg,
                      const RoutingConfig& reference) {
  require(cfg.numNodes() == g.numNodes() &&
              reference.numNodes() == g.numNodes(),
          "config/graph size mismatch");
  double sum = 0.0;
  int count = 0;
  for (NodeId s = 0; s < g.numNodes(); ++s) {
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      if (s == t) continue;
      const double ref = expectedHopCount(g, reference, s, t);
      if (ref <= 0.0) continue;  // unreachable under the reference
      const double got = expectedHopCount(g, cfg, s, t);
      sum += got / ref;
      ++count;
    }
  }
  return count > 0 ? sum / count : 1.0;
}

}  // namespace coyote::routing
