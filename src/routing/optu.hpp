// Demands-aware optimal routing: OPTU(D) (Sec. III).
//
// OPTU(D) = min over per-destination routings of the maximum link
// utilization when routing D. With destination-based routing this is a
// plain LP over per-destination aggregate flows g_t(e):
//
//     min alpha
//     s.t. for every destination t, node u != t:
//              sum_out g_t - sum_in g_t = d(u,t)          (conservation)
//          for every edge e:  sum_t g_t(e) <= alpha*c(e)  (capacity)
//          g >= 0
//
// The DAG-restricted variant (flow variables only on DAG edges) computes
// the "demands-aware optimum within the same DAGs" that the paper's figures
// normalize by; the unrestricted variant is the formal OPTU over all
// per-destination routings.
#pragma once

#include "lp/lp.hpp"
#include "routing/config.hpp"
#include "tm/traffic_matrix.hpp"

namespace coyote::routing {

/// OPTU restricted to the DAG set. Throws std::runtime_error if some demand
/// cannot be routed inside its DAG at any utilization (disconnected DAG).
[[nodiscard]] double optimalUtilization(const Graph& g, const DagSet& dags,
                                        const tm::TrafficMatrix& d,
                                        const lp::SimplexOptions& opt = {});

/// OPTU over all destination-based routings (no DAG restriction).
[[nodiscard]] double optimalUtilizationUnrestricted(
    const Graph& g, const tm::TrafficMatrix& d,
    const lp::SimplexOptions& opt = {});

struct OptimalRouting {
  double utilization = 0.0;
  RoutingConfig routing;
};

/// OPTU within the DAGs plus the splitting ratios realizing it, derived from
/// the optimal aggregate flows (phi_t(u,e) = g_t(e) / sum of g_t out of u).
/// Nodes off the flow's support fall back to equal splitting -- the derived
/// routing is exact for `d` and merely well-defined elsewhere. This is the
/// paper's "Base" scheme: the demands-aware optimum for the base matrix.
[[nodiscard]] OptimalRouting optimalRoutingForDemand(
    const Graph& g, std::shared_ptr<const DagSet> dags,
    const tm::TrafficMatrix& d, const lp::SimplexOptions& opt = {});

}  // namespace coyote::routing
