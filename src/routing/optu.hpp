// Demands-aware optimal routing: OPTU(D) (Sec. III).
//
// OPTU(D) = min over per-destination routings of the maximum link
// utilization when routing D. With destination-based routing this is a
// plain LP over per-destination aggregate flows g_t(e):
//
//     min alpha
//     s.t. for every destination t, node u != t:
//              sum_out g_t - sum_in g_t = d(u,t)          (conservation)
//          for every edge e:  sum_t g_t(e) <= alpha*c(e)  (capacity)
//          g >= 0
//
// The DAG-restricted variant (flow variables only on DAG edges) computes
// the "demands-aware optimum within the same DAGs" that the paper's figures
// normalize by; the unrestricted variant is the formal OPTU over all
// per-destination routings.
//
// Only the conservation right-hand sides depend on the demand matrix, so
// OptuEngine builds the constraint matrix once per (graph, DAG-set,
// active-destination signature) and re-solves across pool matrices and
// margin points by mutating the rhs of a retained lp::SimplexSolver
// session -- the warm-started basis typically cuts the simplex pivots per
// matrix by several-fold. Batch solves are fanned out over the thread pool
// in fixed-size chunks (each chunk one warm-start chain), so every result
// and pivot count is bit-identical for any thread count.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "lp/lp.hpp"
#include "routing/config.hpp"
#include "tm/traffic_matrix.hpp"
#include "util/thread_pool.hpp"

namespace coyote::routing {

/// Reusable OPTU solver for one (graph, DAG-set) or (graph, unrestricted).
/// Thread-safe: serial entry points warm-start a retained session under a
/// lock; batch solves clone per-chunk sessions. See file comment.
class OptuEngine {
 public:
  /// DAG-restricted OPTU (the paper's normalization). `dags` must outlive
  /// the engine; pass the shared_ptr to tie the lifetimes.
  OptuEngine(const Graph& g, std::shared_ptr<const DagSet> dags,
             lp::SimplexOptions opt = {});

  /// Unrestricted OPTU over all destination-based routings.
  OptuEngine(const Graph& g, lp::SimplexOptions opt = {});

  ~OptuEngine();

  OptuEngine(const OptuEngine&) = delete;
  OptuEngine& operator=(const OptuEngine&) = delete;

  /// OPTU(d). Warm-starts from the previous solve with the same
  /// active-destination signature. Throws std::runtime_error if the LP is
  /// not optimal, std::invalid_argument if some demand cannot be routed.
  [[nodiscard]] double utilization(const tm::TrafficMatrix& d);

  /// OPTU of every matrix, in order. Independent fixed-size chunks of the
  /// batch run on `tp`, each chunk a warm-start chain on a session clone;
  /// results are identical for any thread count.
  [[nodiscard]] std::vector<double> utilizationBatch(
      const std::vector<tm::TrafficMatrix>& pool, util::ThreadPool& tp);

  /// OPTU(d) plus the optimal aggregate flows: flows[t] maps EdgeId to the
  /// flow toward t (empty vector for inactive destinations).
  [[nodiscard]] std::pair<double, std::vector<std::vector<double>>>
  utilizationWithFlows(const tm::TrafficMatrix& d);

  /// Switches the engine to a post-failure network: flow variables on the
  /// given (directed) edges are pinned to zero by bounds mutations in every
  /// cached and future template -- the retained sessions keep their bases,
  /// so the per-failure re-solves warm-start instead of rebuilding the
  /// constraint matrix. Passing {} restores the intact network. Callers
  /// must ensure the surviving network still routes their demands (an
  /// unroutable demand makes utilization() throw std::runtime_error, the
  /// "LP not optimal: infeasible" case); see failure::disconnectedPairs.
  void setFailedEdges(const std::vector<EdgeId>& edges);

  [[nodiscard]] const Graph& graph() const { return g_; }

  /// Matrices per warm-start chain in utilizationBatch. Fixed (not derived
  /// from the thread count) so results never depend on parallelism.
  static constexpr int kBatchChunk = 8;

  /// Destination blocks per decomposition task. Fixed like kBatchChunk so
  /// the block fan-out (and therefore the crossover seed) is bit-identical
  /// for any thread count.
  static constexpr int kBlockChunk = 4;

  /// Deterministic price-update rounds of the decomposition pre-solve.
  static constexpr int kDecompRounds = 2;

  /// Templates below this row count skip the decomposition pre-solve: the
  /// block/crossover bookkeeping costs more than a cold monolithic solve.
  static constexpr int kDecompMinRows = 64;

  /// True when COYOTE_LP_COLD=1: every solve cold-starts (chunk size 1,
  /// serial sessions reset). A debugging/measurement knob -- the lp_pivots
  /// delta between a cold and a default run is the warm-start payoff.
  [[nodiscard]] static bool coldOverride();

  /// Block-decomposition pre-solve availability: enabled unless
  /// COYOTE_LP_DECOMP=0. The escape hatch for A/B measurement, mirroring
  /// COYOTE_LP_COLD / COYOTE_LP_DUAL.
  [[nodiscard]] static bool decompEnabled();

 private:
  struct Template;  // constraint matrix + var/row maps for one signature

  [[nodiscard]] std::vector<char> activeSignature(
      const tm::TrafficMatrix& d) const;
  /// Returns the cached template for the signature, building it on demand.
  Template& templateFor(const std::vector<char>& active);
  /// Applies the current failed-edge set to a template (skeleton + session).
  void applyFailures(Template& t) const;
  /// Points the session's conservation rhs at d (validates routability).
  void applyDemand(lp::SimplexSolver& solver, const Template& t,
                   const tm::TrafficMatrix& d) const;
  [[nodiscard]] static double solveAlpha(lp::SimplexSolver& solver,
                                         const Template& t);
  /// Block-decomposition pre-solve: per-destination min-cost-flow blocks
  /// under capacity prices, iterated kDecompRounds times with a
  /// deterministic multiplicative price update, then crossed over into a
  /// primal-feasible basis of the full problem (see optu.cpp). Returns {}
  /// when the decomposition is not worthwhile or a block failed. Blocks
  /// run on `tp` in kBlockChunk chunks when non-null, serially otherwise.
  /// Caller holds mutex_.
  [[nodiscard]] lp::Basis decomposeSeed(const Template& t,
                                        const tm::TrafficMatrix& d,
                                        util::ThreadPool* tp) const;
  /// Computes (once per template) and returns the stored crossover seed.
  /// Caller holds mutex_.
  const lp::Basis& ensureSeed(Template& t, const tm::TrafficMatrix& d,
                              util::ThreadPool* tp);

  const Graph& g_;
  std::shared_ptr<const DagSet> dags_;  ///< null for unrestricted mode
  lp::SimplexOptions opt_;
  std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Template>> cache_;
  /// Per-edge failed mask (empty = intact network); see setFailedEdges.
  std::vector<char> failed_;
};

/// OPTU restricted to the DAG set. Throws std::runtime_error if some demand
/// cannot be routed inside its DAG at any utilization (disconnected DAG).
[[nodiscard]] double optimalUtilization(const Graph& g, const DagSet& dags,
                                        const tm::TrafficMatrix& d,
                                        const lp::SimplexOptions& opt = {});

/// OPTU over all destination-based routings (no DAG restriction).
[[nodiscard]] double optimalUtilizationUnrestricted(
    const Graph& g, const tm::TrafficMatrix& d,
    const lp::SimplexOptions& opt = {});

struct OptimalRouting {
  double utilization = 0.0;
  RoutingConfig routing;
};

/// OPTU within the DAGs plus the splitting ratios realizing it, derived from
/// the optimal aggregate flows (phi_t(u,e) = g_t(e) / sum of g_t out of u).
/// Nodes off the flow's support fall back to equal splitting -- the derived
/// routing is exact for `d` and merely well-defined elsewhere. This is the
/// paper's "Base" scheme: the demands-aware optimum for the base matrix.
[[nodiscard]] OptimalRouting optimalRoutingForDemand(
    const Graph& g, std::shared_ptr<const DagSet> dags,
    const tm::TrafficMatrix& d, const lp::SimplexOptions& opt = {});

}  // namespace coyote::routing
