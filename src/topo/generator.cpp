#include "topo/generator.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <utility>

namespace coyote::topo {

Graph ring(int n) {
  require(n >= 3, "ring needs >= 3 nodes");
  Graph g;
  for (int i = 0; i < n; ++i) g.addNode("r" + std::to_string(i));
  for (int i = 0; i < n; ++i) g.addLink(i, (i + 1) % n, 1.0);
  return g;
}

Graph grid(int rows, int cols) {
  require(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
  Graph g;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      g.addNode("g" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.addLink(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) g.addLink(id(r, c), id(r + 1, c), 1.0);
    }
  }
  return g;
}

Graph fullMesh(int n) {
  require(n >= 2, "mesh needs >= 2 nodes");
  Graph g;
  for (int i = 0; i < n; ++i) g.addNode("m" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.addLink(i, j, 1.0);
  }
  return g;
}

Graph randomBackbone(int n, double avg_degree, std::uint64_t seed) {
  require(n >= 4, "backbone needs >= 4 nodes");
  require(avg_degree >= 2.0 && avg_degree <= n - 1.0,
          "avg_degree out of range");
  std::mt19937_64 rng(seed);
  Graph g;
  for (int i = 0; i < n; ++i) g.addNode("b" + std::to_string(i));

  std::set<std::pair<int, int>> used;
  const auto addLinkOnce = [&](int a, int b, double cap) {
    const std::pair<int, int> key = std::minmax(a, b);
    if (a == b || used.count(key)) return false;
    used.insert(key);
    g.addLink(a, b, cap);
    return true;
  };
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto randomCap = [&] {
    const double u = u01(rng);
    return u < 0.3 ? 1.0 : (u < 0.7 ? 2.5 : 10.0);
  };

  // Hamiltonian ring over a random permutation -> 2-edge-connected.
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  for (int i = 0; i < n; ++i) {
    addLinkOnce(perm[i], perm[(i + 1) % n], randomCap());
  }

  const int target_links = static_cast<int>(avg_degree * n / 2.0 + 0.5);
  std::uniform_int_distribution<int> pick(0, n - 1);
  int guard = 50 * n * n;
  while (static_cast<int>(used.size()) < target_links && guard-- > 0) {
    addLinkOnce(pick(rng), pick(rng), randomCap());
  }
  g.setInverseCapacityWeights();
  return g;
}

}  // namespace coyote::topo
