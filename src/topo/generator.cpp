#include "topo/generator.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "util/rng.hpp"

namespace coyote::topo {

Graph ring(int n) {
  require(n >= 3, "ring needs >= 3 nodes");
  Graph g;
  for (int i = 0; i < n; ++i) g.addNode("r" + std::to_string(i));
  for (int i = 0; i < n; ++i) g.addLink(i, (i + 1) % n, 1.0);
  return g;
}

Graph grid(int rows, int cols) {
  require(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
  Graph g;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      g.addNode("g" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.addLink(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) g.addLink(id(r, c), id(r + 1, c), 1.0);
    }
  }
  return g;
}

Graph fullMesh(int n) {
  require(n >= 2, "mesh needs >= 2 nodes");
  Graph g;
  for (int i = 0; i < n; ++i) g.addNode("m" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.addLink(i, j, 1.0);
  }
  return g;
}

Graph randomBackbone(int n, double avg_degree, std::uint64_t seed) {
  require(n >= 4, "backbone needs >= 4 nodes");
  require(avg_degree >= 2.0 && avg_degree <= n - 1.0,
          "avg_degree out of range");
  std::uint64_t state = seed;
  Graph g;
  for (int i = 0; i < n; ++i) g.addNode("b" + std::to_string(i));

  std::set<std::pair<int, int>> used;
  const auto addLinkOnce = [&](int a, int b, double cap) {
    const std::pair<int, int> key = std::minmax(a, b);
    if (a == b || used.count(key)) return false;
    used.insert(key);
    g.addLink(a, b, cap);
    return true;
  };
  const auto randomCap = [&] {
    const double u = util::rng::nextUnit(state);
    return u < 0.3 ? 1.0 : (u < 0.7 ? 2.5 : 10.0);
  };

  // Hamiltonian ring over a random permutation -> 2-edge-connected.
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  util::rng::shuffle(perm, state);
  for (int i = 0; i < n; ++i) {
    addLinkOnce(perm[i], perm[(i + 1) % n], randomCap());
  }

  const int target_links = static_cast<int>(avg_degree * n / 2.0 + 0.5);
  int guard = 50 * n * n;
  while (static_cast<int>(used.size()) < target_links && guard-- > 0) {
    const int a = util::rng::nextInt(state, n);
    const int b = util::rng::nextInt(state, n);
    addLinkOnce(a, b, randomCap());
  }
  g.setInverseCapacityWeights();
  return g;
}

// Capacity tiers of the structured families (see generator.hpp): the
// oversubscribed tier (edge-agg / intra-group / intra-board) carries 1,
// the backbone tier (agg-core / global / inter-board) carries 2.5 --
// reusing the backbone generator's {1, 2.5} capacity vocabulary.
namespace {
constexpr double kTierLocal = 1.0;
constexpr double kTierGlobal = 2.5;
}  // namespace

Graph fatTree(int k) {
  require(k >= 4 && k % 2 == 0, "fatTree needs even k >= 4");
  const int half = k / 2;
  Graph g;
  // Node-id layout: per-pod edge switches, then per-pod aggregation
  // switches, then the (k/2)^2 cores -- edge endpoints get the dense
  // low-id prefix, which keeps host-aggregated demand matrices compact.
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < half; ++i) {
      g.addNode("edge" + std::to_string(p) + "_" + std::to_string(i));
    }
  }
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < half; ++i) {
      g.addNode("agg" + std::to_string(p) + "_" + std::to_string(i));
    }
  }
  for (int i = 0; i < half * half; ++i) {
    g.addNode("core" + std::to_string(i));
  }
  const auto edgeSw = [&](int p, int i) { return p * half + i; };
  const auto aggSw = [&](int p, int i) { return k * half + p * half + i; };
  const auto coreSw = [&](int i) { return 2 * k * half + i; };

  // Intra-pod full bipartite edge-agg mesh.
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        g.addLink(edgeSw(p, e), aggSw(p, a), kTierLocal);
      }
    }
  }
  // Aggregation switch a of every pod uplinks to core group a.
  for (int p = 0; p < k; ++p) {
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        g.addLink(aggSw(p, a), coreSw(a * half + c), kTierGlobal);
      }
    }
  }
  g.setInverseCapacityWeights();
  return g;
}

Graph dragonfly(int a, int p, int h) {
  require(a >= 2, "dragonfly needs >= 2 routers per group");
  require(h >= 1 && h <= a, "dragonfly needs 1 <= h <= a global ports");
  require(p >= 1, "dragonfly needs >= 1 host per router");
  const int groups = a * h + 1;
  Graph g;
  for (int gi = 0; gi < groups; ++gi) {
    for (int r = 0; r < a; ++r) {
      g.addNode("dfg" + std::to_string(gi) + "r" + std::to_string(r));
    }
  }
  const auto router = [&](int gi, int r) { return gi * a + r; };

  // Complete local graph inside each group.
  for (int gi = 0; gi < groups; ++gi) {
    for (int r = 0; r < a; ++r) {
      for (int s = r + 1; s < a; ++s) {
        g.addLink(router(gi, r), router(gi, s), kTierLocal);
      }
    }
  }
  // One global link per unordered group pair. The pair at offset
  // d = gj - gi terminates on router (d-1)/h of the lower group and
  // router (groups-d-1)/h of the higher one, so every router owns the h
  // offsets in [r*h+1, r*h+h] from each side -- h global ports per
  // router, a*h*(a*h+1)/2 global links in total.
  for (int gi = 0; gi < groups; ++gi) {
    for (int gj = gi + 1; gj < groups; ++gj) {
      const int d = gj - gi;
      const int ri = (d - 1) / h;
      const int rj = (groups - d - 1) / h;
      g.addLink(router(gi, ri), router(gj, rj), kTierGlobal);
    }
  }
  g.setInverseCapacityWeights();
  return g;
}

Graph torus2d(int rows, int cols) {
  require(rows >= 3 && cols >= 3, "torus2d needs rows, cols >= 3");
  Graph g;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      g.addNode("t" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      g.addLink(id(r, c), id(r, (c + 1) % cols), 1.0);
      g.addLink(id(r, c), id((r + 1) % rows, c), 1.0);
    }
  }
  return g;
}

Graph hammingMesh(int x, int y, int bx, int by) {
  require(x >= 1 && y >= 1, "hammingMesh needs >= 1x1 boards");
  require(bx >= 2 && by >= 2, "hammingMesh boards must be >= 2x2");
  require(x * y >= 2 || bx * by >= 4, "hammingMesh too small");
  Graph g;
  // Node-id layout: boards in row-major board order, each board's nodes
  // in row-major order. Board (bR, bC), node row r in [0, by), col c in
  // [0, bx).
  for (int bR = 0; bR < y; ++bR) {
    for (int bC = 0; bC < x; ++bC) {
      for (int r = 0; r < by; ++r) {
        for (int c = 0; c < bx; ++c) {
          g.addNode("h" + std::to_string(bR) + "_" + std::to_string(bC) +
                    "_" + std::to_string(r) + "_" + std::to_string(c));
        }
      }
    }
  }
  const auto node = [&](int bR, int bC, int r, int c) {
    return ((bR * x + bC) * by + r) * bx + c;
  };

  // Intra-board 2D mesh.
  for (int bR = 0; bR < y; ++bR) {
    for (int bC = 0; bC < x; ++bC) {
      for (int r = 0; r < by; ++r) {
        for (int c = 0; c < bx; ++c) {
          if (c + 1 < bx) {
            g.addLink(node(bR, bC, r, c), node(bR, bC, r, c + 1), kTierLocal);
          }
          if (r + 1 < by) {
            g.addLink(node(bR, bC, r, c), node(bR, bC, r + 1, c), kTierLocal);
          }
        }
      }
    }
  }
  // Row dimension: every board pair in a board-row, one link per node-row
  // (east column to west column). Column dimension: every board pair in a
  // board-column, one link per node-column (south row to north row).
  for (int bR = 0; bR < y; ++bR) {
    for (int b1 = 0; b1 < x; ++b1) {
      for (int b2 = b1 + 1; b2 < x; ++b2) {
        for (int r = 0; r < by; ++r) {
          g.addLink(node(bR, b1, r, bx - 1), node(bR, b2, r, 0), kTierGlobal);
        }
      }
    }
  }
  for (int bC = 0; bC < x; ++bC) {
    for (int b1 = 0; b1 < y; ++b1) {
      for (int b2 = b1 + 1; b2 < y; ++b2) {
        for (int c = 0; c < bx; ++c) {
          g.addLink(node(b1, bC, by - 1, c), node(b2, bC, 0, c), kTierGlobal);
        }
      }
    }
  }
  g.setInverseCapacityWeights();
  return g;
}

}  // namespace coyote::topo
