// Topology corpus.
//
// The paper evaluates COYOTE on 16 backbone topologies from the Internet
// Topology Zoo. The Zoo's GraphML files are not available offline, so this
// module embeds edge lists for the same networks: the well-documented ones
// (Abilene, NSFNET, GEANT, Nobel-Germany, InternetMCI, ...) follow their
// published PoP-level maps; the Rocketfuel ASes and a few commercial
// networks are deterministic approximations matched to the published
// node/edge counts and degree profile (see DESIGN.md §3).
//
// Capacities follow the paper's rule: where the dataset carries no
// capacities, links get a deterministic tier (1 / 2.5 / 10 units, by the
// coreness of their endpoints) and OSPF weights are set inverse to capacity
// (Cisco default).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace coyote::topo {

/// Names of all networks in the corpus, in Table I / Fig. 11 order.
[[nodiscard]] std::vector<std::string> zooNames();

/// Names used in the paper's Table I (Gambia and BBNPlanet excluded there
/// because they are almost trees; we keep BBNPlanet for Fig. 11).
[[nodiscard]] std::vector<std::string> tableOneNames();

/// Builds a corpus topology by name. Throws std::invalid_argument for
/// unknown names. The returned graph has bidirectional links, tiered
/// capacities and inverse-capacity OSPF weights already set.
[[nodiscard]] Graph makeZoo(const std::string& name);

/// The running example of Fig. 1a: s1, s2, v, t with unit capacities.
/// Node ids: 0=s1, 1=s2, 2=v, 3=t.
[[nodiscard]] Graph runningExample();

/// The two-prefix prototype topology of Fig. 12a (s1, s2, t; 1 Mbps links).
/// Node ids: 0=s1, 1=s2, 2=t.
[[nodiscard]] Graph prototypeTriangle();

}  // namespace coyote::topo
