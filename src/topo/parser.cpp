#include "topo/parser.hpp"

#include <map>
#include <sstream>

namespace coyote::topo {

Graph parseTopology(std::istream& in) {
  Graph g;
  std::map<std::string, NodeId> by_name;
  const auto getNode = [&](const std::string& name) {
    const auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    const NodeId id = g.addNode(name);
    by_name.emplace(name, id);
    return id;
  };

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (kind == "node") {
      std::string name;
      require(static_cast<bool>(ls >> name), "node without a name" + where);
      getNode(name);
    } else if (kind == "link") {
      std::string a, b;
      double cap = 1.0;
      require(static_cast<bool>(ls >> a >> b),
              "link needs two endpoints" + where);
      require(a != b, "self-link" + where);
      if (!(ls >> cap)) cap = 1.0;
      double weight;
      if (ls >> weight) {
        require(weight > 0, "non-positive weight" + where);
        g.addLink(getNode(a), getNode(b), cap, weight);
      } else {
        g.addLink(getNode(a), getNode(b), cap);
      }
    } else {
      throw std::invalid_argument("unknown directive '" + kind + "'" + where);
    }
  }
  return g;
}

Graph parseTopologyString(const std::string& text) {
  std::istringstream in(text);
  return parseTopology(in);
}

void serializeTopology(const Graph& g, std::ostream& out) {
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    out << "node " << g.nodeName(v) << "\n";
  }
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    // Emit each bidirectional link once (from its lower-id direction) and
    // unidirectional edges always.
    if (ed.reverse != kInvalidEdge && ed.reverse < e) continue;
    out << "link " << g.nodeName(ed.src) << " " << g.nodeName(ed.dst) << " "
        << ed.capacity << " " << ed.weight << "\n";
  }
}

std::string serializeTopologyString(const Graph& g) {
  std::ostringstream out;
  serializeTopology(g, out);
  return out.str();
}

}  // namespace coyote::topo
