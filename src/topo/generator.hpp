// Seeded synthetic topology generators for tests, property sweeps and
// micro-benchmarks, plus the structured DC/HPC families the scaling
// scenarios (ScenarioKind::kScaling) climb: 3-tier fat-trees, dragonflies,
// 2D tori and HammingMeshes. All generators are deterministic in their
// arguments; the seeded ones draw from the shared splitmix64
// (util/rng.hpp), so the structures are bit-identical across platforms
// and standard libraries.
//
// Capacity-tier conventions (docs/topologies.md):
//   * fatTree: edge-agg links carry capacity 1, agg-core links 2.5.
//   * dragonfly / hammingMesh: local (intra-group / intra-board) links
//     carry capacity 1, global (inter-group / inter-board) links 2.5.
//   * ring / grid / torus2d: uniform unit capacities.
// Tiered generators install inverse-capacity OSPF weights (the repo-wide
// Cisco-default convention, same as the Zoo parser and randomBackbone).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace coyote::topo {

/// Bidirectional ring of n >= 3 nodes, unit capacities.
[[nodiscard]] Graph ring(int n);

/// rows x cols grid (bidirectional links), unit capacities.
[[nodiscard]] Graph grid(int rows, int cols);

/// Complete graph on n nodes, unit capacities.
[[nodiscard]] Graph fullMesh(int n);

/// Random 2-edge-connected backbone: a Hamiltonian ring plus random chords
/// until the average node degree reaches `avg_degree`. Capacities drawn from
/// {1, 2.5, 10}. Deterministic in (n, avg_degree, seed); the stream is
/// splitmix64 (util/rng.hpp), pinned by a golden structure hash in
/// topo_test.
[[nodiscard]] Graph randomBackbone(int n, double avg_degree,
                                   std::uint64_t seed);

/// Three-tier folded-Clos fat-tree of k-port switches (k even, >= 4):
/// k pods of k/2 edge ("edge<p>_<i>") and k/2 aggregation ("agg<p>_<i>")
/// switches plus (k/2)^2 core switches ("core<i>"). 5k^2/4 switches and
/// k^3/2 physical links in total. The k^3/4 hosts are not modeled as
/// nodes: each edge switch aggregates its k/2 hosts, so demand endpoints
/// are the "edge"-prefixed nodes (DemandSpec::endpoint_prefix). Edge-agg
/// capacity 1, agg-core capacity 2.5.
[[nodiscard]] Graph fatTree(int k);

/// Canonical dragonfly: g = a*h + 1 groups of `a` routers ("dfg<g>r<r>"),
/// complete local graph inside every group, and exactly one global link
/// between every pair of groups (router (d-1)/h of group i owns the
/// offset-d link, so each router terminates h global links). `p` is the
/// number of hosts aggregated per router -- it names the rung and scales
/// nothing else, since uniform per-router host counts cancel in the
/// gravity model. a*(a*h+1) routers; local capacity 1, global 2.5.
/// Any two routers are <= 3 hops apart (local, global, local).
[[nodiscard]] Graph dragonfly(int a, int p, int h);

/// rows x cols 2D torus (grid plus wraparound links), unit capacities.
/// rows, cols >= 3 so the wrap links never duplicate a grid link.
[[nodiscard]] Graph torus2d(int rows, int cols);

/// HammingMesh: an x-by-y grid of bx-by-by 2D-mesh boards
/// ("h<bR>_<bC>_<r>_<c>"). Boards in the same board-row are pairwise
/// connected by one link per node-row (east column of one board to the
/// west column of the other); board-columns likewise per node-column --
/// the complete-graph-per-dimension wiring of a Hamming graph, at board
/// granularity. x*y*bx*by nodes; intra-board capacity 1, inter-board 2.5.
[[nodiscard]] Graph hammingMesh(int x, int y, int bx, int by);

}  // namespace coyote::topo
