// Seeded synthetic topology generators for tests, property sweeps and
// micro-benchmarks. All generators are deterministic in their arguments.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace coyote::topo {

/// Bidirectional ring of n >= 3 nodes, unit capacities.
[[nodiscard]] Graph ring(int n);

/// rows x cols grid (bidirectional links), unit capacities.
[[nodiscard]] Graph grid(int rows, int cols);

/// Complete graph on n nodes, unit capacities.
[[nodiscard]] Graph fullMesh(int n);

/// Random 2-edge-connected backbone: a Hamiltonian ring plus random chords
/// until the average node degree reaches `avg_degree`. Capacities drawn from
/// {1, 2.5, 10}. Deterministic in (n, avg_degree, seed).
[[nodiscard]] Graph randomBackbone(int n, double avg_degree,
                                   std::uint64_t seed);

}  // namespace coyote::topo
