#include "topo/zoo.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace coyote::topo {
namespace {

using Pair = std::pair<int, int>;

/// Builds a bidirectional backbone from node names and undirected links,
/// assigns tiered capacities by endpoint coreness (sum of degrees), and sets
/// inverse-capacity OSPF weights -- the paper's default when the dataset
/// carries neither capacities nor weights.
Graph buildNamed(const std::vector<std::string>& names,
                 const std::vector<Pair>& links, bool uniform_capacity = false) {
  Graph g;
  for (const auto& n : names) g.addNode(n);
  std::vector<int> degree(names.size(), 0);
  std::vector<Pair> seen;
  for (const auto& [a, b] : links) {
    require(a >= 0 && a < static_cast<int>(names.size()) && b >= 0 &&
                b < static_cast<int>(names.size()) && a != b,
            "bad zoo link");
    const Pair norm{std::min(a, b), std::max(a, b)};
    require(std::find(seen.begin(), seen.end(), norm) == seen.end(),
            "duplicate zoo link");
    seen.push_back(norm);
    ++degree[a];
    ++degree[b];
  }
  for (const auto& [a, b] : links) {
    double cap = 10.0;
    if (!uniform_capacity) {
      const int s = degree[a] + degree[b];
      cap = (s >= 9) ? 10.0 : (s >= 6) ? 2.5 : 1.0;
    }
    g.addLink(a, b, cap);
  }
  g.setInverseCapacityWeights();
  return g;
}

/// Geographic ring over all nodes plus extra chord links.
std::vector<Pair> ringPlusChords(int n, std::vector<Pair> chords) {
  std::vector<Pair> links;
  links.reserve(n + chords.size());
  for (int i = 0; i < n; ++i) links.emplace_back(i, (i + 1) % n);
  for (const auto& c : chords) {
    // Skip chords that duplicate a ring edge.
    const auto [a, b] = c;
    const bool ring_edge = (b == (a + 1) % n) || (a == (b + 1) % n);
    if (!ring_edge) links.push_back(c);
  }
  return links;
}

/// Tree given parent[], plus cross links closing a few loops.
std::vector<Pair> treePlusCross(const std::vector<int>& parent,
                                const std::vector<Pair>& cross) {
  std::vector<Pair> links;
  for (int i = 1; i < static_cast<int>(parent.size()); ++i) {
    links.emplace_back(parent[i], i);
  }
  links.insert(links.end(), cross.begin(), cross.end());
  return links;
}

// ---------------------------------------------------------------------------
// The corpus. See DESIGN.md §3 for the fidelity notes per network.
// ---------------------------------------------------------------------------

Graph abilene() {
  const std::vector<std::string> n = {
      "Seattle",   "Sunnyvale", "LosAngeles",   "Denver",  "KansasCity",
      "Houston",   "Chicago",   "Indianapolis", "Atlanta", "Washington",
      "NewYork"};
  // The published Internet2/Abilene map: 11 PoPs, 14 OC-192 links.
  const std::vector<Pair> links = {
      {0, 1}, {0, 3}, {1, 2}, {1, 3}, {2, 5},  {3, 4},  {4, 5},
      {4, 7}, {5, 8}, {7, 8}, {7, 6}, {6, 10}, {8, 9}, {10, 9}};
  return buildNamed(n, links, /*uniform_capacity=*/true);
}

Graph nsfnet() {
  const std::vector<std::string> n = {
      "Seattle",   "PaloAlto",   "SanDiego", "SaltLake", "Boulder",
      "Houston",   "Lincoln",    "Champaign", "AnnArbor", "Pittsburgh",
      "Atlanta",   "Ithaca",     "CollegePark", "Princeton"};
  // Classic NSFNET T1 backbone: 14 nodes, 21 links.
  const std::vector<Pair> links = {
      {0, 1},  {0, 3},  {1, 2},  {1, 3},   {2, 5},  {3, 4},   {3, 8},
      {4, 5},  {4, 6},  {5, 10}, {6, 7},   {7, 9},  {7, 8},   {8, 11},
      {9, 13}, {9, 11}, {10, 9}, {10, 12}, {11, 12}, {13, 12}, {5, 12}};
  return buildNamed(n, links);
}

Graph geant() {
  const std::vector<std::string> n = {
      "Vienna",  "Brussels",  "Geneva", "Prague",    "Frankfurt", "Copenhagen",
      "Madrid",  "Paris",     "Athens", "Zagreb",    "Budapest",  "Dublin",
      "Milan",   "Luxembourg", "Amsterdam", "Poznan", "Lisbon",    "Stockholm",
      "Ljubljana", "Bratislava", "London", "Oslo"};
  enum {
    AT, BE, CH, CZ, DE, DK, ES, FR, GR, HR, HU, IE, IT, LU, NL, PL, PT, SE,
    SI, SK, UK, NO
  };
  // GEANT pan-European research backbone (2004-era map, 22 PoPs, 36 links).
  const std::vector<Pair> links = {
      {UK, IE}, {UK, FR}, {UK, NL}, {UK, PT}, {FR, ES}, {FR, CH}, {FR, BE},
      {FR, LU}, {ES, PT}, {ES, IT}, {IT, CH}, {IT, GR}, {IT, AT}, {CH, DE},
      {BE, NL}, {LU, DE}, {NL, DE}, {DE, AT}, {DE, CZ}, {DE, DK}, {DK, SE},
      {DK, NO}, {SE, NO}, {SE, PL}, {PL, DE}, {PL, CZ}, {CZ, SK}, {SK, AT},
      {AT, HU}, {AT, SI}, {SI, HR}, {HR, HU}, {HU, SK}, {GR, DE}, {IE, FR},
      {NL, DK}};
  return buildNamed(n, links);
}

Graph nobelGermany() {
  const std::vector<std::string> n = {
      "Berlin",    "Bremen", "Dortmund", "Duesseldorf", "Essen",  "Frankfurt",
      "Hamburg",   "Hannover", "Karlsruhe", "Koeln",    "Leipzig", "Mannheim",
      "Muenchen",  "Norden", "Nuernberg", "Stuttgart",  "Ulm"};
  enum {
    BER, HB, DO, DUS, E, F, HH, H, KA, K, L, MA, M, NOR, N, S, UL
  };
  // Nobel-Germany reference network: 17 nodes, 26 links.
  const std::vector<Pair> links = {
      {BER, HH}, {BER, H},  {BER, L},   {HB, HH},  {HB, H},   {DO, E},
      {DO, H},   {DO, K},   {DUS, E},   {DUS, K},  {F, H},    {F, K},
      {F, L},    {F, MA},   {HH, H},    {H, L},    {KA, MA},  {KA, S},
      {L, N},    {MA, S},   {M, N},     {M, UL},   {N, S},    {S, UL},
      {NOR, HB}, {NOR, DO}};
  return buildNamed(n, links);
}

Graph internetMci() {
  const std::vector<std::string> n = {
      "Seattle",   "SanFrancisco", "LosAngeles", "Denver",     "Houston",
      "Dallas",    "NewOrleans",   "Atlanta",    "Orlando",    "Miami",
      "Washington", "NewYork",     "Boston",     "Philadelphia", "Chicago",
      "StLouis",   "KansasCity",   "Cleveland",  "WestOrange"};
  enum {
    SEA, SF, LA, DEN, HOU, DAL, NO_, ATL, ORL, MIA, DC, NY, BOS, PHL, CHI,
    STL, KC, CLE, WOR
  };
  // InternetMCI 1995-era US backbone: 19 PoPs, 33 links.
  const std::vector<Pair> links = {
      {SEA, SF},  {SEA, CHI}, {SF, LA},   {SF, DEN},  {SF, CHI}, {LA, HOU},
      {LA, DEN},  {DEN, KC},  {DEN, CHI}, {KC, STL},  {KC, DAL}, {DAL, HOU},
      {HOU, NO_}, {NO_, ATL}, {DAL, ATL}, {ATL, ORL}, {ORL, MIA}, {MIA, DC},
      {ATL, DC},  {STL, CHI}, {STL, ATL}, {CHI, CLE}, {CLE, NY}, {CHI, NY},
      {NY, BOS},  {BOS, DC},  {NY, WOR},  {WOR, PHL}, {PHL, DC}, {NY, DC},
      {DC, CHI},  {SF, NY},   {ORL, DC}};
  return buildNamed(n, links);
}

Graph italy() {
  const std::vector<std::string> n = {
      "Torino", "Milano", "Verona",  "Venezia", "Trieste", "Bologna",
      "Genova", "Pisa",   "Firenze", "Ancona",  "Perugia", "Roma",
      "Pescara", "Napoli", "Salerno", "Bari",   "Potenza", "ReggioCalabria",
      "Catania", "Palermo", "Cagliari"};
  // GARR-like Italian research backbone (21 PoPs): a geographic ring down
  // both coasts plus core chords. 34 links.
  const std::vector<Pair> chords = {
      {0, 1},  {1, 5},  {1, 6},  {2, 5},  {5, 8},  {5, 11}, {7, 8},
      {8, 11}, {11, 13}, {11, 15}, {13, 14}, {15, 16}, {1, 11}, {19, 20},
      {11, 20}, {3, 5}};
  return buildNamed(n, ringPlusChords(static_cast<int>(n.size()), chords));
}

Graph as1755() {
  const std::vector<std::string> n = {
      "London",    "Paris",     "Amsterdam", "Brussels", "Frankfurt",
      "Munich",    "Geneva",    "Zurich",    "Milan",    "Vienna",
      "Stockholm", "Oslo",      "Copenhagen", "Hamburg", "Duesseldorf",
      "Madrid",    "NewYork",   "Washington"};
  // Rocketfuel AS1755 (Ebone) PoP-level approximation: 18 PoPs, 33 links.
  const std::vector<Pair> links = {
      {0, 1},   {0, 2},   {0, 16},  {0, 15}, {1, 3},   {1, 6},   {1, 15},
      {2, 3},   {2, 13},  {2, 14},  {3, 14}, {4, 5},   {4, 13},  {4, 14},
      {4, 7},   {4, 9},   {5, 9},   {5, 7},  {6, 7},   {6, 8},   {7, 8},
      {8, 9},   {10, 11}, {10, 12}, {11, 12}, {12, 13}, {10, 13}, {16, 17},
      {0, 12},  {1, 4},   {2, 4},   {16, 2},  {15, 8},  {17, 1}};
  return buildNamed(n, links);
}

Graph as3257() {
  const std::vector<std::string> n = {
      "London",   "Paris",    "Amsterdam", "Brussels",  "Frankfurt",
      "Munich",   "Zurich",   "Milan",     "Rome",      "Vienna",
      "Prague",   "Warsaw",   "Stockholm", "Copenhagen", "Hamburg",
      "Berlin",   "Duesseldorf", "Strasbourg", "Lyon",   "Marseille",
      "Barcelona", "Madrid",  "Lisbon",    "Dublin"};
  // Rocketfuel AS3257 (Tiscali) approximation: 24 PoPs, 38 links.
  const std::vector<Pair> chords = {
      {0, 2},  {0, 4},  {0, 23}, {1, 4},   {1, 18},  {2, 4},   {2, 14},
      {4, 14}, {4, 15}, {4, 6},  {4, 9},   {5, 9},   {5, 6},   {6, 7},
      {9, 10}, {10, 15}, {11, 15}, {12, 13}, {13, 14}, {14, 15}, {16, 2},
      {16, 4}, {18, 19}, {20, 21}, {1, 17}, {4, 17}};
  return buildNamed(n, ringPlusChords(static_cast<int>(n.size()), chords));
}

Graph as1221() {
  const std::vector<std::string> n = {
      "Sydney1",   "Sydney2",  "Sydney3",  "Melbourne1", "Melbourne2",
      "Brisbane1", "Brisbane2", "Adelaide1", "Adelaide2", "Perth1",
      "Perth2",    "Canberra1", "Canberra2", "Hobart",   "Darwin",
      "Cairns",    "Townsville", "GoldCoast", "Newcastle", "Wollongong",
      "Geelong",   "Ballarat",  "Launceston", "AliceSprings", "Auckland"};
  // Rocketfuel AS1221 (Telstra) approximation: 25 PoPs. Telstra is hub-and-
  // spoke around the capital-city PoP pairs with an inter-capital core ring.
  const std::vector<int> parent = {
      0 /*unused*/, 0, 0, 0, 3, 0, 5, 3, 7, 7, 9, 0, 11, 3, 7, 5, 5, 5, 0,
      0, 3, 3, 13, 14, 0};
  const std::vector<Pair> cross = {
      {1, 3},  {2, 5},  {4, 7},  {8, 9},  {12, 3}, {6, 16}, {17, 18},
      {19, 11}, {20, 21}, {22, 3}, {24, 3}, {10, 23}};
  return buildNamed(n, treePlusCross(parent, cross));
}

Graph att() {
  const std::vector<std::string> n = {
      "Seattle", "Portland", "SanFrancisco", "SanJose",  "LosAngeles",
      "SanDiego", "Phoenix", "SaltLake",     "Denver",   "Albuquerque",
      "Dallas",  "Austin",   "Houston",      "NewOrleans", "Atlanta",
      "Orlando", "Miami",    "Charlotte",    "Washington", "Philadelphia",
      "NewYork", "Boston",   "Cleveland",    "Chicago",  "StLouis"};
  // AT&T North America IP backbone approximation: 25 PoPs, 45 links (the
  // real network is dense between the national hubs).
  const std::vector<Pair> chords = {
      {0, 2},   {0, 23},  {2, 3},   {2, 4},   {2, 8},   {2, 23},  {3, 4},
      {4, 6},   {4, 10},  {6, 9},   {7, 8},   {8, 23},  {8, 10},  {9, 10},
      {10, 12}, {10, 14}, {10, 23}, {12, 14}, {14, 17}, {14, 18}, {14, 23},
      {15, 16}, {14, 16}, {17, 18}, {18, 20}, {18, 23}, {19, 20}, {20, 21},
      {20, 23}, {22, 23}, {23, 24}, {24, 10}, {24, 14}, {2, 20},  {12, 16}};
  return buildNamed(n, ringPlusChords(static_cast<int>(n.size()), chords));
}

Graph bics() {
  const std::vector<std::string> n = {
      "Brussels", "Antwerp",  "Amsterdam", "London", "Paris",   "Frankfurt",
      "Geneva",   "Zurich",   "Milan",     "Rome",   "Vienna",  "Bratislava",
      "Budapest", "Prague",   "Warsaw",    "Berlin", "Hamburg", "Copenhagen",
      "Stockholm", "Dublin",  "Madrid",    "Barcelona", "Luxembourg",
      "Strasbourg"};
  // BICS pan-European carrier approximation: 24 PoPs, 36 links.
  const std::vector<Pair> chords = {
      {0, 2},  {0, 3},  {0, 4},  {0, 5},   {0, 22},  {3, 4},  {3, 19},
      {4, 6},  {4, 20},  {5, 13}, {5, 15},  {5, 16},  {5, 22}, {5, 23},
      {7, 8},  {8, 9},  {10, 12}, {10, 13}, {14, 15}, {16, 17}, {2, 16},
      {3, 2}};
  return buildNamed(n, ringPlusChords(static_cast<int>(n.size()), chords));
}

Graph btEurope() {
  const std::vector<std::string> n = {
      "London1", "London2", "Manchester", "Dublin",  "Paris",    "Brussels",
      "Amsterdam", "Frankfurt", "Munich", "Zurich",  "Milan",    "Madrid",
      "Barcelona", "Lisbon", "Rome",      "Vienna",  "Prague",   "Warsaw",
      "Stockholm", "Copenhagen", "Hamburg", "Dusseldorf", "Geneva", "Lyon"};
  // BT Europe approximation: 24 PoPs, 37 links, strongly hubbed on the two
  // London PoPs (which gives ECMP its characteristic bottlenecks there).
  const std::vector<Pair> chords = {
      {0, 1},  {0, 4},  {0, 6},  {0, 7},  {0, 3},   {1, 5},  {1, 7},
      {1, 11}, {4, 5},  {4, 23}, {6, 7},  {7, 20},  {7, 16}, {7, 15},
      {9, 22}, {9, 10}, {11, 12}, {14, 10}, {18, 19}, {19, 20}, {21, 7},
      {21, 6}, {2, 0},  {17, 16}};
  return buildNamed(n, ringPlusChords(static_cast<int>(n.size()), chords));
}

Graph digex() {
  const std::vector<std::string> n = {
      "Laurel",   "Washington", "Philadelphia", "NewYork", "Boston",
      "Atlanta",  "Orlando",    "Miami",        "Chicago", "Detroit",
      "Cleveland", "StLouis",   "Dallas",       "Houston", "Denver",
      "LosAngeles", "SanFrancisco", "SanJose",  "Seattle", "KansasCity",
      "Phoenix",  "Minneapolis"};
  // Digex approximation: 22 PoPs, 27 links -- sparse, hub-heavy (Laurel MD
  // was Digex's main hub). The 1997 Digex map carries neither capacities
  // nor weights, so this network uses the paper's unit fallback; with the
  // tiered heuristic the hubs end up so over-provisioned that ECMP is
  // near-optimal and the Fig. 7 gap disappears (see DESIGN.md §3).
  const std::vector<int> parent = {
      0 /*unused*/, 0, 1, 2, 3, 1, 5, 6, 1, 8, 8, 8, 11, 12, 11, 14, 15,
      16, 16, 11, 15, 8};
  const std::vector<Pair> cross = {{0, 3}, {0, 5}, {0, 8}, {13, 5}, {17, 15},
                                   {14, 20}};
  return buildNamed(n, treePlusCross(parent, cross),
                    /*uniform_capacity=*/true);
}

Graph bbnPlanet() {
  const std::vector<std::string> n = {
      "Cambridge", "Boston",  "NewYork", "Washington", "Vienna",  "Atlanta",
      "Orlando",   "Houston", "Dallas",  "Chicago",    "StLouis", "Denver",
      "SaltLake",  "Seattle", "Portland", "SanFrancisco", "SanJose",
      "LosAngeles", "SanDiego", "Phoenix", "Albuquerque", "KansasCity",
      "Minneapolis", "Detroit", "Cleveland", "Pittsburgh", "Philadelphia"};
  // BBNPlanet approximation: 27 nodes, 28 links -- almost a tree (two long
  // chains coast-to-coast with two closing loops). Excluded from Table I,
  // used by the Fig. 11 stretch experiment (stretch can be < 1 here).
  const std::vector<int> parent = {
      0 /*unused*/, 0, 1, 2, 3, 4, 5, 5, 7, 2, 9, 10, 11, 12, 13, 12, 15,
      16, 17, 18, 19, 10, 9, 9, 23, 24, 3};
  const std::vector<Pair> cross = {{8, 20}, {17, 8}};
  return buildNamed(n, treePlusCross(parent, cross));
}

Graph grnet() {
  const std::vector<std::string> n = {
      "Athens1",  "Athens2",   "Thessaloniki", "Patras", "Heraklion",
      "Larissa",  "Ioannina",  "Xanthi",       "Syros",  "Chania",
      "Volos",    "Kozani",    "Kavala",       "Corfu",  "Mytilene",
      "Rhodes",   "Kalamata",  "Lamia",        "Tripoli", "Alexandroupoli",
      "Chalkida", "Agrinio"};
  // GRNet approximation: 22 nodes, 25 links -- a star on the two Athens
  // PoPs plus a northern ring (Athens-Larissa-Thessaloniki) and island legs.
  const std::vector<int> parent = {
      0 /*unused*/, 0, 0, 0, 0, 0, 2, 2, 0, 4, 5, 2, 7, 6, 1, 1, 3, 5, 3,
      12, 1, 3};
  const std::vector<Pair> cross = {{1, 2}, {10, 0}, {10, 17}};
  return buildNamed(n, treePlusCross(parent, cross));
}

Graph gambia() {
  const std::vector<std::string> n = {"Banjul",  "Serekunda", "Brikama",
                                      "Bakau",   "Farafenni", "Basse",
                                      "Janjanbureh"};
  // Gambia: a 7-node tree; the paper drops it from Table I ("almost a tree",
  // no routing diversity to optimize). Kept for the parser/corpus tests.
  const std::vector<int> parent = {0 /*unused*/, 0, 1, 1, 0, 4, 5};
  return buildNamed(n, treePlusCross(parent, {}));
}

}  // namespace

std::vector<std::string> zooNames() {
  return {"AS1221",  "AS1755", "AS3257",     "Abilene", "AT",
          "BBNPlanet", "BICS", "BtEurope",   "Digex",   "Geant",
          "Germany", "GRNet",  "InternetMCI", "Italy",  "NSF",
          "Gambia"};
}

std::vector<std::string> tableOneNames() {
  return {"AS1221",  "AS1755", "AS3257",     "Abilene", "AT",
          "BICS",    "BtEurope", "Digex",    "Geant",   "Germany",
          "GRNet",   "InternetMCI", "Italy", "NSF"};
}

Graph makeZoo(const std::string& name) {
  static const std::map<std::string, Graph (*)()> factories = {
      {"AS1221", &as1221},       {"AS1755", &as1755},
      {"AS3257", &as3257},       {"Abilene", &abilene},
      {"AT", &att},              {"BBNPlanet", &bbnPlanet},
      {"BICS", &bics},           {"BtEurope", &btEurope},
      {"Digex", &digex},         {"Geant", &geant},
      {"Germany", &nobelGermany}, {"GRNet", &grnet},
      {"InternetMCI", &internetMci}, {"Italy", &italy},
      {"NSF", &nsfnet},          {"Gambia", &gambia}};
  const auto it = factories.find(name);
  require(it != factories.end(), "unknown zoo topology: " + name);
  return it->second();
}

Graph runningExample() {
  Graph g;
  const NodeId s1 = g.addNode("s1");
  const NodeId s2 = g.addNode("s2");
  const NodeId v = g.addNode("v");
  const NodeId t = g.addNode("t");
  g.addLink(s1, s2, 1.0);
  g.addLink(s1, v, 1.0);
  g.addLink(s2, v, 1.0);
  g.addLink(s2, t, 1.0);
  g.addLink(v, t, 1.0);
  return g;
}

Graph prototypeTriangle() {
  Graph g;
  const NodeId s1 = g.addNode("s1");
  const NodeId s2 = g.addNode("s2");
  const NodeId t = g.addNode("t");
  g.addLink(s1, s2, 1.0);
  g.addLink(s1, t, 1.0);
  g.addLink(s2, t, 1.0);
  return g;
}

}  // namespace coyote::topo
