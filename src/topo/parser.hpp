// Plain-text topology format, so users can load their own networks:
//
//   # comment
//   node <name>
//   link <name-a> <name-b> <capacity> [weight]
//
// `link` adds a bidirectional link (two directed edges). Nodes referenced by
// a link before being declared are created implicitly.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace coyote::topo {

/// Parses the textual format above. Throws std::invalid_argument on
/// malformed input (with a line number in the message).
[[nodiscard]] Graph parseTopology(std::istream& in);
[[nodiscard]] Graph parseTopologyString(const std::string& text);

/// Writes `g` in the same format (only the a->b direction of each
/// bidirectional link is emitted). Round-trips with parseTopology.
void serializeTopology(const Graph& g, std::ostream& out);
[[nodiscard]] std::string serializeTopologyString(const Graph& g);

}  // namespace coyote::topo
