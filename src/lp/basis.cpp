#include "lp/basis.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace coyote::lp {

namespace {

/// Markowitz stability screen: a pivot candidate must be within this factor
/// of the column's largest eligible magnitude.
constexpr double kStabRatio = 0.05;
/// A Forrest-Tomlin update whose new diagonal is this small relative to the
/// spike is numerically unsafe; the caller refactorizes instead.
constexpr double kFtStabTol = 1e-9;

/// Appends `slot` to `refs` unless already present. Keeping the per-row
/// reference lists duplicate-free is what lets update() subtract each U
/// entry exactly once when propagating a row elimination.
void pushRowRef(std::vector<int>& refs, int slot) {
  for (const int k : refs) {
    if (k == slot) return;
  }
  refs.push_back(slot);
}

}  // namespace

void LuFactor::reset(int m, std::vector<int> row_counts) {
  m_ = m;
  placed_ = 0;
  op_heads_.clear();
  op_pool_.clear();
  slots_.clear();
  u_pool_.clear();
  pos_.clear();
  pos_of_.clear();
  slot_of_row_.assign(m, -1);
  row_counts_ = std::move(row_counts);
  if (static_cast<int>(rows_with_.size()) != m) {
    rows_with_.assign(m, {});
  } else {
    for (auto& refs : rows_with_) refs.clear();  // keeps the capacity
  }
  work_.assign(m, 0.0);
  touched_.clear();
  rowval_.clear();
  nonzeros_ = 0;
}

int LuFactor::addColumn(const std::vector<ColNz>& col, double depend_tol) {
  touched_.clear();
  for (const ColNz& nz : col) {
    work_[nz.row] += nz.val;
    touched_.push_back(nz.row);
  }
  applyOps(work_, &touched_);

  // Markowitz-style pivot: among the numerically safe entries on unpivoted
  // rows, prefer the sparsest row, then the largest magnitude, then the
  // lowest row index (determinism; touched_ may repeat rows, so every
  // tie is broken explicitly).
  double vmax = 0.0;
  for (const int r : touched_) {
    if (slot_of_row_[r] < 0) vmax = std::max(vmax, std::abs(work_[r]));
  }
  int piv = -1;
  int best_count = 0;
  double best_abs = 0.0;
  const double screen = std::max(depend_tol, kStabRatio * vmax);
  for (const int r : touched_) {
    if (slot_of_row_[r] >= 0) continue;
    const double a = std::abs(work_[r]);
    if (a <= depend_tol || a < screen) continue;
    const int cnt = row_counts_.empty() ? 0 : row_counts_[r];
    if (piv < 0 || cnt < best_count || (cnt == best_count && a > best_abs) ||
        (cnt == best_count && a == best_abs && r < piv)) {
      piv = r;
      best_count = cnt;
      best_abs = a;
    }
  }
  if (piv < 0) {
    for (const int r : touched_) work_[r] = 0.0;
    return -1;
  }

  const int slot = static_cast<int>(slots_.size());
  slots_.push_back({});
  UCol& u = slots_.back();
  u.pivot_row = piv;
  u.diag = work_[piv];
  u.begin = static_cast<int>(u_pool_.size());
  OpHead op;
  op.pivot = piv;
  op.begin = static_cast<int>(op_pool_.size());
  for (const int r : touched_) {
    const double v = work_[r];
    if (v == 0.0) continue;  // also skips duplicate touched_ entries
    work_[r] = 0.0;
    if (r == piv) continue;
    if (slot_of_row_[r] >= 0) {
      u_pool_.push_back({r, v});  // above the diagonal: joins U
      ++u.len;
      pushRowRef(rows_with_[r], slot);
    } else {
      op_pool_.push_back({r, v / u.diag});  // below: eliminated into L
    }
  }
  work_[piv] = 0.0;
  nonzeros_ += static_cast<std::size_t>(u.len) + 1;
  op.end = static_cast<int>(op_pool_.size());
  if (op.end > op.begin) {
    nonzeros_ += static_cast<std::size_t>(op.end - op.begin);
    op_heads_.push_back(op);
  }
  slot_of_row_[piv] = slot;
  pos_of_.push_back(static_cast<int>(pos_.size()));
  pos_.push_back(slot);
  ++placed_;
  return piv;
}

void LuFactor::sealRefactor() { fresh_nonzeros_ = nonzeros_; }

void LuFactor::applyOps(std::vector<double>& z,
                        std::vector<int>* touched) const {
  for (const OpHead& op : op_heads_) {
    if (op.row_op) {
      double s = z[op.pivot];
      for (int k = op.begin; k < op.end; ++k) {
        s -= op_pool_[k].val * z[op_pool_[k].row];
      }
      z[op.pivot] = s;
      if (touched) touched->push_back(op.pivot);
    } else {
      const double v = z[op.pivot];
      if (v == 0.0) continue;
      for (int k = op.begin; k < op.end; ++k) {
        z[op_pool_[k].row] -= op_pool_[k].val * v;
        if (touched) touched->push_back(op_pool_[k].row);
      }
    }
  }
}

void LuFactor::ftran(std::vector<double>& z) const {
  applyOps(z, nullptr);
  for (int k = static_cast<int>(pos_.size()) - 1; k >= 0; --k) {
    const UCol& u = slots_[pos_[k]];
    const double zr = z[u.pivot_row];
    if (zr == 0.0) continue;
    const double c = zr / u.diag;
    z[u.pivot_row] = c;
    for (int e = u.begin; e < u.begin + u.len; ++e) {
      z[u_pool_[e].row] -= u_pool_[e].val * c;
    }
  }
}

void LuFactor::btran(std::vector<double>& z) const {
  for (const int slot : pos_) {
    const UCol& u = slots_[slot];
    double s = z[u.pivot_row];
    for (int e = u.begin; e < u.begin + u.len; ++e) {
      s -= u_pool_[e].val * z[u_pool_[e].row];
    }
    if (s == 0.0 && z[u.pivot_row] == 0.0) continue;
    z[u.pivot_row] = s / u.diag;
  }
  for (auto it = op_heads_.rbegin(); it != op_heads_.rend(); ++it) {
    if (it->row_op) {
      const double v = z[it->pivot];
      if (v == 0.0) continue;
      for (int k = it->begin; k < it->end; ++k) {
        z[op_pool_[k].row] -= op_pool_[k].val * v;
      }
    } else {
      double s = z[it->pivot];
      for (int k = it->begin; k < it->end; ++k) {
        s -= op_pool_[k].val * z[op_pool_[k].row];
      }
      z[it->pivot] = s;
    }
  }
}

bool LuFactor::update(int leave_row, const std::vector<ColNz>& col) {
  const int s_t = slot_of_row_[leave_row];
  require(s_t >= 0, "LuFactor::update: row not pivoted");

  // The spike: the entering column eliminated through L^{-1} only.
  touched_.clear();
  for (const ColNz& nz : col) {
    work_[nz.row] += nz.val;
    touched_.push_back(nz.row);
  }
  applyOps(work_, &touched_);
  double spike_max = 0.0;
  for (const int r : touched_) {
    spike_max = std::max(spike_max, std::abs(work_[r]));
  }

  // Gather row `leave_row` of U -- its entries live in columns at later
  // positions -- removing each from its column (the row is about to be
  // eliminated).
  rowval_.assign(slots_.size(), 0.0);
  for (const int k : rows_with_[leave_row]) {
    if (k == s_t) continue;
    UCol& u = slots_[k];
    for (int e = u.begin; e < u.begin + u.len; ++e) {
      if (u_pool_[e].row == leave_row) {
        rowval_[k] = u_pool_[e].val;
        u_pool_[e] = u_pool_[u.begin + u.len - 1];
        --u.len;
        --nonzeros_;
        break;
      }
    }
  }
  rows_with_[leave_row].clear();

  // Eliminate the gathered row left to right using the diagonals of the
  // later columns. A row op only touches row `leave_row`, so the columns
  // themselves stay intact; fill propagates strictly rightward, which is
  // why one position-ordered sweep suffices (classic Forrest-Tomlin).
  OpHead rowop;
  rowop.pivot = leave_row;
  rowop.row_op = true;
  rowop.begin = static_cast<int>(op_pool_.size());
  const int t = pos_of_[s_t];
  const int end = static_cast<int>(pos_.size());
  for (int p = t + 1; p < end; ++p) {
    const int k = pos_[p];
    const double v = rowval_[k];
    if (v == 0.0) continue;
    const UCol& u = slots_[k];
    const double mult = v / u.diag;
    op_pool_.push_back({u.pivot_row, mult});
    for (const int k2 : rows_with_[u.pivot_row]) {
      if (k2 == s_t) continue;
      const UCol& c2 = slots_[k2];
      for (int e = c2.begin; e < c2.begin + c2.len; ++e) {
        if (u_pool_[e].row == u.pivot_row) {
          rowval_[k2] -= mult * u_pool_[e].val;
          break;
        }
      }
    }
    work_[leave_row] -= mult * work_[u.pivot_row];
  }
  rowop.end = static_cast<int>(op_pool_.size());

  // The spike takes the freed slot at the last position; what remains at
  // the leaving pivot row is the new diagonal.
  const double diag = work_[leave_row];
  if (!(std::abs(diag) > kFtStabTol * (1.0 + spike_max))) {
    // Unsafe pivot. Entries were already unhooked above, so the factor is
    // unusable until the caller's refactorization.
    for (const int r : touched_) work_[r] = 0.0;
    work_[leave_row] = 0.0;
    op_pool_.resize(rowop.begin);
    return false;
  }

  UCol& u = slots_[s_t];
  nonzeros_ -= static_cast<std::size_t>(u.len) + 1;
  // The replaced column's old pool range is leaked until the next
  // refactorization; the new entries go at the pool tail.
  u.begin = static_cast<int>(u_pool_.size());
  u.len = 0;
  u.pivot_row = leave_row;
  u.diag = diag;
  for (const int r : touched_) {
    const double v = work_[r];
    if (v == 0.0) continue;  // also skips duplicate touched_ entries
    work_[r] = 0.0;
    if (r == leave_row) continue;
    u_pool_.push_back({r, v});
    ++u.len;
    pushRowRef(rows_with_[r], s_t);
  }
  work_[leave_row] = 0.0;
  nonzeros_ += static_cast<std::size_t>(u.len) + 1;
  if (rowop.end > rowop.begin) {
    nonzeros_ += static_cast<std::size_t>(rowop.end - rowop.begin);
    op_heads_.push_back(rowop);
  }
  for (int p = t; p + 1 < end; ++p) {
    pos_[p] = pos_[p + 1];
    pos_of_[pos_[p]] = p;
  }
  pos_[end - 1] = s_t;
  pos_of_[s_t] = end - 1;
  return true;
}

}  // namespace coyote::lp
