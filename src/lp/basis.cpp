#include "lp/basis.hpp"

#include <cmath>

namespace coyote::lp {

void EtaFile::clear() {
  etas_.clear();
  nonzeros_ = 0;
}

void EtaFile::append(int pivot_row, const std::vector<double>& d,
                     const std::vector<int>& touched) {
  Eta eta;
  eta.row = pivot_row;
  eta.pivot = d[pivot_row];
  eta.off.reserve(touched.size());
  for (const int i : touched) {
    if (i != pivot_row && d[i] != 0.0) eta.off.push_back({i, d[i]});
  }
  nonzeros_ += eta.off.size() + 1;
  etas_.push_back(std::move(eta));
}

void EtaFile::ftran(std::vector<double>& z) const {
  for (const Eta& e : etas_) {
    const double zr = z[e.row];
    if (zr == 0.0) continue;
    const double piv = zr / e.pivot;
    z[e.row] = piv;
    for (const ColNz& nz : e.off) z[nz.row] -= nz.val * piv;
  }
}

void EtaFile::btran(std::vector<double>& z) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = z[it->row];
    for (const ColNz& nz : it->off) s -= nz.val * z[nz.row];
    if (s == 0.0 && z[it->row] == 0.0) continue;
    z[it->row] = s / it->pivot;
  }
}

}  // namespace coyote::lp
