#include <algorithm>
#include <cmath>
#include <cstddef>

#include "lp/lp.hpp"

namespace coyote::lp {

std::string toString(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterLimit: return "iteration-limit";
  }
  return "unknown";
}

int LpProblem::addVar(double obj, double lb, double ub, std::string name) {
  require(std::isfinite(lb), "variable lower bound must be finite");
  require(ub >= lb, "variable upper bound below lower bound");
  obj_.push_back(obj);
  lb_.push_back(lb);
  ub_.push_back(ub);
  if (name.empty()) name = "x" + std::to_string(obj_.size() - 1);
  names_.push_back(std::move(name));
  return numVars() - 1;
}

void LpProblem::addConstraint(std::vector<Term> terms, Rel rel, double rhs) {
  for (const Term& t : terms) {
    require(t.var >= 0 && t.var < numVars(), "constraint references bad var");
    require(std::isfinite(t.coef), "non-finite constraint coefficient");
  }
  require(std::isfinite(rhs), "non-finite rhs");
  rows_.push_back(std::move(terms));
  rels_.push_back(rel);
  rhs_.push_back(rhs);
}

void LpProblem::setObjective(int var, double coef) {
  require(var >= 0 && var < numVars(), "setObjective: bad var");
  obj_[var] = coef;
}

namespace {

/// Column-sparse matrix entry.
struct Nz {
  int row;
  double val;
};

}  // namespace

/// Revised primal simplex over the standard form
///     min c^T x,  A x = b,  x >= 0,
/// built from the user problem by shifting lower bounds, splitting free-ish
/// structure away (lb must be finite by contract), turning finite upper
/// bounds into rows, and adding slack/artificial columns.
class SimplexSolver {
 public:
  SimplexSolver(const LpProblem& p, const SimplexOptions& opt)
      : p_(p), opt_(opt) {}

  LpResult run() {
    build();
    LpResult res;
    // ---- Phase 1: minimize sum of artificials.
    if (num_artificial_ > 0) {
      std::vector<double> phase1(cols_.size(), 0.0);
      for (int j = first_artificial_; j < static_cast<int>(cols_.size()); ++j) {
        phase1[j] = 1.0;
      }
      const Status s1 = iterate(phase1, res.iterations);
      if (s1 != Status::kOptimal) {
        res.status = (s1 == Status::kUnbounded) ? Status::kInfeasible : s1;
        return res;
      }
      double art_sum = 0.0;
      for (int i = 0; i < m_; ++i) {
        if (basis_[i] >= first_artificial_) art_sum += xb_[i];
      }
      if (art_sum > opt_.feas_tol * (1.0 + normB_)) {
        res.status = Status::kInfeasible;
        return res;
      }
      banned_from_ = first_artificial_;  // artificials may not re-enter
      // Artificials still basic (at zero) would be free to drift positive
      // during phase 2, silently violating their rows. Pivot them out with
      // degenerate pivots; rows where no structural column can enter are
      // redundant and their artificial provably stays at zero.
      driveOutArtificials();
    }
    // ---- Phase 2: original objective.
    const Status s2 = iterate(cost_, res.iterations);
    res.status = s2;
    if (s2 != Status::kOptimal) return res;

    // Recover original-space solution.
    std::vector<double> xs(cols_.size(), 0.0);
    for (int i = 0; i < m_; ++i) xs[basis_[i]] = std::max(0.0, xb_[i]);
    res.x.assign(p_.numVars(), 0.0);
    double obj = 0.0;
    for (int j = 0; j < p_.numVars(); ++j) {
      res.x[j] = xs[j] + p_.lb_[j];
      obj += p_.obj_[j] * res.x[j];
    }
    res.objective = obj;
    return res;
  }

 private:
  void build() {
    const int n = p_.numVars();
    // Row right-hand sides after shifting x by lb.
    std::vector<double> rhs = p_.rhs_;
    for (int i = 0; i < p_.numRows(); ++i) {
      for (const Term& t : p_.rows_[i]) rhs[i] -= t.coef * p_.lb_[t.var];
    }
    // Upper-bound rows: x_j - lb_j <= ub_j - lb_j.
    std::vector<int> ub_rows;
    for (int j = 0; j < n; ++j) {
      if (std::isfinite(p_.ub_[j])) ub_rows.push_back(j);
    }
    m_ = p_.numRows() + static_cast<int>(ub_rows.size());

    // Assemble dense row data first (sign-normalized so b >= 0), then
    // transpose into sparse columns.
    std::vector<double> b(m_);
    std::vector<Rel> rel(m_);
    std::vector<std::vector<Term>> rows(m_);
    for (int i = 0; i < p_.numRows(); ++i) {
      rows[i] = p_.rows_[i];
      rel[i] = p_.rels_[i];
      b[i] = rhs[i];
    }
    for (std::size_t k = 0; k < ub_rows.size(); ++k) {
      const int i = p_.numRows() + static_cast<int>(k);
      const int j = ub_rows[k];
      rows[i] = {Term{j, 1.0}};
      rel[i] = Rel::kLe;
      b[i] = p_.ub_[j] - p_.lb_[j];
    }
    for (int i = 0; i < m_; ++i) {
      if (b[i] < 0.0) {
        b[i] = -b[i];
        for (Term& t : rows[i]) t.coef = -t.coef;
        rel[i] = (rel[i] == Rel::kLe)   ? Rel::kGe
                 : (rel[i] == Rel::kGe) ? Rel::kLe
                                        : Rel::kEq;
      }
    }
    b_ = b;
    normB_ = 0.0;
    for (const double v : b_) normB_ = std::max(normB_, std::abs(v));

    // Structural columns (possibly duplicate terms are merged here).
    const double sgn = (p_.sense_ == Sense::kMaximize) ? -1.0 : 1.0;
    cols_.assign(n, {});
    cost_.assign(n, 0.0);
    for (int j = 0; j < n; ++j) cost_[j] = sgn * p_.obj_[j];
    std::vector<std::vector<Nz>> by_col(n);
    for (int i = 0; i < m_; ++i) {
      // Merge duplicate variables within the row.
      std::sort(rows[i].begin(), rows[i].end(),
                [](const Term& a, const Term& c) { return a.var < c.var; });
      for (std::size_t k = 0; k < rows[i].size();) {
        double sum = 0.0;
        const int v = rows[i][k].var;
        while (k < rows[i].size() && rows[i][k].var == v) sum += rows[i][k++].coef;
        if (sum != 0.0) by_col[v].push_back({i, sum});
      }
    }
    cols_ = std::move(by_col);

    // Slack / surplus columns; build initial basis.
    basis_.assign(m_, -1);
    for (int i = 0; i < m_; ++i) {
      if (rel[i] == Rel::kLe) {
        cols_.push_back({Nz{i, 1.0}});
        cost_.push_back(0.0);
        basis_[i] = static_cast<int>(cols_.size()) - 1;
      } else if (rel[i] == Rel::kGe) {
        cols_.push_back({Nz{i, -1.0}});
        cost_.push_back(0.0);
      }
    }
    // Artificial columns for rows without a basic slack.
    first_artificial_ = static_cast<int>(cols_.size());
    num_artificial_ = 0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < 0) {
        cols_.push_back({Nz{i, 1.0}});
        cost_.push_back(0.0);
        basis_[i] = static_cast<int>(cols_.size()) - 1;
        ++num_artificial_;
      }
    }
    banned_from_ = static_cast<int>(cols_.size());

    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;
    xb_ = b_;
    basic_flag_.assign(cols_.size(), 0);
    for (int i = 0; i < m_; ++i) basic_flag_[basis_[i]] = 1;
  }

  /// Runs simplex pivots for the given phase cost vector. Shares basis state
  /// across phases.
  Status iterate(const std::vector<double>& cost, int& iter_count) {
    const int ncols = static_cast<int>(cols_.size());
    std::vector<double> y(m_);
    std::vector<double> d(m_);
    int stall = 0;
    double last_obj = objValue(cost);
    bool bland = false;
    for (int it = 0; it < opt_.max_iterations; ++it, ++iter_count) {
      if (it > 0 && it % opt_.refactor_every == 0) refactorize();
      // y = c_B^T * Binv
      for (int i = 0; i < m_; ++i) {
        double s = 0.0;
        for (int k = 0; k < m_; ++k) {
          s += cost[basis_[k]] * binv_[static_cast<std::size_t>(k) * m_ + i];
        }
        y[i] = s;
      }
      // Pricing.
      int enter = -1;
      double best_rc = -opt_.opt_tol;
      for (int j = 0; j < ncols; ++j) {
        if (j >= banned_from_) break;
        if (in_basis(j)) continue;
        double rc = cost[j];
        for (const Nz& nz : cols_[j]) rc -= y[nz.row] * nz.val;
        if (bland) {
          if (rc < -opt_.opt_tol) {
            enter = j;
            break;
          }
        } else if (rc < best_rc) {
          best_rc = rc;
          enter = j;
        }
      }
      if (enter < 0) return Status::kOptimal;

      // d = Binv * A_enter
      std::fill(d.begin(), d.end(), 0.0);
      for (const Nz& nz : cols_[enter]) {
        const double v = nz.val;
        const double* col = &binv_[nz.row];  // column nz.row, stride m_
        for (int i = 0; i < m_; ++i) d[i] += v * col[static_cast<std::size_t>(i) * m_];
      }
      // Ratio test (prefer larger pivots among ties for stability).
      int leave = -1;
      double theta = kInfinity;
      constexpr double kPivTol = 1e-9;
      for (int i = 0; i < m_; ++i) {
        if (d[i] > kPivTol) {
          const double t = std::max(0.0, xb_[i]) / d[i];
          if (t < theta - 1e-12 ||
              (t < theta + 1e-12 && (leave < 0 || d[i] > d[leave]))) {
            theta = t;
            leave = i;
          }
        }
      }
      if (leave < 0) return Status::kUnbounded;

      // Update basic solution and basis inverse (pivot on row `leave`).
      for (int i = 0; i < m_; ++i) xb_[i] -= theta * d[i];
      xb_[leave] = theta;
      applyPivot(enter, leave, d);

      const double obj = objValue(cost);
      if (obj < last_obj - 1e-12 * (1.0 + std::abs(last_obj))) {
        stall = 0;
        bland = false;
      } else if (++stall > opt_.stall_limit) {
        bland = true;  // anti-cycling
      }
      last_obj = obj;
    }
    return Status::kIterLimit;
  }

  /// Replaces basis_[leave] by `enter` and updates the basis inverse.
  /// `d` must be Binv * A_enter with d[leave] != 0.
  void applyPivot(int enter, int leave, const std::vector<double>& d) {
    basic_flag_[basis_[leave]] = 0;
    basic_flag_[enter] = 1;
    basis_[leave] = enter;
    const double piv = d[leave];
    double* prow = &binv_[static_cast<std::size_t>(leave) * m_];
    for (int k = 0; k < m_; ++k) prow[k] /= piv;
    for (int i = 0; i < m_; ++i) {
      if (i == leave || d[i] == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(i) * m_];
      const double f = d[i];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }
  }

  /// Degenerate pivots removing basic artificials after phase 1. Rows whose
  /// artificial cannot be replaced by any structural column are linearly
  /// dependent; their Binv row keeps (Binv*A_j)[r] == 0 for every column,
  /// so the artificial can never re-grow and is safe to leave in place.
  void driveOutArtificials() {
    std::vector<double> d(m_);
    for (int r = 0; r < m_; ++r) {
      if (basis_[r] < first_artificial_) continue;
      const double* br = &binv_[static_cast<std::size_t>(r) * m_];
      int enter = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (in_basis(j)) continue;
        double alpha = 0.0;
        for (const Nz& nz : cols_[j]) alpha += br[nz.row] * nz.val;
        if (std::abs(alpha) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter < 0) continue;
      std::fill(d.begin(), d.end(), 0.0);
      for (const Nz& nz : cols_[enter]) {
        const double v = nz.val;
        const double* col = &binv_[nz.row];
        for (int i = 0; i < m_; ++i) {
          d[i] += v * col[static_cast<std::size_t>(i) * m_];
        }
      }
      // x_B is unchanged: the artificial sits at zero, so theta == 0.
      xb_[r] = 0.0;
      applyPivot(enter, r, d);
    }
  }

  [[nodiscard]] double objValue(const std::vector<double>& cost) const {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) s += cost[basis_[i]] * std::max(0.0, xb_[i]);
    return s;
  }

  [[nodiscard]] bool in_basis(int j) const { return basic_flag_[j] != 0; }

  /// Rebuilds binv_ and xb_ from scratch via Gauss-Jordan on the basis
  /// matrix; controls numerical drift of the product-form updates.
  void refactorize() {
    std::vector<double> B(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      for (const Nz& nz : cols_[basis_[k]]) {
        B[static_cast<std::size_t>(nz.row) * m_ + k] = nz.val;
      }
    }
    std::vector<double> inv(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) inv[static_cast<std::size_t>(i) * m_ + i] = 1.0;
    for (int col = 0; col < m_; ++col) {
      int piv = col;
      double best = std::abs(B[static_cast<std::size_t>(col) * m_ + col]);
      for (int r = col + 1; r < m_; ++r) {
        const double v = std::abs(B[static_cast<std::size_t>(r) * m_ + col]);
        if (v > best) {
          best = v;
          piv = r;
        }
      }
      ensure(best > 1e-13, "simplex refactorization: singular basis");
      if (piv != col) {
        for (int k = 0; k < m_; ++k) {
          std::swap(B[static_cast<std::size_t>(piv) * m_ + k],
                    B[static_cast<std::size_t>(col) * m_ + k]);
          std::swap(inv[static_cast<std::size_t>(piv) * m_ + k],
                    inv[static_cast<std::size_t>(col) * m_ + k]);
        }
      }
      const double pv = B[static_cast<std::size_t>(col) * m_ + col];
      for (int k = 0; k < m_; ++k) {
        B[static_cast<std::size_t>(col) * m_ + k] /= pv;
        inv[static_cast<std::size_t>(col) * m_ + k] /= pv;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = B[static_cast<std::size_t>(r) * m_ + col];
        if (f == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          B[static_cast<std::size_t>(r) * m_ + k] -=
              f * B[static_cast<std::size_t>(col) * m_ + k];
          inv[static_cast<std::size_t>(r) * m_ + k] -=
              f * inv[static_cast<std::size_t>(col) * m_ + k];
        }
      }
    }
    binv_ = std::move(inv);
    // xb = Binv * b
    for (int i = 0; i < m_; ++i) {
      double s = 0.0;
      const double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) s += row[k] * b_[k];
      xb_[i] = s;
    }
  }

  const LpProblem& p_;
  const SimplexOptions& opt_;
  int m_ = 0;
  double normB_ = 0.0;
  std::vector<std::vector<Nz>> cols_;
  std::vector<double> cost_;
  std::vector<double> b_;
  std::vector<double> xb_;
  std::vector<int> basis_;
  std::vector<char> basic_flag_;
  std::vector<double> binv_;  // row-major m_ x m_
  int first_artificial_ = 0;
  int num_artificial_ = 0;
  int banned_from_ = 0;
};

LpResult solve(const LpProblem& p, const SimplexOptions& opt) {
  require(p.numVars() > 0, "LP has no variables");
  SimplexSolver solver(p, opt);
  LpResult res = solver.run();
  if (res.status == Status::kOptimal && p.sense() == Sense::kMaximize) {
    // SimplexSolver already reports the objective in original sense.
  }
  return res;
}

}  // namespace coyote::lp
