#include <algorithm>
#include <cmath>
#include <cstddef>

#include "lp/basis.hpp"
#include "lp/lp.hpp"
#include "lp/stats.hpp"
#include "util/timer.hpp"

namespace coyote::lp {

std::string toString(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterLimit: return "iteration-limit";
  }
  ensure(false, "lp::toString: invalid Status value");
  return {};  // unreachable
}

int LpProblem::addVar(double obj, double lb, double ub, std::string name) {
  require(std::isfinite(lb), "variable lower bound must be finite");
  require(ub >= lb, "variable upper bound below lower bound");
  obj_.push_back(obj);
  lb_.push_back(lb);
  ub_.push_back(ub);
  if (name.empty()) name = "x" + std::to_string(obj_.size() - 1);
  names_.push_back(std::move(name));
  return numVars() - 1;
}

void LpProblem::addConstraint(std::vector<Term> terms, Rel rel, double rhs) {
  for (const Term& t : terms) {
    require(t.var >= 0 && t.var < numVars(), "constraint references bad var");
    require(std::isfinite(t.coef), "non-finite constraint coefficient");
  }
  require(std::isfinite(rhs), "non-finite rhs");
  rows_.push_back(std::move(terms));
  rels_.push_back(rel);
  rhs_.push_back(rhs);
}

void LpProblem::setObjective(int var, double coef) {
  require(var >= 0 && var < numVars(), "setObjective: bad var");
  obj_[var] = coef;
}

void LpProblem::setVarBounds(int var, double lb, double ub) {
  require(var >= 0 && var < numVars(), "setVarBounds: bad var");
  require(std::isfinite(lb), "variable lower bound must be finite");
  require(ub >= lb, "variable upper bound below lower bound");
  lb_[var] = lb;
  ub_[var] = ub;
}

void LpProblem::setConstraintRhs(int row, double rhs) {
  require(row >= 0 && row < numRows(), "setConstraintRhs: bad row");
  require(std::isfinite(rhs), "setConstraintRhs: non-finite rhs");
  rhs_[row] = rhs;
}

namespace {

/// Merges duplicate variables of a row into sorted (var, coef) nonzeros.
std::vector<Term> mergeTerms(std::vector<Term> terms) {
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> out;
  out.reserve(terms.size());
  for (std::size_t k = 0; k < terms.size();) {
    double sum = 0.0;
    const int v = terms[k].var;
    while (k < terms.size() && terms[k].var == v) sum += terms[k++].coef;
    if (sum != 0.0) out.push_back({v, sum});
  }
  return out;
}

constexpr double kPivotTol = 1e-9;   ///< min |alpha| to leave the basis on
constexpr double kDependTol = 1e-11; ///< refactorization singularity cutoff

}  // namespace

// ---------------------------------------------------------------------------
// SimplexSolver::Impl: sparse revised primal simplex over bounded variables.
//
// Internal form: columns 0..n-1 are the structural variables, column n+i is
// row i's logical (slack) with unit coefficient, so A~ = [A | I] and
// A~ x~ = b always. Row relations map to logical bounds:
//     <=  ->  s in [0, +inf)      >=  ->  s in (-inf, 0]      =  ->  s = 0.
// Nonbasic columns rest at a finite bound; the all-logical basis is the
// cold start. Feasibility is restored by a composite phase 1 (minimize the
// total bound violation of the basic variables), which needs no artificial
// columns and accepts any retained basis as a warm start.
// ---------------------------------------------------------------------------
class SimplexSolver::Impl {
 public:
  Impl(LpProblem p, SimplexOptions opt) : p_(std::move(p)), opt_(opt) {
    n_ = p_.numVars();
    m_ = 0;
    cols_.assign(n_, {});
    for (int j = 0; j < n_; ++j) {
      lb_.push_back(p_.lb_[j]);
      ub_.push_back(p_.ub_[j]);
    }
    sgn_ = (p_.sense_ == Sense::kMaximize) ? -1.0 : 1.0;
    cost_.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j) cost_[j] = sgn_ * p_.obj_[j];
    for (int i = 0; i < p_.numRows(); ++i) {
      appendRow(p_.rows_[i], p_.rels_[i], p_.rhs_[i]);
    }
    resetBasisCold();
  }

  // ---- mutations ------------------------------------------------------

  void setObjective(int var, double coef) {
    p_.setObjective(var, coef);
    cost_[var] = sgn_ * coef;
  }

  void setRhs(int row, double rhs) {
    require(row >= 0 && row < m_, "setRhs: bad row");
    require(std::isfinite(rhs), "setRhs: non-finite rhs");
    p_.rhs_[row] = rhs;
    rhs_[row] = rhs;
    primal_fresh_ = false;
  }

  void setBounds(int var, double lb, double ub) {
    require(var >= 0 && var < n_, "setBounds: bad var");
    require(std::isfinite(lb), "variable lower bound must be finite");
    require(ub >= lb, "variable upper bound below lower bound");
    p_.lb_[var] = lb;
    p_.ub_[var] = ub;
    lb_[var] = lb;
    ub_[var] = ub;
    if (status(var) == Basis::kAtUpper && !std::isfinite(ub)) {
      setStatus(var, Basis::kAtLower);
    }
    primal_fresh_ = false;
  }

  int addRow(std::vector<Term> terms, Rel rel, double rhs) {
    for (const Term& t : terms) {
      require(t.var >= 0 && t.var < n_, "addRow: bad var");
      require(std::isfinite(t.coef), "non-finite constraint coefficient");
    }
    require(std::isfinite(rhs), "non-finite rhs");
    p_.rows_.push_back(terms);
    p_.rels_.push_back(rel);
    p_.rhs_.push_back(rhs);
    appendRow(terms, rel, rhs);
    // The new logical joins the basis: [B 0; C I] stays nonsingular.
    basis_status_.status.insert(
        basis_status_.status.begin() + (n_ + m_ - 1), Basis::kBasic);
    factored_ = false;
    return m_ - 1;
  }

  void setBasis(const Basis& basis) {
    if (basis.empty()) {
      resetBasisCold();
      return;
    }
    require(static_cast<int>(basis.status.size()) == n_ + m_,
            "setBasis: status size mismatch");
    basis_status_ = basis;
    sanitizeStatuses();
    factored_ = false;
  }

  [[nodiscard]] const Basis& basis() const { return basis_status_; }
  [[nodiscard]] const LpProblem& problem() const { return p_; }

  // ---- solve ----------------------------------------------------------

  LpResult solve() {
    require(n_ > 0, "LP has no variables");
    const util::Timer timer;
    LpResult res;
    res.status = run(res.stats);
    res.iterations = res.stats.iterations;
    res.basis = basis_status_;
    if (res.status == Status::kOptimal) {
      res.x.assign(n_, 0.0);
      double obj = 0.0;
      for (int j = 0; j < n_; ++j) {
        double v = std::max(xval_[j], lb_[j]);
        if (std::isfinite(ub_[j])) v = std::min(v, ub_[j]);
        res.x[j] = v;
        obj += p_.obj_[j] * v;
      }
      res.objective = obj;
    }
    StatsSnapshot delta;
    delta.solves = 1;
    delta.iterations = res.stats.iterations;
    delta.phase1_iters = res.stats.phase1_iters;
    delta.refactorizations = res.stats.refactorizations;
    delta.iter_limit_solves = (res.status == Status::kIterLimit) ? 1 : 0;
    delta.seconds = timer.elapsedSeconds();
    GlobalStats::instance().record(delta);
    return res;
  }

 private:
  [[nodiscard]] std::int8_t status(int col) const {
    return basis_status_.status[col];
  }
  void setStatus(int col, std::int8_t s) { basis_status_.status[col] = s; }

  [[nodiscard]] bool isFixed(int col) const { return lb_[col] == ub_[col]; }

  /// Value a nonbasic column rests at under its status.
  [[nodiscard]] double boundValue(int col) const {
    return status(col) == Basis::kAtUpper ? ub_[col] : lb_[col];
  }

  void appendRow(const std::vector<Term>& terms, Rel rel, double rhs) {
    const std::vector<Term> merged = mergeTerms(terms);
    for (const Term& t : merged) cols_[t.var].push_back({m_, t.coef});
    rhs_.push_back(rhs);
    cost_.push_back(0.0);  // the row's logical column
    switch (rel) {
      case Rel::kLe:
        lb_.push_back(0.0);
        ub_.push_back(kInfinity);
        break;
      case Rel::kGe:
        lb_.push_back(-kInfinity);
        ub_.push_back(0.0);
        break;
      case Rel::kEq:
        lb_.push_back(0.0);
        ub_.push_back(0.0);
        break;
    }
    ++m_;
  }

  void resetBasisCold() {
    basis_status_.status.assign(static_cast<std::size_t>(n_) + m_,
                                Basis::kAtLower);
    for (int i = 0; i < m_; ++i) setStatus(colOfLogical(i), Basis::kBasic);
    factored_ = false;
  }

  [[nodiscard]] int colOfLogical(int row) const { return n_ + row; }
  [[nodiscard]] bool isLogical(int col) const { return col >= n_; }

  // lb_/ub_ hold structural bounds in [0, n) and logical bounds in
  // [n, n+m) -- but note appendRow pushes logical bounds after the
  // structural ones, so the combined index space is already col-aligned.

  void sanitizeStatuses() {
    for (int col = 0; col < n_ + m_; ++col) {
      if (status(col) == Basis::kBasic) continue;
      if (status(col) == Basis::kAtLower && !std::isfinite(lb_[col])) {
        setStatus(col, Basis::kAtUpper);
      } else if (status(col) == Basis::kAtUpper &&
                 !std::isfinite(ub_[col])) {
        setStatus(col, Basis::kAtLower);
      }
    }
  }

  /// Scatters column `col` of [A | I] into dense `z` (assumed zeroed).
  void scatterColumn(int col, std::vector<double>& z) const {
    if (isLogical(col)) {
      z[col - n_] = 1.0;
    } else {
      for (const ColNz& nz : cols_[col]) z[nz.row] = nz.val;
    }
  }

  [[nodiscard]] int columnNnz(int col) const {
    return isLogical(col) ? 1 : static_cast<int>(cols_[col].size());
  }

  /// Rebuilds the eta file from the current statuses with sparse Gauss
  /// elimination (sparsest column first, largest pivot in the column).
  /// Repairs singular/overcomplete bases by demoting dependent columns and
  /// completing unpivoted rows with their logicals, then recomputes the
  /// primal values. This is what makes stale warm-start bases safe.
  void refactorize(SolveStats& st) {
    ++st.refactorizations;
    updates_since_refactor_ = 0;
    eta_.clear();
    basis_.assign(m_, -1);
    std::vector<char> pivoted(m_, 0);

    std::vector<int> basics;
    for (int col = 0; col < n_ + m_; ++col) {
      if (status(col) == Basis::kBasic) basics.push_back(col);
    }
    std::sort(basics.begin(), basics.end(), [&](int a, int b) {
      const int na = columnNnz(a), nb = columnNnz(b);
      return na != nb ? na < nb : a < b;
    });

    std::vector<double> d(m_, 0.0);
    int placed = 0;
    const auto tryPlace = [&](int col) -> bool {
      scatterColumn(col, d);
      eta_.ftran(d);
      int piv = -1;
      double best = kDependTol;
      for (int i = 0; i < m_; ++i) {
        if (!pivoted[i] && std::abs(d[i]) > best) {
          best = std::abs(d[i]);
          piv = i;
        }
      }
      if (piv < 0) {
        std::fill(d.begin(), d.end(), 0.0);
        return false;
      }
      std::vector<int> touched;
      for (int i = 0; i < m_; ++i) {
        if (d[i] != 0.0) touched.push_back(i);
      }
      if (!(touched.size() == 1 && piv == touched[0] && d[piv] == 1.0)) {
        eta_.append(piv, d, touched);
      }
      basis_[piv] = col;
      pivoted[piv] = 1;
      ++placed;
      std::fill(d.begin(), d.end(), 0.0);
      return true;
    };

    for (const int col : basics) {
      if (placed == m_ || !tryPlace(col)) {
        // Dependent (or surplus) column: demote to the bound nearest its
        // current value (falling back to lb before any primal values
        // exist, e.g. on the very first factorization of a stale basis).
        const bool have_x =
            static_cast<int>(xval_.size()) == n_ + m_;
        const double x = have_x ? xval_[col] : lb_[col];
        const bool to_upper =
            std::isfinite(ub_[col]) &&
            (!std::isfinite(lb_[col]) || std::abs(x - ub_[col]) <
                                             std::abs(x - lb_[col]));
        setStatus(col, to_upper ? Basis::kAtUpper : Basis::kAtLower);
      }
    }
    // Complete with nonbasic logicals for any unpivoted row.
    for (int r = 0; r < m_ && placed < m_; ++r) {
      if (pivoted[r]) continue;
      if (status(colOfLogical(r)) != Basis::kBasic &&
          tryPlace(colOfLogical(r))) {
        setStatus(colOfLogical(r), Basis::kBasic);
        continue;
      }
      for (int rr = 0; rr < m_ && !pivoted[r]; ++rr) {
        const int col = colOfLogical(rr);
        if (status(col) != Basis::kBasic && tryPlace(col)) {
          setStatus(col, Basis::kBasic);
        }
      }
      ensure(pivoted[r], "simplex refactorization: cannot complete basis");
    }

    factored_ = true;
    recomputePrimal();
  }

  /// x_B = B^{-1} (b - N x_N); nonbasic values snap to their bounds.
  void recomputePrimal() {
    xval_.assign(static_cast<std::size_t>(n_) + m_, 0.0);
    std::vector<double> w = rhs_;
    for (int col = 0; col < n_ + m_; ++col) {
      if (status(col) == Basis::kBasic) continue;
      const double v = boundValue(col);
      xval_[col] = v;
      if (v == 0.0) continue;
      if (isLogical(col)) {
        w[col - n_] -= v;
      } else {
        for (const ColNz& nz : cols_[col]) w[nz.row] -= nz.val * v;
      }
    }
    eta_.ftran(w);
    for (int i = 0; i < m_; ++i) xval_[basis_[i]] = w[i];
    primal_fresh_ = true;
  }

  [[nodiscard]] double feasScale() const {
    double nb = 0.0;
    for (const double v : rhs_) nb = std::max(nb, std::abs(v));
    return opt_.feas_tol * (1.0 + nb);
  }

  /// Total bound violation of the basic variables.
  [[nodiscard]] double infeasibility(double eps) const {
    double f = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int col = basis_[i];
      const double x = xval_[col];
      if (x < lb_[col] - eps) f += lb_[col] - x;
      if (x > ub_[col] + eps) f += x - ub_[col];
    }
    return f;
  }

  [[nodiscard]] double phase2Objective() const {
    double z = 0.0;
    for (int col = 0; col < n_ + m_; ++col) z += cost_[col] * xval_[col];
    return z;
  }

  Status run(SolveStats& st) {
    sanitizeStatuses();
    if (!factored_) {
      refactorize(st);
    } else if (!primal_fresh_) {
      recomputePrimal();
    }
    const double eps = feasScale();

    std::vector<double> y(m_), alpha(m_);
    std::vector<double> phase1_cost;  // sized n_+m_ when in use
    int stall = 0;
    bool bland = false;
    bool was_phase1 = true;
    double last_measure = kInfinity;

    for (int it = 0; it < opt_.max_iterations; ++it) {
      if (updates_since_refactor_ >= opt_.refactor_every) refactorize(st);

      const double infeas = infeasibility(eps);
      const bool phase1 = infeas > eps;

      // y = B^{-T} c_B for the phase's cost vector.
      std::fill(y.begin(), y.end(), 0.0);
      if (phase1) {
        phase1_cost.assign(static_cast<std::size_t>(n_) + m_, 0.0);
        for (int i = 0; i < m_; ++i) {
          const int col = basis_[i];
          const double x = xval_[col];
          double c = 0.0;
          if (x < lb_[col] - eps) c = -1.0;
          if (x > ub_[col] + eps) c = 1.0;
          phase1_cost[col] = c;
          y[i] = c;
        }
      } else {
        for (int i = 0; i < m_; ++i) y[i] = cost_[basis_[i]];
      }
      eta_.btran(y);
      const std::vector<double>& cost = phase1 ? phase1_cost : cost_;

      // Pricing: Dantzig (most violating), Bland when anti-cycling.
      int enter = -1;
      double enter_dir = 0.0;
      double best_viol = opt_.opt_tol;
      for (int col = 0; col < n_ + m_; ++col) {
        const std::int8_t s = status(col);
        if (s == Basis::kBasic || isFixed(col)) continue;
        double rc = phase1 ? 0.0 : cost[col];
        if (isLogical(col)) {
          rc -= y[col - n_];
        } else {
          for (const ColNz& nz : cols_[col]) rc -= y[nz.row] * nz.val;
        }
        double viol = 0.0;
        double dir = 0.0;
        if (s == Basis::kAtLower && rc < -opt_.opt_tol) {
          viol = -rc;
          dir = 1.0;
        } else if (s == Basis::kAtUpper && rc > opt_.opt_tol) {
          viol = rc;
          dir = -1.0;
        } else {
          continue;
        }
        if (bland) {
          enter = col;
          enter_dir = dir;
          break;
        }
        if (viol > best_viol) {
          best_viol = viol;
          enter = col;
          enter_dir = dir;
        }
      }

      if (enter < 0) {
        // Confirm on a fresh factorization before declaring a verdict:
        // eta-file round-off can fake optimality/infeasibility.
        if (updates_since_refactor_ > 0) {
          refactorize(st);
          continue;
        }
        return phase1 ? Status::kInfeasible : Status::kOptimal;
      }

      // alpha = B^{-1} A_enter.
      std::fill(alpha.begin(), alpha.end(), 0.0);
      scatterColumn(enter, alpha);
      eta_.ftran(alpha);

      // Bounded-variable ratio test. The entering column moves by t >= 0
      // in direction enter_dir; basic i changes at rate -enter_dir*alpha_i.
      // Feasible basics block at the bound they approach; infeasible
      // basics moving toward feasibility block at the violated bound
      // (composite phase-1 short step).
      double t_limit = kInfinity;
      int leave = -1;          // blocking row; -1 = entering bound flip
      double leave_to = 0.0;   // bound the leaving variable stops at
      bool leave_at_upper = false;
      if (std::isfinite(ub_[enter]) && std::isfinite(lb_[enter])) {
        t_limit = ub_[enter] - lb_[enter];
      }
      for (int i = 0; i < m_; ++i) {
        const double a = alpha[i];
        if (std::abs(a) <= kPivotTol) continue;
        const int col = basis_[i];
        const double x = xval_[col];
        const double rate = -enter_dir * a;
        double bound;
        if (rate < 0.0) {
          if (x > ub_[col] + eps) {
            bound = ub_[col];  // infeasible above, decreasing: stop at ub
          } else if (x < lb_[col] - eps) {
            continue;  // infeasible below, decreasing further: no block
          } else if (std::isfinite(lb_[col])) {
            bound = lb_[col];
          } else {
            continue;
          }
        } else {
          if (x < lb_[col] - eps) {
            bound = lb_[col];  // infeasible below, increasing: stop at lb
          } else if (x > ub_[col] + eps) {
            continue;  // infeasible above, increasing further: no block
          } else if (std::isfinite(ub_[col])) {
            bound = ub_[col];
          } else {
            continue;
          }
        }
        const double t = std::max(0.0, (bound - x) / rate);
        // Ties: prefer the larger pivot (stability); under Bland's rule,
        // the lowest basic column index (required for finite termination).
        bool better = t < t_limit - 1e-12;
        if (!better && t < t_limit + 1e-12 && leave >= 0) {
          better = bland ? col < basis_[leave]
                         : std::abs(a) > std::abs(alpha[leave]);
        }
        if (better) {
          t_limit = t;
          leave = i;
          leave_to = bound;
          leave_at_upper = bound == ub_[col];
        }
      }

      if (!std::isfinite(t_limit)) {
        if (updates_since_refactor_ > 0) {  // confirm on a fresh basis
          refactorize(st);
          continue;
        }
        // A genuinely unbounded improving ray. In phase 1 the composite
        // objective is bounded below, so this can only be numerical noise.
        return phase1 ? Status::kIterLimit : Status::kUnbounded;
      }

      ++st.iterations;
      if (phase1) ++st.phase1_iters;

      // Apply the step to the basic values.
      if (t_limit != 0.0) {
        for (int i = 0; i < m_; ++i) {
          if (alpha[i] != 0.0) {
            xval_[basis_[i]] -= enter_dir * alpha[i] * t_limit;
          }
        }
      }
      if (leave < 0) {
        // Bound flip: the entering column crosses to its other bound.
        setStatus(enter, status(enter) == Basis::kAtLower ? Basis::kAtUpper
                                                          : Basis::kAtLower);
        xval_[enter] = boundValue(enter);
      } else {
        const int leaving_col = basis_[leave];
        xval_[enter] = boundValue(enter) + enter_dir * t_limit;
        xval_[leaving_col] = leave_to;  // snap exactly onto the bound
        setStatus(leaving_col,
                  leave_at_upper ? Basis::kAtUpper : Basis::kAtLower);
        setStatus(enter, Basis::kBasic);
        basis_[leave] = enter;
        std::vector<int> touched;
        for (int i = 0; i < m_; ++i) {
          if (alpha[i] != 0.0) touched.push_back(i);
        }
        eta_.append(leave, alpha, touched);
        ++updates_since_refactor_;
      }

      // Stall detection drives the Bland anti-cycling fallback.
      const double measure = phase1 ? infeasibility(eps) : phase2Objective();
      if (phase1 != was_phase1) {
        last_measure = kInfinity;
        was_phase1 = phase1;
        stall = 0;
        bland = false;
      }
      if (measure < last_measure - 1e-12 * (1.0 + std::abs(last_measure))) {
        stall = 0;
        bland = false;
        last_measure = measure;
      } else if (++stall > opt_.stall_limit) {
        bland = true;
      }
    }
    return Status::kIterLimit;
  }

  LpProblem p_;
  SimplexOptions opt_;
  int n_ = 0;  ///< structural columns
  int m_ = 0;  ///< rows (== logical columns)
  double sgn_ = 1.0;
  std::vector<std::vector<ColNz>> cols_;  ///< structural columns, sparse
  std::vector<double> cost_;              ///< internal (minimize) costs
  std::vector<double> lb_, ub_;           ///< per column, logicals included
  std::vector<double> rhs_;
  Basis basis_status_;
  std::vector<int> basis_;   ///< row -> basic column (valid when factored_)
  std::vector<double> xval_; ///< per-column primal values
  EtaFile eta_;
  int updates_since_refactor_ = 0;  ///< pivot etas since the last refactor
  bool factored_ = false;
  bool primal_fresh_ = false;
};

SimplexSolver::SimplexSolver(LpProblem problem, SimplexOptions opt)
    : impl_(std::make_unique<Impl>(std::move(problem), opt)) {}
SimplexSolver::SimplexSolver(const SimplexSolver& rhs)
    : impl_(std::make_unique<Impl>(*rhs.impl_)) {}
SimplexSolver& SimplexSolver::operator=(const SimplexSolver& rhs) {
  if (this != &rhs) impl_ = std::make_unique<Impl>(*rhs.impl_);
  return *this;
}
SimplexSolver::SimplexSolver(SimplexSolver&&) noexcept = default;
SimplexSolver& SimplexSolver::operator=(SimplexSolver&&) noexcept = default;
SimplexSolver::~SimplexSolver() = default;

LpResult SimplexSolver::solve() { return impl_->solve(); }
void SimplexSolver::setObjective(int var, double coef) {
  impl_->setObjective(var, coef);
}
void SimplexSolver::setRhs(int row, double rhs) { impl_->setRhs(row, rhs); }
void SimplexSolver::setBounds(int var, double lb, double ub) {
  impl_->setBounds(var, lb, ub);
}
int SimplexSolver::addRow(std::vector<Term> terms, Rel rel, double rhs) {
  return impl_->addRow(std::move(terms), rel, rhs);
}
void SimplexSolver::setBasis(const Basis& basis) { impl_->setBasis(basis); }
const Basis& SimplexSolver::basis() const { return impl_->basis(); }
const LpProblem& SimplexSolver::problem() const { return impl_->problem(); }

LpResult solve(const LpProblem& p, const SimplexOptions& opt) {
  require(p.numVars() > 0, "LP has no variables");
  SimplexSolver solver(p, opt);
  return solver.solve();
}

}  // namespace coyote::lp
