#include <algorithm>
#include <cmath>
#include <cstddef>

#include "lp/basis.hpp"
#include "lp/lp.hpp"
#include "lp/stats.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace coyote::lp {

std::string toString(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterLimit: return "iteration-limit";
  }
  ensure(false, "lp::toString: invalid Status value");
  return {};  // unreachable
}

Pricing defaultPricing() {
  return util::envString("COYOTE_LP_PRICING") == "dantzig" ? Pricing::kDantzig
                                                           : Pricing::kDevex;
}

bool defaultDualSimplex() {
  return util::envString("COYOTE_LP_DUAL", "1") != "0";
}

int LpProblem::addVar(double obj, double lb, double ub, std::string name) {
  require(std::isfinite(lb), "variable lower bound must be finite");
  require(ub >= lb, "variable upper bound below lower bound");
  obj_.push_back(obj);
  lb_.push_back(lb);
  ub_.push_back(ub);
  if (name.empty()) name = "x" + std::to_string(obj_.size() - 1);
  names_.push_back(std::move(name));
  return numVars() - 1;
}

void LpProblem::addConstraint(std::vector<Term> terms, Rel rel, double rhs) {
  for (const Term& t : terms) {
    require(t.var >= 0 && t.var < numVars(), "constraint references bad var");
    require(std::isfinite(t.coef), "non-finite constraint coefficient");
  }
  require(std::isfinite(rhs), "non-finite rhs");
  rows_.push_back(std::move(terms));
  rels_.push_back(rel);
  rhs_.push_back(rhs);
}

void LpProblem::setObjective(int var, double coef) {
  require(var >= 0 && var < numVars(), "setObjective: bad var");
  obj_[var] = coef;
}

void LpProblem::setVarBounds(int var, double lb, double ub) {
  require(var >= 0 && var < numVars(), "setVarBounds: bad var");
  require(std::isfinite(lb), "variable lower bound must be finite");
  require(ub >= lb, "variable upper bound below lower bound");
  lb_[var] = lb;
  ub_[var] = ub;
}

void LpProblem::setConstraintRhs(int row, double rhs) {
  require(row >= 0 && row < numRows(), "setConstraintRhs: bad row");
  require(std::isfinite(rhs), "setConstraintRhs: non-finite rhs");
  rhs_[row] = rhs;
}

namespace {

/// Merges duplicate variables of a row into sorted (var, coef) nonzeros.
std::vector<Term> mergeTerms(std::vector<Term> terms) {
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> out;
  out.reserve(terms.size());
  for (std::size_t k = 0; k < terms.size();) {
    double sum = 0.0;
    const int v = terms[k].var;
    while (k < terms.size() && terms[k].var == v) sum += terms[k++].coef;
    if (sum != 0.0) out.push_back({v, sum});
  }
  return out;
}

constexpr double kPivotTol = 1e-9;   ///< min |alpha| to leave the basis on
constexpr double kDependTol = 1e-11; ///< refactorization singularity cutoff
constexpr double kDegenStep = 1e-12; ///< a step this small counts degenerate
/// Refactorize early when the factor's stored fill outgrows the fresh
/// factorization by this factor (Forrest-Tomlin growth control).
constexpr double kLuGrowthLimit = 3.0;
/// Devex reference-framework reset threshold: when the leaving variable's
/// updated weight would exceed this, the weights have drifted too far from
/// the reference frame and all are reset to 1.
constexpr double kDevexReset = 1e7;
/// Max devex candidate-list size (re-priced each iteration; refilled by
/// rotating section scans when exhausted).
constexpr int kCandMax = 128;

}  // namespace

// ---------------------------------------------------------------------------
// SimplexSolver::Impl: sparse revised primal simplex over bounded variables.
//
// Internal form: columns 0..n-1 are the structural variables, column n+i is
// row i's logical (slack) with unit coefficient, so A~ = [A | I] and
// A~ x~ = b always. Row relations map to logical bounds:
//     <=  ->  s in [0, +inf)      >=  ->  s in (-inf, 0]      =  ->  s = 0.
// Nonbasic columns rest at a finite bound; the all-logical basis is the
// cold start. Feasibility is restored by a composite phase 1 (minimize the
// total bound violation of the basic variables), which needs no artificial
// columns and accepts any retained basis as a warm start.
//
// Per iteration: devex candidate-list pricing picks the entering column, a
// Harris two-pass ratio test (piecewise-linear long-step in phase 1) picks
// the leaving one, and the LU factorization absorbs the pivot as a
// Forrest-Tomlin update. See docs/lp-engine.md.
// ---------------------------------------------------------------------------
class SimplexSolver::Impl {
 public:
  Impl(LpProblem p, SimplexOptions opt) : p_(std::move(p)), opt_(opt) {
    n_ = p_.numVars();
    m_ = 0;
    cols_.assign(n_, {});
    for (int j = 0; j < n_; ++j) {
      lb_.push_back(p_.lb_[j]);
      ub_.push_back(p_.ub_[j]);
    }
    sgn_ = (p_.sense_ == Sense::kMaximize) ? -1.0 : 1.0;
    cost_.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j) cost_[j] = sgn_ * p_.obj_[j];
    for (int i = 0; i < p_.numRows(); ++i) {
      appendRow(p_.rows_[i], p_.rels_[i], p_.rhs_[i]);
    }
    resetBasisCold();
  }

  // ---- mutations ------------------------------------------------------

  void setObjective(int var, double coef) {
    p_.setObjective(var, coef);
    cost_[var] = sgn_ * coef;
  }

  void setRhs(int row, double rhs) {
    require(row >= 0 && row < m_, "setRhs: bad row");
    require(std::isfinite(rhs), "setRhs: non-finite rhs");
    if (rhs_[row] == rhs) return;  // no-op edit: primal stays fresh
    p_.rhs_[row] = rhs;
    rhs_[row] = rhs;
    primal_fresh_ = false;
    ++rhs_edits_;
  }

  void setBounds(int var, double lb, double ub) {
    require(var >= 0 && var < n_, "setBounds: bad var");
    require(std::isfinite(lb), "variable lower bound must be finite");
    require(ub >= lb, "variable upper bound below lower bound");
    if (lb_[var] == lb && ub_[var] == ub) return;  // no-op edit
    p_.lb_[var] = lb;
    p_.ub_[var] = ub;
    lb_[var] = lb;
    ub_[var] = ub;
    if (status(var) == Basis::kAtUpper && !std::isfinite(ub)) {
      setStatus(var, Basis::kAtLower);
    }
    primal_fresh_ = false;
  }

  int addRow(std::vector<Term> terms, Rel rel, double rhs) {
    for (const Term& t : terms) {
      require(t.var >= 0 && t.var < n_, "addRow: bad var");
      require(std::isfinite(t.coef), "non-finite constraint coefficient");
    }
    require(std::isfinite(rhs), "non-finite rhs");
    p_.rows_.push_back(terms);
    p_.rels_.push_back(rel);
    p_.rhs_.push_back(rhs);
    appendRow(terms, rel, rhs);
    // The new logical joins the basis: [B 0; C I] stays nonsingular.
    basis_status_.status.insert(
        basis_status_.status.begin() + (n_ + m_ - 1), Basis::kBasic);
    if (!devex_w_.empty()) devex_w_.push_back(1.0);
    factored_ = false;
    return m_ - 1;
  }

  void setBasis(const Basis& basis) {
    if (basis.empty()) {
      resetBasisCold();
      return;
    }
    require(static_cast<int>(basis.status.size()) == n_ + m_,
            "setBasis: status size mismatch");
    basis_status_ = basis;
    sanitizeStatuses();
    resetDevex();
    factored_ = false;
    warm_ = true;  // an externally retained basis counts as warm
  }

  [[nodiscard]] const Basis& basis() const { return basis_status_; }
  [[nodiscard]] const LpProblem& problem() const { return p_; }

  // ---- solve ----------------------------------------------------------

  LpResult solve() {
    require(n_ > 0, "LP has no variables");
    const util::Timer timer;
    LpResult res;
    res.status = run(res.stats);
    res.iterations = res.stats.iterations;
    res.basis = basis_status_;
    if (res.status == Status::kOptimal) {
      res.x.assign(n_, 0.0);
      double obj = 0.0;
      for (int j = 0; j < n_; ++j) {
        double v = std::max(xval_[j], lb_[j]);
        if (std::isfinite(ub_[j])) v = std::min(v, ub_[j]);
        res.x[j] = v;
        obj += p_.obj_[j] * v;
      }
      res.objective = obj;
    }
    StatsSnapshot delta;
    delta.solves = 1;
    delta.iterations = res.stats.iterations;
    delta.phase1_iters = res.stats.phase1_iters;
    delta.refactorizations = res.stats.refactorizations;
    delta.iter_limit_solves = (res.status == Status::kIterLimit) ? 1 : 0;
    delta.pricing_hits = res.stats.pricing_hits;
    delta.degen_rescues = res.stats.degen_rescues;
    delta.lu_updates = res.stats.lu_updates;
    delta.lu_fill = res.stats.lu_fill;
    delta.dual_pivots = res.stats.dual_pivots;
    delta.decomp_rounds = res.stats.decomp_rounds;
    delta.seconds = timer.elapsedSeconds();
    GlobalStats::instance().record(delta);
    warm_ = res.status == Status::kOptimal;
    rhs_edits_ = 0;
    return res;
  }

 private:
  [[nodiscard]] std::int8_t status(int col) const {
    return basis_status_.status[col];
  }
  void setStatus(int col, std::int8_t s) { basis_status_.status[col] = s; }

  [[nodiscard]] bool isFixed(int col) const { return lb_[col] == ub_[col]; }

  /// Value a nonbasic column rests at under its status.
  [[nodiscard]] double boundValue(int col) const {
    return status(col) == Basis::kAtUpper ? ub_[col] : lb_[col];
  }

  void appendRow(const std::vector<Term>& terms, Rel rel, double rhs) {
    const std::vector<Term> merged = mergeTerms(terms);
    for (const Term& t : merged) cols_[t.var].push_back({m_, t.coef});
    rhs_.push_back(rhs);
    cost_.push_back(0.0);  // the row's logical column
    switch (rel) {
      case Rel::kLe:
        lb_.push_back(0.0);
        ub_.push_back(kInfinity);
        break;
      case Rel::kGe:
        lb_.push_back(-kInfinity);
        ub_.push_back(0.0);
        break;
      case Rel::kEq:
        lb_.push_back(0.0);
        ub_.push_back(0.0);
        break;
    }
    ++m_;
  }

  void resetBasisCold() {
    basis_status_.status.assign(static_cast<std::size_t>(n_) + m_,
                                Basis::kAtLower);
    for (int i = 0; i < m_; ++i) setStatus(colOfLogical(i), Basis::kBasic);
    resetDevex();
    factored_ = false;
    warm_ = false;
  }

  [[nodiscard]] int colOfLogical(int row) const { return n_ + row; }
  [[nodiscard]] bool isLogical(int col) const { return col >= n_; }

  // lb_/ub_ hold structural bounds in [0, n) and logical bounds in
  // [n, n+m) -- but note appendRow pushes logical bounds after the
  // structural ones, so the combined index space is already col-aligned.

  void sanitizeStatuses() {
    for (int col = 0; col < n_ + m_; ++col) {
      if (status(col) == Basis::kBasic) continue;
      if (status(col) == Basis::kAtLower && !std::isfinite(lb_[col])) {
        setStatus(col, Basis::kAtUpper);
      } else if (status(col) == Basis::kAtUpper &&
                 !std::isfinite(ub_[col])) {
        setStatus(col, Basis::kAtLower);
      }
    }
  }

  /// Scatters column `col` of [A | I] into dense `z` (assumed zeroed).
  void scatterColumn(int col, std::vector<double>& z) const {
    if (isLogical(col)) {
      z[col - n_] = 1.0;
    } else {
      for (const ColNz& nz : cols_[col]) z[nz.row] = nz.val;
    }
  }

  /// Sparse entries of column `col` of [A | I] (logicals via a scratch).
  [[nodiscard]] const std::vector<ColNz>& columnRef(int col) {
    if (!isLogical(col)) return cols_[col];
    scratch_col_.assign(1, {col - n_, 1.0});
    return scratch_col_;
  }

  [[nodiscard]] int columnNnz(int col) const {
    return isLogical(col) ? 1 : static_cast<int>(cols_[col].size());
  }

  /// Rebuilds the LU factorization from the current statuses: basic columns
  /// are placed sparsest-first and pivoted with a Markowitz row choice
  /// (basis.*). Repairs singular/overcomplete bases by demoting dependent
  /// columns and completing unpivoted rows with their logicals, then
  /// recomputes the primal values. This is what makes stale warm-start
  /// bases safe.
  void refactorize(SolveStats& st) {
    ++st.refactorizations;
    updates_since_refactor_ = 0;

    std::vector<int> basics;
    for (int col = 0; col < n_ + m_; ++col) {
      if (status(col) == Basis::kBasic) basics.push_back(col);
    }
    std::sort(basics.begin(), basics.end(), [&](int a, int b) {
      const int na = columnNnz(a), nb = columnNnz(b);
      return na != nb ? na < nb : a < b;
    });

    std::vector<int> row_counts(m_, 0);
    for (const int col : basics) {
      if (isLogical(col)) {
        ++row_counts[col - n_];
      } else {
        for (const ColNz& nz : cols_[col]) ++row_counts[nz.row];
      }
    }
    lu_.reset(m_, std::move(row_counts));
    basis_.assign(m_, -1);

    int placed = 0;
    const auto tryPlace = [&](int col) -> bool {
      const int piv = lu_.addColumn(columnRef(col), kDependTol);
      if (piv < 0) return false;
      basis_[piv] = col;
      ++placed;
      return true;
    };

    for (const int col : basics) {
      if (placed == m_ || !tryPlace(col)) {
        // Dependent (or surplus) column: demote to the bound nearest its
        // current value (falling back to lb before any primal values
        // exist, e.g. on the very first factorization of a stale basis).
        const bool have_x =
            static_cast<int>(xval_.size()) == n_ + m_;
        const double x = have_x ? xval_[col] : lb_[col];
        const bool to_upper =
            std::isfinite(ub_[col]) &&
            (!std::isfinite(lb_[col]) || std::abs(x - ub_[col]) <
                                             std::abs(x - lb_[col]));
        setStatus(col, to_upper ? Basis::kAtUpper : Basis::kAtLower);
      }
    }
    // Complete with nonbasic logicals for any unpivoted row.
    for (int r = 0; r < m_ && placed < m_; ++r) {
      if (lu_.rowPivoted(r)) continue;
      if (status(colOfLogical(r)) != Basis::kBasic &&
          tryPlace(colOfLogical(r))) {
        setStatus(colOfLogical(r), Basis::kBasic);
        continue;
      }
      for (int rr = 0; rr < m_ && !lu_.rowPivoted(r); ++rr) {
        const int col = colOfLogical(rr);
        if (status(col) != Basis::kBasic && tryPlace(col)) {
          setStatus(col, Basis::kBasic);
        }
      }
      ensure(lu_.rowPivoted(r),
             "simplex refactorization: cannot complete basis");
    }

    lu_.sealRefactor();
    st.lu_fill += static_cast<std::int64_t>(lu_.nonzeros());
    factored_ = true;
    recomputePrimal();
  }

  /// x_B = B^{-1} (b - N x_N); nonbasic values snap to their bounds.
  void recomputePrimal() {
    xval_.assign(static_cast<std::size_t>(n_) + m_, 0.0);
    std::vector<double> w = rhs_;
    for (int col = 0; col < n_ + m_; ++col) {
      if (status(col) == Basis::kBasic) continue;
      const double v = boundValue(col);
      xval_[col] = v;
      if (v == 0.0) continue;
      if (isLogical(col)) {
        w[col - n_] -= v;
      } else {
        for (const ColNz& nz : cols_[col]) w[nz.row] -= nz.val * v;
      }
    }
    lu_.ftran(w);
    for (int i = 0; i < m_; ++i) xval_[basis_[i]] = w[i];
    primal_fresh_ = true;
  }

  [[nodiscard]] double feasScale() const {
    double nb = 0.0;
    for (const double v : rhs_) nb = std::max(nb, std::abs(v));
    return opt_.feas_tol * (1.0 + nb);
  }

  /// Total bound violation of the basic variables.
  [[nodiscard]] double infeasibility(double eps) const {
    double f = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int col = basis_[i];
      const double x = xval_[col];
      if (x < lb_[col] - eps) f += lb_[col] - x;
      if (x > ub_[col] + eps) f += x - ub_[col];
    }
    return f;
  }

  // ---- pricing --------------------------------------------------------

  void resetDevex() {
    devex_w_.assign(static_cast<std::size_t>(n_) + m_, 1.0);
    cand_.clear();
  }

  /// Reduced cost of nonbasic `col` under duals `y` and cost vector `cost`
  /// (the phase-1 cost of a nonbasic column is 0).
  [[nodiscard]] double reducedCost(int col, const std::vector<double>& y,
                                   const std::vector<double>& cost,
                                   bool phase1) const {
    double rc = phase1 ? 0.0 : cost[col];
    if (isLogical(col)) {
      rc -= y[col - n_];
    } else {
      for (const ColNz& nz : cols_[col]) rc -= y[nz.row] * nz.val;
    }
    return rc;
  }

  /// Attractiveness of a reduced cost under the column's status: returns
  /// the violation magnitude (0 = not attractive) and sets `dir`.
  [[nodiscard]] double violation(int col, double rc, double* dir) const {
    const std::int8_t s = status(col);
    if (s == Basis::kAtLower && rc < -opt_.opt_tol) {
      *dir = 1.0;
      return -rc;
    }
    if (s == Basis::kAtUpper && rc > opt_.opt_tol) {
      *dir = -1.0;
      return rc;
    }
    return 0.0;
  }

  /// Devex candidate-list partial pricing. Re-prices the retained candidate
  /// list first (a hit costs |cand| sparse dots, no scan); when the list
  /// goes dry, a full sweep refills it with the top scorers. The list is
  /// only trusted in phase 2 (`use_list`): the composite phase-1 objective
  /// changes with every violated-set change, so a list selected under the
  /// old objective would keep serving mediocre columns. Returns the
  /// entering column or -1.
  int devexPrice(const std::vector<double>& y,
                 const std::vector<double>& cost, bool phase1, bool use_list,
                 double* dir, double* viol, bool* from_list) {
    *from_list = false;
    int enter = -1;
    double best_score = 0.0;

    const auto consider = [&](int col, double* best) -> bool {
      const std::int8_t s = status(col);
      if (s == Basis::kBasic || isFixed(col)) return false;
      double d = 0.0;
      const double rc = reducedCost(col, y, cost, phase1);
      const double v = violation(col, rc, &d);
      if (v == 0.0) return false;
      const double score = v * v / devex_w_[col];
      if (score > *best) {
        *best = score;
        enter = col;
        *dir = d;
        *viol = v;
      }
      return true;
    };

    // 1. The retained candidate list (drop entries that went stale).
    if (use_list) {
      std::size_t keep = 0;
      for (const int col : cand_) {
        if (consider(col, &best_score)) cand_[keep++] = col;
      }
      cand_.resize(keep);
      if (enter >= 0) {
        *from_list = true;
        return enter;
      }
    }

    // 2. Refill with one full sweep, keeping the kCandMax best-scoring
    // columns for the following iterations (multiple pricing: one scan
    // amortizes over the candidate list's lifetime, and the entering
    // quality matches global devex).
    const int total = n_ + m_;
    scan_hits_.clear();
    for (int col = 0; col < total; ++col) {
      const std::int8_t s = status(col);
      if (s == Basis::kBasic || isFixed(col)) continue;
      const double rc = reducedCost(col, y, cost, phase1);
      double d = 0.0;
      const double v = violation(col, rc, &d);
      if (v == 0.0) continue;
      scan_hits_.push_back({col, v * v / devex_w_[col], d, v});
    }
    if (scan_hits_.empty()) return -1;

    const auto better = [](const ScanHit& a, const ScanHit& b) {
      return a.score != b.score ? a.score > b.score : a.col < b.col;
    };
    if (static_cast<int>(scan_hits_.size()) > kCandMax) {
      std::partial_sort(scan_hits_.begin(), scan_hits_.begin() + kCandMax,
                        scan_hits_.end(), better);
      scan_hits_.resize(kCandMax);
    } else {
      std::sort(scan_hits_.begin(), scan_hits_.end(), better);
    }
    cand_.clear();
    for (const ScanHit& h : scan_hits_) cand_.push_back(h.col);
    *dir = scan_hits_[0].dir;
    *viol = scan_hits_[0].viol;
    return scan_hits_[0].col;
  }

  /// Devex reference-framework weight update after a basis change: `enter`
  /// replaces the basic column at position (pivot row) `leave`, with pivot
  /// element alpha[leave]. Only the retained candidate list is re-weighted
  /// (partial devex), and only when the caller already paid for
  /// rho = B^{-T} e_leave (phase 2); without rho just the entering/leaving
  /// weights move.
  void devexUpdate(int enter, int leave, const std::vector<double>& alpha,
                   const std::vector<double>* rho) {
    const double ap = alpha[leave];
    const double wq = devex_w_[enter];
    const double gamma = std::max(wq / (ap * ap), 1.0);
    if (gamma > kDevexReset) {
      resetDevex();
      return;
    }
    if (rho != nullptr) {
      for (const int col : cand_) {
        if (col == enter || status(col) == Basis::kBasic) continue;
        double aj = 0.0;
        if (isLogical(col)) {
          aj = (*rho)[col - n_];
        } else {
          for (const ColNz& nz : cols_[col]) aj += (*rho)[nz.row] * nz.val;
        }
        const double w = (aj * aj) * wq / (ap * ap);
        if (w > devex_w_[col]) devex_w_[col] = w;
      }
    }
    devex_w_[basis_[leave]] = gamma;  // the leaving column, still basic here
    devex_w_[enter] = 1.0;
  }

  // ---- ratio tests ----------------------------------------------------

  /// Outcome of a ratio test. leave == -1 with finite t: entering bound
  /// flip; t == kInfinity: unbounded direction.
  struct RatioOutcome {
    double t = kInfinity;
    int leave = -1;
    double leave_to = 0.0;
    bool leave_at_upper = false;
    bool rescued = false;  ///< Harris stepped past the min-ratio blocker
  };

  /// Textbook bounded-variable ratio test with Bland lowest-index tie
  /// breaking -- the anti-cycling fallback (finite termination guarantee).
  /// Also handles composite phase-1 short steps exactly as the pre-Harris
  /// engine did.
  RatioOutcome blandRatioTest(int enter, double enter_dir,
                              const std::vector<double>& alpha, double eps) {
    RatioOutcome out;
    if (std::isfinite(ub_[enter]) && std::isfinite(lb_[enter])) {
      out.t = ub_[enter] - lb_[enter];
    }
    for (int i = 0; i < m_; ++i) {
      const double a = alpha[i];
      if (std::abs(a) <= kPivotTol) continue;
      const int col = basis_[i];
      const double x = xval_[col];
      const double rate = -enter_dir * a;
      double bound;
      if (rate < 0.0) {
        if (x > ub_[col] + eps) {
          bound = ub_[col];  // infeasible above, decreasing: stop at ub
        } else if (x < lb_[col] - eps) {
          continue;  // infeasible below, decreasing further: no block
        } else if (std::isfinite(lb_[col])) {
          bound = lb_[col];
        } else {
          continue;
        }
      } else {
        if (x < lb_[col] - eps) {
          bound = lb_[col];  // infeasible below, increasing: stop at lb
        } else if (x > ub_[col] + eps) {
          continue;  // infeasible above, increasing further: no block
        } else if (std::isfinite(ub_[col])) {
          bound = ub_[col];
        } else {
          continue;
        }
      }
      const double t = std::max(0.0, (bound - x) / rate);
      // Ties: the lowest basic column index (finite termination).
      bool better = t < out.t - 1e-12;
      if (!better && t < out.t + 1e-12 && out.leave >= 0) {
        better = col < basis_[out.leave];
      }
      if (better) {
        out.t = t;
        out.leave = i;
        out.leave_to = bound;
        out.leave_at_upper = bound == ub_[col];
      }
    }
    return out;
  }

  /// Harris two-pass ratio test (phase 2; all basics feasible within eps).
  /// Pass 1 finds the smallest ratio against bounds relaxed by `relax`;
  /// pass 2 picks the largest pivot among blockers whose exact ratio fits
  /// under that relaxed minimum. The chosen blocker may sit past the
  /// textbook minimum-ratio one (which then overshoots its bound by at
  /// most `relax` -- the tolerance-expansion perturbation absorbs it).
  RatioOutcome harrisRatioTest(int enter, double enter_dir,
                               const std::vector<double>& alpha,
                               double relax) {
    RatioOutcome out;
    double t_flip = kInfinity;
    if (std::isfinite(ub_[enter]) && std::isfinite(lb_[enter])) {
      t_flip = ub_[enter] - lb_[enter];
    }

    double t_rel_min = kInfinity;
    for (int i = 0; i < m_; ++i) {
      const double a = alpha[i];
      if (std::abs(a) <= kPivotTol) continue;
      const int col = basis_[i];
      const double x = xval_[col];
      const double rate = -enter_dir * a;
      const double bound = rate < 0.0 ? lb_[col] : ub_[col];
      if (!std::isfinite(bound)) continue;
      const double slack = rate < 0.0 ? bound - relax : bound + relax;
      const double t_rel = (slack - x) / rate;
      if (t_rel < t_rel_min) t_rel_min = t_rel;
    }

    if (t_flip <= t_rel_min) {  // the entering column's own bound blocks
      out.t = t_flip;
      return out;  // leave == -1: bound flip (or unbounded when infinite)
    }
    if (!std::isfinite(t_rel_min)) return out;  // unbounded direction

    double best_abs = 0.0;
    double t_exact = 0.0;
    double min_exact = kInfinity;
    for (int i = 0; i < m_; ++i) {
      const double a = alpha[i];
      if (std::abs(a) <= kPivotTol) continue;
      const int col = basis_[i];
      const double x = xval_[col];
      const double rate = -enter_dir * a;
      const double bound = rate < 0.0 ? lb_[col] : ub_[col];
      if (!std::isfinite(bound)) continue;
      const double t = (bound - x) / rate;
      if (t > t_rel_min) continue;
      if (t < min_exact) min_exact = t;
      if (std::abs(a) > best_abs) {
        best_abs = std::abs(a);
        t_exact = t;
        out.leave = i;
        out.leave_to = bound;
        out.leave_at_upper = bound == ub_[col];
      }
    }
    if (out.leave < 0) return out;  // numerically empty window: unbounded
    out.t = std::max(0.0, t_exact);
    out.rescued = t_exact > min_exact;
    return out;
  }

  /// One breakpoint of the piecewise-linear phase-1 objective along the
  /// entering direction: at step `t_ex` (relaxed: `t_rel`) the objective's
  /// slope increases by `dslope` because basic `row` crosses `bound`.
  struct Breakpoint {
    double t_rel = 0.0;
    double t_ex = 0.0;
    double dslope = 0.0;
    int row = 0;
    double bound = 0.0;
  };

  /// Piecewise-linear long-step phase-1 ratio test: instead of blocking at
  /// the first bound, walk the breakpoints while the composite
  /// infeasibility keeps decreasing (each crossing flips one slope
  /// contribution), then Harris-pick the largest pivot inside the final
  /// window. One long step can do the work of many degenerate short ones.
  RatioOutcome phase1LongStep(int enter, double enter_dir, double enter_viol,
                              const std::vector<double>& alpha, double eps,
                              double relax) {
    RatioOutcome out;
    double t_flip = kInfinity;
    if (std::isfinite(ub_[enter]) && std::isfinite(lb_[enter])) {
      t_flip = ub_[enter] - lb_[enter];
    }

    bps_.clear();
    for (int i = 0; i < m_; ++i) {
      const double a = alpha[i];
      if (std::abs(a) <= kPivotTol) continue;
      const int col = basis_[i];
      const double x = xval_[col];
      const double rate = -enter_dir * a;
      const double l = lb_[col], u = ub_[col];
      const double mag = std::abs(rate);
      const auto push = [&](double bound, double slack) {
        const double t_ex = (bound - x) / rate;
        if (t_ex > t_flip) return;  // the entering column flips first
        bps_.push_back({(slack - x) / rate, t_ex, mag, i, bound});
      };
      if (rate > 0.0) {
        if (x < l - eps) {
          push(l, l + relax);  // infeasible below, rising: violation ends
          if (std::isfinite(u)) push(u, u + relax);
        } else if (x <= u + eps) {
          if (std::isfinite(u)) push(u, u + relax);
        }
        // else: infeasible above and rising -- worsening from t=0, no
        // breakpoint (its slope is already in the reduced cost).
      } else {
        if (x > u + eps) {
          push(u, u - relax);
          if (std::isfinite(l)) push(l, l - relax);
        } else if (x >= l - eps) {
          if (std::isfinite(l)) push(l, l - relax);
        }
      }
    }

    if (bps_.empty()) {
      out.t = t_flip;  // flip if finite, else unbounded (numerical noise
      return out;      // in phase 1 -- the caller confirms on a refactor)
    }

    std::sort(bps_.begin(), bps_.end(),
              [](const Breakpoint& a, const Breakpoint& b) {
                return a.t_rel != b.t_rel ? a.t_rel < b.t_rel
                                          : a.row < b.row;
              });

    // Walk while the infeasibility still decreases.
    double slope = -enter_viol;
    double t_rel_stop = bps_.back().t_rel;
    bool stopped = false;
    for (const Breakpoint& bp : bps_) {
      slope += bp.dslope;
      if (slope >= -1e-12) {
        t_rel_stop = bp.t_rel;
        stopped = true;
        break;
      }
    }
    if (!stopped && std::isfinite(t_flip)) {
      // Still descending past every breakpoint: the entering column's own
      // bound flip is the step.
      out.t = t_flip;
      return out;
    }

    // Harris pass 2 inside the window.
    double best_abs = 0.0;
    double t_exact = 0.0;
    double min_exact = kInfinity;
    for (const Breakpoint& bp : bps_) {
      if (bp.t_rel > t_rel_stop) break;
      if (bp.t_ex < min_exact) min_exact = bp.t_ex;
      if (bp.dslope > best_abs) {
        best_abs = bp.dslope;
        t_exact = bp.t_ex;
        out.leave = bp.row;
        out.leave_to = bp.bound;
        out.leave_at_upper = bp.bound == ub_[basis_[bp.row]];
      }
    }
    out.t = std::max(0.0, t_exact);
    out.rescued = t_exact > min_exact;
    return out;
  }

  // ---- dual simplex ---------------------------------------------------

  enum class DualVerdict {
    kProceed,     ///< hand over to the primal loop (feasible, not dual-
                  ///< feasible, or the degeneracy safety net tripped)
    kInfeasible,  ///< dual ray confirmed on a fresh basis
    kIterLimit,
  };

  /// Bounded-variable dual simplex: repairs primal feasibility after
  /// rhs/bound mutations while keeping every reduced cost sign-feasible,
  /// so no composite phase 1 (and no objective regression) is needed. Per
  /// iteration: the leaving row is the largest bound violation (tie:
  /// lowest basic column), rho = B^{-T} e_r prices row r across the
  /// nonbasic columns, a Harris-style two-pass dual ratio test picks the
  /// entering column (pass 1: smallest reduced-cost ratio against
  /// tolerance-relaxed costs; pass 2: largest pivot inside the window),
  /// and reduced costs are maintained incrementally between
  /// refactorizations. Any numerical doubt -- ftran/btran pivot mismatch,
  /// a dual ray on a stale factorization -- refreshes the basis first;
  /// persistent degeneracy bails out to the composite primal phase 1,
  /// which is the correctness (and anti-cycling) backstop.
  DualVerdict runDual(SolveStats& st, double eps) {
    // The dual simplex shines on *localized* damage -- a flapped link's
    // bound pins, a single rhs edit, a cutting plane -- where a handful
    // of basics lost feasibility and a few dual pivots repair them while
    // the reduced costs stay optimal. When most of the rhs moved at once
    // (a new demand matrix), nearly every basic is violated and the
    // composite phase-1 long-step machinery beats row-at-a-time dual
    // repair, so those solves stay on the primal path: both a wide rhs
    // edit footprint since the last solve and a high violated-basic count
    // veto the dual attempt.
    if (rhs_edits_ > m_ / 2) return DualVerdict::kProceed;
    int violated = 0;
    double total = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int col = basis_[i];
      const double x = xval_[col];
      if (x < lb_[col] - eps) {
        total += lb_[col] - x;
        ++violated;
      } else if (x > ub_[col] + eps) {
        total += x - ub_[col];
        ++violated;
      }
    }
    if (total <= eps) return DualVerdict::kProceed;
    if (violated > std::max(32, m_ / 8)) return DualVerdict::kProceed;

    double cmax = 0.0;
    for (int j = 0; j < n_; ++j) cmax = std::max(cmax, std::abs(cost_[j]));
    const double dtol = opt_.opt_tol * (1.0 + cmax);

    std::vector<double> y(m_), rho(m_), alpha(m_);
    std::vector<double> rc(static_cast<std::size_t>(n_) + m_, 0.0);

    // Fresh duals + reduced costs; false when the basis is not
    // dual-feasible (the primal loop must take over from scratch).
    const auto computeRc = [&]() -> bool {
      for (int i = 0; i < m_; ++i) y[i] = cost_[basis_[i]];
      lu_.btran(y);
      for (int col = 0; col < n_ + m_; ++col) {
        if (status(col) == Basis::kBasic) {
          rc[col] = 0.0;
          continue;
        }
        rc[col] = reducedCost(col, y, cost_, /*phase1=*/false);
        if (isFixed(col)) continue;
        if (status(col) == Basis::kAtLower && rc[col] < -dtol) return false;
        if (status(col) == Basis::kAtUpper && rc[col] > dtol) return false;
      }
      return true;
    };
    if (!computeRc()) return DualVerdict::kProceed;
    bool rc_fresh = updates_since_refactor_ == 0;

    arow_.assign(static_cast<std::size_t>(n_) + m_, 0.0);
    double best_infeas = kInfinity;
    int stall = 0;

    while (st.iterations < opt_.max_iterations) {
      if (updates_since_refactor_ >= opt_.refactor_every ||
          lu_.nonzeros() > kLuGrowthLimit * lu_.freshNonzeros() + 64) {
        refactorize(st);
        if (!computeRc()) return DualVerdict::kProceed;
        rc_fresh = true;
      }

      // Leaving row: the largest bound violation (tie: lowest basic col).
      int r = -1;
      double viol = eps;
      bool below = false;
      double total = 0.0;
      for (int i = 0; i < m_; ++i) {
        const int col = basis_[i];
        const double x = xval_[col];
        double v = 0.0;
        bool b = false;
        if (x < lb_[col] - eps) {
          v = lb_[col] - x;
          b = true;
        } else if (x > ub_[col] + eps) {
          v = x - ub_[col];
        }
        if (v == 0.0) continue;
        total += v;
        if (v > viol || (v == viol && r >= 0 && col < basis_[r])) {
          viol = v;
          r = i;
          below = b;
        }
      }
      if (r < 0) return DualVerdict::kProceed;  // feasible: price out

      if (total < best_infeas - 1e-12) {
        best_infeas = total;
        stall = 0;
      } else if (++stall > std::min(opt_.stall_limit, 16)) {
        return DualVerdict::kProceed;  // degeneracy safety net
      }

      const int rcol = basis_[r];
      const double rbound = below ? lb_[rcol] : ub_[rcol];

      // rho = B^{-T} e_r; arow_[j] = rho . A_j is row r of B^{-1}[A|I].
      std::fill(rho.begin(), rho.end(), 0.0);
      rho[r] = 1.0;
      lu_.btran(rho);

      // Dual ratio test pass 1. With w_j = -arow_j when the leaving
      // variable violates its lower bound (+arow_j for the upper), an
      // entering candidate needs w_j > 0 at lower / w_j < 0 at upper so
      // the dual step gamma = rc_j / w_j >= 0 keeps every reduced cost
      // sign-feasible; the smallest relaxed ratio bounds the window.
      const double wsign = below ? -1.0 : 1.0;
      double gmin_rel = kInfinity;
      for (int col = 0; col < n_ + m_; ++col) {
        const std::int8_t s = status(col);
        arow_[col] = 0.0;
        if (s == Basis::kBasic || isFixed(col)) continue;
        double aj;
        if (isLogical(col)) {
          aj = rho[col - n_];
        } else {
          aj = 0.0;
          for (const ColNz& nz : cols_[col]) aj += rho[nz.row] * nz.val;
        }
        if (std::abs(aj) <= kPivotTol) continue;
        arow_[col] = aj;
        const double w = wsign * aj;
        if ((s == Basis::kAtLower && w > 0.0) ||
            (s == Basis::kAtUpper && w < 0.0)) {
          const double g_rel = rc[col] / w + dtol / std::abs(w);
          if (g_rel < gmin_rel) gmin_rel = g_rel;
        }
      }

      if (!std::isfinite(gmin_rel)) {
        // Dual ray => primal infeasible; confirm on a fresh basis first.
        if (updates_since_refactor_ > 0 || !rc_fresh) {
          refactorize(st);
          if (!computeRc()) return DualVerdict::kProceed;
          rc_fresh = true;
          continue;
        }
        return DualVerdict::kInfeasible;
      }

      // Pass 2: the largest pivot inside the relaxed window.
      int q = -1;
      double best_abs = 0.0;
      for (int col = 0; col < n_ + m_; ++col) {
        const double aj = arow_[col];
        if (aj == 0.0) continue;
        const std::int8_t s = status(col);
        const double w = wsign * aj;
        if (!((s == Basis::kAtLower && w > 0.0) ||
              (s == Basis::kAtUpper && w < 0.0))) {
          continue;
        }
        if (rc[col] / w > gmin_rel) continue;
        if (std::abs(aj) > best_abs) {
          best_abs = std::abs(aj);
          q = col;
        }
      }
      if (q < 0) return DualVerdict::kProceed;  // numerically empty window

      // alpha = B^{-1} A_q; cross-check the pivot against the row value.
      std::fill(alpha.begin(), alpha.end(), 0.0);
      scatterColumn(q, alpha);
      lu_.ftran(alpha);
      const double ap = alpha[r];
      if (std::abs(ap) <= kPivotTol ||
          std::abs(ap - arow_[q]) > 1e-7 * (1.0 + std::abs(ap))) {
        if (updates_since_refactor_ > 0) {
          refactorize(st);
          if (!computeRc()) return DualVerdict::kProceed;
          rc_fresh = true;
          continue;
        }
        return DualVerdict::kProceed;  // fresh and still inconsistent
      }

      // Primal step: move entering q so the leaving variable lands
      // exactly on its violated bound (t >= 0 by the sign rule).
      const double dir = status(q) == Basis::kAtLower ? 1.0 : -1.0;
      const double step = std::max(0.0, (xval_[rcol] - rbound) / (dir * ap));

      ++st.iterations;
      ++st.dual_pivots;

      if (step != 0.0) {
        for (int i = 0; i < m_; ++i) {
          if (alpha[i] != 0.0) xval_[basis_[i]] -= dir * alpha[i] * step;
        }
      }
      xval_[q] = boundValue(q) + dir * step;
      xval_[rcol] = rbound;
      setStatus(rcol, below ? Basis::kAtLower : Basis::kAtUpper);
      setStatus(q, Basis::kBasic);
      basis_[r] = q;

      // Incremental duals: y' = y + (rc_q / ap) rho drops every nonbasic
      // rc_j by (rc_q / ap) arow_j; the leaving column lands at
      // rc = -rc_q / ap, sign-feasible for the bound it lands on.
      const double theta = rc[q] / ap;
      if (theta != 0.0) {
        for (int col = 0; col < n_ + m_; ++col) {
          if (arow_[col] != 0.0) rc[col] -= theta * arow_[col];
        }
      }
      rc[q] = 0.0;
      rc[rcol] = -theta;
      rc_fresh = false;

      if (lu_.update(r, columnRef(q))) {
        ++updates_since_refactor_;
        ++st.lu_updates;
      } else {
        factored_ = false;  // unsafe Forrest-Tomlin pivot
        refactorize(st);
        if (!computeRc()) return DualVerdict::kProceed;
        rc_fresh = true;
      }
    }
    return DualVerdict::kIterLimit;
  }

  // ---- main loop ------------------------------------------------------

  Status run(SolveStats& st) {
    sanitizeStatuses();
    if (devex_w_.size() != static_cast<std::size_t>(n_) + m_) resetDevex();
    if (!factored_) {
      refactorize(st);
    } else if (!primal_fresh_) {
      recomputePrimal();
    }
    const double eps = feasScale();
    // Harris working tolerance: expands a little after every degenerate
    // step (the bounded perturbation), snaps back -- with a primal
    // recompute to shed the accumulated overshoot -- at the cap.
    const double relax_step = eps / 16.0;
    const double relax_cap = 8.0 * eps;
    double relax = eps;

    // Warm bases whose primal feasibility was lost to rhs/bound mutations
    // but whose reduced costs are still sign-feasible take the dual
    // simplex instead of the composite phase 1: it repairs feasibility in
    // few pivots without discarding the (near-)optimal dual information.
    // Cold bases never qualify (an all-logical basis is trivially
    // dual-feasible on many problems but far from optimal, and phase 1 +
    // devex is the better route there). The primal loop below always runs
    // afterwards and owns the final verdict.
    if (warm_ && opt_.dual_simplex) {
      const DualVerdict dv = runDual(st, eps);
      if (dv == DualVerdict::kInfeasible) return Status::kInfeasible;
      if (dv == DualVerdict::kIterLimit) return Status::kIterLimit;
      cand_.clear();  // devex candidates selected under the old basis
    }

    std::vector<double> y(m_), alpha(m_), rho(m_);
    int stall = 0;
    bool bland = false;
    bool was_phase1 = true;
    // Phase-2 duals are maintained incrementally across devex pivots
    // (y += (rc_q / alpha_p) * rho, sharing the rho btran with the devex
    // weight update); y_valid says the maintained vector is current for
    // the present basis. Phase 1 recomputes y every iteration -- its cost
    // vector follows the violated set.
    bool y_valid = false;

    for (int it = 0; it < opt_.max_iterations; ++it) {
      if (updates_since_refactor_ >= opt_.refactor_every ||
          lu_.nonzeros() >
              kLuGrowthLimit * lu_.freshNonzeros() + 64) {
        refactorize(st);
        y_valid = false;
      }

      const double infeas = infeasibility(eps);
      const bool phase1 = infeas > eps;
      if (phase1 != was_phase1) {
        cand_.clear();  // reduced costs flipped
        y_valid = false;
      }
      if (bland || opt_.pricing != Pricing::kDevex) y_valid = false;

      // y = B^{-T} c_B for the phase's cost vector. Phase-1 costs are +-1
      // on violated basics and 0 elsewhere -- in particular 0 on every
      // nonbasic column, so no per-column phase-1 cost vector is needed
      // (reducedCost takes the phase flag).
      bool y_fresh = false;
      if (phase1 || !y_valid) {
        y_fresh = true;
        std::fill(y.begin(), y.end(), 0.0);
        if (phase1) {
          for (int i = 0; i < m_; ++i) {
            const int col = basis_[i];
            const double x = xval_[col];
            if (x < lb_[col] - eps) {
              y[i] = -1.0;
            } else if (x > ub_[col] + eps) {
              y[i] = 1.0;
            }
          }
        } else {
          for (int i = 0; i < m_; ++i) y[i] = cost_[basis_[i]];
        }
        lu_.btran(y);
        y_valid = !phase1;
      }
      const std::vector<double>& cost = cost_;

      // Pricing: devex candidate list (or Dantzig full scan under the
      // COYOTE_LP_PRICING escape hatch); Bland when anti-cycling.
      int enter = -1;
      double enter_dir = 0.0;
      double enter_viol = 0.0;
      bool from_list = false;
      if (bland) {
        for (int col = 0; col < n_ + m_; ++col) {
          if (status(col) == Basis::kBasic || isFixed(col)) continue;
          double d = 0.0;
          const double v = violation(
              col, reducedCost(col, y, cost, phase1), &d);
          if (v > 0.0) {
            enter = col;
            enter_dir = d;
            enter_viol = v;
            break;
          }
        }
      } else if (opt_.pricing == Pricing::kDantzig) {
        double best_viol = opt_.opt_tol;
        for (int col = 0; col < n_ + m_; ++col) {
          if (status(col) == Basis::kBasic || isFixed(col)) continue;
          double d = 0.0;
          const double v = violation(
              col, reducedCost(col, y, cost, phase1), &d);
          if (v > best_viol) {
            best_viol = v;
            enter = col;
            enter_dir = d;
            enter_viol = v;
          }
        }
      } else {
        enter = devexPrice(y, cost, phase1, /*use_list=*/!phase1,
                           &enter_dir, &enter_viol, &from_list);
        if (enter >= 0 && from_list) ++st.pricing_hits;
      }

      if (enter < 0) {
        // Confirm on a fresh factorization before declaring a verdict:
        // update round-off (and the incrementally maintained duals) can
        // fake optimality/infeasibility.
        if (updates_since_refactor_ > 0 || !y_fresh) {
          if (updates_since_refactor_ > 0) refactorize(st);
          y_valid = false;
          continue;
        }
        return phase1 ? Status::kInfeasible : Status::kOptimal;
      }

      // alpha = B^{-1} A_enter.
      std::fill(alpha.begin(), alpha.end(), 0.0);
      scatterColumn(enter, alpha);
      lu_.ftran(alpha);

      // Ratio test: the entering column moves by t >= 0 in direction
      // enter_dir; basic i changes at rate -enter_dir * alpha_i.
      RatioOutcome ro;
      if (bland) {
        ro = blandRatioTest(enter, enter_dir, alpha, eps);
      } else if (phase1) {
        ro = phase1LongStep(enter, enter_dir, enter_viol, alpha, eps,
                            relax);
      } else {
        ro = harrisRatioTest(enter, enter_dir, alpha, relax);
      }

      if (!std::isfinite(ro.t)) {
        if (updates_since_refactor_ > 0 || !y_fresh) {  // confirm fresh
          if (updates_since_refactor_ > 0) refactorize(st);
          y_valid = false;
          continue;
        }
        // A genuinely unbounded improving ray. In phase 1 the composite
        // objective is bounded below, so this can only be numerical noise.
        return phase1 ? Status::kIterLimit : Status::kUnbounded;
      }

      ++st.iterations;
      if (phase1) ++st.phase1_iters;
      if (ro.rescued) ++st.degen_rescues;

      // Apply the step to the basic values.
      if (ro.t != 0.0) {
        for (int i = 0; i < m_; ++i) {
          if (alpha[i] != 0.0) {
            xval_[basis_[i]] -= enter_dir * alpha[i] * ro.t;
          }
        }
      }
      if (ro.leave < 0) {
        // Bound flip: the entering column crosses to its other bound.
        setStatus(enter, status(enter) == Basis::kAtLower ? Basis::kAtUpper
                                                          : Basis::kAtLower);
        xval_[enter] = boundValue(enter);
      } else {
        const int leaving_col = basis_[ro.leave];
        const bool devex = !bland && opt_.pricing == Pricing::kDevex;
        const double ap = alpha[ro.leave];
        bool have_rho = false;
        if (devex && !phase1 && std::abs(ap) > 1e-7) {
          // rho = B^{-T} e_leave serves both the devex weight update and
          // the incremental dual update -- one btran, two uses.
          std::fill(rho.begin(), rho.end(), 0.0);
          rho[ro.leave] = 1.0;
          lu_.btran(rho);
          have_rho = true;
        }
        if (devex) {
          devexUpdate(enter, ro.leave, alpha, have_rho ? &rho : nullptr);
        }
        if (y_valid && have_rho) {
          const double theta = (-enter_dir * enter_viol) / ap;
          for (int i = 0; i < m_; ++i) y[i] += theta * rho[i];
        } else if (!phase1) {
          y_valid = false;
        }
        xval_[enter] = boundValue(enter) + enter_dir * ro.t;
        xval_[leaving_col] = ro.leave_to;  // snap exactly onto the bound
        setStatus(leaving_col,
                  ro.leave_at_upper ? Basis::kAtUpper : Basis::kAtLower);
        setStatus(enter, Basis::kBasic);
        basis_[ro.leave] = enter;
        if (lu_.update(ro.leave, columnRef(enter))) {
          ++updates_since_refactor_;
          ++st.lu_updates;
        } else {
          factored_ = false;  // unsafe Forrest-Tomlin pivot
          refactorize(st);
          y_valid = false;
        }
      }

      // Bounded degeneracy perturbation: expand the Harris tolerance a
      // little after each degenerate step; at the cap, shed the
      // accumulated overshoot and start over.
      if (ro.t <= kDegenStep) {
        relax += relax_step;
        if (relax >= relax_cap) {
          relax = eps;
          recomputePrimal();
          ++st.degen_rescues;
        }
      } else if (relax > eps) {
        relax = std::max(eps, relax * 0.5);
      }

      // Stall detection drives the Bland anti-cycling fallback: any
      // positive step strictly improves the phase objective, so a run of
      // degenerate (t ~ 0) pivots is the only way to make no progress.
      if (phase1 != was_phase1) {
        was_phase1 = phase1;
        stall = 0;
        bland = false;
      }
      if (ro.t > kDegenStep) {
        stall = 0;
        bland = false;
      } else if (++stall > opt_.stall_limit) {
        bland = true;
      }
    }
    return Status::kIterLimit;
  }

  LpProblem p_;
  SimplexOptions opt_;
  int n_ = 0;  ///< structural columns
  int m_ = 0;  ///< rows (== logical columns)
  double sgn_ = 1.0;
  std::vector<std::vector<ColNz>> cols_;  ///< structural columns, sparse
  std::vector<double> cost_;              ///< internal (minimize) costs
  std::vector<double> lb_, ub_;           ///< per column, logicals included
  std::vector<double> rhs_;
  Basis basis_status_;
  std::vector<int> basis_;   ///< row -> basic column (valid when factored_)
  std::vector<double> xval_; ///< per-column primal values
  LuFactor lu_;
  std::vector<double> devex_w_;  ///< devex reference weights, per column
  std::vector<int> cand_;        ///< pricing candidate list (column ids)
  struct ScanHit {
    int col;
    double score;
    double dir;
    double viol;
  };
  std::vector<ScanHit> scan_hits_;    ///< section-scan scratch
  std::vector<Breakpoint> bps_;       ///< phase-1 ratio-test scratch
  std::vector<ColNz> scratch_col_;    ///< columnRef() logical scratch
  std::vector<double> arow_;          ///< dual ratio-test row scratch
  int updates_since_refactor_ = 0;    ///< FT updates since the last refactor
  bool factored_ = false;
  bool primal_fresh_ = false;
  /// The retained basis came from a successful solve (or an external
  /// setBasis), so its reduced costs are worth testing for dual
  /// feasibility. Cold/reset bases never take the dual path.
  bool warm_ = false;
  /// Value-changing setRhs edits since the last solve: the dual entry
  /// gate reads this to tell localized repairs from whole-rhs swaps.
  int rhs_edits_ = 0;
};

SimplexSolver::SimplexSolver(LpProblem problem, SimplexOptions opt)
    : impl_(std::make_unique<Impl>(std::move(problem), opt)) {}
SimplexSolver::SimplexSolver(const SimplexSolver& rhs)
    : impl_(std::make_unique<Impl>(*rhs.impl_)) {}
SimplexSolver& SimplexSolver::operator=(const SimplexSolver& rhs) {
  if (this != &rhs) impl_ = std::make_unique<Impl>(*rhs.impl_);
  return *this;
}
SimplexSolver::SimplexSolver(SimplexSolver&&) noexcept = default;
SimplexSolver& SimplexSolver::operator=(SimplexSolver&&) noexcept = default;
SimplexSolver::~SimplexSolver() = default;

LpResult SimplexSolver::solve() { return impl_->solve(); }
void SimplexSolver::setObjective(int var, double coef) {
  impl_->setObjective(var, coef);
}
void SimplexSolver::setRhs(int row, double rhs) { impl_->setRhs(row, rhs); }
void SimplexSolver::setBounds(int var, double lb, double ub) {
  impl_->setBounds(var, lb, ub);
}
int SimplexSolver::addRow(std::vector<Term> terms, Rel rel, double rhs) {
  return impl_->addRow(std::move(terms), rel, rhs);
}
void SimplexSolver::setBasis(const Basis& basis) { impl_->setBasis(basis); }
const Basis& SimplexSolver::basis() const { return impl_->basis(); }
const LpProblem& SimplexSolver::problem() const { return impl_->problem(); }

LpResult solve(const LpProblem& p, const SimplexOptions& opt) {
  require(p.numVars() > 0, "LP has no variables");
  SimplexSolver solver(p, opt);
  return solver.solve();
}

}  // namespace coyote::lp
