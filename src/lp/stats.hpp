// Process-wide LP work accounting.
//
// Every lp::SimplexSolver::solve() (and therefore every lp::solve()) adds
// its pivot/refactorization counts and wall time to a set of atomic
// counters. The experiment runner snapshots the counters around each
// scenario to report `lp_solves`, `lp_pivots`, and `lp_time_frac` in the
// BENCH JSON (schema coyote-bench/2), and to turn Status::kIterLimit --
// which the routing layers would otherwise fold into a silent ratio-0 /
// non-optimal objective -- into a hard per-scenario error.
//
// Counters are totals since process start; consumers always work with the
// difference of two snapshots. All counts are deterministic for a given
// binary and scenario (warm-start chains are chunked independently of the
// thread count); only `seconds` is wall-clock noisy.
#pragma once

#include <atomic>
#include <cstdint>

namespace coyote::lp {

/// A point-in-time copy of the global counters.
struct StatsSnapshot {
  std::int64_t solves = 0;            ///< completed solve() calls
  std::int64_t iterations = 0;        ///< simplex pivots + bound flips
  std::int64_t phase1_iters = 0;      ///< iterations restoring feasibility
  std::int64_t refactorizations = 0;  ///< basis refactorizations
  std::int64_t iter_limit_solves = 0; ///< solves that hit max_iterations
  std::int64_t pricing_hits = 0;      ///< devex candidate-list pricing hits
  std::int64_t degen_rescues = 0;     ///< ratio-test degeneracy rescues
  std::int64_t lu_updates = 0;        ///< Forrest-Tomlin updates applied
  std::int64_t lu_fill = 0;           ///< summed fresh-factorization nonzeros
  std::int64_t dual_pivots = 0;       ///< dual-simplex pivots (warm repair)
  std::int64_t decomp_rounds = 0;     ///< OPTU block-decomposition rounds
  double seconds = 0.0;               ///< wall time inside solve()

  StatsSnapshot operator-(const StatsSnapshot& rhs) const {
    return {solves - rhs.solves,
            iterations - rhs.iterations,
            phase1_iters - rhs.phase1_iters,
            refactorizations - rhs.refactorizations,
            iter_limit_solves - rhs.iter_limit_solves,
            pricing_hits - rhs.pricing_hits,
            degen_rescues - rhs.degen_rescues,
            lu_updates - rhs.lu_updates,
            lu_fill - rhs.lu_fill,
            dual_pivots - rhs.dual_pivots,
            decomp_rounds - rhs.decomp_rounds,
            seconds - rhs.seconds};
  }
};

/// The process-wide accumulator. Thread-safe; solver-internal.
class GlobalStats {
 public:
  static GlobalStats& instance();

  void record(const StatsSnapshot& delta);
  [[nodiscard]] StatsSnapshot snapshot() const;

 private:
  std::atomic<std::int64_t> solves_{0};
  std::atomic<std::int64_t> iterations_{0};
  std::atomic<std::int64_t> phase1_iters_{0};
  std::atomic<std::int64_t> refactorizations_{0};
  std::atomic<std::int64_t> iter_limit_solves_{0};
  std::atomic<std::int64_t> pricing_hits_{0};
  std::atomic<std::int64_t> degen_rescues_{0};
  std::atomic<std::int64_t> lu_updates_{0};
  std::atomic<std::int64_t> lu_fill_{0};
  std::atomic<std::int64_t> dual_pivots_{0};
  std::atomic<std::int64_t> decomp_rounds_{0};
  std::atomic<std::int64_t> nanos_{0};
};

/// Shorthand for GlobalStats::instance().snapshot().
[[nodiscard]] StatsSnapshot statsSnapshot();

}  // namespace coyote::lp
