// Self-contained linear-programming engine.
//
// The paper solves several families of LPs (the demands-aware optimum
// OPTU(D), the per-edge worst-case-demand "slave LP" of Sec. IV/Appendix C,
// and the optimal base-TM routing of [24]) with AMPL+MOSEK. Neither is
// available offline, so this module implements a *sparse revised primal
// simplex* over bounded variables:
//
//  * column-sparse constraint storage -- every row gets one logical
//    (slack) column, so the constraint matrix is [A | I] and an all-logical
//    basis is always available;
//  * bounded-variable pivoting -- finite upper bounds are handled natively
//    by the ratio test (nonbasic variables rest at either bound and may
//    bound-flip), not by materializing extra rows;
//  * devex reference-framework pricing with candidate-list partial pricing
//    (Dantzig full scans remain behind COYOTE_LP_PRICING=dantzig; Bland's
//    rule is the anti-cycling fallback for both);
//  * a Harris-style two-pass ratio test with a bounded tolerance-expansion
//    degeneracy perturbation, and a piecewise-linear long-step variant for
//    the composite phase 1;
//  * a sparse LU basis factorization with Markowitz pivot ordering and
//    Forrest-Tomlin updates (basis.*), so long warm-start chains do not pay
//    eta-chain growth between refactorizations;
//  * a composite (artificial-free) phase 1 that minimizes the total bound
//    violation of the basic variables, which makes any basis -- in
//    particular a retained basis after setRhs/setBounds/addRow mutations --
//    a valid warm start.
//
// See docs/lp-engine.md for the full design document.
//
// The SimplexSolver session API retains the optimal basis between solves:
// consumers that solve long sequences of near-identical LPs (OPTU across a
// pool of matrices, the per-edge slave LPs, cutting-plane re-solves) mutate
// the objective/rhs/bounds/rows and re-solve instead of rebuilding, which
// typically cuts simplex pivots by an order of magnitude. The one-shot
// lp::solve() wrapper is unchanged for callers without solve sequences.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace coyote::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class Rel { kLe, kGe, kEq };
enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit };

[[nodiscard]] std::string toString(Status s);

/// One nonzero coefficient of a constraint row.
struct Term {
  int var = 0;
  double coef = 0.0;
};

/// Incrementally built LP:
///     optimize  c^T x
///     s.t.      sum_j a_ij x_j  {<=,=,>=}  b_i      for every row i
///               lb_j <= x_j <= ub_j                 for every variable j
/// Lower bounds must be finite; ub may be +infinity.
class LpProblem {
 public:
  explicit LpProblem(Sense sense = Sense::kMinimize) : sense_(sense) {}

  /// Adds a variable, returns its index.
  int addVar(double obj = 0.0, double lb = 0.0, double ub = kInfinity,
             std::string name = {});

  /// Adds a constraint row. Terms may repeat a variable (coefficients add).
  void addConstraint(std::vector<Term> terms, Rel rel, double rhs);

  void setObjective(int var, double coef);

  /// Mutates a variable's bounds in place (lb finite, ub >= lb; ub may be
  /// kInfinity). Used by engines that keep a problem skeleton and derive
  /// variants from it -- e.g. pinning a failed edge's flow variables to
  /// zero -- so sessions cloned later inherit the mutation.
  void setVarBounds(int var, double lb, double ub);

  /// Mutates a constraint's right-hand side in place (e.g. zeroing a failed
  /// edge's capacity row in a retained worst-case template).
  void setConstraintRhs(int row, double rhs);

  [[nodiscard]] double rowRhs(int row) const {
    require(row >= 0 && row < numRows(), "rowRhs: bad row");
    return rhs_[row];
  }

  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] int numVars() const { return static_cast<int>(obj_.size()); }
  [[nodiscard]] int numRows() const { return static_cast<int>(rhs_.size()); }
  [[nodiscard]] const std::string& varName(int j) const { return names_[j]; }

 private:
  friend class SimplexSolver;
  Sense sense_;
  std::vector<double> obj_, lb_, ub_;
  std::vector<std::string> names_;
  std::vector<std::vector<Term>> rows_;
  std::vector<Rel> rels_;
  std::vector<double> rhs_;
};

/// Entering-variable pricing rule. Devex (reference-framework weights with
/// candidate-list partial pricing) is the default; Dantzig (full most-
/// negative-reduced-cost scans, the pre-devex behavior) remains as an
/// escape hatch. Bland's rule is the anti-cycling fallback for both.
enum class Pricing { kDevex, kDantzig };

/// Pricing selected by the COYOTE_LP_PRICING env knob ("devex" | "dantzig");
/// devex when unset or unrecognized.
[[nodiscard]] Pricing defaultPricing();

/// Dual-simplex availability from the COYOTE_LP_DUAL env knob: enabled
/// unless set to "0". When enabled, solve() runs the bounded-variable dual
/// simplex instead of the composite primal phase 1 whenever the retained
/// warm basis is primal-infeasible but still dual-feasible -- the common
/// state after setRhs/setBounds mutation chains on an optimal basis.
[[nodiscard]] bool defaultDualSimplex();

struct SimplexOptions {
  int max_iterations = 200000;
  /// Refactorize the LU basis factorization after this many Forrest-Tomlin
  /// updates (it also refactorizes early when the stored fill outgrows the
  /// fresh factorization by a fixed factor).
  int refactor_every = 128;
  /// Switch to Bland's rule after this many non-improving pivots.
  int stall_limit = 2000;
  double feas_tol = 1e-7;
  double opt_tol = 1e-8;
  /// Entering rule; defaults from the COYOTE_LP_PRICING env knob.
  Pricing pricing = defaultPricing();
  /// Allow the dual simplex on warm primal-infeasible / dual-feasible
  /// bases; defaults from the COYOTE_LP_DUAL env knob (see
  /// defaultDualSimplex). The escape hatch for A/B measurement.
  bool dual_simplex = defaultDualSimplex();
};

/// A simplex basis: one status entry per column (structural variables
/// first, then one logical/slack column per row). Retained by
/// SimplexSolver between solves and exported in LpResult so callers can
/// warm-start a different session (e.g. a per-thread clone).
struct Basis {
  enum : std::int8_t { kAtLower = 0, kAtUpper = 1, kBasic = 2 };
  std::vector<std::int8_t> status;

  [[nodiscard]] bool empty() const { return status.empty(); }
};

/// Work counters of one solve (also aggregated globally; see stats.hpp).
struct SolveStats {
  int iterations = 0;        ///< simplex pivots + bound flips, both phases
  int refactorizations = 0;  ///< basis refactorizations performed
  int phase1_iters = 0;      ///< iterations spent restoring feasibility
  int pricing_hits = 0;      ///< enterings served from the devex candidate
                             ///< list without any column scan
  int degen_rescues = 0;     ///< ratio-test degeneracy rescues: Harris picks
                             ///< that stepped past the textbook minimum-ratio
                             ///< blocker for a larger pivot, plus bounded-
                             ///< perturbation (tolerance-expansion) resets
  int lu_updates = 0;        ///< Forrest-Tomlin basis updates applied
  std::int64_t lu_fill = 0;  ///< summed nonzeros of fresh LU factorizations
                             ///< (the factor fill-in measure)
  int dual_pivots = 0;       ///< dual-simplex pivots (warm rhs/bound repair;
                             ///< also counted in `iterations`)
  int decomp_rounds = 0;     ///< OPTU block-decomposition price rounds that
                             ///< seeded this solve (recorded by
                             ///< routing::OptuEngine; always 0 for plain
                             ///< solver sessions)
};

struct LpResult {
  Status status = Status::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< primal solution in original variable space
  int iterations = 0;     ///< == stats.iterations (kept for old callers)
  Basis basis;            ///< final basis (valid when status == kOptimal)
  SolveStats stats;

  [[nodiscard]] bool optimal() const { return status == Status::kOptimal; }
};

/// A solver session: owns a mutable copy of the problem plus the basis and
/// factorization state retained across solves. Mutations are cheap and
/// never invalidate the retained basis -- the composite phase 1 repairs
/// any lost feasibility on the next solve(), so
///
///     SimplexSolver s(problem);
///     auto r0 = s.solve();
///     s.setRhs(row, v);            // or setObjective / setBounds / addRow
///     auto r1 = s.solve();         // warm start from r0's basis
///
/// is the intended idiom. Sessions are copyable: clone one per worker to
/// fan a family of solves out over threads deterministically.
class SimplexSolver {
 public:
  explicit SimplexSolver(LpProblem problem, SimplexOptions opt = {});
  SimplexSolver(const SimplexSolver&);
  SimplexSolver& operator=(const SimplexSolver&);
  SimplexSolver(SimplexSolver&&) noexcept;
  SimplexSolver& operator=(SimplexSolver&&) noexcept;
  ~SimplexSolver();

  /// Solves from the retained basis (cold all-logical basis on the first
  /// call or after setBasis({})). Updates the retained basis on success.
  [[nodiscard]] LpResult solve();

  // --- mutations (retained basis survives; next solve() warm-starts) ---
  void setObjective(int var, double coef);
  void setRhs(int row, double rhs);
  /// lb must stay finite; ub may be kInfinity; ub == lb fixes the variable.
  void setBounds(int var, double lb, double ub);
  /// Appends a constraint row (cutting plane), returns its index. The new
  /// row's logical column joins the basis, so the factorization stays
  /// nonsingular and the next solve() warm-starts.
  int addRow(std::vector<Term> terms, Rel rel, double rhs);

  /// Installs an externally retained basis ({} resets to a cold start).
  void setBasis(const Basis& basis);
  [[nodiscard]] const Basis& basis() const;

  [[nodiscard]] const LpProblem& problem() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot solve (cold start). Never throws for infeasible/unbounded
/// inputs (reported via Status); throws std::invalid_argument for
/// malformed problems.
[[nodiscard]] LpResult solve(const LpProblem& p, const SimplexOptions& opt = {});

}  // namespace coyote::lp
