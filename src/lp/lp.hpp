// Self-contained linear-programming solver.
//
// The paper solves several families of LPs (the demands-aware optimum
// OPTU(D), the per-edge worst-case-demand "slave LP" of Sec. IV/Appendix C,
// and the optimal base-TM routing of [24]) with AMPL+MOSEK. Neither is
// available offline, so this module implements a dense revised primal
// simplex (two-phase, explicit basis inverse with periodic refactorization,
// Bland anti-cycling fallback). Problem sizes in this repository are a few
// thousand variables and a few hundred to ~2000 rows, which this solver
// handles in well under a second per instance.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace coyote::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class Rel { kLe, kGe, kEq };
enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit };

[[nodiscard]] std::string toString(Status s);

/// One nonzero coefficient of a constraint row.
struct Term {
  int var = 0;
  double coef = 0.0;
};

/// Incrementally built LP:
///     optimize  c^T x
///     s.t.      sum_j a_ij x_j  {<=,=,>=}  b_i      for every row i
///               lb_j <= x_j <= ub_j                 for every variable j
/// Lower bounds must be finite (variables are shifted internally);
/// ub may be +infinity.
class LpProblem {
 public:
  explicit LpProblem(Sense sense = Sense::kMinimize) : sense_(sense) {}

  /// Adds a variable, returns its index.
  int addVar(double obj = 0.0, double lb = 0.0, double ub = kInfinity,
             std::string name = {});

  /// Adds a constraint row. Terms may repeat a variable (coefficients add).
  void addConstraint(std::vector<Term> terms, Rel rel, double rhs);

  void setObjective(int var, double coef);

  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] int numVars() const { return static_cast<int>(obj_.size()); }
  [[nodiscard]] int numRows() const { return static_cast<int>(rhs_.size()); }
  [[nodiscard]] const std::string& varName(int j) const { return names_[j]; }

 private:
  friend class SimplexSolver;
  Sense sense_;
  std::vector<double> obj_, lb_, ub_;
  std::vector<std::string> names_;
  std::vector<std::vector<Term>> rows_;
  std::vector<Rel> rels_;
  std::vector<double> rhs_;
};

struct SimplexOptions {
  int max_iterations = 200000;
  /// Refactorize the basis inverse every this many pivots.
  int refactor_every = 512;
  /// Switch to Bland's rule after this many non-improving pivots.
  int stall_limit = 2000;
  double feas_tol = 1e-7;
  double opt_tol = 1e-8;
};

struct LpResult {
  Status status = Status::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< primal solution in original variable space
  int iterations = 0;

  [[nodiscard]] bool optimal() const { return status == Status::kOptimal; }
};

/// Solves the LP. Never throws for infeasible/unbounded inputs (reported via
/// Status); throws std::invalid_argument for malformed problems.
[[nodiscard]] LpResult solve(const LpProblem& p, const SimplexOptions& opt = {});

}  // namespace coyote::lp
