#include "lp/stats.hpp"

namespace coyote::lp {

GlobalStats& GlobalStats::instance() {
  static GlobalStats stats;
  return stats;
}

void GlobalStats::record(const StatsSnapshot& delta) {
  solves_.fetch_add(delta.solves, std::memory_order_relaxed);
  iterations_.fetch_add(delta.iterations, std::memory_order_relaxed);
  phase1_iters_.fetch_add(delta.phase1_iters, std::memory_order_relaxed);
  refactorizations_.fetch_add(delta.refactorizations,
                              std::memory_order_relaxed);
  iter_limit_solves_.fetch_add(delta.iter_limit_solves,
                               std::memory_order_relaxed);
  pricing_hits_.fetch_add(delta.pricing_hits, std::memory_order_relaxed);
  degen_rescues_.fetch_add(delta.degen_rescues, std::memory_order_relaxed);
  lu_updates_.fetch_add(delta.lu_updates, std::memory_order_relaxed);
  lu_fill_.fetch_add(delta.lu_fill, std::memory_order_relaxed);
  dual_pivots_.fetch_add(delta.dual_pivots, std::memory_order_relaxed);
  decomp_rounds_.fetch_add(delta.decomp_rounds, std::memory_order_relaxed);
  nanos_.fetch_add(static_cast<std::int64_t>(delta.seconds * 1e9),
                   std::memory_order_relaxed);
}

StatsSnapshot GlobalStats::snapshot() const {
  StatsSnapshot s;
  s.solves = solves_.load(std::memory_order_relaxed);
  s.iterations = iterations_.load(std::memory_order_relaxed);
  s.phase1_iters = phase1_iters_.load(std::memory_order_relaxed);
  s.refactorizations = refactorizations_.load(std::memory_order_relaxed);
  s.iter_limit_solves = iter_limit_solves_.load(std::memory_order_relaxed);
  s.pricing_hits = pricing_hits_.load(std::memory_order_relaxed);
  s.degen_rescues = degen_rescues_.load(std::memory_order_relaxed);
  s.lu_updates = lu_updates_.load(std::memory_order_relaxed);
  s.lu_fill = lu_fill_.load(std::memory_order_relaxed);
  s.dual_pivots = dual_pivots_.load(std::memory_order_relaxed);
  s.decomp_rounds = decomp_rounds_.load(std::memory_order_relaxed);
  s.seconds = static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

StatsSnapshot statsSnapshot() { return GlobalStats::instance().snapshot(); }

}  // namespace coyote::lp
