// Sparse LU factorization of the simplex basis with Forrest-Tomlin updates.
//
// B is factorized as L * U by left-looking sparse Gauss elimination: columns
// arrive one at a time (sparsest first -- the caller orders them), each is
// ftran'd through the eliminations recorded so far, and a pivot row is chosen
// by a Markowitz-style compromise -- among the numerically safe entries
// (|v| >= 0.05 * max|v|), the row with the fewest nonzeros across the basic
// columns wins, so elimination fill stays near the sparsity pattern's
// minimum. The eliminations form L^{-1} (a sequence of column ops); U is kept
// column-wise with an explicit pivot order (row/column permutations are
// implicit in that order).
//
// A simplex pivot replaces one basic column. Instead of appending a
// product-form eta -- whose file grows by one dense-ish ftran'd column per
// pivot, forever -- the Forrest-Tomlin update replaces the column of U
// *inside the factorization*: the spike L^{-1} a_enter takes the leaving
// column's slot, the leaving pivot's U row is eliminated with one recorded
// row op, and the pivot order is cyclically shifted so U stays triangular.
// Storage grows by the (sparse) row op and the spike only, so long
// warm-start chains -- failure sweeps, serve replays, cutting-plane rounds --
// no longer pay eta-chain growth between refactorizations.
//
// ftran solves B z = a (apply L^{-1} ops forward, back-substitute U in
// reverse pivot order); btran solves B^T y = c (forward-substitute U^T in
// pivot order, apply transposed ops backward). The result/input convention
// matches the simplex solver's basis_ array: slot k's value lives at index
// pivotRow(k) of the dense vector.
//
// Layout note: both the op terms and the U entries live in two flat pools
// (op_pool_ / u_pool_) instead of per-op and per-column heap vectors.
// ftran/btran walk the factor once per simplex iteration, so the pool
// layout -- sequential loads, no pointer chasing -- is what keeps the
// per-iteration linear algebra cache-resident. An update that replaces a
// U column appends the new entries at the pool tail and leaks the old
// range until the next refactorization rebuilds the pool (bounded by the
// refactorization cadence).
#pragma once

#include <cstddef>
#include <vector>

namespace coyote::lp {

/// One nonzero of a sparse column.
struct ColNz {
  int row = 0;
  double val = 0.0;
};

class LuFactor {
 public:
  /// Starts a fresh factorization of an m x m basis. `row_counts` (optional)
  /// holds the number of nonzeros per row across the columns about to be
  /// placed; the Markowitz pivot choice prefers sparse rows. All previous
  /// state is dropped.
  void reset(int m, std::vector<int> row_counts = {});

  /// Factorization step: eliminates `col` against the factor built so far
  /// and pivots it on a not-yet-pivoted row. Returns the chosen pivot row,
  /// or -1 when every candidate entry is below `depend_tol` (the column is
  /// linearly dependent on the ones already placed -- the caller demotes it).
  int addColumn(const std::vector<ColNz>& col, double depend_tol);

  [[nodiscard]] bool complete() const { return placed_ == m_; }
  [[nodiscard]] bool rowPivoted(int row) const { return slot_of_row_[row] >= 0; }

  /// z <- B^{-1} z, in place (dense vector of size m).
  void ftran(std::vector<double>& z) const;

  /// z <- B^{-T} z, in place (dense vector of size m).
  void btran(std::vector<double>& z) const;

  /// Forrest-Tomlin update: the basic column pivoted on `leave_row` is
  /// replaced by `col` (its *original* sparse entries, not the ftran'd
  /// ones). Returns false -- leaving the factor unusable until the next
  /// reset() -- when the updated pivot is numerically unsafe; the caller
  /// must refactorize.
  [[nodiscard]] bool update(int leave_row, const std::vector<ColNz>& col);

  /// Stored nonzeros (L ops + U), the fill/growth measure.
  [[nodiscard]] std::size_t nonzeros() const { return nonzeros_; }
  /// nonzeros() right after the last completed factorization.
  [[nodiscard]] std::size_t freshNonzeros() const { return fresh_nonzeros_; }
  /// Marks the factorization complete; snapshots freshNonzeros().
  void sealRefactor();

 private:
  /// One recorded elimination; terms live in op_pool_[begin, end).
  ///  - column op (factorization):  z[t.row] -= t.val * z[pivot]  for all t
  ///  - row op (Forrest-Tomlin):    z[pivot] -= sum t.val * z[t.row]
  struct OpHead {
    int pivot = 0;
    int begin = 0;
    int end = 0;
    bool row_op = false;
  };

  /// One column of U; above-diagonal entries live in u_pool_[begin,
  /// begin+len) and their rows are pivot rows of slots earlier in pos_
  /// order.
  struct UCol {
    int pivot_row = 0;
    double diag = 0.0;
    int begin = 0;
    int len = 0;
  };

  /// Applies the recorded ops to z, appending every row that may have
  /// become nonzero to `touched` (a superset; duplicates allowed).
  void applyOps(std::vector<double>& z, std::vector<int>* touched) const;

  int m_ = 0;
  int placed_ = 0;
  std::vector<OpHead> op_heads_;
  std::vector<ColNz> op_pool_;
  std::vector<UCol> slots_;        ///< stable storage, one per placed column
  std::vector<ColNz> u_pool_;      ///< U entries of every slot
  std::vector<int> pos_;           ///< elimination order: position -> slot
  std::vector<int> pos_of_;        ///< slot -> position
  std::vector<int> slot_of_row_;   ///< pivot row -> slot (-1 = unpivoted)
  std::vector<int> row_counts_;    ///< Markowitz bias (static approximation)
  /// Superset index: slots whose U column *may* hold an entry at this row
  /// (stale slots are skipped on use, rebuilt by reset()).
  std::vector<std::vector<int>> rows_with_;
  std::vector<double> work_;       ///< dense scratch, kept zeroed
  std::vector<int> touched_;       ///< scratch: rows work_ may be nonzero at
  std::vector<double> rowval_;     ///< per-slot scratch for update(), zeroed
  std::size_t nonzeros_ = 0;
  std::size_t fresh_nonzeros_ = 0;
};

}  // namespace coyote::lp
