// Product-form (eta-file) representation of the simplex basis inverse.
//
// B^{-1} is held as a product of elementary "eta" matrices
// E_k ... E_2 E_1, each recording one Gauss pivot: applying E (ftran
// direction) divides the pivot row by the pivot element and eliminates it
// from the other rows. Refactorization rebuilds the file from the basic
// columns with sparse elimination in fill-reducing order (sparsest column
// first, largest available pivot within the column -- the classic
// Markowitz compromise between sparsity and stability); between
// refactorizations every simplex pivot appends one eta. ftran solves
// B z = a (z = E_k(...E_1(a))), btran solves B^T y = c (transposed etas in
// reverse order). Work is proportional to the stored nonzeros, which for
// the network-flow LPs in this repository is a few entries per eta -- the
// dense O(m^2)-per-pivot explicit inverse this replaces did m^2 work no
// matter how sparse the basis was.
#pragma once

#include <vector>

namespace coyote::lp {

/// One nonzero of a sparse column.
struct ColNz {
  int row = 0;
  double val = 0.0;
};

class EtaFile {
 public:
  /// Drops all etas (the representation becomes the identity).
  void clear();

  /// Appends the eta of a pivot on `pivot_row`, where `d` is the dense
  /// ftran'd entering column and `touched` lists the indices where d may
  /// be nonzero (a superset is fine; zeros are skipped).
  void append(int pivot_row, const std::vector<double>& d,
              const std::vector<int>& touched);

  /// z <- B^{-1} z, in place (dense vector of size m).
  void ftran(std::vector<double>& z) const;

  /// z <- B^{-T} z, in place (dense vector of size m).
  void btran(std::vector<double>& z) const;

  [[nodiscard]] int size() const { return static_cast<int>(etas_.size()); }
  [[nodiscard]] std::size_t nonzeros() const { return nonzeros_; }

 private:
  struct Eta {
    int row = 0;          ///< pivot row
    double pivot = 0.0;   ///< d[pivot_row]
    std::vector<ColNz> off;  ///< d's other nonzeros
  };
  std::vector<Eta> etas_;
  std::size_t nonzeros_ = 0;
};

}  // namespace coyote::lp
