// Dinic max-flow / min-cut.
//
// Used by the traffic-matrix substrate to scale demands to the routable
// region (the NP-hardness gadget analysis in Sec. IV normalizes demands by
// min-cuts) and by tests as an independent cross-check of the LP solver.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace coyote {

/// Value of the maximum s->t flow where every edge e has capacity
/// g.edge(e).capacity. The graph is treated as directed (call sites use
/// addLink for bidirectional capacity).
[[nodiscard]] double maxFlow(const Graph& g, NodeId s, NodeId t);

/// Maximum flow from a set of sources to t (adds an implicit super-source).
[[nodiscard]] double maxFlow(const Graph& g, const std::vector<NodeId>& sources,
                             NodeId t);

}  // namespace coyote
