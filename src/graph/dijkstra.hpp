// Shortest-path machinery: distances toward a destination, shortest-path
// DAGs (the substrate of OSPF routing) and ECMP next-hop sets.
//
// Failed links are modeled as zero-capacity edges (see src/failure/): a
// down link is withdrawn from the link-state database, so every routine
// here skips edges with non-positive capacity. Intact topologies always
// carry positive capacities, making this a no-op outside failure
// scenarios.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace coyote {

/// Result of a single-destination shortest-path computation.
struct ShortestPathsToDest {
  NodeId dest = kInvalidNode;
  /// dist[v] = weighted shortest distance from v to dest
  /// (infinity if unreachable).
  std::vector<double> dist;
};

/// Computes, for every node v, the shortest weighted distance from v to
/// `dest` (Dijkstra over reversed edges). Uses Edge::weight.
[[nodiscard]] ShortestPathsToDest shortestPathsTo(const Graph& g, NodeId dest);

/// Same, but hop counts instead of weights (used for path-stretch metrics).
[[nodiscard]] ShortestPathsToDest hopDistancesTo(const Graph& g, NodeId dest);

/// Edges of the shortest-path DAG rooted at `dest`: edge (u,v) is in the DAG
/// iff dist(u) == weight(u,v) + dist(v). This is exactly the set of links
/// OSPF/ECMP may forward on toward `dest`.
[[nodiscard]] std::vector<EdgeId> shortestPathDagEdges(
    const Graph& g, const ShortestPathsToDest& sp, double eps = 1e-9);

/// ECMP next-hop edges of node u toward `dest` (subset of u's out-edges that
/// lie on shortest paths). Empty for u == dest or unreachable u.
[[nodiscard]] std::vector<EdgeId> ecmpNextHops(
    const Graph& g, const ShortestPathsToDest& sp, NodeId u,
    double eps = 1e-9);

}  // namespace coyote
