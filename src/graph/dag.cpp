#include "graph/dag.hpp"

#include <algorithm>

namespace coyote {

Dag::Dag(const Graph& g, NodeId dest, std::vector<EdgeId> edges)
    : dest_(dest), edges_(std::move(edges)) {
  require(dest >= 0 && dest < g.numNodes(), "dag dest out of range");
  const int n = g.numNodes();
  member_.assign(g.numEdges(), 0);
  out_.assign(n, {});
  in_.assign(n, {});
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  for (const EdgeId e : edges_) {
    require(e >= 0 && e < g.numEdges(), "dag edge id out of range");
    const Edge& ed = g.edge(e);
    require(ed.src != dest_, "dag must not contain edges out of dest");
    member_[e] = 1;
    out_[ed.src].push_back(e);
    in_[ed.dst].push_back(e);
  }

  // Kahn topological sort; detects cycles.
  std::vector<int> indeg(n, 0);
  for (const EdgeId e : edges_) ++indeg[g.edge(e).dst];
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  // Stable processing order: smallest id first, so topo order is
  // deterministic across runs (matters for reproducible benchmarks).
  std::sort(queue.begin(), queue.end());
  topo_.reserve(n);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    topo_.push_back(u);
    for (const EdgeId e : out_[u]) {
      const NodeId w = g.edge(e).dst;
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  require(static_cast<int>(topo_.size()) == n,
          "dag edge set contains a directed cycle");

  // Reverse reachability to dest inside the DAG.
  reaches_.assign(n, 0);
  reaches_[dest_] = 1;
  std::vector<NodeId> stack{dest_};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const EdgeId e : in_[v]) {
      const NodeId u = g.edge(e).src;
      if (!reaches_[u]) {
        reaches_[u] = 1;
        stack.push_back(u);
      }
    }
  }
}

}  // namespace coyote
