// Directed capacitated multigraph used throughout COYOTE.
//
// The network model of the paper (Sec. III): a directed graph G = (V, E)
// where every edge e carries a capacity c(e) and an IGP weight w(e).
// Backbone links are physically bidirectional; addLink() inserts the two
// directed edges and records them as mutual "reverse" edges so that DAG
// construction can orient each physical link in exactly one direction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace coyote {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// One directed edge of the network graph.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity = 1.0;  ///< link capacity (arbitrary rate units)
  double weight = 1.0;    ///< IGP (OSPF) link weight
  EdgeId reverse = kInvalidEdge;  ///< opposite direction of the same physical
                                  ///< link, or kInvalidEdge if unidirectional
};

/// Non-owning view of one node's slice of the CSR adjacency arrays
/// (Graph::outEdges / inEdges). Iterates edge ids in insertion order.
/// Invalidated by the next addNode/addEdge on the owning graph, like any
/// reference into a growing container.
class EdgeSpan {
 public:
  using value_type = EdgeId;
  using const_iterator = const EdgeId*;

  constexpr EdgeSpan() = default;
  constexpr EdgeSpan(const EdgeId* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] constexpr const EdgeId* begin() const { return data_; }
  [[nodiscard]] constexpr const EdgeId* end() const { return data_ + size_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  constexpr EdgeId operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] constexpr EdgeId front() const { return data_[0]; }
  [[nodiscard]] constexpr EdgeId back() const { return data_[size_ - 1]; }

 private:
  const EdgeId* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Directed capacitated multigraph with stable integer node/edge ids.
///
/// Node and edge ids are dense indices (0..n-1), which lets every algorithm
/// in the library use flat vectors keyed by id instead of hash maps.
///
/// Adjacency is stored in CSR form: one flat offsets array (|V|+1 entries)
/// plus one flat edge-id array per direction, so the Dijkstra / ECMP /
/// DAG-builder hot loops scan contiguous memory instead of chasing one
/// heap allocation per node. The CSR arrays are rebuilt lazily on the
/// first adjacency access after a mutation epoch (any addNode/addEdge
/// bumps the epoch; setCapacity/setWeight never do -- link failures are
/// capacity-0 edges, not removals). Like mutation itself, the rebuild is
/// not thread-safe: finish construction (or touch outEdges once) before
/// sharing a graph across threads, which is what every caller in the repo
/// already does.
class Graph {
 public:
  Graph() = default;

  /// Adds a node and returns its id. `name` is used in reports and parsing.
  NodeId addNode(std::string name = {});

  /// Adds one directed edge. Returns its id.
  EdgeId addEdge(NodeId src, NodeId dst, double capacity = 1.0,
                 double weight = 1.0);

  /// Adds a bidirectional link: two directed edges that reference each other
  /// via Edge::reverse. Returns the id of the src->dst direction (the
  /// dst->src direction is the returned id's reverse).
  EdgeId addLink(NodeId a, NodeId b, double capacity = 1.0,
                 double weight = 1.0);

  [[nodiscard]] int numNodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int numEdges() const { return static_cast<int>(edges_.size()); }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[checkEdge(e)]; }
  [[nodiscard]] const std::string& nodeName(NodeId v) const {
    return nodes_[checkNode(v)];
  }

  /// Renames a node (parser convenience).
  void setNodeName(NodeId v, std::string name) {
    nodes_[checkNode(v)] = std::move(name);
  }

  /// Finds a node by name; returns std::nullopt if absent. O(|V|).
  [[nodiscard]] std::optional<NodeId> findNode(const std::string& name) const;

  /// Out-going / in-coming edge ids of a node, in insertion order, as a
  /// view over the flat CSR arrays.
  [[nodiscard]] EdgeSpan outEdges(NodeId v) const {
    checkNode(v);
    ensureCsr();
    return {out_ids_.data() + out_off_[v],
            static_cast<std::size_t>(out_off_[v + 1] - out_off_[v])};
  }
  [[nodiscard]] EdgeSpan inEdges(NodeId v) const {
    checkNode(v);
    ensureCsr();
    return {in_ids_.data() + in_off_[v],
            static_cast<std::size_t>(in_off_[v + 1] - in_off_[v])};
  }

  /// The flat CSR arrays themselves, for hot kernels that sweep the whole
  /// adjacency: node v's out-edge ids live at outIds()[outOffsets()[v] ..
  /// outOffsets()[v+1]). Fetching the vectors once and indexing them as
  /// locals lets the compiler keep the base pointers in registers and
  /// vectorize the sweep, which the per-node outEdges() accessor -- whose
  /// lazy-rebuild check it must assume clobbers the arrays -- prevents.
  /// Same invalidation rule as EdgeSpan: any addNode/addEdge stales them.
  [[nodiscard]] const std::vector<std::int32_t>& outOffsets() const {
    ensureCsr();
    return out_off_;
  }
  [[nodiscard]] const std::vector<EdgeId>& outIds() const {
    ensureCsr();
    return out_ids_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& inOffsets() const {
    ensureCsr();
    return in_off_;
  }
  [[nodiscard]] const std::vector<EdgeId>& inIds() const {
    ensureCsr();
    return in_ids_;
  }

  /// First edge src->dst, if any. O(out-degree).
  [[nodiscard]] std::optional<EdgeId> findEdge(NodeId src, NodeId dst) const;

  /// Mutators for capacities/weights (used by weight-search heuristics).
  /// setCapacity accepts 0, the repo-wide "failed link" encoding: SPF,
  /// ECMP and stronglyConnected() skip zero-capacity edges (src/failure/).
  /// Neither mutator touches adjacency, so CSR views stay valid.
  void setWeight(EdgeId e, double w);
  void setCapacity(EdgeId e, double c);

  /// Sets every edge weight to 1/capacity (Cisco default OSPF weights,
  /// scaled so the smallest weight is 1).
  void setInverseCapacityWeights();

  /// Total capacity leaving / entering a node (used by the gravity model).
  [[nodiscard]] double outCapacity(NodeId v) const;
  [[nodiscard]] double inCapacity(NodeId v) const;

  /// All edges as a span-like accessor.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// True if every node can reach every other node along directed edges
  /// with positive capacity (zero-capacity edges model failed links and
  /// are ignored; see src/failure/).
  [[nodiscard]] bool stronglyConnected() const;

 private:
  NodeId checkNode(NodeId v) const {
    require(v >= 0 && v < numNodes(), "node id out of range");
    return v;
  }
  EdgeId checkEdge(EdgeId e) const {
    require(e >= 0 && e < numEdges(), "edge id out of range");
    return e;
  }

  void ensureCsr() const {
    if (csr_epoch_ != mutation_epoch_) rebuildCsr();
  }
  void rebuildCsr() const;

  std::vector<std::string> nodes_;
  std::vector<Edge> edges_;

  // CSR adjacency, derived from edges_. `mutation_epoch_` counts
  // adjacency-changing mutations; the arrays are valid iff
  // csr_epoch_ == mutation_epoch_. Mutable: rebuilt on demand from const
  // accessors (single-threaded by the construction contract above).
  mutable std::vector<std::int32_t> out_off_, in_off_;
  mutable std::vector<EdgeId> out_ids_, in_ids_;
  mutable std::uint64_t csr_epoch_ = 0;
  std::uint64_t mutation_epoch_ = 1;
};

}  // namespace coyote
