// Directed capacitated multigraph used throughout COYOTE.
//
// The network model of the paper (Sec. III): a directed graph G = (V, E)
// where every edge e carries a capacity c(e) and an IGP weight w(e).
// Backbone links are physically bidirectional; addLink() inserts the two
// directed edges and records them as mutual "reverse" edges so that DAG
// construction can orient each physical link in exactly one direction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace coyote {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// One directed edge of the network graph.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity = 1.0;  ///< link capacity (arbitrary rate units)
  double weight = 1.0;    ///< IGP (OSPF) link weight
  EdgeId reverse = kInvalidEdge;  ///< opposite direction of the same physical
                                  ///< link, or kInvalidEdge if unidirectional
};

/// Directed capacitated multigraph with stable integer node/edge ids.
///
/// Node and edge ids are dense indices (0..n-1), which lets every algorithm
/// in the library use flat vectors keyed by id instead of hash maps.
class Graph {
 public:
  Graph() = default;

  /// Adds a node and returns its id. `name` is used in reports and parsing.
  NodeId addNode(std::string name = {});

  /// Adds one directed edge. Returns its id.
  EdgeId addEdge(NodeId src, NodeId dst, double capacity = 1.0,
                 double weight = 1.0);

  /// Adds a bidirectional link: two directed edges that reference each other
  /// via Edge::reverse. Returns the id of the src->dst direction (the
  /// dst->src direction is the returned id's reverse).
  EdgeId addLink(NodeId a, NodeId b, double capacity = 1.0,
                 double weight = 1.0);

  [[nodiscard]] int numNodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int numEdges() const { return static_cast<int>(edges_.size()); }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[checkEdge(e)]; }
  [[nodiscard]] const std::string& nodeName(NodeId v) const {
    return nodes_[checkNode(v)];
  }

  /// Renames a node (parser convenience).
  void setNodeName(NodeId v, std::string name) {
    nodes_[checkNode(v)] = std::move(name);
  }

  /// Finds a node by name; returns std::nullopt if absent. O(|V|).
  [[nodiscard]] std::optional<NodeId> findNode(const std::string& name) const;

  /// Out-going / in-coming edge ids of a node.
  [[nodiscard]] const std::vector<EdgeId>& outEdges(NodeId v) const {
    return out_[checkNode(v)];
  }
  [[nodiscard]] const std::vector<EdgeId>& inEdges(NodeId v) const {
    return in_[checkNode(v)];
  }

  /// First edge src->dst, if any. O(out-degree).
  [[nodiscard]] std::optional<EdgeId> findEdge(NodeId src, NodeId dst) const;

  /// Mutators for capacities/weights (used by weight-search heuristics).
  /// setCapacity accepts 0, the repo-wide "failed link" encoding: SPF,
  /// ECMP and stronglyConnected() skip zero-capacity edges (src/failure/).
  void setWeight(EdgeId e, double w);
  void setCapacity(EdgeId e, double c);

  /// Sets every edge weight to 1/capacity (Cisco default OSPF weights,
  /// scaled so the smallest weight is 1).
  void setInverseCapacityWeights();

  /// Total capacity leaving / entering a node (used by the gravity model).
  [[nodiscard]] double outCapacity(NodeId v) const;
  [[nodiscard]] double inCapacity(NodeId v) const;

  /// All edges as a span-like accessor.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// True if every node can reach every other node along directed edges
  /// with positive capacity (zero-capacity edges model failed links and
  /// are ignored; see src/failure/).
  [[nodiscard]] bool stronglyConnected() const;

 private:
  NodeId checkNode(NodeId v) const {
    require(v >= 0 && v < numNodes(), "node id out of range");
    return v;
  }
  EdgeId checkEdge(EdgeId e) const {
    require(e >= 0 && e < numEdges(), "edge id out of range");
    return e;
  }

  std::vector<std::string> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace coyote
