#include "graph/maxflow.hpp"

#include <limits>
#include <queue>

namespace coyote {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kFlowEps = 1e-12;

/// Classic Dinic implementation on an internal residual representation.
class Dinic {
 public:
  explicit Dinic(int n) : head_(n, -1) {}

  void addArc(int u, int v, double cap) {
    arcs_.push_back({v, head_[u], cap});
    head_[u] = static_cast<int>(arcs_.size()) - 1;
    arcs_.push_back({u, head_[v], 0.0});
    head_[v] = static_cast<int>(arcs_.size()) - 1;
  }

  double run(int s, int t) {
    double total = 0.0;
    while (bfs(s, t)) {
      iter_ = head_;
      double f;
      while ((f = dfs(s, t, kInf)) > kFlowEps) total += f;
    }
    return total;
  }

 private:
  struct Arc {
    int to;
    int next;
    double cap;
  };

  bool bfs(int s, int t) {
    level_.assign(head_.size(), -1);
    std::queue<int> q;
    level_[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int a = head_[u]; a != -1; a = arcs_[a].next) {
        if (arcs_[a].cap > kFlowEps && level_[arcs_[a].to] < 0) {
          level_[arcs_[a].to] = level_[u] + 1;
          q.push(arcs_[a].to);
        }
      }
    }
    return level_[t] >= 0;
  }

  double dfs(int u, int t, double limit) {
    if (u == t) return limit;
    for (int& a = iter_[u]; a != -1; a = arcs_[a].next) {
      Arc& arc = arcs_[a];
      if (arc.cap > kFlowEps && level_[arc.to] == level_[u] + 1) {
        const double pushed = dfs(arc.to, t, std::min(limit, arc.cap));
        if (pushed > kFlowEps) {
          arc.cap -= pushed;
          arcs_[a ^ 1].cap += pushed;
          return pushed;
        }
      }
    }
    return 0.0;
  }

  std::vector<int> head_;
  std::vector<int> iter_;
  std::vector<int> level_;
  std::vector<Arc> arcs_;
};

}  // namespace

double maxFlow(const Graph& g, NodeId s, NodeId t) {
  return maxFlow(g, std::vector<NodeId>{s}, t);
}

double maxFlow(const Graph& g, const std::vector<NodeId>& sources, NodeId t) {
  require(t >= 0 && t < g.numNodes(), "maxFlow: t out of range");
  require(!sources.empty(), "maxFlow: no sources");
  const int n = g.numNodes();
  Dinic dinic(n + 1);  // node n = super source
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    dinic.addArc(ed.src, ed.dst, ed.capacity);
  }
  double total_cap = 0.0;
  for (const Edge& e : g.edges()) total_cap += e.capacity;
  for (const NodeId s : sources) {
    require(s >= 0 && s < n, "maxFlow: source out of range");
    require(s != t, "maxFlow: source equals sink");
    dinic.addArc(n, s, total_cap + 1.0);
  }
  return dinic.run(n, t);
}

}  // namespace coyote
