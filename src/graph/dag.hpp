// Per-destination forwarding DAGs.
//
// COYOTE's routing configurations live inside one directed acyclic graph per
// destination (Sec. III: "the routes to each destination vertex must form a
// DAG"). A Dag is a subset of the graph's edges, all oriented "toward" the
// destination, together with precomputed per-node out-edge lists and a
// topological order used by flow propagation.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace coyote {

/// A destination-rooted forwarding DAG: a cycle-free subset of edges such
/// that every node with at least one out-edge eventually reaches `dest`.
class Dag {
 public:
  /// Builds a DAG for destination `dest` from the given edge subset.
  /// Throws std::invalid_argument if the edge set contains a directed cycle
  /// or an edge out of `dest`.
  Dag(const Graph& g, NodeId dest, std::vector<EdgeId> edges);

  [[nodiscard]] NodeId dest() const { return dest_; }
  [[nodiscard]] const std::vector<EdgeId>& edges() const { return edges_; }
  [[nodiscard]] bool contains(EdgeId e) const { return member_[e]; }

  /// Out-edges of `v` that belong to this DAG.
  [[nodiscard]] const std::vector<EdgeId>& outEdges(NodeId v) const {
    return out_[v];
  }
  /// In-edges of `v` that belong to this DAG.
  [[nodiscard]] const std::vector<EdgeId>& inEdges(NodeId v) const {
    return in_[v];
  }

  /// Nodes in topological order: every DAG edge (u,v) has u before v.
  /// Flow toward the destination is propagated in this order; `dest` is last
  /// among nodes that can reach it.
  [[nodiscard]] const std::vector<NodeId>& topoOrder() const { return topo_; }

  /// True if v has a directed path to dest inside the DAG.
  [[nodiscard]] bool reachesDest(NodeId v) const { return reaches_[v]; }

  [[nodiscard]] int numNodes() const { return static_cast<int>(out_.size()); }

 private:
  NodeId dest_;
  std::vector<EdgeId> edges_;
  std::vector<char> member_;            // indexed by EdgeId
  std::vector<std::vector<EdgeId>> out_;  // indexed by NodeId
  std::vector<std::vector<EdgeId>> in_;
  std::vector<NodeId> topo_;
  std::vector<char> reaches_;
};

/// Convenience: set of per-destination DAGs, one per node of the graph,
/// indexed by destination id.
using DagSet = std::vector<Dag>;

}  // namespace coyote
