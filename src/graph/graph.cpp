#include "graph/graph.hpp"

#include <algorithm>
#include <limits>

namespace coyote {

NodeId Graph::addNode(std::string name) {
  nodes_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  if (nodes_.back().empty()) nodes_.back() = "n" + std::to_string(id);
  return id;
}

EdgeId Graph::addEdge(NodeId src, NodeId dst, double capacity, double weight) {
  checkNode(src);
  checkNode(dst);
  require(src != dst, "self loops are not allowed");
  require(capacity > 0.0, "edge capacity must be positive");
  require(weight > 0.0, "edge weight must be positive");
  Edge e;
  e.src = src;
  e.dst = dst;
  e.capacity = capacity;
  e.weight = weight;
  edges_.push_back(e);
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

EdgeId Graph::addLink(NodeId a, NodeId b, double capacity, double weight) {
  const EdgeId fwd = addEdge(a, b, capacity, weight);
  const EdgeId bwd = addEdge(b, a, capacity, weight);
  edges_[fwd].reverse = bwd;
  edges_[bwd].reverse = fwd;
  return fwd;
}

std::optional<NodeId> Graph::findNode(const std::string& name) const {
  const auto it = std::find(nodes_.begin(), nodes_.end(), name);
  if (it == nodes_.end()) return std::nullopt;
  return static_cast<NodeId>(it - nodes_.begin());
}

std::optional<EdgeId> Graph::findEdge(NodeId src, NodeId dst) const {
  checkNode(dst);
  for (const EdgeId e : outEdges(src)) {
    if (edges_[e].dst == dst) return e;
  }
  return std::nullopt;
}

void Graph::setWeight(EdgeId e, double w) {
  require(w > 0.0, "edge weight must be positive");
  edges_[checkEdge(e)].weight = w;
}

void Graph::setCapacity(EdgeId e, double c) {
  // Zero is legal and means "failed link" (withdrawn from SPF/connectivity
  // and unable to carry traffic; see src/failure/). Construction still
  // rejects non-positive capacities: a link is born up.
  require(c >= 0.0, "edge capacity must be non-negative");
  edges_[checkEdge(e)].capacity = c;
}

void Graph::setInverseCapacityWeights() {
  double max_cap = 0.0;
  for (const Edge& e : edges_) max_cap = std::max(max_cap, e.capacity);
  if (max_cap <= 0.0) return;
  for (Edge& e : edges_) e.weight = max_cap / e.capacity;
}

double Graph::outCapacity(NodeId v) const {
  double sum = 0.0;
  for (const EdgeId e : outEdges(v)) sum += edges_[e].capacity;
  return sum;
}

double Graph::inCapacity(NodeId v) const {
  double sum = 0.0;
  for (const EdgeId e : inEdges(v)) sum += edges_[e].capacity;
  return sum;
}

bool Graph::stronglyConnected() const {
  if (numNodes() == 0) return true;
  // BFS forward and backward from node 0.
  const auto bfs = [&](bool forward) {
    std::vector<char> seen(numNodes(), 0);
    std::vector<NodeId> stack{0};
    seen[0] = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      const auto& adj = forward ? out_[u] : in_[u];
      for (const EdgeId e : adj) {
        if (edges_[e].capacity <= 0.0) continue;  // failed link
        const NodeId w = forward ? edges_[e].dst : edges_[e].src;
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
    return std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; });
  };
  return bfs(true) && bfs(false);
}

}  // namespace coyote
