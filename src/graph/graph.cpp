#include "graph/graph.hpp"

#include <algorithm>
#include <limits>

namespace coyote {

NodeId Graph::addNode(std::string name) {
  nodes_.push_back(std::move(name));
  ++mutation_epoch_;
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  if (nodes_.back().empty()) nodes_.back() = "n" + std::to_string(id);
  return id;
}

EdgeId Graph::addEdge(NodeId src, NodeId dst, double capacity, double weight) {
  checkNode(src);
  checkNode(dst);
  require(src != dst, "self loops are not allowed");
  require(capacity > 0.0, "edge capacity must be positive");
  require(weight > 0.0, "edge weight must be positive");
  Edge e;
  e.src = src;
  e.dst = dst;
  e.capacity = capacity;
  e.weight = weight;
  edges_.push_back(e);
  ++mutation_epoch_;
  return static_cast<EdgeId>(edges_.size() - 1);
}

EdgeId Graph::addLink(NodeId a, NodeId b, double capacity, double weight) {
  const EdgeId fwd = addEdge(a, b, capacity, weight);
  const EdgeId bwd = addEdge(b, a, capacity, weight);
  edges_[fwd].reverse = bwd;
  edges_[bwd].reverse = fwd;
  return fwd;
}

void Graph::rebuildCsr() const {
  // Counting sort of edge ids by endpoint. Ascending edge-id placement
  // reproduces the per-node insertion order the old vector<vector>
  // adjacency had, so every order-sensitive consumer (DAG builders, LP
  // template construction) sees identical sequences.
  const int n = numNodes();
  const int m = numEdges();
  out_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  in_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges_) {
    ++out_off_[static_cast<std::size_t>(e.src) + 1];
    ++in_off_[static_cast<std::size_t>(e.dst) + 1];
  }
  for (int v = 0; v < n; ++v) {
    out_off_[v + 1] += out_off_[v];
    in_off_[v + 1] += in_off_[v];
  }
  out_ids_.resize(static_cast<std::size_t>(m));
  in_ids_.resize(static_cast<std::size_t>(m));
  std::vector<std::int32_t> out_cur(out_off_.begin(), out_off_.end() - 1);
  std::vector<std::int32_t> in_cur(in_off_.begin(), in_off_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    out_ids_[out_cur[edges_[e].src]++] = e;
    in_ids_[in_cur[edges_[e].dst]++] = e;
  }
  csr_epoch_ = mutation_epoch_;
}

std::optional<NodeId> Graph::findNode(const std::string& name) const {
  const auto it = std::find(nodes_.begin(), nodes_.end(), name);
  if (it == nodes_.end()) return std::nullopt;
  return static_cast<NodeId>(it - nodes_.begin());
}

std::optional<EdgeId> Graph::findEdge(NodeId src, NodeId dst) const {
  checkNode(dst);
  for (const EdgeId e : outEdges(src)) {
    if (edges_[e].dst == dst) return e;
  }
  return std::nullopt;
}

void Graph::setWeight(EdgeId e, double w) {
  require(w > 0.0, "edge weight must be positive");
  edges_[checkEdge(e)].weight = w;
}

void Graph::setCapacity(EdgeId e, double c) {
  // Zero is legal and means "failed link" (withdrawn from SPF/connectivity
  // and unable to carry traffic; see src/failure/). Construction still
  // rejects non-positive capacities: a link is born up.
  require(c >= 0.0, "edge capacity must be non-negative");
  edges_[checkEdge(e)].capacity = c;
}

void Graph::setInverseCapacityWeights() {
  double max_cap = 0.0;
  for (const Edge& e : edges_) max_cap = std::max(max_cap, e.capacity);
  if (max_cap <= 0.0) return;
  for (Edge& e : edges_) e.weight = max_cap / e.capacity;
}

double Graph::outCapacity(NodeId v) const {
  double sum = 0.0;
  for (const EdgeId e : outEdges(v)) sum += edges_[e].capacity;
  return sum;
}

double Graph::inCapacity(NodeId v) const {
  double sum = 0.0;
  for (const EdgeId e : inEdges(v)) sum += edges_[e].capacity;
  return sum;
}

bool Graph::stronglyConnected() const {
  if (numNodes() == 0) return true;
  // BFS forward and backward from node 0.
  const auto bfs = [&](bool forward) {
    std::vector<char> seen(numNodes(), 0);
    std::vector<NodeId> stack{0};
    seen[0] = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      const EdgeSpan adj = forward ? outEdges(u) : inEdges(u);
      for (const EdgeId e : adj) {
        if (edges_[e].capacity <= 0.0) continue;  // failed link
        const NodeId w = forward ? edges_[e].dst : edges_[e].src;
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
    return std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; });
  };
  return bfs(true) && bfs(false);
}

}  // namespace coyote
