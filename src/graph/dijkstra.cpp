#include "graph/dijkstra.hpp"

#include <limits>
#include <queue>

namespace coyote {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ShortestPathsToDest reverseDijkstra(const Graph& g, NodeId dest,
                                    bool unit_weights) {
  require(dest >= 0 && dest < g.numNodes(), "dest out of range");
  ShortestPathsToDest sp;
  sp.dest = dest;
  sp.dist.assign(g.numNodes(), kInf);
  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  sp.dist[dest] = 0.0;
  pq.emplace(0.0, dest);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > sp.dist[v]) continue;  // stale entry
    for (const EdgeId e : g.inEdges(v)) {
      const Edge& ed = g.edge(e);
      if (ed.capacity <= 0.0) continue;  // failed link: withdrawn from SPF
      const double w = unit_weights ? 1.0 : ed.weight;
      const double nd = d + w;
      if (nd < sp.dist[ed.src]) {
        sp.dist[ed.src] = nd;
        pq.emplace(nd, ed.src);
      }
    }
  }
  return sp;
}

}  // namespace

ShortestPathsToDest shortestPathsTo(const Graph& g, NodeId dest) {
  return reverseDijkstra(g, dest, /*unit_weights=*/false);
}

ShortestPathsToDest hopDistancesTo(const Graph& g, NodeId dest) {
  return reverseDijkstra(g, dest, /*unit_weights=*/true);
}

std::vector<EdgeId> shortestPathDagEdges(const Graph& g,
                                         const ShortestPathsToDest& sp,
                                         double eps) {
  std::vector<EdgeId> dag;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    if (ed.capacity <= 0.0) continue;  // failed link
    if (sp.dist[ed.src] == kInf || sp.dist[ed.dst] == kInf) continue;
    if (std::abs(sp.dist[ed.src] - (ed.weight + sp.dist[ed.dst])) <= eps) {
      dag.push_back(e);
    }
  }
  return dag;
}

std::vector<EdgeId> ecmpNextHops(const Graph& g, const ShortestPathsToDest& sp,
                                 NodeId u, double eps) {
  std::vector<EdgeId> hops;
  if (u == sp.dest || sp.dist[u] == kInf) return hops;
  for (const EdgeId e : g.outEdges(u)) {
    const Edge& ed = g.edge(e);
    if (ed.capacity <= 0.0) continue;  // failed link
    if (sp.dist[ed.dst] == kInf) continue;
    if (std::abs(sp.dist[u] - (ed.weight + sp.dist[ed.dst])) <= eps) {
      hops.push_back(e);
    }
  }
  return hops;
}

}  // namespace coyote
