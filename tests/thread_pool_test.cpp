// util::ThreadPool: coverage, reuse, exception propagation, determinism.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace coyote::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallelFor(16, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ZeroAndOneIndexJobs) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallelFor(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, IsReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallelFor(round + 1,
                     [&](std::size_t i) { sum += static_cast<int>(i) + 1; });
    EXPECT_EQ(sum.load(), (round + 1) * (round + 2) / 2) << "round " << round;
  }
}

TEST(ThreadPool, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  // Enough indices with a small wait that a single thread cannot drain the
  // job before the workers wake up.
  pool.parallelFor(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(100,
                                [&](std::size_t i) {
                                  if (i == 17) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a failed job and keeps scheduling.
  std::atomic<int> ok{0};
  pool.parallelFor(10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ExceptionOnSingleThreadPool) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallelFor(3, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreads(), 1u);
  EXPECT_GE(ThreadPool::global().threadCount(), 1u);
}

TEST(ThreadPool, NestedParallelForOnSamePoolFailsFast) {
  // Undocumented-deadlock regression guard: a nested call used to block
  // forever on submit_mutex_ (held by the outer job); now it throws a
  // clear std::invalid_argument, propagated like any job exception, at
  // every thread count -- including the single-thread inline path where
  // the deadlock itself never bites.
  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.parallelFor(8,
                                  [&](std::size_t) {
                                    pool.parallelFor(
                                        2, [](std::size_t) {});
                                  }),
                 std::invalid_argument)
        << threads << " threads";
    // The pool survives the failed job and keeps scheduling.
    std::atomic<int> ok{0};
    pool.parallelFor(5, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 5);
  }
}

TEST(ThreadPool, NestingAcrossDistinctPoolsIsAllowed) {
  ThreadPool outer(3);
  ThreadPool inner(2);
  std::vector<std::atomic<int>> hits(6 * 4);
  outer.parallelFor(6, [&](std::size_t i) {
    inner.parallelFor(4,
                      [&](std::size_t j) { hits[i * 4 + j].fetch_add(1); });
  });
  for (std::size_t k = 0; k < hits.size(); ++k) {
    EXPECT_EQ(hits[k].load(), 1) << "slot " << k;
  }
  // The marker unwinds correctly: both pools accept fresh top-level jobs.
  std::atomic<int> ok{0};
  outer.parallelFor(3, [&](std::size_t) { ++ok; });
  inner.parallelFor(3, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 6);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // Same indexed-slot pattern the evaluator uses: writes are per-index, so
  // any thread count produces the identical result vector.
  constexpr std::size_t kN = 257;
  std::vector<double> reference(kN, 0.0);
  for (std::size_t i = 0; i < kN; ++i) {
    reference[i] = static_cast<double>(i) * 1.25 + 0.5;
  }
  for (const unsigned threads : {1u, 2u, 5u, 8u}) {
    ThreadPool pool(threads);
    std::vector<double> out(kN, 0.0);
    pool.parallelFor(kN, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.25 + 0.5;
    });
    EXPECT_EQ(out, reference) << threads << " threads";
  }
}

}  // namespace
}  // namespace coyote::util
