// exp::ScenarioRegistry -- the experiment grid behind coyote_experiments
// and the per-figure bench shims: id uniqueness, filtering, and that every
// registered scenario actually builds (graph, base matrix, corner pool).
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "core/dag_builder.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "tm/uncertainty.hpp"
#include "topo/zoo.hpp"

namespace coyote::exp {
namespace {

const ScenarioRegistry& reg() { return ScenarioRegistry::global(); }

TEST(ScenarioRegistry, CoversThePaperAndTheExtensionGrid) {
  // The acceptance bar for the harness: the paper's 7 figures + Table I +
  // ablations plus the zoo x demand-model and synthetic grids.
  EXPECT_GE(reg().all().size(), 25u);
  for (const char* id :
       {"fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
        "table1", "ablation-dag-aug", "ablation-optimizer",
        "ablation-hardness", "running-example"}) {
    EXPECT_NE(reg().find(id), nullptr) << id;
  }
  // Every Zoo topology appears under every base-demand model.
  for (const std::string& name : topo::zooNames()) {
    std::string lower;
    for (const char c : name) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    for (const char* model : {"gravity", "bimodal", "uniform"}) {
      EXPECT_NE(reg().find("zoo-" + lower + "-" + model), nullptr)
          << name << " x " << model;
    }
  }
}

TEST(ScenarioRegistry, IdsAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const Scenario& s : reg().all()) {
    EXPECT_FALSE(s.id.empty());
    EXPECT_TRUE(seen.insert(s.id).second) << "duplicate id: " << s.id;
    EXPECT_FALSE(s.description.empty()) << s.id;
    EXPECT_FALSE(s.tags.empty()) << s.id;
    // Ids are shell- and filename-safe (they name BENCH_<id>.json files).
    for (const char c : s.id) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-')
          << s.id;
    }
  }
}

TEST(ScenarioRegistry, FindAndMatch) {
  EXPECT_EQ(reg().find("no-such-scenario"), nullptr);
  const Scenario* fig06 = reg().find("fig06");
  ASSERT_NE(fig06, nullptr);
  EXPECT_EQ(fig06->kind, ScenarioKind::kSchemes);
  EXPECT_TRUE(fig06->hasTag("figure"));
  EXPECT_FALSE(fig06->hasTag("synthetic"));

  // match() hits ids and tags, and the empty pattern selects everything.
  EXPECT_EQ(reg().match("").size(), reg().all().size());
  const auto figures = reg().match("figure");
  EXPECT_GE(figures.size(), 7u);
  for (const Scenario* s : figures) EXPECT_TRUE(s->hasTag("figure"));
  // Substring semantics: "fig06" also selects its failure variants
  // (fig06-fail1, fig06-srlg, fig06-fail2).
  EXPECT_EQ(reg().match("fig06").size(), 4u);
  EXPECT_EQ(reg().match("fig07").size(), 3u);
  EXPECT_EQ(reg().match("fig06-fail1").size(), 1u);
  EXPECT_TRUE(reg().match("zzz-no-hit").empty());

  // The CI smoke selection: small scenarios that finish in seconds.
  EXPECT_GE(reg().match("smoke").size(), 2u);
}

TEST(ScenarioRegistry, MarginGridsAreSane) {
  for (const Scenario& s : reg().all()) {
    switch (s.kind) {
      case ScenarioKind::kSchemes:
      case ScenarioKind::kTable:
      case ScenarioKind::kLocalSearch:
      case ScenarioKind::kQuantization: {
        ASSERT_FALSE(s.margins.empty()) << s.id;
        // Full grids refine the quick ones; both start at margin >= 1 and
        // ascend (margin 1 = no uncertainty, the paper's leftmost point).
        for (const std::vector<double>& grid :
             {s.grid(false), s.grid(true)}) {
          EXPECT_GE(grid.front(), 1.0) << s.id;
          for (std::size_t i = 1; i < grid.size(); ++i) {
            EXPECT_LT(grid[i - 1], grid[i]) << s.id;
          }
        }
        EXPECT_GE(s.grid(true).size(), s.grid(false).size()) << s.id;
        break;
      }
      default:
        break;
    }
  }
}

TEST(ScenarioRegistry, ServeScenariosAreRegistered) {
  const Scenario* smoke = reg().find("serve-running-example");
  ASSERT_NE(smoke, nullptr);
  EXPECT_EQ(smoke->kind, ScenarioKind::kServe);
  EXPECT_TRUE(smoke->hasTag("serve"));
  EXPECT_TRUE(smoke->hasTag("smoke"));  // the CI bench gate replays it
  EXPECT_GT(smoke->serve_events, 0);

  const Scenario* geant = reg().find("serve-geant-500");
  ASSERT_NE(geant, nullptr);
  EXPECT_EQ(geant->kind, ScenarioKind::kServe);
  EXPECT_EQ(geant->serve_events, 500);
  EXPECT_FALSE(geant->hasTag("smoke"));

  EXPECT_STREQ(kindName(ScenarioKind::kServe), "serve");
}

TEST(ScenarioRegistry, ScalingScenariosAreRegistered) {
  // One entry per structured family/size from the registry's scaling
  // grid; every ladder ascends and the smoke rung is CI-affordable.
  for (const char* id :
       {"scaling-fattree-smoke", "scaling-fattree-k8", "scaling-fattree-k12",
        "scaling-fattree-k16", "scaling-dragonfly-a4", "scaling-dragonfly-a8",
        "scaling-hmesh-x2", "scaling-hmesh-x3", "scaling-torus"}) {
    const Scenario* s = reg().find(id);
    ASSERT_NE(s, nullptr) << id;
    EXPECT_EQ(s->kind, ScenarioKind::kScaling) << id;
    EXPECT_TRUE(s->hasTag("scaling")) << id;
    ASSERT_FALSE(s->ladder.empty()) << id;
    // `topology` mirrors the smallest rung for single-topology consumers.
    EXPECT_EQ(s->topology.label(), s->ladder.front().label()) << id;
    int prev_nodes = 0;
    for (const TopologySpec& rung : s->ladder) {
      const Graph g = rung.build();
      EXPECT_GT(static_cast<int>(g.numNodes()), prev_nodes)
          << id << " rung " << rung.label();
      EXPECT_TRUE(g.stronglyConnected()) << id << " rung " << rung.label();
      prev_nodes = static_cast<int>(g.numNodes());
    }
    EXPECT_GT(s->fixed_margin, 1.0) << id;
  }
  EXPECT_STREQ(kindName(ScenarioKind::kScaling), "scaling");

  const Scenario* smoke = reg().find("scaling-fattree-smoke");
  EXPECT_TRUE(smoke->hasTag("smoke"));
  EXPECT_EQ(smoke->ladder.size(), 1u);
  EXPECT_EQ(smoke->ladder.front().label(), "fattree4");

  // The k16 acceptance ladder tops out at the paper-scale 320-node rung.
  const Scenario* k16 = reg().find("scaling-fattree-k16");
  EXPECT_FALSE(k16->hasTag("smoke"));
  EXPECT_EQ(k16->ladder.back().label(), "fattree16");
  EXPECT_EQ(k16->ladder.back().build().numNodes(), 320u);
}

TEST(ScenarioRegistry, ScalingRowsAreBitIdenticalAcrossThreadCounts) {
  // The CSR graph core + sparse OPTU templates must not perturb the
  // thread-count invariance contract (SweepOptions::threads): the same
  // scaling rung computed on 1, 2 and 8 private threads yields the same
  // bits, pivots included.
  const Scenario* smoke = reg().find("scaling-fattree-smoke");
  ASSERT_NE(smoke, nullptr);
  const Graph g = smoke->ladder.front().build();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = smoke->demand.build(g);

  std::vector<SchemeRow> rows;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SweepOptions opt = smoke->sweep;
    opt.threads = threads;
    const NetworkSweep sweep(g, dags, base, opt);
    rows.push_back(sweep.run(smoke->fixed_margin));
  }
  ASSERT_EQ(rows[0].ratio.size(), rows[1].ratio.size());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows[0].ratio.size(); ++j) {
      EXPECT_EQ(rows[i].ratio[j], rows[0].ratio[j]) << "scheme " << j;
    }
    EXPECT_EQ(rows[i].lp_pivots, rows[0].lp_pivots);
    EXPECT_EQ(rows[i].lp_solves, rows[0].lp_solves);
  }
}

TEST(ScenarioRegistry, EveryScenarioBuildsGraphMatrixAndPool) {
  for (const Scenario& s : reg().all()) {
    SCOPED_TRACE(s.id);
    if (!s.networks.empty()) {
      // Network-list kinds: every listed Zoo name must resolve.
      for (const bool full : {false, true}) {
        for (const std::string& name : s.networkList(full)) {
          const Graph g = topo::makeZoo(name);
          EXPECT_GE(g.numNodes(), 2);
          EXPECT_GT(g.numEdges(), 0);
        }
      }
      continue;
    }
    const Graph g = s.topology.build();
    EXPECT_GE(g.numNodes(), 2);
    EXPECT_GT(g.numEdges(), 0);
    EXPECT_FALSE(s.topology.label().empty());

    if (s.kind == ScenarioKind::kOptimizer ||
        s.kind == ScenarioKind::kHardness ||
        s.kind == ScenarioKind::kPrototype) {
      continue;  // these kinds build their own instances internally
    }
    const tm::TrafficMatrix base = s.demand.build(g);
    EXPECT_EQ(base.numNodes(), g.numNodes());
    EXPECT_GT(base.total(), 0.0);

    const double margin = s.margins.empty() ? 2.0 : s.margins.back();
    const tm::DemandBounds box = tm::marginBounds(base, margin);
    const std::vector<tm::TrafficMatrix> pool =
        tm::cornerPool(box, s.sweep.pool);
    ASSERT_FALSE(pool.empty());
    for (const tm::TrafficMatrix& d : pool) {
      EXPECT_TRUE(box.contains(d));
    }
  }
}

TEST(ScenarioRegistry, ExplicitConstructionRejectsDuplicates) {
  Scenario a;
  a.id = "a";
  a.description = "first";
  Scenario b = a;
  b.description = "second";
  EXPECT_THROW(ScenarioRegistry({a, b}), std::invalid_argument);

  Scenario unnamed;
  EXPECT_THROW(ScenarioRegistry({unnamed}), std::invalid_argument);

  b.id = "b";
  const ScenarioRegistry two({a, b});
  EXPECT_EQ(two.all().size(), 2u);
  EXPECT_NE(two.find("a"), nullptr);
  EXPECT_NE(two.find("b"), nullptr);
}

TEST(ScenarioRegistry, RegistrationRejectsUnsafeIds) {
  // Ids name BENCH_<id>.json files and travel through shells; the safe
  // charset is enforced at registration time (require() in add()), not
  // just asserted over the global grid by this suite.
  for (const char* bad : {"has space", "slash/y", "dot.json", "semi;rm"}) {
    Scenario s;
    s.id = bad;
    s.description = "bad id";
    EXPECT_THROW(ScenarioRegistry({s}), std::invalid_argument) << bad;
  }
}

TEST(TopologySpec, SyntheticBuildersMatchTheirLabels) {
  EXPECT_EQ(TopologySpec::ring(8).label(), "ring8");
  EXPECT_EQ(TopologySpec::grid(3, 4).label(), "grid3x4");
  EXPECT_EQ(TopologySpec::fullMesh(6).label(), "mesh6");
  EXPECT_EQ(TopologySpec::ring(8).build().numNodes(), 8);
  EXPECT_EQ(TopologySpec::grid(3, 4).build().numNodes(), 12);
  EXPECT_EQ(TopologySpec::fullMesh(6).build().numEdges(), 6 * 5);
}

TEST(DemandSpec, ModelsProduceTheRequestedTotal) {
  const Graph g = TopologySpec::fullMesh(5).build();
  for (const DemandSpec::Model model :
       {DemandSpec::Model::kGravity, DemandSpec::Model::kBimodal,
        DemandSpec::Model::kUniform}) {
    DemandSpec d;
    d.model = model;
    d.total = 4.0;
    const tm::TrafficMatrix m = d.build(g);
    EXPECT_NEAR(m.total(), 4.0, 1e-9) << d.name();
  }
  // Uniform: every ordered pair carries the same demand.
  DemandSpec u;
  u.model = DemandSpec::Model::kUniform;
  const tm::TrafficMatrix m = u.build(g);
  EXPECT_DOUBLE_EQ(m.at(0, 1), m.at(4, 2));
}

}  // namespace
}  // namespace coyote::exp
