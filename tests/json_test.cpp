// util::json -- the document model behind the BENCH_<scenario>.json files:
// writer determinism (insertion order, number formatting, escaping) and
// round-tripping through the strict parser bench_compare relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/json.hpp"

namespace coyote::util::json {
namespace {

TEST(JsonValue, TypesAndAccessors) {
  EXPECT_TRUE(Value().isNull());
  EXPECT_TRUE(Value(nullptr).isNull());
  EXPECT_TRUE(Value(true).asBool());
  EXPECT_DOUBLE_EQ(Value(2.5).asNumber(), 2.5);
  EXPECT_DOUBLE_EQ(Value(7).asNumber(), 7.0);
  EXPECT_EQ(Value("hi").asString(), "hi");
  EXPECT_TRUE(Value::array().isArray());
  EXPECT_TRUE(Value::object().isObject());

  EXPECT_THROW((void)Value(1.0).asString(), Error);
  EXPECT_THROW((void)Value("x").asNumber(), Error);
  EXPECT_THROW((void)Value::array().asObject(), Error);
}

TEST(JsonValue, ObjectInsertionOrderIsPreserved) {
  Value obj = Value::object();
  obj["zebra"] = 1;
  obj["alpha"] = 2;
  obj["mid"] = 3;
  EXPECT_EQ(obj.dump(0), R"({"zebra":1,"alpha":2,"mid":3})");

  // operator[] updates in place instead of appending a duplicate.
  obj["alpha"] = 9;
  EXPECT_EQ(obj.dump(0), R"({"zebra":1,"alpha":9,"mid":3})");
  EXPECT_EQ(obj.asObject().size(), 3u);
}

TEST(JsonValue, FindAndFallbacks) {
  Value obj = Value::object();
  obj["num"] = 4.0;
  obj["str"] = "s";
  EXPECT_NE(obj.find("num"), nullptr);
  EXPECT_EQ(obj.find("absent"), nullptr);
  EXPECT_EQ(Value(1.0).find("x"), nullptr);  // non-object: no member access
  EXPECT_DOUBLE_EQ(obj.numberOr("num", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(obj.numberOr("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(obj.numberOr("str", -1.0), -1.0);  // wrong type
  EXPECT_EQ(obj.stringOr("str", "d"), "s");
  EXPECT_EQ(obj.stringOr("absent", "d"), "d");
}

TEST(JsonWriter, StringEscaping) {
  EXPECT_EQ(escapeString("plain"), "plain");
  EXPECT_EQ(escapeString("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escapeString("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeString("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(escapeString(std::string("nul\x01" "byte")), "nul\\u0001byte");
  EXPECT_EQ(escapeString(std::string("esc\x1f")), "esc\\u001f");
  // UTF-8 multibyte sequences pass through unescaped.
  EXPECT_EQ(escapeString("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, NumberFormatting) {
  EXPECT_EQ(formatNumber(0.0), "0");
  EXPECT_EQ(formatNumber(3.0), "3");
  EXPECT_EQ(formatNumber(-12.0), "-12");
  EXPECT_EQ(formatNumber(2.5), "2.5");
  // Shortest round-trip form: the parsed value is bit-identical.
  for (const double d : {1.0 / 3.0, 0.1, 1e-9, 123456.789, std::sqrt(2.0)}) {
    EXPECT_DOUBLE_EQ(parse(formatNumber(d)).asNumber(), d) << d;
    EXPECT_EQ(parse(formatNumber(d)).asNumber(), d) << d;
  }
}

TEST(JsonWriter, NonFiniteNumbersBecomeTaggedStrings) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(formatNumber(inf), "inf");
  EXPECT_EQ(formatNumber(-inf), "-inf");
  EXPECT_EQ(formatNumber(nan), "nan");
  EXPECT_EQ(nonFiniteTag(1.5), nullptr);

  // A failure row with a +inf ratio (loaded dead link) must still emit
  // valid JSON and survive the round trip losslessly.
  Value row = Value::object();
  row["label"] = "A-B";
  row["ecmp"] = inf;
  row["coyote"] = 1.25;
  row["nan_case"] = nan;
  EXPECT_EQ(row.dump(0),
            R"({"label":"A-B","ecmp":"inf","coyote":1.25,"nan_case":"nan"})");

  const Value reparsed = parse(row.dump(0));
  double out = 0.0;
  ASSERT_TRUE(decodeNumber(*reparsed.find("ecmp"), &out));
  EXPECT_TRUE(std::isinf(out));
  EXPECT_GT(out, 0.0);
  ASSERT_TRUE(decodeNumber(*reparsed.find("coyote"), &out));
  EXPECT_DOUBLE_EQ(out, 1.25);
  ASSERT_TRUE(decodeNumber(*reparsed.find("nan_case"), &out));
  EXPECT_TRUE(std::isnan(out));
  EXPECT_FALSE(decodeNumber(*reparsed.find("label"), &out));
  // The second trip is a fixed point: tagged strings dump unchanged.
  EXPECT_EQ(reparsed.dump(0), row.dump(0));

  double neg = 0.0;
  ASSERT_TRUE(decodeNumber(parse("\"-inf\""), &neg));
  EXPECT_TRUE(std::isinf(neg));
  EXPECT_LT(neg, 0.0);
}

TEST(JsonParser, BareNonFiniteTokensAreRejectedByName) {
  for (const char* text : {"Infinity", "-Infinity", "inf", "-inf", "nan",
                           "NaN", "[1,Infinity]", "{\"r\":NaN}"}) {
    try {
      (void)parse(text);
      FAIL() << "parse accepted: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
          << text << ": " << e.what();
    }
  }
}

TEST(JsonWriter, NestedPrettyAndCompact) {
  Value doc = Value::object();
  doc["id"] = "fig06";
  Value rows = Value::array();
  Value row = Value::object();
  row["margin"] = 1.0;
  row["ecmp"] = 1.25;
  rows.push_back(std::move(row));
  doc["rows"] = std::move(rows);
  doc["ok"] = true;
  doc["note"] = nullptr;

  EXPECT_EQ(doc.dump(0),
            R"({"id":"fig06","rows":[{"margin":1,"ecmp":1.25}],"ok":true,"note":null})");
  EXPECT_EQ(doc.dump(2),
            "{\n"
            "  \"id\": \"fig06\",\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"margin\": 1,\n"
            "      \"ecmp\": 1.25\n"
            "    }\n"
            "  ],\n"
            "  \"ok\": true,\n"
            "  \"note\": null\n"
            "}\n");
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(Value::array().dump(0), "[]");
  EXPECT_EQ(Value::object().dump(0), "{}");
  EXPECT_EQ(Value::array().dump(2), "[]\n");
  EXPECT_EQ(Value::object().dump(2), "{}\n");
}

TEST(JsonRoundTrip, WriterOutputParsesBackEqual) {
  Value doc = Value::object();
  doc["schema"] = "coyote-bench/1";
  doc["escaped"] = "quote\" slash\\ newline\n unicode caf\xc3\xa9";
  doc["flag"] = false;
  doc["nothing"] = nullptr;
  Value nested = Value::object();
  nested["deep"] = Value(Array{Value(1.5), Value("two"), Value(Object{
                             {"three", Value(3)}})});
  doc["nested"] = std::move(nested);
  Value numbers = Value::array();
  for (const double d : {0.0, -1.5, 1.0 / 3.0, 1e300, 5e-324}) {
    numbers.push_back(d);
  }
  doc["numbers"] = std::move(numbers);

  for (const int indent : {0, 2, 4}) {
    const Value reparsed = parse(doc.dump(indent));
    EXPECT_TRUE(reparsed == doc) << "indent " << indent;
    // Deterministic writer: dumping the reparsed tree is byte-identical.
    EXPECT_EQ(reparsed.dump(indent), doc.dump(indent));
  }
}

TEST(JsonParser, ScalarsAndWhitespace) {
  EXPECT_TRUE(parse(" null ").isNull());
  EXPECT_TRUE(parse("true").asBool());
  EXPECT_FALSE(parse("\tfalse\n").asBool());
  EXPECT_DOUBLE_EQ(parse("-2.5e2").asNumber(), -250.0);
  EXPECT_EQ(parse(R"("a\"b\\c\nA")").asString(), "a\"b\\c\nA");
}

TEST(JsonParser, MalformedInputThrows) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{\"a\":1,}"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
  EXPECT_THROW(parse("nul"), Error);
  EXPECT_THROW(parse("1 2"), Error);  // trailing garbage
  EXPECT_THROW(parse("{} []"), Error);
  EXPECT_THROW(parse("\"bad \\x escape\""), Error);
}

TEST(JsonEquality, NumbersAndStructure) {
  EXPECT_TRUE(Value(1.0) == Value(1));
  EXPECT_FALSE(Value(1.0) == Value("1"));
  Value a = Value::object();
  a["k"] = Value(Array{Value(1), Value(2)});
  Value b = parse(a.dump(0));
  EXPECT_TRUE(a == b);
  b["k"].push_back(Value(3));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace coyote::util::json
