#include <gtest/gtest.h>

#include "sim/fluid.hpp"
#include "topo/zoo.hpp"

namespace coyote::sim {
namespace {

/// The Fig. 12a triangle with prefixes t1 (id 0) and t2 (id 1) owned by t.
struct Proto {
  Graph g = topo::prototypeTriangle();
  NodeId s1, s2, t;
  EdgeId s1t, s2t, s1s2, s2s1;

  Proto()
      : s1(*g.findNode("s1")),
        s2(*g.findNode("s2")),
        t(*g.findNode("t")),
        s1t(*g.findEdge(s1, t)),
        s2t(*g.findEdge(s2, t)),
        s1s2(*g.findEdge(s1, s2)),
        s2s1(*g.findEdge(s2, s1)) {}

  FluidNetwork directNetwork() const {
    FluidNetwork net(g);
    for (const PrefixId p : {0, 1}) {
      net.setPrefixOwner(p, t);
      net.setForwarding(p, s1, {{s1t, 1.0}});
      net.setForwarding(p, s2, {{s2t, 1.0}});
    }
    return net;
  }
};

TEST(Fluid, NoDropsUnderCapacity) {
  Proto p;
  FluidNetwork net = p.directNetwork();
  net.addFlow({p.s1, 0, 0.8, 0.0, 10.0});
  const auto stats = net.run(10.0, 1.0);
  ASSERT_EQ(stats.size(), 10u);
  for (const auto& s : stats) {
    EXPECT_NEAR(s.sent, 0.8, 1e-9);
    EXPECT_NEAR(s.dropRate(), 0.0, 1e-9);
  }
}

TEST(Fluid, BottleneckDropsExcessProportionally) {
  Proto p;
  FluidNetwork net = p.directNetwork();
  net.addFlow({p.s1, 0, 2.0, 0.0, 5.0});  // 2 units over a 1-unit link
  const auto stats = net.run(5.0, 1.0);
  for (const auto& s : stats) {
    EXPECT_NEAR(s.dropRate(), 0.5, 1e-9);
  }
}

TEST(Fluid, FlowStartStopTiming) {
  Proto p;
  FluidNetwork net = p.directNetwork();
  net.addFlow({p.s1, 0, 1.0, 2.0, 4.0});
  const auto stats = net.run(6.0, 1.0);
  EXPECT_NEAR(stats[0].sent, 0.0, 1e-12);
  EXPECT_NEAR(stats[2].sent, 1.0, 1e-12);
  EXPECT_NEAR(stats[3].sent, 1.0, 1e-12);
  EXPECT_NEAR(stats[5].sent, 0.0, 1e-12);
}

TEST(Fluid, PartialStepOverlapScalesRate) {
  Proto p;
  FluidNetwork net = p.directNetwork();
  net.addFlow({p.s1, 0, 1.0, 0.5, 1.0});  // active half of step 0
  const auto stats = net.run(1.0, 1.0);
  EXPECT_NEAR(stats[0].sent, 0.5, 1e-12);
}

TEST(Fluid, SharedBottleneckCouplesPrefixes) {
  Proto p;
  // Both prefixes routed via (s2,t): s1's traffic via s2.
  FluidNetwork net(p.g);
  for (const PrefixId pf : {0, 1}) {
    net.setPrefixOwner(pf, p.t);
    net.setForwarding(pf, p.s1, {{p.s1s2, 1.0}});
    net.setForwarding(pf, p.s2, {{p.s2t, 1.0}});
  }
  net.addFlow({p.s1, 0, 1.0, 0.0, 1.0});
  net.addFlow({p.s2, 1, 1.0, 0.0, 1.0});
  const auto stats = net.run(1.0, 1.0);
  // 2 units offered into a 1-unit link: half of everything is lost.
  EXPECT_NEAR(stats[0].dropRate(), 0.5, 1e-6);
}

TEST(Fluid, DownstreamSeesOnlySurvivingTraffic) {
  // Chain s1 -> s2 -> t with the first hop droppy: the (s2,t) link must not
  // drop again (arrivals there are post-drop).
  Proto p;
  FluidNetwork net(p.g);
  net.setPrefixOwner(0, p.t);
  net.setForwarding(0, p.s1, {{p.s1s2, 1.0}});
  net.setForwarding(0, p.s2, {{p.s2t, 1.0}});
  net.addFlow({p.s1, 0, 3.0, 0.0, 1.0});
  const auto stats = net.run(1.0, 1.0);
  // (s1,s2) passes 1 of 3 units; (s2,t) carries 1 -> no further loss.
  EXPECT_NEAR(stats[0].delivered, 1.0, 1e-6);
  EXPECT_NEAR(stats[0].dropRate(), 2.0 / 3.0, 1e-6);
}

TEST(Fluid, SplitForwardingDividesLoad) {
  Proto p;
  FluidNetwork net(p.g);
  net.setPrefixOwner(0, p.t);
  net.setForwarding(0, p.s1, {{p.s1t, 0.5}, {p.s1s2, 0.5}});
  net.setForwarding(0, p.s2, {{p.s2t, 1.0}});
  net.addFlow({p.s1, 0, 2.0, 0.0, 1.0});
  const auto stats = net.run(1.0, 1.0);
  EXPECT_NEAR(stats[0].dropRate(), 0.0, 1e-9);  // 1 + 1 over two unit paths
}

TEST(Fluid, RejectsForwardingLoop) {
  Proto p;
  FluidNetwork net(p.g);
  net.setPrefixOwner(0, p.t);
  net.setForwarding(0, p.s1, {{p.s1s2, 1.0}});
  net.setForwarding(0, p.s2, {{p.s2s1, 1.0}});
  net.addFlow({p.s1, 0, 1.0, 0.0, 1.0});
  EXPECT_THROW((void)net.run(1.0, 1.0), std::invalid_argument);
}

TEST(Fluid, RejectsBadForwardingEntries) {
  Proto p;
  FluidNetwork net(p.g);
  net.setPrefixOwner(0, p.t);
  // Fractions must sum to 1.
  EXPECT_THROW(net.setForwarding(0, p.s1, {{p.s1t, 0.4}}),
               std::invalid_argument);
  // Edge must leave the node.
  EXPECT_THROW(net.setForwarding(0, p.s1, {{p.s2t, 1.0}}),
               std::invalid_argument);
  // Flow toward unknown prefix.
  EXPECT_THROW(net.addFlow({p.s1, 9, 1.0, 0.0, 1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The Fig. 12 experiment in miniature: the three TE schemes under the three
// traffic scenarios. COYOTE's per-prefix DAGs avoid all drops.
// ---------------------------------------------------------------------------

struct SchemeStats {
  double drop_scenario1 = 0.0;  // (s1->t1, s2->t2) = (0, 2)
  double drop_scenario2 = 0.0;  // (1, 1)
  double drop_scenario3 = 0.0;  // (2, 0)
};

SchemeStats runSchemes(const Proto& p, FluidNetwork& net) {
  net.addFlow({p.s2, 1, 2.0, 0.0, 5.0});
  net.addFlow({p.s1, 0, 1.0, 5.0, 10.0});
  net.addFlow({p.s2, 1, 1.0, 5.0, 10.0});
  net.addFlow({p.s1, 0, 2.0, 10.0, 15.0});
  const auto stats = net.run(15.0, 1.0);
  SchemeStats out;
  double sent = 0.0, del = 0.0;
  for (int i = 0; i < 5; ++i) {
    sent += stats[i].sent;
    del += stats[i].delivered;
  }
  out.drop_scenario1 = 1.0 - del / sent;
  sent = del = 0.0;
  for (int i = 5; i < 10; ++i) {
    sent += stats[i].sent;
    del += stats[i].delivered;
  }
  out.drop_scenario2 = 1.0 - del / sent;
  sent = del = 0.0;
  for (int i = 10; i < 15; ++i) {
    sent += stats[i].sent;
    del += stats[i].delivered;
  }
  out.drop_scenario3 = 1.0 - del / sent;
  return out;
}

TEST(Fig12, Te1DropsInExtremeScenarios) {
  Proto p;
  FluidNetwork net = p.directNetwork();  // TE1: both direct
  const SchemeStats s = runSchemes(p, net);
  EXPECT_NEAR(s.drop_scenario1, 0.5, 1e-6);
  EXPECT_NEAR(s.drop_scenario2, 0.0, 1e-6);
  EXPECT_NEAR(s.drop_scenario3, 0.5, 1e-6);
}

TEST(Fig12, Te2HelpsOneSideOnly) {
  Proto p;
  // TE2: s1 splits 1/2 direct + 1/2 via s2 (same DAG for both prefixes).
  FluidNetwork net(p.g);
  for (const PrefixId pf : {0, 1}) {
    net.setPrefixOwner(pf, p.t);
    net.setForwarding(pf, p.s1, {{p.s1t, 0.5}, {p.s1s2, 0.5}});
    net.setForwarding(pf, p.s2, {{p.s2t, 1.0}});
  }
  const SchemeStats s = runSchemes(p, net);
  EXPECT_NEAR(s.drop_scenario1, 0.5, 1e-6);   // s2's 2 units still direct
  EXPECT_NEAR(s.drop_scenario2, 0.25, 1e-6);  // (s2,t) carries 1.5
  EXPECT_NEAR(s.drop_scenario3, 0.0, 1e-6);   // s1's 2 units split evenly
}

TEST(Fig12, CoyotePerPrefixDagsDropNothing) {
  Proto p;
  // COYOTE: prefix t1 split at s1; prefix t2 split at s2 (Sec. VII).
  FluidNetwork net(p.g);
  net.setPrefixOwner(0, p.t);
  net.setPrefixOwner(1, p.t);
  net.setForwarding(0, p.s1, {{p.s1t, 0.5}, {p.s1s2, 0.5}});
  net.setForwarding(0, p.s2, {{p.s2t, 1.0}});
  net.setForwarding(1, p.s2, {{p.s2t, 0.5}, {p.s2s1, 0.5}});
  net.setForwarding(1, p.s1, {{p.s1t, 1.0}});
  const SchemeStats s = runSchemes(p, net);
  EXPECT_NEAR(s.drop_scenario1, 0.0, 1e-6);
  EXPECT_NEAR(s.drop_scenario2, 0.0, 1e-6);
  EXPECT_NEAR(s.drop_scenario3, 0.0, 1e-6);
}

}  // namespace
}  // namespace coyote::sim
