// Differential fuzzing of lp::SimplexSolver against the dense textbook
// oracle in lp_reference.hpp: seeded random bounded LPs (status + objective
// must agree), structured post-failure flow LPs with zeroed capacities, and
// warm-start mutation chains (every setRhs/setBounds/setObjective/addRow is
// re-checked against a cold reference solve of the mutated problem) -- the
// class of warm-start corruption bug fixed in PR 3 shows up here as an
// "optimal" status with a wrong objective.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "lp/stats.hpp"
#include "lp_reference.hpp"

namespace coyote {
namespace {

using lp_reference::DenseLp;
using lp_reference::RefResult;

constexpr double kObjTol = 1e-6;

/// One comparison: the engine under test (cold) vs the reference.
void expectAgreement(const DenseLp& dense, const std::string& context) {
  const RefResult ref = lp_reference::solve(dense);
  const lp::LpResult got = lp::solve(dense.toProblem());
  ASSERT_NE(got.status, lp::Status::kIterLimit) << context;
  EXPECT_EQ(lp::toString(got.status), lp::toString(ref.status)) << context;
  if (ref.optimal() && got.optimal()) {
    EXPECT_NEAR(got.objective, ref.objective,
                kObjTol * (1.0 + std::fabs(ref.objective)))
        << context;
  }
}

/// Random bounded LP. Coefficients are halves in [-3, 3] to keep the
/// instances well-conditioned; ~half the variables get finite upper
/// bounds, a few are "failed" (fixed to zero), lower bounds may be
/// negative. Infeasible and unbounded draws are kept: status agreement is
/// part of the contract.
DenseLp randomLp(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> nvars(2, 6), nrows(1, 5);
  std::uniform_int_distribution<int> coef(-6, 6);      // halves
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<int> rhs(-5, 5);
  std::uniform_int_distribution<int> rel(0, 2);

  DenseLp p;
  p.sense = pct(rng) < 50 ? lp::Sense::kMinimize : lp::Sense::kMaximize;
  const int n = nvars(rng);
  for (int j = 0; j < n; ++j) {
    const double c = coef(rng) / 3.0;
    double lo = 0.0;
    if (pct(rng) < 25) lo = coef(rng) / 6.0;  // negative/positive lbs
    double hi = lp::kInfinity;
    if (pct(rng) < 55) hi = lo + std::abs(coef(rng)) / 2.0;
    if (pct(rng) < 10) hi = lo;  // fixed ("failed") variable
    p.addVar(c, lo, hi);
  }
  const int m = nrows(rng);
  for (int i = 0; i < m; ++i) {
    std::vector<double> row(n, 0.0);
    int nonzeros = 0;
    for (int j = 0; j < n; ++j) {
      if (pct(rng) < 60) {
        row[j] = coef(rng) / 2.0;
        nonzeros += row[j] != 0.0;
      }
    }
    if (nonzeros == 0) row[0] = 1.0;
    const int which = rel(rng);
    const lp::Rel r = which == 0   ? lp::Rel::kLe
                      : which == 1 ? lp::Rel::kGe
                                   : lp::Rel::kEq;
    p.addRow(std::move(row), r, rhs(rng));
  }
  return p;
}

TEST(LpFuzz, RandomBoundedLpsAgreeWithTextbookOracle) {
  std::mt19937_64 rng(20260730);
  for (int k = 0; k < 200; ++k) {
    const DenseLp p = randomLp(rng);
    expectAgreement(p, "random instance " + std::to_string(k));
  }
}

/// Post-failure flow instance: min alpha s.t. a unit s->t demand routes on
/// a bidirectional ring of n nodes, f_e <= alpha on every surviving arc and
/// f_e fixed to 0 on failed ones (exactly the OptuEngine::setFailedEdges
/// mutation shape). The optimum is known: with the clockwise path length a
/// and counter-clockwise length n - a, splitting x / 1-x over intact rings
/// gives alpha = 1/2... in general the LP must match the oracle; with a
/// failed arc one direction dies and alpha = 1 on the survivor.
DenseLp ringFlowLp(int n, int s, int t, const std::vector<int>& failed_arcs) {
  // Arcs: 2n of them; arc j (j < n) is i -> i+1 (clockwise, from node j),
  // arc n + j is j+1 -> j (counter-clockwise).
  DenseLp p;
  p.sense = lp::Sense::kMinimize;
  const int alpha = p.addVar(1.0, 0.0, lp::kInfinity);
  std::vector<int> fvar(2 * n);
  for (int j = 0; j < 2 * n; ++j) fvar[j] = p.addVar(0.0, 0.0, lp::kInfinity);
  for (const int j : failed_arcs) {
    p.ub[fvar[j]] = 0.0;  // failed arc: flow pinned to zero
  }
  // Conservation at every node except t.
  for (int v = 0; v < n; ++v) {
    if (v == t) continue;
    std::vector<double> row(p.obj.size(), 0.0);
    row[fvar[v]] += 1.0;                          // out: v -> v+1
    row[fvar[n + ((v + n - 1) % n)]] += 1.0;      // out: v -> v-1
    row[fvar[(v + n - 1) % n]] -= 1.0;            // in: v-1 -> v
    row[fvar[n + v]] -= 1.0;                      // in: v+1 -> v
    p.addRow(std::move(row), lp::Rel::kEq, v == s ? 1.0 : 0.0);
  }
  // Capacity: f_j - alpha <= 0 (unit capacities).
  for (int j = 0; j < 2 * n; ++j) {
    std::vector<double> row(p.obj.size(), 0.0);
    row[fvar[j]] = 1.0;
    row[alpha] = -1.0;
    p.addRow(std::move(row), lp::Rel::kLe, 0.0);
  }
  return p;
}

TEST(LpFuzz, PostFailureRingFlowsAgreeWithTextbookOracle) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> nodes(3, 6), pct(0, 99);
  for (int k = 0; k < 60; ++k) {
    const int n = nodes(rng);
    std::uniform_int_distribution<int> node(0, n - 1);
    const int s = node(rng);
    int t = node(rng);
    if (t == s) t = (s + 1) % n;
    std::vector<int> failed;
    for (int j = 0; j < 2 * n; ++j) {
      if (pct(rng) < 15) failed.push_back(j);
    }
    expectAgreement(ringFlowLp(n, s, t, failed),
                    "ring n=" + std::to_string(n) + " k=" + std::to_string(k));
  }
}

TEST(LpFuzz, IntactRingHasKnownOptimum) {
  // Sanity anchor for the generator itself: unit demand on an intact ring
  // splits across the two arc-disjoint paths; alpha = 1/2 always.
  const DenseLp p = ringFlowLp(5, 0, 2, {});
  const RefResult ref = lp_reference::solve(p);
  ASSERT_TRUE(ref.optimal());
  EXPECT_NEAR(ref.objective, 0.5, 1e-9);
  const lp::LpResult got = lp::solve(p.toProblem());
  ASSERT_TRUE(got.optimal());
  EXPECT_NEAR(got.objective, 0.5, 1e-9);
}

/// Highly-degenerate instance: small-integer coefficients, duplicate rows
/// (the same left-hand side repeated, sometimes under a different relation)
/// and a block of zero right-hand sides. Many basic variables sit exactly
/// on a bound at the optimum, so the Harris two-pass ratio test and the
/// bounded degeneracy perturbation are exercised where they actually
/// differ from the textbook minimum-ratio rule.
DenseLp degenerateLp(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> nvars(2, 5), nrows(2, 4);
  std::uniform_int_distribution<int> coef(-2, 2);
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<int> rel(0, 2);

  DenseLp p;
  p.sense = pct(rng) < 50 ? lp::Sense::kMinimize : lp::Sense::kMaximize;
  const int n = nvars(rng);
  for (int j = 0; j < n; ++j) {
    double hi = lp::kInfinity;
    if (pct(rng) < 50) hi = pct(rng) < 50 ? 0.0 : 1.0;  // degenerate ubs
    p.addVar(coef(rng), 0.0, hi);
  }
  const int m = nrows(rng);
  std::vector<std::vector<double>> lhs;
  for (int i = 0; i < m; ++i) {
    std::vector<double> row(n, 0.0);
    int nonzeros = 0;
    for (int j = 0; j < n; ++j) {
      if (pct(rng) < 70) {
        row[j] = coef(rng);
        nonzeros += row[j] != 0.0;
      }
    }
    if (nonzeros == 0) row[0] = 1.0;
    lhs.push_back(row);
    const int which = rel(rng);
    const lp::Rel r = which == 0   ? lp::Rel::kLe
                      : which == 1 ? lp::Rel::kGe
                                   : lp::Rel::kEq;
    // Zero rhs block: most rows pass through the origin, so the cold
    // all-logical basis is maximally degenerate.
    const double b = pct(rng) < 70 ? 0.0 : coef(rng);
    p.addRow(std::move(row), r, b);
  }
  // Duplicate a few of the rows verbatim (same lhs; relation and rhs may
  // differ), planting exact ties in every ratio test and dependent
  // columns in every refactorization.
  for (const auto& row : lhs) {
    if (pct(rng) >= 50) continue;
    const int which = rel(rng);
    const lp::Rel r = which == 0   ? lp::Rel::kLe
                      : which == 1 ? lp::Rel::kGe
                                   : lp::Rel::kEq;
    std::vector<double> copy = row;
    p.addRow(std::move(copy), r, pct(rng) < 70 ? 0.0 : coef(rng));
  }
  return p;
}

TEST(LpFuzz, DegenerateDuplicateRowLpsAgreeWithTextbookOracle) {
  std::mt19937_64 rng(20260808);
  for (int k = 0; k < 200; ++k) {
    const DenseLp p = degenerateLp(rng);
    expectAgreement(p, "degenerate instance " + std::to_string(k));
  }
}

TEST(LpFuzz, DegenerateWarmChainsAgreeWithColdOracle) {
  // The warm-start shape on the degenerate corpus: rhs perturbations in
  // and out of the zero block, so phase 1 repeatedly restores feasibility
  // across near-singular bases.
  std::mt19937_64 rng(606060);
  std::uniform_int_distribution<int> pct(0, 99), rhs(-2, 2);
  for (int k = 0; k < 40; ++k) {
    DenseLp dense = degenerateLp(rng);
    lp::SimplexSolver session(dense.toProblem());
    (void)session.solve();
    for (int step = 0; step < 6; ++step) {
      std::uniform_int_distribution<int> row(0, dense.numRows() - 1);
      const int i = row(rng);
      const double b = pct(rng) < 60 ? 0.0 : rhs(rng);
      dense.rhs[i] = b;
      session.setRhs(i, b);
      const RefResult ref = lp_reference::solve(dense);
      const lp::LpResult warm = session.solve();
      const std::string context =
          "degenerate chain " + std::to_string(k) + " step " +
          std::to_string(step);
      ASSERT_NE(warm.status, lp::Status::kIterLimit) << context;
      EXPECT_EQ(lp::toString(warm.status), lp::toString(ref.status))
          << context;
      if (ref.optimal() && warm.optimal()) {
        EXPECT_NEAR(warm.objective, ref.objective,
                    kObjTol * (1.0 + std::fabs(ref.objective)))
            << context;
      }
    }
  }
}

TEST(LpFuzz, DualSimplexRhsBoundChainsAgreeWithAlwaysBlandOracle) {
  // The dual simplex's home turf, differentially fuzzed: warm sessions
  // driven through rhs/bound-only mutation chains (the OPTU re-solve and
  // setFailedEdges shapes) with opt.dual_simplex forced on, every step
  // re-checked against the dense always-Bland oracle. The chains must
  // also actually exercise the dual path (dual_pivots > 0 process-wide)
  // and cover status flips in both directions -- in particular chains
  // where a mutation makes the LP infeasible and a later one restores an
  // optimum, the transition the dual-ray verdict and the primal phase-1
  // backstop hand off across.
  std::mt19937_64 rng(90210);
  std::uniform_int_distribution<int> pct(0, 99), rhs(-5, 5);
  lp::SimplexOptions dual_on;
  dual_on.dual_simplex = true;
  const lp::StatsSnapshot before = lp::statsSnapshot();
  int infeasible_to_optimal = 0;
  for (int k = 0; k < 60; ++k) {
    DenseLp dense = randomLp(rng);
    lp::SimplexSolver session(dense.toProblem(), dual_on);
    lp::LpResult prev = session.solve();
    for (int step = 0; step < 8; ++step) {
      std::uniform_int_distribution<int> var(0, dense.numVars() - 1);
      std::uniform_int_distribution<int> row(0, dense.numRows() - 1);
      const int what = pct(rng);
      if (what < 55) {  // rhs mutation
        const int i = row(rng);
        const double b = rhs(rng);
        dense.rhs[i] = b;
        session.setRhs(i, b);
      } else if (what < 80) {  // fail a variable (zeroed capacity)
        const int j = var(rng);
        dense.lb[j] = 0.0;
        dense.ub[j] = 0.0;
        session.setBounds(j, 0.0, 0.0);
      } else {  // restore a variable
        const int j = var(rng);
        dense.lb[j] = 0.0;
        dense.ub[j] = lp::kInfinity;
        session.setBounds(j, 0.0, lp::kInfinity);
      }
      const RefResult ref = lp_reference::solve(dense);
      const lp::LpResult warm = session.solve();
      const std::string context =
          "dual chain " + std::to_string(k) + " step " + std::to_string(step);
      ASSERT_NE(warm.status, lp::Status::kIterLimit) << context;
      EXPECT_EQ(lp::toString(warm.status), lp::toString(ref.status))
          << context;
      if (ref.optimal() && warm.optimal()) {
        EXPECT_NEAR(warm.objective, ref.objective,
                    kObjTol * (1.0 + std::fabs(ref.objective)))
            << context;
      }
      if (prev.status == lp::Status::kInfeasible && warm.optimal()) {
        ++infeasible_to_optimal;
      }
      prev = warm;
    }
  }
  // The corpus is seeded, so these are deterministic floors, not flakes.
  EXPECT_GT((lp::statsSnapshot() - before).dual_pivots, 0);
  EXPECT_GE(infeasible_to_optimal, 3);
}

TEST(LpFuzz, DualOnAndOffSessionsAgreeOnMutationChains) {
  // Engine-vs-engine: two sessions fed byte-identical rhs/bound chains,
  // one with the dual entry path, one always-primal. Status and objective
  // must agree at every step -- the dual path is an optimization, never a
  // semantic fork.
  std::mt19937_64 rng(515151);
  std::uniform_int_distribution<int> pct(0, 99), rhs(-5, 5);
  lp::SimplexOptions dual_on, dual_off;
  dual_on.dual_simplex = true;
  dual_off.dual_simplex = false;
  for (int k = 0; k < 40; ++k) {
    DenseLp dense = randomLp(rng);
    lp::SimplexSolver a(dense.toProblem(), dual_on);
    lp::SimplexSolver b(dense.toProblem(), dual_off);
    (void)a.solve();
    (void)b.solve();
    for (int step = 0; step < 6; ++step) {
      std::uniform_int_distribution<int> var(0, dense.numVars() - 1);
      std::uniform_int_distribution<int> row(0, dense.numRows() - 1);
      if (pct(rng) < 60) {
        const int i = row(rng);
        const double v = rhs(rng);
        a.setRhs(i, v);
        b.setRhs(i, v);
      } else {
        const int j = var(rng);
        const double hi = pct(rng) < 50 ? 0.0 : lp::kInfinity;
        a.setBounds(j, 0.0, hi);
        b.setBounds(j, 0.0, hi);
      }
      const lp::LpResult ra = a.solve();
      const lp::LpResult rb = b.solve();
      const std::string context =
          "on/off chain " + std::to_string(k) + " step " + std::to_string(step);
      EXPECT_EQ(lp::toString(ra.status), lp::toString(rb.status)) << context;
      if (ra.optimal() && rb.optimal()) {
        EXPECT_NEAR(ra.objective, rb.objective,
                    kObjTol * (1.0 + std::fabs(rb.objective)))
            << context;
      }
    }
  }
}

TEST(LpFuzz, WarmStartMutationChainsAgreeWithColdOracle) {
  std::mt19937_64 rng(42424242);
  std::uniform_int_distribution<int> pct(0, 99), rhs(-5, 5), coef(-6, 6);
  for (int k = 0; k < 40; ++k) {
    DenseLp dense = randomLp(rng);
    lp::SimplexSolver session(dense.toProblem());
    (void)session.solve();  // establish a basis (any status is fine)
    for (int step = 0; step < 6; ++step) {
      std::uniform_int_distribution<int> var(0, dense.numVars() - 1);
      std::uniform_int_distribution<int> row(0, dense.numRows() - 1);
      const int what = pct(rng);
      if (what < 25) {  // rhs mutation (the OPTU per-matrix re-solve shape)
        const int i = row(rng);
        const double b = rhs(rng);
        dense.rhs[i] = b;
        session.setRhs(i, b);
      } else if (what < 45) {  // fail a variable (zeroed capacity)
        const int j = var(rng);
        dense.lb[j] = 0.0;
        dense.ub[j] = 0.0;
        session.setBounds(j, 0.0, 0.0);
      } else if (what < 60) {  // restore a variable
        const int j = var(rng);
        dense.lb[j] = 0.0;
        dense.ub[j] = lp::kInfinity;
        session.setBounds(j, 0.0, lp::kInfinity);
      } else if (what < 80) {  // objective mutation (slave-LP edge scan)
        const int j = var(rng);
        const double c = coef(rng) / 3.0;
        dense.obj[j] = c;
        session.setObjective(j, c);
      } else {  // cutting plane
        std::vector<double> r(dense.numVars(), 0.0);
        std::vector<lp::Term> terms;
        for (int j = 0; j < dense.numVars(); ++j) {
          if (pct(rng) < 50) {
            r[j] = coef(rng) / 2.0;
            if (r[j] != 0.0) terms.push_back({j, r[j]});
          }
        }
        if (terms.empty()) {
          r[0] = 1.0;
          terms.push_back({0, 1.0});
        }
        const double b = rhs(rng);
        dense.addRow(std::move(r), lp::Rel::kLe, b);
        session.addRow(std::move(terms), lp::Rel::kLe, b);
      }

      const RefResult ref = lp_reference::solve(dense);
      const lp::LpResult warm = session.solve();
      const std::string context =
          "chain " + std::to_string(k) + " step " + std::to_string(step);
      ASSERT_NE(warm.status, lp::Status::kIterLimit) << context;
      EXPECT_EQ(lp::toString(warm.status), lp::toString(ref.status))
          << context;
      if (ref.optimal() && warm.optimal()) {
        EXPECT_NEAR(warm.objective, ref.objective,
                    kObjTol * (1.0 + std::fabs(ref.objective)))
            << context;
      }
    }
  }
}

}  // namespace
}  // namespace coyote
