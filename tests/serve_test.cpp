// serve::TeService + serve trace generation: protocol round-trips,
// malformed-input survival, thread-count bit-identity of replays, and the
// warm-vs-cold LP pivot advantage the resident engine exists for.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "lp/stats.hpp"
#include "serve/trace.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"
#include "util/json.hpp"

namespace coyote::serve {
namespace {

namespace json = util::json;

/// Small options so every event is fast: tiny pool, few optimizer rounds.
ServeOptions quickOptions() {
  ServeOptions opt;
  opt.pool.max_hotspots = 4;
  opt.pool.random_corners = 2;
  opt.pool.pair_hotspots = 2;
  opt.coyote.splitting.iterations = 60;
  return opt;
}

TeService quickService(const Graph& g, unsigned threads = 0) {
  ServeOptions opt = quickOptions();
  opt.threads = threads;
  return TeService(g, tm::gravityMatrix(g, 1.0), std::move(opt));
}

json::Value parsed(const std::string& line) { return json::parse(line); }

TEST(TeService, ProtocolRoundTrip) {
  const Graph g = topo::runningExample();
  TeService service(g, tm::gravityMatrix(g, 1.0), quickOptions());

  // state: read-only snapshot, seq 1.
  json::Value resp = service.handle(parsed(R"({"op":"state","id":"s0"})"));
  EXPECT_EQ(resp["seq"].asNumber(), 1.0);
  EXPECT_EQ(resp["id"].asString(), "s0");
  EXPECT_EQ(resp["op"].asString(), "state");
  EXPECT_TRUE(resp["ok"].asBool());
  EXPECT_EQ(static_cast<int>(resp["nodes"].asNumber()), g.numNodes());
  EXPECT_GT(resp["pool_size"].asNumber(), 0.0);
  EXPECT_EQ(resp["failed"].asArray().size(), 0u);
  const std::size_t num_schemes = resp["schemes"].asArray().size();
  EXPECT_GE(num_schemes, 4u);

  // what-if: evaluation payload with per-scheme ratios >= 1 (ratios are
  // normalized by the unrestricted optimum on the surviving network).
  const std::string& a = g.nodeName(g.edges()[0].src);
  const std::string& b = g.nodeName(g.edges()[0].dst);
  json::Value what_if = json::Value::object();
  what_if["op"] = "what-if";
  json::Value links = json::Value::array();
  json::Value link = json::Value::array();
  link.push_back(a);
  link.push_back(b);
  links.push_back(std::move(link));
  what_if["links"] = std::move(links);
  resp = service.handle(what_if);
  EXPECT_EQ(resp["seq"].asNumber(), 2.0);
  ASSERT_TRUE(resp["ok"].asBool());
  ASSERT_TRUE(resp["evaluated"].asBool());
  ASSERT_EQ(resp["failed"].asArray().size(), 1u);
  const json::Value& ratios = resp["ratios"];
  EXPECT_EQ(ratios.asObject().size() + resp["unroutable"].asArray().size(),
            num_schemes);
  for (const auto& [key, value] : ratios.asObject()) {
    EXPECT_GE(value.asNumber(), 1.0 - 1e-9) << key;
  }

  // A what-if is read-only: the service still reports no failed links.
  resp = service.handle(parsed(R"({"op":"state"})"));
  EXPECT_EQ(resp["failed"].asArray().size(), 0u);

  // link down: state change, evaluated against the survivors.
  json::Value down = json::Value::object();
  down["op"] = "link";
  json::Value l2 = json::Value::array();
  l2.push_back(a);
  l2.push_back(b);
  down["link"] = std::move(l2);
  down["up"] = false;
  resp = service.handle(down);
  ASSERT_TRUE(resp["ok"].asBool());
  EXPECT_EQ(resp["link"].asString(), a + "-" + b);
  EXPECT_EQ(service.failedLinks().size(), 1u);

  // margin move: box and pool change, configurations stay.
  resp = service.handle(parsed(R"({"op":"margin","value":1.5})"));
  ASSERT_TRUE(resp["ok"].asBool());
  EXPECT_EQ(service.margin(), 1.5);

  // demand update: absolute entries, re-evaluated warm.
  json::Value dem = json::Value::object();
  dem["op"] = "demand";
  json::Value set = json::Value::array();
  json::Value entry = json::Value::array();
  entry.push_back(a);
  entry.push_back(b);
  entry.push_back(0.25);
  set.push_back(std::move(entry));
  dem["set"] = std::move(set);
  resp = service.handle(dem);
  ASSERT_TRUE(resp["ok"].asBool());

  // reoptimize + link restore close the loop.
  resp = service.handle(parsed(R"({"op":"reoptimize"})"));
  ASSERT_TRUE(resp["ok"].asBool());
  json::Value up = down;
  up["up"] = true;
  resp = service.handle(up);
  ASSERT_TRUE(resp["ok"].asBool());
  EXPECT_EQ(service.failedLinks().size(), 0u);
  EXPECT_EQ(service.eventsHandled(), 8);
}

TEST(TeService, MalformedRequestsAreErrorResponsesNotDeath) {
  const Graph g = topo::runningExample();
  TeService service(g, tm::gravityMatrix(g, 1.0), quickOptions());

  const std::vector<std::string> bad = {
      "this is not json",
      R"([1,2,3])",
      R"({"no_op":1})",
      R"({"op":"frobnicate"})",
      R"({"op":"link","link":["NoSuchNode","AlsoNot"],"up":false})",
      R"({"op":"link","link":"v1-v2","up":false})",
      R"({"op":"margin","value":0.5})",
      R"({"op":"margin"})",
      R"({"op":"demand"})",
      R"({"op":"demand","scale":-2})",
      R"({"op":"demand","set":[["v1","v1",1.0]]})",
      R"({"op":"what-if","links":"v1-v2"})",
  };
  for (const std::string& line : bad) {
    json::Value resp = parsed(service.handleLine(line));
    EXPECT_FALSE(resp["ok"].asBool()) << line;
    EXPECT_FALSE(resp["error"].asString().empty()) << line;
  }
  // Every bad request consumed a seq; the daemon is alive and clean.
  json::Value resp = parsed(service.handleLine(R"({"op":"state"})"));
  EXPECT_TRUE(resp["ok"].asBool());
  EXPECT_EQ(resp["seq"].asNumber(), static_cast<double>(bad.size() + 1));
  EXPECT_EQ(resp["failed"].asArray().size(), 0u);

  // Restoring a link that never failed is an error, not a state change.
  const std::string& a = g.nodeName(g.edges()[0].src);
  const std::string& b = g.nodeName(g.edges()[0].dst);
  json::Value up = json::Value::object();
  up["op"] = "link";
  json::Value link = json::Value::array();
  link.push_back(a);
  link.push_back(b);
  up["link"] = std::move(link);
  up["up"] = true;
  EXPECT_FALSE(service.handle(up)["ok"].asBool());
}

TEST(TeService, PartialDemandValidationNeverMutates) {
  const Graph g = topo::runningExample();
  TeService service(g, tm::gravityMatrix(g, 1.0), quickOptions());
  const std::string& a = g.nodeName(0);
  const std::string& b = g.nodeName(1);

  // First entry valid, second invalid: the whole update must be rejected
  // and the first entry must NOT have been applied.
  json::Value dem = json::Value::object();
  dem["op"] = "demand";
  json::Value set = json::Value::array();
  json::Value good = json::Value::array();
  good.push_back(a);
  good.push_back(b);
  good.push_back(123.0);
  set.push_back(std::move(good));
  json::Value bad = json::Value::array();
  bad.push_back(a);
  bad.push_back("NoSuchNode");
  bad.push_back(1.0);
  set.push_back(std::move(bad));
  dem["set"] = std::move(set);
  EXPECT_FALSE(service.handle(dem)["ok"].asBool());

  // A valid follow-up shows the matrix is unchanged (same ratios as a
  // fresh service evaluating the same what-if).
  TeService fresh(g, tm::gravityMatrix(g, 1.0), quickOptions());
  json::Value q = json::Value::object();
  q["op"] = "what-if";
  q["links"] = json::Value::array();
  json::Value r1 = service.handle(q);
  json::Value r2 = fresh.handle(q);
  ASSERT_TRUE(r1["ok"].asBool());
  ASSERT_TRUE(r2["ok"].asBool());
  EXPECT_EQ(r1["ratios"].dump(0), r2["ratios"].dump(0));
}

TEST(ServeTrace, GenerationIsSeededAndDeterministic) {
  const Graph g = topo::runningExample();
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  TraceOptions opt;
  opt.events = 120;
  opt.seed = 7;
  const std::vector<std::string> t1 = generateTrace(g, base, opt);
  const std::vector<std::string> t2 = generateTrace(g, base, opt);
  ASSERT_EQ(t1.size(), 120u);
  EXPECT_EQ(t1, t2);
  opt.seed = 8;
  EXPECT_NE(generateTrace(g, base, opt), t1);

  // Every line is valid protocol input, and the mix covers every op.
  int what_if = 0, demand = 0, link = 0, margin = 0, reopt = 0;
  for (const std::string& line : t1) {
    const json::Value req = json::parse(line);
    const std::string op = req.stringOr("op", "");
    what_if += op == "what-if";
    demand += op == "demand";
    link += op == "link";
    margin += op == "margin";
    reopt += op == "reoptimize";
  }
  EXPECT_EQ(what_if + demand + link + margin + reopt, 120);
  EXPECT_GT(what_if, 0);
  EXPECT_GT(demand, 0);
  EXPECT_GT(link, 0);
  EXPECT_GT(margin, 0);
  EXPECT_GT(reopt, 0);
}

TEST(TeService, ReplayIsBitIdenticalAcrossThreadCounts) {
  const Graph g = topo::runningExample();
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  TraceOptions topt;
  topt.events = 60;
  topt.seed = 3;
  const std::vector<std::string> trace = generateTrace(g, base, topt);

  std::vector<std::string> reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    TeService service = quickService(g, threads);
    const std::vector<std::string> out = service.handleScript(trace);
    ASSERT_EQ(out.size(), trace.size()) << threads << " threads";
    // Every trace event produced a well-formed response; the generator's
    // state events never error (it mirrors the service's failed set).
    for (std::size_t i = 0; i < out.size(); ++i) {
      json::Value resp = json::parse(out[i]);
      EXPECT_TRUE(resp["ok"].asBool()) << out[i];
      EXPECT_EQ(resp["seq"].asNumber(), static_cast<double>(i + 1));
    }
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << threads << " threads";
    }
  }
}

TEST(TeService, WarmResidentEngineBeatsColdOnLinkFlaps) {
  const Graph g = topo::grid(3, 3);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const std::vector<std::string> trace = linkFlapTrace(g, 8);
  ASSERT_EQ(trace.size(), 16u);

  const auto replay = [&]() {
    TeService service(g, base, quickOptions());
    const lp::StatsSnapshot before = lp::statsSnapshot();
    const std::vector<std::string> out = service.handleScript(trace);
    for (const std::string& line : out) {
      EXPECT_TRUE(json::parse(line)["ok"].asBool()) << line;
    }
    return lp::statsSnapshot() - before;
  };

  const lp::StatsSnapshot warm = replay();
  ASSERT_EQ(::setenv("COYOTE_LP_COLD", "1", 1), 0);
  const lp::StatsSnapshot cold = replay();
  ::unsetenv("COYOTE_LP_COLD");

  // Far fewer pivots: each flap re-enters the resident engine as a
  // bounds mutation on a warm basis (dual-simplex repaired). The warm
  // run may report more solve() calls -- the OPTU decomposition
  // pre-solve's block LPs count too (COYOTE_LP_COLD disables the
  // pre-solve along with warm chaining) -- so the bar is on total
  // pivots, which include the block solves' work.
  EXPECT_GE(warm.solves, cold.solves);
  EXPECT_GE(cold.iterations, warm.iterations * 3 / 2)
      << "warm pivots " << warm.iterations << " vs cold " << cold.iterations;
}

TEST(TeService, WhatIfChunkIsFixed) {
  // The chunk size is part of the determinism contract (responses must
  // not depend on the thread count); a change is a deliberate,
  // baseline-invalidating decision.
  EXPECT_EQ(TeService::kWhatIfChunk, 4);
}

}  // namespace
}  // namespace coyote::serve
