// The sparse revised-simplex session engine: warm starts, mutations
// (setObjective / setRhs / setBounds / addRow), bounded-variable corner
// cases, degenerate/cycling instances, and -- under COYOTE_FULL=1 -- a
// warm-vs-cold OPTU property sweep over every registered scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <random>

#include "core/dag_builder.hpp"
#include "exp/scenario.hpp"
#include "lp/lp.hpp"
#include "lp/stats.hpp"
#include "routing/config.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "tm/traffic_matrix.hpp"
#include "tm/uncertainty.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace coyote::lp {
namespace {

constexpr double kTol = 1e-7;

LpProblem productionPlan() {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> (3, 1.5), obj 21.
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(5.0);
  const int y = p.addVar(4.0);
  p.addConstraint({{x, 6.0}, {y, 4.0}}, Rel::kLe, 24.0);
  p.addConstraint({{x, 1.0}, {y, 2.0}}, Rel::kLe, 6.0);
  return p;
}

TEST(SimplexSession, SolveMatchesOneShot) {
  SimplexSolver session(productionPlan());
  const LpResult warm = session.solve();
  const LpResult cold = solve(productionPlan());
  ASSERT_EQ(warm.status, Status::kOptimal);
  EXPECT_NEAR(warm.objective, 21.0, kTol);
  EXPECT_DOUBLE_EQ(warm.objective, cold.objective);
  EXPECT_FALSE(warm.basis.empty());
  EXPECT_EQ(warm.iterations, warm.stats.iterations);
}

TEST(SimplexSession, WarmObjectiveChangeAgreesWithCold) {
  SimplexSolver session(productionPlan());
  ASSERT_EQ(session.solve().status, Status::kOptimal);

  session.setObjective(0, 1.0);  // max x + 4y now
  const LpResult warm = session.solve();
  LpProblem changed = productionPlan();
  changed.setObjective(0, 1.0);
  const LpResult cold = solve(changed);
  ASSERT_EQ(warm.status, Status::kOptimal);
  ASSERT_EQ(cold.status, Status::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective,
              kTol * (1.0 + std::abs(cold.objective)));
  // The re-solve should be cheaper than the cold solve (few pivots from a
  // retained basis; never more than the cold iteration count + slack).
  EXPECT_LE(warm.stats.phase1_iters, 0);
}

TEST(SimplexSession, WarmRhsChangeAgreesWithCold) {
  SimplexSolver session(productionPlan());
  ASSERT_EQ(session.solve().status, Status::kOptimal);

  session.setRhs(0, 12.0);
  session.setRhs(1, 9.0);
  const LpResult warm = session.solve();
  LpProblem changed(Sense::kMaximize);
  const int x = changed.addVar(5.0);
  const int y = changed.addVar(4.0);
  changed.addConstraint({{x, 6.0}, {y, 4.0}}, Rel::kLe, 12.0);
  changed.addConstraint({{x, 1.0}, {y, 2.0}}, Rel::kLe, 9.0);
  const LpResult cold = solve(changed);
  ASSERT_EQ(warm.status, Status::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective,
              kTol * (1.0 + std::abs(cold.objective)));
}

TEST(SimplexSession, WarmBoundChangeAgreesWithCold) {
  SimplexSolver session(productionPlan());
  ASSERT_EQ(session.solve().status, Status::kOptimal);

  session.setBounds(0, 0.0, 1.5);  // cap x
  const LpResult warm = session.solve();
  ASSERT_EQ(warm.status, Status::kOptimal);
  // x pinned to its (binding) cap; y fills the second constraint.
  EXPECT_NEAR(warm.x[0], 1.5, kTol);
  EXPECT_NEAR(warm.objective, 5.0 * 1.5 + 4.0 * 2.25, 1e-6);

  session.setBounds(0, 0.7, 0.7);  // ub == lb: fixed variable
  const LpResult fixed = session.solve();
  ASSERT_EQ(fixed.status, Status::kOptimal);
  EXPECT_NEAR(fixed.x[0], 0.7, kTol);

  session.setBounds(0, 0.0, kInfinity);  // back to unbounded above
  const LpResult relaxed = session.solve();
  ASSERT_EQ(relaxed.status, Status::kOptimal);
  EXPECT_NEAR(relaxed.objective, 21.0, 1e-6);
}

TEST(SimplexSession, AddRowCutsTheOptimum) {
  SimplexSolver session(productionPlan());
  const LpResult before = session.solve();
  ASSERT_EQ(before.status, Status::kOptimal);
  EXPECT_NEAR(before.objective, 21.0, kTol);

  // A violated cutting plane through the old optimum (3, 1.5).
  const int row = session.addRow({{0, 1.0}, {1, 1.0}}, Rel::kLe, 3.0);
  EXPECT_EQ(row, 2);
  const LpResult after = session.solve();
  ASSERT_EQ(after.status, Status::kOptimal);
  EXPECT_LT(after.objective, before.objective - 1e-6);
  EXPECT_LE(after.x[0] + after.x[1], 3.0 + kTol);

  LpProblem cut = productionPlan();
  cut.addConstraint({{0, 1.0}, {1, 1.0}}, Rel::kLe, 3.0);
  const LpResult cold = solve(cut);
  EXPECT_NEAR(after.objective, cold.objective,
              kTol * (1.0 + std::abs(cold.objective)));
}

TEST(SimplexSession, RetainedBasisSurvivesInfeasibleInterlude) {
  SimplexSolver session(productionPlan());
  ASSERT_EQ(session.solve().status, Status::kOptimal);
  session.setRhs(0, -1.0);  // 6x + 4y <= -1 with x,y >= 0: infeasible
  EXPECT_EQ(session.solve().status, Status::kInfeasible);
  session.setRhs(0, 24.0);
  const LpResult back = session.solve();
  ASSERT_EQ(back.status, Status::kOptimal);
  EXPECT_NEAR(back.objective, 21.0, 1e-6);
}

TEST(SimplexSession, ExternalBasisWarmStartsAClone) {
  SimplexSolver a(productionPlan());
  const LpResult ra = a.solve();
  ASSERT_EQ(ra.status, Status::kOptimal);

  SimplexSolver b(productionPlan());
  b.setBasis(ra.basis);
  const LpResult rb = b.solve();
  ASSERT_EQ(rb.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(rb.objective, ra.objective);
  EXPECT_EQ(rb.stats.iterations, 0);  // already optimal
}

TEST(SimplexSession, StaleBasisAfterBoundFlipIsRepaired) {
  // Install the optimal basis, then change bounds so it is primal
  // infeasible: the composite phase 1 must repair it, not crash.
  SimplexSolver session(productionPlan());
  const LpResult first = session.solve();
  ASSERT_EQ(first.status, Status::kOptimal);
  session.setBounds(0, 2.9, 3.2);
  session.setBounds(1, 0.0, 0.4);
  const LpResult repaired = session.solve();
  ASSERT_EQ(repaired.status, Status::kOptimal);
  EXPECT_GE(repaired.x[0], 2.9 - kTol);
  EXPECT_LE(repaired.x[1], 0.4 + kTol);
}

TEST(SimplexEngine, BealeCyclingInstanceTerminates) {
  // Beale's classic cycling example: Dantzig pricing cycles without an
  // anti-cycling rule; the stall detector must fall back to Bland and
  // terminate at the optimum (objective -0.05).
  SimplexOptions opt;
  opt.stall_limit = 6;  // force the fallback quickly
  LpProblem p(Sense::kMinimize);
  const int x1 = p.addVar(-0.75);
  const int x2 = p.addVar(150.0);
  const int x3 = p.addVar(-0.02);
  const int x4 = p.addVar(6.0);
  p.addConstraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                  Rel::kLe, 0.0);
  p.addConstraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                  Rel::kLe, 0.0);
  p.addConstraint({{x3, 1.0}}, Rel::kLe, 1.0);
  const LpResult r = solve(p, opt);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(SimplexEngine, DevexAndBlandAgreeOnBealeInstance) {
  // The same instance under every entering rule: devex, Dantzig, and an
  // immediate Bland fallback (stall_limit = 0 trips it on the first
  // degenerate pivot). All three must land on the same optimum.
  LpProblem p(Sense::kMinimize);
  const int x1 = p.addVar(-0.75);
  const int x2 = p.addVar(150.0);
  const int x3 = p.addVar(-0.02);
  const int x4 = p.addVar(6.0);
  p.addConstraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                  Rel::kLe, 0.0);
  p.addConstraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                  Rel::kLe, 0.0);
  p.addConstraint({{x3, 1.0}}, Rel::kLe, 1.0);

  for (const Pricing pricing : {Pricing::kDevex, Pricing::kDantzig}) {
    for (const int stall_limit : {0, 6, 2000}) {
      SimplexOptions opt;
      opt.pricing = pricing;
      opt.stall_limit = stall_limit;
      const LpResult r = solve(p, opt);
      ASSERT_EQ(r.status, Status::kOptimal)
          << "pricing=" << (pricing == Pricing::kDevex ? "devex" : "dantzig")
          << " stall_limit=" << stall_limit;
      EXPECT_NEAR(r.objective, -0.05, 1e-9)
          << "pricing=" << (pricing == Pricing::kDevex ? "devex" : "dantzig")
          << " stall_limit=" << stall_limit;
    }
  }
}

TEST(SimplexEngine, HarrisRatioTestSolvesDegenerateVertices) {
  {  // Eight redundant hyperplanes through the optimum: every ratio test
    // ties, so the Harris second pass picks among equal-step blockers by
    // pivot magnitude. Optimum is x = (2, 0, 2), objective 4 + 2eps... the
    // exact value: max x+y+z with x+ky+z <= 4 (k=1..8), x <= 2 -> (2,0,2).
    LpProblem p(Sense::kMaximize);
    const int x = p.addVar(1.0);
    const int y = p.addVar(1.0);
    const int z = p.addVar(1.0);
    for (int k = 1; k <= 8; ++k) {
      p.addConstraint({{x, 1.0}, {y, static_cast<double>(k)}, {z, 1.0}},
                      Rel::kLe, 4.0);
    }
    p.addConstraint({{x, 1.0}}, Rel::kLe, 2.0);
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.objective, 4.0, kTol);
  }
  {  // Near-degenerate: twelve parallel copies of x + y <= 3 with rhs
    // values split by 1e-10. Any entering step hits the whole cluster at
    // once; the relaxed Harris first pass must treat it as one blocker
    // instead of grinding through 1e-10-sized steps. Optimum: y at its
    // cap, x fills the tightest copy -> (1, 2), objective 5.
    LpProblem p(Sense::kMaximize);
    const int x = p.addVar(1.0);
    const int y = p.addVar(2.0, 0.0, 2.0);
    for (int k = 0; k < 12; ++k) {
      p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 3.0 + 1e-10 * k);
    }
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.objective, 5.0, 1e-6);
  }
  {  // Fully degenerate origin (all rhs zero): phase 2 starts on a vertex
    // where every basic variable sits exactly on its bound. The engine
    // must prove optimality (objective 0) without cycling.
    LpProblem p(Sense::kMaximize);
    const int x = p.addVar(1.0);
    const int y = p.addVar(1.0);
    p.addConstraint({{x, 1.0}, {y, -1.0}}, Rel::kLe, 0.0);
    p.addConstraint({{x, -1.0}, {y, 1.0}}, Rel::kLe, 0.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 0.0);
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.objective, 0.0, kTol);
  }
}

TEST(SimplexEngine, LongWarmChainExercisesLuUpdatesAndRefactorization) {
  // 96 mutations against one retained session with an aggressive
  // refactorization cadence (refactor_every = 4), so the chain crosses the
  // update-count threshold dozens of times and every Forrest-Tomlin update
  // path runs between crossings. Every re-solve is checked against an
  // independent cold solve of the mutated problem.
  SimplexOptions opt;
  opt.refactor_every = 4;
  LpProblem p(Sense::kMaximize);
  constexpr int kVars = 8;
  for (int j = 0; j < kVars; ++j) {
    p.addVar(1.0 + 0.1 * j, 0.0, 4.0);
  }
  for (int i = 0; i + 2 < kVars; ++i) {  // overlapping band rows
    p.addConstraint({{i, 1.0}, {i + 1, 1.0}, {i + 2, 1.0}}, Rel::kLe, 5.0);
  }
  SimplexSolver session(p, opt);
  ASSERT_EQ(session.solve().status, Status::kOptimal);

  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> pick(0, 99);
  std::uniform_real_distribution<double> rhs(1.0, 8.0);
  std::uniform_real_distribution<double> coef(-1.0, 3.0);
  int total_updates = 0;
  int total_refactors = 0;
  for (int step = 0; step < 96; ++step) {
    const int what = pick(rng);
    if (what < 50) {  // rhs swing: forces pivots to restore feasibility
      const int i = what % p.numRows();
      const double b = rhs(rng);
      p.setConstraintRhs(i, b);
      session.setRhs(i, b);
    } else if (what < 80) {  // objective swing: forces phase-2 pivots
      const int j = what % kVars;
      const double c = coef(rng);
      p.setObjective(j, c);
      session.setObjective(j, c);
    } else {  // bound squeeze / release
      const int j = what % kVars;
      const double ub = what < 90 ? 0.5 : 4.0;
      p.setVarBounds(j, 0.0, ub);
      session.setBounds(j, 0.0, ub);
    }
    const LpResult warm = session.solve();
    const LpResult cold = solve(p, opt);
    ASSERT_EQ(warm.status, cold.status) << "step " << step;
    if (cold.optimal()) {
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-7 * (1.0 + std::abs(cold.objective)))
          << "step " << step;
    }
    total_updates += warm.stats.lu_updates;
    total_refactors += warm.stats.refactorizations;
  }
  // The chain genuinely exercised the Forrest-Tomlin machinery: updates
  // happened, and the cadence threshold forced mid-solve refactorizations
  // well beyond the one-per-warm-start minimum.
  EXPECT_GT(total_updates, 32);
  EXPECT_GT(total_refactors, 8);
}

TEST(SimplexEngine, HighlyDegenerateWarmRestartsStayOptimal) {
  // Many redundant constraints through one vertex; re-solves with permuted
  // objectives from the retained basis must keep matching cold solves.
  std::mt19937_64 rng(7);
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(1.0);
  const int y = p.addVar(1.0);
  const int z = p.addVar(1.0);
  for (int k = 1; k <= 8; ++k) {
    p.addConstraint({{x, 1.0}, {y, static_cast<double>(k)}, {z, 1.0}},
                    Rel::kLe, 4.0);
  }
  p.addConstraint({{x, 1.0}}, Rel::kLe, 2.0);
  SimplexSolver session(p);
  std::uniform_real_distribution<double> coef(-1.0, 2.0);
  for (int round = 0; round < 20; ++round) {
    const double cx = coef(rng), cy = coef(rng), cz = coef(rng);
    session.setObjective(x, cx);
    session.setObjective(y, cy);
    session.setObjective(z, cz);
    LpProblem cold_p = p;
    cold_p.setObjective(x, cx);
    cold_p.setObjective(y, cy);
    cold_p.setObjective(z, cz);
    const LpResult warm = session.solve();
    const LpResult cold = solve(cold_p);
    ASSERT_EQ(warm.status, Status::kOptimal) << "round " << round;
    ASSERT_EQ(cold.status, Status::kOptimal) << "round " << round;
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-7 * (1.0 + std::abs(cold.objective)))
        << "round " << round;
  }
}

TEST(SimplexEngine, BoundedVariableCornerCases) {
  {  // All variables fixed (lb == ub): the LP is a point.
    LpProblem p(Sense::kMinimize);
    const int x = p.addVar(3.0, 2.0, 2.0);
    const int y = p.addVar(-1.0, 0.5, 0.5);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 10.0);
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_DOUBLE_EQ(r.x[x], 2.0);
    EXPECT_DOUBLE_EQ(r.x[y], 0.5);
    EXPECT_NEAR(r.objective, 5.5, kTol);
  }
  {  // Fixed variable conflicting with a constraint: infeasible.
    LpProblem p(Sense::kMinimize);
    const int x = p.addVar(1.0, 2.0, 2.0);
    p.addConstraint({{x, 1.0}}, Rel::kLe, 1.0);
    EXPECT_EQ(solve(p).status, Status::kInfeasible);
  }
  {  // Maximize along an unbounded-above variable: unbounded.
    LpProblem p(Sense::kMaximize);
    const int x = p.addVar(1.0, 0.0, kInfinity);
    p.addConstraint({{x, -1.0}}, Rel::kLe, 5.0);
    EXPECT_EQ(solve(p).status, Status::kUnbounded);
  }
  {  // Negative lower bounds; optimum at a mixed-bound vertex.
    LpProblem p(Sense::kMinimize);
    const int x = p.addVar(1.0, -3.0, 7.0);
    const int y = p.addVar(-2.0, -1.0, 4.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kGe, -2.0);
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.x[x], -3.0, kTol);  // pushed to its lower bound
    EXPECT_NEAR(r.x[y], 4.0, kTol);   // pulled to its upper bound
    EXPECT_NEAR(r.objective, -11.0, kTol);
  }
  {  // A bound flip is the optimal move (no basis change needed).
    LpProblem p(Sense::kMaximize);
    const int x = p.addVar(1.0, 0.0, 2.0);
    p.addConstraint({{x, 1.0}}, Rel::kLe, 100.0);  // slack never binds
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, Status::kOptimal);
    EXPECT_NEAR(r.x[x], 2.0, kTol);
  }
}

TEST(SimplexEngine, StatsAccumulateGlobally) {
  const StatsSnapshot before = statsSnapshot();
  (void)solve(productionPlan());
  const StatsSnapshot delta = statsSnapshot() - before;
  EXPECT_EQ(delta.solves, 1);
  EXPECT_GT(delta.iterations, 0);
  EXPECT_GE(delta.refactorizations, 1);
  EXPECT_EQ(delta.iter_limit_solves, 0);
  EXPECT_GE(delta.seconds, 0.0);
}

TEST(SimplexEngine, IterationLimitIsCounted) {
  const StatsSnapshot before = statsSnapshot();
  SimplexOptions opt;
  opt.max_iterations = 1;
  LpProblem p = productionPlan();
  const LpResult r = solve(p, opt);
  EXPECT_EQ(r.status, Status::kIterLimit);
  EXPECT_EQ((statsSnapshot() - before).iter_limit_solves, 1);
}

// --- Worst-case oracle: degenerate box semantics. ------------------------

TEST(WorstCaseOracleTest, UnroutableBoxLowerBoundPinsLambdaToZero) {
  // A box pair with a positive lower bound the DAGs cannot carry admits
  // no lambda > 0 scaling of the box: every edge's worst-case ratio is 0
  // (the legacy per-edge LP reached the same verdict through a pinned
  // demand variable; the oracle must not silently drop the pair).
  const Graph g = exp::ScenarioRegistry::global()
                      .find("running-example")
                      ->topology.build();
  const int n = g.numNodes();
  // DAGs that route nothing anywhere: destination 0 only, no edges.
  DagSet dags;
  for (NodeId dest = 0; dest < n; ++dest) {
    dags.emplace_back(g, dest, std::vector<EdgeId>{});
  }
  auto shared = std::make_shared<const DagSet>(std::move(dags));
  routing::RoutingConfig cfg(g, shared);

  tm::TrafficMatrix lo(n), hi(n);
  lo.set(1, 0, 0.5);  // mandatory demand no empty DAG can route
  hi.set(1, 0, 1.0);
  const tm::DemandBounds box{lo, hi};
  const auto wc = routing::findWorstCaseDemand(g, cfg, &box);
  EXPECT_DOUBLE_EQ(wc.ratio, 0.0);
  EXPECT_DOUBLE_EQ(wc.demand.total(), 0.0);
}

// --- OPTU engine: warm-start chains vs independent cold solves. ----------

TEST(OptuEngineTest, BatchIsIdenticalForAnyThreadCount) {
  const Graph g = exp::ScenarioRegistry::global()
                      .find("running-example")
                      ->topology.build();
  const auto dags = core::augmentedDagsShared(g);
  std::vector<tm::TrafficMatrix> pool;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dem(0.0, 2.0);
  for (int k = 0; k < 37; ++k) {
    tm::TrafficMatrix d(g.numNodes());
    for (NodeId s = 0; s < g.numNodes(); ++s) {
      for (NodeId t = 0; t < g.numNodes(); ++t) {
        if (s != t && rng() % 3 != 0) d.set(s, t, dem(rng));
      }
    }
    pool.push_back(std::move(d));
  }

  std::vector<std::vector<double>> results;
  for (const unsigned threads : {1u, 2u, 8u}) {
    routing::OptuEngine engine(g, dags);
    util::ThreadPool tp(threads);
    results.push_back(engine.utilizationBatch(pool, tp));
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    // Chunking is fixed, so the warm-start chains -- and therefore every
    // solve -- are bit-identical no matter how many threads run them.
    EXPECT_DOUBLE_EQ(results[0][i], results[1][i]) << "matrix " << i;
    EXPECT_DOUBLE_EQ(results[0][i], results[2][i]) << "matrix " << i;
  }
  // And the chained solves agree with independent cold solves to LP tol.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i].total() <= 0.0) continue;
    const double cold = routing::optimalUtilization(g, *dags, pool[i]);
    EXPECT_NEAR(results[0][i], cold, 1e-7 * (1.0 + cold)) << "matrix " << i;
  }
}

TEST(OptuEngineTest, DecomposedBatchIsIdenticalForAnyThreadCount) {
  // Same contract as above, but on a topology large enough to cross
  // kDecompMinRows so the block-angular pre-solve actually runs: the
  // decomposed path must be bit-identical for any thread count too
  // (blocks are chunked fixed-size, prices are updated in edge order).
  const Graph g = exp::TopologySpec::zoo("Geant").build();
  const auto dags = core::augmentedDagsShared(g);
  std::vector<tm::TrafficMatrix> pool;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dem(0.0, 40.0);
  for (int k = 0; k < 9; ++k) {
    tm::TrafficMatrix d(g.numNodes());
    for (NodeId s = 0; s < g.numNodes(); ++s) {
      for (NodeId t = 0; t < g.numNodes(); ++t) {
        if (s != t && rng() % 4 == 0) d.set(s, t, dem(rng));
      }
    }
    pool.push_back(std::move(d));
  }

  const StatsSnapshot before = statsSnapshot();
  std::vector<std::vector<double>> results;
  for (const unsigned threads : {1u, 2u, 8u}) {
    routing::OptuEngine engine(g, dags);
    util::ThreadPool tp(threads);
    results.push_back(engine.utilizationBatch(pool, tp));
  }
  if (routing::OptuEngine::coldOverride() ||
      !routing::OptuEngine::decompEnabled()) {
    GTEST_SKIP() << "decomposition disabled by environment";
  }
  // The decomposed pre-solve ran (once per engine, seeding the batch).
  EXPECT_GE((statsSnapshot() - before).decomp_rounds,
            3 * routing::OptuEngine::kDecompRounds);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[0][i], results[1][i]) << "matrix " << i;
    EXPECT_DOUBLE_EQ(results[0][i], results[2][i]) << "matrix " << i;
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i].total() <= 0.0) continue;
    const double cold = routing::optimalUtilization(g, *dags, pool[i]);
    EXPECT_NEAR(results[0][i], cold, 1e-7 * (1.0 + cold)) << "matrix " << i;
  }
}

// --- COYOTE_FULL=1: warm-vs-cold OPTU across every registered scenario. ---

TEST(OptuEngineTest, WarmAndColdAgreeAcrossAllScenarios) {
  if (!util::envFlag("COYOTE_FULL")) {
    GTEST_SKIP() << "set COYOTE_FULL=1 for the full registry sweep";
  }
  int checked = 0;
  for (const exp::Scenario& s : exp::ScenarioRegistry::global().all()) {
    Graph g;
    try {
      g = s.topology.build();
    } catch (const std::exception&) {
      continue;  // network-list kinds have no single topology
    }
    if (g.numNodes() == 0) continue;
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = s.demand.build(g);
    if (base.total() <= 0.0) continue;

    // Warm chain: base, then margin-scaled variants, re-solved by rhs
    // mutation against the retained basis.
    routing::OptuEngine engine(g, dags);
    const double w1 = engine.utilization(base);
    tm::TrafficMatrix scaled = base;
    scaled.scale(1.7);
    const double w2 = engine.utilization(scaled);
    tm::TrafficMatrix perturbed = base;
    perturbed.scale(0.4);
    const double w3 = engine.utilization(perturbed);

    const double c1 = routing::optimalUtilization(g, *dags, base);
    const double c2 = routing::optimalUtilization(g, *dags, scaled);
    const double c3 = routing::optimalUtilization(g, *dags, perturbed);
    ASSERT_NEAR(w1, c1, 1e-7 * (1.0 + c1)) << s.id;
    ASSERT_NEAR(w2, c2, 1e-7 * (1.0 + c2)) << s.id;
    ASSERT_NEAR(w3, c3, 1e-7 * (1.0 + c3)) << s.id;
    // OPTU is positively homogeneous: the scaled solves cross-check.
    EXPECT_NEAR(w2, 1.7 * w1, 1e-6 * (1.0 + w2)) << s.id;
    EXPECT_NEAR(w3, 0.4 * w1, 1e-6 * (1.0 + w3)) << s.id;
    ++checked;
  }
  EXPECT_GT(checked, 40);  // most of the 69 registered scenarios
}

TEST(OptuEngineTest, DecomposedAndMonolithicAgreeAcrossAllScenarios) {
  if (!util::envFlag("COYOTE_FULL")) {
    GTEST_SKIP() << "set COYOTE_FULL=1 for the full registry sweep";
  }
  // The block-angular pre-solve only seeds a basis; the crossover hands
  // the full LP to the exact simplex, so the decomposed first solve must
  // match the monolithic one to solver tolerance, not just "roughly".
  // decompEnabled() reads the environment live, so toggling the knob
  // between engines flips the path within one process.
  const char* saved = std::getenv("COYOTE_LP_DECOMP");
  const std::string saved_val = saved != nullptr ? saved : "";
  int checked = 0;
  int decomposed = 0;
  for (const exp::Scenario& s : exp::ScenarioRegistry::global().all()) {
    Graph g;
    try {
      g = s.topology.build();
    } catch (const std::exception&) {
      continue;  // network-list kinds have no single topology
    }
    if (g.numNodes() == 0) continue;
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = s.demand.build(g);
    if (base.total() <= 0.0) continue;

    const StatsSnapshot before = statsSnapshot();
    setenv("COYOTE_LP_DECOMP", "1", 1);
    routing::OptuEngine decomp_engine(g, dags);
    const double with_decomp = decomp_engine.utilization(base);
    if ((statsSnapshot() - before).decomp_rounds > 0) ++decomposed;

    setenv("COYOTE_LP_DECOMP", "0", 1);
    routing::OptuEngine mono_engine(g, dags);
    const double monolithic = mono_engine.utilization(base);

    ASSERT_NEAR(with_decomp, monolithic, 1e-9 * (1.0 + monolithic)) << s.id;
    ++checked;
  }
  if (saved != nullptr) {
    setenv("COYOTE_LP_DECOMP", saved_val.c_str(), 1);
  } else {
    unsetenv("COYOTE_LP_DECOMP");
  }
  EXPECT_GT(checked, 40);
  // The sweep exercised the decomposed path on the larger topologies,
  // not just sub-threshold networks that fall back to monolithic.
  EXPECT_GT(decomposed, 10);
}

}  // namespace
}  // namespace coyote::lp
