#include <gtest/gtest.h>

#include <cmath>

#include "core/splitting_optimizer.hpp"
#include "hardness/gadgets.hpp"
#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/propagation.hpp"

namespace coyote::hardness {
namespace {

TEST(Bipartition, InstanceShape) {
  const BipartitionInstance inst = makeBipartitionInstance({1.0, 2.0, 3.0});
  EXPECT_EQ(inst.graph.numNodes(), 3 + 3 * 3);
  EXPECT_DOUBLE_EQ(inst.sum, 6.0);
  // Per gadget: 3 bidirectional internal links (6 edges) + 3 directed.
  EXPECT_EQ(inst.graph.numEdges(), 3 * 9);
  EXPECT_THROW((void)makeBipartitionInstance({}), std::invalid_argument);
  EXPECT_THROW((void)makeBipartitionInstance({-1.0}), std::invalid_argument);
}

TEST(Bipartition, ExtremeDemandsAreRoutableAtUnitUtilization) {
  const BipartitionInstance inst = makeBipartitionInstance({1.0, 1.0});
  const auto [d1, d2] = extremeDemands(inst);
  // OPTU over all routings is exactly 1 (min-cut = 2*SUM, Sec. IV-A).
  EXPECT_NEAR(routing::optimalUtilizationUnrestricted(inst.graph, d1), 1.0,
              1e-6);
  EXPECT_NEAR(routing::optimalUtilizationUnrestricted(inst.graph, d2), 1.0,
              1e-6);
}

TEST(Bipartition, Lemma2RoutingAchievesFourThirdsOnPositiveInstance) {
  // {1,1,2} admits the even bipartition P1 = {2}, P2 = {1,1}.
  const BipartitionInstance inst = makeBipartitionInstance({1.0, 1.0, 2.0});
  const routing::RoutingConfig cfg =
      lemma2Routing(inst, {false, false, true});
  const auto [d1, d2] = extremeDemands(inst);
  EXPECT_NEAR(routing::maxLinkUtilization(inst.graph, cfg, d1), 4.0 / 3.0,
              1e-9);
  EXPECT_NEAR(routing::maxLinkUtilization(inst.graph, cfg, d2), 4.0 / 3.0,
              1e-9);
}

TEST(Bipartition, UnevenPartitionOfPositiveInstanceIsWorse) {
  // Same instance, but the unbalanced partition P1 = {1} (sum 1 vs 3).
  const BipartitionInstance inst = makeBipartitionInstance({1.0, 1.0, 2.0});
  const routing::RoutingConfig cfg = lemma2Routing(inst, {true, false, false});
  const auto [d1, d2] = extremeDemands(inst);
  const double worst =
      std::max(routing::maxLinkUtilization(inst.graph, cfg, d1),
               routing::maxLinkUtilization(inst.graph, cfg, d2));
  EXPECT_GT(worst, 4.0 / 3.0 + 1e-9);
}

TEST(Bipartition, NegativeInstanceCannotReachFourThirds) {
  // {1,3} has no even bipartition (Lemma 3): whichever way the gadget edges
  // are oriented, optimizing the splitting ratios stays above 4/3.
  const BipartitionInstance inst = makeBipartitionInstance({1.0, 3.0});
  const auto [d1, d2] = extremeDemands(inst);
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < 4; ++mask) {
    const std::vector<bool> orient{(mask & 1) != 0, (mask & 2) != 0};
    const auto dags = bipartitionDags(inst, orient);
    // Normalize by the unrestricted optimum (= 1 for D1/D2): the quantity
    // Lemma 3 reasons about.
    routing::PerformanceEvaluator eval(inst.graph, dags, {},
                                       routing::Normalization::kUnrestricted);
    eval.addMatrix(d1);
    eval.addMatrix(d2);
    core::SplittingOptions opt;
    opt.iterations = 800;
    const auto cfg = core::optimizeSplitting(
        inst.graph, eval,
        routing::RoutingConfig::uniform(inst.graph, dags), opt);
    best = std::min(best, eval.ratioFor(cfg));
  }
  EXPECT_GT(best, 4.0 / 3.0 + 0.01);
}

TEST(Bipartition, PositiveInstanceOptimizerMatchesLemma2) {
  // {1,1}: P1 = {1}, P2 = {1}. The optimizer over the Lemma 2 DAG should
  // reach (close to) the 4/3 guarantee.
  const BipartitionInstance inst = makeBipartitionInstance({1.0, 1.0});
  const auto [d1, d2] = extremeDemands(inst);
  const auto dags = bipartitionDags(inst, {true, false});
  routing::PerformanceEvaluator eval(inst.graph, dags, {},
                                     routing::Normalization::kUnrestricted);
  eval.addMatrix(d1);
  eval.addMatrix(d2);
  core::SplittingOptions opt;
  opt.iterations = 1200;
  const auto cfg = core::optimizeSplitting(
      inst.graph, eval, routing::RoutingConfig::uniform(inst.graph, dags),
      opt);
  EXPECT_LE(eval.ratioFor(cfg), 4.0 / 3.0 + 0.02);
}

// ---------------------------------------------------------------------------

TEST(PathInstance, Shape) {
  const PathInstance inst = makePathInstance(5);
  EXPECT_EQ(inst.graph.numNodes(), 6);
  // 4 bidirectional internal links + 5 exits.
  EXPECT_EQ(inst.graph.numEdges(), 2 * 4 + 5);
  EXPECT_THROW((void)makePathInstance(1), std::invalid_argument);
}

TEST(PathInstance, SingleSourceDemandsHaveUnitOptimum) {
  const PathInstance inst = makePathInstance(4);
  for (const auto& d : pathDemands(inst)) {
    // The optimal demands-aware routing spreads the n units over all n
    // unit-capacity exits: OPTU = 1 (Theorem 4).
    EXPECT_NEAR(routing::optimalUtilizationUnrestricted(inst.graph, d), 1.0,
                1e-6);
  }
}

class PathLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(PathLowerBound, AllDirectRoutingAttainsExactlyN) {
  const int n = GetParam();
  const PathInstance inst = makePathInstance(n);
  const routing::RoutingConfig direct = allDirectRouting(inst);
  for (const auto& d : pathDemands(inst)) {
    const double mxlu = routing::maxLinkUtilization(inst.graph, direct, d);
    const double optu = routing::optimalUtilizationUnrestricted(inst.graph, d);
    EXPECT_NEAR(mxlu / optu, static_cast<double>(n), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathLowerBound,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

TEST(PathLowerBound, EveryObliviousRoutingIsStuckAtN) {
  // Theorem 4: whatever the splitting ratios, some x_i routes only via its
  // own exit, so max_i MxLU(phi, D_i) >= n. Check for a few configurations.
  const int n = 5;
  const PathInstance inst = makePathInstance(n);
  const auto demands = pathDemands(inst);
  const auto evalWorst = [&](const routing::RoutingConfig& cfg) {
    double worst = 0.0;
    for (const auto& d : demands) {
      worst = std::max(worst,
                       routing::maxLinkUtilization(inst.graph, cfg, d));
    }
    return worst;
  };
  EXPECT_NEAR(evalWorst(allDirectRouting(inst)), n, 1e-9);

  // An "optimized" oblivious routing cannot do better either.
  const auto dags = std::make_shared<const DagSet>([&] {
    DagSet ds;
    for (NodeId t = 0; t < inst.graph.numNodes(); ++t) {
      std::vector<EdgeId> edges;
      if (t == inst.t) {
        for (EdgeId e = 0; e < inst.graph.numEdges(); ++e) {
          const Edge& ed = inst.graph.edge(e);
          // Orient the path toward x_1 plus all exits: a valid DAG.
          if (ed.dst == inst.t || ed.dst < ed.src) edges.push_back(e);
        }
      }
      ds.emplace_back(inst.graph, t, std::move(edges));
    }
    return ds;
  }());
  routing::PerformanceEvaluator eval(inst.graph, dags);
  for (const auto& d : demands) eval.addMatrix(d);
  core::SplittingOptions opt;
  opt.iterations = 400;
  const auto cfg = core::optimizeSplitting(
      inst.graph, eval, routing::RoutingConfig::uniform(inst.graph, dags),
      opt);
  EXPECT_GE(evalWorst(cfg), n - 1e-6);
}

}  // namespace
}  // namespace coyote::hardness
