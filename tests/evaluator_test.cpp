// Pool invariants and thread-count determinism of PerformanceEvaluator.
#include "routing/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "routing/propagation.hpp"
#include "tm/traffic_matrix.hpp"
#include "tm/uncertainty.hpp"
#include "topo/zoo.hpp"

namespace coyote {
namespace {

struct AbileneFixture {
  Graph g = topo::makeZoo("Abilene");
  std::shared_ptr<const DagSet> dags = core::augmentedDagsShared(g);
  tm::TrafficMatrix base = tm::gravityMatrix(g, 10.0);

  std::vector<tm::TrafficMatrix> cornerPool(double margin) const {
    tm::PoolOptions opt;
    opt.random_corners = 4;
    opt.source_hotspots = false;
    opt.seed = 3;
    return tm::cornerPool(tm::marginBounds(base, margin), opt);
  }
};

TEST(PerformanceEvaluator, PooledMatricesAreNormalizedToUnitOptu) {
  const AbileneFixture f;
  routing::PerformanceEvaluator eval(f.g, f.dags);
  eval.addPool(f.cornerPool(2.0));
  ASSERT_GT(eval.size(), 0);
  for (int i = 0; i < eval.size(); ++i) {
    EXPECT_NEAR(routing::optimalUtilization(f.g, *f.dags, eval.matrix(i)), 1.0,
                1e-6)
        << "pool matrix " << i;
  }
}

TEST(PerformanceEvaluator, ScaledDuplicatesCollapse) {
  const AbileneFixture f;
  routing::PerformanceEvaluator eval(f.g, f.dags);
  const int first = eval.addMatrix(f.base);
  ASSERT_EQ(first, 0);
  // Normalization divides by OPTU, so any positive rescaling of the same
  // matrix lands on the already-pooled normalized matrix.
  tm::TrafficMatrix tripled = f.base;
  tripled.scale(3.0);
  EXPECT_EQ(eval.addMatrix(tripled), -1);
  EXPECT_EQ(eval.addMatrix(f.base), -1);
  EXPECT_EQ(eval.size(), 1);
}

TEST(PerformanceEvaluator, ZeroDemandMatrixIsIgnored) {
  const AbileneFixture f;
  routing::PerformanceEvaluator eval(f.g, f.dags);
  EXPECT_EQ(eval.addMatrix(tm::TrafficMatrix(f.g.numNodes())), -1);
  EXPECT_EQ(eval.size(), 0);
}

TEST(PerformanceEvaluator, AddPoolMatchesSequentialAddMatrix) {
  const AbileneFixture f;
  const auto pool = f.cornerPool(1.5);

  routing::PerformanceEvaluator batched(f.g, f.dags);
  batched.addPool(pool);
  routing::PerformanceEvaluator sequential(f.g, f.dags);
  for (const auto& d : pool) sequential.addMatrix(d);

  // addPool normalizes in fixed warm-start chunks while addMatrix chains
  // one retained session, so the two paths may take different pivot
  // sequences to the same optimum: the normalized matrices agree to LP
  // round-off (the evaluator's own dedup tolerance), not bit-for-bit.
  ASSERT_EQ(batched.size(), sequential.size());
  for (int i = 0; i < batched.size(); ++i) {
    const tm::TrafficMatrix& a = batched.matrix(i);
    const tm::TrafficMatrix& b = sequential.matrix(i);
    for (NodeId s = 0; s < f.g.numNodes(); ++s) {
      for (NodeId t = 0; t < f.g.numNodes(); ++t) {
        EXPECT_NEAR(a.at(s, t), b.at(s, t),
                    1e-9 * (1.0 + std::abs(a.at(s, t))))
            << "index " << i << " pair (" << s << "," << t << ")";
      }
    }
  }
}

TEST(PerformanceEvaluator, EmptyPoolRatioIsZeroAndWorstIndexInvalid) {
  const AbileneFixture f;
  const routing::PerformanceEvaluator eval(f.g, f.dags);
  const auto cfg = routing::RoutingConfig::uniform(f.g, f.dags);
  EXPECT_DOUBLE_EQ(eval.ratioFor(cfg), 0.0);
  EXPECT_EQ(eval.worst(cfg).first, -1);
}

TEST(PerformanceEvaluator, WorstReturnsArgmaxOfPerMatrixUtilization) {
  const AbileneFixture f;
  routing::PerformanceEvaluator eval(f.g, f.dags);
  eval.addPool(f.cornerPool(2.0));
  ASSERT_GT(eval.size(), 1);
  const auto cfg = routing::ecmpConfig(f.g, f.dags);
  const auto [arg, ratio] = eval.worst(cfg);
  ASSERT_GE(arg, 0);
  EXPECT_DOUBLE_EQ(ratio, eval.ratioFor(cfg));
  // No pooled matrix does worse, and the reported one reproduces the max.
  double recomputed = 0.0;
  for (int i = 0; i < eval.size(); ++i) {
    const double u = routing::maxLinkUtilization(f.g, cfg, eval.matrix(i));
    EXPECT_LE(u, ratio + 1e-12);
    if (i == arg) recomputed = u;
  }
  EXPECT_DOUBLE_EQ(recomputed, ratio);
}

// --- determinism across thread counts ------------------------------------

TEST(PerformanceEvaluator, AddPoolIsBitIdenticalAcrossThreadCounts) {
  const AbileneFixture f;
  const auto pool = f.cornerPool(2.0);
  std::vector<std::unique_ptr<routing::PerformanceEvaluator>> evals;
  for (const unsigned threads : {1u, 2u, 8u}) {
    auto e = std::make_unique<routing::PerformanceEvaluator>(f.g, f.dags);
    e->setThreads(threads);
    e->addPool(pool);
    evals.push_back(std::move(e));
  }
  ASSERT_GT(evals[0]->size(), 0);
  for (std::size_t k = 1; k < evals.size(); ++k) {
    ASSERT_EQ(evals[k]->size(), evals[0]->size());
    for (int i = 0; i < evals[0]->size(); ++i) {
      // operator== compares raw doubles: bit-identical pools, same order.
      EXPECT_TRUE(evals[k]->matrix(i) == evals[0]->matrix(i))
          << "threads run " << k << ", matrix " << i;
    }
  }
}

TEST(PerformanceEvaluator, RatioForIsBitIdenticalAcrossThreadCounts) {
  const AbileneFixture f;
  routing::PerformanceEvaluator eval(f.g, f.dags);
  eval.setThreads(1);
  eval.addPool(f.cornerPool(2.0));
  ASSERT_GT(eval.size(), 1);

  const auto ecmp = routing::ecmpConfig(f.g, f.dags);
  const auto uniform = routing::RoutingConfig::uniform(f.g, f.dags);
  for (const auto* cfg : {&ecmp, &uniform}) {
    eval.setThreads(1);
    const auto serial = eval.worst(*cfg);
    for (const unsigned threads : {2u, 8u}) {
      eval.setThreads(threads);
      const auto parallel = eval.worst(*cfg);
      EXPECT_EQ(parallel.first, serial.first) << threads << " threads";
      // Bit-identical, not just close: reduction order is serial.
      EXPECT_EQ(parallel.second, serial.second) << threads << " threads";
      EXPECT_EQ(eval.ratioFor(*cfg), serial.second) << threads << " threads";
    }
  }
}

// --- require() failure paths ---------------------------------------------

TEST(PerformanceEvaluator, NullDagSetThrows) {
  const AbileneFixture f;
  EXPECT_THROW(routing::PerformanceEvaluator(f.g, nullptr),
               std::invalid_argument);
}

TEST(PerformanceEvaluator, MatrixSizeMismatchThrows) {
  const AbileneFixture f;
  routing::PerformanceEvaluator eval(f.g, f.dags);
  const tm::TrafficMatrix wrong(f.g.numNodes() + 1);
  EXPECT_THROW(eval.addMatrix(wrong), std::invalid_argument);
  EXPECT_THROW(eval.addPool({wrong}), std::invalid_argument);
}

TEST(PerformanceEvaluator, AddPoolValidatesBeforePartialInsert) {
  const AbileneFixture f;
  routing::PerformanceEvaluator eval(f.g, f.dags);
  // A bad matrix anywhere in the batch must leave the pool untouched.
  EXPECT_THROW(eval.addPool({f.base, tm::TrafficMatrix(2)}),
               std::invalid_argument);
  EXPECT_EQ(eval.size(), 0);
}

}  // namespace
}  // namespace coyote
