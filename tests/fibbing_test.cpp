#include <gtest/gtest.h>

#include <numeric>

#include <algorithm>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "exp/scenario.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "routing/ecmp.hpp"
#include "topo/zoo.hpp"

namespace coyote::fib {
namespace {

// ---------------------------------------------------------------------------
// Apportionment (Nemeth et al. [18]).
// ---------------------------------------------------------------------------

TEST(Apportion, EqualSplitNeedsNoVirtualLinks) {
  EXPECT_EQ(apportionSplits({0.5, 0.5}, 1), (std::vector<int>{1, 1}));
  EXPECT_EQ(apportionSplits({1.0 / 3, 1.0 / 3, 1.0 / 3}, 4),
            (std::vector<int>{1, 1, 1}));
}

TEST(Apportion, TwoToOneSplit) {
  EXPECT_EQ(apportionSplits({2.0 / 3, 1.0 / 3}, 2), (std::vector<int>{2, 1}));
}

TEST(Apportion, SingleNextHop) {
  EXPECT_EQ(apportionSplits({1.0}, 5), (std::vector<int>{1}));
}

TEST(Apportion, TinyRatioMayBeDropped) {
  // With multiplicity cap 1, approximating (0.9, 0.1) as {1,1} has error
  // 0.4; dropping the small hop ({1,0}) has error 0.1 and wins.
  EXPECT_EQ(apportionSplits({0.9, 0.1}, 1), (std::vector<int>{1, 0}));
}

TEST(Apportion, UnnormalizedInputIsNormalized) {
  EXPECT_EQ(apportionSplits({4.0, 2.0}, 2), (std::vector<int>{2, 1}));
}

TEST(Apportion, RejectsBadInput) {
  EXPECT_THROW((void)apportionSplits({}, 3), std::invalid_argument);
  EXPECT_THROW((void)apportionSplits({0.0, 0.0}, 3), std::invalid_argument);
  EXPECT_THROW((void)apportionSplits({0.5, -0.5}, 3), std::invalid_argument);
  EXPECT_THROW((void)apportionSplits({1.0}, 0), std::invalid_argument);
}

class ApportionAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(ApportionAccuracy, ErrorShrinksWithBudget) {
  const int cap = GetParam();
  const std::vector<double> golden = {0.618, 0.382};
  const std::vector<int> m = apportionSplits(golden, cap);
  const int total = std::accumulate(m.begin(), m.end(), 0);
  ASSERT_GT(total, 0);
  double err = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    err = std::max(err,
                   std::abs(golden[i] - static_cast<double>(m[i]) / total));
  }
  // 1/(2*(k*cap)) is the largest-remainder bound for two hops.
  EXPECT_LE(err, 0.5 / (2.0 * cap) + 1e-12) << "cap=" << cap;
  for (const int mi : m) EXPECT_LE(mi, cap);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ApportionAccuracy,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 10, 16));

TEST(Quantize, RatiosBecomeRationalWithBoundedDenominator) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  auto cfg = routing::RoutingConfig::uniform(g, dags);
  const NodeId t = *g.findNode("t");
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  cfg.setRatio(t, *g.findEdge(s1, s2), 0.618);
  cfg.setRatio(t, *g.findEdge(s1, *g.findNode("v")), 0.382);
  const auto q = quantizeConfig(g, cfg, 4);
  q.validate(g);
  const double r = q.ratio(t, *g.findEdge(s1, s2));
  // With cap 4, the best two-hop approximation of 0.618 is 3/5.
  EXPECT_NEAR(r, 0.6, 1e-12);
  // Untouched equal splits stay equal.
  EXPECT_NEAR(q.ratio(t, *g.findEdge(s2, *g.findNode("v"))), 0.5, 1e-12);
}

TEST(Quantize, ApproximationErrorDecreasesWithBudget) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  routing::PerformanceEvaluator eval(g, dags);
  eval.addPool(tm::cornerPool(
      tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), {true, false, 2, 3}));
  core::CoyoteOptions copt;
  copt.splitting.iterations = 200;
  const auto ideal = core::optimizeAgainstPool(g, eval, nullptr, copt);
  const double r_ideal = eval.ratioFor(ideal.routing);
  const double r3 = eval.ratioFor(quantizeConfig(g, ideal.routing, 3));
  const double r10 = eval.ratioFor(quantizeConfig(g, ideal.routing, 10));
  // A bigger virtual-link budget approximates the ideal ratios better, so
  // its performance converges to (within noise of) the ideal one. Note the
  // quantized config may *accidentally* beat the heuristic optimum on a
  // finite pool, hence the small slack on the lower side.
  EXPECT_GE(r3 + 0.02, r_ideal);
  EXPECT_GE(r10 + 0.02, r_ideal);
  EXPECT_LE(r10, r3 + 0.02);  // more virtual links approximate better
  EXPECT_LE(std::abs(r10 - r_ideal), std::abs(r3 - r_ideal) + 0.02);
}

// ---------------------------------------------------------------------------
// OSPF model.
// ---------------------------------------------------------------------------

TEST(OspfModel, PlainSpfMatchesEcmp) {
  const Graph g = topo::makeZoo("NSF");
  OspfModel model(g);
  const NodeId owner = 3;
  model.advertisePrefix(0, owner);
  const auto fibs = model.computeFibs(0);
  const auto sp = shortestPathsTo(g, owner);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (u == owner) {
      EXPECT_TRUE(fibs[u].next_hops.empty());
      continue;
    }
    const auto hops = ecmpNextHops(g, sp, u);
    ASSERT_EQ(fibs[u].next_hops.size(), hops.size()) << "u=" << u;
    for (const auto& h : fibs[u].next_hops) {
      EXPECT_EQ(h.multiplicity, 1);
      EXPECT_NE(std::find(hops.begin(), hops.end(), h.edge), hops.end());
    }
  }
  EXPECT_TRUE(model.forwardingIsLoopFree(0));
  EXPECT_EQ(model.fakeNodeCount(), 0);
}

TEST(OspfModel, LieBelowRealDistanceWins) {
  // Triangle a-b-t; a's shortest path is the direct edge. A lie via b at
  // lower cost must replace it.
  const Graph g = topo::prototypeTriangle();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId t = *g.findNode("t");
  OspfModel model(g);
  model.advertisePrefix(7, t);
  FakeAdvertisement lie;
  lie.router = s1;
  lie.prefix = 7;
  lie.via = s2;
  lie.count = 2;
  lie.cost = shortestPathsTo(g, t).dist[s1] / 2.0;
  model.injectLie(lie);
  const auto fibs = model.computeFibs(7);
  ASSERT_EQ(fibs[s1].next_hops.size(), 1u);
  EXPECT_EQ(fibs[s1].next_hops[0].edge, *g.findEdge(s1, s2));
  EXPECT_EQ(fibs[s1].next_hops[0].multiplicity, 2);
  // Other routers are unaffected (the fake node is local to s1).
  ASSERT_EQ(fibs[s2].next_hops.size(), 1u);
  EXPECT_EQ(fibs[s2].next_hops[0].edge, *g.findEdge(s2, t));
  EXPECT_EQ(model.fakeNodeCount(), 2);
}

TEST(OspfModel, LieAtEqualCostJoinsRealPaths) {
  const Graph g = topo::prototypeTriangle();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId t = *g.findNode("t");
  OspfModel model(g);
  model.advertisePrefix(0, t);
  FakeAdvertisement lie;
  lie.router = s1;
  lie.prefix = 0;
  lie.via = s2;
  lie.count = 1;
  lie.cost = shortestPathsTo(g, t).dist[s1];  // tie with the real path
  model.injectLie(lie);
  const auto fibs = model.computeFibs(0);
  // Real direct hop (mult 1) + fake via s2 (mult 1).
  EXPECT_EQ(fibs[s1].totalMultiplicity(), 2);
}

TEST(OspfModel, RejectsMalformedLies) {
  const Graph g = topo::prototypeTriangle();
  OspfModel model(g);
  model.advertisePrefix(0, *g.findNode("t"));
  FakeAdvertisement lie;
  lie.router = *g.findNode("s1");
  lie.prefix = 99;  // unknown prefix
  lie.via = *g.findNode("s2");
  lie.cost = 1.0;
  EXPECT_THROW(model.injectLie(lie), std::invalid_argument);
  lie.prefix = 0;
  lie.cost = -1.0;
  EXPECT_THROW(model.injectLie(lie), std::invalid_argument);
  lie.cost = 1.0;
  lie.via = lie.router;  // not a neighbor
  EXPECT_THROW(model.injectLie(lie), std::invalid_argument);
  EXPECT_THROW(model.advertisePrefix(0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Lie synthesis end-to-end.
// ---------------------------------------------------------------------------

class LieSynthesisOnZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(LieSynthesisOnZoo, UniformAugmentedConfigIsRealized) {
  const Graph g = topo::makeZoo(GetParam());
  const auto dags = core::augmentedDagsShared(g);
  // Uniform splitting over augmented DAGs uses many non-shortest-path edges
  // -> lies are required nearly everywhere.
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  constexpr int kBudget = 8;
  OspfModel model(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    model.advertisePrefix(t, t);
    const LiePlan plan = synthesizeLies(g, cfg, t, t, kBudget);
    applyPlan(model, plan);
    EXPECT_TRUE(verifyRealization(model, cfg, t, t, kBudget))
        << GetParam() << " dest=" << g.nodeName(t);
    EXPECT_TRUE(model.forwardingIsLoopFree(t)) << GetParam();
  }
  if (GetParam() != "Gambia") {
    // Trees have a single next-hop everywhere, so no lies are needed;
    // every meshy topology requires some.
    EXPECT_GT(model.fakeNodeCount(), 0);
  } else {
    EXPECT_EQ(model.fakeNodeCount(), 0);
  }
}

TEST_P(LieSynthesisOnZoo, PlainEcmpNeedsNoLies) {
  const Graph g = topo::makeZoo(GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const auto ecmp = routing::ecmpConfig(g, dags);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    const LiePlan plan = synthesizeLies(g, ecmp, t, t, 4);
    EXPECT_EQ(plan.fake_nodes, 0) << GetParam() << " dest=" << t;
    EXPECT_EQ(plan.routers_lied_to, 0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, LieSynthesisOnZoo,
                         ::testing::Values("Abilene", "NSF", "Germany",
                                           "GRNet", "Gambia"));

TEST(LieSynthesis, OptimizedRunningExampleVerifies) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  core::CoyoteOptions opt;
  opt.oracle_rounds = 2;
  const auto res = core::coyoteOblivious(g, dags, opt);
  OspfModel model(g);
  const NodeId t = *g.findNode("t");
  model.advertisePrefix(0, t);
  const LiePlan plan = synthesizeLies(g, res.routing, t, 0, 10);
  applyPlan(model, plan);
  EXPECT_TRUE(verifyRealization(model, res.routing, t, 0, 10));
  EXPECT_TRUE(model.forwardingIsLoopFree(0));
}

// Round trip over every smoke scenario: optimize a COYOTE config on the
// scenario's topology, synthesize the lies, re-run the OSPF model's
// shortest paths on the lied-to topology, and assert the *induced
// forwarding DAG* -- the FIB edges the reconverged routers install --
// matches the requested (apportioned) DAG edge for edge. The hand-built
// cases above check chosen nodes; this closes the loop on whole networks.
TEST(LieSynthesis, SmokeScenarioConfigsRoundTripThroughOspf) {
  constexpr int kBudget = 6;
  for (const exp::Scenario* s :
       exp::ScenarioRegistry::global().match("smoke")) {
    if (s->hasTag("failure")) continue;  // same topologies as their parents
    const bool single_topology =
        s->kind == exp::ScenarioKind::kSchemes ||
        s->kind == exp::ScenarioKind::kPrototype;
    if (!single_topology) continue;
    SCOPED_TRACE(s->id);
    const Graph g = s->topology.build();
    const auto dags = core::augmentedDagsShared(g);
    core::CoyoteOptions copt;
    copt.splitting.iterations = 120;  // enough for non-trivial splits
    const routing::RoutingConfig cfg =
        core::coyoteOblivious(g, dags, copt).routing;

    OspfModel model(g);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      model.advertisePrefix(t, t);
      const LiePlan plan = synthesizeLies(g, cfg, t, t, kBudget);
      applyPlan(model, plan);
      EXPECT_TRUE(verifyRealization(model, cfg, t, t, kBudget))
          << "dest " << g.nodeName(t);
      EXPECT_TRUE(model.forwardingIsLoopFree(t)) << "dest " << g.nodeName(t);

      // The induced forwarding DAG == the requested DAG: per router, the
      // FIB's edge set must equal the DAG out-edges whose apportioned
      // multiplicity is positive.
      const auto fibs = model.computeFibs(t);
      for (NodeId u = 0; u < g.numNodes(); ++u) {
        if (u == t) continue;
        const auto& out = (*dags)[t].outEdges(u);
        ASSERT_FALSE(out.empty());
        std::vector<double> ratios;
        ratios.reserve(out.size());
        for (const EdgeId e : out) ratios.push_back(cfg.ratio(t, e));
        const std::vector<int> mult = apportionSplits(ratios, kBudget);
        std::vector<EdgeId> requested;
        for (std::size_t k = 0; k < out.size(); ++k) {
          if (mult[k] > 0) requested.push_back(out[k]);
        }
        std::vector<EdgeId> induced;
        for (const auto& hop : fibs[u].next_hops) {
          if (hop.multiplicity > 0) induced.push_back(hop.edge);
        }
        std::sort(requested.begin(), requested.end());
        std::sort(induced.begin(), induced.end());
        EXPECT_EQ(induced, requested)
            << "dest " << g.nodeName(t) << " router " << g.nodeName(u);
      }
    }
  }
}

TEST(LieSynthesis, FakeNodeCountGrowsWithPrecision) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  int prev = 0;
  for (const int budget : {1, 4, 10}) {
    int total = 0;
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      total += synthesizeLies(g, cfg, t, t, budget).fake_nodes;
    }
    EXPECT_GE(total, prev);
    prev = total;
  }
}

}  // namespace
}  // namespace coyote::fib
