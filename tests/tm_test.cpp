#include <gtest/gtest.h>

#include "tm/traffic_matrix.hpp"
#include "tm/uncertainty.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace coyote::tm {
namespace {

TEST(TrafficMatrix, SetGetAndDiagonal) {
  TrafficMatrix d(3);
  d.set(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 0.0);
  EXPECT_THROW(d.set(1, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(d.set(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW((void)d.at(0, 5), std::invalid_argument);
}

TEST(TrafficMatrix, ScaleAndTotal) {
  TrafficMatrix d(3);
  d.set(0, 1, 1.0);
  d.set(2, 1, 3.0);
  EXPECT_DOUBLE_EQ(d.total(), 4.0);
  EXPECT_DOUBLE_EQ(d.maxEntry(), 3.0);
  d.scale(0.5);
  EXPECT_DOUBLE_EQ(d.total(), 2.0);
  EXPECT_EQ(d.nonZeroPairs().size(), 2u);
}

TEST(TrafficMatrix, Equality) {
  TrafficMatrix a(2), b(2);
  a.set(0, 1, 1.0);
  EXPECT_FALSE(a == b);
  b.set(0, 1, 1.0);
  EXPECT_TRUE(a == b);
}

TEST(Gravity, ProportionalToCapacityProducts) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  g.addEdge(a, b, 4.0);
  g.addEdge(b, c, 2.0);
  g.addEdge(c, a, 1.0);
  const TrafficMatrix d = gravityMatrix(g, 1.0);
  EXPECT_NEAR(d.total(), 1.0, 1e-12);
  // outCap: a=4, b=2, c=1 -> d(a,b)/d(a,c) = (4*2)/(4*1) = 2.
  EXPECT_NEAR(d.at(a, b) / d.at(a, c), 2.0, 1e-9);
  EXPECT_NEAR(d.at(b, a) / d.at(c, a), 2.0, 1e-9);
}

TEST(Gravity, AllPairsPositiveOnBackbones) {
  const Graph g = topo::makeZoo("Abilene");
  const TrafficMatrix d = gravityMatrix(g, 100.0);
  EXPECT_NEAR(d.total(), 100.0, 1e-9);
  EXPECT_EQ(d.nonZeroPairs().size(),
            static_cast<std::size_t>(g.numNodes() * (g.numNodes() - 1)));
}

TEST(Gravity, DefaultOptionsAreBitIdentical) {
  // GravityOptions{} must reproduce the historical dense matrix exactly
  // (committed baselines depend on it), not merely to tolerance.
  for (const char* name : {"Abilene", "Geant"}) {
    const Graph g = topo::makeZoo(name);
    const TrafficMatrix dense = gravityMatrix(g, 3.0);
    const TrafficMatrix opt = gravityMatrix(g, 3.0, GravityOptions{});
    for (NodeId s = 0; s < g.numNodes(); ++s) {
      for (NodeId t = 0; t < g.numNodes(); ++t) {
        if (s == t) continue;
        ASSERT_EQ(opt.at(s, t), dense.at(s, t)) << name;
      }
    }
  }
}

TEST(Gravity, TopKKeepsTheHeaviestDemandsPerSource) {
  const Graph g = topo::makeZoo("Geant");
  GravityOptions opt;
  opt.top_k = 3;
  const TrafficMatrix d = gravityMatrix(g, 5.0, opt);
  EXPECT_NEAR(d.total(), 5.0, 1e-9);  // renormalized after sparsification
  const TrafficMatrix dense = gravityMatrix(g, 5.0);
  for (NodeId s = 0; s < g.numNodes(); ++s) {
    int kept = 0;
    double min_kept = 1e300, max_dropped = 0.0;
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      if (s == t) continue;
      if (d.at(s, t) > 0.0) {
        ++kept;
        min_kept = std::min(min_kept, dense.at(s, t));
      } else {
        max_dropped = std::max(max_dropped, dense.at(s, t));
      }
    }
    EXPECT_EQ(kept, 3) << "source " << s;
    // The survivors really are the heaviest dense-gravity entries.
    EXPECT_GE(min_kept, max_dropped - 1e-12) << "source " << s;
  }
  // Deterministic: two builds agree exactly.
  const TrafficMatrix d2 = gravityMatrix(g, 5.0, opt);
  EXPECT_TRUE(d == d2);
}

TEST(Gravity, EndpointPrefixRestrictsToEdgeSwitches) {
  const Graph g = topo::fatTree(4);
  GravityOptions opt;
  opt.endpoint_prefix = "edge";
  const TrafficMatrix d = gravityMatrix(g, 1.0, opt);
  EXPECT_NEAR(d.total(), 1.0, 1e-12);
  int endpoints = 0;
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    endpoints += g.nodeName(v).rfind("edge", 0) == 0;
  }
  EXPECT_EQ(endpoints, 8);  // k^2/2 edge switches at k = 4
  EXPECT_EQ(d.nonZeroPairs().size(),
            static_cast<std::size_t>(endpoints * (endpoints - 1)));
  for (const auto& [s, t] : d.nonZeroPairs()) {
    EXPECT_EQ(g.nodeName(s).rfind("edge", 0), 0u);
    EXPECT_EQ(g.nodeName(t).rfind("edge", 0), 0u);
  }
}

TEST(Bimodal, DeterministicInSeed) {
  const Graph g = topo::makeZoo("NSF");
  const TrafficMatrix a = bimodalMatrix(g, {}, 7, 10.0);
  const TrafficMatrix b = bimodalMatrix(g, {}, 7, 10.0);
  const TrafficMatrix c = bimodalMatrix(g, {}, 8, 10.0);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_NEAR(a.total(), 10.0, 1e-9);
}

TEST(Bimodal, ElephantsDominate) {
  const Graph g = topo::makeZoo("Geant");
  BimodalParams params;
  params.large_fraction = 0.1;
  const TrafficMatrix d = bimodalMatrix(g, params, 3, 1.0);
  // With a 10x mean gap, the top decile of entries should carry a
  // disproportionate share of the traffic.
  std::vector<double> v;
  for (const auto& [s, t] : d.nonZeroPairs()) v.push_back(d.at(s, t));
  std::sort(v.begin(), v.end(), std::greater<>());
  double top = 0.0;
  const std::size_t k = v.size() / 10;
  for (std::size_t i = 0; i < k; ++i) top += v[i];
  EXPECT_GT(top, 0.35 * d.total());
}

// ---------------------------------------------------------------------------

TEST(Uncertainty, MarginBounds) {
  TrafficMatrix base(2);
  base.set(0, 1, 4.0);
  const DemandBounds box = marginBounds(base, 2.0);
  EXPECT_DOUBLE_EQ(box.lo.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(box.hi.at(0, 1), 8.0);
  EXPECT_TRUE(box.contains(base));
  TrafficMatrix out(2);
  out.set(0, 1, 9.0);
  EXPECT_FALSE(box.contains(out));
  EXPECT_THROW((void)marginBounds(base, 0.5), std::invalid_argument);
}

TEST(Uncertainty, BoundsValidation) {
  TrafficMatrix lo(2), hi(2);
  lo.set(0, 1, 3.0);
  hi.set(0, 1, 1.0);
  EXPECT_THROW(DemandBounds(lo, hi), std::invalid_argument);
}

TEST(CornerPool, ContainsAllHiAndHotspots) {
  const Graph g = topo::makeZoo("Abilene");
  const TrafficMatrix base = gravityMatrix(g, 1.0);
  const DemandBounds box = marginBounds(base, 2.0);
  PoolOptions opt;
  opt.random_corners = 4;
  opt.pair_hotspots = 6;
  const auto pool = cornerPool(box, opt);
  // all-hi + n destination hotspots + n source hotspots + pairs + randoms.
  EXPECT_EQ(pool.size(),
            static_cast<std::size_t>(1 + 2 * g.numNodes() + 6 + 4));
  EXPECT_TRUE(pool.front() == box.hi);
  for (const auto& d : pool) EXPECT_TRUE(box.contains(d));
}

TEST(CornerPool, MarginOneCollapsesToBase) {
  const Graph g = topo::makeZoo("Abilene");
  const TrafficMatrix base = gravityMatrix(g, 1.0);
  const DemandBounds box = marginBounds(base, 1.0);
  for (const auto& d : cornerPool(box)) EXPECT_TRUE(d == base);
}

TEST(CornerPool, EntriesAreCornerValues) {
  const Graph g = topo::makeZoo("NSF");
  const TrafficMatrix base = gravityMatrix(g, 1.0);
  const DemandBounds box = marginBounds(base, 3.0);
  for (const auto& d : cornerPool(box)) {
    for (const auto& [s, t] : d.nonZeroPairs()) {
      const double v = d.at(s, t);
      const bool is_lo = std::abs(v - box.lo.at(s, t)) < 1e-12;
      const bool is_hi = std::abs(v - box.hi.at(s, t)) < 1e-12;
      EXPECT_TRUE(is_lo || is_hi);
    }
  }
}

TEST(CornerPool, PairHotspotsSpikeTheLargestPairs) {
  const Graph g = topo::makeZoo("Abilene");
  TrafficMatrix base = gravityMatrix(g, 1.0);
  const DemandBounds box = marginBounds(base, 3.0);
  PoolOptions opt;
  opt.destination_hotspots = false;
  opt.source_hotspots = false;
  opt.random_corners = 0;
  opt.pair_hotspots = 3;
  const auto pool = cornerPool(box, opt);
  ASSERT_EQ(pool.size(), 4u);  // all-hi + 3 pair spikes
  // Each pair matrix has exactly one entry at hi, the rest at lo.
  for (std::size_t k = 1; k < pool.size(); ++k) {
    int at_hi = 0;
    for (const auto& [s, t] : pool[k].nonZeroPairs()) {
      if (std::abs(pool[k].at(s, t) - box.hi.at(s, t)) < 1e-12) ++at_hi;
    }
    EXPECT_EQ(at_hi, 1);
  }
}

TEST(CornerPool, MaxHotspotsCapsPoolSize) {
  const Graph g = topo::makeZoo("Geant");
  const DemandBounds box = marginBounds(gravityMatrix(g, 1.0), 2.0);
  PoolOptions opt;
  opt.random_corners = 0;
  opt.pair_hotspots = 0;
  opt.max_hotspots = 5;
  const auto pool = cornerPool(box, opt);
  EXPECT_EQ(pool.size(), static_cast<std::size_t>(1 + 5 + 5));
}

TEST(ObliviousPool, DestinationConcentratedShape) {
  ObliviousPoolOptions opt;
  opt.destination_concentrated = true;
  opt.source_concentrated = false;
  opt.uniform = false;
  opt.random_sparse = 0;
  const auto pool = obliviousPool(5, opt);
  ASSERT_EQ(pool.size(), 5u);
  // Matrix k concentrates all demand on destination k.
  for (int k = 0; k < 5; ++k) {
    for (const auto& [s, t] : pool[k].nonZeroPairs()) EXPECT_EQ(t, k);
    EXPECT_EQ(pool[k].nonZeroPairs().size(), 4u);
  }
}

TEST(ObliviousPool, SparseRandomRespectsPairBudget) {
  ObliviousPoolOptions opt;
  opt.destination_concentrated = false;
  opt.source_concentrated = false;
  opt.uniform = false;
  opt.random_sparse = 6;
  opt.sparse_active_pairs = 2;
  const auto pool = obliviousPool(6, opt);
  EXPECT_EQ(pool.size(), 6u);
  for (const auto& d : pool) {
    EXPECT_LE(d.nonZeroPairs().size(), 2u);
    EXPECT_GE(d.nonZeroPairs().size(), 1u);
  }
}

TEST(ObliviousPool, SourceConcentratedAndUniform) {
  ObliviousPoolOptions opt;
  opt.destination_concentrated = false;
  opt.source_concentrated = true;
  opt.uniform = true;
  opt.random_sparse = 0;
  const auto pool = obliviousPool(4, opt);
  ASSERT_EQ(pool.size(), 5u);  // 4 source matrices + uniform
  for (int k = 0; k < 4; ++k) {
    for (const auto& [s, t] : pool[k].nonZeroPairs()) EXPECT_EQ(s, k);
  }
  EXPECT_EQ(pool.back().nonZeroPairs().size(), 12u);
}

}  // namespace
}  // namespace coyote::tm
