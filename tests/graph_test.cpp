#include <gtest/gtest.h>

#include <cmath>

#include "graph/dag.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "graph/maxflow.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace coyote {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeId a = g.addNode("a");
  const NodeId b = g.addNode("b");
  EXPECT_EQ(g.numNodes(), 2);
  const EdgeId e = g.addEdge(a, b, 5.0, 2.0);
  EXPECT_EQ(g.numEdges(), 1);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 5.0);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.0);
  EXPECT_EQ(g.edge(e).reverse, kInvalidEdge);
}

TEST(Graph, AddLinkCreatesMutualReverse) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const EdgeId e = g.addLink(a, b, 3.0);
  const EdgeId r = g.edge(e).reverse;
  ASSERT_NE(r, kInvalidEdge);
  EXPECT_EQ(g.edge(r).reverse, e);
  EXPECT_EQ(g.edge(r).src, b);
  EXPECT_EQ(g.edge(r).dst, a);
  EXPECT_DOUBLE_EQ(g.edge(r).capacity, 3.0);
}

TEST(Graph, RejectsSelfLoopsAndBadCapacity) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  EXPECT_THROW(g.addEdge(a, a), std::invalid_argument);
  EXPECT_THROW(g.addEdge(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(g.addEdge(a, b, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(g.addEdge(a, 7), std::invalid_argument);
}

TEST(Graph, FindNodeAndEdge) {
  Graph g;
  const NodeId a = g.addNode("alpha");
  const NodeId b = g.addNode("beta");
  g.addLink(a, b);
  EXPECT_EQ(g.findNode("beta"), b);
  EXPECT_FALSE(g.findNode("gamma").has_value());
  ASSERT_TRUE(g.findEdge(a, b).has_value());
  ASSERT_TRUE(g.findEdge(b, a).has_value());
  EXPECT_FALSE(g.findEdge(a, a).has_value());
}

TEST(Graph, DefaultNodeNamesAreUnique) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  EXPECT_NE(g.nodeName(a), g.nodeName(b));
}

TEST(Graph, InverseCapacityWeights) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  const EdgeId e1 = g.addEdge(a, b, 10.0);
  const EdgeId e2 = g.addEdge(b, c, 2.5);
  const EdgeId e3 = g.addEdge(c, a, 1.0);
  g.setInverseCapacityWeights();
  EXPECT_DOUBLE_EQ(g.edge(e1).weight, 1.0);
  EXPECT_DOUBLE_EQ(g.edge(e2).weight, 4.0);
  EXPECT_DOUBLE_EQ(g.edge(e3).weight, 10.0);
}

TEST(Graph, OutInCapacity) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  g.addEdge(a, b, 2.0);
  g.addEdge(a, c, 3.0);
  g.addEdge(b, a, 7.0);
  EXPECT_DOUBLE_EQ(g.outCapacity(a), 5.0);
  EXPECT_DOUBLE_EQ(g.inCapacity(a), 7.0);
}

TEST(Graph, StronglyConnected) {
  Graph ring = topo::ring(5);
  EXPECT_TRUE(ring.stronglyConnected());
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  g.addEdge(a, b);
  EXPECT_FALSE(g.stronglyConnected());
}

// ---------------------------------------------------------------------------

TEST(Dijkstra, PathDistances) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  g.addLink(a, b, 1.0, 2.0);
  g.addLink(b, c, 1.0, 3.0);
  const auto sp = shortestPathsTo(g, c);
  EXPECT_DOUBLE_EQ(sp.dist[c], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[b], 3.0);
  EXPECT_DOUBLE_EQ(sp.dist[a], 5.0);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  g.addEdge(a, b);  // only a -> b
  const auto sp = shortestPathsTo(g, a);
  EXPECT_TRUE(std::isinf(sp.dist[b]));
}

TEST(Dijkstra, HopDistancesIgnoreWeights) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  g.addLink(a, b, 1.0, 100.0);
  g.addLink(b, c, 1.0, 100.0);
  g.addLink(a, c, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(hopDistancesTo(g, c).dist[a], 1.0);
  EXPECT_DOUBLE_EQ(shortestPathsTo(g, c).dist[a], 1.0);
}

TEST(Dijkstra, EcmpNextHopsOnDiamond) {
  // a -> {b,c} -> d with equal weights: a has two ECMP next-hops.
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  const NodeId d = g.addNode();
  g.addLink(a, b);
  g.addLink(a, c);
  g.addLink(b, d);
  g.addLink(c, d);
  const auto sp = shortestPathsTo(g, d);
  EXPECT_EQ(ecmpNextHops(g, sp, a).size(), 2u);
  EXPECT_EQ(ecmpNextHops(g, sp, b).size(), 1u);
  EXPECT_TRUE(ecmpNextHops(g, sp, d).empty());
}

TEST(Dijkstra, ShortestPathDagIsAcyclicAndComplete) {
  const Graph g = topo::makeZoo("Abilene");
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    const auto sp = shortestPathsTo(g, t);
    const auto edges = shortestPathDagEdges(g, sp);
    const Dag dag(g, t, edges);  // throws on a cycle
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      EXPECT_TRUE(dag.reachesDest(v)) << "node " << v << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------

TEST(Dag, RejectsCycles) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId t = g.addNode();
  const EdgeId ab = g.addEdge(a, b);
  const EdgeId ba = g.addEdge(b, a);
  g.addEdge(b, t);
  EXPECT_THROW(Dag(g, t, {ab, ba}), std::invalid_argument);
}

TEST(Dag, RejectsEdgesOutOfDest) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId t = g.addNode();
  const EdgeId ta = g.addEdge(t, a);
  g.addEdge(a, t);
  EXPECT_THROW(Dag(g, t, {ta}), std::invalid_argument);
}

TEST(Dag, TopoOrderRespectsEdges) {
  Graph g = topo::grid(3, 3);
  const NodeId t = 8;
  const auto sp = shortestPathsTo(g, t);
  const Dag dag(g, t, shortestPathDagEdges(g, sp));
  std::vector<int> pos(g.numNodes(), -1);
  const auto& topo = dag.topoOrder();
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = static_cast<int>(i);
  for (const EdgeId e : dag.edges()) {
    EXPECT_LT(pos[g.edge(e).src], pos[g.edge(e).dst]);
  }
}

TEST(Dag, ReachabilityOnPartialDag) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();  // isolated in the DAG
  const NodeId t = g.addNode();
  g.addEdge(a, b);
  const EdgeId bt = g.addEdge(b, t);
  g.addEdge(c, a);
  const EdgeId ab = *g.findEdge(a, b);
  const Dag dag(g, t, {ab, bt});
  EXPECT_TRUE(dag.reachesDest(a));
  EXPECT_TRUE(dag.reachesDest(b));
  EXPECT_FALSE(dag.reachesDest(c));
}

TEST(Dag, DeduplicatesEdges) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId t = g.addNode();
  const EdgeId e = g.addEdge(a, t);
  const Dag dag(g, t, {e, e, e});
  EXPECT_EQ(dag.edges().size(), 1u);
}

// ---------------------------------------------------------------------------

TEST(MaxFlow, SingleEdge) {
  Graph g;
  const NodeId s = g.addNode();
  const NodeId t = g.addNode();
  g.addEdge(s, t, 4.0);
  EXPECT_DOUBLE_EQ(maxFlow(g, s, t), 4.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  Graph g;
  const NodeId s = g.addNode();
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId t = g.addNode();
  g.addEdge(s, a, 2.0);
  g.addEdge(a, t, 2.0);
  g.addEdge(s, b, 3.0);
  g.addEdge(b, t, 1.0);
  EXPECT_DOUBLE_EQ(maxFlow(g, s, t), 3.0);  // 2 + min(3,1)
}

TEST(MaxFlow, BottleneckRespected) {
  Graph g;
  const NodeId s = g.addNode();
  const NodeId m = g.addNode();
  const NodeId t = g.addNode();
  g.addEdge(s, m, 10.0);
  g.addEdge(m, t, 1.5);
  EXPECT_DOUBLE_EQ(maxFlow(g, s, t), 1.5);
}

TEST(MaxFlow, MultiSourceSuperSource) {
  Graph g;
  const NodeId s1 = g.addNode();
  const NodeId s2 = g.addNode();
  const NodeId t = g.addNode();
  g.addEdge(s1, t, 1.0);
  g.addEdge(s2, t, 2.0);
  EXPECT_DOUBLE_EQ(maxFlow(g, {s1, s2}, t), 3.0);
}

TEST(MaxFlow, BipartitionGadgetMinCut) {
  // Sec. IV: in the reduction, mincut({s1,s2}, t) = 2*SUM.
  Graph g;
  const NodeId s1 = g.addNode();
  const NodeId s2 = g.addNode();
  const NodeId t = g.addNode();
  const double w[] = {1.0, 3.0};
  for (const double wi : w) {
    const NodeId x1 = g.addNode();
    const NodeId x2 = g.addNode();
    const NodeId m = g.addNode();
    g.addLink(x1, x2, wi);
    g.addLink(x1, m, wi);
    g.addLink(x2, m, wi);
    g.addEdge(s1, x1, 2 * wi);
    g.addEdge(s2, x2, 2 * wi);
    g.addEdge(m, t, 2 * wi);
  }
  EXPECT_DOUBLE_EQ(maxFlow(g, {s1, s2}, t), 8.0);  // 2*SUM, SUM=4
  EXPECT_DOUBLE_EQ(maxFlow(g, s1, t), 8.0);
  EXPECT_DOUBLE_EQ(maxFlow(g, s2, t), 8.0);
}

class RandomBackboneFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBackboneFlow, FlowBoundedByDegreeCuts) {
  const Graph g = topo::randomBackbone(12, 3.0, GetParam());
  // Max-flow between any two nodes is bounded by min(out-cap(s), in-cap(t))
  // and is positive (the generator guarantees a ring).
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId t = 8; t < 12; ++t) {
      const double f = maxFlow(g, s, t);
      EXPECT_GT(f, 0.0);
      EXPECT_LE(f, std::min(g.outCapacity(s), g.inCapacity(t)) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBackboneFlow,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// require() failure paths: empty graphs and degenerate edge parameters.
// ---------------------------------------------------------------------------

TEST(GraphEdgeCases, EmptyGraphAccessorsThrow) {
  const Graph g;
  EXPECT_EQ(g.numNodes(), 0);
  EXPECT_EQ(g.numEdges(), 0);
  EXPECT_THROW((void)g.edge(0), std::invalid_argument);
  EXPECT_THROW((void)g.nodeName(0), std::invalid_argument);
  EXPECT_THROW((void)g.outEdges(0), std::invalid_argument);
  EXPECT_THROW((void)g.inEdges(0), std::invalid_argument);
  EXPECT_FALSE(g.findNode("anything").has_value());
}

TEST(GraphEdgeCases, EmptyGraphShortestPathsThrow) {
  const Graph g;
  // Any destination id is out of range on an empty graph.
  EXPECT_THROW(shortestPathsTo(g, 0), std::invalid_argument);
}

TEST(GraphEdgeCases, CapacityAndWeightMutatorPreconditions) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const EdgeId e = g.addLink(a, b, 2.0);
  EXPECT_THROW(g.setCapacity(e, -1.0), std::invalid_argument);
  EXPECT_THROW(g.setWeight(e, 0.0), std::invalid_argument);
  EXPECT_THROW(g.setWeight(e, -0.5), std::invalid_argument);
  // A failed mutation leaves the edge untouched.
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 2.0);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 1.0);
  // Links are born up: construction rejects non-positive capacities...
  EXPECT_THROW(g.addLink(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(g.addLink(a, b, 1.0, 0.0), std::invalid_argument);
  // ...but setCapacity(e, 0) marks a failed link (src/failure/), which
  // SPF and connectivity then skip.
  EXPECT_TRUE(g.stronglyConnected());
  g.setCapacity(e, 0.0);
  g.setCapacity(g.edge(e).reverse, 0.0);
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 0.0);
  EXPECT_FALSE(g.stronglyConnected());
  EXPECT_TRUE(std::isinf(shortestPathsTo(g, b).dist[a]));
}

TEST(GraphEdgeCases, DagRejectsOutOfRangeDestOnEmptyGraph) {
  const Graph g;
  EXPECT_THROW(Dag(g, 0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace coyote
