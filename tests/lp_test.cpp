#include <gtest/gtest.h>

#include <random>

#include "graph/maxflow.hpp"
#include "lp/lp.hpp"
#include "topo/generator.hpp"

namespace coyote::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialMinimum) {
  LpProblem p(Sense::kMinimize);
  const int x = p.addVar(1.0);
  p.addConstraint({{x, 1.0}}, Rel::kGe, 3.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);
  EXPECT_NEAR(r.x[x], 3.0, kTol);
}

TEST(Simplex, TwoVarMaximize) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(3.0);
  const int y = p.addVar(2.0);
  p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 4.0);
  p.addConstraint({{x, 1.0}, {y, 3.0}}, Rel::kLe, 6.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 12.0, kTol);
  EXPECT_NEAR(r.x[x], 4.0, kTol);
  EXPECT_NEAR(r.x[y], 0.0, kTol);
}

TEST(Simplex, ClassicProductionPlan) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> (3, 1.5), obj 21.
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(5.0);
  const int y = p.addVar(4.0);
  p.addConstraint({{x, 6.0}, {y, 4.0}}, Rel::kLe, 24.0);
  p.addConstraint({{x, 1.0}, {y, 2.0}}, Rel::kLe, 6.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 21.0, kTol);
  EXPECT_NEAR(r.x[x], 3.0, kTol);
  EXPECT_NEAR(r.x[y], 1.5, kTol);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + y = 5, x - y <= 1 -> any point on the segment; obj 5.
  LpProblem p(Sense::kMinimize);
  const int x = p.addVar(1.0);
  const int y = p.addVar(1.0);
  p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 5.0);
  p.addConstraint({{x, 1.0}, {y, -1.0}}, Rel::kLe, 1.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, kTol);
  EXPECT_NEAR(r.x[x] + r.x[y], 5.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p(Sense::kMinimize);
  const int x = p.addVar(1.0);
  p.addConstraint({{x, 1.0}}, Rel::kGe, 5.0);
  p.addConstraint({{x, 1.0}}, Rel::kLe, 2.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(1.0);
  p.addConstraint({{x, -1.0}}, Rel::kLe, 1.0);
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, VariableUpperBound) {
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(1.0, 0.0, 2.5);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[x], 2.5, kTol);
}

TEST(Simplex, ShiftedLowerBound) {
  // min x with x >= -3 (negative lower bound is shifted internally).
  LpProblem p(Sense::kMinimize);
  const int x = p.addVar(1.0, -3.0, 10.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[x], -3.0, kTol);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2 with min x+y -> x=0, y=2.
  LpProblem p(Sense::kMinimize);
  const int x = p.addVar(1.0);
  const int y = p.addVar(1.0);
  p.addConstraint({{x, 1.0}, {y, -1.0}}, Rel::kLe, -2.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, kTol);
  EXPECT_NEAR(r.x[y], 2.0, kTol);
}

TEST(Simplex, DuplicateTermsMerge) {
  // 0.5x + 0.5x == x.
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(1.0);
  p.addConstraint({{x, 0.5}, {x, 0.5}}, Rel::kLe, 7.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[x], 7.0, kTol);
}

TEST(Simplex, DegenerateConstraintsNoCycle) {
  // Highly degenerate LP (many redundant constraints through the origin).
  LpProblem p(Sense::kMaximize);
  const int x = p.addVar(1.0);
  const int y = p.addVar(1.0);
  for (int k = 1; k <= 6; ++k) {
    p.addConstraint({{x, static_cast<double>(k)}, {y, 1.0}}, Rel::kLe, 0.0);
  }
  p.addConstraint({{x, 1.0}}, Rel::kLe, 5.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, kTol);
}

TEST(Simplex, ArtificialsCannotDriftPositiveInPhaseTwo) {
  // Regression: max d1 with d1 = lambda, d2 = lambda (via <= and >= pairs),
  // d1 + d2 <= 2. A solver that leaves zero-valued artificials basic after
  // phase 1 and lets them grow returns the infeasible point (2, 0).
  LpProblem p(Sense::kMaximize);
  const int lambda = p.addVar(0.0);
  const int d1 = p.addVar(1.0);
  const int d2 = p.addVar(0.0);
  p.addConstraint({{d1, 1.0}, {lambda, -1.0}}, Rel::kLe, 0.0);
  p.addConstraint({{d2, 1.0}, {lambda, -1.0}}, Rel::kLe, 0.0);
  p.addConstraint({{d1, 1.0}, {lambda, -1.0}}, Rel::kGe, 0.0);
  p.addConstraint({{d2, 1.0}, {lambda, -1.0}}, Rel::kGe, 0.0);
  p.addConstraint({{d1, 1.0}, {d2, 1.0}}, Rel::kLe, 2.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, kTol);
  EXPECT_NEAR(r.x[d1], r.x[lambda], kTol);
  EXPECT_NEAR(r.x[d2], r.x[lambda], kTol);
}

TEST(Simplex, RedundantEqualityRowsAreHarmless) {
  // Duplicated equality rows leave one artificial basic forever; the
  // solution must still satisfy the constraints.
  LpProblem p(Sense::kMinimize);
  const int x = p.addVar(1.0);
  const int y = p.addVar(2.0);
  p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 3.0);
  p.addConstraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 3.0);  // redundant copy
  p.addConstraint({{x, 2.0}, {y, 2.0}}, Rel::kEq, 6.0);  // scaled copy
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[x] + r.x[y], 3.0, kTol);
  EXPECT_NEAR(r.objective, 3.0, kTol);  // all weight on the cheap variable
}

TEST(Simplex, RejectsMalformedInput) {
  LpProblem p;
  EXPECT_THROW((void)solve(p), std::invalid_argument);  // no variables
  const int x = p.addVar(1.0);
  EXPECT_THROW(p.addConstraint({{x + 5, 1.0}}, Rel::kLe, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)p.addVar(0.0, 1.0, 0.0), std::invalid_argument);  // ub<lb
  EXPECT_THROW((void)p.addVar(0.0, -kInfinity), std::invalid_argument);
}

// --- Cross-check: simplex optimum equals brute-force vertex enumeration. ---

/// For 2-variable LPs the optimum lies on a vertex: intersect every pair of
/// constraint lines (including the axes), keep feasible points, take the
/// best. Exhaustive and solver-independent.
class TwoVarBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoVarBruteForce, SimplexMatchesVertexEnumeration) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coef(-2.0, 2.0);
  std::uniform_real_distribution<double> pos(0.5, 4.0);

  // max c0*x + c1*y s.t. rows a*x + b*y <= r, x,y in [0, box].
  const double c0 = coef(rng), c1 = coef(rng);
  const double box = pos(rng) + 2.0;
  struct Row {
    double a, b, r;
  };
  std::vector<Row> rows;
  const int m = 3 + static_cast<int>(rng() % 4);
  for (int i = 0; i < m; ++i) rows.push_back({coef(rng), coef(rng), pos(rng)});
  rows.push_back({1.0, 0.0, box});
  rows.push_back({0.0, 1.0, box});

  lp::LpProblem p(lp::Sense::kMaximize);
  const int x = p.addVar(c0);
  const int y = p.addVar(c1);
  for (const Row& row : rows) {
    p.addConstraint({{x, row.a}, {y, row.b}}, lp::Rel::kLe, row.r);
  }
  const lp::LpResult res = lp::solve(p);
  ASSERT_EQ(res.status, lp::Status::kOptimal);

  // Enumerate candidate vertices: intersections of every pair of lines,
  // including the nonnegativity axes x=0 / y=0.
  std::vector<Row> lines = rows;
  lines.push_back({1.0, 0.0, 0.0});  // x = 0
  lines.push_back({0.0, 1.0, 0.0});  // y = 0
  const auto feasible = [&](double px, double py) {
    if (px < -1e-9 || py < -1e-9) return false;
    for (const Row& row : rows) {
      if (row.a * px + row.b * py > row.r + 1e-9) return false;
    }
    return true;
  };
  double best = -1e300;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-9) continue;
      const double px = (lines[i].r * lines[j].b - lines[j].r * lines[i].b) / det;
      const double py = (lines[i].a * lines[j].r - lines[j].a * lines[i].r) / det;
      if (feasible(px, py)) best = std::max(best, c0 * px + c1 * py);
    }
  }
  if (feasible(0.0, 0.0)) best = std::max(best, 0.0);
  ASSERT_GT(best, -1e299);  // origin is always feasible here
  EXPECT_NEAR(res.objective, best, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoVarBruteForce,
                         ::testing::Range<std::uint64_t>(100, 130));

// --- Cross-check: LP max-flow equals Dinic on random graphs. ---------------

double lpMaxFlow(const Graph& g, NodeId s, NodeId t) {
  LpProblem p(Sense::kMaximize);
  std::vector<int> f(g.numEdges());
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    f[e] = p.addVar(0.0, 0.0, g.edge(e).capacity);
  }
  // Objective: net flow out of s.
  for (const EdgeId e : g.outEdges(s)) p.setObjective(f[e], 1.0);
  for (const EdgeId e : g.inEdges(s)) p.setObjective(f[e], -1.0);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (v == s || v == t) continue;
    std::vector<Term> terms;
    for (const EdgeId e : g.outEdges(v)) terms.push_back({f[e], 1.0});
    for (const EdgeId e : g.inEdges(v)) terms.push_back({f[e], -1.0});
    if (!terms.empty()) p.addConstraint(std::move(terms), Rel::kEq, 0.0);
  }
  const LpResult r = solve(p);
  EXPECT_EQ(r.status, Status::kOptimal);
  return r.objective;
}

class LpVsDinic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpVsDinic, AgreeOnRandomBackbones) {
  const Graph g = topo::randomBackbone(10, 3.0, GetParam());
  std::mt19937_64 rng(GetParam() * 7919 + 13);
  std::uniform_int_distribution<int> pick(0, g.numNodes() - 1);
  for (int rep = 0; rep < 3; ++rep) {
    NodeId s = pick(rng);
    NodeId t = pick(rng);
    if (s == t) t = (t + 1) % g.numNodes();
    EXPECT_NEAR(lpMaxFlow(g, s, t), maxFlow(g, s, t), 1e-6)
        << "seed=" << GetParam() << " s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpVsDinic,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace coyote::lp
