// Structural guarantees of the topology corpus: the experiments rely on the
// backbones being 2-edge-connected (except the documented almost-trees) and
// on every network yielding valid augmented DAGs, ECMP configs and demand
// models. Parameterized across the whole corpus.
#include <gtest/gtest.h>

#include <set>

#include "core/dag_builder.hpp"
#include "routing/ecmp.hpp"
#include "routing/propagation.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/zoo.hpp"

namespace coyote::topo {
namespace {

bool connectedWithoutLink(const Graph& g, EdgeId skip) {
  const EdgeId rev = g.edge(skip).reverse;
  std::vector<char> seen(g.numNodes(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  int count = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const EdgeId e : g.outEdges(u)) {
      if (e == skip || e == rev) continue;
      const NodeId w = g.edge(e).dst;
      if (!seen[w]) {
        seen[w] = 1;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == g.numNodes();
}

/// Networks the paper treats as "almost a tree" (excluded from Table I).
bool isTreeLike(const std::string& name) {
  return name == "Gambia" || name == "BBNPlanet" || name == "Digex" ||
         name == "GRNet" || name == "AS1221";
}

class ZooStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooStructure, MeshyBackbonesSurviveAnySingleLinkFailure) {
  if (isTreeLike(GetParam())) GTEST_SKIP() << "tree-like by design";
  const Graph g = makeZoo(GetParam());
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    if (g.edge(e).reverse < e) continue;
    EXPECT_TRUE(connectedWithoutLink(g, e))
        << GetParam() << " loses connectivity without "
        << g.nodeName(g.edge(e).src) << "-" << g.nodeName(g.edge(e).dst);
  }
}

TEST_P(ZooStructure, NodeNamesAreUnique) {
  const Graph g = makeZoo(GetParam());
  std::set<std::string> names;
  for (NodeId v = 0; v < g.numNodes(); ++v) names.insert(g.nodeName(v));
  EXPECT_EQ(static_cast<int>(names.size()), g.numNodes());
}

TEST_P(ZooStructure, GravityDemandIsRoutableInAugmentedDags) {
  const Graph g = makeZoo(GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const auto ecmp = routing::ecmpConfig(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  // Propagating the gravity demand must conserve flow (nothing stranded):
  // per destination, the flow entering t equals t's demand column.
  double delivered = 0.0;
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    routing::LinkLoads loads(g.numEdges(), 0.0);
    routing::accumulateDestinationLoads(g, ecmp, d, t, loads);
    for (const EdgeId e : g.inEdges(t)) delivered += loads[e];
  }
  EXPECT_NEAR(delivered, d.total(), 1e-9);
}

TEST_P(ZooStructure, AverageDegreeIsBackboneLike) {
  const Graph g = makeZoo(GetParam());
  const double avg_deg = static_cast<double>(g.numEdges()) / g.numNodes();
  EXPECT_GE(avg_deg, 1.5) << GetParam();  // >= tree density
  EXPECT_LE(avg_deg, 6.0) << GetParam();  // PoP backbones are sparse
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, ZooStructure,
                         ::testing::ValuesIn(zooNames()));

}  // namespace
}  // namespace coyote::topo
