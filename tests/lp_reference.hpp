// Test-only LP oracle: a dense, tableau-based, two-phase textbook simplex
// with Bland's rule throughout.
//
// Deliberately the *opposite* design of src/lp/ (dense instead of sparse,
// artificial variables instead of composite phase 1, full tableau instead
// of eta-file factorization, always-Bland instead of Dantzig): the two
// implementations share no code paths, so agreement on a fuzzed instance
// is strong evidence both are right. lp_fuzz_test.cpp drives ~200 seeded
// random bounded LPs -- including post-failure (zeroed-capacity /
// fixed-variable) instances and warm-start mutation chains -- through both
// solvers and compares status + objective. This is the safety net that
// catches the warm-start corruption class of bug (a stale basis silently
// yielding a feasible-looking but non-optimal vertex) before it ships.
//
// Scope: small instances only (everything is O(rows * cols) per pivot and
// the tableau is dense); Bland's rule guarantees termination.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "lp/lp.hpp"
#include "util/require.hpp"

namespace coyote::lp_reference {

/// Dense mirror of lp::LpProblem that both the reference solver and the
/// fuzzer manipulate directly (LpProblem keeps its internals private).
struct DenseLp {
  lp::Sense sense = lp::Sense::kMinimize;
  std::vector<double> obj;                 ///< per variable
  std::vector<double> lb, ub;              ///< lb finite; ub may be +inf
  std::vector<std::vector<double>> rows;   ///< dense coefficient rows
  std::vector<lp::Rel> rels;
  std::vector<double> rhs;

  [[nodiscard]] int numVars() const { return static_cast<int>(obj.size()); }
  [[nodiscard]] int numRows() const { return static_cast<int>(rhs.size()); }

  int addVar(double c, double lo, double hi) {
    obj.push_back(c);
    lb.push_back(lo);
    ub.push_back(hi);
    for (auto& row : rows) row.push_back(0.0);
    return numVars() - 1;
  }

  void addRow(std::vector<double> coefs, lp::Rel rel, double b) {
    coefs.resize(obj.size(), 0.0);
    rows.push_back(std::move(coefs));
    rels.push_back(rel);
    rhs.push_back(b);
  }

  /// The equivalent lp::LpProblem (what the engine under test solves).
  [[nodiscard]] lp::LpProblem toProblem() const {
    lp::LpProblem p(sense);
    for (int j = 0; j < numVars(); ++j) p.addVar(obj[j], lb[j], ub[j]);
    for (int i = 0; i < numRows(); ++i) {
      std::vector<lp::Term> terms;
      for (int j = 0; j < numVars(); ++j) {
        if (rows[i][j] != 0.0) terms.push_back({j, rows[i][j]});
      }
      p.addConstraint(std::move(terms), rels[i], rhs[i]);
    }
    return p;
  }
};

struct RefResult {
  lp::Status status = lp::Status::kIterLimit;
  double objective = 0.0;
  [[nodiscard]] bool optimal() const { return status == lp::Status::kOptimal; }
};

namespace detail {

inline constexpr double kTol = 1e-9;

/// Full-tableau minimization with Bland's rule. `tab` is m x (n+1) with the
/// rhs in the last column; `cost` is the reduced-cost row (n+1 wide, last
/// entry the negated objective); `basis[i]` is the basic column of row i.
/// `eligible[j]` masks columns allowed to enter. Returns false if unbounded.
inline bool blandSimplex(std::vector<std::vector<double>>& tab,
                         std::vector<double>& cost, std::vector<int>& basis,
                         const std::vector<char>& eligible) {
  const std::size_t m = tab.size();
  const std::size_t n = cost.size() - 1;
  for (int iter = 0; iter < 100000; ++iter) {
    // Bland: lowest-index column with negative reduced cost.
    std::size_t enter = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (eligible[j] && cost[j] < -kTol) {
        enter = j;
        break;
      }
    }
    if (enter == n) return true;  // optimal
    // Ratio test; ties by lowest basic variable index (Bland).
    std::size_t leave = m;
    double best = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (tab[i][enter] <= kTol) continue;
      const double ratio = tab[i][n] / tab[i][enter];
      if (leave == m || ratio < best - kTol ||
          (ratio < best + kTol && basis[i] < basis[leave])) {
        leave = i;
        best = ratio;
      }
    }
    if (leave == m) return false;  // unbounded
    // Pivot on (leave, enter).
    const double piv = tab[leave][enter];
    for (std::size_t j = 0; j <= n; ++j) tab[leave][j] /= piv;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == leave || std::fabs(tab[i][enter]) <= 0.0) continue;
      const double f = tab[i][enter];
      for (std::size_t j = 0; j <= n; ++j) tab[i][j] -= f * tab[leave][j];
    }
    const double f = cost[enter];
    if (f != 0.0) {
      for (std::size_t j = 0; j <= n; ++j) cost[j] -= f * tab[leave][j];
    }
    basis[leave] = static_cast<int>(enter);
  }
  ensure(false, "reference simplex did not terminate");
  return false;
}

}  // namespace detail

/// Solves `p` from scratch. Statuses map onto lp::Status; objective is in
/// the problem's own sense (like lp::solve).
inline RefResult solve(const DenseLp& p) {
  using detail::kTol;
  const int n0 = p.numVars();

  // Standard form: x = lb + y, y >= 0; finite ub becomes an extra row.
  std::vector<std::vector<double>> A;
  std::vector<double> b;
  double shift = 0.0;  // c^T lb
  std::vector<double> c(p.obj);
  if (p.sense == lp::Sense::kMaximize) {
    for (double& cj : c) cj = -cj;
  }
  for (int j = 0; j < n0; ++j) shift += c[j] * p.lb[j];

  const auto pushRow = [&](const std::vector<double>& coefs, lp::Rel rel,
                           double rhs) {
    std::vector<double> row = coefs;
    row.resize(static_cast<std::size_t>(n0), 0.0);
    double rb = rhs;
    for (int j = 0; j < n0; ++j) rb -= row[j] * p.lb[j];
    // Slack: +1 (Le), -1 (Ge), none (Eq); appended later per row.
    A.push_back(std::move(row));
    b.push_back(rb);
    return rel;
  };
  std::vector<lp::Rel> rels;
  for (int i = 0; i < p.numRows(); ++i) {
    rels.push_back(pushRow(p.rows[i], p.rels[i], p.rhs[i]));
  }
  for (int j = 0; j < n0; ++j) {
    if (std::isfinite(p.ub[j])) {
      std::vector<double> row(static_cast<std::size_t>(n0), 0.0);
      row[j] = 1.0;
      rels.push_back(pushRow(row, lp::Rel::kLe, p.ub[j]));
    }
  }
  const std::size_t m = A.size();

  // Append slack columns, flip rows to nonnegative rhs, add artificials.
  std::size_t cols = static_cast<std::size_t>(n0);
  for (std::size_t i = 0; i < m; ++i) {
    if (rels[i] != lp::Rel::kEq) ++cols;
  }
  const std::size_t n_slacked = cols;
  cols += m;  // one artificial per row
  std::vector<std::vector<double>> tab(m, std::vector<double>(cols + 1, 0.0));
  std::vector<int> basis(m, -1);
  std::size_t next_slack = static_cast<std::size_t>(n0);
  for (std::size_t i = 0; i < m; ++i) {
    for (int j = 0; j < n0; ++j) tab[i][j] = A[i][j];
    if (rels[i] == lp::Rel::kLe) {
      tab[i][next_slack++] = 1.0;
    } else if (rels[i] == lp::Rel::kGe) {
      tab[i][next_slack++] = -1.0;
    }
    tab[i][cols] = b[i];
    if (tab[i][cols] < 0.0) {
      for (std::size_t j = 0; j <= cols; ++j) tab[i][j] = -tab[i][j];
    }
    const std::size_t art = n_slacked + i;
    tab[i][art] = 1.0;
    basis[i] = static_cast<int>(art);
  }

  // Phase 1: minimize the sum of artificials.
  std::vector<double> cost(cols + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= cols; ++j) cost[j] -= tab[i][j];
    cost[n_slacked + i] = 0.0;  // reduced cost of a basic column is 0
  }
  std::vector<char> eligible(cols, 1);
  if (!detail::blandSimplex(tab, cost, basis, eligible)) {
    // Phase 1 is bounded below by 0; unboundedness cannot happen.
    ensure(false, "phase 1 unbounded");
  }
  if (-cost[cols] > 1e-7) return {lp::Status::kInfeasible, 0.0};

  // Artificials may only linger at value 0; bar them from re-entering and
  // drive basic ones out where possible (a zero-rhs pivot, so feasibility
  // is untouched). A row with no real nonzero left is redundant: its
  // artificial stays basic at 0 and can never move again.
  for (std::size_t j = n_slacked; j < cols; ++j) eligible[j] = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < static_cast<int>(n_slacked)) continue;
    for (std::size_t j = 0; j < n_slacked; ++j) {
      if (std::fabs(tab[i][j]) <= kTol) continue;
      const double piv = tab[i][j];
      for (std::size_t k = 0; k <= cols; ++k) tab[i][k] /= piv;
      for (std::size_t r = 0; r < m; ++r) {
        if (r == i || tab[r][j] == 0.0) continue;
        const double f = tab[r][j];
        for (std::size_t k = 0; k <= cols; ++k) tab[r][k] -= f * tab[i][k];
      }
      basis[i] = static_cast<int>(j);
      break;
    }
  }

  // Phase 2 cost row from the phase-2 objective and the current basis.
  std::vector<double> c2(cols + 1, 0.0);
  for (int j = 0; j < n0; ++j) c2[j] = c[j];
  for (std::size_t i = 0; i < m; ++i) {
    const double cb = basis[i] < n0 ? c[basis[i]] : 0.0;
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j <= cols; ++j) c2[j] -= cb * tab[i][j];
  }
  for (std::size_t i = 0; i < m; ++i) c2[basis[i]] = 0.0;
  if (!detail::blandSimplex(tab, c2, basis, eligible)) {
    return {lp::Status::kUnbounded, 0.0};
  }

  double objective = -c2[cols] + shift;
  if (p.sense == lp::Sense::kMaximize) objective = -objective;
  return {lp::Status::kOptimal, objective};
}

}  // namespace coyote::lp_reference
