#include <gtest/gtest.h>

#include <cmath>

#include "core/dag_builder.hpp"
#include "routing/dual_certificate.hpp"
#include "routing/ecmp.hpp"
#include "routing/optu.hpp"
#include "routing/worst_case.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace coyote::routing {
namespace {

TEST(DualCertificate, StrongDualityOnRunningExample) {
  // The Theorem 5 certificate LP is the dual of the worst-case slave LP:
  // their optima must coincide edge by edge.
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig ecmp = ecmpConfig(g, dags);
  const ObliviousCertificate cert = certifyObliviousRatio(g, ecmp);
  const WorstCaseResult wc = findWorstCaseDemand(g, ecmp);
  EXPECT_NEAR(cert.ratio, wc.ratio, 1e-5);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const double primal = findWorstCaseDemandForEdge(g, ecmp, e).ratio;
    EXPECT_NEAR(cert.edges[e].ratio, primal, 1e-5) << "edge " << e;
  }
}

TEST(DualCertificate, CertificateValidates) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig uni = RoutingConfig::uniform(g, dags);
  const ObliviousCertificate cert = certifyObliviousRatio(g, uni);
  EXPECT_GT(cert.ratio, 1.0);
  EXPECT_TRUE(checkCertificate(g, uni, cert));
}

TEST(DualCertificate, TamperedCertificateIsRejected) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig uni = RoutingConfig::uniform(g, dags);
  ObliviousCertificate cert = certifyObliviousRatio(g, uni);
  ASSERT_TRUE(checkCertificate(g, uni, cert));
  // Claiming a smaller ratio must fail R1.
  cert.ratio *= 0.5;
  for (auto& ec : cert.edges) ec.ratio *= 0.5;
  EXPECT_FALSE(checkCertificate(g, uni, cert));
}

TEST(DualCertificate, ZeroedWeightsAreRejected) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig uni = RoutingConfig::uniform(g, dags);
  ObliviousCertificate cert = certifyObliviousRatio(g, uni);
  // Zero out the weights of the worst edge: R2 must now fail.
  int worst = 0;
  for (std::size_t i = 0; i < cert.edges.size(); ++i) {
    if (cert.edges[i].ratio > cert.edges[worst].ratio) {
      worst = static_cast<int>(i);
    }
  }
  std::fill(cert.edges[worst].pi.begin(), cert.edges[worst].pi.end(), 0.0);
  EXPECT_FALSE(checkCertificate(g, uni, cert));
}

class DualityOnBackbones : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualityOnBackbones, CertificateMatchesSlaveLp) {
  const Graph g = topo::randomBackbone(7, 3.0, GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig cfg = RoutingConfig::uniform(g, dags);
  const ObliviousCertificate cert = certifyObliviousRatio(g, cfg);
  const WorstCaseResult wc = findWorstCaseDemand(g, cfg);
  EXPECT_NEAR(cert.ratio, wc.ratio, 1e-4) << "seed " << GetParam();
  EXPECT_TRUE(checkCertificate(g, cfg, cert)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualityOnBackbones,
                         ::testing::Values(2u, 9u, 17u));

// ---------------------------------------------------------------------------
// Bounded demand sets (Appendix C, closing paragraph).
// ---------------------------------------------------------------------------

TEST(BoxCertificate, StrongDualityOnRunningExample) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig uni = RoutingConfig::uniform(g, dags);
  tm::TrafficMatrix base(g.numNodes());
  base.set(*g.findNode("s1"), *g.findNode("t"), 1.0);
  base.set(*g.findNode("s2"), *g.findNode("t"), 0.5);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);
  const BoxCertificate cert = certifyBoxRatio(g, uni, box);
  const WorstCaseResult wc = findWorstCaseDemand(g, uni, &box);
  EXPECT_NEAR(cert.ratio, wc.ratio, 1e-5);
  EXPECT_TRUE(checkBoxCertificate(g, uni, box, cert));
}

TEST(BoxCertificate, MarginOneCertifiesBaseOptimalAtOne) {
  // At margin 1 the box is {base}; the base-optimal routing must be
  // certified at exactly 1.0 (the regression scenario that exposed the
  // phase-2 artificial-drift solver bug).
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  tm::TrafficMatrix base(g.numNodes());
  base.set(*g.findNode("s1"), *g.findNode("t"), 1.0);
  base.set(*g.findNode("s2"), *g.findNode("t"), 1.0);
  const auto opt = optimalRoutingForDemand(g, dags, base);
  const tm::DemandBounds box = tm::marginBounds(base, 1.0);
  const BoxCertificate cert = certifyBoxRatio(g, opt.routing, box);
  EXPECT_NEAR(cert.ratio, 1.0, 1e-5);
  EXPECT_TRUE(checkBoxCertificate(g, opt.routing, box, cert));
}

TEST(BoxCertificate, TamperingIsRejected) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig uni = RoutingConfig::uniform(g, dags);
  const tm::DemandBounds box =
      tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0);
  BoxCertificate cert = certifyBoxRatio(g, uni, box);
  ASSERT_TRUE(checkBoxCertificate(g, uni, box, cert));
  cert.ratio *= 0.8;
  for (auto& ec : cert.edges) ec.ratio *= 0.8;
  EXPECT_FALSE(checkBoxCertificate(g, uni, box, cert));
}

TEST(BoxCertificate, TighterBoxCertifiesSmallerRatio) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig uni = RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const double r15 =
      certifyBoxRatio(g, uni, tm::marginBounds(base, 1.5)).ratio;
  const double r30 =
      certifyBoxRatio(g, uni, tm::marginBounds(base, 3.0)).ratio;
  EXPECT_LE(r15, r30 + 1e-9);
}

class BoxDualityOnBackbones : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BoxDualityOnBackbones, CertificateMatchesSlaveLp) {
  const Graph g = topo::randomBackbone(6, 3.0, GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig cfg = RoutingConfig::uniform(g, dags);
  const tm::DemandBounds box =
      tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0);
  const BoxCertificate cert = certifyBoxRatio(g, cfg, box);
  const WorstCaseResult wc = findWorstCaseDemand(g, cfg, &box);
  EXPECT_NEAR(cert.ratio, wc.ratio, 1e-4) << "seed " << GetParam();
  EXPECT_TRUE(checkBoxCertificate(g, cfg, box, cert))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxDualityOnBackbones,
                         ::testing::Values(4u, 12u, 23u));

TEST(DualCertificate, GoldenRoutingOnAbilene) {
  // A full-size sanity check: certificate == slave LP on ECMP/Abilene.
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig ecmp = ecmpConfig(g, dags);
  const ObliviousCertificate cert = certifyObliviousRatio(g, ecmp);
  const WorstCaseResult wc = findWorstCaseDemand(g, ecmp);
  EXPECT_NEAR(cert.ratio, wc.ratio, 1e-4);
  EXPECT_TRUE(checkCertificate(g, ecmp, cert));
}

}  // namespace
}  // namespace coyote::routing
