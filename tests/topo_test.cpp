#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "topo/generator.hpp"
#include "topo/parser.hpp"
#include "topo/zoo.hpp"

namespace coyote::topo {
namespace {

TEST(Zoo, AllNamesBuild) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    EXPECT_GE(g.numNodes(), 7) << name;
    EXPECT_GT(g.numEdges(), 0) << name;
    EXPECT_TRUE(g.stronglyConnected()) << name;
  }
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW((void)makeZoo("Atlantis"), std::invalid_argument);
}

TEST(Zoo, TableOneIsSubsetOfZoo) {
  const auto all = zooNames();
  const std::set<std::string> set(all.begin(), all.end());
  for (const auto& name : tableOneNames()) {
    EXPECT_TRUE(set.count(name)) << name;
  }
  // The paper's Table I drops the almost-tree networks.
  const auto t1 = tableOneNames();
  const std::set<std::string> t1set(t1.begin(), t1.end());
  EXPECT_FALSE(t1set.count("Gambia"));
  EXPECT_FALSE(t1set.count("BBNPlanet"));
}

TEST(Zoo, AbileneMatchesPublishedSize) {
  const Graph g = makeZoo("Abilene");
  EXPECT_EQ(g.numNodes(), 11);
  EXPECT_EQ(g.numEdges(), 2 * 14);  // 14 bidirectional links
}

TEST(Zoo, NsfMatchesPublishedSize) {
  const Graph g = makeZoo("NSF");
  EXPECT_EQ(g.numNodes(), 14);
  EXPECT_EQ(g.numEdges(), 2 * 21);
}

TEST(Zoo, GermanyMatchesNobelSize) {
  const Graph g = makeZoo("Germany");
  EXPECT_EQ(g.numNodes(), 17);
  EXPECT_EQ(g.numEdges(), 2 * 26);
}

TEST(Zoo, WeightsAreInverseCapacity) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    double max_cap = 0.0;
    for (const Edge& e : g.edges()) max_cap = std::max(max_cap, e.capacity);
    for (const Edge& e : g.edges()) {
      EXPECT_NEAR(e.weight, max_cap / e.capacity, 1e-9) << name;
    }
  }
}

TEST(Zoo, LinksAreBidirectional) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const Edge& ed = g.edge(e);
      ASSERT_NE(ed.reverse, kInvalidEdge) << name;
      EXPECT_EQ(g.edge(ed.reverse).reverse, e) << name;
    }
  }
}

TEST(Zoo, RunningExampleShape) {
  const Graph g = runningExample();
  EXPECT_EQ(g.numNodes(), 4);
  EXPECT_EQ(g.numEdges(), 2 * 5);
  ASSERT_TRUE(g.findNode("s1").has_value());
  ASSERT_TRUE(g.findNode("t").has_value());
  EXPECT_TRUE(g.findEdge(*g.findNode("s1"), *g.findNode("s2")).has_value());
  EXPECT_FALSE(g.findEdge(*g.findNode("s1"), *g.findNode("t")).has_value());
}

TEST(Zoo, PrototypeTriangleShape) {
  const Graph g = prototypeTriangle();
  EXPECT_EQ(g.numNodes(), 3);
  EXPECT_EQ(g.numEdges(), 2 * 3);
}

// ---------------------------------------------------------------------------

TEST(Parser, ParsesNodesAndLinks) {
  const Graph g = parseTopologyString(
      "# test\n"
      "node a\n"
      "node b\n"
      "link a b 2.5 4\n"
      "link b c 10\n");
  EXPECT_EQ(g.numNodes(), 3);
  EXPECT_EQ(g.numEdges(), 4);
  const auto ab = g.findEdge(*g.findNode("a"), *g.findNode("b"));
  ASSERT_TRUE(ab.has_value());
  EXPECT_DOUBLE_EQ(g.edge(*ab).capacity, 2.5);
  EXPECT_DOUBLE_EQ(g.edge(*ab).weight, 4.0);
}

TEST(Parser, DefaultCapacityIsOne) {
  const Graph g = parseTopologyString("link a b\n");
  EXPECT_DOUBLE_EQ(g.edge(0).capacity, 1.0);
}

TEST(Parser, CommentsAndBlankLines) {
  const Graph g = parseTopologyString(
      "\n   \n# full comment line\nlink a b 1 # trailing comment\n");
  EXPECT_EQ(g.numEdges(), 2);
}

TEST(Parser, RejectsUnknownDirective) {
  EXPECT_THROW((void)parseTopologyString("frobnicate a b\n"),
               std::invalid_argument);
}

TEST(Parser, RejectsSelfLink) {
  EXPECT_THROW((void)parseTopologyString("link a a 1\n"),
               std::invalid_argument);
}

TEST(Parser, ErrorsIncludeLineNumbers) {
  try {
    (void)parseTopologyString("node a\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RoundTripsAllZooTopologies) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    const Graph h = parseTopologyString(serializeTopologyString(g));
    ASSERT_EQ(h.numNodes(), g.numNodes()) << name;
    ASSERT_EQ(h.numEdges(), g.numEdges()) << name;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      EXPECT_EQ(h.nodeName(v), g.nodeName(v)) << name;
    }
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const auto found = h.findEdge(g.edge(e).src, g.edge(e).dst);
      ASSERT_TRUE(found.has_value()) << name;
      EXPECT_DOUBLE_EQ(h.edge(*found).capacity, g.edge(e).capacity) << name;
    }
  }
}

// ---------------------------------------------------------------------------

TEST(Generator, RingShape) {
  const Graph g = ring(6);
  EXPECT_EQ(g.numNodes(), 6);
  EXPECT_EQ(g.numEdges(), 12);
  EXPECT_TRUE(g.stronglyConnected());
  EXPECT_THROW((void)ring(2), std::invalid_argument);
}

TEST(Generator, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.numNodes(), 12);
  EXPECT_EQ(g.numEdges(), 2 * (3 * 3 + 2 * 4));
  EXPECT_TRUE(g.stronglyConnected());
}

TEST(Generator, FullMeshShape) {
  const Graph g = fullMesh(5);
  EXPECT_EQ(g.numEdges(), 5 * 4);
}

TEST(Generator, RandomBackboneDeterministic) {
  const Graph a = randomBackbone(15, 3.2, 42);
  const Graph b = randomBackbone(15, 3.2, 42);
  ASSERT_EQ(a.numEdges(), b.numEdges());
  for (EdgeId e = 0; e < a.numEdges(); ++e) {
    EXPECT_EQ(a.edge(e).src, b.edge(e).src);
    EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
    EXPECT_DOUBLE_EQ(a.edge(e).capacity, b.edge(e).capacity);
  }
  const Graph c = randomBackbone(15, 3.2, 43);
  bool differs = c.numEdges() != a.numEdges();
  for (EdgeId e = 0; !differs && e < std::min(a.numEdges(), c.numEdges()); ++e) {
    differs = a.edge(e).src != c.edge(e).src || a.edge(e).dst != c.edge(e).dst;
  }
  EXPECT_TRUE(differs);
}

class BackboneProperties
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(BackboneProperties, ConnectedWithRequestedDensity) {
  const auto [n, deg, seed] = GetParam();
  const Graph g = randomBackbone(n, deg, seed);
  EXPECT_EQ(g.numNodes(), n);
  EXPECT_TRUE(g.stronglyConnected());
  const double avg_degree = static_cast<double>(g.numEdges()) / n;
  EXPECT_GE(avg_degree, 2.0 - 1e-9);
  EXPECT_LE(avg_degree, deg + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackboneProperties,
    ::testing::Combine(::testing::Values(8, 16, 24),
                       ::testing::Values(2.5, 3.0, 4.0),
                       ::testing::Values(1u, 9u)));

}  // namespace
}  // namespace coyote::topo
