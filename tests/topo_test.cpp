#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "topo/generator.hpp"
#include "topo/parser.hpp"
#include "topo/zoo.hpp"

namespace coyote::topo {
namespace {

TEST(Zoo, AllNamesBuild) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    EXPECT_GE(g.numNodes(), 7) << name;
    EXPECT_GT(g.numEdges(), 0) << name;
    EXPECT_TRUE(g.stronglyConnected()) << name;
  }
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW((void)makeZoo("Atlantis"), std::invalid_argument);
}

TEST(Zoo, TableOneIsSubsetOfZoo) {
  const auto all = zooNames();
  const std::set<std::string> set(all.begin(), all.end());
  for (const auto& name : tableOneNames()) {
    EXPECT_TRUE(set.count(name)) << name;
  }
  // The paper's Table I drops the almost-tree networks.
  const auto t1 = tableOneNames();
  const std::set<std::string> t1set(t1.begin(), t1.end());
  EXPECT_FALSE(t1set.count("Gambia"));
  EXPECT_FALSE(t1set.count("BBNPlanet"));
}

TEST(Zoo, AbileneMatchesPublishedSize) {
  const Graph g = makeZoo("Abilene");
  EXPECT_EQ(g.numNodes(), 11);
  EXPECT_EQ(g.numEdges(), 2 * 14);  // 14 bidirectional links
}

TEST(Zoo, NsfMatchesPublishedSize) {
  const Graph g = makeZoo("NSF");
  EXPECT_EQ(g.numNodes(), 14);
  EXPECT_EQ(g.numEdges(), 2 * 21);
}

TEST(Zoo, GermanyMatchesNobelSize) {
  const Graph g = makeZoo("Germany");
  EXPECT_EQ(g.numNodes(), 17);
  EXPECT_EQ(g.numEdges(), 2 * 26);
}

TEST(Zoo, WeightsAreInverseCapacity) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    double max_cap = 0.0;
    for (const Edge& e : g.edges()) max_cap = std::max(max_cap, e.capacity);
    for (const Edge& e : g.edges()) {
      EXPECT_NEAR(e.weight, max_cap / e.capacity, 1e-9) << name;
    }
  }
}

TEST(Zoo, LinksAreBidirectional) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const Edge& ed = g.edge(e);
      ASSERT_NE(ed.reverse, kInvalidEdge) << name;
      EXPECT_EQ(g.edge(ed.reverse).reverse, e) << name;
    }
  }
}

TEST(Zoo, RunningExampleShape) {
  const Graph g = runningExample();
  EXPECT_EQ(g.numNodes(), 4);
  EXPECT_EQ(g.numEdges(), 2 * 5);
  ASSERT_TRUE(g.findNode("s1").has_value());
  ASSERT_TRUE(g.findNode("t").has_value());
  EXPECT_TRUE(g.findEdge(*g.findNode("s1"), *g.findNode("s2")).has_value());
  EXPECT_FALSE(g.findEdge(*g.findNode("s1"), *g.findNode("t")).has_value());
}

TEST(Zoo, PrototypeTriangleShape) {
  const Graph g = prototypeTriangle();
  EXPECT_EQ(g.numNodes(), 3);
  EXPECT_EQ(g.numEdges(), 2 * 3);
}

// ---------------------------------------------------------------------------

TEST(Parser, ParsesNodesAndLinks) {
  const Graph g = parseTopologyString(
      "# test\n"
      "node a\n"
      "node b\n"
      "link a b 2.5 4\n"
      "link b c 10\n");
  EXPECT_EQ(g.numNodes(), 3);
  EXPECT_EQ(g.numEdges(), 4);
  const auto ab = g.findEdge(*g.findNode("a"), *g.findNode("b"));
  ASSERT_TRUE(ab.has_value());
  EXPECT_DOUBLE_EQ(g.edge(*ab).capacity, 2.5);
  EXPECT_DOUBLE_EQ(g.edge(*ab).weight, 4.0);
}

TEST(Parser, DefaultCapacityIsOne) {
  const Graph g = parseTopologyString("link a b\n");
  EXPECT_DOUBLE_EQ(g.edge(0).capacity, 1.0);
}

TEST(Parser, CommentsAndBlankLines) {
  const Graph g = parseTopologyString(
      "\n   \n# full comment line\nlink a b 1 # trailing comment\n");
  EXPECT_EQ(g.numEdges(), 2);
}

TEST(Parser, RejectsUnknownDirective) {
  EXPECT_THROW((void)parseTopologyString("frobnicate a b\n"),
               std::invalid_argument);
}

TEST(Parser, RejectsSelfLink) {
  EXPECT_THROW((void)parseTopologyString("link a a 1\n"),
               std::invalid_argument);
}

TEST(Parser, ErrorsIncludeLineNumbers) {
  try {
    (void)parseTopologyString("node a\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RoundTripsAllZooTopologies) {
  for (const auto& name : zooNames()) {
    const Graph g = makeZoo(name);
    const Graph h = parseTopologyString(serializeTopologyString(g));
    ASSERT_EQ(h.numNodes(), g.numNodes()) << name;
    ASSERT_EQ(h.numEdges(), g.numEdges()) << name;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      EXPECT_EQ(h.nodeName(v), g.nodeName(v)) << name;
    }
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const auto found = h.findEdge(g.edge(e).src, g.edge(e).dst);
      ASSERT_TRUE(found.has_value()) << name;
      EXPECT_DOUBLE_EQ(h.edge(*found).capacity, g.edge(e).capacity) << name;
    }
  }
}

// ---------------------------------------------------------------------------

TEST(Generator, RingShape) {
  const Graph g = ring(6);
  EXPECT_EQ(g.numNodes(), 6);
  EXPECT_EQ(g.numEdges(), 12);
  EXPECT_TRUE(g.stronglyConnected());
  EXPECT_THROW((void)ring(2), std::invalid_argument);
}

TEST(Generator, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.numNodes(), 12);
  EXPECT_EQ(g.numEdges(), 2 * (3 * 3 + 2 * 4));
  EXPECT_TRUE(g.stronglyConnected());
}

TEST(Generator, FullMeshShape) {
  const Graph g = fullMesh(5);
  EXPECT_EQ(g.numEdges(), 5 * 4);
}

TEST(Generator, RandomBackboneDeterministic) {
  const Graph a = randomBackbone(15, 3.2, 42);
  const Graph b = randomBackbone(15, 3.2, 42);
  ASSERT_EQ(a.numEdges(), b.numEdges());
  for (EdgeId e = 0; e < a.numEdges(); ++e) {
    EXPECT_EQ(a.edge(e).src, b.edge(e).src);
    EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
    EXPECT_DOUBLE_EQ(a.edge(e).capacity, b.edge(e).capacity);
  }
  const Graph c = randomBackbone(15, 3.2, 43);
  bool differs = c.numEdges() != a.numEdges();
  for (EdgeId e = 0; !differs && e < std::min(a.numEdges(), c.numEdges()); ++e) {
    differs = a.edge(e).src != c.edge(e).src || a.edge(e).dst != c.edge(e).dst;
  }
  EXPECT_TRUE(differs);
}

class BackboneProperties
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(BackboneProperties, ConnectedWithRequestedDensity) {
  const auto [n, deg, seed] = GetParam();
  const Graph g = randomBackbone(n, deg, seed);
  EXPECT_EQ(g.numNodes(), n);
  EXPECT_TRUE(g.stronglyConnected());
  const double avg_degree = static_cast<double>(g.numEdges()) / n;
  EXPECT_GE(avg_degree, 2.0 - 1e-9);
  EXPECT_LE(avg_degree, deg + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackboneProperties,
    ::testing::Combine(::testing::Values(8, 16, 24),
                       ::testing::Values(2.5, 3.0, 4.0),
                       ::testing::Values(1u, 9u)));

// FNV-1a over the edge list (endpoints + capacity tier). Pins the exact
// structure the splitmix64 stream (util/rng.hpp) produces, so a platform-
// or refactor-induced drift in the generator's draw order fails loudly
// instead of silently invalidating committed baselines.
std::uint64_t structureHash(const Graph& g) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(g.numNodes());
  mix(g.numEdges());
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    mix(g.edge(e).src);
    mix(g.edge(e).dst);
    // Capacities are drawn from {1, 2.5, 10} -- exact in one decimal.
    mix(static_cast<std::uint64_t>(g.edge(e).capacity * 10.0 + 0.5));
  }
  return h;
}

TEST(Generator, RandomBackboneGoldenStructure) {
  EXPECT_EQ(structureHash(randomBackbone(20, 3.0, 7)),
            0x6eca76fbad4f9e41ull);
  EXPECT_EQ(structureHash(randomBackbone(40, 3.5, 123)),
            0xc1a78334819472adull);
}

// ---------------------------------------------------------------------------
// Structured DC/HPC generators (the kScaling ladders). Closed-form counts,
// degree histograms and diameter/bisection properties; see
// docs/topologies.md for the math.

std::vector<int> outDegreeHistogram(const Graph& g) {
  std::vector<int> hist;
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    const auto deg = g.outEdges(v).size();
    if (deg >= hist.size()) hist.resize(deg + 1, 0);
    ++hist[deg];
  }
  return hist;
}

class FatTreeProperties : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeProperties, ClosedFormCountsAndDegrees) {
  const int k = GetParam();
  const Graph g = fatTree(k);
  // 5k^2/4 switches (k^2/2 edge + k^2/2 agg + k^2/4 core), k^3/2 links.
  EXPECT_EQ(g.numNodes(), 5 * k * k / 4);
  EXPECT_EQ(g.numEdges(), static_cast<EdgeId>(k) * k * k);  // directed
  EXPECT_TRUE(g.stronglyConnected());
  // Degree histogram: edge switches have k/2 uplinks (hosts are not
  // modeled as nodes); agg and core switches have full degree k.
  const std::vector<int> hist = outDegreeHistogram(g);
  ASSERT_EQ(static_cast<int>(hist.size()), k + 1);
  EXPECT_EQ(hist[k / 2], k * k / 2);      // edge tier
  EXPECT_EQ(hist[k], 3 * k * k / 4);      // agg + core tiers
  for (std::size_t d = 0; d < hist.size(); ++d) {
    if (d != static_cast<std::size_t>(k / 2) &&
        d != static_cast<std::size_t>(k)) {
      EXPECT_EQ(hist[d], 0) << "degree " << d;
    }
  }
}

TEST_P(FatTreeProperties, CapacityTiersAndBisection) {
  const int k = GetParam();
  const Graph g = fatTree(k);
  const int half = k / 2;
  const auto tier = [&](NodeId v) {
    // Node-id layout: per-pod edge switches, per-pod agg switches, cores.
    if (v < static_cast<NodeId>(k * half)) return 0;      // edge
    if (v < static_cast<NodeId>(2 * k * half)) return 1;  // agg
    return 2;                                             // core
  };
  EdgeId left_uplinks = 0;  // agg->core links leaving the left-half pods
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const int lo = std::min(tier(ed.src), tier(ed.dst));
    const int hi = std::max(tier(ed.src), tier(ed.dst));
    ASSERT_EQ(hi, lo + 1);  // strictly inter-tier wiring
    EXPECT_DOUBLE_EQ(ed.capacity, lo == 0 ? 1.0 : 2.5);
    if (tier(ed.src) == 1 && tier(ed.dst) == 2) {
      const int pod = (static_cast<int>(ed.src) - k * half) / half;
      if (pod < half) ++left_uplinks;
    }
  }
  // Core-level bisection: the left k/2 pods own k^3/8 agg->core uplinks.
  EXPECT_EQ(left_uplinks, static_cast<EdgeId>(k) * k * k / 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeProperties, ::testing::Values(4, 8));

class DragonflyProperties
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DragonflyProperties, UniformDegreeAndDiameterThree) {
  const auto [a, h] = GetParam();
  const Graph g = dragonfly(a, /*p=*/2, h);
  const int groups = a * h + 1;
  EXPECT_EQ(g.numNodes(), a * groups);
  // Complete local graph per group + one global link per group pair.
  EXPECT_EQ(g.numEdges(),
            static_cast<EdgeId>(groups) * a * (a - 1) +
                static_cast<EdgeId>(groups) * (groups - 1));
  EXPECT_TRUE(g.stronglyConnected());
  // Every router: (a-1) local neighbors + exactly h global links.
  const std::vector<int> hist = outDegreeHistogram(g);
  ASSERT_EQ(static_cast<int>(hist.size()), a + h);
  EXPECT_EQ(hist[(a - 1) + h], a * groups);
  // local -> global -> local reaches any router in <= 3 hops.
  for (NodeId s = 0; s < g.numNodes(); ++s) {
    std::vector<int> dist(g.numNodes(), -1);
    std::vector<NodeId> frontier = {s};
    dist[s] = 0;
    for (int hops = 0; hops < 3 && !frontier.empty(); ++hops) {
      std::vector<NodeId> next;
      for (const NodeId v : frontier) {
        for (const EdgeId e : g.outEdges(v)) {
          const NodeId w = g.edge(e).dst;
          if (dist[w] < 0) {
            dist[w] = hops + 1;
            next.push_back(w);
          }
        }
      }
      frontier = std::move(next);
    }
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      ASSERT_GE(dist[t], 0) << "router " << t << " is > 3 hops from " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DragonflyProperties,
                         ::testing::Values(std::tuple<int, int>{3, 2},
                                           std::tuple<int, int>{4, 2},
                                           std::tuple<int, int>{6, 3}));

TEST(Generator, Torus2dShape) {
  const Graph g = torus2d(4, 5);
  EXPECT_EQ(g.numNodes(), 20);
  // Every node has exactly 4 neighbors (grid + wraparound).
  EXPECT_EQ(g.numEdges(), 4u * 20);
  const std::vector<int> hist = outDegreeHistogram(g);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[4], 20);
  EXPECT_TRUE(g.stronglyConnected());
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    EXPECT_DOUBLE_EQ(g.edge(e).capacity, 1.0);
  }
  EXPECT_THROW((void)torus2d(2, 5), std::invalid_argument);
}

TEST(Generator, HammingMeshShape) {
  const int x = 2, y = 3, bx = 3, by = 2;
  const Graph g = hammingMesh(x, y, bx, by);
  EXPECT_EQ(g.numNodes(), x * y * bx * by);
  EXPECT_TRUE(g.stronglyConnected());
  // Intra-board links are the 2D-mesh links of every board; inter-board
  // links pairwise-connect board-rows (one per node-row) and
  // board-columns (one per node-column).
  const EdgeId mesh_per_board = 2u * (by * (bx - 1) + bx * (by - 1));
  const EdgeId intra = static_cast<EdgeId>(x * y) * mesh_per_board;
  const EdgeId inter = 2u * (static_cast<EdgeId>(y) * (x * (x - 1) / 2) * by +
                             static_cast<EdgeId>(x) * (y * (y - 1) / 2) * bx);
  EXPECT_EQ(g.numEdges(), intra + inter);
  // Capacity tiers: unit inside a board, 2.5 between boards.
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& ed = g.edge(e);
    const int board_src = static_cast<int>(ed.src) / (bx * by);
    const int board_dst = static_cast<int>(ed.dst) / (bx * by);
    EXPECT_DOUBLE_EQ(ed.capacity, board_src == board_dst ? 1.0 : 2.5);
  }
}

TEST(Generator, StructuredGeneratorsRejectBadArguments) {
  EXPECT_THROW((void)fatTree(3), std::invalid_argument);   // odd k
  EXPECT_THROW((void)fatTree(2), std::invalid_argument);   // k < 4
  EXPECT_THROW((void)dragonfly(1, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)dragonfly(4, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)hammingMesh(0, 2, 2, 2), std::invalid_argument);
  EXPECT_THROW((void)hammingMesh(2, 2, 1, 2), std::invalid_argument);
}

TEST(Generator, TieredGeneratorsUseInverseCapacityWeights) {
  for (const Graph& g :
       {fatTree(4), dragonfly(4, 2, 2), hammingMesh(2, 2, 2, 2)}) {
    double max_cap = 0.0;
    for (const Edge& e : g.edges()) max_cap = std::max(max_cap, e.capacity);
    for (const Edge& e : g.edges()) {
      EXPECT_NEAR(e.weight, max_cap / e.capacity, 1e-9);
    }
  }
}

}  // namespace
}  // namespace coyote::topo
