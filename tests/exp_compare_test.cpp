// exp::compareBenchDirs / compareDocuments -- the library behind the
// bench_compare CLI and CI's perf gate: timing regressions beyond the
// threshold fail, within-threshold noise passes, and deterministic row
// values may not drift.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "exp/compare.hpp"
#include "util/json.hpp"

namespace coyote::exp {
namespace {

namespace fs = std::filesystem;
namespace json = util::json;

json::Value benchDoc(const std::string& scenario, double ecmp,
                     double median_seconds) {
  json::Value doc = json::Value::object();
  doc["schema"] = "coyote-bench/1";
  doc["scenario"] = scenario;
  json::Value row = json::Value::object();
  row["margin"] = 2.0;
  row["ecmp"] = ecmp;
  row["partial"] = 1.1;
  json::Value rows = json::Value::array();
  rows.push_back(std::move(row));
  doc["rows"] = std::move(rows);
  json::Value timing = json::Value::object();
  timing["median_seconds"] = median_seconds;
  doc["timing"] = std::move(timing);
  return doc;
}

bool hasKind(const CompareReport& report, CompareFinding::Kind kind) {
  for (const CompareFinding& f : report.findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

TEST(CompareDocuments, IdenticalDocumentsPass) {
  const json::Value doc = benchDoc("s", 1.5, 1.0);
  CompareReport report;
  compareDocuments(doc, doc, CompareOptions{}, &report);
  EXPECT_TRUE(report.pass()) << report.text();
  EXPECT_EQ(report.compared, 1);
}

TEST(CompareDocuments, RegressionBeyondThresholdFails) {
  CompareOptions opt;
  opt.max_regression = 0.25;
  // +50% median wall time: an artificially slowed candidate must fail.
  CompareReport report;
  compareDocuments(benchDoc("s", 1.5, 1.0), benchDoc("s", 1.5, 1.5), opt,
                   &report);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kRegression));
  EXPECT_FALSE(hasKind(report, CompareFinding::Kind::kDrift));
}

TEST(CompareDocuments, WithinThresholdTimingPasses) {
  CompareOptions opt;
  opt.max_regression = 0.25;
  CompareReport report;
  compareDocuments(benchDoc("s", 1.5, 1.0), benchDoc("s", 1.5, 1.2), opt,
                   &report);
  EXPECT_TRUE(report.pass()) << report.text();
  // Speedups never fail, however large.
  compareDocuments(benchDoc("s", 1.5, 1.0), benchDoc("s", 1.5, 0.01), opt,
                   &report);
  EXPECT_TRUE(report.pass()) << report.text();
}

TEST(CompareDocuments, TimingFloorAbsorbsSubMillisecondNoise) {
  CompareOptions opt;
  opt.max_regression = 1.0;
  opt.min_gate_seconds = 0.01;
  // 90us -> 1.4ms is a 15x relative blowup but pure scheduler noise;
  // the gate measures it against the 10ms floor instead.
  CompareReport report;
  compareDocuments(benchDoc("s", 1.5, 9e-5), benchDoc("s", 1.5, 1.4e-3), opt,
                   &report);
  EXPECT_TRUE(report.pass()) << report.text();
  // A genuine hang still fails: way past floor * (1 + threshold).
  compareDocuments(benchDoc("s", 1.5, 9e-5), benchDoc("s", 1.5, 10.0), opt,
                   &report);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kRegression));
}

// kServe scenarios publish events_per_second and event_p99_ms under
// "timing"; bench_compare applies explicit regression gates to them.
json::Value serveDoc(const std::string& scenario, double events_per_second,
                     double event_p99_ms) {
  json::Value doc = benchDoc(scenario, 1.5, 1.0);
  doc["timing"]["events_per_second"] = events_per_second;
  doc["timing"]["event_p99_ms"] = event_p99_ms;
  return doc;
}

// Fresh-report comparison verdict (compareDocuments accumulates into
// its report, so each check needs its own).
bool servePasses(const json::Value& baseline, const json::Value& cand) {
  CompareOptions opt;
  opt.max_regression = 0.25;
  CompareReport report;
  compareDocuments(baseline, cand, opt, &report);
  return report.pass();
}

TEST(CompareDocuments, ServeP99RegressionFails) {
  // p99 40ms -> 80ms is +100%: fail, and it is a regression finding.
  CompareOptions opt;
  opt.max_regression = 0.25;
  CompareReport report;
  compareDocuments(serveDoc("serve", 50.0, 40.0),
                   serveDoc("serve", 50.0, 80.0), opt, &report);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kRegression));
  // Within threshold (and improvements) pass.
  EXPECT_TRUE(servePasses(serveDoc("serve", 50.0, 40.0),
                          serveDoc("serve", 50.0, 45.0)));
  EXPECT_TRUE(servePasses(serveDoc("serve", 50.0, 40.0),
                          serveDoc("serve", 50.0, 5.0)));
  // The min-gate floor (10ms default) absorbs sub-floor latency noise.
  EXPECT_TRUE(servePasses(serveDoc("serve", 50.0, 0.2),
                          serveDoc("serve", 50.0, 3.0)));
}

TEST(CompareDocuments, ServeThroughputRegressionFails) {
  // 50 -> 20 events/s is a -60% throughput collapse: fail.
  CompareOptions opt;
  opt.max_regression = 0.25;
  CompareReport report;
  compareDocuments(serveDoc("serve", 50.0, 40.0),
                   serveDoc("serve", 20.0, 40.0), opt, &report);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kRegression));
  // Within threshold (and speedups) pass.
  EXPECT_TRUE(servePasses(serveDoc("serve", 50.0, 40.0),
                          serveDoc("serve", 45.0, 40.0)));
  EXPECT_TRUE(servePasses(serveDoc("serve", 50.0, 40.0),
                          serveDoc("serve", 500.0, 40.0)));
  // Above 1/min_gate_seconds the per-event cost is sub-floor noise: a
  // 5000 -> 90 events/s drop still gates against the 100 events/s cap.
  EXPECT_TRUE(servePasses(serveDoc("serve", 5000.0, 40.0),
                          serveDoc("serve", 90.0, 40.0)));
  EXPECT_FALSE(servePasses(serveDoc("serve", 5000.0, 40.0),
                           serveDoc("serve", 60.0, 40.0)));
}

TEST(CompareDocuments, ServeGatesAreSilentWhenKeysAbsent) {
  // Pre-serve baseline vs serve candidate (and vice versa): no gate.
  EXPECT_TRUE(servePasses(benchDoc("serve", 1.5, 1.0),
                          serveDoc("serve", 1.0, 1e6)));
  EXPECT_TRUE(servePasses(serveDoc("serve", 50.0, 40.0),
                          benchDoc("serve", 1.5, 1.0)));
  // Serve timing fields are run metadata: never drift-gated, so an
  // identical document with serve keys compares clean against itself.
  const json::Value doc = serveDoc("serve", 50.0, 40.0);
  EXPECT_TRUE(servePasses(doc, doc));
}

TEST(CompareDocuments, ResultDriftFailsEvenWhenTimingIsFine) {
  CompareReport report;
  compareDocuments(benchDoc("s", 1.5, 1.0), benchDoc("s", 1.5001, 1.0),
                   CompareOptions{}, &report);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kDrift));
  // The finding names the offending field.
  ASSERT_FALSE(report.findings.empty());
  EXPECT_NE(report.findings[0].what.find("ecmp"), std::string::npos);
}

TEST(CompareDocuments, SummaryFieldDriftIsDetected) {
  // Kind-specific top-level results (fig12's 'verified'/'fake_nodes',
  // fig09's 'ecmp_gap_percent', 'ok') are deterministic and gated too;
  // run metadata (git, threads, timing, description) is not.
  json::Value baseline = benchDoc("s", 1.5, 1.0);
  baseline["ok"] = true;
  baseline["fake_nodes"] = 4;
  baseline["verified"] = true;
  baseline["git"] = "aaa";

  json::Value candidate = baseline;
  candidate["git"] = "bbb";  // provenance may differ freely
  CompareReport clean;
  compareDocuments(baseline, candidate, CompareOptions{}, &clean);
  EXPECT_TRUE(clean.pass()) << clean.text();

  candidate["fake_nodes"] = 40;
  candidate["verified"] = false;
  CompareReport report;
  compareDocuments(baseline, candidate, CompareOptions{}, &report);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kDrift));
  EXPECT_NE(report.text().find("fake_nodes"), std::string::npos);
  EXPECT_NE(report.text().find("verified"), std::string::npos);
}

TEST(CompareDocuments, LpTelemetryIsExemptFromDriftAndReportedAsInfo) {
  // Schema coyote-bench/2 solver telemetry: lp_* fields are deterministic
  // for one binary but toolchain-sensitive, so they must never gate -- at
  // any nesting level -- and lp_pivots deltas surface as INFO findings.
  const auto docWithLp = [](double pivots, double frac, double row_pivots) {
    json::Value doc = benchDoc("s", 1.5, 1.0);
    doc["lp_pivots"] = pivots;
    doc["lp_solves"] = 64.0;
    doc["lp_time_frac"] = frac;
    json::Value row = json::Value::object();
    row["margin"] = 2.0;
    row["ecmp"] = 1.5;
    row["partial"] = 1.1;
    row["lp_pivots"] = row_pivots;
    json::Value rows = json::Value::array();
    rows.push_back(std::move(row));
    doc["rows"] = std::move(rows);
    return doc;
  };
  const json::Value baseline = docWithLp(1000.0, 0.5, 500.0);
  const json::Value candidate = docWithLp(400.0, 0.9, 123.0);

  CompareReport report;
  compareDocuments(baseline, candidate, CompareOptions{}, &report);
  EXPECT_TRUE(report.pass()) << report.text();
  EXPECT_FALSE(hasKind(report, CompareFinding::Kind::kDrift));
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kInfo));
  EXPECT_NE(report.text().find("lp_pivots 1000 -> 400"), std::string::npos)
      << report.text();
}

TEST(CompareDocuments, PerSchemeLpTelemetryInDynamicRowsIsExempt) {
  // Schema coyote-bench/4 rows carry a per-scheme LP breakdown under
  // lp_scheme_solves/lp_scheme_pivots. Tamper test: the candidate's
  // per-scheme pivot counts differ wildly, and the gate must not care --
  // the lp_ prefix exempts the whole subtree, exactly as schema-2 did for
  // the flat lp_* fields.
  const auto docWithSchemeLp = [](double ecmp_pivots) {
    json::Value doc = benchDoc("s", 1.5, 1.0);
    json::Value row = json::Value::object();
    row["margin"] = 2.0;
    row["ecmp"] = 1.5;
    row["partial"] = 1.1;
    json::Value pivots = json::Value::object();
    pivots["ecmp"] = ecmp_pivots;
    pivots["partial"] = 2.0 * ecmp_pivots;
    row["lp_scheme_pivots"] = std::move(pivots);
    json::Value solves = json::Value::object();
    solves["ecmp"] = ecmp_pivots / 10.0;
    row["lp_scheme_solves"] = std::move(solves);
    json::Value rows = json::Value::array();
    rows.push_back(std::move(row));
    doc["rows"] = std::move(rows);
    return doc;
  };
  CompareReport report;
  compareDocuments(docWithSchemeLp(1000.0), docWithSchemeLp(7.0),
                   CompareOptions{}, &report);
  EXPECT_TRUE(report.pass()) << report.text();
  EXPECT_FALSE(hasKind(report, CompareFinding::Kind::kDrift));
}

TEST(CompareDocuments, CandidateOnlySchemeRowsAreInfoNotDrift) {
  // Dynamic rows (coyote-bench/4): a candidate swept with extra --schemes
  // carries row fields the baseline never had. Those are surfaced as
  // [INFO] and never gate; a scheme the *baseline* recorded going missing
  // in the candidate stays hard drift.
  const json::Value baseline = benchDoc("s", 1.5, 1.0);
  json::Value candidate = benchDoc("s", 1.5, 1.0);
  {
    json::Value row = json::Value::object();
    row["margin"] = 2.0;
    row["ecmp"] = 1.5;
    row["partial"] = 1.1;
    row["semi-oblivious"] = 1.3;  // candidate-only scheme
    json::Value rows = json::Value::array();
    rows.push_back(std::move(row));
    candidate["rows"] = std::move(rows);
  }

  CompareReport report;
  compareDocuments(baseline, candidate, CompareOptions{}, &report);
  EXPECT_TRUE(report.pass()) << report.text();
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kInfo));
  EXPECT_NE(report.text().find("semi-oblivious"), std::string::npos)
      << report.text();

  // The reverse direction -- baseline row field absent from the candidate
  // -- is result drift, not forward compatibility.
  json::Value pruned = benchDoc("s", 1.5, 1.0);
  json::Value row = json::Value::object();
  row["margin"] = 2.0;
  row["ecmp"] = 1.5;  // 'partial' dropped
  json::Value rows = json::Value::array();
  rows.push_back(std::move(row));
  pruned["rows"] = std::move(rows);
  CompareReport missing;
  compareDocuments(baseline, pruned, CompareOptions{}, &missing);
  EXPECT_FALSE(missing.pass());
  EXPECT_TRUE(hasKind(missing, CompareFinding::Kind::kDrift));
  EXPECT_NE(missing.text().find("partial"), std::string::npos);
}

TEST(CompareDocuments, SchemesSelectionListIsRunMetadata) {
  // The top-level "schemes" array names the sweep selection; like
  // full/exact it is run metadata, so a baseline regenerated at schema 4
  // diffs cleanly against a pre-schemes candidate and vice versa.
  json::Value baseline = benchDoc("s", 1.5, 1.0);
  json::Value schemes = json::Value::array();
  schemes.push_back(std::string("ecmp"));
  baseline["schemes"] = std::move(schemes);
  const json::Value candidate = benchDoc("s", 1.5, 1.0);
  CompareReport report;
  compareDocuments(baseline, candidate, CompareOptions{}, &report);
  EXPECT_TRUE(report.pass()) << report.text();
}

TEST(CompareDocuments, UnknownCandidateFieldsAreIgnoredForwardCompat) {
  // A candidate produced by a newer schema may add summary fields the
  // baseline lacks; the baseline-driven walk must not flag them.
  const json::Value baseline = benchDoc("s", 1.5, 1.0);
  json::Value candidate = benchDoc("s", 1.5, 1.0);
  candidate["schema"] = "coyote-bench/99";
  candidate["future_summary_field"] = 42.0;
  CompareReport report;
  compareDocuments(baseline, candidate, CompareOptions{}, &report);
  EXPECT_TRUE(report.pass()) << report.text();
}

TEST(CompareDocuments, RowCountChangeIsDrift) {
  json::Value baseline = benchDoc("s", 1.5, 1.0);
  json::Value candidate = benchDoc("s", 1.5, 1.0);
  candidate["rows"].push_back(json::Value::object());
  CompareReport report;
  compareDocuments(baseline, candidate, CompareOptions{}, &report);
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kDrift));
}

TEST(CompareDocuments, MissingSectionsAreMalformed) {
  const json::Value good = benchDoc("s", 1.5, 1.0);
  CompareReport report;
  compareDocuments(json::parse(R"({"scenario":"s"})"), good, CompareOptions{},
                   &report);
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kMalformed));

  CompareReport no_median;
  compareDocuments(json::parse(R"({"scenario":"s","rows":[],"timing":{}})"),
                   good, CompareOptions{}, &no_median);
  EXPECT_TRUE(hasKind(no_median, CompareFinding::Kind::kMalformed));
}

class CompareBenchDirsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) / "coyote_compare" / info->name();
    baseline_ = root_ / "baseline";
    candidate_ = root_ / "candidate";
    fs::create_directories(baseline_);
    fs::create_directories(candidate_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static void write(const fs::path& dir, const std::string& scenario,
                    const json::Value& doc) {
    std::ofstream out(dir / ("BENCH_" + scenario + ".json"));
    out << doc.dump(2);
  }

  fs::path root_, baseline_, candidate_;
};

TEST_F(CompareBenchDirsTest, MatchingDirectoriesPass) {
  write(baseline_, "a", benchDoc("a", 1.5, 1.0));
  write(baseline_, "b", benchDoc("b", 2.0, 0.5));
  write(candidate_, "a", benchDoc("a", 1.5, 1.1));
  write(candidate_, "b", benchDoc("b", 2.0, 0.55));
  const CompareReport report = compareBenchDirs(baseline_, candidate_);
  EXPECT_TRUE(report.pass()) << report.text();
  EXPECT_EQ(report.compared, 2);
  EXPECT_NE(report.text().find("OK"), std::string::npos);
}

TEST_F(CompareBenchDirsTest, SlowedCandidateIsReportedPerScenario) {
  write(baseline_, "a", benchDoc("a", 1.5, 1.0));
  write(baseline_, "b", benchDoc("b", 2.0, 1.0));
  write(candidate_, "a", benchDoc("a", 1.5, 1.0));
  write(candidate_, "b", benchDoc("b", 2.0, 2.0));  // 2x slower
  const CompareReport report = compareBenchDirs(baseline_, candidate_);
  EXPECT_FALSE(report.pass());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].scenario, "b");
  EXPECT_EQ(report.findings[0].kind, CompareFinding::Kind::kRegression);
  EXPECT_NE(report.text().find("REGRESSION"), std::string::npos);
}

TEST_F(CompareBenchDirsTest, LooserThresholdAbsorbsTheSameSlowdown) {
  write(baseline_, "b", benchDoc("b", 2.0, 1.0));
  write(candidate_, "b", benchDoc("b", 2.0, 2.0));
  CompareOptions opt;
  opt.max_regression = 1.5;  // allow up to 2.5x
  EXPECT_TRUE(compareBenchDirs(baseline_, candidate_, opt).pass());
}

TEST_F(CompareBenchDirsTest, MissingCandidateFile) {
  write(baseline_, "a", benchDoc("a", 1.5, 1.0));
  const CompareReport strict = compareBenchDirs(baseline_, candidate_);
  EXPECT_FALSE(strict.pass());
  EXPECT_TRUE(hasKind(strict, CompareFinding::Kind::kMissing));

  CompareOptions opt;
  opt.require_all = false;
  EXPECT_TRUE(compareBenchDirs(baseline_, candidate_, opt).pass());
}

TEST_F(CompareBenchDirsTest, DroppedScenarioIsHardEvenAmongPassingOnes) {
  // Tamper case: the candidate run quietly lost one gated scenario (a
  // deregistered serve replay, a filter typo) while everything it did
  // produce matches. That must stay a hard MISSING failure -- extra
  // candidate-only files must not mask it.
  write(baseline_, "a", benchDoc("a", 1.5, 1.0));
  write(baseline_, "serve", benchDoc("serve", 2.0, 1.0));
  write(candidate_, "a", benchDoc("a", 1.5, 1.0));
  write(candidate_, "new", benchDoc("new", 9.9, 9.9));
  const CompareReport report = compareBenchDirs(baseline_, candidate_);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kMissing));
  bool names_dropped = false;
  for (const CompareFinding& f : report.findings) {
    names_dropped |= f.kind == CompareFinding::Kind::kMissing &&
                     f.scenario == "BENCH_serve.json";
  }
  EXPECT_TRUE(names_dropped);
}

TEST_F(CompareBenchDirsTest, ExtraCandidateFilesAreInfoNotGated) {
  // New scenarios may land before their baseline is refreshed: they must
  // not fail the gate, but the walk surfaces them instead of silently
  // skipping (a scenario nobody gates should be visible in the report).
  write(baseline_, "a", benchDoc("a", 1.5, 1.0));
  write(candidate_, "a", benchDoc("a", 1.5, 1.0));
  write(candidate_, "new", benchDoc("new", 9.9, 9.9));
  const CompareReport report = compareBenchDirs(baseline_, candidate_);
  EXPECT_TRUE(report.pass());
  bool surfaced = false;
  for (const CompareFinding& f : report.findings) {
    surfaced |= f.kind == CompareFinding::Kind::kInfo &&
                f.scenario == "BENCH_new.json" &&
                f.what.find("candidate-only scenario") != std::string::npos;
  }
  EXPECT_TRUE(surfaced);
}

TEST_F(CompareBenchDirsTest, MalformedInputsAreFindingsNotCrashes) {
  write(baseline_, "a", benchDoc("a", 1.5, 1.0));
  std::ofstream(candidate_ / "BENCH_a.json") << "{not json";
  const CompareReport report = compareBenchDirs(baseline_, candidate_);
  EXPECT_FALSE(report.pass());
  EXPECT_TRUE(hasKind(report, CompareFinding::Kind::kMalformed));

  const CompareReport no_dir =
      compareBenchDirs(baseline_, (root_ / "absent").string());
  EXPECT_FALSE(no_dir.pass());

  const CompareReport empty_base =
      compareBenchDirs((root_ / "absent").string(), candidate_);
  EXPECT_FALSE(empty_base.pass());
}

}  // namespace
}  // namespace coyote::exp
