// The link-failure robustness subsystem (src/failure/): scenario
// enumeration, post-failure network derivation (capacity zeroing, DAG
// repair, OSPF reconvergence), the scheme failure evaluator (generic over
// te::Scheme lists; the paper's four by default), its warm-started OPTU
// re-solves, thread-count bit-identity, and the experiment-runner
// integration (coyote-bench/4 'failures' block).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "failure/degrade.hpp"
#include "failure/evaluate.hpp"
#include "failure/scenario.hpp"
#include "graph/dijkstra.hpp"
#include "lp/stats.hpp"
#include "routing/optu.hpp"
#include "routing/propagation.hpp"
#include "routing/worst_case.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace coyote::failure {
namespace {

// ---------------------------------------------------------------------------
// Enumeration.
// ---------------------------------------------------------------------------

TEST(FailureScenarios, SingleLinkEnumerationOnRunningExample) {
  const Graph g = topo::runningExample();
  const auto links = physicalLinks(g);
  EXPECT_EQ(links.size(), 5u);  // Fig. 1a has five bidirectional links
  const auto fails = singleLinkFailures(g);
  ASSERT_EQ(fails.size(), 5u);
  EXPECT_EQ(fails[0].label, "s1-s2");
  for (const FailureScenario& f : fails) {
    ASSERT_EQ(f.links.size(), 1u);
    // Both directions are failed.
    EXPECT_EQ(directedEdges(g, f).size(), 2u);
  }
}

TEST(FailureScenarios, DoubleLinkSamplingIsDeterministicAndUnique) {
  const Graph g = topo::makeZoo("Abilene");
  const auto a = sampledDoubleLinkFailures(g, 10, 17);
  const auto b = sampledDoubleLinkFailures(g, 10, 17);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].links, b[i].links);
    EXPECT_EQ(a[i].links.size(), 2u);
    EXPECT_LT(a[i].links[0], a[i].links[1]);
  }
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_NE(a[i - 1].links, a[i].links);  // sorted + without replacement
  }
  // A different seed draws a different sample (overwhelmingly likely).
  const auto c = sampledDoubleLinkFailures(g, 10, 18);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].links != c[i].links;
  }
  EXPECT_TRUE(any_diff);
  // Requesting more pairs than exist returns all of them.
  const Graph tri = topo::prototypeTriangle();
  EXPECT_EQ(sampledDoubleLinkFailures(tri, 100, 1).size(), 3u);
}

TEST(FailureScenarios, DerivedSrlgsSkipDegreeTwoNodes) {
  const Graph g = topo::runningExample();
  const auto srlgs = derivedSrlgs(g);
  // s1 and t have degree 2; s2 and v have degree 3.
  ASSERT_EQ(srlgs.size(), 2u);
  EXPECT_EQ(srlgs[0].name, "s2");
  EXPECT_EQ(srlgs[1].name, "v");
  for (const Srlg& s : srlgs) EXPECT_EQ(s.links.size(), 2u);
  const auto fails = srlgFailures(g, srlgs);
  ASSERT_EQ(fails.size(), 2u);
  EXPECT_EQ(fails[0].label, "srlg:s2");
  // A triangle has no node of degree >= 3: no derived SRLGs.
  EXPECT_TRUE(derivedSrlgs(topo::prototypeTriangle()).empty());
}

// ---------------------------------------------------------------------------
// Degraded network derivation.
// ---------------------------------------------------------------------------

TEST(Degrade, CapacityZeroingAndSpfWithdrawal) {
  const Graph g = topo::runningExample();
  const NodeId s2 = *g.findNode("s2");
  const NodeId v = *g.findNode("v");
  const NodeId t = *g.findNode("t");
  const EdgeId s2t = *g.findEdge(s2, t);
  const FailureScenario f{"s2-t", {std::min(s2t, g.edge(s2t).reverse)}};

  const Graph degraded = degradedGraph(g, f);
  EXPECT_EQ(degraded.edge(s2t).capacity, 0.0);
  EXPECT_EQ(degraded.edge(degraded.edge(s2t).reverse).capacity, 0.0);
  EXPECT_EQ(degraded.numEdges(), g.numEdges());  // ids preserved

  // SPF treats the zero-capacity link as withdrawn: s2's distance to t
  // goes from 1 (direct) to 2 (via v), and the direct edge leaves the
  // next-hop set.
  EXPECT_DOUBLE_EQ(shortestPathsTo(g, t).dist[s2], 1.0);
  const ShortestPathsToDest sp = shortestPathsTo(degraded, t);
  EXPECT_DOUBLE_EQ(sp.dist[s2], 2.0);
  for (const EdgeId e : ecmpNextHops(degraded, sp, s2)) {
    EXPECT_NE(e, s2t);
  }
  // Still strongly connected; failing v-t too disconnects t.
  EXPECT_TRUE(degraded.stronglyConnected());
  const EdgeId vt = *g.findEdge(v, t);
  FailureScenario both = f;
  both.links.push_back(std::min(vt, g.edge(vt).reverse));
  EXPECT_FALSE(degradedGraph(g, both).stronglyConnected());
}

TEST(Degrade, RepairedDagsAreAcyclicPrunedAndNormalized) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const auto uniform = routing::RoutingConfig::uniform(g, dags);
  for (const FailureScenario& f : singleLinkFailures(g)) {
    const auto failed = failedEdgeMask(g, f);
    // Dag's constructor rejects cycles, so construction is the acyclicity
    // check; on top, no failed edge may survive and every surviving edge
    // must lead to a node that still reaches the destination.
    const auto repaired = repairDags(g, *dags, failed);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      const Dag& dag = (*repaired)[t];
      for (const EdgeId e : dag.edges()) {
        EXPECT_FALSE(failed[e]) << f.label;
        EXPECT_TRUE(dag.reachesDest(g.edge(e).dst)) << f.label;
      }
    }
    // Split renormalization: the repaired config is structurally valid
    // (ratios sum to 1 wherever the repaired DAG still reaches dest) and
    // places zero traffic on failed edges.
    const auto cfg = repairRouting(g, uniform, repaired);
    EXPECT_NO_THROW(cfg.validate(g)) << f.label;
    const Graph degraded = degradedGraph(g, f);
    if (degraded.stronglyConnected()) {
      const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
      const double mxlu = routing::maxLinkUtilization(degraded, cfg, base);
      EXPECT_TRUE(std::isfinite(mxlu)) << f.label;  // no load on dead links
    }
  }
}

TEST(Degrade, ReconvergedEcmpMatchesPostFailureShortestPaths) {
  const Graph g = topo::runningExample();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId v = *g.findNode("v");
  const NodeId t = *g.findNode("t");
  const EdgeId s2t = *g.findEdge(s2, t);
  const FailureScenario f{"s2-t", {std::min(s2t, g.edge(s2t).reverse)}};
  const Graph degraded = degradedGraph(g, f);

  const auto ecmp = reconvergedEcmp(degraded);
  // s2 now reaches t only via v.
  EXPECT_DOUBLE_EQ(ecmp.ratio(t, *g.findEdge(s2, v)), 1.0);
  // s1 is equidistant via s2 (1+2) and v (1+1)? No: via v costs 2, via s2
  // costs 3 -- all of s1's traffic to t goes via v.
  EXPECT_DOUBLE_EQ(ecmp.ratio(t, *g.findEdge(s1, v)), 1.0);
  EXPECT_NO_THROW(ecmp.validate(degraded));
  EXPECT_TRUE(routesAllDemands(ecmp, tm::uniformMatrix(g, 1.0)));
}

TEST(Degrade, DisconnectedPairsOnAPath) {
  Graph g;
  const NodeId a = g.addNode("a");
  const NodeId b = g.addNode("b");
  const NodeId c = g.addNode("c");
  g.addLink(a, b);
  const EdgeId bc = g.addLink(b, c);
  tm::TrafficMatrix base(3);
  base.set(a, c, 1.0);
  base.set(c, a, 2.0);
  base.set(a, b, 1.0);
  const FailureScenario f{"b-c", {bc}};
  const Graph degraded = degradedGraph(g, f);
  // a->c and c->a are cut; a->b survives.
  EXPECT_EQ(disconnectedPairs(degraded, base), 2);
  EXPECT_EQ(disconnectedPairs(g, base), 0);
}

// ---------------------------------------------------------------------------
// Hand-computed post-failure ratio on the running example (Fig. 1a).
// ---------------------------------------------------------------------------

// Failing link s2-v leaves the uniform in-DAG splitting with MxLU 2 on the
// (s2 -> t: 2) corner: s2's repaired DAG forwards everything on the direct
// edge, while the unrestricted optimum re-routes half of it s2->s1->v->t
// for OPTU_f = 1. The (s1 -> t: 2) corner stays optimal (split 1/1 over
// two edge-disjoint surviving paths). Post-failure ratio = max(1, 2) = 2.
TEST(PostFailureRatio, HandComputedOnRunningExample) {
  const Graph g = topo::runningExample();
  const NodeId s1 = *g.findNode("s1");
  const NodeId s2 = *g.findNode("s2");
  const NodeId v = *g.findNode("v");
  const NodeId t = *g.findNode("t");
  const EdgeId s2v = *g.findEdge(s2, v);
  const FailureScenario f{"s2-v", {std::min(s2v, g.edge(s2v).reverse)}};

  const auto dags = core::augmentedDagsShared(g);
  auto cfg = routing::RoutingConfig::uniform(g, dags);
  // Pin the splits the hand computation assumes (uniform() already gives
  // these; set them explicitly so the test does not depend on DAG shape).
  cfg.setRatio(t, *g.findEdge(s1, s2), 0.5);
  cfg.setRatio(t, *g.findEdge(s1, v), 0.5);

  const auto repaired = repairDags(g, *dags, failedEdgeMask(g, f));
  const auto post = repairRouting(g, cfg, repaired);
  // s2's only surviving DAG edge toward t is the direct link.
  EXPECT_DOUBLE_EQ(post.ratio(t, *g.findEdge(s2, t)), 1.0);

  tm::TrafficMatrix d1(g.numNodes()), d2(g.numNodes());
  d1.set(s1, t, 2.0);
  d2.set(s2, t, 2.0);
  const Graph degraded = degradedGraph(g, f);
  routing::OptuEngine engine(g);  // unrestricted OPTU on the intact graph
  engine.setFailedEdges(directedEdges(g, f));

  const double optu1 = engine.utilization(d1);
  const double optu2 = engine.utilization(d2);
  EXPECT_NEAR(optu1, 1.0, 1e-9);  // s1-s2-t and s1-v-t, one unit each
  EXPECT_NEAR(optu2, 1.0, 1e-9);  // s2-t direct plus s2-s1-v-t
  EXPECT_NEAR(routing::maxLinkUtilization(degraded, post, d1), 1.0, 1e-12);
  EXPECT_NEAR(routing::maxLinkUtilization(degraded, post, d2), 2.0, 1e-12);

  const double ratio =
      std::max(routing::maxLinkUtilization(degraded, post, d1) / optu1,
               routing::maxLinkUtilization(degraded, post, d2) / optu2);
  EXPECT_NEAR(ratio, 2.0, 1e-9);

  // Cross-checks: the warm post-failure engine agrees with a cold solve
  // on the degraded graph, and restoring the intact network brings the
  // s2 corner back to optimal 1.0 (two surviving two-edge routes).
  EXPECT_NEAR(routing::optimalUtilizationUnrestricted(degraded, d2), optu2,
              1e-9);
  engine.setFailedEdges({});
  EXPECT_NEAR(engine.utilization(d2), 1.0, 1e-9);
  // Failing s1-s2 *and* s2-v leaves s2 only the direct edge: OPTU 2.
  const EdgeId s1s2 = *g.findEdge(s1, s2);
  engine.setFailedEdges(
      directedEdges(g, {"", {std::min(s1s2, g.edge(s1s2).reverse),
                             std::min(s2v, g.edge(s2v).reverse)}}));
  EXPECT_NEAR(engine.utilization(d2), 2.0, 1e-9);
}

TEST(PostFailureRatio, WorstCaseOracleAgreesUnderFailure) {
  // The exact slave-LP oracle with zeroed capacity rows must agree with a
  // brute-force check: worst demand for the repaired uniform config on the
  // running example, within the margin-2 box around the uniform matrix.
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const auto uniform = routing::RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix base = tm::uniformMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);

  const auto fails = singleLinkFailures(g);
  routing::WorstCaseOracle oracle(g, dags, &box);
  const routing::WorstCaseResult intact = oracle.find(uniform);
  EXPECT_GT(intact.ratio, 0.0);

  for (const FailureScenario& f : fails) {
    if (!degradedGraph(g, f).stronglyConnected()) continue;
    const auto repaired = repairDags(g, *dags, failedEdgeMask(g, f));
    // Re-express over the oracle's DAG set: surviving ratios, zero on
    // failed/pruned edges (repairRouting normalized them already).
    const auto post = repairRouting(g, uniform, repaired);
    auto over_original = routing::RoutingConfig(g, dags);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      for (const EdgeId e : (*repaired)[t].edges()) {
        over_original.setRatio(t, e, post.ratio(t, e));
      }
    }
    oracle.setFailedEdges(directedEdges(g, f));
    const routing::WorstCaseResult wc = oracle.find(over_original);
    // The witness demand must be routable on the survivors and its ratio
    // reproducible by plain propagation.
    const Graph degraded = degradedGraph(g, f);
    const double mxlu =
        routing::maxLinkUtilization(degraded, over_original, wc.demand);
    EXPECT_NEAR(mxlu, wc.ratio, 1e-6) << f.label;
    oracle.setFailedEdges({});
  }
  // After restoring, the oracle reproduces its intact answer.
  const routing::WorstCaseResult again = oracle.find(uniform);
  EXPECT_NEAR(again.ratio, intact.ratio, 1e-9);
}

// ---------------------------------------------------------------------------
// The four-scheme failure evaluator.
// ---------------------------------------------------------------------------

FailureEvalOptions quickOptions() {
  FailureEvalOptions opt;
  opt.coyote.splitting.iterations = 120;
  opt.pool.random_corners = 2;
  opt.pool.pair_hotspots = 2;
  return opt;
}

TEST(FailureEvaluator, RunningExampleSweepIsSaneAndNormalized) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::uniformMatrix(g, 1.0);
  const FailureEvaluator eval(g, dags, base, quickOptions());
  const FailureSweepResult res = eval.evaluate(singleLinkFailures(g));

  ASSERT_EQ(res.outcomes.size(), 5u);
  EXPECT_EQ(res.evaluated, 5);  // no single failure disconnects Fig. 1a
  EXPECT_EQ(res.disconnecting, 0);
  // Default scheme list: the paper's four, keyed by registry key.
  ASSERT_EQ(res.schemes.size(), 4u);
  EXPECT_EQ(res.schemes[0].first, "ecmp");
  EXPECT_EQ(res.schemes[3].first, "partial");
  for (const FailureOutcome& o : res.outcomes) {
    ASSERT_TRUE(o.evaluated) << o.label;
    // OSPF reconvergence always finds a route on a connected graph; the
    // static schemes may be stranded (e.g. failing v-t leaves v's DAG for
    // t without out-edges even though the graph stays connected).
    EXPECT_TRUE(o.routable[0]) << o.label;  // [0] == "ecmp"
    for (std::size_t s = 0; s < o.ratio.size(); ++s) {
      if (!o.routable[s]) continue;
      // Ratios are normalized by the unrestricted post-failure optimum: a
      // destination-based routing can never beat it.
      EXPECT_GE(o.ratio[s], 1.0 - 1e-7) << o.label;
      EXPECT_LT(o.ratio[s], 50.0) << o.label;
    }
  }
  for (const auto& [key, st] : res.schemes) {
    EXPECT_EQ(st.evaluated + st.unroutable, 5) << key;
    EXPECT_GT(st.evaluated, 0) << key;
    EXPECT_GE(st.worst, st.p95) << key;
    EXPECT_GE(st.p95, st.median) << key;
    EXPECT_GE(st.median, 1.0 - 1e-7) << key;
  }
  EXPECT_EQ(res.schemes[0].second.unroutable, 0);  // reconverged ECMP
}

TEST(FailureEvaluator, DisconnectingFailuresAreReportedNotCrashedOn) {
  // Every single-link failure of a tree disconnects some demand pair.
  const Graph g = topo::makeZoo("Gambia");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const FailureEvaluator eval(g, dags, base, quickOptions());
  const FailureSweepResult res = eval.evaluate(singleLinkFailures(g));
  EXPECT_EQ(res.evaluated, 0);
  EXPECT_EQ(res.disconnecting, static_cast<int>(res.outcomes.size()));
  EXPECT_GT(res.disconnected_pairs, 0);
  for (const FailureOutcome& o : res.outcomes) {
    EXPECT_FALSE(o.evaluated);
    EXPECT_GT(o.disconnected_pairs, 0) << o.label;
  }
  for (const auto& [key, st] : res.schemes) {
    EXPECT_EQ(st.evaluated, 0) << key;
    EXPECT_EQ(st.worst, 0.0) << key;
  }
}

TEST(FailureEvaluator, FullSweepIsBitIdenticalAcrossThreadCounts) {
  const Graph g = topo::grid(3, 3);
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const auto fails = singleLinkFailures(g);

  std::vector<FailureSweepResult> results;
  for (const unsigned threads : {1u, 2u, 8u}) {
    FailureEvalOptions opt = quickOptions();
    opt.threads = threads;
    const FailureEvaluator eval(g, dags, base, opt);
    results.push_back(eval.evaluate(fails));
  }
  const FailureSweepResult& ref = results.front();
  ASSERT_EQ(ref.outcomes.size(), fails.size());
  for (std::size_t r = 1; r < results.size(); ++r) {
    const FailureSweepResult& other = results[r];
    ASSERT_EQ(other.outcomes.size(), ref.outcomes.size());
    for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
      EXPECT_EQ(ref.outcomes[i].evaluated, other.outcomes[i].evaluated);
      EXPECT_EQ(ref.outcomes[i].disconnected_pairs,
                other.outcomes[i].disconnected_pairs);
      for (std::size_t s = 0; s < ref.outcomes[i].ratio.size(); ++s) {
        // Bit-identical, not merely close.
        EXPECT_EQ(ref.outcomes[i].ratio[s], other.outcomes[i].ratio[s])
            << "failure " << ref.outcomes[i].label << " scheme " << s
            << " threads run " << r;
      }
    }
    for (std::size_t s = 0; s < ref.schemes.size(); ++s) {
      EXPECT_EQ(ref.schemes[s].second.worst, other.schemes[s].second.worst);
      EXPECT_EQ(ref.schemes[s].second.median,
                other.schemes[s].second.median);
      EXPECT_EQ(ref.schemes[s].second.p95, other.schemes[s].second.p95);
    }
  }
}

TEST(FailureEvaluator, WarmStartedResolvesBeatColdOnes) {
  const Graph g = topo::grid(3, 3);
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const FailureEvaluator eval(g, dags, base, quickOptions());
  const auto fails = singleLinkFailures(g);

  const lp::StatsSnapshot before_warm = lp::statsSnapshot();
  const FailureSweepResult warm = eval.evaluate(fails);
  const lp::StatsSnapshot warm_delta = lp::statsSnapshot() - before_warm;

  ASSERT_EQ(::setenv("COYOTE_LP_COLD", "1", 1), 0);
  const lp::StatsSnapshot before_cold = lp::statsSnapshot();
  const FailureSweepResult cold = eval.evaluate(fails);
  const lp::StatsSnapshot cold_delta = lp::statsSnapshot() - before_cold;
  ::unsetenv("COYOTE_LP_COLD");

  // Same verdicts (up to LP vertex choice the ratios agree closely)...
  ASSERT_EQ(warm.evaluated, cold.evaluated);
  for (std::size_t i = 0; i < warm.outcomes.size(); ++i) {
    for (std::size_t s = 0; s < warm.outcomes[i].ratio.size(); ++s) {
      if (warm.outcomes[i].routable[s]) {
        EXPECT_NEAR(warm.outcomes[i].ratio[s], cold.outcomes[i].ratio[s],
                    1e-7 * (1.0 + cold.outcomes[i].ratio[s]));
      }
    }
  }
  // ...but the warm sweep reuses bases and pays far fewer pivots. The
  // warm run may report *more* solve() calls than the cold one -- the
  // decomposition pre-solve's per-destination block LPs are counted too
  // (COYOTE_LP_COLD disables the pre-solve along with warm chaining) --
  // so the comparison is on total pivots, where the block solves are
  // also included. The acceptance bar for the GEANT bench sweep is 1.5x;
  // the 3x3 grid already clears it.
  EXPECT_GE(warm_delta.solves, cold_delta.solves);
  EXPECT_LT(warm_delta.iterations * 3, cold_delta.iterations * 2)
      << "warm pivots " << warm_delta.iterations << " vs cold "
      << cold_delta.iterations;
}

// ---------------------------------------------------------------------------
// Registry + runner integration.
// ---------------------------------------------------------------------------

TEST(FailureScenarioRegistry, SmokeAndFigureScenariosHaveFailureVariants) {
  const exp::ScenarioRegistry& reg = exp::ScenarioRegistry::global();
  for (const exp::Scenario& s : reg.all()) {
    if (s.kind == exp::ScenarioKind::kFailure) continue;
    if (!(s.hasTag("smoke") || s.hasTag("figure"))) continue;
    const bool single_topology = s.kind == exp::ScenarioKind::kSchemes ||
                                 s.kind == exp::ScenarioKind::kLocalSearch ||
                                 s.kind == exp::ScenarioKind::kQuantization ||
                                 s.kind == exp::ScenarioKind::kPrototype;
    if (!single_topology) continue;  // fig11/table1 sweep network lists
    const exp::Scenario* fail1 = reg.find(s.id + "-fail1");
    ASSERT_NE(fail1, nullptr) << s.id;
    EXPECT_EQ(fail1->kind, exp::ScenarioKind::kFailure);
    EXPECT_TRUE(fail1->hasTag("failure"));
    EXPECT_EQ(fail1->failure.model, exp::FailureSpec::Model::kSingleLink);
    EXPECT_NE(reg.find(s.id + "-srlg"), nullptr) << s.id;
  }
  // The CI smoke gate runs exactly one failure scenario.
  int smoke_failures = 0;
  for (const exp::Scenario* s : reg.match("smoke")) {
    smoke_failures += s->kind == exp::ScenarioKind::kFailure;
  }
  EXPECT_EQ(smoke_failures, 1);
  ASSERT_NE(reg.find("running-example-fail1"), nullptr);
  EXPECT_TRUE(reg.find("running-example-fail1")->hasTag("smoke"));
  // Double-link variants exist where registered.
  EXPECT_NE(reg.find("running-example-fail2"), nullptr);
  EXPECT_NE(reg.find("fig06-fail2"), nullptr);
  EXPECT_EQ(reg.find("fig11-fail1"), nullptr);
  EXPECT_EQ(reg.find("table1-fail1"), nullptr);
}

TEST(FailureRunner, EmitsSchemaFourFailuresBlock) {
  const exp::Scenario* s =
      exp::ScenarioRegistry::global().find("running-example-fail1");
  ASSERT_NE(s, nullptr);
  exp::RunOptions opt;
  opt.print = false;
  const exp::ExperimentRunner runner(opt);
  const exp::ScenarioResult result = runner.run(*s);
  EXPECT_TRUE(result.ok);

  const util::json::Value& doc = result.document;
  EXPECT_EQ(doc.stringOr("schema", ""), "coyote-bench/6");
  EXPECT_EQ(doc.stringOr("kind", ""), "failure");
  EXPECT_EQ(doc.stringOr("failure_model", ""), "single-link");
  const util::json::Value* rows = doc.find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->asArray().size(), 5u);
  const util::json::Value* block = doc.find("failures");
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->stringOr("model", ""), "single-link");
  EXPECT_EQ(block->numberOr("scenarios", -1.0), 5.0);
  EXPECT_EQ(block->numberOr("evaluated", -1.0), 5.0);
  EXPECT_EQ(block->numberOr("disconnecting", -1.0), 0.0);
  const util::json::Value* schemes = block->find("schemes");
  ASSERT_NE(schemes, nullptr);
  for (const char* key : {"ecmp", "base", "oblivious", "partial"}) {
    const util::json::Value* st = schemes->find(key);
    ASSERT_NE(st, nullptr) << key;
    EXPECT_GE(st->numberOr("worst", -1.0), 1.0 - 1e-7) << key;
    EXPECT_GE(st->numberOr("worst", -1.0), st->numberOr("p95", 1e9)) << key;
  }
}

TEST(FailureRunner, EverySmokeFailureVariantRunsGreen) {
  // The acceptance bar: every smoke scenario's -fail1 variant runs green
  // end to end (the srlg/fail2 variants of the running example ride
  // along; the remaining variants are exercised by the COYOTE_FULL
  // integration sweep).
  const exp::ScenarioRegistry& reg = exp::ScenarioRegistry::global();
  std::vector<std::string> ids;
  for (const exp::Scenario* s : reg.match("smoke")) {
    if (s->kind != exp::ScenarioKind::kFailure &&
        reg.find(s->id + "-fail1") != nullptr) {
      ids.push_back(s->id + "-fail1");
    }
  }
  ids.emplace_back("running-example-srlg");
  ids.emplace_back("running-example-fail2");
  exp::RunOptions opt;
  opt.print = false;
  const exp::ExperimentRunner runner(opt);
  for (const std::string& id : ids) {
    const exp::Scenario* s = reg.find(id);
    ASSERT_NE(s, nullptr) << id;
    const exp::ScenarioResult result = runner.run(*s);
    EXPECT_TRUE(result.ok) << id;
    const util::json::Value* block = result.document.find("failures");
    ASSERT_NE(block, nullptr) << id;
    EXPECT_GE(block->numberOr("scenarios", -1.0), 0.0) << id;
  }
}

}  // namespace
}  // namespace coyote::failure
