#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "core/local_search.hpp"
#include "core/splitting_optimizer.hpp"
#include "routing/ecmp.hpp"
#include "routing/propagation.hpp"
#include "routing/worst_case.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace coyote::core {
namespace {

const double kGolden = (std::sqrt(5.0) - 1.0) / 2.0;

// ---------------------------------------------------------------------------
// DAG augmentation (Sec. V-B Step II).
// ---------------------------------------------------------------------------

class AugmentationOnZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(AugmentationOnZoo, EveryLinkOrientedExactlyOnce) {
  const Graph g = topo::makeZoo(GetParam());
  const DagSet dags = augmentedDags(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    const Dag& dag = dags[t];
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const Edge& ed = g.edge(e);
      if (ed.reverse == kInvalidEdge || ed.reverse < e) continue;
      const bool fwd = dag.contains(e);
      const bool bwd = dag.contains(ed.reverse);
      if (ed.src == t || ed.dst == t) {
        // Links incident to the destination point into it only.
        EXPECT_TRUE(fwd != bwd) << GetParam();
      } else {
        EXPECT_TRUE(fwd ^ bwd)
            << GetParam() << ": link " << g.nodeName(ed.src) << "-"
            << g.nodeName(ed.dst) << " t=" << g.nodeName(t);
      }
    }
    // Everyone reaches the destination inside the augmented DAG.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      EXPECT_TRUE(dag.reachesDest(v)) << GetParam();
    }
  }
}

TEST_P(AugmentationOnZoo, ContainsShortestPathDag) {
  const Graph g = topo::makeZoo(GetParam());
  const DagSet aug = augmentedDags(g);
  const DagSet sp = routing::shortestPathDags(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    for (const EdgeId e : sp[t].edges()) {
      EXPECT_TRUE(aug[t].contains(e)) << GetParam() << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, AugmentationOnZoo,
                         ::testing::ValuesIn(topo::zooNames()));

TEST(Augmentation, TieBreakMatchesRunningExample) {
  const Graph g = topo::runningExample();
  const NodeId s2 = *g.findNode("s2");
  const NodeId v = *g.findNode("v");
  const NodeId t = *g.findNode("t");
  const Dag dag = augmentedDag(g, t);
  // dist(s2)=dist(v)=1 under unit weights: tie broken s2 -> v (Fig. 1c).
  EXPECT_TRUE(dag.contains(*g.findEdge(s2, v)));
  EXPECT_FALSE(dag.contains(*g.findEdge(v, s2)));
}

TEST(Augmentation, SkipsLinksWhenEndpointUnreachable) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();  // c only has an incoming edge from b
  const NodeId t = g.addNode();
  g.addLink(a, b);
  g.addLink(a, t);
  g.addEdge(b, c);
  const Dag dag = augmentedDag(g, t);
  EXPECT_TRUE(dag.reachesDest(a));
  EXPECT_TRUE(dag.reachesDest(b));
  EXPECT_FALSE(dag.reachesDest(c));
}

// ---------------------------------------------------------------------------
// Splitting optimization (Sec. V-C): the Appendix B closed form.
// ---------------------------------------------------------------------------

struct GoldenFixture {
  Graph g = topo::runningExample();
  NodeId s1, s2, v, t;
  std::shared_ptr<const DagSet> dags;
  routing::PerformanceEvaluator eval;

  GoldenFixture()
      : s1(*g.findNode("s1")),
        s2(*g.findNode("s2")),
        v(*g.findNode("v")),
        t(*g.findNode("t")),
        dags(augmentedDagsShared(g)),
        eval(g, dags) {
    tm::TrafficMatrix d1(g.numNodes()), d2(g.numNodes());
    d1.set(s1, t, 2.0);
    d2.set(s2, t, 2.0);
    eval.addMatrix(d1);
    eval.addMatrix(d2);
  }
};

class GoldenRatioRecovery : public ::testing::TestWithParam<SplitMethod> {};

TEST_P(GoldenRatioRecovery, OptimizerFindsTheClosedForm) {
  GoldenFixture fx;
  SplittingOptions opt;
  opt.method = GetParam();
  opt.iterations = 1500;
  const routing::RoutingConfig cfg = optimizeSplitting(
      fx.g, fx.eval, routing::RoutingConfig::uniform(fx.g, fx.dags), opt);
  // Appendix B: the optimum is phi(s1,s2)=phi(s2,t)=(sqrt(5)-1)/2 with
  // worst-case utilization sqrt(5)-1 ~ 1.236.
  EXPECT_NEAR(fx.eval.ratioFor(cfg), std::sqrt(5.0) - 1.0, 0.01);
  EXPECT_NEAR(cfg.ratio(fx.t, *fx.g.findEdge(fx.s1, fx.s2)), kGolden, 0.03);
  EXPECT_NEAR(cfg.ratio(fx.t, *fx.g.findEdge(fx.s2, fx.t)), kGolden, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Methods, GoldenRatioRecovery,
                         ::testing::Values(SplitMethod::kGpCondensation,
                                           SplitMethod::kMirrorDescent));

TEST(SplittingOptimizer, NeverWorseThanItsStartingPoint) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = augmentedDagsShared(g);
  routing::PerformanceEvaluator eval(g, dags);
  eval.addPool(tm::cornerPool(
      tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), {true, true, 4, 5}));
  const auto init = routing::RoutingConfig::uniform(g, dags);
  SplittingOptions opt;
  opt.iterations = 150;
  const auto cfg = optimizeSplitting(g, eval, init, opt);
  EXPECT_LE(eval.ratioFor(cfg), eval.ratioFor(init) + 1e-9);
}

TEST(SplittingOptimizer, PrunesTinyRatios) {
  GoldenFixture fx;
  SplittingOptions opt;
  opt.iterations = 400;
  opt.prune_below = 1e-3;
  const auto cfg = optimizeSplitting(
      fx.g, fx.eval, routing::RoutingConfig::uniform(fx.g, fx.dags), opt);
  for (NodeId t = 0; t < fx.g.numNodes(); ++t) {
    for (const EdgeId e : (*fx.dags)[t].edges()) {
      const double r = cfg.ratio(t, e);
      EXPECT_TRUE(r == 0.0 || r >= 1e-4) << r;
    }
  }
}

TEST(SplittingOptimizer, RejectsEmptyPool) {
  const Graph g = topo::runningExample();
  const auto dags = augmentedDagsShared(g);
  routing::PerformanceEvaluator eval(g, dags);
  EXPECT_THROW((void)optimizeSplitting(
                   g, eval, routing::RoutingConfig::uniform(g, dags), {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Full pipeline.
// ---------------------------------------------------------------------------

TEST(Coyote, SingleMatrixPoolIsLpExact) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  // Margin 1: the box degenerates to {base}; COYOTE-pk must be optimal.
  const CoyoteResult res =
      coyoteWithBounds(g, dags, tm::marginBounds(base, 1.0), {});
  EXPECT_NEAR(res.pool_ratio, 1.0, 1e-5);
}

TEST(Coyote, NeverWorseThanEcmpOnSharedPool) {
  for (const auto& name : {"Abilene", "NSF", "Germany"}) {
    const Graph g = topo::makeZoo(name);
    const auto dags = augmentedDagsShared(g);
    routing::PerformanceEvaluator pool(g, dags);
    pool.addPool(tm::cornerPool(
        tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.5), {true, true, 4, 3}));
    CoyoteOptions opt;
    opt.splitting.iterations = 250;
    const CoyoteResult res = optimizeAgainstPool(g, pool, nullptr, opt);
    const auto ecmp = routing::ecmpConfig(g, dags);
    EXPECT_LE(res.pool_ratio, pool.ratioFor(ecmp) + 1e-9) << name;
  }
}

TEST(Coyote, ObliviousBeatsEcmpOnRunningExample) {
  const Graph g = topo::runningExample();
  const auto dags = augmentedDagsShared(g);
  routing::PerformanceEvaluator pool(g, dags);
  pool.addPool(tm::obliviousPool(g.numNodes()));
  CoyoteOptions opt;
  opt.oracle_rounds = 3;  // tiny network: exact cutting planes are cheap
  const CoyoteResult res = optimizeAgainstPool(g, pool, nullptr, opt);
  const auto ecmp = routing::ecmpConfig(g, dags);
  EXPECT_LE(res.pool_ratio, pool.ratioFor(ecmp) + 1e-9);
  // The exact oblivious ratio (all senders, slave LP) also improves on ECMP.
  const double coyote_exact =
      routing::findWorstCaseDemand(g, res.routing).ratio;
  const double ecmp_exact = routing::findWorstCaseDemand(g, ecmp).ratio;
  EXPECT_LE(coyote_exact, ecmp_exact + 1e-6);
}

TEST(Coyote, OracleRoundsGrowThePool) {
  const Graph g = topo::runningExample();
  const auto dags = augmentedDagsShared(g);
  routing::PerformanceEvaluator pool(g, dags);
  tm::ObliviousPoolOptions pool_opt;
  pool_opt.destination_concentrated = true;
  pool_opt.random_sparse = 0;
  pool.addPool(tm::obliviousPool(g.numNodes(), pool_opt));
  const int before = pool.size();
  CoyoteOptions opt;
  opt.oracle_rounds = 2;
  (void)optimizeAgainstPool(g, pool, nullptr, opt);
  EXPECT_GE(pool.size(), before);  // oracle may add worst-case matrices
}

TEST(Coyote, PartialKnowledgeNoWorseThanOblivious) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);

  CoyoteOptions opt;
  opt.splitting.iterations = 250;
  const CoyoteResult pk = coyoteWithBounds(g, dags, box, opt);
  const CoyoteResult obl = coyoteOblivious(g, dags, opt);

  // Evaluate both on the same margin-2 corner pool: knowing the bounds can
  // only help (up to optimizer noise).
  routing::PerformanceEvaluator eval(g, dags);
  eval.addPool(tm::cornerPool(box, {true, true, 6, 17}));
  EXPECT_LE(eval.ratioFor(pk.routing), eval.ratioFor(obl.routing) + 0.10);
}

// ---------------------------------------------------------------------------
// Local search (Appendix A).
// ---------------------------------------------------------------------------

TEST(LocalSearch, ReturnsIntegralWeightsInRange) {
  const Graph g = topo::makeZoo("Abilene");
  const tm::DemandBounds box =
      tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0);
  LocalSearchOptions opt;
  opt.max_rounds = 2;
  opt.max_moves_per_round = 8;
  const LocalSearchResult res = localSearchWeights(g, box, opt);
  ASSERT_EQ(res.weights.size(), static_cast<std::size_t>(g.numEdges()));
  for (const double w : res.weights) {
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, opt.max_weight);
    EXPECT_DOUBLE_EQ(w, std::round(w));
  }
  EXPECT_GE(res.rounds, 1);
}

TEST(LocalSearch, ImprovesOrMatchesInverseCapacityEcmp) {
  const Graph g = topo::makeZoo("NSF");
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);
  LocalSearchOptions opt;
  opt.max_rounds = 2;
  opt.max_moves_per_round = 12;
  opt.seed = 5;
  const LocalSearchResult res = localSearchWeights(g, box, opt);

  // Evaluate ECMP with found weights vs. inverse-capacity weights on the
  // same corner pool (normalized by the unrestricted optimum, as inside the
  // heuristic).
  const auto evalEcmp = [&](const Graph& weighted) {
    const auto dags =
        std::make_shared<const DagSet>(routing::shortestPathDags(weighted));
    const auto ecmp = routing::ecmpConfig(weighted, dags);
    double worst = 0.0;
    for (const auto& d : tm::cornerPool(box, opt.pool)) {
      const double optu = routing::optimalUtilizationUnrestricted(weighted, d);
      if (optu <= 1e-12) continue;
      worst = std::max(
          worst, routing::maxLinkUtilization(weighted, ecmp, d) / optu);
    }
    return worst;
  };

  Graph tuned = g;
  for (EdgeId e = 0; e < g.numEdges(); ++e) tuned.setWeight(e, res.weights[e]);
  EXPECT_LE(evalEcmp(tuned), evalEcmp(g) + 1e-6);
}

TEST(LocalSearch, DegenerateZeroDemandBox) {
  const Graph g = topo::makeZoo("Gambia");
  const tm::TrafficMatrix zero(g.numNodes());
  const tm::DemandBounds box(zero, zero);
  const LocalSearchResult res = localSearchWeights(g, box, {});
  EXPECT_DOUBLE_EQ(res.utilization, 0.0);
}

// ---------------------------------------------------------------------------
// require() failure paths of the optimizer entry points.
// ---------------------------------------------------------------------------

TEST(CoyoteEdgeCases, EmptyOptimizationPoolThrows) {
  const Graph g = topo::prototypeTriangle();
  const auto dags = augmentedDagsShared(g);
  routing::PerformanceEvaluator empty_pool(g, dags);
  EXPECT_THROW(optimizeAgainstPool(g, empty_pool, nullptr, {}),
               std::invalid_argument);
  const auto init = routing::RoutingConfig::uniform(g, dags);
  EXPECT_THROW(optimizeSplitting(g, empty_pool, init, {}),
               std::invalid_argument);
}

TEST(CoyoteEdgeCases, ZeroIterationSplittingThrows) {
  const Graph g = topo::prototypeTriangle();
  const auto dags = augmentedDagsShared(g);
  routing::PerformanceEvaluator eval(g, dags);
  eval.addMatrix(tm::gravityMatrix(g, 1.0));
  const auto init = routing::RoutingConfig::uniform(g, dags);
  SplittingOptions opt;
  opt.iterations = 0;
  EXPECT_THROW(optimizeSplitting(g, eval, init, opt), std::invalid_argument);
}

TEST(CoyoteEdgeCases, LocalSearchOptionValidation) {
  const Graph g = topo::prototypeTriangle();
  const tm::DemandBounds box = tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0);
  LocalSearchOptions opt;
  opt.max_rounds = 0;
  EXPECT_THROW(localSearchWeights(g, box, opt), std::invalid_argument);
  opt.max_rounds = 1;
  opt.max_weight = 1;
  EXPECT_THROW(localSearchWeights(g, box, opt), std::invalid_argument);
}

}  // namespace
}  // namespace coyote::core
